// Evasion explores the paper's §7.3 analysis of how an informed attacker
// could avoid Tripwire: testing only a sample of stolen credentials against
// the email provider. It plants a fixed set of honey accounts in one
// breached site, sweeps the attacker's check fraction, and reports how
// detection probability decays — "the odds of detection are inversely
// proportional to the percentage of email accounts tested" — along with the
// cost evasion imposes on the attacker (untested, unmonetized accounts).
package main

import (
	"fmt"
	"strings"
	"time"

	"tripwire/internal/attacker"
	"tripwire/internal/emailprovider"
	"tripwire/internal/geo"
	"tripwire/internal/identity"
	"tripwire/internal/imap"
	"tripwire/internal/simclock"
	"tripwire/internal/webgen"
)

func main() {
	fmt.Println("Evading Tripwire by sampling (paper §7.3)")
	fmt.Println("==========================================")
	fmt.Printf("%-16s %-18s %-22s\n", "check fraction", "honey tripped", "stolen value tested")
	const honey = 25
	const organic = 200
	for _, frac := range []float64{1.0, 0.5, 0.25, 0.10, 0.05} {
		tripped, tested := run(frac, honey, organic)
		bar := strings.Repeat("#", tripped)
		fmt.Printf("%15.0f%% %4d of %-10d %5.0f%% of accounts   %s\n",
			frac*100, tripped, honey, frac*100, bar)
		_ = tested
	}
	fmt.Println("\nEvery tripped honey account is a detection; even a 5% sampler usually")
	fmt.Println("trips at least one wire on a well-seeded site — and leaves 95% of the")
	fmt.Println("stolen accounts' value on the table.")
}

// run breaches one plaintext site holding `honey` Tripwire accounts and
// `organic` ordinary users, with the attacker testing frac of recovered
// provider credentials. It returns distinct honey accounts tripped and the
// number of credentials the attacker tested.
func run(frac float64, honey, organic int) (int, int) {
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(250 * 24 * time.Hour)
	clock := simclock.New(start)
	sched := simclock.NewScheduler(clock)
	provider := emailprovider.New("bigmail.test")
	provider.Now = clock.Now
	pool := attacker.NewProxyPool(geo.NewSpace(), 91, 0.1)
	stuffer := attacker.NewStuffer(imap.NewServer(provider), pool, clock.Now)
	cfg := attacker.DefaultCampaignConfig(end)
	cfg.CheckFraction = frac
	cfg.SpamProb = 0
	camp := attacker.NewCampaign(cfg, sched, stuffer, provider)

	gen := identity.NewGenerator("bigmail.test", int64(frac*1000)+13)
	store := webgen.NewStore(webgen.StorePlaintext)
	planted := make(map[string]bool, honey)
	for i := 0; i < honey; i++ {
		id := gen.New(identity.Easy)
		if provider.CreateAccount(id.Email, id.FullName(), id.Password) != nil {
			continue
		}
		store.Create(id.Username, id.Email, id.Password, "", start)
		planted[id.Email] = true
	}
	for i := 0; i < organic; i++ {
		email := fmt.Sprintf("user%04d@elsewhere.test", i)
		store.Create(fmt.Sprintf("user%04d", i), email, "Website1", "", start)
	}

	camp.Breach("samplersite.test", store, start.Add(24*time.Hour))
	sched.RunUntil(end)

	tripped := make(map[string]bool)
	for _, ev := range provider.AllLogins() {
		if planted[ev.Account] {
			tripped[ev.Account] = true
		}
	}
	return len(tripped), len(stuffer.Records())
}
