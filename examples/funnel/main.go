// Funnel reproduces the paper's §7.1 site-eligibility study and Figure 3
// registration funnel in isolation: it censuses 100-site windows of the
// synthetic web the way the authors manually visited samples at Alexa ranks
// 1, 1,000, 10,000 and 100,000, then crawls the eligible sites and shows
// where the automated pipeline loses them.
package main

import (
	"flag"
	"fmt"

	"tripwire/internal/browser"
	"tripwire/internal/captcha"
	"tripwire/internal/crawler"
	"tripwire/internal/identity"
	"tripwire/internal/webgen"
)

func main() {
	numSites := flag.Int("sites", 12000, "size of the generated web")
	window := flag.Int("window", 100, "census window size")
	flag.Parse()

	cfg := webgen.DefaultConfig()
	cfg.NumSites = *numSites
	universe := webgen.Generate(cfg)

	fmt.Println("Site eligibility census (paper Table 4)")
	fmt.Printf("%-10s %9s %11s %15s %11s %7s\n", "StartRank", "LoadFail", "NotEnglish", "NoRegistration", "Ineligible", "Rest")
	for _, startRank := range []int{1, 1000, 10000, 100000} {
		if startRank+*window-1 > *numSites {
			continue
		}
		var loadFail, notEnglish, noReg, inelig, rest int
		for rank := startRank; rank < startRank+*window; rank++ {
			site, _ := universe.SiteByRank(rank)
			switch {
			case site.LoadFailure:
				loadFail++
			case site.Language != webgen.LangEnglish:
				notEnglish++
			case !site.HasRegistration:
				noReg++
			case site.ExternalAuthOnly || site.RequiresPayment || site.MaxEmailLen > 0:
				inelig++
			default:
				rest++
			}
		}
		pct := func(n int) string { return fmt.Sprintf("%d%%", 100*n / *window) }
		fmt.Printf("%-10d %9s %11s %15s %11s %7s\n",
			startRank, pct(loadFail), pct(notEnglish), pct(noReg), pct(inelig), pct(rest))
	}

	// Crawl the first window's eligible sites to show the funnel's middle.
	fmt.Println("\nCrawler outcomes on eligible sites from the top window (Figure 3 middle)")
	gen := identity.NewGenerator("bigmail.test", 3)
	solver := captcha.NewService(0.15, 0.25, 4)
	ccfg := crawler.DefaultConfig()
	ccfg.Seed = 5
	c := crawler.New(ccfg, solver)
	counts := make(map[crawler.Code]int)
	eligible := 0
	for rank := 1; rank <= 400 && rank <= *numSites; rank++ {
		site, _ := universe.SiteByRank(rank)
		if !site.Eligible() {
			continue
		}
		eligible++
		b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: universe}))
		res := c.Register(b, "http://"+site.Domain+"/", gen.New(identity.Hard))
		counts[res.Code]++
	}
	for _, code := range []crawler.Code{
		crawler.CodeNoRegistration, crawler.CodeFieldsMissing,
		crawler.CodeSubmissionFailed, crawler.CodeOKSubmission,
		crawler.CodeSystemError,
	} {
		fmt.Printf("  %-30s %5d  %5.1f%%\n", code, counts[code], 100*float64(counts[code])/float64(eligible))
	}
	fmt.Printf("  %-30s %5d\n", "eligible sites crawled", eligible)
}
