// Quickstart: run a small Tripwire pilot and print what it found.
//
// This exercises the whole public API in ~30 lines: build a study, run the
// virtual timeline (registration crawl, attacker breaches, provider dumps,
// inference), then inspect the detections.
package main

import (
	"context"
	"fmt"
	"log"

	"tripwire"
)

func main() {
	study := tripwire.New(
		tripwire.WithConfig(tripwire.SmallConfig()),
		tripwire.WithSeed(7),
	)
	if err := study.RunContext(context.Background()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Tripwire quickstart")
	fmt.Println("===================")
	dets := study.Detections()
	fmt.Printf("Detected %d site compromises.\n\n", len(dets))
	for _, d := range dets {
		fmt.Printf("  %-16s (rank ~%d, %s)\n", d.Domain, d.Rank, d.Category)
		fmt.Printf("      accounts accessed: %d of %d registered\n", d.AccountsAccessed, d.AccountsRegistered)
		fmt.Printf("      first login:       %s\n", d.FirstSeen.Format("2006-01-02"))
		fmt.Printf("      storage verdict:   %s\n", study.Classify(d))
	}
	fmt.Println()
	if study.IntegrityOK() {
		fmt.Println("Integrity: no unused honeypot account was ever accessed (zero false positives).")
	} else {
		fmt.Println("Integrity: ALARMS FIRED — investigate provider or database compromise!")
	}
}
