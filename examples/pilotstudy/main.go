// Pilotstudy reproduces the paper's full evaluation: it runs the pilot on
// the virtual July 2014 – February 2017 timeline and regenerates every
// table and figure (Tables 1-4, Figures 1-3, and the §6.4 attacker
// statistics).
//
// With -scale paper this is the headline experiment: 33,634 sites crawled
// in the paper's four registration batches, >100,000 monitored honey
// accounts, and a year of attacker activity.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tripwire"
)

func main() {
	scale := flag.String("scale", "small", "small (seconds) or paper (full 33.6k-site pilot)")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	var cfg tripwire.Config
	switch *scale {
	case "small":
		cfg = tripwire.SmallConfig()
	case "paper":
		cfg = tripwire.DefaultConfig()
	default:
		fmt.Fprintf(os.Stderr, "pilotstudy: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed

	start := time.Now()
	study := tripwire.New(tripwire.WithConfig(cfg)).Run()
	fmt.Printf("Pilot (%s scale) completed in %v wall-clock; virtual span %s .. %s\n\n",
		*scale, time.Since(start).Round(time.Millisecond),
		cfg.Start.Format("2006-01-02"), cfg.End.Format("2006-01-02"))
	fmt.Print(study.Summary())
}
