// Breachforensics demonstrates the paper's §4.1.2 / §6.1.2 password-
// management inference in isolation: how registering paired easy/hard
// accounts lets Tripwire tell, from the outside, whether a breached site
// stored passwords in plaintext or hashed them.
//
// It builds four single-site scenarios (plaintext, reversible "encryption",
// unsalted fast hash, salted slow hash), breaches each with the real
// attacker pipeline (dump → dictionary crack → IMAP credential stuffing),
// and shows the breach classification Tripwire infers from which honey
// accounts tripped.
package main

import (
	"fmt"
	"strings"
	"time"

	"tripwire/internal/attacker"
	"tripwire/internal/core"
	"tripwire/internal/crawler"
	"tripwire/internal/emailprovider"
	"tripwire/internal/geo"
	"tripwire/internal/identity"
	"tripwire/internal/imap"
	"tripwire/internal/simclock"
	"tripwire/internal/webgen"
)

func main() {
	fmt.Println("Breach forensics: inferring password storage from the outside")
	fmt.Println("==============================================================")
	policies := []webgen.StoragePolicy{
		webgen.StorePlaintext,
		webgen.StoreReversible,
		webgen.StoreWeakHash,
		webgen.StoreStrongHash,
	}
	for _, policy := range policies {
		verdict, accessed := runScenario(policy)
		fmt.Printf("\nSite stores passwords as %-12s ->  accounts tripped: %s\n", policy, accessed)
		fmt.Printf("  Tripwire's external verdict: %s\n", verdict)
	}
	fmt.Println("\nNote how hard (random 10-char) passwords trip only when storage is")
	fmt.Println("plaintext-equivalent: the dictionary attack in this demo is real —")
	fmt.Println("the attacker hashes every Word+digit candidate against the dump.")
}

func runScenario(policy webgen.StoragePolicy) (core.BreachClass, string) {
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(300 * 24 * time.Hour)
	clock := simclock.New(start)
	sched := simclock.NewScheduler(clock)

	provider := emailprovider.New("bigmail.test")
	provider.Now = clock.Now

	gen := identity.NewGenerator("bigmail.test", int64(policy)+100)
	hard := gen.New(identity.Hard)
	easy := gen.New(identity.Easy)
	ledger := core.NewLedger()
	for _, id := range []*identity.Identity{hard, easy} {
		if err := provider.CreateAccount(id.Email, id.FullName(), id.Password); err != nil {
			panic(err)
		}
		ledger.AddIdentity(id)
	}

	// "Register" both honey accounts at the victim site.
	const domain = "victim.test"
	store := webgen.NewStore(policy)
	for _, id := range []*identity.Identity{hard, easy} {
		taken := ledger.Take(id.Class)
		salt := ""
		if policy == webgen.StoreStrongHash {
			salt = "salt-" + taken.Username
		}
		local, _, _ := strings.Cut(taken.Email, "@")
		if _, err := store.Create(local, taken.Email, taken.Password, salt, clock.Now()); err != nil {
			panic(err)
		}
		ledger.Burn(taken, domain, 1234, "Gaming", clock.Now(), crawler.CodeOKSubmission, false)
	}

	// Attacker breaches the site and stuffs whatever it can crack.
	pool := attacker.NewProxyPool(geo.NewSpace(), int64(policy)+5, 0.2)
	stuffer := attacker.NewStuffer(imap.NewServer(provider), pool, clock.Now)
	camp := attacker.NewCampaign(attacker.DefaultCampaignConfig(end), sched, stuffer, provider)
	camp.Breach(domain, store, start.Add(24*time.Hour))
	sched.RunUntil(end)

	// Tripwire ingests the provider's login dump and classifies the breach.
	monitor := core.NewMonitor(ledger, start)
	monitor.Ingest(provider.DumpSince(start))
	det, ok := monitor.Detection(domain)
	if !ok {
		return core.BreachIndeterminate, "(none — breach undetected)"
	}
	var names []string
	for email := range det.Logins {
		reg, _ := ledger.Lookup(email)
		names = append(names, reg.Identity.Class.String())
	}
	if len(names) == 2 && names[0] > names[1] {
		names[0], names[1] = names[1], names[0]
	}
	return monitor.Classify(det), strings.Join(names, " + ")
}
