package tripwire

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (see DESIGN.md's per-experiment index), plus ablation
// benchmarks for the design choices the paper calls out. Each table/figure
// benchmark amortizes one pilot run across iterations and measures artifact
// regeneration, asserting the paper's shape properties as it goes.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"tripwire/internal/attacker"
	"tripwire/internal/browser"
	"tripwire/internal/captcha"
	"tripwire/internal/core"
	"tripwire/internal/crawler"
	"tripwire/internal/emailprovider"
	"tripwire/internal/htmldom"
	"tripwire/internal/identity"
	"tripwire/internal/report"
	"tripwire/internal/sim"
	"tripwire/internal/webgen"
)

var (
	benchOnce  sync.Once
	benchStudy *Study
)

// benchPilot runs one shared small-scale pilot for the artifact benchmarks.
func benchPilot(b *testing.B) *sim.Pilot {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy = New(WithConfig(SmallConfig())).Run()
	})
	return benchStudy.Pilot()
}

// BenchmarkTable1AccountCreation regenerates Table 1 (account-creation
// estimates by status bin) and checks the paper's ordering of validity
// rates: Email verified > OK submission > Bad heuristics.
func BenchmarkTable1AccountCreation(b *testing.B) {
	p := benchPilot(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := report.Table1(p)
		byStatus := map[core.AccountStatus]report.Table1Row{}
		for _, r := range rows {
			byStatus[r.Status] = r
		}
		ev := byStatus[core.StatusEmailVerified]
		ok := byStatus[core.StatusOKSubmission]
		bad := byStatus[core.StatusBadHeuristics]
		if !(ev.Success > ok.Success && ok.Success > bad.Success) {
			b.Fatalf("validity ordering broken: verified=%.2f ok=%.2f bad=%.2f",
				ev.Success, ok.Success, bad.Success)
		}
		if ev.Success < 0.90 || bad.Success > 0.25 {
			b.Fatalf("validity rates out of band: verified=%.2f bad=%.2f", ev.Success, bad.Success)
		}
	}
}

// BenchmarkTable2CompromisedSites regenerates Table 2 and checks the
// detection inventory: every detection is a true positive and rank rounding
// matches the paper's convention.
func BenchmarkTable2CompromisedSites(b *testing.B) {
	p := benchPilot(b)
	breaches := p.Campaign.Breaches()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := report.Table2(p)
		if len(rows) == 0 {
			b.Fatal("no compromises detected")
		}
		dets := p.Monitor.Detections()
		for j, r := range rows {
			if _, ok := breaches[dets[j].Domain]; !ok {
				b.Fatalf("false positive at %s", dets[j].Domain)
			}
			if r.RankRounded%500 != 0 {
				b.Fatalf("rank %d not rounded to 500", r.RankRounded)
			}
		}
	}
}

// BenchmarkTable3LoginActivity regenerates Table 3 (per-account login
// timing) and checks the paper's invariants: until/since/days-accessed are
// consistent with the study window.
func BenchmarkTable3LoginActivity(b *testing.B) {
	p := benchPilot(b)
	span := int(p.Cfg.End.Sub(p.Cfg.Start).Hours()/24) + 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := report.Table3(p)
		if len(rows) == 0 {
			b.Fatal("no accessed accounts")
		}
		for _, r := range rows {
			if r.Logins < 1 {
				b.Fatalf("account %s has %d logins", r.Alias, r.Logins)
			}
			if r.UntilDays < 0 || r.UntilDays > span || r.SinceDays > span || r.AccessedDays > span {
				b.Fatalf("account %s timing out of range: %+v", r.Alias, r)
			}
		}
	}
}

// BenchmarkTable4Eligibility regenerates Table 4 (eligibility census) and
// checks the paper's headline rates: ~44% non-English and a registration-
// availability decline down-rank.
func BenchmarkTable4Eligibility(b *testing.B) {
	p := benchPilot(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := report.Table4(p, []int{1, 1000})
		if len(rows) != 2 {
			b.Fatalf("rows = %d", len(rows))
		}
		for _, r := range rows {
			total := r.LoadFailure + r.NotEnglish + r.NoRegistration + r.Ineligible + r.Rest
			if total < 99.5 || total > 100.5 {
				b.Fatalf("census row does not sum to 100%%: %+v", r)
			}
		}
	}
}

// BenchmarkFigure1TerminationCodes regenerates the Figure-1 termination-code
// distribution and checks that every code occurs and no-registration
// dominates.
func BenchmarkFigure1TerminationCodes(b *testing.B) {
	p := benchPilot(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := report.Fig1(p)
		for code, n := range counts {
			if n == 0 {
				b.Fatalf("code %v never occurred", code)
			}
		}
		if counts[crawler.CodeNoRegistration] <= counts[crawler.CodeOKSubmission] {
			b.Fatal("no-registration should dominate OK submissions")
		}
	}
}

// BenchmarkFigure2Timeline regenerates the registration/login timeline and
// checks each row carries a registration mark and activity.
func BenchmarkFigure2Timeline(b *testing.B) {
	p := benchPilot(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := report.Fig2(p)
		if !strings.Contains(out, "R") || !strings.Contains(out, "*") {
			b.Fatalf("timeline lacks registrations or logins:\n%s", out)
		}
	}
}

// BenchmarkFigure3Funnel regenerates the registration funnel and checks the
// paper's shape: most sites ineligible; success on eligible sites is a
// minority; the middle splits across all loss modes.
func BenchmarkFigure3Funnel(b *testing.B) {
	p := benchPilot(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := report.Fig3(p)
		if f.IneligibleFrac < 0.45 || f.IneligibleFrac > 0.80 {
			b.Fatalf("ineligible fraction %.2f out of band (~0.64)", f.IneligibleFrac)
		}
		if f.SuccessOnElig <= 0 || f.SuccessOnElig > 0.5 {
			b.Fatalf("success on eligible %.2f out of band (~0.19)", f.SuccessOnElig)
		}
		if f.NoRegFound == 0 || f.SystemErrors == 0 || f.FailedFills == 0 {
			b.Fatalf("funnel missing a loss mode: %+v", f)
		}
	}
}

// BenchmarkSec64AttackerBehavior regenerates the §6.4 attacker statistics
// and checks: RU leads the country mix, residential IPs dominate, IMAP is
// the access method, and bursty accounts exist.
func BenchmarkSec64AttackerBehavior(b *testing.B) {
	p := benchPilot(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := report.Sec64(p)
		if st.TotalLogins == 0 || st.DistinctIPs == 0 {
			b.Fatal("no attacker telemetry")
		}
		if len(st.TopCountries) == 0 || st.TopCountries[0].Code != "RU" {
			b.Fatalf("top countries = %+v, want RU first", st.TopCountries)
		}
		if st.ResidentialPct < 60 {
			b.Fatalf("residential share %.0f%%, want majority", st.ResidentialPct)
		}
		if st.IMAPPct < 90 {
			b.Fatalf("IMAP share %.0f%%", st.IMAPPct)
		}
	}
}

// --- Ablation and component benchmarks -----------------------------------

// BenchmarkAblationCrackWeakVsStrong measures the real dictionary-attack
// cost asymmetry between unsalted-fast and salted-slow hashing that
// underlies the paper's §6.1.2 easy-before-hard observation.
func BenchmarkAblationCrackWeakVsStrong(b *testing.B) {
	gen := identity.NewGenerator("bigmail.test", 21)
	mkDump := func(policy webgen.StoragePolicy, n int) []webgen.DumpEntry {
		st := webgen.NewStore(policy)
		for i := 0; i < n; i++ {
			id := gen.New(identity.Easy)
			salt := fmt.Sprintf("s%d", i)
			st.Create(fmt.Sprintf("u%d", i), id.Email, id.Password, salt, time.Time{})
		}
		return st.Dump()
	}
	for _, tc := range []struct {
		name   string
		policy webgen.StoragePolicy
	}{
		{"WeakHash", webgen.StoreWeakHash},
		{"StrongHash", webgen.StoreStrongHash},
	} {
		dump := mkDump(tc.policy, 32)
		b.Run(tc.name, func(b *testing.B) {
			c := &attacker.Cracker{Words: identity.DictionaryWords()}
			for i := 0; i < b.N; i++ {
				creds := c.Crack(dump)
				if len(creds) != len(dump) {
					b.Fatalf("recovered %d of %d easy passwords", len(creds), len(dump))
				}
			}
		})
	}
}

// BenchmarkAblationPasswordPairing compares breach-type classification with
// the paper's easy+hard pairing against an easy-only deployment: with both
// classes the plaintext verdict is reachable; easy-only leaves storage
// indeterminate.
func BenchmarkAblationPasswordPairing(b *testing.B) {
	run := func(withHard bool) core.BreachClass {
		ledger := core.NewLedger()
		gen := identity.NewGenerator("bigmail.test", 31)
		t0 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
		classes := []identity.PasswordClass{identity.Easy}
		if withHard {
			classes = append(classes, identity.Hard)
		}
		var logins []string
		for _, cl := range classes {
			id := gen.New(cl)
			ledger.AddIdentity(id)
			ledger.Burn(id, "v.test", 1, "X", t0, crawler.CodeOKSubmission, false)
			logins = append(logins, id.Email)
		}
		m := core.NewMonitor(ledger, t0)
		m.Ingest(loginEventsFor(logins, t0))
		det, _ := m.Detection("v.test")
		return m.Classify(det)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := run(true); got != core.BreachPlaintext {
			b.Fatalf("paired registration: %v, want plaintext verdict", got)
		}
		if got := run(false); got != core.BreachIndeterminate {
			b.Fatalf("easy-only registration: %v, want indeterminate", got)
		}
	}
}

// loginEventsFor builds one IMAP login event per account, an hour apart.
func loginEventsFor(accounts []string, t0 time.Time) []emailprovider.LoginEvent {
	ip := netip.MustParseAddr("198.51.100.20")
	out := make([]emailprovider.LoginEvent, 0, len(accounts))
	for i, a := range accounts {
		out = append(out, emailprovider.LoginEvent{
			Account: a, Time: t0.Add(time.Duration(i+1) * time.Hour), IP: ip, Method: "IMAP",
		})
	}
	return out
}

// BenchmarkCrawlerSingleSite measures one full registration attempt against
// an eligible site over the in-process HTTP stack.
func BenchmarkCrawlerSingleSite(b *testing.B) {
	cfg := webgen.DefaultConfig()
	cfg.NumSites = 300
	universe := webgen.Generate(cfg)
	var target *webgen.Site
	for _, s := range universe.Sites() {
		if s.Eligible() && !s.JSForm && !s.OddFieldNames && s.Captcha == captcha.None && !s.MultiStage {
			target = s
			break
		}
	}
	if target == nil {
		b.Fatal("no clean site")
	}
	gen := identity.NewGenerator("bigmail.test", 41)
	ccfg := crawler.DefaultConfig()
	c := crawler.New(ccfg, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: universe}))
		res := c.Register(br, "http://"+target.Domain+"/", gen.New(identity.Hard))
		if res.Code != crawler.CodeOKSubmission {
			b.Fatalf("code = %v (%s)", res.Code, res.Detail)
		}
	}
}

// BenchmarkHTMLParse measures DOM construction over a rendered registration
// page — the crawler's hot path.
func BenchmarkHTMLParse(b *testing.B) {
	cfg := webgen.DefaultConfig()
	cfg.NumSites = 50
	universe := webgen.Generate(cfg)
	br := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: universe}))
	page, err := br.Get("http://site00001.test/")
	if err != nil {
		b.Fatal(err)
	}
	raw := page.Raw
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := htmldom.Parse(raw)
		if len(doc.Children) == 0 {
			b.Fatal("empty parse")
		}
	}
}

// BenchmarkIdentityGeneration measures identity minting throughput (the
// pilot provisions >100k accounts).
func BenchmarkIdentityGeneration(b *testing.B) {
	gen := identity.NewGenerator("bigmail.test", 51)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := gen.New(identity.Hard)
		if id.Email == "" {
			b.Fatal("empty identity")
		}
	}
}
