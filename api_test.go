package tripwire_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"tripwire"
)

func TestNewDefaultsToDefaultConfig(t *testing.T) {
	s := tripwire.New()
	if got, want := s.Pilot().Cfg.Web.NumSites, tripwire.DefaultConfig().Web.NumSites; got != want {
		t.Fatalf("New() sites = %d, want DefaultConfig's %d", got, want)
	}
}

func TestOptionsOverrideConfigRegardlessOfOrder(t *testing.T) {
	// Targeted options are applied after the base config, so passing
	// WithConfig last must not clobber WithSeed/WithWorkers.
	s := tripwire.New(
		tripwire.WithSeed(7),
		tripwire.WithWorkers(3),
		tripwire.WithConfig(tripwire.SmallConfig()),
	)
	cfg := s.Pilot().Cfg
	if cfg.Seed != 7 {
		t.Errorf("seed = %d, want 7", cfg.Seed)
	}
	if cfg.CrawlWorkers != 3 {
		t.Errorf("workers = %d, want 3", cfg.CrawlWorkers)
	}
	if got, want := cfg.Web.NumSites, tripwire.SmallConfig().Web.NumSites; got != want {
		t.Errorf("sites = %d, want SmallConfig's %d", got, want)
	}
}

func TestNewStudyMatchesNewWithConfig(t *testing.T) {
	a := tripwire.NewStudy(tripwire.SmallConfig()).Pilot().Cfg
	b := tripwire.New(tripwire.WithConfig(tripwire.SmallConfig())).Pilot().Cfg
	if a.Seed != b.Seed || a.Web.NumSites != b.Web.NumSites || len(a.Batches) != len(b.Batches) {
		t.Fatalf("NewStudy and New(WithConfig) disagree: %+v vs %+v", a, b)
	}
}

func TestRunSurfacesValidationError(t *testing.T) {
	cfg := tripwire.SmallConfig()
	cfg.Web.NumSites = 0
	s := tripwire.New(tripwire.WithConfig(cfg)).Run()
	err := s.Err()
	if err == nil {
		t.Fatal("Run swallowed the validation error")
	}
	if !strings.Contains(err.Error(), "NumSites") {
		t.Fatalf("error %q does not mention the invalid field", err)
	}
	// The events channel must still close so consumers don't hang.
	for range s.Events() {
		t.Fatal("events emitted for a run that never started")
	}
}

func TestRunContextIdempotentError(t *testing.T) {
	cfg := tripwire.SmallConfig()
	cfg.Retention = 0
	s := tripwire.New(tripwire.WithConfig(cfg))
	first := s.RunContext(context.Background())
	second := s.RunContext(context.Background())
	if first == nil || !errors.Is(second, first) && second.Error() != first.Error() {
		t.Fatalf("repeat RunContext returned %v, first returned %v", second, first)
	}
}

func TestStudyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := tripwire.New(tripwire.WithConfig(tripwire.SmallConfig()))
	if err := s.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !s.Interrupted() {
		t.Fatal("Interrupted() false after cancellation")
	}
	if !errors.Is(s.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", s.Err())
	}
}

// TestEventsReplayAndOrdering subscribes only after the run has finished:
// the full sequence must replay, in virtual-time order, waves carrying
// batch names and detections carrying payloads.
func TestEventsReplayAndOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full small pilot in -short mode")
	}
	reg := tripwire.NewMetrics()
	s := tripwire.New(
		tripwire.WithConfig(tripwire.SmallConfig()),
		tripwire.WithMetrics(reg),
	).Run()
	if err := s.Err(); err != nil {
		t.Fatalf("run failed: %v", err)
	}

	var waves, detections int
	last := s.Pilot().Cfg.Start
	for ev := range s.Events() {
		if ev.At.Before(last) {
			t.Fatalf("event at %s arrived after one at %s: not virtual-time ordered", ev.At, last)
		}
		last = ev.At
		switch ev.Kind {
		case tripwire.EventWaveDone:
			waves++
			if ev.Batch == "" {
				t.Error("wave event without a batch name")
			}
			if ev.ToRank < ev.FromRank {
				t.Errorf("wave event with inverted ranks %d..%d", ev.FromRank, ev.ToRank)
			}
		case tripwire.EventDetection:
			detections++
			if ev.Detection == nil || ev.Detection.Domain == "" {
				t.Error("detection event without payload")
			}
		default:
			t.Errorf("unknown event kind %v", ev.Kind)
		}
	}
	if waves == 0 {
		t.Error("no wave events")
	}
	if got := len(s.Detections()); detections != got {
		t.Errorf("%d detection events, but study has %d detections", detections, got)
	}

	// The registry attached via WithMetrics observed the run.
	snap := reg.Snapshot()
	if snap.Counters["tripwire_crawler_attempts_total"] == 0 {
		t.Error("metrics registry saw no crawl attempts")
	}
	if snap.Counters["tripwire_sim_waves_total"] != float64(waves) {
		t.Errorf("tripwire_sim_waves_total = %v, want %d (one per wave event)",
			snap.Counters["tripwire_sim_waves_total"], waves)
	}
	if s.Metrics() != reg {
		t.Error("Metrics() does not return the attached registry")
	}
}
