package tripwire_test

import (
	"strings"
	"sync"
	"testing"

	"tripwire"
)

var (
	studyOnce sync.Once
	study     *tripwire.Study
)

func sharedStudy(t *testing.T) *tripwire.Study {
	t.Helper()
	studyOnce.Do(func() {
		study = tripwire.New(tripwire.WithConfig(tripwire.SmallConfig())).Run()
	})
	return study
}

func TestStudyRunIdempotent(t *testing.T) {
	s := sharedStudy(t)
	before := len(s.Detections())
	s.Run() // second Run must be a no-op
	if got := len(s.Detections()); got != before {
		t.Fatalf("second Run changed detections: %d -> %d", before, got)
	}
}

func TestStudyDetectsAndClassifies(t *testing.T) {
	s := sharedStudy(t)
	dets := s.Detections()
	if len(dets) == 0 {
		t.Fatal("no detections")
	}
	sawClass := map[tripwire.BreachClass]bool{}
	for _, d := range dets {
		sawClass[s.Classify(d)] = true
	}
	if !sawClass[tripwire.BreachPlaintext] && !sawClass[tripwire.BreachHashedOnly] {
		t.Fatalf("no breach class assigned: %v", sawClass)
	}
}

func TestStudyIntegrity(t *testing.T) {
	if !sharedStudy(t).IntegrityOK() {
		t.Fatal("integrity alarms on a healthy run")
	}
}

func TestStudySummaryContainsEveryArtifact(t *testing.T) {
	out := sharedStudy(t).Summary()
	for _, heading := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		"Figure 1", "Figure 2", "Figure 3", "Section 6.4",
	} {
		if !strings.Contains(out, heading) {
			t.Errorf("summary missing %q", heading)
		}
	}
	if len(out) < 1500 {
		t.Errorf("summary suspiciously short: %d bytes", len(out))
	}
}

func TestConfigsAreDistinct(t *testing.T) {
	small, paper := tripwire.SmallConfig(), tripwire.DefaultConfig()
	if small.Web.NumSites >= paper.Web.NumSites {
		t.Fatal("small config is not smaller than paper config")
	}
	if paper.Web.NumSites != 33634 {
		t.Fatalf("paper config covers %d sites, want 33634 (paper §5)", paper.Web.NumSites)
	}
	if paper.NumUnused < 100000 {
		t.Fatalf("paper config monitors %d unused accounts, want >=100000 (paper §4.4)", paper.NumUnused)
	}
	if len(paper.Batches) != 4 {
		t.Fatalf("paper config has %d batches, want the paper's 4 registration occasions", len(paper.Batches))
	}
}
