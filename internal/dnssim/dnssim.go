// Package dnssim is the synthetic web's DNS: A records for site hosts, MX
// records for mail routing, and PTR records for the attacker IP space. The
// paper leans on DNS at several points — site J's disclosure bounced
// because its domain "had no MX record" (§6.3.2), and the authors
// spot-checked reverse DNS to validate the residential/datacenter split of
// attacker IPs (§6.4.3). This resolver gives those checks a uniform,
// queryable surface.
package dnssim

import (
	"fmt"
	"hash/fnv"
	"net/netip"

	"tripwire/internal/geo"
	"tripwire/internal/webgen"
)

// ErrNXDomain reports a name with no records.
type ErrNXDomain struct{ Name string }

// Error implements error.
func (e ErrNXDomain) Error() string { return fmt.Sprintf("dnssim: NXDOMAIN %s", e.Name) }

// Resolver answers queries about the synthetic universe.
type Resolver struct {
	universe *webgen.Universe
	space    *geo.Space
	// extraMX maps additional domains (e.g. the email provider and relay
	// domains) to their MX hosts.
	extraMX map[string][]string
}

// New returns a resolver over universe and space.
func New(universe *webgen.Universe, space *geo.Space) *Resolver {
	return &Resolver{
		universe: universe,
		space:    space,
		extraMX:  make(map[string][]string),
	}
}

// AddMX registers MX hosts for a non-site domain (mail provider, relay).
func (r *Resolver) AddMX(domain string, hosts ...string) {
	r.extraMX[domain] = append(r.extraMX[domain], hosts...)
}

// LookupA returns the site's address. Every generated site has an A record
// (even ones whose HTTP service fails to load); unknown hosts are NXDOMAIN.
// Addresses are deterministic functions of the domain, pinned into US
// hosting space.
func (r *Resolver) LookupA(host string) (netip.Addr, error) {
	site, ok := r.universe.Site(host)
	if !ok {
		return netip.Addr{}, ErrNXDomain{Name: host}
	}
	h := fnv.New32a()
	h.Write([]byte(site.Domain))
	v := h.Sum32()
	// Carve site addresses out of the low second-octet (datacenter) region
	// of US space, consistent with geo's classification.
	us := pickSlash8(r.space, "US")
	return netip.AddrFrom4([4]byte{us, byte(v % 16), byte(v >> 8), byte(1 + v>>16%254)}), nil
}

func pickSlash8(s *geo.Space, code string) byte {
	// The first US /8 is stable across runs because the country table is
	// static; derive it via a probe sample with a fixed seed.
	for _, c := range s.Countries() {
		if c.Code == code {
			// Sample deterministically: the allocation is contiguous from
			// the table, so probing via SampleIPIn would need an rng; use
			// Lookup over a scan instead.
			for a := 1; a < 224; a++ {
				ip := netip.AddrFrom4([4]byte{byte(a), 0, 0, 1})
				if got, ok := s.Lookup(ip); ok && got.Code == code {
					return byte(a)
				}
			}
		}
	}
	return 198 // documentation range fallback; never hit with the built-in table
}

// LookupMX returns the mail hosts for domain. Sites without MX (the paper's
// site J) return an empty, nil-error result — the domain exists but cannot
// receive mail, exactly the state the disclosure campaign ran into.
func (r *Resolver) LookupMX(domain string) ([]string, error) {
	if hosts, ok := r.extraMX[domain]; ok {
		return hosts, nil
	}
	site, ok := r.universe.Site(domain)
	if !ok {
		return nil, ErrNXDomain{Name: domain}
	}
	if site.NoMX {
		return nil, nil
	}
	return []string{"mx1." + site.Domain, "mx2." + site.Domain}, nil
}

// LookupPTR returns the reverse record for ip, delegating to the geo
// space's deterministic PTR model.
func (r *Resolver) LookupPTR(ip netip.Addr) (string, error) {
	if host, ok := r.space.ReverseDNS(ip); ok {
		return host, nil
	}
	return "", ErrNXDomain{Name: ip.String()}
}

// CanReceiveMail reports whether any MX host exists for domain.
func (r *Resolver) CanReceiveMail(domain string) bool {
	hosts, err := r.LookupMX(domain)
	return err == nil && len(hosts) > 0
}
