package dnssim

import (
	"net/netip"
	"strings"
	"testing"

	"tripwire/internal/geo"
	"tripwire/internal/webgen"
)

func resolver() (*Resolver, *webgen.Universe, *geo.Space) {
	cfg := webgen.DefaultConfig()
	cfg.NumSites = 400
	u := webgen.Generate(cfg)
	s := geo.NewSpace()
	r := New(u, s)
	r.AddMX("bigmail.test", "mx.bigmail.test")
	return r, u, s
}

func TestLookupADeterministicAndInSpace(t *testing.T) {
	r, u, s := resolver()
	for _, site := range u.Sites()[:50] {
		a1, err := r.LookupA(site.Domain)
		if err != nil {
			t.Fatalf("A %s: %v", site.Domain, err)
		}
		a2, _ := r.LookupA(site.Domain)
		if a1 != a2 {
			t.Fatalf("A record for %s not deterministic", site.Domain)
		}
		c, ok := s.Lookup(a1)
		if !ok || c.Code != "US" {
			t.Fatalf("A %s = %v not in US hosting space (%v)", site.Domain, a1, c.Code)
		}
		if !s.IsDatacenter(a1) {
			t.Fatalf("site address %v classified residential", a1)
		}
	}
}

func TestLookupANXDomain(t *testing.T) {
	r, _, _ := resolver()
	_, err := r.LookupA("no-such-host.test")
	if err == nil {
		t.Fatal("unknown host resolved")
	}
	if !strings.Contains(err.Error(), "NXDOMAIN") {
		t.Fatalf("err = %v", err)
	}
}

func TestLookupMX(t *testing.T) {
	r, u, _ := resolver()
	var withMX, without *webgen.Site
	for _, s := range u.Sites() {
		if s.NoMX && without == nil {
			without = s
		}
		if !s.NoMX && withMX == nil {
			withMX = s
		}
	}
	if withMX == nil {
		t.Fatal("no MX-bearing site")
	}
	hosts, err := r.LookupMX(withMX.Domain)
	if err != nil || len(hosts) != 2 {
		t.Fatalf("MX = %v, %v", hosts, err)
	}
	if !r.CanReceiveMail(withMX.Domain) {
		t.Fatal("CanReceiveMail false for MX-bearing domain")
	}
	if without != nil {
		hosts, err := r.LookupMX(without.Domain)
		if err != nil || len(hosts) != 0 {
			t.Fatalf("no-MX site: %v, %v", hosts, err)
		}
		if r.CanReceiveMail(without.Domain) {
			t.Fatal("CanReceiveMail true for MX-less domain (paper's site J)")
		}
	}
	// Registered extra domain.
	if !r.CanReceiveMail("bigmail.test") {
		t.Fatal("provider domain lost its MX")
	}
	if _, err := r.LookupMX("unregistered.example"); err == nil {
		t.Fatal("unknown domain resolved MX")
	}
}

func TestLookupPTR(t *testing.T) {
	r, _, s := resolver()
	ip, _ := r.LookupA("site00001.test")
	host, err := r.LookupPTR(ip)
	if err != nil || host == "" {
		t.Fatalf("PTR = %q, %v", host, err)
	}
	if want, _ := s.ReverseDNS(ip); want != host {
		t.Fatalf("PTR %q != geo PTR %q", host, want)
	}
	if _, err := r.LookupPTR(netip.MustParseAddr("10.1.2.3")); err == nil {
		t.Fatal("PTR outside space resolved")
	}
}
