package imap

import (
	"bufio"
	"fmt"
	"net"
	"net/netip"
	"strconv"
	"strings"
)

// Server speaks IMAP4rev1 (subset) over accepted connections, delegating
// authentication and mailbox access to a Backend.
type Server struct {
	Backend Backend
	// Greeting is announced on connect.
	Greeting string
}

// NewServer returns a Server for backend.
func NewServer(backend Backend) *Server {
	return &Server{Backend: backend, Greeting: "tripwire-sim IMAP4rev1 ready"}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_ = s.ServeConn(conn, remoteAddr(conn))
		}()
	}
}

func remoteAddr(conn net.Conn) netip.Addr {
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		return ap.Addr()
	}
	return netip.Addr{}
}

// ServeConn runs one IMAP session. remote is the client address used for
// login logging; for proxied connections callers pass the proxy exit IP.
func (s *Server) ServeConn(conn net.Conn, remote netip.Addr) error {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	send := func(format string, args ...any) error {
		if _, err := fmt.Fprintf(w, format+"\r\n", args...); err != nil {
			return err
		}
		return w.Flush()
	}
	if err := send("* OK %s", s.Greeting); err != nil {
		return err
	}

	var sess Session
	var selected bool
	defer func() {
		if sess != nil {
			_ = sess.Logout()
		}
	}()

	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		tag, verb, args := parseCommand(strings.TrimRight(line, "\r\n"))
		if tag == "" {
			if err := send("* BAD malformed command"); err != nil {
				return err
			}
			continue
		}
		switch verb {
		case "CAPABILITY":
			if err := send("* CAPABILITY IMAP4rev1 LOGINDISABLED-NOT"); err != nil {
				return err
			}
			if err := send("%s OK CAPABILITY completed", tag); err != nil {
				return err
			}
		case "LOGIN":
			if len(args) < 2 {
				if err := send("%s BAD LOGIN expects user and password", tag); err != nil {
					return err
				}
				continue
			}
			user, pass := unquote(args[0]), unquote(args[1])
			newSess, err := s.Backend.Login(user, pass, remote)
			switch {
			case err == nil:
				sess = newSess
				if err := send("%s OK LOGIN completed", tag); err != nil {
					return err
				}
			case err == ErrThrottled:
				if err := send("%s NO [UNAVAILABLE] too many attempts", tag); err != nil {
					return err
				}
			case err == ErrAccountFrozen:
				if err := send("%s NO [CONTACTADMIN] account unavailable", tag); err != nil {
					return err
				}
			default:
				if err := send("%s NO LOGIN failed", tag); err != nil {
					return err
				}
			}
		case "SELECT":
			if sess == nil {
				if err := send("%s NO not authenticated", tag); err != nil {
					return err
				}
				continue
			}
			box := "INBOX"
			if len(args) > 0 {
				box = unquote(args[0])
			}
			n, err := sess.Select(box)
			if err != nil {
				if err := send("%s NO no such mailbox", tag); err != nil {
					return err
				}
				continue
			}
			selected = true
			if err := send("* %d EXISTS", n); err != nil {
				return err
			}
			if err := send("* OK [UIDVALIDITY 1] UIDs valid"); err != nil {
				return err
			}
			if err := send("%s OK [READ-ONLY] SELECT completed", tag); err != nil {
				return err
			}
		case "FETCH":
			if sess == nil || !selected {
				if err := send("%s NO no mailbox selected", tag); err != nil {
					return err
				}
				continue
			}
			if len(args) < 1 {
				if err := send("%s BAD FETCH expects sequence set", tag); err != nil {
					return err
				}
				continue
			}
			lo, hi, ok := parseSeqSet(args[0])
			if !ok {
				if err := send("%s BAD bad sequence set", tag); err != nil {
					return err
				}
				continue
			}
			for seq := lo; seq <= hi; seq++ {
				m, err := sess.Fetch(seq)
				if err != nil {
					break
				}
				lit := fmt.Sprintf("From: %s\r\nSubject: %s\r\n\r\n%s", m.From, m.Subject, m.Body)
				if err := send("* %d FETCH (BODY[] {%d}", seq, len(lit)); err != nil {
					return err
				}
				if _, err := w.WriteString(lit + ")\r\n"); err != nil {
					return err
				}
				if err := w.Flush(); err != nil {
					return err
				}
			}
			if err := send("%s OK FETCH completed", tag); err != nil {
				return err
			}
		case "NOOP":
			if err := send("%s OK NOOP completed", tag); err != nil {
				return err
			}
		case "LOGOUT":
			_ = send("* BYE logging out")
			return send("%s OK LOGOUT completed", tag)
		default:
			if err := send("%s BAD unsupported command", tag); err != nil {
				return err
			}
		}
	}
}

// parseCommand splits "tag VERB arg1 arg2..." respecting quoted strings.
func parseCommand(line string) (tag, verb string, args []string) {
	fields := splitQuoted(line)
	if len(fields) < 2 {
		return "", "", nil
	}
	return fields[0], strings.ToUpper(fields[1]), fields[2:]
}

func splitQuoted(s string) []string {
	var out []string
	var cur strings.Builder
	inQ := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQ = !inQ
			cur.WriteByte(c)
		case c == ' ' && !inQ:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// parseSeqSet handles "n" and "n:m" (and "n:*" as n:large).
func parseSeqSet(s string) (lo, hi int, ok bool) {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		a, err1 := strconv.Atoi(s[:i])
		rest := s[i+1:]
		if rest == "*" {
			return a, 1 << 30, err1 == nil && a > 0
		}
		b, err2 := strconv.Atoi(rest)
		return a, b, err1 == nil && err2 == nil && a > 0 && b >= a
	}
	n, err := strconv.Atoi(s)
	return n, n, err == nil && n > 0
}
