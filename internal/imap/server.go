package imap

import (
	"bytes"
	"net"
	"net/netip"
	"strconv"
	"sync"
)

// Server speaks IMAP4rev1 (subset) over accepted connections, delegating
// authentication and mailbox access to a Backend.
type Server struct {
	Backend Backend
	// Greeting is announced on connect.
	Greeting string
}

// NewServer returns a Server for backend.
func NewServer(backend Backend) *Server {
	return &Server{Backend: backend, Greeting: "tripwire-sim IMAP4rev1 ready"}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_ = s.ServeConn(conn, remoteAddr(conn))
		}()
	}
}

func remoteAddr(conn net.Conn) netip.Addr {
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		return ap.Addr()
	}
	return netip.Addr{}
}

// serverConn holds one session's reusable buffers; pooled so the stuffing
// hot path, which runs one short session per simulated login, reuses the
// same read buffer, response buffer, and field scratch across sessions.
type serverConn struct {
	r      lineReader
	out    []byte
	fields [][]byte
}

var serverConnPool = sync.Pool{New: func() any { return new(serverConn) }}

// ServeConn runs one IMAP session. remote is the client address used for
// login logging; for proxied connections callers pass the proxy exit IP.
func (s *Server) ServeConn(conn net.Conn, remote netip.Addr) error {
	st := serverConnPool.Get().(*serverConn)
	st.r.reset(conn)
	defer func() {
		st.r.conn = nil
		for i := range st.fields {
			st.fields[i] = nil
		}
		serverConnPool.Put(st)
	}()

	// reply appends CRLF and writes the response in one call; multi-line
	// responses embed interior CRLFs and go out as a single write.
	reply := func(b []byte) error {
		b = append(b, '\r', '\n')
		st.out = b
		_, err := conn.Write(b)
		return err
	}
	// tagged builds "<tag> <rest>" onto the reused response buffer b.
	tagged := func(b, tag []byte, rest string) []byte {
		b = append(b, tag...)
		b = append(b, ' ')
		return append(b, rest...)
	}

	b := append(st.out[:0], "* OK "...)
	b = append(b, s.Greeting...)
	if err := reply(b); err != nil {
		return err
	}

	var sess Session
	var selected bool
	defer func() {
		if sess != nil {
			_ = sess.Logout()
		}
	}()

	for {
		line, err := st.r.ReadLine()
		if err != nil {
			return err
		}
		st.fields = splitQuoted(line, st.fields)
		if len(st.fields) < 2 {
			if err := reply(append(st.out[:0], "* BAD malformed command"...)); err != nil {
				return err
			}
			continue
		}
		tag, verb, args := st.fields[0], st.fields[1], st.fields[2:]
		switch {
		case verbIs(verb, "CAPABILITY"):
			b := append(st.out[:0], "* CAPABILITY IMAP4rev1 LOGINDISABLED-NOT\r\n"...)
			if err := reply(tagged(b, tag, "OK CAPABILITY completed")); err != nil {
				return err
			}
		case verbIs(verb, "LOGIN"):
			if len(args) < 2 {
				if err := reply(tagged(st.out[:0], tag, "BAD LOGIN expects user and password")); err != nil {
					return err
				}
				continue
			}
			// The Backend interface takes strings; these two conversions
			// are the session's only parse-side allocations.
			user, pass := string(unquote(args[0])), string(unquote(args[1]))
			newSess, lerr := s.Backend.Login(user, pass, remote)
			status := "NO LOGIN failed"
			switch {
			case lerr == nil:
				sess = newSess
				status = "OK LOGIN completed"
			case lerr == ErrThrottled:
				status = "NO [UNAVAILABLE] too many attempts"
			case lerr == ErrAccountFrozen:
				status = "NO [CONTACTADMIN] account unavailable"
			}
			if err := reply(tagged(st.out[:0], tag, status)); err != nil {
				return err
			}
		case verbIs(verb, "SELECT"):
			if sess == nil {
				if err := reply(tagged(st.out[:0], tag, "NO not authenticated")); err != nil {
					return err
				}
				continue
			}
			box := "INBOX"
			if len(args) > 0 {
				box = string(unquote(args[0]))
			}
			n, serr := sess.Select(box)
			if serr != nil {
				if err := reply(tagged(st.out[:0], tag, "NO no such mailbox")); err != nil {
					return err
				}
				continue
			}
			selected = true
			b := append(st.out[:0], "* "...)
			b = strconv.AppendInt(b, int64(n), 10)
			b = append(b, " EXISTS\r\n* OK [UIDVALIDITY 1] UIDs valid\r\n"...)
			if err := reply(tagged(b, tag, "OK [READ-ONLY] SELECT completed")); err != nil {
				return err
			}
		case verbIs(verb, "FETCH"):
			if sess == nil || !selected {
				if err := reply(tagged(st.out[:0], tag, "NO no mailbox selected")); err != nil {
					return err
				}
				continue
			}
			if len(args) < 1 {
				if err := reply(tagged(st.out[:0], tag, "BAD FETCH expects sequence set")); err != nil {
					return err
				}
				continue
			}
			lo, hi, ok := parseSeqSet(args[0])
			if !ok {
				if err := reply(tagged(st.out[:0], tag, "BAD bad sequence set")); err != nil {
					return err
				}
				continue
			}
			for seq := lo; seq <= hi; seq++ {
				m, ferr := sess.Fetch(seq)
				if ferr != nil {
					break
				}
				litLen := len("From: ") + len(m.From) + len("\r\nSubject: ") + len(m.Subject) + len("\r\n\r\n") + len(m.Body)
				b := append(st.out[:0], "* "...)
				b = strconv.AppendInt(b, int64(seq), 10)
				b = append(b, " FETCH (BODY[] {"...)
				b = strconv.AppendInt(b, int64(litLen), 10)
				b = append(b, "}\r\nFrom: "...)
				b = append(b, m.From...)
				b = append(b, "\r\nSubject: "...)
				b = append(b, m.Subject...)
				b = append(b, "\r\n\r\n"...)
				b = append(b, m.Body...)
				b = append(b, ')')
				if err := reply(b); err != nil {
					return err
				}
			}
			if err := reply(tagged(st.out[:0], tag, "OK FETCH completed")); err != nil {
				return err
			}
		case verbIs(verb, "NOOP"):
			if err := reply(tagged(st.out[:0], tag, "OK NOOP completed")); err != nil {
				return err
			}
		case verbIs(verb, "LOGOUT"):
			b := append(st.out[:0], "* BYE logging out\r\n"...)
			return reply(tagged(b, tag, "OK LOGOUT completed"))
		default:
			if err := reply(tagged(st.out[:0], tag, "BAD unsupported command")); err != nil {
				return err
			}
		}
	}
}

// verbIs reports whether verb equals want (an upper-case literal),
// ASCII-case-insensitively.
func verbIs(verb []byte, want string) bool {
	if len(verb) != len(want) {
		return false
	}
	for i := 0; i < len(verb); i++ {
		c := verb[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != want[i] {
			return false
		}
	}
	return true
}

// splitQuoted splits line into fields respecting quoted strings (quotes
// are kept in the field). Fields alias line; dst is reused.
func splitQuoted(line []byte, dst [][]byte) [][]byte {
	dst = dst[:0]
	inQ := false
	start := -1
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inQ = !inQ
			if start < 0 {
				start = i
			}
		case c == ' ' && !inQ:
			if start >= 0 {
				dst = append(dst, line[start:i])
				start = -1
			}
		default:
			if start < 0 {
				start = i
			}
		}
	}
	if start >= 0 {
		dst = append(dst, line[start:])
	}
	return dst
}

func unquote(s []byte) []byte {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// parseSeqSet handles "n" and "n:m" (and "n:*" as n:large).
func parseSeqSet(s []byte) (lo, hi int, ok bool) {
	if i := bytes.IndexByte(s, ':'); i >= 0 {
		a, ok1 := atoiBytes(s[:i])
		rest := s[i+1:]
		if len(rest) == 1 && rest[0] == '*' {
			return a, 1 << 30, ok1 && a > 0
		}
		b, ok2 := atoiBytes(rest)
		return a, b, ok1 && ok2 && a > 0 && b >= a
	}
	n, ok1 := atoiBytes(s)
	return n, n, ok1 && n > 0
}
