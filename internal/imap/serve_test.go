package imap

import (
	"net"
	"net/netip"
	"strings"
	"testing"
)

// TestServeOverTCP runs the IMAP server on a real loopback listener and
// drives a full session through the dialer — the same path the attacker's
// collection tooling would use against a networked provider.
func TestServeOverTCP(t *testing.T) {
	b := newMemBackend()
	b.password["net@mail.test"] = "pw123456"
	b.boxes["net@mail.test"] = []Message{{From: "x@y.test", Subject: "Hi", Body: "over tcp"}}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer ln.Close()
	srv := NewServer(b)
	go srv.Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Login("net@mail.test", "pw123456"); err != nil {
		t.Fatal(err)
	}
	n, err := c.Select("INBOX")
	if err != nil || n != 1 {
		t.Fatalf("Select = %d, %v", n, err)
	}
	msgs, err := c.Fetch(1, 1)
	if err != nil || len(msgs) != 1 || msgs[0].Body != "over tcp" {
		t.Fatalf("Fetch = %+v, %v", msgs, err)
	}
	if err := c.Logout(); err != nil {
		t.Fatal(err)
	}
	// The backend saw a real loopback remote address.
	if len(b.logins) != 1 || !b.logins[0].IsLoopback() {
		t.Fatalf("backend remote = %v", b.logins)
	}
}

// TestServerProtocolErrors drives malformed commands straight down a pipe.
func TestServerProtocolErrors(t *testing.T) {
	b := newMemBackend()
	b.password["err@mail.test"] = "pw123456"
	srv := NewServer(b)
	cliConn, srvConn := net.Pipe()
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.ServeConn(srvConn, netip.Addr{}); srvConn.Close() }()
	defer func() { cliConn.Close(); <-done }()

	buf := make([]byte, 1024)
	read := func() string {
		n, err := cliConn.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf[:n])
	}
	// net.Pipe is unbuffered: every server Write must be consumed. send
	// reads until the reply that answers the command (tagged with the
	// command's tag, or any * BAD for malformed input).
	send := func(line string) string {
		tag, _, _ := strings.Cut(line, " ")
		if _, err := cliConn.Write([]byte(line + "\r\n")); err != nil {
			t.Fatal(err)
		}
		var all strings.Builder
		for {
			chunk := read()
			all.WriteString(chunk)
			if strings.Contains(chunk, tag+" ") || strings.HasPrefix(chunk, "* BAD") {
				return all.String()
			}
		}
	}
	if greeting := read(); !strings.HasPrefix(greeting, "* OK") {
		t.Fatalf("greeting = %q", greeting)
	}
	if r := send("garbage"); !strings.Contains(r, "BAD") {
		t.Fatalf("bare word reply = %q", r)
	}
	if r := send("a1 CAPABILITY"); !strings.Contains(r, "IMAP4rev1") {
		t.Fatalf("capability = %q", r)
	}
	if r := send("a2 LOGIN onlyuser"); !strings.Contains(r, "BAD") {
		t.Fatalf("short login = %q", r)
	}
	if r := send("a3 SELECT INBOX"); !strings.Contains(r, "NO") {
		t.Fatalf("select before login = %q", r)
	}
	if r := send("a4 FETCH 1 (BODY[])"); !strings.Contains(r, "NO") {
		t.Fatalf("fetch before login = %q", r)
	}
	if r := send("a5 FROBNICATE"); !strings.Contains(r, "BAD") {
		t.Fatalf("unknown verb = %q", r)
	}
	if r := send(`a6 LOGIN "err@mail.test" "pw123456"`); !strings.Contains(r, "OK") {
		t.Fatalf("login = %q", r)
	}
	if r := send("a7 SELECT Junk"); !strings.Contains(r, "NO") {
		t.Fatalf("bad mailbox = %q", r)
	}
	if r := send("a8 SELECT INBOX"); !strings.Contains(r, "EXISTS") {
		t.Fatalf("select = %q", r)
	}
	if r := send("a9 FETCH x (BODY[])"); !strings.Contains(r, "BAD") {
		t.Fatalf("bad seq set = %q", r)
	}
	if r := send("a10 NOOP"); !strings.Contains(r, "OK") {
		t.Fatalf("noop = %q", r)
	}
	if r := send("a11 LOGOUT"); !strings.Contains(r, "BYE") {
		t.Fatalf("logout = %q", r)
	}
}
