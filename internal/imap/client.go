package imap

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
)

// Client is a minimal IMAP client: the attacker simulation drives it to
// log in to stolen accounts and siphon mail, producing exactly the
// provider-side login telemetry Tripwire monitors.
//
// A Client is reusable: Reset rebinds it to a fresh connection while
// keeping its internal buffers, so the stuffing bot pool can drive tens of
// thousands of sequential sessions through one Client without per-session
// garbage. The zero value plus Reset is equivalent to Dial.
type Client struct {
	conn    net.Conn
	r       lineReader
	tag     int
	tagBuf  []byte // current command tag ("aNNN"), reused
	scratch []byte // outgoing command build buffer, reused
}

// Dial starts an IMAP session over conn, consuming the server greeting.
func Dial(conn net.Conn) (*Client, error) {
	c := &Client{}
	if err := c.Reset(conn); err != nil {
		return nil, err
	}
	return c, nil
}

// Reset rebinds the client to a fresh connection, rewinds the tag counter,
// and consumes the server greeting. Buffers from previous sessions are
// retained.
func (c *Client) Reset(conn net.Conn) error {
	c.conn = conn
	c.r.reset(conn)
	c.tag = 0
	line, err := c.r.ReadLine()
	if err != nil {
		return fmt.Errorf("imap: reading greeting: %w", err)
	}
	if !bytes.HasPrefix(line, []byte("* OK")) {
		return fmt.Errorf("imap: unexpected greeting %q", line)
	}
	return nil
}

// begin allocates the next tag and returns the scratch buffer primed with
// "tag " for the caller to append the command body onto; pass the result
// to send.
func (c *Client) begin() []byte {
	c.tag++
	t := c.tagBuf[:0]
	t = append(t, 'a')
	// Zero-pad to three digits, matching the classic aNNN tag shape.
	if c.tag < 100 {
		t = append(t, '0')
	}
	if c.tag < 10 {
		t = append(t, '0')
	}
	t = strconv.AppendInt(t, int64(c.tag), 10)
	c.tagBuf = t
	b := append(c.scratch[:0], t...)
	return append(b, ' ')
}

// send terminates and writes a command line built by begin.
func (c *Client) send(line []byte) error {
	line = append(line, '\r', '\n')
	c.scratch = line
	_, err := c.conn.Write(line)
	return err
}

// isTagged reports whether line is the tagged reply to the current command.
func (c *Client) isTagged(line []byte) bool {
	return len(line) > len(c.tagBuf) && bytes.HasPrefix(line, c.tagBuf) && line[len(c.tagBuf)] == ' '
}

// status reads until the current command's tagged reply and returns the
// status portion ("OK ...", "NO ...", "BAD ..."), skipping untagged
// responses. The returned bytes are valid until the next read.
func (c *Client) status() ([]byte, error) {
	for {
		line, err := c.r.ReadLine()
		if err != nil {
			return nil, err
		}
		if c.isTagged(line) {
			return line[len(c.tagBuf)+1:], nil
		}
	}
}

// Login authenticates. It maps the server's status responses back to the
// sentinel errors so callers can distinguish wrong-password from frozen
// from throttled.
func (c *Client) Login(user, pass string) error {
	line := append(c.begin(), "LOGIN "...)
	line = strconv.AppendQuote(line, user)
	line = append(line, ' ')
	line = strconv.AppendQuote(line, pass)
	if err := c.send(line); err != nil {
		return err
	}
	status, err := c.status()
	if err != nil {
		return err
	}
	switch {
	case bytes.HasPrefix(status, []byte("OK")):
		return nil
	case bytes.Contains(status, []byte("UNAVAILABLE")):
		return ErrThrottled
	case bytes.Contains(status, []byte("CONTACTADMIN")):
		return ErrAccountFrozen
	default:
		return ErrAuthFailed
	}
}

// Select opens a mailbox and returns its message count.
func (c *Client) Select(mailbox string) (int, error) {
	line := append(c.begin(), "SELECT "...)
	line = strconv.AppendQuote(line, mailbox)
	if err := c.send(line); err != nil {
		return 0, err
	}
	count := 0
	for {
		line, err := c.r.ReadLine()
		if err != nil {
			return 0, err
		}
		if n, ok := parseExists(line); ok {
			count = n
			continue
		}
		if c.isTagged(line) {
			if bytes.HasPrefix(line[len(c.tagBuf)+1:], []byte("OK")) {
				return count, nil
			}
			return 0, fmt.Errorf("imap: SELECT failed: %s", line)
		}
	}
}

// parseExists recognizes "* N EXISTS".
func parseExists(line []byte) (int, bool) {
	const suffix = " EXISTS"
	if !bytes.HasPrefix(line, []byte("* ")) || !bytes.HasSuffix(line, []byte(suffix)) {
		return 0, false
	}
	return atoiBytes(line[2 : len(line)-len(suffix)])
}

// Fetch retrieves messages lo..hi (1-based, inclusive).
func (c *Client) Fetch(lo, hi int) ([]Message, error) {
	line := append(c.begin(), "FETCH "...)
	line = strconv.AppendInt(line, int64(lo), 10)
	line = append(line, ':')
	line = strconv.AppendInt(line, int64(hi), 10)
	line = append(line, " (BODY[])"...)
	if err := c.send(line); err != nil {
		return nil, err
	}
	var out []Message
	for {
		line, err := c.r.ReadLine()
		if err != nil {
			return nil, err
		}
		if size, ok := parseFetchLiteral(line); ok {
			lit, err := c.r.ReadN(size)
			if err != nil {
				return nil, err
			}
			// Consume the closing ")" line.
			if _, err := c.r.ReadLine(); err != nil {
				return nil, err
			}
			out = append(out, parseLiteral(lit))
			continue
		}
		if c.isTagged(line) {
			if bytes.Contains(line, []byte("OK")) {
				return out, nil
			}
			return out, fmt.Errorf("imap: FETCH failed: %s", line)
		}
	}
}

// parseFetchLiteral recognizes "* N FETCH (BODY[] {SIZE}" and returns the
// literal size.
func parseFetchLiteral(line []byte) (int, bool) {
	const marker = " FETCH (BODY[] {"
	if !bytes.HasPrefix(line, []byte("* ")) {
		return 0, false
	}
	i := bytes.Index(line, []byte(marker))
	if i < 0 || line[len(line)-1] != '}' {
		return 0, false
	}
	if _, ok := atoiBytes(line[2:i]); !ok {
		return 0, false
	}
	return atoiBytes(line[i+len(marker) : len(line)-1])
}

// Logout ends the session and closes the connection.
func (c *Client) Logout() error {
	_ = c.send(append(c.begin(), "LOGOUT"...))
	// Read until the tagged reply or EOF; then close.
	for {
		line, err := c.r.ReadLine()
		if err != nil {
			break
		}
		if c.isTagged(line) {
			break
		}
	}
	return c.conn.Close()
}

func parseLiteral(lit []byte) Message {
	var m Message
	head, body, found := bytes.Cut(lit, []byte("\r\n\r\n"))
	if !found {
		m.Body = string(lit)
		return m
	}
	for len(head) > 0 {
		var line []byte
		if i := bytes.Index(head, []byte("\r\n")); i >= 0 {
			line, head = head[:i], head[i+2:]
		} else {
			line, head = head, nil
		}
		if v, ok := bytes.CutPrefix(line, []byte("From: ")); ok {
			m.From = string(v)
		}
		if v, ok := bytes.CutPrefix(line, []byte("Subject: ")); ok {
			m.Subject = string(v)
		}
	}
	m.Body = string(body)
	return m
}

// atoiBytes parses an unsigned decimal without allocating.
func atoiBytes(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

var crlf = []byte("\r\n")

// lineReader reads CRLF lines plus fixed-size literals from a fixed,
// reusable buffer; returned slices alias the buffer and are valid until
// the next read call.
type lineReader struct {
	conn net.Conn
	buf  []byte
	r, w int
}

// reset rebinds the reader to conn, keeping its buffer.
func (l *lineReader) reset(conn net.Conn) {
	l.conn = conn
	l.r, l.w = 0, 0
	if l.buf == nil {
		l.buf = make([]byte, 4096)
	}
}

// fill compacts the buffer and reads more bytes, growing only when a
// single line or literal outsizes the buffer.
func (l *lineReader) fill() error {
	if l.r > 0 {
		n := copy(l.buf, l.buf[l.r:l.w])
		l.r, l.w = 0, n
	}
	if l.w == len(l.buf) {
		bigger := make([]byte, 2*len(l.buf))
		copy(bigger, l.buf[:l.w])
		l.buf = bigger
	}
	n, err := l.conn.Read(l.buf[l.w:])
	if n > 0 {
		l.w += n
		return nil
	}
	if err != nil {
		return err
	}
	return io.ErrNoProgress
}

// ReadLine returns the next line without its CRLF.
func (l *lineReader) ReadLine() ([]byte, error) {
	for {
		if i := bytes.Index(l.buf[l.r:l.w], crlf); i >= 0 {
			line := l.buf[l.r : l.r+i]
			l.r += i + 2
			return line, nil
		}
		if err := l.fill(); err != nil {
			return nil, err
		}
	}
}

// ReadN returns exactly n bytes.
func (l *lineReader) ReadN(n int) ([]byte, error) {
	for l.w-l.r < n {
		if err := l.fill(); err != nil {
			return nil, err
		}
	}
	out := l.buf[l.r : l.r+n]
	l.r += n
	return out, nil
}
