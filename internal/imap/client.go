package imap

import (
	"fmt"
	"net"
	"strings"
)

// Client is a minimal IMAP client: the attacker simulation drives it to
// log in to stolen accounts and siphon mail, producing exactly the
// provider-side login telemetry Tripwire monitors.
type Client struct {
	conn net.Conn
	r    *lineReader
	w    *lineWriter
	tag  int
}

// Dial starts an IMAP session over conn, consuming the server greeting.
func Dial(conn net.Conn) (*Client, error) {
	c := &Client{conn: conn, r: newLineReader(conn), w: newLineWriter(conn)}
	line, err := c.r.ReadLine()
	if err != nil {
		return nil, fmt.Errorf("imap: reading greeting: %w", err)
	}
	if !strings.HasPrefix(line, "* OK") {
		return nil, fmt.Errorf("imap: unexpected greeting %q", line)
	}
	return c, nil
}

// Login authenticates. It maps the server's status responses back to the
// sentinel errors so callers can distinguish wrong-password from frozen
// from throttled.
func (c *Client) Login(user, pass string) error {
	status, err := c.cmd(fmt.Sprintf("LOGIN %q %q", user, pass))
	if err != nil {
		return err
	}
	switch {
	case strings.HasPrefix(status, "OK"):
		return nil
	case strings.Contains(status, "UNAVAILABLE"):
		return ErrThrottled
	case strings.Contains(status, "CONTACTADMIN"):
		return ErrAccountFrozen
	default:
		return ErrAuthFailed
	}
}

// Select opens a mailbox and returns its message count.
func (c *Client) Select(mailbox string) (int, error) {
	tag := c.nextTag()
	if err := c.w.WriteLine(fmt.Sprintf("%s SELECT %q", tag, mailbox)); err != nil {
		return 0, err
	}
	count := 0
	for {
		line, err := c.r.ReadLine()
		if err != nil {
			return 0, err
		}
		if strings.HasPrefix(line, "* ") && strings.HasSuffix(line, " EXISTS") {
			fmt.Sscanf(line, "* %d EXISTS", &count)
			continue
		}
		if strings.HasPrefix(line, tag+" ") {
			if strings.HasPrefix(line[len(tag)+1:], "OK") {
				return count, nil
			}
			return 0, fmt.Errorf("imap: SELECT failed: %s", line)
		}
	}
}

// Fetch retrieves messages lo..hi (1-based, inclusive).
func (c *Client) Fetch(lo, hi int) ([]Message, error) {
	tag := c.nextTag()
	if err := c.w.WriteLine(fmt.Sprintf("%s FETCH %d:%d (BODY[])", tag, lo, hi)); err != nil {
		return nil, err
	}
	var out []Message
	for {
		line, err := c.r.ReadLine()
		if err != nil {
			return nil, err
		}
		if strings.HasPrefix(line, "* ") && strings.Contains(line, "FETCH (BODY[] {") {
			var seq, size int
			if _, err := fmt.Sscanf(line, "* %d FETCH (BODY[] {%d}", &seq, &size); err != nil {
				continue
			}
			lit, err := c.r.ReadN(size)
			if err != nil {
				return nil, err
			}
			// Consume the closing ")" line.
			if _, err := c.r.ReadLine(); err != nil {
				return nil, err
			}
			out = append(out, parseLiteral(lit))
			continue
		}
		if strings.HasPrefix(line, tag+" ") {
			if strings.Contains(line, "OK") {
				return out, nil
			}
			return out, fmt.Errorf("imap: FETCH failed: %s", line)
		}
	}
}

// Logout ends the session and closes the connection.
func (c *Client) Logout() error {
	tag := c.nextTag()
	_ = c.w.WriteLine(tag + " LOGOUT")
	// Read until the tagged reply or EOF; then close.
	for {
		line, err := c.r.ReadLine()
		if err != nil {
			break
		}
		if strings.HasPrefix(line, tag+" ") {
			break
		}
	}
	return c.conn.Close()
}

// cmd sends a tagged command and returns the tagged status ("OK ...",
// "NO ...", "BAD ..."), skipping untagged responses.
func (c *Client) cmd(body string) (string, error) {
	tag := c.nextTag()
	if err := c.w.WriteLine(tag + " " + body); err != nil {
		return "", err
	}
	for {
		line, err := c.r.ReadLine()
		if err != nil {
			return "", err
		}
		if strings.HasPrefix(line, tag+" ") {
			return line[len(tag)+1:], nil
		}
	}
}

func (c *Client) nextTag() string {
	c.tag++
	return fmt.Sprintf("a%03d", c.tag)
}

func parseLiteral(lit string) Message {
	var m Message
	head, body, found := strings.Cut(lit, "\r\n\r\n")
	if !found {
		m.Body = lit
		return m
	}
	for _, line := range strings.Split(head, "\r\n") {
		if v, ok := strings.CutPrefix(line, "From: "); ok {
			m.From = v
		}
		if v, ok := strings.CutPrefix(line, "Subject: "); ok {
			m.Subject = v
		}
	}
	m.Body = body
	return m
}

// lineReader reads CRLF lines plus fixed-size literals.
type lineReader struct {
	conn net.Conn
	buf  []byte
}

func newLineReader(conn net.Conn) *lineReader { return &lineReader{conn: conn} }

func (r *lineReader) fill() error {
	chunk := make([]byte, 4096)
	n, err := r.conn.Read(chunk)
	if n > 0 {
		r.buf = append(r.buf, chunk[:n]...)
		return nil
	}
	return err
}

// ReadLine returns the next line without its CRLF.
func (r *lineReader) ReadLine() (string, error) {
	for {
		if i := strings.Index(string(r.buf), "\r\n"); i >= 0 {
			line := string(r.buf[:i])
			r.buf = r.buf[i+2:]
			return line, nil
		}
		if err := r.fill(); err != nil {
			return "", err
		}
	}
}

// ReadN returns exactly n bytes.
func (r *lineReader) ReadN(n int) (string, error) {
	for len(r.buf) < n {
		if err := r.fill(); err != nil {
			return "", err
		}
	}
	out := string(r.buf[:n])
	r.buf = r.buf[n:]
	return out, nil
}

type lineWriter struct{ conn net.Conn }

func newLineWriter(conn net.Conn) *lineWriter { return &lineWriter{conn: conn} }

func (w *lineWriter) WriteLine(s string) error {
	_, err := w.conn.Write([]byte(s + "\r\n"))
	return err
}
