// Package imap implements a minimal IMAP4rev1 subset: enough of the
// protocol (CAPABILITY, LOGIN, SELECT, FETCH, NOOP, LOGOUT) for the
// attacker simulation to access stolen honey email accounts the way the
// paper observed real attackers doing — "typically via IMAP" (§6.4) — and
// for the email provider to log every successful login with timestamp,
// remote IP, and method.
package imap

import (
	"errors"
	"net/netip"
)

// Message is one mailbox entry as exposed over FETCH.
type Message struct {
	From    string
	Subject string
	Body    string
}

// Common authentication results a Backend returns.
var (
	// ErrAuthFailed means the credentials were wrong.
	ErrAuthFailed = errors.New("imap: authentication failed")
	// ErrAccountFrozen means the account exists but has been frozen or
	// deactivated by the provider.
	ErrAccountFrozen = errors.New("imap: account frozen")
	// ErrThrottled means the provider's brute-force defence rejected the
	// attempt regardless of credential validity.
	ErrThrottled = errors.New("imap: too many attempts")
)

// Backend authenticates logins and provides mailbox sessions. The email
// provider implements this; every successful Login is a tripped wire.
type Backend interface {
	// Login authenticates user/pass arriving from remote. Method is the
	// label recorded in login logs ("IMAP" here).
	Login(user, pass string, remote netip.Addr) (Session, error)
}

// Session is an authenticated mailbox view.
type Session interface {
	// Select opens a mailbox and returns its message count.
	Select(mailbox string) (int, error)
	// Fetch returns the 1-based seq'th message of the selected mailbox.
	Fetch(seq int) (Message, error)
	// Logout releases the session.
	Logout() error
}
