package imap

import (
	"errors"
	"net"
	"net/netip"
	"strings"
	"sync"
	"testing"
)

// memBackend is an in-memory Backend for protocol tests.
type memBackend struct {
	mu       sync.Mutex
	password map[string]string
	boxes    map[string][]Message
	frozen   map[string]bool
	throttle map[string]bool
	logins   []netip.Addr
}

func newMemBackend() *memBackend {
	return &memBackend{
		password: make(map[string]string),
		boxes:    make(map[string][]Message),
		frozen:   make(map[string]bool),
		throttle: make(map[string]bool),
	}
}

func (b *memBackend) Login(user, pass string, remote netip.Addr) (Session, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.throttle[user] {
		return nil, ErrThrottled
	}
	if b.frozen[user] {
		return nil, ErrAccountFrozen
	}
	if b.password[user] != pass || pass == "" {
		return nil, ErrAuthFailed
	}
	b.logins = append(b.logins, remote)
	return &memSession{b: b, user: user}, nil
}

type memSession struct {
	b    *memBackend
	user string
}

func (s *memSession) Select(mailbox string) (int, error) {
	if !strings.EqualFold(mailbox, "INBOX") {
		return 0, errors.New("no such mailbox")
	}
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	return len(s.b.boxes[s.user]), nil
}

func (s *memSession) Fetch(seq int) (Message, error) {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	box := s.b.boxes[s.user]
	if seq < 1 || seq > len(box) {
		return Message{}, errors.New("no such message")
	}
	return box[seq-1], nil
}

func (s *memSession) Logout() error { return nil }

// dial starts a client/server pair over an in-memory pipe.
func dial(t *testing.T, backend Backend, remote netip.Addr) (*Client, func()) {
	t.Helper()
	srv := NewServer(backend)
	cliConn, srvConn := net.Pipe()
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.ServeConn(srvConn, remote); srvConn.Close() }()
	c, err := Dial(cliConn)
	if err != nil {
		t.Fatal(err)
	}
	return c, func() { cliConn.Close(); <-done }
}

func TestLoginSelectFetchLogout(t *testing.T) {
	b := newMemBackend()
	b.password["gem@mail.test"] = "Website1"
	b.boxes["gem@mail.test"] = []Message{
		{From: "noreply@site.test", Subject: "Verify", Body: "click http://x.test/verify?t=1"},
		{From: "deals@shop.test", Subject: "Sale\r\nnow", Body: "multi\r\nline\r\nbody"},
	}
	remote := netip.MustParseAddr("45.67.89.10")
	c, cleanup := dial(t, b, remote)
	defer cleanup()

	if err := c.Login("gem@mail.test", "Website1"); err != nil {
		t.Fatal(err)
	}
	n, err := c.Select("INBOX")
	if err != nil || n != 2 {
		t.Fatalf("Select = %d, %v", n, err)
	}
	msgs, err := c.Fetch(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("fetched %d messages", len(msgs))
	}
	if msgs[0].Subject != "Verify" || !strings.Contains(msgs[0].Body, "verify?t=1") {
		t.Fatalf("msg[0] = %+v", msgs[0])
	}
	if !strings.Contains(msgs[1].Body, "multi") {
		t.Fatalf("msg[1] body = %q", msgs[1].Body)
	}
	if err := c.Logout(); err != nil {
		t.Fatal(err)
	}
	if len(b.logins) != 1 || b.logins[0] != remote {
		t.Fatalf("backend saw logins %v, want [%v]", b.logins, remote)
	}
}

func TestLoginWrongPassword(t *testing.T) {
	b := newMemBackend()
	b.password["u@mail.test"] = "right"
	c, cleanup := dial(t, b, netip.MustParseAddr("1.2.3.4"))
	defer cleanup()
	if err := c.Login("u@mail.test", "wrong"); err != ErrAuthFailed {
		t.Fatalf("err = %v, want ErrAuthFailed", err)
	}
}

func TestLoginFrozenAndThrottled(t *testing.T) {
	b := newMemBackend()
	b.password["f@mail.test"] = "pw"
	b.frozen["f@mail.test"] = true
	b.password["t@mail.test"] = "pw"
	b.throttle["t@mail.test"] = true

	c, cleanup := dial(t, b, netip.MustParseAddr("1.2.3.4"))
	defer cleanup()
	if err := c.Login("f@mail.test", "pw"); err != ErrAccountFrozen {
		t.Fatalf("frozen err = %v", err)
	}
	if err := c.Login("t@mail.test", "pw"); err != ErrThrottled {
		t.Fatalf("throttled err = %v", err)
	}
}

func TestSelectBeforeLogin(t *testing.T) {
	c, cleanup := dial(t, newMemBackend(), netip.MustParseAddr("1.2.3.4"))
	defer cleanup()
	if _, err := c.Select("INBOX"); err == nil {
		t.Fatal("SELECT before LOGIN allowed")
	}
}

func TestFetchEmptyMailbox(t *testing.T) {
	b := newMemBackend()
	b.password["e@mail.test"] = "pw"
	c, cleanup := dial(t, b, netip.MustParseAddr("1.2.3.4"))
	defer cleanup()
	if err := c.Login("e@mail.test", "pw"); err != nil {
		t.Fatal(err)
	}
	n, err := c.Select("INBOX")
	if err != nil || n != 0 {
		t.Fatalf("Select empty = %d, %v", n, err)
	}
	msgs, err := c.Fetch(1, 10)
	if err != nil || len(msgs) != 0 {
		t.Fatalf("Fetch on empty = %v, %v", msgs, err)
	}
}

func TestQuotedCredentials(t *testing.T) {
	b := newMemBackend()
	b.password["q@mail.test"] = "pass with space"
	c, cleanup := dial(t, b, netip.MustParseAddr("1.2.3.4"))
	defer cleanup()
	if err := c.Login("q@mail.test", "pass with space"); err != nil {
		t.Fatalf("quoted password login failed: %v", err)
	}
}

func TestParseSeqSet(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi int
		ok     bool
	}{
		{"1", 1, 1, true},
		{"2:5", 2, 5, true},
		{"3:*", 3, 1 << 30, true},
		{"0", 0, 0, false},
		{"5:2", 0, 0, false},
		{"x", 0, 0, false},
	}
	for _, tc := range cases {
		lo, hi, ok := parseSeqSet([]byte(tc.in))
		if ok != tc.ok || (ok && (lo != tc.lo || hi != tc.hi)) {
			t.Errorf("parseSeqSet(%q) = %d,%d,%v; want %d,%d,%v", tc.in, lo, hi, ok, tc.lo, tc.hi, tc.ok)
		}
	}
}

func TestSplitQuoted(t *testing.T) {
	got := splitQuoted([]byte(`a1 LOGIN "user name" "pass word"`), nil)
	want := []string{"a1", "LOGIN", `"user name"`, `"pass word"`}
	if len(got) != len(want) {
		t.Fatalf("splitQuoted = %q", got)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("splitQuoted[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
