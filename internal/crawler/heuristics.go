package crawler

import (
	"regexp"
	"regexp/syntax"
	"strings"
	"sync"

	"tripwire/internal/browser"
)

// Meaning is the crawler's guess at what a form field is asking for. It is
// deliberately independent of the synthetic web's ground truth: the crawler
// recovers meaning from rendered markup alone, exactly as the paper's
// heuristics did against live sites.
type Meaning int

// Field meanings the filler knows how to satisfy.
const (
	MeaningUnknown Meaning = iota
	MeaningEmail
	MeaningPassword
	MeaningConfirmPassword
	MeaningUsername
	MeaningFirstName
	MeaningLastName
	MeaningFullName
	MeaningZip
	MeaningPhone
	MeaningDOB
	MeaningState
	MeaningTOS
	MeaningNewsletter
	MeaningCaptcha
	MeaningHidden
	MeaningCreditCard
	MeaningSearch
)

// String names the meaning.
func (m Meaning) String() string {
	names := [...]string{
		"unknown", "email", "password", "confirm-password", "username",
		"first-name", "last-name", "full-name", "zip", "phone", "dob",
		"state", "tos", "newsletter", "captcha", "hidden", "credit-card",
		"search",
	}
	if int(m) < len(names) {
		return names[m]
	}
	return "Meaning(?)"
}

// rule is one weighted regular expression, the paper's §4.3.1 heuristic
// primitive: "a series of weighted regular expressions and sets of DOM
// elements to which they apply."
//
// Rules are matched against pre-lowered text: instead of compiling with
// (?i) and letting every MatchString case-fold its way through the page,
// the pattern itself is lowered at construction and each caller lowers its
// input exactly once. lits is a prefilter — literal substrings extracted
// from the pattern such that any match must contain at least one of them —
// letting score skip the regex engine for the common no-match case.
type rule struct {
	re     *regexp.Regexp
	lits   []string
	weight float64
}

func rules(pairs ...any) []rule {
	var out []rule
	for i := 0; i < len(pairs); i += 2 {
		pat := pairs[i].(string)
		// Lowering the pattern must not change its meaning: an upper-case
		// escape class (\B, \W, \D, \S, \P) would silently invert.
		for j := 0; j+1 < len(pat); j++ {
			if pat[j] == '\\' && pat[j+1] >= 'A' && pat[j+1] <= 'Z' {
				panic("crawler: rule pattern uses upper-case escape, incompatible with lowered matching: " + pat)
			}
		}
		low := strings.ToLower(pat)
		out = append(out, rule{
			re:     regexp.MustCompile(low),
			lits:   requiredLits(low),
			weight: toF(pairs[i+1]),
		})
	}
	return out
}

func toF(v any) float64 {
	switch x := v.(type) {
	case int:
		return float64(x)
	case float64:
		return x
	default:
		panic("crawler: rule weight must be numeric")
	}
}

// requiredLits extracts literal substrings from pat such that every match
// of pat contains at least one of them, or nil when no such guarantee can
// be derived. The set drives score's Contains prefilter.
func requiredLits(pat string) []string {
	re, err := syntax.Parse(pat, syntax.Perl)
	if err != nil {
		return nil
	}
	lits, ok := litsOf(re.Simplify())
	if !ok {
		return nil
	}
	return lits
}

func litsOf(re *syntax.Regexp) ([]string, bool) {
	switch re.Op {
	case syntax.OpLiteral:
		if re.Flags&syntax.FoldCase != 0 || len(re.Rune) == 0 {
			return nil, false
		}
		return []string{string(re.Rune)}, true
	case syntax.OpCapture, syntax.OpPlus:
		return litsOf(re.Sub[0])
	case syntax.OpRepeat:
		if re.Min >= 1 {
			return litsOf(re.Sub[0])
		}
		return nil, false
	case syntax.OpConcat:
		// Any single required sub suffices; prefer the most selective one
		// (longest minimum literal).
		var best []string
		bestLen := 0
		for _, sub := range re.Sub {
			if lits, ok := litsOf(sub); ok {
				if l := minLitLen(lits); l > bestLen {
					best, bestLen = lits, l
				}
			}
		}
		return best, best != nil
	case syntax.OpAlternate:
		// Every branch must contribute, else a match could avoid the set.
		var all []string
		for _, sub := range re.Sub {
			lits, ok := litsOf(sub)
			if !ok {
				return nil, false
			}
			all = append(all, lits...)
		}
		return all, true
	}
	return nil, false
}

func minLitLen(lits []string) int {
	m := len(lits[0])
	for _, l := range lits[1:] {
		if len(l) < m {
			m = len(l)
		}
	}
	return m
}

// score sums the weights of rules matching text. text must already be
// lower-cased; rules are compiled lowered to match.
func score(rs []rule, text string) float64 {
	var s float64
	for _, r := range rs {
		if r.lits != nil && !containsAny(text, r.lits) {
			continue
		}
		if r.re.MatchString(text) {
			s += r.weight
		}
	}
	return s
}

func containsAny(text string, lits []string) bool {
	for _, l := range lits {
		if strings.Contains(text, l) {
			return true
		}
	}
	return false
}

// fieldRules maps each meaning to its scoring rules, applied to a field's
// Context() (name, id, label, placeholder).
var fieldRules = map[Meaning][]rule{
	MeaningEmail: rules(
		`e-?mail`, 3.0,
		`\bmail\b`, 1.5,
		`@`, 1.0,
		`address`, 0.3,
	),
	MeaningConfirmPassword: rules(
		`(confirm|repeat|verify|again|re-?type).*(pass|pwd)`, 4.0,
		`(pass|pwd).*(confirm|repeat|verify|again|2\b)`, 4.0,
		`password2|pass2`, 4.0,
	),
	MeaningPassword: rules(
		`pass(word)?|pwd|passwd`, 3.0,
	),
	MeaningUsername: rules(
		`user ?name|nick(name)?|\blogin\b|display name|screen ?name`, 3.0,
		`\buser\b`, 2.0,
		`choose a username`, 2.0,
	),
	MeaningFirstName: rules(
		`first.?name|given.?name|\bfname\b`, 3.0,
	),
	MeaningLastName: rules(
		`last.?name|sur.?name|family.?name|\blname\b`, 3.0,
	),
	MeaningFullName: rules(
		`full.?name|real.?name|your name`, 3.0,
		`^name | name$|\bname\b`, 1.2,
	),
	MeaningZip: rules(
		`zip|postal`, 3.0,
	),
	MeaningPhone: rules(
		`phone|mobile|telephone|cell`, 3.0,
	),
	MeaningDOB: rules(
		`birth|\bdob\b|birthday`, 3.0,
	),
	MeaningState: rules(
		`state|region|province`, 3.0,
	),
	MeaningTOS: rules(
		`terms|\btos\b|agree|accept|conditions|privacy`, 3.0,
	),
	MeaningNewsletter: rules(
		`newsletter|subscribe|updates|offers|optin|mailing`, 3.0,
	),
	MeaningCaptcha: rules(
		`captcha|security.?code|verification|code shown|prove you|human|security.?check`, 3.0,
	),
	MeaningCreditCard: rules(
		`card|credit|\bcc[_-]?num`, 3.0,
	),
	MeaningSearch: rules(
		`\bq\b|search|query`, 3.0,
	),
}

// classifyPriority fixes the meaning-selection order. It must list every
// key of fieldRules exactly once (a regression test enforces this):
// classification iterates this slice, never the fieldRules map, so Go's
// randomized map-range order can never influence the outcome.
//
// Tie-break rule: candidates are scanned in this order and a later meaning
// replaces the best only on a strictly greater score, so on equal scores
// the earlier (more specific) meaning wins — confirm-password before
// password, first/last name before full name.
var classifyPriority = []Meaning{
	MeaningCaptcha, MeaningConfirmPassword, MeaningPassword, MeaningEmail,
	MeaningUsername, MeaningFirstName, MeaningLastName, MeaningZip,
	MeaningPhone, MeaningDOB, MeaningState, MeaningTOS, MeaningNewsletter,
	MeaningCreditCard, MeaningSearch, MeaningFullName,
}

// classifyThreshold is the minimum score to accept a meaning.
const classifyThreshold = 1.5

// classifyCache memoizes classification by (input type, context).
// classifyUncached is a pure function of those two strings, so memoized
// results are exact — re-visited pages (the paper's monthly re-crawls)
// skip the weighted-regex scan entirely, and worker-count invariance is
// untouched because a cache hit returns byte-for-byte what a fresh
// computation would. The two-level map keeps lookups allocation-free.
var classifyCache = struct {
	sync.RWMutex
	m map[string]map[string]Meaning
	n int
}{m: make(map[string]map[string]Meaning)}

// classifyCacheMax bounds the memo; on overflow the whole cache resets
// (simple, and correctness never depends on residency).
const classifyCacheMax = 1 << 13

// ClassifyField guesses a field's meaning from its markup context.
func ClassifyField(f *browser.Field) Meaning {
	if f.Type == "hidden" {
		return MeaningHidden
	}
	ctx := f.Context()
	classifyCache.RLock()
	m, ok := classifyCache.m[f.Type][ctx]
	classifyCache.RUnlock()
	if ok {
		classifyHits.Add(1)
		return m
	}
	classifyMisses.Add(1)
	m = classifyUncached(f.Type, ctx)
	classifyCache.Lock()
	if classifyCache.n >= classifyCacheMax {
		classifyCache.m = make(map[string]map[string]Meaning)
		classifyCache.n = 0
	}
	inner := classifyCache.m[f.Type]
	if inner == nil {
		inner = make(map[string]Meaning)
		classifyCache.m[f.Type] = inner
	}
	if _, dup := inner[ctx]; !dup {
		inner[ctx] = m
		classifyCache.n++
	}
	classifyCache.Unlock()
	return m
}

// classifyUncached scores a (type, context) pair against the heuristics.
// ctx must be lower-cased (browser.Field.Context lowers it).
func classifyUncached(typ, ctx string) Meaning {
	// Structural signals first: input type is the strongest evidence a
	// rendering engine offers.
	switch typ {
	case "password":
		// Distinguish confirm-password by textual context.
		if score(fieldRules[MeaningConfirmPassword], ctx) >= classifyThreshold {
			return MeaningConfirmPassword
		}
		return MeaningPassword
	case "email":
		return MeaningEmail
	case "checkbox":
		if score(fieldRules[MeaningNewsletter], ctx) > score(fieldRules[MeaningTOS], ctx) {
			return MeaningNewsletter
		}
		if score(fieldRules[MeaningTOS], ctx) >= classifyThreshold {
			return MeaningTOS
		}
		return MeaningUnknown
	case "select":
		if score(fieldRules[MeaningState], ctx) >= classifyThreshold {
			return MeaningState
		}
		if score(fieldRules[MeaningDOB], ctx) >= classifyThreshold {
			return MeaningDOB
		}
		return MeaningUnknown
	}
	best, bestScore := MeaningUnknown, 0.0
	for _, m := range classifyPriority {
		if s := score(fieldRules[m], ctx); s > bestScore {
			best, bestScore = m, s
		}
	}
	if bestScore < classifyThreshold {
		return MeaningUnknown
	}
	return best
}

// Registration-link scoring (applied to anchor text and href).
var (
	regLinkTextRules = rules(
		`sign\s?up`, 3.0,
		`register`, 3.0,
		`create (an )?(account|profile)`, 3.0,
		`join( now| free)?\b`, 2.2,
		`registration`, 2.5,
		`get started`, 1.5,
		`new user`, 2.0,
		`create account`, 3.0,
	)
	regLinkHrefRules = rules(
		`/(register|registration|signup|sign-up|join|create-account)`, 2.0,
		`/(account|users?)/(new|register|signup)`, 2.0,
	)
	regLinkNegative = rules(
		`\b(log|sign)\s?in\b|logout|password reset|forgot`, -4.0,
		`privacy|terms|help|contact|about`, -2.0,
	)
)

// ScoreRegistrationLink returns the heuristic score that a link leads to a
// registration page.
func ScoreRegistrationLink(l browser.Link) float64 {
	return scoreRegistrationLinkLower(strings.ToLower(l.Text), strings.ToLower(l.URL.Path))
}

// scoreRegistrationLinkLower is ScoreRegistrationLink over text and path
// the caller has already lower-cased (once per link, not once per rule).
func scoreRegistrationLinkLower(text, path string) float64 {
	return score(regLinkTextRules, text) +
		score(regLinkHrefRules, path) +
		score(regLinkNegative, text)
}

// Registration-page and submission-outcome heuristics.
var (
	regPageTextRules = rules(
		`create (your |an )?account`, 2.0,
		`sign\s?up`, 1.5,
		`register`, 1.5,
		`join`, 0.8,
	)
	successRules = rules(
		`thank(s| you)`, 2.5,
		`success`, 2.5,
		`account (has been|was) created`, 3.0,
		`welcome`, 2.0,
		`verify your (e-?mail|account)`, 2.5,
		`check your (e-?mail|inbox)`, 2.5,
		`registration (complete|successful)`, 3.0,
	)
	failureRules = rules(
		`\berror\b`, 3.0,
		`invalid`, 3.0,
		`incorrect`, 3.0,
		`(already|is) taken`, 3.0,
		`missing`, 2.5,
		`expired`, 2.5,
		`must be|does not match|do not match|too (short|long)`, 2.5,
		`try again`, 2.0,
		`please correct`, 3.0,
	)
)

// LooksLikeSuccess evaluates a post-submission page: success keywords must
// outscore failure keywords and clear a minimum bar.
func LooksLikeSuccess(pageText string) bool {
	return looksLikeSuccessLower(strings.ToLower(pageText))
}

// looksLikeSuccessLower is LooksLikeSuccess over already-lowered text.
func looksLikeSuccessLower(lower string) bool {
	succ := score(successRules, lower)
	fail := score(failureRules, lower)
	return succ >= 2.0 && succ > fail
}

// FormScore rates how much a form looks like a registration form. Forms
// without a password field score zero; email evidence, confirm-password,
// and surrounding page text all add weight; login-shaped forms (password +
// a single identifier, few fields) are penalized.
func FormScore(f *browser.Form, pageText string) float64 {
	var hasPassword, hasConfirm, hasEmailish bool
	fillable := 0
	for i := range f.Fields {
		fld := &f.Fields[i]
		switch ClassifyField(fld) {
		case MeaningPassword:
			hasPassword = true
		case MeaningConfirmPassword:
			hasConfirm = true
		case MeaningEmail:
			hasEmailish = true
		}
		if fld.Type != "hidden" && fld.Type != "submit" && fld.Name != "" {
			fillable++
		}
	}
	if !hasPassword {
		return 0
	}
	s := 2.0
	if hasEmailish {
		s += 3.0
	}
	if hasConfirm {
		s += 2.0
	}
	if fillable >= 3 {
		s += 1.0
	}
	if fillable <= 2 && !hasEmailish {
		s -= 3.0 // login-shaped
	}
	lower := strings.ToLower(pageText)
	s += 0.5 * score(regPageTextRules, lower)
	if strings.Contains(lower, "log in") || strings.Contains(lower, "login") {
		s -= 0.5
	}
	return s
}
