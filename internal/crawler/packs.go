package crawler

// Language packs: the paper identifies multi-language support as "the
// single greatest improvement to the crawler's coverage" (§7.2, §6.2.1 —
// six of seven non-English missed breaches were Chinese-language sites).
// A Pack extends the English-only heuristics with per-language link text,
// registration paths, and submission-outcome wording. Field *names* on
// non-English sites are frequently English-ish (name="email"), so the
// field classifier usually transfers once the page is found.

// Pack is a per-language heuristic extension.
type Pack struct {
	Language  string
	linkText  []rule
	linkHref  []rule
	success   []rule
	failure   []rule
	pageWords []rule
}

// BuiltinPacks returns heuristic packs for the non-English languages the
// synthetic web speaks. Callers pass them to Config.Packs.
func BuiltinPacks() []Pack {
	return []Pack{
		{
			Language:  "zh",
			linkText:  rules(`注册`, 3.0, `创建账户`, 3.0, `立即加入`, 2.5, `新用户`, 2.0),
			linkHref:  rules(`/(zhuce|xinyonghu|kaihu)`, 2.0),
			success:   rules(`注册成功`, 3.0, `成功`, 2.0, `欢迎`, 2.0),
			failure:   rules(`错误`, 3.0, `无效`, 3.0, `已收到`, 0.0),
			pageWords: rules(`创建您的账户`, 2.0),
		},
		{
			Language:  "ru",
			linkText:  rules(`Регистрация`, 3.0, `Создать аккаунт`, 3.0, `Присоединиться`, 2.5),
			linkHref:  rules(`/(registraciya|novyi-akkaunt|sozdat)`, 2.0),
			success:   rules(`успешно`, 3.0, `добро пожаловать`, 2.0),
			failure:   rules(`ошибка`, 3.0, `исправьте`, 2.5),
			pageWords: rules(`Создайте аккаунт`, 2.0),
		},
		{
			Language:  "es",
			linkText:  rules(`Reg[ií]strate`, 3.0, `Crear cuenta`, 3.0, `[ÚU]nete`, 2.5),
			linkHref:  rules(`/(registro|crear-cuenta|unirse)`, 2.0),
			success:   rules(`registro completado`, 3.0, `bienvenido`, 2.0),
			failure:   rules(`\berror\b`, 3.0, `corrija`, 2.5),
			pageWords: rules(`Crea tu cuenta`, 2.0),
		},
		{
			Language:  "de",
			linkText:  rules(`Registrieren`, 3.0, `Konto erstellen`, 3.0, `beitreten`, 2.5),
			linkHref:  rules(`/(registrierung|konto-erstellen|mitglied-werden)`, 2.0),
			success:   rules(`erfolgreich`, 3.0, `willkommen`, 2.0),
			failure:   rules(`fehler`, 3.0, `korrigieren`, 2.5),
			pageWords: rules(`Konto erstellen`, 2.0),
		},
		{
			Language:  "fr",
			linkText:  rules(`S'inscrire`, 3.0, `Cr[ée]er un compte`, 3.0, `Rejoignez`, 2.5),
			linkHref:  rules(`/(inscription|creer-compte|adhesion)`, 2.0),
			success:   rules(`inscription r[ée]ussie`, 3.0, `bienvenue`, 2.0),
			failure:   rules(`erreur`, 3.0, `corrigez`, 2.5),
			pageWords: rules(`Cr[ée]ez votre compte`, 2.0),
		},
	}
}
