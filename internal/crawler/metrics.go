package crawler

import (
	"sync/atomic"

	"tripwire/internal/obs"
)

// classifyHits/classifyMisses count ClassifyField cache outcomes. They are
// always-on package atomics (the cache itself is package-global) and are
// exported to a registry at collection time via CounterFunc, so the hot
// path never touches a registry.
var (
	classifyHits   atomic.Uint64
	classifyMisses atomic.Uint64
)

// codeLabels maps each termination Code to its metric label value, indexed
// by the Code itself.
var codeLabels = [...]string{
	CodeOKSubmission:     "ok_submission",
	CodeSubmissionFailed: "submission_failed",
	CodeFieldsMissing:    "fields_missing",
	CodeNoRegistration:   "no_registration",
	CodeSystemError:      "system_error",
}

// Metrics aggregates crawler telemetry. A nil *Metrics is a no-op, so the
// field can be left unset on crawlers that run without observability.
type Metrics struct {
	attempts  *obs.Counter
	pageLoads *obs.Counter
	exposed   *obs.Counter
	// codes is indexed by Result.Code — resolved once here so the hot path
	// never does a label lookup.
	codes [len(codeLabels)]*obs.Counter
}

// NewMetrics registers the crawler metric families on r and resolves the
// per-code counters. It also exposes the classify cache's hit/miss atomics;
// those are package-global, so registering two crawlers on one registry is
// safe (registration is idempotent by name).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{
		attempts:  r.Counter("tripwire_crawler_attempts_total", "Registration attempts started."),
		pageLoads: r.Counter("tripwire_crawler_page_loads_total", "Pages fetched across all registration attempts."),
		exposed:   r.Counter("tripwire_crawler_identities_exposed_total", "Attempts that exposed the identity's credentials to the site."),
	}
	vec := r.CounterVec("tripwire_crawler_outcomes_total", "Registration attempts by termination code (paper Figure 1).", "code", codeLabels[:]...)
	for code, label := range codeLabels {
		m.codes[code] = vec.With(label)
	}
	r.CounterFunc("tripwire_crawler_classify_cache_hits_total", "Field-classification cache hits.", classifyHits.Load)
	r.CounterFunc("tripwire_crawler_classify_cache_misses_total", "Field-classification cache misses.", classifyMisses.Load)
	return m
}

// observe records one finished attempt.
func (m *Metrics) observe(res *Result) {
	if m == nil {
		return
	}
	m.attempts.Inc()
	m.pageLoads.Add(uint64(res.PageLoads))
	if res.Exposed {
		m.exposed.Inc()
	}
	if int(res.Code) < len(m.codes) {
		m.codes[res.Code].Inc()
	}
}
