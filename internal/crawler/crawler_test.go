package crawler

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"tripwire/internal/browser"
	"tripwire/internal/captcha"
	"tripwire/internal/identity"
)

// testSite is a hand-rolled registration site for exercising the crawler
// without webgen, so crawler tests stand alone.
type testSite struct {
	mux         *http.ServeMux
	accounts    map[string]string // email -> password
	withCaptcha bool
	issuer      *captcha.Issuer
}

func newTestSite(withCaptcha bool) *testSite {
	ts := &testSite{
		mux:         http.NewServeMux(),
		accounts:    make(map[string]string),
		withCaptcha: withCaptcha,
		issuer:      captcha.NewIssuer("secret"),
	}
	ts.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body>
			<a href="/login">Log in</a>
			<a href="/help">Help</a>
			<a href="/signup">Sign Up</a>
			</body></html>`)
	})
	ts.mux.HandleFunc("/signup", func(w http.ResponseWriter, r *http.Request) {
		cap := ""
		if ts.withCaptcha {
			ch := captcha.Challenge{ID: "c0000000100000002", Kind: captcha.Image}
			cap = fmt.Sprintf(`<input type="hidden" name="captcha_id" value="%s">
				<p><label>Enter the code shown</label><img src="/captcha/%s.png"><input type="text" name="captcha"></p>`, ch.ID, ch.ID)
		}
		fmt.Fprintf(w, `<html><body><h2>Create your account</h2>
			<form action="/signup" method="post">
			<input type="hidden" name="csrf" value="tok123">
			<p><label for="email">Email address</label><input type="text" name="email" id="email" required></p>
			<p><label for="password">Password</label><input type="password" name="password" id="password" required></p>
			<p><label for="password2">Confirm password</label><input type="password" name="password2" id="password2" required></p>
			<p><input type="checkbox" name="tos" value="on" required> <label>I agree to the Terms of Service</label></p>
			%s
			<input type="submit" value="Create account">
			</form></body></html>`, cap)
	})
	ts.mux.HandleFunc("/captcha/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/captcha/"), ".png")
		fmt.Fprint(w, ts.issuer.RenderImage(captcha.Challenge{ID: id, Kind: captcha.Image}))
	})
	ts.mux.HandleFunc("/login", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body><form action="/login" method="post">
			<p><label>Username</label><input type="text" name="login"></p>
			<p><label>Password</label><input type="password" name="password"></p>
			</form></body></html>`)
	})
	return ts
}

func (ts *testSite) register(w http.ResponseWriter, r *http.Request) {
	r.ParseForm()
	if r.PostFormValue("csrf") != "tok123" ||
		r.PostFormValue("email") == "" ||
		r.PostFormValue("password") == "" ||
		r.PostFormValue("password") != r.PostFormValue("password2") ||
		r.PostFormValue("tos") != "on" {
		fmt.Fprint(w, "<html><body><p>Error: please correct the highlighted fields.</p></body></html>")
		return
	}
	if ts.withCaptcha {
		ch := captcha.Challenge{ID: r.PostFormValue("captcha_id"), Kind: captcha.Image}
		if !ts.issuer.Verify(ch, r.PostFormValue("captcha")) {
			fmt.Fprint(w, "<html><body><p>Error: the verification code was incorrect.</p></body></html>")
			return
		}
	}
	ts.accounts[r.PostFormValue("email")] = r.PostFormValue("password")
	fmt.Fprint(w, "<html><body><h2>Thank you for registering! Your account has been created.</h2></body></html>")
}

func (ts *testSite) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", ts.mux)
	// POST /signup routes to register; GET handled above via ts.mux.
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/signup" && r.Method == http.MethodPost {
			ts.register(w, r)
			return
		}
		ts.mux.ServeHTTP(w, r)
	})
	_ = mux
	return wrapped
}

func testIdentity() *identity.Identity {
	return identity.NewGenerator("mail.test", 99).New(identity.Hard)
}

func newCrawler(solver *captcha.Service) *Crawler {
	cfg := DefaultConfig()
	cfg.RateLimit = 0
	return New(cfg, solver)
}

func TestRegisterHappyPath(t *testing.T) {
	ts := newTestSite(false)
	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: ts.handler()}))
	id := testIdentity()
	res := newCrawler(nil).Register(b, "http://shop.test/", id)
	if res.Code != CodeOKSubmission {
		t.Fatalf("code = %v (%s)", res.Code, res.Detail)
	}
	if !res.Exposed {
		t.Fatal("successful submission must mark identity exposed")
	}
	if pw, ok := ts.accounts[id.Email]; !ok || pw != id.Password {
		t.Fatalf("account not created correctly: %v", ts.accounts)
	}
	if res.RegURL != "http://shop.test/signup" {
		t.Fatalf("RegURL = %q", res.RegURL)
	}
}

func TestRegisterSolvesImageCaptcha(t *testing.T) {
	ts := newTestSite(true)
	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: ts.handler()}))
	solver := captcha.NewService(0, 0, 1) // perfect service
	id := testIdentity()
	res := newCrawler(solver).Register(b, "http://shop.test/", id)
	if res.Code != CodeOKSubmission {
		t.Fatalf("code = %v (%s)", res.Code, res.Detail)
	}
	if _, ok := ts.accounts[id.Email]; !ok {
		t.Fatal("captcha-guarded account not created")
	}
}

func TestRegisterCaptchaSolverError(t *testing.T) {
	ts := newTestSite(true)
	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: ts.handler()}))
	solver := captcha.NewService(1.0, 1.0, 1) // always wrong
	res := newCrawler(solver).Register(b, "http://shop.test/", testIdentity())
	if res.Code != CodeSubmissionFailed {
		t.Fatalf("code = %v, want submission-failed on wrong captcha", res.Code)
	}
	if !res.Exposed {
		t.Fatal("identity was submitted; must be exposed")
	}
	if len(ts.accounts) != 0 {
		t.Fatal("account created despite wrong captcha")
	}
}

func TestRegisterNoCaptchaService(t *testing.T) {
	ts := newTestSite(true)
	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: ts.handler()}))
	res := newCrawler(nil).Register(b, "http://shop.test/", testIdentity())
	if res.Code != CodeFieldsMissing {
		t.Fatalf("code = %v, want fields-missing without a solver", res.Code)
	}
	if res.Exposed {
		t.Fatal("identity exposed without submission")
	}
}

func TestRegisterNoRegistrationSite(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body><p>News only.</p><a href="/about">About</a></body></html>`)
	})
	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: h}))
	res := newCrawler(nil).Register(b, "http://news.test/", testIdentity())
	if res.Code != CodeNoRegistration {
		t.Fatalf("code = %v", res.Code)
	}
}

func TestRegisterLoadFailure(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	})
	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: h}))
	res := newCrawler(nil).Register(b, "http://down.test/", testIdentity())
	if res.Code != CodeSystemError {
		t.Fatalf("code = %v", res.Code)
	}
}

func TestRegisterAvoidsLoginForm(t *testing.T) {
	// Home page carries a login form (password but no email, 2 fields) and
	// no registration; the crawler must not submit credentials to it.
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body>
			<form action="/login" method="post">
			<p><label>Username</label><input type="text" name="user"></p>
			<p><label>Password</label><input type="password" name="pass"></p>
			</form>
			<a href="/contact">Contact</a></body></html>`)
	})
	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: h}))
	res := newCrawler(nil).Register(b, "http://portal.test/", testIdentity())
	if res.Code != CodeNoRegistration {
		t.Fatalf("code = %v; crawler mistook a login form for registration", res.Code)
	}
	if res.Exposed {
		t.Fatal("credentials leaked to a login form")
	}
}

func TestFaultInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FaultRate = 1.0
	c := New(cfg, nil)
	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: newTestSite(false).handler()}))
	res := c.Register(b, "http://shop.test/", testIdentity())
	if res.Code != CodeSystemError || res.Exposed {
		t.Fatalf("fault injection: %+v", res)
	}
}

func TestRateLimitSleeps(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg, nil)
	var slept int
	c.Sleep = func(time.Duration) { slept++ }
	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: newTestSite(false).handler()}))
	c.Register(b, "http://shop.test/", testIdentity())
	if slept < 2 {
		t.Fatalf("rate limiter invoked %d times, want one per page load", slept)
	}
}

func TestClassifyFieldByType(t *testing.T) {
	cases := []struct {
		html string
		want Meaning
	}{
		{`<form><input type="password" name="x1"></form>`, MeaningPassword},
		{`<form><input type="password" name="confirm_password"></form>`, MeaningConfirmPassword},
		{`<form><input type="email" name="whatever"></form>`, MeaningEmail},
		{`<form><input type="hidden" name="csrf" value="x"></form>`, MeaningHidden},
		{`<form><input type="text" name="user_email"></form>`, MeaningEmail},
		{`<form><input type="text" name="username"></form>`, MeaningUsername},
		{`<form><input type="text" name="first_name"></form>`, MeaningFirstName},
		{`<form><input type="text" name="zip_code"></form>`, MeaningZip},
		{`<form><input type="text" name="phone_number"></form>`, MeaningPhone},
		{`<form><input type="text" name="birth_date"></form>`, MeaningDOB},
		{`<form><input type="checkbox" name="accept_terms"></form>`, MeaningTOS},
		{`<form><input type="checkbox" name="newsletter"></form>`, MeaningNewsletter},
		{`<form><input type="text" name="security_code"></form>`, MeaningCaptcha},
		{`<form><input type="text" name="card_number"></form>`, MeaningCreditCard},
		{`<form><input type="text" name="fld_93"></form>`, MeaningUnknown},
		{`<form><p><label for="f2">Email address</label><input type="text" name="f2" id="f2"></p></form>`, MeaningEmail},
	}
	for _, tc := range cases {
		page := parsePage(t, tc.html)
		f := page.Forms()[0].Fields[0]
		if got := ClassifyField(&f); got != tc.want {
			t.Errorf("ClassifyField(%s) = %v, want %v", tc.html, got, tc.want)
		}
	}
}

func parsePage(t *testing.T, html string) *browser.Page {
	t.Helper()
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<html><body>"+html+"</body></html>")
	})
	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: h}))
	p, err := b.Get("http://t.test/")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestScoreRegistrationLink(t *testing.T) {
	mk := func(text, path string) browser.Link {
		u, _ := url.Parse("http://x.test" + path)
		return browser.Link{URL: u, Text: text}
	}
	if s := ScoreRegistrationLink(mk("Sign Up", "/signup")); s < 3 {
		t.Errorf("signup link scored %v", s)
	}
	if s := ScoreRegistrationLink(mk("Log in", "/login")); s > 0 {
		t.Errorf("login link scored %v, want negative or zero", s)
	}
	if s := ScoreRegistrationLink(mk("Privacy Policy", "/privacy")); s > 0 {
		t.Errorf("privacy link scored %v", s)
	}
	if s := ScoreRegistrationLink(mk("", "/register")); s < 1.5 {
		t.Errorf("image-text registration href scored %v", s)
	}
}

func TestLooksLikeSuccess(t *testing.T) {
	if !LooksLikeSuccess("Thank you for registering! Your account has been created.") {
		t.Error("clear success rejected")
	}
	if !LooksLikeSuccess("Welcome! Please verify your email to continue.") {
		t.Error("verification prompt rejected")
	}
	if LooksLikeSuccess("Error: please correct the highlighted fields and try again.") {
		t.Error("failure page accepted")
	}
	if LooksLikeSuccess("Your request has been received and is being processed.") {
		t.Error("vague response accepted (paper's bad-heuristics source)")
	}
	if LooksLikeSuccess("Thank you! Error: username is already taken.") {
		t.Error("mixed page with dominant failure accepted")
	}
}

func TestCodeStrings(t *testing.T) {
	want := map[Code]string{
		CodeOKSubmission:     "OK submission",
		CodeSubmissionFailed: "Submission heuristics failed",
		CodeFieldsMissing:    "Required fields missing",
		CodeNoRegistration:   "No registration found",
		CodeSystemError:      "System Error",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Code(%d).String() = %q, want %q", int(c), c.String(), s)
		}
	}
}
