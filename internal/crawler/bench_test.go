package crawler

import (
	"net/url"
	"testing"

	"tripwire/internal/browser"
	"tripwire/internal/htmldom"
)

// benchRegPage is a registration page shaped like webgen output, used to
// benchmark the field classifier and form scorer on realistic markup.
const benchRegPage = `<!DOCTYPE html>
<html><head><title>Create your account - Example</title></head>
<body><div id="header"><h1>Example</h1></div>
<div id="content"><h2>Create your account</h2>
<form id="regform" action="/register" method="post">
<input type="hidden" name="csrf_token" value="deadbeef01234567">
<p><label for="username">Choose a username *</label><input type="text" name="username" id="username" required></p>
<p><label for="email">Email address *</label><input type="text" name="email" id="email" required></p>
<p><label for="password">Password *</label><input type="password" name="password" id="password" required></p>
<p><label for="password2">Confirm password *</label><input type="password" name="password2" id="password2" required></p>
<p><label for="first_name">First name</label><input type="text" name="first_name" id="first_name"></p>
<p><label for="last_name">Last name</label><input type="text" name="last_name" id="last_name"></p>
<p><label for="zip">ZIP code</label><input type="text" name="zip" id="zip"></p>
<p><select name="state"><option value=""></option><option value="CA">CA</option></select></p>
<p><input type="checkbox" name="tos" value="on" required> <label>I agree to the Terms of Service</label></p>
<p><input type="checkbox" name="newsletter" value="on"> <label>Send me the newsletter</label></p>
<input type="submit" value="Create account">
</form></div></body></html>`

func benchPage(b *testing.B) *browser.Page {
	b.Helper()
	u, err := url.Parse("http://bench.example/register")
	if err != nil {
		b.Fatal(err)
	}
	return &browser.Page{URL: u, StatusCode: 200, Raw: benchRegPage, DOM: htmldom.Parse(benchRegPage)}
}

// BenchmarkClassify measures the steady-state per-page classification cost:
// field-meaning recovery for every control plus the registration-form score,
// as bestForm runs them on each visited page.
func BenchmarkClassify(b *testing.B) {
	page := benchPage(b)
	forms := page.Forms()
	if len(forms) != 1 {
		b.Fatalf("got %d forms", len(forms))
	}
	text := page.DOM.Text()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range forms[0].Fields {
			ClassifyField(&forms[0].Fields[j])
		}
		FormScore(forms[0], text)
	}
}

// BenchmarkClassifyCold re-extracts the form every iteration, so per-field
// context assembly and first-classification cost stay in the measurement —
// the cost profile of a page seen for the first time.
func BenchmarkClassifyCold(b *testing.B) {
	page := benchPage(b)
	text := page.DOM.Text()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forms := page.Forms()
		for j := range forms[0].Fields {
			ClassifyField(&forms[0].Fields[j])
		}
		FormScore(forms[0], text)
	}
}
