// Package crawler implements Tripwire's automated account-registration
// crawler (paper §4.3): given a site URL and a fictitious identity, it
// locates the registration page, identifies and fills each form field with
// hand-crafted weighted-regex heuristics, bypasses rudimentary bot checks
// via a third-party solving service, submits, and returns a termination
// code matching Figure 1 of the paper.
//
// The crawler is best-effort by design: it "explicitly does not attempt to
// support all of the site registration mechanisms encountered on the Web."
// Multi-page forms, interactive CAPTCHAs, and image-only registration links
// fail exactly as the prototype's did (paper §6.2.2).
package crawler

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"tripwire/internal/browser"
	"tripwire/internal/captcha"
	"tripwire/internal/htmldom"
	"tripwire/internal/identity"
)

// Code is a crawler termination code, per Figure 1 of the paper.
type Code int

const (
	// CodeOKSubmission: the form was submitted and the response passed the
	// success heuristics.
	CodeOKSubmission Code = iota
	// CodeSubmissionFailed: the form was submitted but the response failed
	// the success heuristics ("Submission heuristics failed").
	CodeSubmissionFailed
	// CodeFieldsMissing: the candidate form did not meet the conditions
	// for a valid registration form, or required fields could not be
	// recognized/filled ("Required fields missing").
	CodeFieldsMissing
	// CodeNoRegistration: no registration page was found from the landing
	// page within the link budget.
	CodeNoRegistration
	// CodeSystemError: the crawler was otherwise unable to process the
	// site (load failure, internal fault).
	CodeSystemError
)

// String names the code with the paper's Figure-1 labels.
func (c Code) String() string {
	switch c {
	case CodeOKSubmission:
		return "OK submission"
	case CodeSubmissionFailed:
		return "Submission heuristics failed"
	case CodeFieldsMissing:
		return "Required fields missing"
	case CodeNoRegistration:
		return "No registration found"
	case CodeSystemError:
		return "System Error"
	default:
		return fmt.Sprintf("Code(%d)", int(c))
	}
}

// Result is the outcome of one registration attempt.
type Result struct {
	Code   Code
	Site   string // host of the attempted site
	RegURL string // registration page URL, if one was found
	// Exposed reports whether the identity's email address or password was
	// ever shown to the site — regardless of the crawler's assessment of
	// success. Exposure permanently burns the identity (paper §4.3.1).
	Exposed   bool
	PageLoads int
	Detail    string
}

// Config tunes a Crawler.
type Config struct {
	// MaxLinkTries bounds how many candidate registration links are
	// followed from the landing page.
	MaxLinkTries int
	// MinLinkScore is the weighted-regex score a link must reach to be
	// considered a registration link.
	MinLinkScore float64
	// RateLimit is the minimum delay between page loads (paper §3: no
	// faster than one load per three seconds).
	RateLimit time.Duration
	// FaultRate injects random crawler faults (the prototype's own bugs,
	// JS-dependent pages, timeouts), reproducing the paper's System Error
	// share. Zero disables injection.
	FaultRate float64
	// Seed drives fault injection.
	Seed int64
	// Packs extends the English-only heuristics with per-language rules
	// (the paper's §7.2 multi-language improvement). Empty reproduces the
	// prototype's English-only behaviour.
	Packs []Pack
	// SearchFn, when non-nil, supplies extra candidate registration URLs
	// for a host after on-page link discovery fails — the paper's §6.2.2
	// suggestion to "rely on search engines to help locate the
	// registration pages".
	SearchFn func(host string) []string
	// MultiStageSupport continues through multi-page registration forms
	// ("around 10% of sites with registration forms", §7.2) instead of
	// stopping after page one. Off by default: the prototype "makes no
	// attempt at handling these multi-step forms."
	MultiStageSupport bool
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		MaxLinkTries: 3,
		MinLinkScore: 1.5,
		RateLimit:    3 * time.Second,
		FaultRate:    0.0,
	}
}

// Crawler performs registration attempts. Each attempt uses a caller-
// provided browser session so that "individual instances of the crawler
// have only the identity assigned to one site" (paper §4.4). A Crawler is
// safe for concurrent use: attempts that supply an Env share no mutable
// state at all, and attempts without one serialize their draws from the
// crawler's default fault RNG.
type Crawler struct {
	cfg    Config
	solver *captcha.Service

	mu  sync.Mutex // guards rng
	rng *rand.Rand
	// Sleep is called for rate-limiting between page loads when an attempt
	// does not carry its own Env.Sleep; nil means no delay accounting.
	Sleep func(time.Duration)
	// Metrics, when non-nil, receives one observation per finished attempt.
	// Recording is atomic-only and never alters attempt outcomes.
	Metrics *Metrics
}

// Env carries the per-attempt dependencies that would otherwise be shared
// crawler state. The parallel crawl engine derives every member from
// (seed, site rank), which makes each attempt's outcome a pure function of
// the site — bit-identical regardless of worker count or completion order.
type Env struct {
	// Rng drives fault injection for this attempt. Nil falls back to the
	// crawler's own seeded RNG (serialized under a mutex).
	Rng *rand.Rand
	// Solver overrides the crawler's CAPTCHA solving service, typically
	// with a Service.Derive stream.
	Solver *captcha.Service
	// Sleep receives rate-limit delays, letting each worker keep its own
	// virtual-time account. Nil falls back to the crawler's Sleep hook.
	Sleep func(time.Duration)
}

// New returns a Crawler using solver for bot checks.
func New(cfg Config, solver *captcha.Service) *Crawler {
	return &Crawler{cfg: cfg, solver: solver, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (c *Crawler) sleep(env *Env) {
	if c.cfg.RateLimit <= 0 {
		return
	}
	if env != nil && env.Sleep != nil {
		env.Sleep(c.cfg.RateLimit)
		return
	}
	if c.Sleep != nil {
		c.Sleep(c.cfg.RateLimit)
	}
}

// solverFor returns the solving service an attempt should use.
func (c *Crawler) solverFor(env *Env) *captcha.Service {
	if env != nil && env.Solver != nil {
		return env.Solver
	}
	return c.solver
}

// faultDraw draws the fault-injection variate for one attempt.
func (c *Crawler) faultDraw(env *Env) float64 {
	if env != nil && env.Rng != nil {
		return env.Rng.Float64()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// Register attempts to create an account at siteURL for id, driving b. It
// uses the crawler's shared RNG, solver, and Sleep hook; concurrent callers
// should prefer RegisterWith.
func (c *Crawler) Register(b *browser.Client, siteURL string, id *identity.Identity) Result {
	return c.RegisterWith(nil, b, siteURL, id)
}

// RegisterWith runs one registration attempt with per-attempt dependencies
// taken from env (any nil member falls back to the crawler's shared one).
func (c *Crawler) RegisterWith(env *Env, b *browser.Client, siteURL string, id *identity.Identity) Result {
	res := c.registerWith(env, b, siteURL, id)
	c.Metrics.observe(&res)
	return res
}

func (c *Crawler) registerWith(env *Env, b *browser.Client, siteURL string, id *identity.Identity) Result {
	res := Result{Site: hostOf(siteURL)}

	if c.cfg.FaultRate > 0 && c.faultDraw(env) < c.cfg.FaultRate {
		res.Code = CodeSystemError
		res.Detail = "injected crawler fault"
		return res
	}

	c.sleep(env)
	page, err := b.Get(siteURL)
	res.PageLoads++
	if err != nil || page.StatusCode >= 500 {
		res.Code = CodeSystemError
		res.Detail = "landing page failed to load"
		return res
	}

	// Figure 1: "Is registration page?" — if the landing page itself has a
	// registration form, use it; otherwise follow the most likely
	// registration link, up to the budget.
	regPage, form := c.findRegistrationForm(env, b, page, &res)
	if (regPage == nil || form == nil) && c.cfg.SearchFn != nil {
		regPage, form = c.searchForForm(env, b, &res)
	}
	if regPage == nil || form == nil {
		if res.Code == 0 && res.Detail == "" {
			res.Code = CodeNoRegistration
			res.Detail = "no registration page located"
		}
		return res
	}
	res.RegURL = regPage.URL.String()

	// Identify and fill each field serially.
	sub, fillErr := c.fillForm(env, b, regPage, form, id)
	if fillErr != "" {
		res.Code = CodeFieldsMissing
		res.Detail = fillErr
		return res
	}

	// Submission: from here the identity is exposed to the site (the
	// horizontal line in Figure 1).
	res.Exposed = true
	c.sleep(env)
	resp, err := b.Submit(sub)
	res.PageLoads++
	if err != nil || resp.StatusCode >= 500 {
		res.Code = CodeSystemError
		res.Detail = "submission request failed"
		return res
	}
	if c.looksLikeSuccess(resp.DOM.Text()) {
		res.Code = CodeOKSubmission
		return res
	}
	if c.cfg.MultiStageSupport {
		if done := c.continueMultiStage(env, b, resp, id, &res); done {
			return res
		}
	}
	res.Code = CodeSubmissionFailed
	res.Detail = "response did not look like a successful registration"
	return res
}

// continueMultiStage recognizes a step-two form in the submission response
// (a POST form with fillable fields but no credential fields — credentials
// were page one) and completes it. It reports whether it produced a final
// result in res.
func (c *Crawler) continueMultiStage(env *Env, b *browser.Client, resp *browser.Page, id *identity.Identity, res *Result) bool {
	for _, form := range resp.Forms() {
		if form.Method != "POST" {
			continue
		}
		var hasPassword bool
		fillable := 0
		for i := range form.Fields {
			switch ClassifyField(&form.Fields[i]) {
			case MeaningPassword, MeaningConfirmPassword:
				hasPassword = true
			case MeaningHidden:
			default:
				if form.Fields[i].Name != "" && form.Fields[i].Type != "submit" {
					fillable++
				}
			}
		}
		if hasPassword || fillable == 0 {
			continue // not a continuation page
		}
		sub := form.Fill()
		for i := range form.Fields {
			fld := &form.Fields[i]
			if fld.Name == "" || fld.Type == "submit" || fld.Type == "hidden" {
				continue
			}
			switch ClassifyField(fld) {
			case MeaningFirstName:
				sub.Set(fld.Name, id.FirstName)
			case MeaningLastName:
				sub.Set(fld.Name, id.LastName)
			case MeaningFullName:
				sub.Set(fld.Name, id.FullName())
			case MeaningZip:
				sub.Set(fld.Name, id.Zip)
			case MeaningPhone:
				sub.Set(fld.Name, id.Phone)
			case MeaningDOB:
				sub.Set(fld.Name, id.Birthday.Format("01/02/2006"))
			case MeaningTOS:
				sub.Check(fld.Name)
			case MeaningState:
				sub.SelectLast(fld.Name)
			default:
				if fld.Type == "checkbox" {
					if fld.Required {
						sub.Check(fld.Name)
					}
				} else {
					sub.Set(fld.Name, id.FullName())
				}
			}
		}
		c.sleep(env)
		final, err := b.Submit(sub)
		res.PageLoads++
		if err != nil || final.StatusCode >= 500 {
			res.Code = CodeSystemError
			res.Detail = "multi-stage continuation failed to submit"
			return true
		}
		if c.looksLikeSuccess(final.DOM.Text()) {
			res.Code = CodeOKSubmission
			res.Detail = "completed a multi-stage registration"
			return true
		}
		res.Code = CodeSubmissionFailed
		res.Detail = "multi-stage continuation did not end in success"
		return true
	}
	return false
}

// findRegistrationForm locates the registration form starting from the
// landing page, following up to MaxLinkTries scored links.
func (c *Crawler) findRegistrationForm(env *Env, b *browser.Client, landing *browser.Page, res *Result) (*browser.Page, *browser.Form) {
	if f := bestForm(landing); f != nil {
		return landing, f
	}
	links := landing.Links()
	type scored struct {
		l browser.Link
		s float64
	}
	var cands []scored
	for _, l := range links {
		if s := c.scoreLink(l); s >= c.cfg.MinLinkScore {
			cands = append(cands, scored{l, s})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].s > cands[j].s })
	tries := c.cfg.MaxLinkTries
	if tries > len(cands) {
		tries = len(cands)
	}
	for i := 0; i < tries; i++ {
		c.sleep(env)
		page, err := b.GetURL(cands[i].l.URL)
		res.PageLoads++
		if err != nil || page.StatusCode >= 500 {
			continue
		}
		if f := bestForm(page); f != nil {
			return page, f
		}
	}
	return nil, nil
}

// searchForForm consults the configured search engine for registration-page
// candidates (covering image-text links and otherwise obscure pages).
func (c *Crawler) searchForForm(env *Env, b *browser.Client, res *Result) (*browser.Page, *browser.Form) {
	urls := c.cfg.SearchFn(res.Site)
	tries := c.cfg.MaxLinkTries
	if tries > len(urls) {
		tries = len(urls)
	}
	for i := 0; i < tries; i++ {
		c.sleep(env)
		page, err := b.Get(urls[i])
		res.PageLoads++
		if err != nil || page.StatusCode >= 500 {
			continue
		}
		if f := bestForm(page); f != nil {
			return page, f
		}
	}
	return nil, nil
}

// scoreLink combines the base English rules with any configured language
// packs. Link text and path are lowered once, here, for every rule set.
func (c *Crawler) scoreLink(l browser.Link) float64 {
	text := strings.ToLower(l.Text)
	path := strings.ToLower(l.URL.Path)
	s := scoreRegistrationLinkLower(text, path)
	for _, p := range c.cfg.Packs {
		s += score(p.linkText, text) + score(p.linkHref, path)
	}
	return s
}

// looksLikeSuccess extends the base outcome heuristics with language packs.
// The page text is lowered once for the base rules and every pack.
func (c *Crawler) looksLikeSuccess(pageText string) bool {
	lower := strings.ToLower(pageText)
	if looksLikeSuccessLower(lower) {
		return true
	}
	for _, p := range c.cfg.Packs {
		succ := score(p.success, lower)
		fail := score(p.failure, lower)
		if succ >= 2.0 && succ > fail {
			return true
		}
	}
	return false
}

// bestForm returns the highest-scoring registration-form candidate on the
// page, or nil when none clears the bar.
func bestForm(p *browser.Page) *browser.Form {
	var best *browser.Form
	bestScore := 0.0
	// Lower once: FormScore's internal ToLower is then a no-op scan.
	text := strings.ToLower(p.DOM.Text())
	for _, f := range p.Forms() {
		if s := FormScore(f, text); s > bestScore {
			best, bestScore = f, s
		}
	}
	if bestScore < 3.0 {
		return nil
	}
	return best
}

// fillForm classifies and fills every field. It returns a non-empty reason
// string when a required field cannot be satisfied, which maps to the
// "Required fields missing" termination code.
func (c *Crawler) fillForm(env *Env, b *browser.Client, p *browser.Page, form *browser.Form, id *identity.Identity) (*browser.Submission, string) {
	sub := form.Fill()
	var sawEmail, sawPassword bool
	for i := range form.Fields {
		fld := &form.Fields[i]
		if fld.Name == "" || fld.Type == "submit" || fld.Type == "button" {
			continue
		}
		switch m := ClassifyField(fld); m {
		case MeaningHidden:
			// Keep server-provided defaults (CSRF tokens, challenge ids).
		case MeaningEmail:
			sub.Set(fld.Name, id.Email)
			sawEmail = true
		case MeaningPassword:
			// Sites sometimes render password+confirm both as bare
			// "password" fields; fill the second occurrence with the same
			// value.
			sub.Set(fld.Name, id.Password)
			sawPassword = true
		case MeaningConfirmPassword:
			sub.Set(fld.Name, id.Password)
		case MeaningUsername:
			sub.Set(fld.Name, id.Username)
		case MeaningFirstName:
			sub.Set(fld.Name, id.FirstName)
		case MeaningLastName:
			sub.Set(fld.Name, id.LastName)
		case MeaningFullName:
			sub.Set(fld.Name, id.FullName())
		case MeaningZip:
			sub.Set(fld.Name, id.Zip)
		case MeaningPhone:
			sub.Set(fld.Name, id.Phone)
		case MeaningDOB:
			sub.Set(fld.Name, id.Birthday.Format("01/02/2006"))
		case MeaningState:
			sub.SelectLast(fld.Name)
		case MeaningTOS:
			sub.Check(fld.Name)
		case MeaningNewsletter:
			// Leave unchecked: minimize the footprint of honey accounts.
		case MeaningCaptcha:
			ans, ok := c.solveCaptcha(env, b, p, fld)
			if !ok {
				return nil, "unsolvable bot check: " + fld.Context()
			}
			sub.Set(fld.Name, ans)
		case MeaningCreditCard:
			return nil, "registration requires payment information"
		case MeaningSearch:
			// Stray search boxes inside the form container: ignore.
		default:
			if fld.Required {
				return nil, "unrecognized required field: " + firstNonEmpty(fld.Name, fld.Label)
			}
		}
	}
	if !sawEmail || !sawPassword {
		// Paper §5.2.1: a valid registration form must ask for both a
		// password and an email address.
		return nil, fmt.Sprintf("form lacks required credentials (email=%v password=%v)", sawEmail, sawPassword)
	}
	return sub, ""
}

// solveCaptcha hands the on-page challenge to the solving service: for
// image CAPTCHAs it downloads the image and submits the bytes; for
// knowledge questions it submits the question text; interactive challenges
// are unsolvable (paper §7.2: "the crawler has no ability to handle
// interactive CAPTCHA services").
func (c *Crawler) solveCaptcha(env *Env, b *browser.Client, p *browser.Page, fld *browser.Field) (string, bool) {
	solver := c.solverFor(env)
	if solver == nil {
		return "", false
	}
	if p.DOM.First(func(n *htmldom.Node) bool {
		return n.Tag == "div" && strings.Contains(n.AttrOr("class", ""), "g-recaptcha")
	}) != nil {
		return "", false
	}
	img := p.DOM.First(func(n *htmldom.Node) bool {
		return n.Tag == "img" && strings.Contains(n.AttrOr("src", ""), "captcha")
	})
	if img != nil {
		src, _ := img.Attr("src")
		u, err := p.URL.Parse(src)
		if err != nil {
			return "", false
		}
		c.sleep(env)
		imgPage, err := b.GetURL(u)
		if err != nil || !imgPage.OK() {
			return "", false
		}
		return solver.SolveImage(imgPage.Raw)
	}
	// No image: treat the field's label as a free-form question.
	return solver.SolveKnowledge(fld.Label)
}

func hostOf(rawURL string) string {
	s := rawURL
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		s = s[:i]
	}
	return s
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
