package crawler

import (
	"strings"
	"testing"

	"tripwire/internal/browser"
	"tripwire/internal/captcha"
	"tripwire/internal/identity"
	"tripwire/internal/webgen"
)

// findWebgenSite scans a generated universe for a site matching pred.
func findWebgenSite(t *testing.T, u *webgen.Universe, pred func(*webgen.Site) bool) *webgen.Site {
	t.Helper()
	for _, s := range u.Sites() {
		if pred(s) {
			return s
		}
	}
	t.Skip("no matching site in universe")
	return nil
}

func webgenUniverse() *webgen.Universe {
	cfg := webgen.DefaultConfig()
	cfg.NumSites = 1500
	return webgen.Generate(cfg)
}

func TestLanguagePacksUnlockNonEnglishSites(t *testing.T) {
	u := webgenUniverse()
	site := findWebgenSite(t, u, func(s *webgen.Site) bool {
		return !s.LoadFailure && s.Language == webgen.LangRussian && s.HasRegistration &&
			!s.ExternalAuthOnly && !s.RequiresPayment && s.MaxEmailLen == 0 &&
			!s.MultiStage && !s.JSForm && !s.ObscureRegLink && !s.OddFieldNames &&
			s.Captcha == captcha.None && !s.FlakyBackend && !s.Passwords.RequireSpecial
	})
	gen := identity.NewGenerator("bigmail.test", 15)

	// English-only prototype: the localized link text and path give the
	// heuristics nothing.
	base := DefaultConfig()
	base.RateLimit = 0
	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: u}))
	res := New(base, nil).Register(b, "http://"+site.Domain+"/", gen.New(identity.Hard))
	if res.Code != CodeNoRegistration {
		t.Fatalf("english-only crawler on Russian site: %v (%s)", res.Code, res.Detail)
	}

	// With packs, the same site registers.
	withPacks := base
	withPacks.Packs = BuiltinPacks()
	b2 := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: u}))
	res2 := New(withPacks, nil).Register(b2, "http://"+site.Domain+"/", gen.New(identity.Hard))
	if res2.Code != CodeOKSubmission {
		t.Fatalf("pack-enabled crawler on Russian site: %v (%s)", res2.Code, res2.Detail)
	}
	if u.Store(site.Domain).Len() == 0 {
		t.Fatal("no account created despite OK submission")
	}
}

func TestSearchAssistFindsObscurePages(t *testing.T) {
	u := webgenUniverse()
	site := findWebgenSite(t, u, func(s *webgen.Site) bool {
		return s.Eligible() && s.ObscureRegLink && !s.MultiStage && !s.JSForm &&
			!s.OddFieldNames && s.Captcha == captcha.None && s.MaxEmailLen == 0 &&
			!s.Passwords.RequireSpecial
	})
	gen := identity.NewGenerator("bigmail.test", 16)
	base := DefaultConfig()
	base.RateLimit = 0

	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: u}))
	res := New(base, nil).Register(b, "http://"+site.Domain+"/", gen.New(identity.Hard))
	if res.Code != CodeNoRegistration {
		t.Fatalf("prototype on obscure-link site: %v", res.Code)
	}

	withSearch := base
	withSearch.SearchFn = u.SearchRegistrationPages
	b2 := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: u}))
	res2 := New(withSearch, nil).Register(b2, "http://"+site.Domain+"/", gen.New(identity.Hard))
	if res2.Code != CodeOKSubmission {
		t.Fatalf("search-assisted crawler: %v (%s)", res2.Code, res2.Detail)
	}
}

func TestMultiStageSupportCompletesStepTwo(t *testing.T) {
	u := webgenUniverse()
	site := findWebgenSite(t, u, func(s *webgen.Site) bool {
		return s.Eligible() && s.MultiStage && !s.JSForm && !s.ObscureRegLink &&
			!s.OddFieldNames && s.Captcha == captcha.None && s.MaxEmailLen == 0 &&
			!s.FlakyBackend && !s.Passwords.RequireSpecial
	})
	gen := identity.NewGenerator("bigmail.test", 17)
	base := DefaultConfig()
	base.RateLimit = 0

	// Prototype: stops after page one; no account.
	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: u}))
	res := New(base, nil).Register(b, "http://"+site.Domain+"/", gen.New(identity.Hard))
	if res.Code != CodeSubmissionFailed {
		t.Fatalf("prototype on multi-stage site: %v (%s)", res.Code, res.Detail)
	}
	if u.Store(site.Domain).Len() != 0 {
		t.Fatal("prototype created an account through a multi-stage flow")
	}

	// Extension: completes step two and the account exists.
	ext := base
	ext.MultiStageSupport = true
	b2 := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: u}))
	id := gen.New(identity.Hard)
	res2 := New(ext, nil).Register(b2, "http://"+site.Domain+"/", id)
	if res2.Code != CodeOKSubmission {
		t.Fatalf("multi-stage crawler: %v (%s)", res2.Code, res2.Detail)
	}
	st := u.Store(site.Domain)
	// Sites may key the account on the submitted username or derive it from
	// the email local-part (which can exceed the 14-char username cap), so
	// accept either — the same fallback production lookups use.
	if !st.CheckPassword(id.Username, id.Password) && !st.CheckPassword(strings.ToLower(id.LocalPart), id.Password) {
		t.Fatal("step-two completion did not store the credential")
	}
}

func TestPacksDoNotBreakEnglishSites(t *testing.T) {
	u := webgenUniverse()
	site := findWebgenSite(t, u, func(s *webgen.Site) bool {
		return s.Eligible() && !s.MultiStage && !s.JSForm && !s.ObscureRegLink &&
			!s.OddFieldNames && s.Captcha == captcha.None && s.MaxEmailLen == 0 &&
			!s.FlakyBackend && !s.Passwords.RequireSpecial
	})
	cfg := DefaultConfig()
	cfg.RateLimit = 0
	cfg.Packs = BuiltinPacks()
	cfg.SearchFn = u.SearchRegistrationPages
	cfg.MultiStageSupport = true
	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: u}))
	res := New(cfg, nil).Register(b, "http://"+site.Domain+"/", identity.NewGenerator("bigmail.test", 18).New(identity.Hard))
	if res.Code != CodeOKSubmission {
		t.Fatalf("fully extended crawler regressed on a clean English site: %v (%s)", res.Code, res.Detail)
	}
}
