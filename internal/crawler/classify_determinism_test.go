package crawler

import (
	"testing"

	"tripwire/internal/browser"
)

// TestClassifyPriorityCoversFieldRules pins the invariant that makes
// classification deterministic: meaning selection iterates classifyPriority
// (a fixed slice), never the fieldRules map, so every rule set must appear
// in the priority list exactly once. A meaning added to fieldRules but not
// to classifyPriority would silently never be selected.
func TestClassifyPriorityCoversFieldRules(t *testing.T) {
	seen := make(map[Meaning]int)
	for _, m := range classifyPriority {
		seen[m]++
		if seen[m] > 1 {
			t.Errorf("classifyPriority lists %v more than once", m)
		}
		if _, ok := fieldRules[m]; !ok {
			t.Errorf("classifyPriority lists %v, which has no fieldRules entry", m)
		}
	}
	for m := range fieldRules {
		if seen[m] == 0 {
			t.Errorf("fieldRules has %v but classifyPriority does not rank it", m)
		}
	}
}

// TestClassifyTieBreakDeterministic feeds the classifier a context that
// scores identically for two meanings and checks that the documented
// tie-break — earlier entry in classifyPriority wins — holds on every
// invocation. Were selection ever to range over the fieldRules map, Go's
// randomized map order would flip this answer between runs.
func TestClassifyTieBreakDeterministic(t *testing.T) {
	// "zip" scores 3.0 for MeaningZip and "phone" 3.0 for MeaningPhone;
	// zip precedes phone in classifyPriority.
	const ctx = "zip phone"
	for i := 0; i < 200; i++ {
		if got := classifyUncached("text", ctx); got != MeaningZip {
			t.Fatalf("iteration %d: classifyUncached(%q) = %v, want %v (priority tie-break)", i, ctx, got, MeaningZip)
		}
	}
	// The memoized entry point must agree with the uncached computation.
	f := &browser.Field{Type: "text", Name: "zip phone"}
	for i := 0; i < 3; i++ {
		if got := ClassifyField(f); got != MeaningZip {
			t.Fatalf("ClassifyField = %v, want %v", got, MeaningZip)
		}
	}
}

// TestClassifyCacheConsistent checks that the memo returns exactly what a
// fresh computation returns for a spread of realistic contexts — the
// property that lets re-visited pages skip classification without any risk
// to worker-count invariance.
func TestClassifyCacheConsistent(t *testing.T) {
	cases := []struct {
		typ, name string
	}{
		{"text", "username"}, {"text", "email"}, {"password", "password"},
		{"password", "password2"}, {"text", "first_name"}, {"text", "zip"},
		{"checkbox", "tos"}, {"checkbox", "newsletter"}, {"select", "state"},
		{"text", "captcha_answer"}, {"text", "whatever"},
	}
	for _, c := range cases {
		f := &browser.Field{Type: c.typ, Name: c.name}
		want := classifyUncached(c.typ, f.Context())
		for i := 0; i < 3; i++ {
			if got := ClassifyField(f); got != want {
				t.Errorf("ClassifyField(%s %q) = %v, want %v (cache pass %d)", c.typ, c.name, got, want, i)
			}
		}
	}
}
