package crawler

import (
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"testing/quick"

	"tripwire/internal/browser"
	"tripwire/internal/captcha"
	"tripwire/internal/identity"
)

// TestQuickRegisterNeverPanicsOnHostileHTML throws random byte soup and
// adversarial markup at the crawler: whatever a site serves, Register must
// return a Result (never panic, never hang) and must not claim exposure
// unless it actually submitted a form.
func TestQuickRegisterNeverPanicsOnHostileHTML(t *testing.T) {
	gen := identity.NewGenerator("bigmail.test", 27)
	cfg := DefaultConfig()
	cfg.RateLimit = 0
	c := New(cfg, captcha.NewService(0.2, 0.2, 28))
	f := func(home, inner string) bool {
		h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/" {
				fmt.Fprintf(w, "<html><body>%s<a href=\"/p\">Sign Up</a></body></html>", home)
				return
			}
			fmt.Fprintf(w, "<html><body>%s</body></html>", inner)
		})
		b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: h}))
		res := c.Register(b, "http://fuzz.test/", gen.New(identity.Hard))
		switch res.Code {
		case CodeOKSubmission, CodeSubmissionFailed:
			return res.Exposed // submitted → exposed
		case CodeFieldsMissing, CodeNoRegistration:
			return !res.Exposed // never submitted → not exposed
		case CodeSystemError:
			return true
		default:
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAdversarialForms serves structured-but-weird forms and checks
// the exposure invariant holds: exposure if and only if a submission
// happened.
func TestQuickAdversarialForms(t *testing.T) {
	gen := identity.NewGenerator("bigmail.test", 30)
	cfg := DefaultConfig()
	cfg.RateLimit = 0
	c := New(cfg, nil)
	shapes := []string{
		// Registration-shaped.
		`<form method="post" action="/s"><input name="email"><input type="password" name="pw"></form>`,
		// Password but no email.
		`<form method="post" action="/s"><input name="user"><input type="password" name="pw"></form>`,
		// Email but no password.
		`<form method="post" action="/s"><input name="email"></form>`,
		// Unfillable required field.
		`<form method="post" action="/s"><input name="email"><input type="password" name="pw"><input name="blorp_xyz" required></form>`,
		// GET form (search-like).
		`<form method="get" action="/s"><input name="q"></form>`,
		// Nested junk.
		`<form method="post" action="/s"><form><input name="email"><input type="password" name="pw"></form></form>`,
		// No form at all.
		`<p>nothing here</p>`,
	}
	f := func(pick uint8) bool {
		shape := shapes[int(pick)%len(shapes)]
		h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				fmt.Fprint(w, "<html><body><p>Thank you for registering!</p></body></html>")
				return
			}
			fmt.Fprintf(w, "<html><body><h2>Create your account</h2>%s</body></html>", shape)
		})
		b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: h}))
		res := c.Register(b, "http://adv.test/", gen.New(identity.Easy))
		submitted := res.Code == CodeOKSubmission || res.Code == CodeSubmissionFailed
		return submitted == res.Exposed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}
