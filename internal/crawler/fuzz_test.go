package crawler

import (
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"testing/quick"

	"tripwire/internal/browser"
	"tripwire/internal/captcha"
	"tripwire/internal/identity"
	"tripwire/internal/webgen"
)

// TestQuickRegisterNeverPanicsOnHostileHTML throws random byte soup and
// adversarial markup at the crawler: whatever a site serves, Register must
// return a Result (never panic, never hang) and must not claim exposure
// unless it actually submitted a form.
func TestQuickRegisterNeverPanicsOnHostileHTML(t *testing.T) {
	gen := identity.NewGenerator("bigmail.test", 27)
	cfg := DefaultConfig()
	cfg.RateLimit = 0
	c := New(cfg, captcha.NewService(0.2, 0.2, 28))
	f := func(home, inner string) bool {
		h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/" {
				fmt.Fprintf(w, "<html><body>%s<a href=\"/p\">Sign Up</a></body></html>", home)
				return
			}
			fmt.Fprintf(w, "<html><body>%s</body></html>", inner)
		})
		b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: h}))
		res := c.Register(b, "http://fuzz.test/", gen.New(identity.Hard))
		switch res.Code {
		case CodeOKSubmission, CodeSubmissionFailed:
			return res.Exposed // submitted → exposed
		case CodeFieldsMissing, CodeNoRegistration:
			return !res.Exposed // never submitted → not exposed
		case CodeSystemError:
			return true
		default:
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAdversarialForms serves structured-but-weird forms and checks
// the exposure invariant holds: exposure if and only if a submission
// happened.
func TestQuickAdversarialForms(t *testing.T) {
	gen := identity.NewGenerator("bigmail.test", 30)
	cfg := DefaultConfig()
	cfg.RateLimit = 0
	c := New(cfg, nil)
	shapes := []string{
		// Registration-shaped.
		`<form method="post" action="/s"><input name="email"><input type="password" name="pw"></form>`,
		// Password but no email.
		`<form method="post" action="/s"><input name="user"><input type="password" name="pw"></form>`,
		// Email but no password.
		`<form method="post" action="/s"><input name="email"></form>`,
		// Unfillable required field.
		`<form method="post" action="/s"><input name="email"><input type="password" name="pw"><input name="blorp_xyz" required></form>`,
		// GET form (search-like).
		`<form method="get" action="/s"><input name="q"></form>`,
		// Nested junk.
		`<form method="post" action="/s"><form><input name="email"><input type="password" name="pw"></form></form>`,
		// No form at all.
		`<p>nothing here</p>`,
	}
	f := func(pick uint8) bool {
		shape := shapes[int(pick)%len(shapes)]
		h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				fmt.Fprint(w, "<html><body><p>Thank you for registering!</p></body></html>")
				return
			}
			fmt.Fprintf(w, "<html><body><h2>Create your account</h2>%s</body></html>", shape)
		})
		b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: h}))
		res := c.Register(b, "http://adv.test/", gen.New(identity.Easy))
		submitted := res.Code == CodeOKSubmission || res.Code == CodeSubmissionFailed
		return submitted == res.Exposed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

// FuzzFieldHeuristics feeds arbitrary HTML and attribute soup through the
// full heuristic surface: page parsing, field classification, form scoring,
// link scoring, and success detection. None of it may panic, and
// classification must be a pure function of the markup (the parallel crawl
// engine classifies fields from many goroutines at once, so any hidden
// state would also be a race). The seed corpus is real rendered markup from
// webgen's registration templates.
func FuzzFieldHeuristics(f *testing.F) {
	// Seed with webgen-rendered registration pages: the realistic side of
	// the input space.
	wcfg := webgen.DefaultConfig()
	wcfg.NumSites = 60
	u := webgen.Generate(wcfg)
	seeded := 0
	for _, s := range u.Sites() {
		if !s.Eligible() || seeded >= 6 {
			continue
		}
		b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: u}))
		page, err := b.Get("http://" + s.Domain + s.RegPath)
		if err != nil || !page.OK() {
			continue
		}
		f.Add(page.Raw, "email", "text", "Email address", "you@example.com")
		seeded++
	}
	// Hostile hand-written seeds.
	f.Add(`<form method="post"><input name="pw" type="password"></form>`, "pass word", "PASSWORD", "<b>", `"><script>`)
	f.Add(`<form><select name="state"><option>CA</select></form>`, "state", "select", "", "")
	f.Add("<form", "", "", "", "")

	f.Fuzz(func(t *testing.T, html, name, typ, label, placeholder string) {
		// Attribute soup straight into the classifier.
		fld := browser.Field{Name: name, Type: typ, Label: label, Placeholder: placeholder}
		first := ClassifyField(&fld)
		if again := ClassifyField(&fld); again != first {
			t.Fatalf("ClassifyField not deterministic: %v then %v for %+v", first, again, fld)
		}
		// The same soup embedded in markup, through the real parse path.
		h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `<html><body>%s<form method="post" action="/s"><input name=%q type=%q placeholder=%q><label>%s</label></form></body></html>`,
				html, name, typ, placeholder, label)
		})
		b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: h}))
		page, err := b.Get("http://fuzz.test/")
		if err != nil {
			return
		}
		for _, form := range page.Forms() {
			for i := range form.Fields {
				m := ClassifyField(&form.Fields[i])
				if m2 := ClassifyField(&form.Fields[i]); m2 != m {
					t.Fatalf("parsed-field classification flapped: %v then %v", m, m2)
				}
			}
			_ = FormScore(form, page.Raw)
		}
		for _, l := range page.Links() {
			_ = ScoreRegistrationLink(l)
		}
		_ = LooksLikeSuccess(page.Raw)
	})
}
