package datarelease

import (
	"strings"
	"sync"
	"testing"
	"time"

	"tripwire/internal/sim"
)

var (
	pilotOnce sync.Once
	pilotInst *sim.Pilot
)

func pilot(t *testing.T) *sim.Pilot {
	t.Helper()
	pilotOnce.Do(func() {
		pilotInst = sim.NewPilot(sim.SmallConfig()).Run()
	})
	return pilotInst
}

func TestBuildCoversEveryAttributedLogin(t *testing.T) {
	p := pilot(t)
	records := Build(p)
	if len(records) != len(p.Monitor.AttributedLogins()) {
		t.Fatalf("%d records for %d attributed logins", len(records), len(p.Monitor.AttributedLogins()))
	}
	if err := Audit(records, p); err != nil {
		t.Fatal(err)
	}
}

func TestAnonymizationLeaksNothing(t *testing.T) {
	p := pilot(t)
	var b strings.Builder
	if err := Write(&b, Build(p)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// No honey email address may appear.
	for _, reg := range p.Ledger.Registrations() {
		if strings.Contains(out, reg.Identity.Email) {
			t.Fatalf("dataset leaks account %s", reg.Identity.Email)
		}
		if strings.Contains(out, reg.Identity.Password) {
			t.Fatalf("dataset leaks a password")
		}
	}
	// No full IP may appear: every ip column must end .0/24.
	for i, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if i == 0 {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			t.Fatalf("row %d malformed: %q", i, line)
		}
		if !strings.HasSuffix(fields[2], ".0/24") {
			t.Fatalf("row %d IP not anonymized: %q", i, fields[2])
		}
		if strings.Contains(fields[1], ":") {
			t.Fatalf("row %d timestamp finer than a day: %q", i, fields[1])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	p := pilot(t)
	records := Build(p)
	var b strings.Builder
	if err := Write(&b, records); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("round trip %d -> %d records", len(records), len(got))
	}
	for i := range got {
		if got[i] != records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], records[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Read(strings.NewReader("x,y\n1,2\n")); err == nil {
		t.Error("wrong header accepted")
	}
	if _, err := Read(strings.NewReader("alias,day,ip24,method\na1,not-a-date,1.2.3.0/24,IMAP\n")); err == nil {
		t.Error("bad date accepted")
	}
}

func TestAliasesStableAndGrouped(t *testing.T) {
	p := pilot(t)
	records := Build(p)
	if len(records) == 0 {
		t.Skip("no detections in pilot")
	}
	// Aliases must look like <letters><index> and be sorted.
	prev := ""
	for _, r := range records {
		if r.Alias <= "" || r.Alias[0] < 'a' || r.Alias[0] > 'z' {
			t.Fatalf("alias %q malformed", r.Alias)
		}
		if r.Alias < prev {
			t.Fatalf("records unsorted: %q after %q", r.Alias, prev)
		}
		prev = r.Alias
	}
	// Deterministic rebuild.
	again := Build(p)
	for i := range again {
		if again[i] != records[i] {
			t.Fatalf("Build not deterministic at %d", i)
		}
	}
}

func TestDayTruncation(t *testing.T) {
	p := pilot(t)
	for _, r := range Build(p) {
		if !r.Day.Equal(r.Day.Truncate(24 * time.Hour)) {
			t.Fatalf("day %v not truncated", r.Day)
		}
	}
}
