// Package datarelease produces the anonymized login dataset the paper
// publishes (§7.4): "an entry for each login event ... the account alias
// (e.g. 'a1'), a timestamp (rounded to the day), /24 of the accessing IP,
// and login method (e.g. 'IMAP'). This anonymization was chosen to balance
// the desires of transparency and protecting the accounts in the Tripwire
// sample."
package datarelease

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"tripwire/internal/geo"
	"tripwire/internal/sim"
)

// Record is one anonymized login event.
type Record struct {
	Alias    string    // site letter + per-site account index, e.g. "a1"
	Day      time.Time // login timestamp rounded down to the day (UTC)
	Prefix24 string    // "a.b.c.0/24" of the accessing IP
	Method   string    // "IMAP", "POP3", ...
}

// Build extracts the release dataset from a completed pilot. Aliases follow
// the paper's scheme: sites lettered in first-detection order, accounts
// numbered by first access within each site.
func Build(p *sim.Pilot) []Record {
	var out []Record
	for i, det := range p.Monitor.Detections() {
		accounts := make([]string, 0, len(det.Logins))
		for email := range det.Logins {
			accounts = append(accounts, email)
		}
		sort.Slice(accounts, func(a, b int) bool {
			ta := det.Logins[accounts[a]][0].Time
			tb := det.Logins[accounts[b]][0].Time
			if !ta.Equal(tb) {
				return ta.Before(tb)
			}
			return accounts[a] < accounts[b]
		})
		for j, email := range accounts {
			alias := fmt.Sprintf("%s%d", strings.ToLower(siteLetter(i)), j+1)
			for _, ev := range det.Logins[email] {
				out = append(out, Record{
					Alias:    alias,
					Day:      ev.Time.UTC().Truncate(24 * time.Hour),
					Prefix24: geo.Anonymize24(ev.IP),
					Method:   ev.Method,
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Alias != out[b].Alias {
			return out[a].Alias < out[b].Alias
		}
		if !out[a].Day.Equal(out[b].Day) {
			return out[a].Day.Before(out[b].Day)
		}
		return out[a].Prefix24 < out[b].Prefix24
	})
	return out
}

func siteLetter(i int) string {
	label := ""
	for {
		label = string(rune('A'+i%26)) + label
		i = i/26 - 1
		if i < 0 {
			return label
		}
	}
}

// header is the CSV column set.
var header = []string{"alias", "day", "ip24", "method"}

// Write emits the dataset as CSV.
func Write(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("datarelease: writing header: %w", err)
	}
	for _, r := range records {
		row := []string{r.Alias, r.Day.Format("2006-01-02"), r.Prefix24, r.Method}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("datarelease: writing record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Read parses a dataset written by Write.
func Read(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("datarelease: parsing CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("datarelease: empty dataset")
	}
	if strings.Join(rows[0], ",") != strings.Join(header, ",") {
		return nil, fmt.Errorf("datarelease: unexpected header %v", rows[0])
	}
	out := make([]Record, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("datarelease: row %d has %d fields", i+2, len(row))
		}
		day, err := time.Parse("2006-01-02", row[1])
		if err != nil {
			return nil, fmt.Errorf("datarelease: row %d day: %w", i+2, err)
		}
		out = append(out, Record{Alias: row[0], Day: day, Prefix24: row[2], Method: row[3]})
	}
	return out, nil
}

// Audit checks the anonymization invariants on a dataset against the pilot
// it came from: no record may carry an account email, a full IP address, or
// sub-day timing. It returns a non-nil error describing the first leak.
func Audit(records []Record, p *sim.Pilot) error {
	for i, r := range records {
		if strings.Contains(r.Alias, "@") {
			return fmt.Errorf("datarelease: record %d alias %q leaks an address", i, r.Alias)
		}
		if !strings.HasSuffix(r.Prefix24, ".0/24") {
			return fmt.Errorf("datarelease: record %d IP %q not /24-anonymized", i, r.Prefix24)
		}
		if !r.Day.Equal(r.Day.Truncate(24 * time.Hour)) {
			return fmt.Errorf("datarelease: record %d timestamp %v finer than a day", i, r.Day)
		}
	}
	// Every attributed login must be represented: transparency half of the
	// trade-off.
	if want := len(p.Monitor.AttributedLogins()); len(records) != want {
		return fmt.Errorf("datarelease: %d records for %d attributed logins", len(records), want)
	}
	return nil
}
