package simclock

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"tripwire/internal/xrand"
)

// toyWorld is a miniature of the pilot's shared substrate: per-key state
// whose mutations must follow schedule order, plus an append-ordered global
// log that a Sequencer re-sequences per segment (the loginRing analogue).
type toyWorld struct {
	perKey [65][]string // index = conflict key; same-key order is observable

	mu     sync.Mutex
	global []string
	mark   int
}

func (w *toyWorld) BeginSegment() {
	w.mu.Lock()
	w.mark = len(w.global)
	w.mu.Unlock()
}

func (w *toyWorld) EndSegment() {
	w.mu.Lock()
	sort.Strings(w.global[w.mark:])
	w.mu.Unlock()
}

// record appends to the key's private log (no lock: the executor must be
// serializing same-key events — the race detector checks it) and to the
// shared global log (locked, re-sequenced by the Sequencer hooks).
func (w *toyWorld) record(key uint64, line string) {
	w.perKey[key] = append(w.perKey[key], line)
	w.mu.Lock()
	w.global = append(w.global, line)
	w.mu.Unlock()
}

// buildToyTimeline seeds a scheduler with a self-extending keyed workload:
// every handler logs (key, seq, now), and spawns follow-ups — mostly on its
// own key, sometimes on another — at hour-aligned delays so timestamps
// collide and epochs get width. All randomness derives from (seed, event
// seq), exactly the pilot's derivation rule.
func buildToyTimeline(s *Scheduler, w *toyWorld, seed int64, keys int) {
	var handler func(key uint64, depth int) func(*Exec)
	handler = func(key uint64, depth int) func(*Exec) {
		return func(x *Exec) {
			rng := xrand.New(xrand.Mix(seed, int64(x.Seq()), 1))
			w.record(key, fmt.Sprintf("k%02d seq%04d t%s d%d", key, x.Seq(), x.Now().Format("15:04"), depth))
			if depth >= 4 {
				return
			}
			if rng.Float64() < 0.8 {
				d := time.Duration(1+rng.Intn(4)) * time.Hour
				x.AfterKeyed(d, key, "follow", handler(key, depth+1))
			}
			if rng.Float64() < 0.3 {
				nk := uint64(1 + rng.Intn(keys))
				// Delay 0 lands at the event's own timestamp: it must fire
				// in a later epoch, after everything already pending there.
				d := time.Duration(rng.Intn(3)) * time.Hour
				x.AfterKeyed(d, nk, "cross", handler(nk, depth+1))
			}
		}
	}
	t0 := time.Date(2015, 4, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 4*keys; i++ {
		key := uint64(1 + i%keys)
		at := t0.Add(time.Duration(i%7) * time.Hour)
		s.AtKeyed(at, key, "seed", handler(key, 0))
	}
	// Serial barrier events interleaved at shared timestamps: they must
	// split segments without perturbing anything.
	for i := 0; i < 6; i++ {
		i := i
		s.At(t0.Add(time.Duration(i)*time.Hour), "barrier", func(now time.Time) {
			w.record(0, fmt.Sprintf("barrier%d t%s", i, now.Format("15:04")))
		})
	}
}

func runToy(workers int) *toyWorld {
	s := NewScheduler(New(time.Date(2015, 4, 1, 0, 0, 0, 0, time.UTC)))
	w := &toyWorld{}
	buildToyTimeline(s, w, 99, 16)
	ex := &Epochs{Sched: s, Workers: workers, Sequencers: []Sequencer{w}}
	defer ex.Close()
	ex.RunUntil(time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC))
	return w
}

// TestEpochWorkerCountInvariance is the engine-level half of the timeline
// determinism guarantee: per-key logs, sequence numbers, timestamps, and
// the re-sequenced global log are byte-identical at any worker count.
func TestEpochWorkerCountInvariance(t *testing.T) {
	base := runToy(1)
	if len(base.global) == 0 {
		t.Fatal("toy timeline produced no events")
	}
	for _, workers := range []int{2, 4, 8} {
		got := runToy(workers)
		if !reflect.DeepEqual(base.perKey, got.perKey) {
			t.Fatalf("per-key logs diverge between workers=1 and workers=%d", workers)
		}
		if !reflect.DeepEqual(base.global, got.global) {
			t.Fatalf("global log diverges between workers=1 and workers=%d", workers)
		}
	}
}

// TestEpochMatchesSerialScheduler pins that epoch execution preserves the
// serial scheduler's event ordering semantics: the order-sensitive per-key
// logs from Epochs.RunUntil equal those from Scheduler-driven Step/RunUntil
// on the identical workload (the global log is compared per-key-free since
// serial execution has no segments to re-sequence).
func TestEpochMatchesSerialScheduler(t *testing.T) {
	serial := NewScheduler(New(time.Date(2015, 4, 1, 0, 0, 0, 0, time.UTC)))
	sw := &toyWorld{}
	buildToyTimeline(serial, sw, 99, 16)
	serial.RunUntil(time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC))

	epoch := runToy(4)
	if !reflect.DeepEqual(sw.perKey, epoch.perKey) {
		t.Fatal("per-key logs diverge between Scheduler.RunUntil and Epochs.RunUntil")
	}
}

// TestStarvationGuard pins the epoch loop's livelock defence: an event that
// reschedules at its own timestamp cannot grow the epoch it is part of. The
// requeue joins the heap, forms the next epoch (same virtual time, after
// every event already pending there), and RunEpoch keeps making progress —
// one frontier per call — exactly matching serial Step order.
func TestStarvationGuard(t *testing.T) {
	run := func(drive func(s *Scheduler, end time.Time) []int) []string {
		s := NewScheduler(New(t0))
		at := t0.Add(time.Hour)
		var order []string
		count := 0
		var requeue func(x *Exec)
		requeue = func(x *Exec) {
			order = append(order, fmt.Sprintf("requeue%d@%s", count, x.Now().Format("15:04")))
			count++
			if count < 5 {
				x.AtKeyed(x.Now(), 7, "requeue", requeue) // same timestamp, again
			}
		}
		s.AtKeyed(at, 7, "requeue", requeue)
		s.AtKeyed(at, 9, "other", func(x *Exec) { order = append(order, "other") })
		s.At(at, "serial", func(time.Time) { order = append(order, "serial") })
		widths := drive(s, at)
		// The first epoch is the three originally pending events; each
		// requeue then forms its own width-1 epoch at the same timestamp.
		if widths != nil && !reflect.DeepEqual(widths, []int{3, 1, 1, 1, 1}) {
			t.Fatalf("epoch widths = %v, want [3 1 1 1 1]", widths)
		}
		if !s.Clock().Now().Equal(at) {
			t.Fatalf("clock at %v, want %v", s.Clock().Now(), at)
		}
		return order
	}

	epochOrder := run(func(s *Scheduler, end time.Time) []int {
		ex := &Epochs{Sched: s, Workers: 1}
		var widths []int
		for {
			n := ex.RunEpoch()
			if n == 0 {
				break
			}
			widths = append(widths, n)
		}
		return widths
	})
	serialOrder := run(func(s *Scheduler, end time.Time) []int {
		s.Run(100)
		return nil
	})
	want := []string{"requeue0@01:00", "other", "serial", "requeue1@01:00", "requeue2@01:00", "requeue3@01:00", "requeue4@01:00"}
	if !reflect.DeepEqual(epochOrder, want) {
		t.Fatalf("epoch order = %v, want %v", epochOrder, want)
	}
	if !reflect.DeepEqual(serialOrder, want) {
		t.Fatalf("serial order = %v, want %v", serialOrder, want)
	}
}

// TestEpochSerialEventsAreBarriers: a serial event between keyed events in
// one frontier sees every earlier keyed effect and none of the later ones.
func TestEpochSerialEventsAreBarriers(t *testing.T) {
	s := NewScheduler(New(t0))
	at := t0.Add(time.Hour)
	var mu sync.Mutex
	done := map[string]bool{}
	mark := func(name string) {
		mu.Lock()
		done[name] = true
		mu.Unlock()
	}
	for i := 0; i < 8; i++ {
		s.AtKeyed(at, uint64(1+i), fmt.Sprintf("pre%d", i), func(x *Exec) { mark("pre") })
	}
	var sawPre, sawPost bool
	s.At(at, "barrier", func(time.Time) {
		mu.Lock()
		sawPre, sawPost = done["pre"], done["post"]
		mu.Unlock()
	})
	for i := 0; i < 8; i++ {
		s.AtKeyed(at, uint64(1+i), fmt.Sprintf("post%d", i), func(x *Exec) { mark("post") })
	}
	ex := &Epochs{Sched: s, Workers: 8}
	defer ex.Close()
	if n := ex.RunEpoch(); n != 17 {
		t.Fatalf("epoch width = %d, want 17", n)
	}
	if !sawPre || sawPost {
		t.Fatalf("barrier saw pre=%v post=%v, want true/false", sawPre, sawPost)
	}
}

// TestEpochObserveStats checks the instrumentation contract: widths,
// segment and partition counts, and worker bounds add up.
func TestEpochObserveStats(t *testing.T) {
	s := NewScheduler(New(t0))
	at := t0.Add(time.Hour)
	for i := 0; i < 12; i++ {
		s.AtKeyed(at, uint64(1+i%4), "k", func(x *Exec) {})
	}
	s.At(at, "serial", func(time.Time) {})
	var stats []EpochStats
	ex := &Epochs{Sched: s, Workers: 8, Observe: func(st EpochStats) { stats = append(stats, st) }}
	defer ex.Close()
	ex.RunEpoch()
	if len(stats) != 1 {
		t.Fatalf("observed %d epochs, want 1", len(stats))
	}
	st := stats[0]
	if st.Width != 13 || st.Keyed != 12 || st.Segments != 1 || st.Partitions != 4 {
		t.Fatalf("stats = %+v, want width 13, keyed 12, 1 segment, 4 partitions", st)
	}
	if st.Workers != 4 {
		t.Fatalf("workers = %d, want 4 (bounded by partitions)", st.Workers)
	}
	if !st.At.Equal(at) {
		t.Fatalf("stats.At = %v, want %v", st.At, at)
	}
}

// TestEpochExecutorRaceHammer drives a wide, deep, self-extending keyed
// workload at 8 workers with lock-free per-key state, concurrent Clock.Now
// reads, and a live Sequencer + Observe hook. Its assertions are light; its
// job is to give the race detector (make race / make ci) surface area over
// the epoch executor's whole hot path.
func TestEpochExecutorRaceHammer(t *testing.T) {
	start := time.Date(2015, 4, 1, 0, 0, 0, 0, time.UTC)
	s := NewScheduler(New(start))
	w := &toyWorld{}
	var counters [65]int // per-key, mutated without locks
	var handler func(key uint64, depth int) func(*Exec)
	handler = func(key uint64, depth int) func(*Exec) {
		return func(x *Exec) {
			if !x.Now().Equal(s.Clock().Now()) { // concurrent atomic clock read
				t.Error("Exec.Now disagrees with clock during epoch")
			}
			counters[key]++
			w.record(key, fmt.Sprintf("k%02d %04d", key, counters[key]))
			rng := xrand.New(xrand.Mix(3, int64(x.Seq()), 2))
			if depth < 6 && rng.Float64() < 0.85 {
				x.AfterKeyed(time.Duration(rng.Intn(5))*time.Hour, key, "f", handler(key, depth+1))
			}
		}
	}
	for i := 0; i < 256; i++ {
		key := uint64(1 + i%64)
		s.AtKeyed(start.Add(time.Duration(i%5)*time.Hour), key, "seed", handler(key, 0))
	}
	events := 0
	ex := &Epochs{Sched: s, Workers: 8, Sequencers: []Sequencer{w}, Observe: func(st EpochStats) { events += st.Width }}
	defer ex.Close()
	ex.RunUntil(start.Add(90 * 24 * time.Hour))
	if events < 256 || len(w.global) != events {
		t.Fatalf("hammer fired %d events, global log %d", events, len(w.global))
	}
}
