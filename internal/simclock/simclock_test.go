package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)

func TestClockAdvance(t *testing.T) {
	c := New(t0)
	if !c.Now().Equal(t0) {
		t.Fatalf("Now() = %v, want %v", c.Now(), t0)
	}
	c.Advance(90 * time.Minute)
	want := t0.Add(90 * time.Minute)
	if !c.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", c.Now(), want)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	New(t0).Advance(-time.Second)
}

func TestClockAdvanceToIsMonotonic(t *testing.T) {
	c := New(t0)
	c.AdvanceTo(t0.Add(time.Hour))
	c.AdvanceTo(t0) // earlier: no-op
	if !c.Now().Equal(t0.Add(time.Hour)) {
		t.Fatalf("AdvanceTo moved clock backwards to %v", c.Now())
	}
}

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler(New(t0))
	var got []string
	s.At(t0.Add(3*time.Hour), "c", func(time.Time) { got = append(got, "c") })
	s.At(t0.Add(1*time.Hour), "a", func(time.Time) { got = append(got, "a") })
	s.At(t0.Add(2*time.Hour), "b", func(time.Time) { got = append(got, "b") })
	if n := s.Run(100); n != 3 {
		t.Fatalf("Run fired %d events, want 3", n)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

func TestSchedulerTieBreakIsFIFO(t *testing.T) {
	s := NewScheduler(New(t0))
	at := t0.Add(time.Hour)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, "tie", func(time.Time) { got = append(got, i) })
	}
	s.Run(100)
	if !sort.IntsAreSorted(got) {
		t.Fatalf("equal-time events fired out of scheduling order: %v", got)
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler(New(t0))
	fired := 0
	for i := 1; i <= 10; i++ {
		s.At(t0.Add(time.Duration(i)*time.Hour), "e", func(time.Time) { fired++ })
	}
	n := s.RunUntil(t0.Add(5 * time.Hour))
	if n != 5 || fired != 5 {
		t.Fatalf("RunUntil fired %d (%d), want 5", n, fired)
	}
	if !s.Clock().Now().Equal(t0.Add(5 * time.Hour)) {
		t.Fatalf("clock at %v, want deadline", s.Clock().Now())
	}
	if s.Len() != 5 {
		t.Fatalf("pending = %d, want 5", s.Len())
	}
}

func TestSchedulerRunUntilAdvancesToDeadlineWhenEmpty(t *testing.T) {
	s := NewScheduler(New(t0))
	deadline := t0.Add(24 * time.Hour)
	s.RunUntil(deadline)
	if !s.Clock().Now().Equal(deadline) {
		t.Fatalf("clock at %v, want %v", s.Clock().Now(), deadline)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(New(t0))
	fired := false
	ev := s.At(t0.Add(time.Hour), "x", func(time.Time) { fired = true })
	if !s.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(ev) {
		t.Fatal("Cancel returned true for already-cancelled event")
	}
	s.Run(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulerEventsMaySchedule(t *testing.T) {
	s := NewScheduler(New(t0))
	count := 0
	var tick func(now time.Time)
	tick = func(now time.Time) {
		count++
		if count < 5 {
			s.After(time.Hour, "tick", tick)
		}
	}
	s.After(time.Hour, "tick", tick)
	s.Run(100)
	if count != 5 {
		t.Fatalf("self-scheduling chain ran %d times, want 5", count)
	}
	if got, want := s.Clock().Now(), t0.Add(5*time.Hour); !got.Equal(want) {
		t.Fatalf("clock = %v, want %v", got, want)
	}
}

func TestSchedulerRunawayGuard(t *testing.T) {
	s := NewScheduler(New(t0))
	var loop func(now time.Time)
	loop = func(now time.Time) { s.After(time.Second, "loop", loop) }
	s.After(time.Second, "loop", loop)
	defer func() {
		if recover() == nil {
			t.Fatal("expected runaway-schedule panic")
		}
	}()
	s.Run(50)
}

func TestSchedulerPastEventFiresAtCurrentTime(t *testing.T) {
	c := New(t0)
	c.Advance(10 * time.Hour)
	s := NewScheduler(c)
	var at time.Time
	s.At(t0, "backlog", func(now time.Time) { at = now })
	s.Run(10)
	if !at.Equal(t0.Add(10 * time.Hour)) {
		t.Fatalf("past event saw now=%v, want current clock", at)
	}
}

// Property: any batch of events fires in nondecreasing time order.
func TestQuickFiringOrderMonotonic(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewScheduler(New(t0))
		var fired []time.Time
		for _, off := range offsets {
			at := t0.Add(time.Duration(off) * time.Second)
			s.At(at, "e", func(now time.Time) { fired = append(fired, now) })
		}
		s.Run(len(offsets) + 1)
		for i := 1; i < len(fired); i++ {
			if fired[i].Before(fired[i-1]) {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
