// Package simclock provides a virtual clock and a deterministic
// discrete-event scheduler. The Tripwire pilot study spans more than a
// calendar year (July 2014 – February 2017); simclock lets the whole
// timeline execute in milliseconds while preserving event ordering.
//
// Two execution modes share one event queue. The serial mode (Step, Run,
// RunUntil) fires events one at a time in (At, seq) order. The epoch mode
// (Epochs, in epoch.go) pops the whole frontier of events sharing the next
// timestamp and executes conflict-free partitions of it concurrently while
// producing bit-identical results — see epoch.go for the determinism
// argument.
package simclock

import (
	"container/heap"
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a virtual clock. The zero value is not useful; construct with
// New.
//
// Reads (Now) are safe from any goroutine: the current time is an atomic
// snapshot, so event handlers running concurrently inside an epoch — and
// the Now-plumbing they reach in webgen, emailprovider, and core — observe
// a stable value without locking. Writes (Advance, AdvanceTo) remain the
// business of the single simulation driver; the clock only ever moves
// between epochs, never while handlers run.
type Clock struct {
	now atomic.Pointer[time.Time]
}

// New returns a Clock set to start.
func New(start time.Time) *Clock {
	c := &Clock{}
	c.now.Store(&start)
	return c
}

// Now returns the current virtual time. Safe for concurrent use.
func (c *Clock) Now() time.Time { return *c.now.Load() }

// Advance moves the clock forward by d. Advance panics if d is negative:
// virtual time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	t := c.Now().Add(d)
	c.now.Store(&t)
}

// AdvanceTo moves the clock forward to t. It is a no-op if t is not after
// the current time, so callers may replay an already-sorted event stream
// without checking.
func (c *Clock) AdvanceTo(t time.Time) {
	if t.After(c.Now()) {
		c.now.Store(&t)
	}
}

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled.
//
// An event is either serial (Fn set) or keyed (KFn set, scheduled with
// AtKeyed/AfterKeyed). Serial events always run exclusively. Keyed events
// carry a conflict key; the epoch executor may run keyed events with
// different keys concurrently, while events sharing a key stay ordered.
type Event struct {
	At   time.Time
	Name string
	Fn   func(now time.Time)

	// KFn is the keyed callback. It receives an execution context instead
	// of a bare timestamp so that events it schedules are sequenced
	// deterministically even when the handler runs inside a parallel epoch.
	KFn func(*Exec)
	// Key is the event's conflict key (see KeyFor). Key 0 means exclusive:
	// the event never runs concurrently with anything.
	Key uint64

	seq   uint64
	index int
}

// KeyFor maps an identifier (a site domain, an account email) onto one of
// 64 conflict-key shards, numbered 1..64 so that 0 stays reserved for
// exclusive events. It uses the same 64-way FNV-1a sharding as the webgen
// substrate: events about the same domain or account always collide and
// therefore stay mutually ordered.
func KeyFor(id string) uint64 {
	const offset64, prime64 = 14695981039866320922, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h&63 + 1
}

// Scheduler is a deterministic discrete-event scheduler driving a Clock.
type Scheduler struct {
	clock *Clock
	pq    eventQueue
	seq   uint64
}

// NewScheduler returns a Scheduler driving clock.
func NewScheduler(clock *Clock) *Scheduler {
	return &Scheduler{clock: clock}
}

// Clock returns the scheduler's clock.
func (s *Scheduler) Clock() *Clock { return s.clock }

// push assigns the next sequence number and queues ev. Scheduling order is
// the tiebreak for equal times, so push must only ever run on the driver
// goroutine — parallel epoch handlers defer their scheduling through Exec
// buffers that the executor flushes in frontier order.
func (s *Scheduler) push(ev *Event) *Event {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.pq, ev)
	return ev
}

// At schedules fn to run at t. Scheduling in the past is allowed (the event
// fires immediately on the next Run step at the current clock time); this
// mirrors how a backlog of provider login dumps is processed on arrival.
func (s *Scheduler) At(t time.Time, name string, fn func(now time.Time)) *Event {
	return s.push(&Event{At: t, Name: name, Fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, name string, fn func(now time.Time)) *Event {
	return s.At(s.clock.Now().Add(d), name, fn)
}

// AtKeyed schedules a keyed event at t. Events with the same key are
// guaranteed to run in schedule order even under the epoch executor;
// events with different keys may run concurrently when their timestamps
// coincide. Key 0 makes the event exclusive.
func (s *Scheduler) AtKeyed(t time.Time, key uint64, name string, fn func(*Exec)) *Event {
	return s.push(&Event{At: t, Name: name, KFn: fn, Key: key})
}

// AfterKeyed schedules a keyed event d after the current virtual time.
func (s *Scheduler) AfterKeyed(d time.Duration, key uint64, name string, fn func(*Exec)) *Event {
	return s.AtKeyed(s.clock.Now().Add(d), key, name, fn)
}

// Cancel removes ev from the queue. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false. Events scheduled
// from inside a parallel epoch handler are not cancellable until the epoch
// that scheduled them has finished (they sit in the handler's deferred
// buffer, not the queue).
func (s *Scheduler) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 || ev.index >= len(s.pq) || s.pq[ev.index] != ev {
		return false
	}
	heap.Remove(&s.pq, ev.index)
	return true
}

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return len(s.pq) }

// Seq returns the next sequence number the scheduler will assign. It is a
// progress fingerprint: two runs of the same study that have assigned the
// same Seq have scheduled exactly the same events, so checkpoints record
// it and resume verifies it.
func (s *Scheduler) Seq() uint64 { return s.seq }

// NextAt returns the time of the earliest pending event. ok is false when
// the queue is empty. Drivers use it to decide whether to keep stepping —
// e.g. checking a context between events without disturbing the queue.
func (s *Scheduler) NextAt() (at time.Time, ok bool) {
	if len(s.pq) == 0 {
		return time.Time{}, false
	}
	return s.pq[0].At, true
}

// fire invokes ev's callback at the current clock time. Keyed events get a
// direct (unbuffered) Exec: outside an epoch there is nothing to defer for.
func (s *Scheduler) fire(ev *Event) {
	if ev.KFn != nil {
		ev.KFn(&Exec{s: s, now: s.clock.Now(), seq: ev.seq})
		return
	}
	ev.Fn(s.clock.Now())
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event fired.
//
// A callback may schedule new events at its own timestamp ("now"); they are
// queued behind every already-pending event at that timestamp (sequence
// order breaks the tie) and fire on later Steps. Step itself therefore
// always makes progress — one pop per call — and cannot livelock however
// the callback reschedules; the same holds for the epoch executor, which
// snapshots the frontier before running it (see Epochs.RunEpoch).
func (s *Scheduler) Step() bool {
	if len(s.pq) == 0 {
		return false
	}
	ev := heap.Pop(&s.pq).(*Event)
	s.clock.AdvanceTo(ev.At)
	s.fire(ev)
	return true
}

// RunUntil fires events in order until the queue is empty or the next event
// is after deadline. The clock is left at deadline if it ran dry earlier
// than deadline, so subsequent After() calls measure from the deadline.
// It returns the number of events fired.
//
// Callbacks that keep scheduling at their own timestamp extend the loop:
// RunUntil fires them too (they are not after deadline), so a handler that
// unconditionally reschedules "at now" forever will spin. That is a
// runaway schedule, the same bug Run's maxEvents guard exists for — drive
// suspect schedules with Run, or bound them with Epochs.RunUntil plus an
// epoch budget in the driver. TestStarvationGuard pins the exact semantics.
func (s *Scheduler) RunUntil(deadline time.Time) int {
	n := 0
	for len(s.pq) > 0 && !s.pq[0].At.After(deadline) {
		s.Step()
		n++
	}
	s.clock.AdvanceTo(deadline)
	return n
}

// Run fires all pending events, including ones scheduled by fired events.
// It returns the number of events fired. Run panics after maxEvents events
// as a guard against runaway self-scheduling loops.
func (s *Scheduler) Run(maxEvents int) int {
	n := 0
	for s.Step() {
		n++
		if n >= maxEvents {
			panic(fmt.Sprintf("simclock: exceeded %d events; runaway schedule?", maxEvents))
		}
	}
	return n
}

// Exec is the execution context handed to a keyed event's callback. It
// supplies the event's virtual time, its sequence number (the seed salt for
// per-event RNG derivation), and scheduling methods.
//
// When the event runs inside a parallel epoch segment, scheduling through
// Exec is buffered: the new events are held until the segment completes and
// are then pushed in frontier order, so sequence numbers — and therefore
// all future tie-breaking — are identical to what serial execution would
// have assigned, at any worker count. Outside an epoch (Step/Run/RunUntil)
// Exec schedules directly.
type Exec struct {
	s        *Scheduler
	now      time.Time
	seq      uint64
	buffered bool
	deferred []*Event
}

// Now returns the event's virtual time.
func (x *Exec) Now() time.Time { return x.now }

// Seq returns the event's sequence number. It is assigned in deterministic
// schedule order and is unique per scheduler, which makes it the canonical
// salt for deriving per-event RNG streams from the study seed.
func (x *Exec) Seq() uint64 { return x.seq }

// add routes a newly scheduled event: buffered inside an epoch segment,
// straight to the queue otherwise.
func (x *Exec) add(ev *Event) {
	if x.buffered {
		x.deferred = append(x.deferred, ev)
		return
	}
	x.s.push(ev)
}

// At schedules a serial event at t.
func (x *Exec) At(t time.Time, name string, fn func(now time.Time)) {
	x.add(&Event{At: t, Name: name, Fn: fn})
}

// After schedules a serial event d after the event's own time.
func (x *Exec) After(d time.Duration, name string, fn func(now time.Time)) {
	x.At(x.now.Add(d), name, fn)
}

// AtKeyed schedules a keyed event at t.
func (x *Exec) AtKeyed(t time.Time, key uint64, name string, fn func(*Exec)) {
	x.add(&Event{At: t, Name: name, KFn: fn, Key: key})
}

// AfterKeyed schedules a keyed event d after the event's own time.
func (x *Exec) AfterKeyed(d time.Duration, key uint64, name string, fn func(*Exec)) {
	x.AtKeyed(x.now.Add(d), key, name, fn)
}

// eventQueue is a min-heap over (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].At.Equal(q[j].At) {
		return q[i].At.Before(q[j].At)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
