// Package simclock provides a virtual clock and a deterministic
// discrete-event scheduler. The Tripwire pilot study spans more than a
// calendar year (July 2014 – February 2017); simclock lets the whole
// timeline execute in milliseconds while preserving event ordering.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a virtual clock. The zero value is not useful; construct with New.
// Clock is not safe for concurrent use; the simulation driver owns it.
type Clock struct {
	now time.Time
}

// New returns a Clock set to start.
func New(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// Advance moves the clock forward by d. Advance panics if d is negative:
// virtual time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	c.now = c.now.Add(d)
}

// AdvanceTo moves the clock forward to t. It is a no-op if t is not after
// the current time, so callers may replay an already-sorted event stream
// without checking.
func (c *Clock) AdvanceTo(t time.Time) {
	if t.After(c.now) {
		c.now = t
	}
}

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled.
type Event struct {
	At   time.Time
	Name string
	Fn   func(now time.Time)

	seq   uint64
	index int
}

// Scheduler is a deterministic discrete-event scheduler driving a Clock.
type Scheduler struct {
	clock *Clock
	pq    eventQueue
	seq   uint64
}

// NewScheduler returns a Scheduler driving clock.
func NewScheduler(clock *Clock) *Scheduler {
	return &Scheduler{clock: clock}
}

// Clock returns the scheduler's clock.
func (s *Scheduler) Clock() *Clock { return s.clock }

// At schedules fn to run at t. Scheduling in the past is allowed (the event
// fires immediately on the next Run step at the current clock time); this
// mirrors how a backlog of provider login dumps is processed on arrival.
func (s *Scheduler) At(t time.Time, name string, fn func(now time.Time)) *Event {
	ev := &Event{At: t, Name: name, Fn: fn, seq: s.seq}
	s.seq++
	heap.Push(&s.pq, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, name string, fn func(now time.Time)) *Event {
	return s.At(s.clock.Now().Add(d), name, fn)
}

// Cancel removes ev from the queue. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (s *Scheduler) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 || ev.index >= len(s.pq) || s.pq[ev.index] != ev {
		return false
	}
	heap.Remove(&s.pq, ev.index)
	return true
}

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return len(s.pq) }

// NextAt returns the time of the earliest pending event. ok is false when
// the queue is empty. Drivers use it to decide whether to keep stepping —
// e.g. checking a context between events without disturbing the queue.
func (s *Scheduler) NextAt() (at time.Time, ok bool) {
	if len(s.pq) == 0 {
		return time.Time{}, false
	}
	return s.pq[0].At, true
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event fired.
func (s *Scheduler) Step() bool {
	if len(s.pq) == 0 {
		return false
	}
	ev := heap.Pop(&s.pq).(*Event)
	s.clock.AdvanceTo(ev.At)
	ev.Fn(s.clock.Now())
	return true
}

// RunUntil fires events in order until the queue is empty or the next event
// is after deadline. The clock is left at deadline if it ran dry earlier
// than deadline, so subsequent After() calls measure from the deadline.
// It returns the number of events fired.
func (s *Scheduler) RunUntil(deadline time.Time) int {
	n := 0
	for len(s.pq) > 0 && !s.pq[0].At.After(deadline) {
		s.Step()
		n++
	}
	s.clock.AdvanceTo(deadline)
	return n
}

// Run fires all pending events, including ones scheduled by fired events.
// It returns the number of events fired. Run panics after maxEvents events
// as a guard against runaway self-scheduling loops.
func (s *Scheduler) Run(maxEvents int) int {
	n := 0
	for s.Step() {
		n++
		if n >= maxEvents {
			panic(fmt.Sprintf("simclock: exceeded %d events; runaway schedule?", maxEvents))
		}
	}
	return n
}

// eventQueue is a min-heap over (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].At.Equal(q[j].At) {
		return q[i].At.Before(q[j].At)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
