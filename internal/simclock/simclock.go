// Package simclock provides a virtual clock and a deterministic
// discrete-event scheduler. The Tripwire pilot study spans more than a
// calendar year (July 2014 – February 2017); simclock lets the whole
// timeline execute in milliseconds while preserving event ordering.
//
// Two execution modes share one event queue. The serial mode (Step, Run,
// RunUntil) fires events one at a time in (At, seq) order. The epoch mode
// (Epochs, in epoch.go) pops the whole frontier of events sharing the next
// timestamp and executes conflict-free partitions of it concurrently while
// producing bit-identical results — see epoch.go for the determinism
// argument.
package simclock

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a virtual clock. The zero value is not useful; construct with
// New.
//
// Reads (Now) are safe from any goroutine: the current time is an atomic
// snapshot, so event handlers running concurrently inside an epoch — and
// the Now-plumbing they reach in webgen, emailprovider, and core — observe
// a stable value without locking. Writes (Advance, AdvanceTo) remain the
// business of the single simulation driver; the clock only ever moves
// between epochs, never while handlers run.
type Clock struct {
	now atomic.Pointer[time.Time]
}

// New returns a Clock set to start.
func New(start time.Time) *Clock {
	c := &Clock{}
	c.now.Store(&start)
	return c
}

// Now returns the current virtual time. Safe for concurrent use.
func (c *Clock) Now() time.Time { return *c.now.Load() }

// Advance moves the clock forward by d. Advance panics if d is negative:
// virtual time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	t := c.Now().Add(d)
	c.now.Store(&t)
}

// AdvanceTo moves the clock forward to t. It is a no-op if t is not after
// the current time, so callers may replay an already-sorted event stream
// without checking.
func (c *Clock) AdvanceTo(t time.Time) {
	if t.After(c.Now()) {
		c.now.Store(&t)
	}
}

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled.
//
// An event is either serial (Fn set) or keyed (KFn set, scheduled with
// AtKeyed/AfterKeyed). Serial events always run exclusively. Keyed events
// carry a conflict key; the epoch executor may run keyed events with
// different keys concurrently, while events sharing a key stay ordered.
type Event struct {
	At   time.Time
	Name string
	Fn   func(now time.Time)

	// KFn is the keyed callback. It receives an execution context instead
	// of a bare timestamp so that events it schedules are sequenced
	// deterministically even when the handler runs inside a parallel epoch.
	KFn func(*Exec)
	// Key is the event's conflict key (see KeyFor). Key 0 means exclusive:
	// the event never runs concurrently with anything.
	Key uint64

	seq   uint64
	index int
}

// KeyFor maps an identifier (a site domain, an account email) onto one of
// 256 conflict-key shards, numbered 1..256 so that 0 stays reserved for
// exclusive events (FNV-1a, folded). Events about the same domain or
// account always collide and therefore stay mutually ordered. Distinct
// identifiers may also collide; that only serializes their execution
// inside an epoch, it never reorders observable output — which is why the
// fold width is a pure throughput knob: 256 shards keep false conflicts
// rare enough that wide epochs saturate a 16-worker pool.
func KeyFor(id string) uint64 {
	const offset64, prime64 = 14695981039866320922, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h&255 + 1
}

// Scheduler is a deterministic discrete-event scheduler driving a Clock.
type Scheduler struct {
	clock *Clock
	pq    eventQueue
	seq   uint64
}

// NewScheduler returns a Scheduler driving clock.
func NewScheduler(clock *Clock) *Scheduler {
	return &Scheduler{clock: clock}
}

// Clock returns the scheduler's clock.
func (s *Scheduler) Clock() *Clock { return s.clock }

// push assigns the next sequence number and queues ev. Scheduling order is
// the tiebreak for equal times, so push must only ever run on the driver
// goroutine — parallel epoch handlers defer their scheduling through Exec
// buffers that the executor flushes in frontier order.
func (s *Scheduler) push(ev *Event) *Event {
	ev.seq = s.seq
	s.seq++
	s.pq.push(ev)
	return ev
}

// pushBatch assigns sequence numbers to evs in slice order and queues them
// all. It is the bulk counterpart of push used by the epoch executor to
// flush a segment's deferred scheduling: appending the batch first and then
// restoring the heap in one pass beats len(evs) independent sift-ups once
// the batch is a sizable fraction of the queue. The heap's internal layout
// never affects observable order — (At, seq) is a strict total order — so
// either restoration strategy yields identical runs.
func (s *Scheduler) pushBatch(evs []*Event) {
	if len(evs) == 0 {
		return
	}
	base := len(s.pq)
	for _, ev := range evs {
		ev.seq = s.seq
		s.seq++
		ev.index = len(s.pq)
		s.pq = append(s.pq, ev)
	}
	if len(evs) >= base/4 {
		// Bottom-up heapify: O(n+m) beats m sift-ups of O(log n) each.
		for i := len(s.pq)/2 - 1; i >= 0; i-- {
			s.pq.down(i)
		}
		return
	}
	for i := base; i < len(s.pq); i++ {
		s.pq.up(i)
	}
}

// popFrontier removes every event sharing the earliest pending timestamp
// and appends them to dst in (At, seq) order — exactly the order repeated
// Step calls would have fired them. It returns the extended slice and the
// frontier timestamp. dst's backing array is reused across epochs by the
// caller.
func (s *Scheduler) popFrontier(dst []*Event) ([]*Event, time.Time) {
	if len(s.pq) == 0 {
		return dst, time.Time{}
	}
	at := s.pq[0].At
	for len(s.pq) > 0 && s.pq[0].At.Equal(at) {
		dst = append(dst, s.pq.popMin())
	}
	return dst, at
}

// At schedules fn to run at t. Scheduling in the past is allowed (the event
// fires immediately on the next Run step at the current clock time); this
// mirrors how a backlog of provider login dumps is processed on arrival.
func (s *Scheduler) At(t time.Time, name string, fn func(now time.Time)) *Event {
	return s.push(&Event{At: t, Name: name, Fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, name string, fn func(now time.Time)) *Event {
	return s.At(s.clock.Now().Add(d), name, fn)
}

// AtKeyed schedules a keyed event at t. Events with the same key are
// guaranteed to run in schedule order even under the epoch executor;
// events with different keys may run concurrently when their timestamps
// coincide. Key 0 makes the event exclusive.
func (s *Scheduler) AtKeyed(t time.Time, key uint64, name string, fn func(*Exec)) *Event {
	return s.push(&Event{At: t, Name: name, KFn: fn, Key: key})
}

// AfterKeyed schedules a keyed event d after the current virtual time.
func (s *Scheduler) AfterKeyed(d time.Duration, key uint64, name string, fn func(*Exec)) *Event {
	return s.AtKeyed(s.clock.Now().Add(d), key, name, fn)
}

// Cancel removes ev from the queue. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false. Events scheduled
// from inside a parallel epoch handler are not cancellable until the epoch
// that scheduled them has finished (they sit in the handler's deferred
// buffer, not the queue).
func (s *Scheduler) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 || ev.index >= len(s.pq) || s.pq[ev.index] != ev {
		return false
	}
	s.pq.remove(ev.index)
	return true
}

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return len(s.pq) }

// Seq returns the next sequence number the scheduler will assign. It is a
// progress fingerprint: two runs of the same study that have assigned the
// same Seq have scheduled exactly the same events, so checkpoints record
// it and resume verifies it.
func (s *Scheduler) Seq() uint64 { return s.seq }

// NextAt returns the time of the earliest pending event. ok is false when
// the queue is empty. Drivers use it to decide whether to keep stepping —
// e.g. checking a context between events without disturbing the queue.
func (s *Scheduler) NextAt() (at time.Time, ok bool) {
	if len(s.pq) == 0 {
		return time.Time{}, false
	}
	return s.pq[0].At, true
}

// fire invokes ev's callback at the current clock time. Keyed events get a
// direct (unbuffered) Exec: outside an epoch there is nothing to defer for.
func (s *Scheduler) fire(ev *Event) {
	if ev.KFn != nil {
		ev.KFn(&Exec{s: s, now: s.clock.Now(), seq: ev.seq})
		return
	}
	ev.Fn(s.clock.Now())
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event fired.
//
// A callback may schedule new events at its own timestamp ("now"); they are
// queued behind every already-pending event at that timestamp (sequence
// order breaks the tie) and fire on later Steps. Step itself therefore
// always makes progress — one pop per call — and cannot livelock however
// the callback reschedules; the same holds for the epoch executor, which
// snapshots the frontier before running it (see Epochs.RunEpoch).
func (s *Scheduler) Step() bool {
	if len(s.pq) == 0 {
		return false
	}
	ev := s.pq.popMin()
	s.clock.AdvanceTo(ev.At)
	s.fire(ev)
	return true
}

// RunUntil fires events in order until the queue is empty or the next event
// is after deadline. The clock is left at deadline if it ran dry earlier
// than deadline, so subsequent After() calls measure from the deadline.
// It returns the number of events fired.
//
// Callbacks that keep scheduling at their own timestamp extend the loop:
// RunUntil fires them too (they are not after deadline), so a handler that
// unconditionally reschedules "at now" forever will spin. That is a
// runaway schedule, the same bug Run's maxEvents guard exists for — drive
// suspect schedules with Run, or bound them with Epochs.RunUntil plus an
// epoch budget in the driver. TestStarvationGuard pins the exact semantics.
func (s *Scheduler) RunUntil(deadline time.Time) int {
	n := 0
	for len(s.pq) > 0 && !s.pq[0].At.After(deadline) {
		s.Step()
		n++
	}
	s.clock.AdvanceTo(deadline)
	return n
}

// Run fires all pending events, including ones scheduled by fired events.
// It returns the number of events fired. Run panics after maxEvents events
// as a guard against runaway self-scheduling loops.
func (s *Scheduler) Run(maxEvents int) int {
	n := 0
	for s.Step() {
		n++
		if n >= maxEvents {
			panic(fmt.Sprintf("simclock: exceeded %d events; runaway schedule?", maxEvents))
		}
	}
	return n
}

// Exec is the execution context handed to a keyed event's callback. It
// supplies the event's virtual time, its sequence number (the seed salt for
// per-event RNG derivation), and scheduling methods.
//
// When the event runs inside a parallel epoch segment, scheduling through
// Exec is buffered: the new events are held until the segment completes and
// are then pushed in frontier order, so sequence numbers — and therefore
// all future tie-breaking — are identical to what serial execution would
// have assigned, at any worker count. Outside an epoch (Step/Run/RunUntil)
// Exec schedules directly.
type Exec struct {
	s        *Scheduler
	now      time.Time
	seq      uint64
	buffered bool
	deferred []*Event
}

// Now returns the event's virtual time.
func (x *Exec) Now() time.Time { return x.now }

// Seq returns the event's sequence number. It is assigned in deterministic
// schedule order and is unique per scheduler, which makes it the canonical
// salt for deriving per-event RNG streams from the study seed.
func (x *Exec) Seq() uint64 { return x.seq }

// add routes a newly scheduled event: buffered inside an epoch segment,
// straight to the queue otherwise.
func (x *Exec) add(ev *Event) {
	if x.buffered {
		x.deferred = append(x.deferred, ev)
		return
	}
	x.s.push(ev)
}

// At schedules a serial event at t.
func (x *Exec) At(t time.Time, name string, fn func(now time.Time)) {
	x.add(&Event{At: t, Name: name, Fn: fn})
}

// After schedules a serial event d after the event's own time.
func (x *Exec) After(d time.Duration, name string, fn func(now time.Time)) {
	x.At(x.now.Add(d), name, fn)
}

// AtKeyed schedules a keyed event at t.
func (x *Exec) AtKeyed(t time.Time, key uint64, name string, fn func(*Exec)) {
	x.add(&Event{At: t, Name: name, KFn: fn, Key: key})
}

// AfterKeyed schedules a keyed event d after the event's own time.
func (x *Exec) AfterKeyed(d time.Duration, key uint64, name string, fn func(*Exec)) {
	x.AtKeyed(x.now.Add(d), key, name, fn)
}

// eventQueue is a min-heap over (At, seq). It implements the sift
// operations directly rather than through container/heap: the queue is the
// single hottest data structure in the simulator and the interface
// indirection (plus the any boxing on Push/Pop) is measurable across the
// millions of events a study schedules.
type eventQueue []*Event

func (q eventQueue) less(i, j int) bool {
	if !q[i].At.Equal(q[j].At) {
		return q[i].At.Before(q[j].At)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

// up restores the heap property for an element that may be smaller than its
// ancestors (after insertion at i).
func (q eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// down restores the heap property for an element that may be larger than
// its descendants. It reports whether the element moved.
func (q eventQueue) down(i int) bool {
	start := i
	n := len(q)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && q.less(r, child) {
			child = r
		}
		if !q.less(child, i) {
			break
		}
		q.swap(i, child)
		i = child
	}
	return i > start
}

// push inserts ev (seq already assigned) into the heap.
func (q *eventQueue) push(ev *Event) {
	ev.index = len(*q)
	*q = append(*q, ev)
	q.up(ev.index)
}

// popMin removes and returns the minimum element.
func (q *eventQueue) popMin() *Event {
	old := *q
	ev := old[0]
	last := len(old) - 1
	old.swap(0, last)
	old[last] = nil
	*q = old[:last]
	if last > 0 {
		(*q).down(0)
	}
	ev.index = -1
	return ev
}

// remove deletes the element at index i (used by Cancel).
func (q *eventQueue) remove(i int) {
	old := *q
	last := len(old) - 1
	ev := old[i]
	if i != last {
		old.swap(i, last)
	}
	old[last] = nil
	*q = old[:last]
	if i != last {
		if !(*q).down(i) {
			(*q).up(i)
		}
	}
	ev.index = -1
}
