package simclock

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// The epoch-parallel executor. An epoch is the frontier of pending events
// that share the earliest timestamp. RunEpoch pops the whole frontier,
// advances the clock once, and executes the frontier in segments:
//
//   - serial events (Fn, or keyed events with Key 0) are barriers — each
//     runs alone, in frontier order;
//   - maximal runs of keyed events form parallel segments. A segment is
//     partitioned by conflict key (first-appearance order) and the
//     partitions execute concurrently on a bounded worker pool, while
//     events inside one partition run in frontier order.
//
// Results are bit-identical to serial execution at any worker count
// because every source of ordering is pinned:
//
//  1. Same-key events never run concurrently, so per-domain and
//     per-account state sees schedule order.
//  2. Scheduling from a parallel handler is buffered in the handler's Exec
//     and flushed in frontier order after the segment, so sequence numbers
//     match what serial execution would have assigned.
//  3. Cross-partition interleaving is unobservable: handlers draw from
//     per-event or per-account RNGs (derived from the study seed and the
//     event's Seq), shared substrate is mutex-protected, and
//     append-ordered shared logs are re-sequenced per segment by the
//     registered Sequencers.
//
// Starvation guard: the frontier is snapshotted before any handler runs,
// so an event that schedules at its own timestamp cannot grow the epoch
// it is part of — the requeue lands in the heap and forms the *next*
// epoch (same timestamp, later sequence numbers). Intra-epoch requeues
// are therefore capped at zero by construction and fire next epoch in
// deterministic order, exactly as Step would have fired them.
// TestStarvationGuard pins this.

// Sequencer hooks shared append-ordered state into segment boundaries.
// BeginSegment is called before a parallel segment starts and EndSegment
// after all its partitions have finished; EndSegment must impose a
// deterministic order on whatever was appended in between (all appends in
// one segment carry the same virtual timestamp, so a stable sort by a
// content key suffices). Calls are always paired and never nested.
type Sequencer interface {
	BeginSegment()
	EndSegment()
}

// EpochStats describes one executed epoch; Epochs.Observe receives it
// after the epoch completes. Busy and Elapsed are only measured when an
// Observe hook is installed, so an unobserved run pays nothing for them.
type EpochStats struct {
	At         time.Time
	Width      int // events in the frontier
	Keyed      int // keyed (parallel-eligible) events among them
	Segments   int // parallel segments executed
	Partitions int // conflict partitions summed over segments
	Workers    int // widest worker count any segment could use
	Busy       time.Duration // summed partition execution time
	Elapsed    time.Duration // wall-clock time executing the epoch
}

// Epochs drives a Scheduler epoch by epoch. Workers bounds partition
// concurrency (values below 2 execute partitions serially, still with
// full epoch semantics — the determinism baseline). Sequencers are
// invoked around every parallel segment. Observe, when non-nil, receives
// per-epoch statistics.
type Epochs struct {
	Sched      *Scheduler
	Workers    int
	Sequencers []Sequencer
	Observe    func(EpochStats)

	frontier []*Event // scratch, reused across epochs
}

// RunEpoch executes the next epoch and returns how many events fired
// (zero when the queue is empty).
func (e *Epochs) RunEpoch() int {
	s := e.Sched
	if len(s.pq) == 0 {
		return 0
	}
	at := s.pq[0].At
	frontier := e.frontier[:0]
	for len(s.pq) > 0 && s.pq[0].At.Equal(at) {
		frontier = append(frontier, heap.Pop(&s.pq).(*Event))
	}
	e.frontier = frontier
	s.clock.AdvanceTo(at)

	st := EpochStats{At: at, Width: len(frontier)}
	var epochStart time.Time
	if e.Observe != nil {
		epochStart = time.Now()
	}
	for i := 0; i < len(frontier); {
		ev := frontier[i]
		if ev.KFn == nil || ev.Key == 0 {
			s.fire(ev)
			i++
			continue
		}
		j := i + 1
		for j < len(frontier) && frontier[j].KFn != nil && frontier[j].Key != 0 {
			j++
		}
		e.runSegment(frontier[i:j], &st)
		i = j
	}
	if e.Observe != nil {
		st.Elapsed = time.Since(epochStart)
		e.Observe(st)
	}
	// Drop handler references so fired closures are collectable even while
	// the scratch frontier is retained for the next epoch.
	clear(frontier)
	return st.Width
}

// RunUntil runs epochs until the queue is empty or the next epoch is after
// deadline, then advances the clock to deadline (mirroring
// Scheduler.RunUntil). It returns the number of events fired.
func (e *Epochs) RunUntil(deadline time.Time) int {
	n := 0
	for {
		at, ok := e.Sched.NextAt()
		if !ok || at.After(deadline) {
			break
		}
		n += e.RunEpoch()
	}
	e.Sched.clock.AdvanceTo(deadline)
	return n
}

// runSegment executes one maximal run of keyed events: partition by key,
// run partitions concurrently, re-sequence shared logs, then flush the
// handlers' deferred scheduling in frontier order.
func (e *Epochs) runSegment(seg []*Event, st *EpochStats) {
	st.Keyed += len(seg)
	st.Segments++

	// Partition by conflict key in first-appearance order. parts holds
	// indices into seg so flush order stays trivially the frontier order.
	keyIdx := make(map[uint64]int, 16)
	parts := make([][]int, 0, 16)
	for i, ev := range seg {
		p, ok := keyIdx[ev.Key]
		if !ok {
			p = len(parts)
			keyIdx[ev.Key] = p
			parts = append(parts, nil)
		}
		parts[p] = append(parts[p], i)
	}
	st.Partitions += len(parts)

	workers := e.Workers
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > st.Workers {
		st.Workers = workers
	}

	for _, sq := range e.Sequencers {
		sq.BeginSegment()
	}
	now := e.Sched.clock.Now()
	execs := make([]*Exec, len(seg))
	runPartition := func(p int) {
		for _, i := range parts[p] {
			x := &Exec{s: e.Sched, now: now, seq: seg[i].seq, buffered: true}
			execs[i] = x
			seg[i].KFn(x)
		}
	}
	switch {
	case workers <= 1:
		for p := range parts {
			runPartition(p)
		}
	case e.Observe == nil:
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					p := int(next.Add(1)) - 1
					if p >= len(parts) {
						return
					}
					runPartition(p)
				}
			}()
		}
		wg.Wait()
	default:
		// Metered variant: per-partition wall time feeds the busy total
		// that Observe turns into worker utilization.
		var next, busy atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					p := int(next.Add(1)) - 1
					if p >= len(parts) {
						return
					}
					start := time.Now()
					runPartition(p)
					busy.Add(int64(time.Since(start)))
				}
			}()
		}
		wg.Wait()
		st.Busy += time.Duration(busy.Load())
	}
	for _, sq := range e.Sequencers {
		sq.EndSegment()
	}

	// Deterministic flush: deferred events enter the queue in frontier
	// order, reproducing the sequence numbers serial execution assigns.
	for _, x := range execs {
		for _, ev := range x.deferred {
			e.Sched.push(ev)
		}
	}
}
