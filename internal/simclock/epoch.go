package simclock

import (
	"sync"
	"sync/atomic"
	"time"
)

// The epoch-parallel executor. An epoch is the frontier of pending events
// that share the earliest timestamp. RunEpoch pops the whole frontier,
// advances the clock once, and executes the frontier in segments:
//
//   - serial events (Fn, or keyed events with Key 0) are barriers — each
//     runs alone, in frontier order;
//   - maximal runs of keyed events form parallel segments. A segment is
//     partitioned by conflict key (first-appearance order) and the
//     partitions execute concurrently on a persistent worker pool, while
//     events inside one partition run in frontier order.
//
// Results are bit-identical to serial execution at any worker count
// because every source of ordering is pinned:
//
//  1. Same-key events never run concurrently, so per-domain and
//     per-account state sees schedule order.
//  2. Scheduling from a parallel handler is buffered in the handler's Exec
//     and flushed in frontier order after the segment, so sequence numbers
//     match what serial execution would have assigned.
//  3. Cross-partition interleaving is unobservable: handlers draw from
//     per-event or per-account RNGs (derived from the study seed and the
//     event's Seq), shared substrate is mutex-protected, and
//     append-ordered shared logs are re-sequenced per segment by the
//     registered Sequencers. Because no ordering leaks across partitions,
//     the executor is free to dispatch partitions largest-first (LPT),
//     which shaves stragglers off the end of wide segments.
//
// Starvation guard: the frontier is snapshotted before any handler runs,
// so an event that schedules at its own timestamp cannot grow the epoch
// it is part of — the requeue lands in the heap and forms the *next*
// epoch (same timestamp, later sequence numbers). Intra-epoch requeues
// are therefore capped at zero by construction and fire next epoch in
// deterministic order, exactly as Step would have fired them.
// TestStarvationGuard pins this.
//
// Allocation discipline: the executor is designed to run millions of
// events without per-event garbage. The frontier slice, the partition
// index (an open-addressing key table plus CSR offset/item scratch), and
// the per-event Exec values (a slab whose deferred buffers keep their
// capacity) are all owned by Epochs and reused across segments and epochs.

// Sequencer hooks shared append-ordered state into segment boundaries.
// BeginSegment is called before a parallel segment starts and EndSegment
// after all its partitions have finished; EndSegment must impose a
// deterministic order on whatever was appended in between (all appends in
// one segment carry the same virtual timestamp, so a stable sort by a
// content key suffices). Calls are always paired and never nested.
type Sequencer interface {
	BeginSegment()
	EndSegment()
}

// EpochStats describes one executed epoch; Epochs.Observe receives it
// after the epoch completes. Busy and Elapsed are only measured when an
// Observe hook is installed, so an unobserved run pays nothing for them.
type EpochStats struct {
	At         time.Time
	Width      int // events in the frontier
	Keyed      int // keyed (parallel-eligible) events among them
	Segments   int // parallel segments executed
	Partitions int // conflict partitions summed over segments
	Workers    int // widest worker count any segment could use
	Busy       time.Duration // summed partition execution time
	Elapsed    time.Duration // wall-clock time executing the epoch
}

// Epochs drives a Scheduler epoch by epoch. Workers bounds partition
// concurrency (values below 2 execute partitions serially, still with
// full epoch semantics — the determinism baseline) and must not change
// once the first parallel segment has run. Sequencers are invoked around
// every parallel segment. Observe, when non-nil, receives per-epoch
// statistics.
//
// Tune, when non-nil, receives the deterministic shape of every executed
// epoch — the measured fields (Workers, Busy, Elapsed) are zeroed so a
// feedback controller hanging off it cannot accidentally couple the
// schedule to wall-clock timing or the worker count and break the
// worker-count invariance contract. The attacker's adaptive align
// controller is the intended consumer.
//
// The first parallel segment lazily starts Workers-1 helper goroutines
// that persist for the lifetime of the Epochs; call Close when done with
// the executor to release them. A closed executor remains usable — it
// falls back to running partitions on the driver goroutine.
type Epochs struct {
	Sched      *Scheduler
	Workers    int
	Sequencers []Sequencer
	Observe    func(EpochStats)
	Tune       func(EpochStats)

	frontier []*Event // scratch, reused across epochs

	// Segment scratch, all reused (see runSegment). items/offs form a CSR
	// layout over seg indices: partition p's events are
	// items[offs[p]:offs[p+1]], in frontier order. order is the dispatch
	// order (largest partition first).
	keys   keyTable
	pids   []int32
	counts []int32
	cursor []int32
	offs   []int32
	items  []int32
	order  []int32
	execs  []Exec
	flush  []*Event

	seg     segState
	jobs    chan struct{}
	helpers int
	closed  bool
}

// segState is the shared state of the segment currently executing on the
// pool. Exactly one segment runs at a time; the WaitGroup joins the
// helpers before the driver touches the results.
type segState struct {
	next    atomic.Int64
	busy    atomic.Int64
	wg      sync.WaitGroup
	now     time.Time
	seg     []*Event
	nparts  int
	metered bool
}

// Close releases the persistent worker goroutines. It is idempotent and
// safe to call on an executor that never went parallel. After Close the
// executor still runs correctly, executing partitions on the caller's
// goroutine.
func (e *Epochs) Close() {
	if e.jobs != nil {
		close(e.jobs)
		e.jobs = nil
		e.helpers = 0
	}
	e.closed = true
}

// ensurePool lazily starts the helper goroutines. The pool is sized once
// from Workers; helpers park on the job channel between segments.
func (e *Epochs) ensurePool() {
	if e.jobs != nil || e.closed || e.Workers < 2 {
		return
	}
	e.helpers = e.Workers - 1
	e.jobs = make(chan struct{}, e.helpers)
	for i := 0; i < e.helpers; i++ {
		go e.helper(e.jobs)
	}
}

// helper is the body of one persistent pool goroutine: wake on a token,
// drain partitions from the current segment, report done, park again.
// The channel is passed by value so Close (which nils the field) cannot
// race with the loop's receive.
func (e *Epochs) helper(jobs chan struct{}) {
	for range jobs {
		e.segWork()
		e.seg.wg.Done()
	}
}

// segWork claims partitions of the current segment (largest first, via the
// shared cursor into order) and executes them. It runs concurrently on the
// driver and every woken helper; all segment inputs are published before
// the wake tokens are sent.
func (e *Epochs) segWork() {
	ss := &e.seg
	metered := ss.metered
	for {
		k := ss.next.Add(1) - 1
		if k >= int64(ss.nparts) {
			return
		}
		p := e.order[k]
		var t0 time.Time
		if metered {
			t0 = time.Now()
		}
		for _, idx := range e.items[e.offs[p]:e.offs[p+1]] {
			ev := ss.seg[idx]
			x := &e.execs[idx]
			x.s, x.now, x.seq = e.Sched, ss.now, ev.seq
			x.buffered = true
			x.deferred = x.deferred[:0]
			ev.KFn(x)
		}
		if metered {
			ss.busy.Add(int64(time.Since(t0)))
		}
	}
}

// RunEpoch executes the next epoch and returns how many events fired
// (zero when the queue is empty).
func (e *Epochs) RunEpoch() int {
	s := e.Sched
	if len(s.pq) == 0 {
		return 0
	}
	frontier, at := s.popFrontier(e.frontier[:0])
	e.frontier = frontier
	s.clock.AdvanceTo(at)

	st := EpochStats{At: at, Width: len(frontier)}
	var epochStart time.Time
	if e.Observe != nil {
		epochStart = time.Now()
	}
	for i := 0; i < len(frontier); {
		ev := frontier[i]
		if ev.KFn == nil || ev.Key == 0 {
			s.fire(ev)
			i++
			continue
		}
		j := i + 1
		for j < len(frontier) && frontier[j].KFn != nil && frontier[j].Key != 0 {
			j++
		}
		e.runSegment(frontier[i:j], &st)
		i = j
	}
	if e.Tune != nil {
		ts := st
		ts.Workers, ts.Busy, ts.Elapsed = 0, 0, 0
		e.Tune(ts)
	}
	if e.Observe != nil {
		st.Elapsed = time.Since(epochStart)
		e.Observe(st)
	}
	// Drop handler references so fired closures are collectable even while
	// the scratch frontier is retained for the next epoch.
	clear(frontier)
	return st.Width
}

// RunUntil runs epochs until the queue is empty or the next epoch is after
// deadline, then advances the clock to deadline (mirroring
// Scheduler.RunUntil). It returns the number of events fired.
func (e *Epochs) RunUntil(deadline time.Time) int {
	n := 0
	for {
		at, ok := e.Sched.NextAt()
		if !ok || at.After(deadline) {
			break
		}
		n += e.RunEpoch()
	}
	e.Sched.clock.AdvanceTo(deadline)
	return n
}

// runSegment executes one maximal run of keyed events: partition by key,
// run partitions concurrently, re-sequence shared logs, then flush the
// handlers' deferred scheduling in frontier order.
func (e *Epochs) runSegment(seg []*Event, st *EpochStats) {
	st.Keyed += len(seg)
	st.Segments++

	// Partition by conflict key in first-appearance order into a CSR
	// layout. The key table and every scratch slice persist across
	// segments, so steady-state partitioning allocates nothing.
	n := len(seg)
	e.pids = growInt32(e.pids, n)
	e.keys.reset(n)
	nparts := 0
	for i, ev := range seg {
		pid, ok := e.keys.lookup(ev.Key, int32(nparts))
		if !ok {
			nparts++
		}
		e.pids[i] = pid
	}
	st.Partitions += nparts

	e.counts = growInt32(e.counts, nparts)
	counts := e.counts[:nparts]
	for i := range counts {
		counts[i] = 0
	}
	for _, pid := range e.pids[:n] {
		counts[pid]++
	}
	e.offs = growInt32(e.offs, nparts+1)
	e.cursor = growInt32(e.cursor, nparts)
	offs, cursor := e.offs[:nparts+1], e.cursor[:nparts]
	off := int32(0)
	for p, c := range counts {
		offs[p] = off
		cursor[p] = off
		off += c
	}
	offs[nparts] = off
	e.items = growInt32(e.items, n)
	for i, pid := range e.pids[:n] {
		e.items[cursor[pid]] = int32(i)
		cursor[pid]++
	}

	// Dispatch order: largest partitions first (classic LPT scheduling).
	// Worker-count invariance holds because cross-partition order is
	// unobservable; the pid tiebreak just keeps the order itself stable.
	e.order = growInt32(e.order, nparts)
	order := e.order[:nparts]
	for p := range order {
		order[p] = int32(p)
	}
	for i := 1; i < nparts; i++ {
		p := order[i]
		j := i
		for j > 0 && (counts[order[j-1]] < counts[p] ||
			(counts[order[j-1]] == counts[p] && order[j-1] > p)) {
			order[j] = order[j-1]
			j--
		}
		order[j] = p
	}

	workers := e.Workers
	if workers > nparts {
		workers = nparts
	}
	if workers < 1 {
		workers = 1
	}
	if workers > st.Workers {
		st.Workers = workers
	}

	if len(e.execs) < n {
		e.execs = append(e.execs, make([]Exec, n-len(e.execs))...)
	}

	for _, sq := range e.Sequencers {
		sq.BeginSegment()
	}
	ss := &e.seg
	ss.now = e.Sched.clock.Now()
	ss.seg = seg
	ss.nparts = nparts
	ss.metered = e.Observe != nil
	ss.next.Store(0)
	ss.busy.Store(0)
	if workers <= 1 || e.closed {
		e.segWork()
	} else {
		e.ensurePool()
		helpers := workers - 1
		if helpers > e.helpers {
			helpers = e.helpers
		}
		ss.wg.Add(helpers)
		for i := 0; i < helpers; i++ {
			e.jobs <- struct{}{}
		}
		e.segWork()
		ss.wg.Wait()
	}
	if ss.metered {
		st.Busy += time.Duration(ss.busy.Load())
	}
	ss.seg = nil
	for _, sq := range e.Sequencers {
		sq.EndSegment()
	}

	// Deterministic flush: deferred events enter the queue in frontier
	// order, reproducing the sequence numbers serial execution assigns.
	// Gathering the whole segment's deferral into one batch lets the
	// scheduler restore the heap in a single pass.
	flush := e.flush[:0]
	for i := range seg {
		x := &e.execs[i]
		flush = append(flush, x.deferred...)
		clear(x.deferred)
		x.deferred = x.deferred[:0]
	}
	e.Sched.pushBatch(flush)
	clear(flush)
	e.flush = flush[:0]
}

// growInt32 extends s to length n, reusing its backing array.
func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n, n+n/2+8)
}

// keyTable is a reusable open-addressing map from conflict key to
// partition id. Slots are invalidated in O(1) between segments by bumping
// a generation counter instead of clearing.
type keyTable struct {
	keys []uint64
	pids []int32
	gens []uint64
	gen  uint64
	mask uint64
}

// reset prepares the table for a segment of up to n distinct keys.
func (t *keyTable) reset(n int) {
	want := 16
	for want < 2*n {
		want <<= 1
	}
	if len(t.keys) < want {
		t.keys = make([]uint64, want)
		t.pids = make([]int32, want)
		t.gens = make([]uint64, want)
		t.mask = uint64(want - 1)
		t.gen = 0
	}
	t.gen++
}

// lookup returns the partition id for key, inserting next (and reporting
// ok=false) when the key is new this segment.
func (t *keyTable) lookup(key uint64, next int32) (pid int32, ok bool) {
	// Fibonacci hashing spreads the low-entropy 1..256 shard keys as well
	// as arbitrary 64-bit keys.
	i := (key * 0x9E3779B97F4A7C15) >> 32 & t.mask
	for {
		if t.gens[i] != t.gen {
			t.gens[i] = t.gen
			t.keys[i] = key
			t.pids[i] = next
			return next, false
		}
		if t.keys[i] == key {
			return t.pids[i], true
		}
		i = (i + 1) & t.mask
	}
}
