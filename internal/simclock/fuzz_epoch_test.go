package simclock

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"tripwire/internal/xrand"
)

// buildFuzzTimeline seeds s with a workload derived entirely from data:
// serial events, keyed events (including exclusive key-0 ones), and
// handlers that re-schedule on their own key — sometimes at their own
// timestamp, the starvation-guard edge — cross-schedule onto other keys,
// or spawn serial follow-ups. Every follow-up decision derives from
// (seed, event seq), the pilot's derivation rule, so the workload is the
// same however the events are executed. Returns how many seed events were
// scheduled.
func buildFuzzTimeline(s *Scheduler, w *toyWorld, data []byte) int {
	const seed = 1234
	var keyed func(key uint64, depth int) func(*Exec)
	keyed = func(key uint64, depth int) func(*Exec) {
		return func(x *Exec) {
			w.record(key, fmt.Sprintf("k%d seq%05d t%s", key, x.Seq(), x.Now().Format("01-02 15:04")))
			if depth >= 3 {
				return
			}
			rng := xrand.New(xrand.Mix(seed, int64(x.Seq()), 5))
			if rng.Float64() < 0.7 {
				// Delay 0 reschedules at the event's own timestamp: the
				// requeue must land in a later epoch at the same time.
				d := time.Duration(rng.Intn(3)) * time.Hour
				x.AtKeyed(x.Now().Add(d), key, "self", keyed(key, depth+1))
			}
			if rng.Float64() < 0.4 {
				nk := uint64(rng.Intn(9)) // 0 = exclusive
				x.AtKeyed(x.Now().Add(time.Duration(1+rng.Intn(5))*time.Hour), nk, "cross", keyed(nk, depth+1))
			}
			if rng.Float64() < 0.2 {
				from := x.Seq()
				x.After(time.Duration(rng.Intn(4))*time.Hour, "serial", func(now time.Time) {
					w.record(0, fmt.Sprintf("serial-from-%05d t%s", from, now.Format("01-02 15:04")))
				})
			}
		}
	}
	n := 0
	for i := 0; i+2 < len(data) && n < 48; i += 3 {
		kind := data[i] % 4
		key := uint64(data[i+1] % 9)
		at := t0.Add(time.Duration(data[i+2]%12) * time.Hour)
		if kind == 0 {
			i := i
			s.At(at, "serial", func(now time.Time) {
				w.record(0, fmt.Sprintf("serial%d t%s", i, now.Format("01-02 15:04")))
			})
		} else {
			s.AtKeyed(at, key, "seed", keyed(key, 0))
		}
		n++
	}
	return n
}

// FuzzEpochEquivalence is the engine's property test: for arbitrary mixes
// of keyed, serial, and self-rescheduling events, epoch execution at every
// worker count produces the same per-key fire order, the same assigned
// sequence numbers, the same fired-event count, and the same final clock
// as the serial Scheduler — and the segment-re-sequenced global log is
// identical across worker counts.
func FuzzEpochEquivalence(f *testing.F) {
	f.Add([]byte{1, 1, 0, 1, 2, 0, 1, 3, 1, 0, 0, 1, 1, 1, 2})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 2, 0, 0, 3, 0, 0}) // exclusive + serial pileup at t0
	f.Add([]byte{1, 1, 5, 1, 1, 5, 1, 1, 5, 1, 1, 5}) // one hot key
	f.Add([]byte{2, 1, 0, 2, 2, 1, 2, 3, 2, 2, 4, 3, 2, 5, 4, 2, 6, 5, 2, 7, 6, 2, 8, 7})
	f.Add([]byte{3, 250, 11, 3, 47, 11, 0, 9, 11, 1, 200, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		end := t0.Add(60 * 24 * time.Hour)
		run := func(workers int) (w *toyWorld, fired int, seq uint64, clk time.Time) {
			s := NewScheduler(New(t0))
			w = &toyWorld{}
			if buildFuzzTimeline(s, w, data) == 0 {
				return nil, 0, 0, time.Time{}
			}
			if workers == 0 {
				fired = s.RunUntil(end)
			} else {
				ex := &Epochs{Sched: s, Workers: workers, Sequencers: []Sequencer{w}}
				fired = ex.RunUntil(end)
				ex.Close()
			}
			return w, fired, s.Seq(), s.Clock().Now()
		}
		serialW, sFired, sSeq, sClk := run(0)
		if serialW == nil {
			t.Skip("input encodes no events")
		}
		var baseGlobal []string
		for _, workers := range []int{1, 2, 4, 8, 16} {
			w, fired, seq, clk := run(workers)
			if fired != sFired || seq != sSeq || !clk.Equal(sClk) {
				t.Fatalf("workers=%d: fired/seq/clock = %d/%d/%v, serial = %d/%d/%v",
					workers, fired, seq, clk, sFired, sSeq, sClk)
			}
			if !reflect.DeepEqual(serialW.perKey, w.perKey) {
				t.Fatalf("workers=%d: per-key logs diverge from serial execution", workers)
			}
			if workers == 1 {
				baseGlobal = w.global
			} else if !reflect.DeepEqual(baseGlobal, w.global) {
				t.Fatalf("workers=%d: re-sequenced global log diverges from workers=1", workers)
			}
		}
	})
}
