package captcha

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{None: "none", Image: "image", Knowledge: "knowledge", Interactive: "interactive"} {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q", int(k), k.String())
		}
	}
}

func TestImageChallengeRoundTrip(t *testing.T) {
	is := NewIssuer("s1")
	rng := rand.New(rand.NewSource(1))
	ch := is.Issue(Image, rng)
	ans := is.Answer(ch)
	if len(ans) != 6 {
		t.Fatalf("image answer %q has length %d", ans, len(ans))
	}
	if !is.Verify(ch, ans) {
		t.Fatal("correct answer rejected")
	}
	if !is.Verify(ch, strings.ToUpper(ans)) {
		t.Fatal("case-insensitive match rejected")
	}
	if is.Verify(ch, "nope") {
		t.Fatal("wrong answer accepted")
	}
}

func TestIssuersAreIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ch := NewIssuer("siteA").Issue(Image, rng)
	ansA := NewIssuer("siteA").Answer(ch)
	ansB := NewIssuer("siteB").Answer(ch)
	if ansA == ansB {
		t.Fatal("different sites produced the same answer for one challenge ID")
	}
}

func TestKnowledgeChallenge(t *testing.T) {
	is := NewIssuer("s2")
	rng := rand.New(rand.NewSource(3))
	ch := is.Issue(Knowledge, rng)
	if ch.Prompt == "" || !strings.HasPrefix(ch.ID, "k") {
		t.Fatalf("bad knowledge challenge: %+v", ch)
	}
	ans := is.Answer(ch)
	if ans == "" || !is.Verify(ch, ans) {
		t.Fatalf("knowledge answer %q rejected", ans)
	}
	if !is.Verify(ch, " "+strings.ToUpper(ans)+" ") {
		t.Fatal("whitespace/case-normalized answer rejected")
	}
}

func TestInteractiveHumanOnly(t *testing.T) {
	is := NewIssuer("s3")
	rng := rand.New(rand.NewSource(4))
	ch := is.Issue(Interactive, rng)
	token := is.Answer(ch)
	if !strings.HasPrefix(token, "itoken-") {
		t.Fatalf("interactive token %q malformed", token)
	}
	if !is.Verify(ch, token) {
		t.Fatal("human-completed token rejected")
	}
	if is.Verify(ch, "") || is.Verify(ch, "guessed") {
		t.Fatal("empty/guessed interactive proof accepted")
	}
	// The solving service cannot handle interactive challenges at all.
	svc := NewService(0, 0, 5)
	if _, ok := svc.SolveImage("not-an-image"); ok {
		t.Fatal("service claimed to solve a non-image")
	}
}

func TestNoneAlwaysVerifies(t *testing.T) {
	is := NewIssuer("s4")
	if !is.Verify(Challenge{Kind: None}, "") {
		t.Fatal("None challenge should verify trivially")
	}
}

func TestRenderImageAndSolve(t *testing.T) {
	is := NewIssuer("s5")
	rng := rand.New(rand.NewSource(6))
	ch := is.Issue(Image, rng)
	img := is.RenderImage(ch)
	if !strings.HasPrefix(img, ImagePrefix) {
		t.Fatalf("image bytes %q lack prefix", img)
	}
	svc := NewService(0, 0, 7)
	ans, ok := svc.SolveImage(img)
	if !ok || !is.Verify(ch, ans) {
		t.Fatalf("perfect service failed: %q %v", ans, ok)
	}
}

func TestServiceErrorRate(t *testing.T) {
	is := NewIssuer("s6")
	rng := rand.New(rand.NewSource(8))
	svc := NewService(0.5, 0, 9)
	wrong := 0
	const n = 400
	for i := 0; i < n; i++ {
		ch := is.Issue(Image, rng)
		ans, ok := svc.SolveImage(is.RenderImage(ch))
		if !ok {
			t.Fatal("image solve refused")
		}
		if !is.Verify(ch, ans) {
			wrong++
		}
	}
	frac := float64(wrong) / n
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("error rate %.2f, want ~0.5", frac)
	}
	solved, failed := svc.Stats()
	if solved+failed != n {
		t.Fatalf("stats %d+%d != %d", solved, failed, n)
	}
}

func TestServiceKnowledge(t *testing.T) {
	svc := NewService(0, 0, 10)
	ans, ok := svc.SolveKnowledge("What color is the sky on a clear day?")
	if !ok || ans != "blue" {
		t.Fatalf("knowledge solve = %q, %v", ans, ok)
	}
	if _, ok := svc.SolveKnowledge("What is the founder's dog's name?"); ok {
		t.Fatal("service claimed to know site-specific trivia")
	}
}

// Property: garbled answers never verify; the error path is really an error.
func TestQuickGarbleAlwaysWrong(t *testing.T) {
	is := NewIssuer("s7")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ch := is.Issue(Image, rng)
		return !is.Verify(ch, garble(is.Answer(ch), rng))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
