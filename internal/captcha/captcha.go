// Package captcha models the bot-detection checks Tripwire's crawler
// encountered on registration forms and the third-party CAPTCHA-solving
// service it used to bypass them (paper §4.3.2, §7.2). Solving services
// have non-trivial error rates; modern interactive challenges are not
// solvable by the crawler at all.
package captcha

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"

	"strings"
	"sync"
	"tripwire/internal/xrand"
)

// Kind is the type of bot check on a form.
type Kind int

const (
	// None means no bot check.
	None Kind = iota
	// Image is a distorted-text image; solving services handle these with
	// an error rate.
	Image
	// Knowledge is a free-form common-knowledge question; services solve a
	// subset.
	Knowledge
	// Interactive is a modern challenge (reCAPTCHA, KeyCAPTCHA) the
	// crawler has no ability to handle.
	Interactive
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Image:
		return "image"
	case Knowledge:
		return "knowledge"
	case Interactive:
		return "interactive"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Challenge is one CAPTCHA instance embedded in a registration form.
type Challenge struct {
	ID     string
	Kind   Kind
	Prompt string // knowledge question text, or alt text for images
}

// Issuer mints challenges whose answers are an HMAC of the challenge ID
// under the issuer's secret: the server can recompute the expected answer
// without storing per-challenge state, like a stateless CAPTCHA cookie.
type Issuer struct {
	secret []byte
}

// NewIssuer returns an Issuer with the given site secret.
func NewIssuer(secret string) *Issuer {
	return &Issuer{secret: []byte(secret)}
}

// knowledgeQA is the pool of common-knowledge questions sites draw from.
var knowledgeQA = []struct{ q, a string }{
	{"What color is the sky on a clear day?", "blue"},
	{"How many days are in a week?", "7"},
	{"What is two plus three?", "5"},
	{"Type the word 'human' to prove you are one", "human"},
	{"What is the opposite of day?", "night"},
	{"How many legs does a cat have?", "4"},
	{"What planet do we live on?", "earth"},
	{"What is ten minus four?", "6"},
}

// Issue mints a challenge of the given kind. rng supplies the instance
// randomness (challenge ID, question selection).
func (is *Issuer) Issue(kind Kind, rng *rand.Rand) Challenge {
	id := fmt.Sprintf("c%08x%08x", rng.Uint32(), rng.Uint32())
	ch := Challenge{ID: id, Kind: kind}
	switch kind {
	case Image:
		ch.Prompt = "Enter the characters shown in the image"
	case Knowledge:
		qa := knowledgeQA[rng.Intn(len(knowledgeQA))]
		// Encode the question index into the ID so Answer can recompute.
		ch.ID = fmt.Sprintf("k%d-%s", indexOf(qa.q), id)
		ch.Prompt = qa.q
	case Interactive:
		ch.Prompt = "Complete the interactive verification"
	}
	return ch
}

func indexOf(q string) int {
	for i, qa := range knowledgeQA {
		if qa.q == q {
			return i
		}
	}
	return 0
}

// Answer returns the expected answer for a challenge minted by this issuer.
// For Interactive challenges the "answer" is the proof token the widget
// would mint after a human completes it; automated solvers cannot produce
// it, humans (with a real browser session) can.
func (is *Issuer) Answer(ch Challenge) string {
	switch ch.Kind {
	case Image:
		mac := hmac.New(sha256.New, is.secret)
		mac.Write([]byte(ch.ID))
		return hex.EncodeToString(mac.Sum(nil))[:6]
	case Knowledge:
		var idx int
		if n, _ := fmt.Sscanf(ch.ID, "k%d-", &idx); n == 1 && idx >= 0 && idx < len(knowledgeQA) {
			return knowledgeQA[idx].a
		}
		return ""
	case Interactive:
		mac := hmac.New(sha256.New, is.secret)
		mac.Write([]byte("interactive:" + ch.ID))
		return "itoken-" + hex.EncodeToString(mac.Sum(nil))[:16]
	default:
		return ""
	}
}

// Verify checks a submitted answer.
func (is *Issuer) Verify(ch Challenge, answer string) bool {
	if ch.Kind == None {
		return true
	}
	want := is.Answer(ch)
	return want != "" && strings.EqualFold(strings.TrimSpace(answer), want)
}

// ImagePrefix marks synthetic CAPTCHA image bytes. A real distorted-text
// image renders its answer as pixels; the synthetic stand-in renders it as
// "PNGDATA:<answer>". Solving services (and only they, plus humans) read it
// back out — the crawler never inspects image content itself.
const ImagePrefix = "PNGDATA:"

// RenderImage produces the synthetic image bytes for a challenge.
func (is *Issuer) RenderImage(ch Challenge) string {
	return ImagePrefix + is.Answer(ch)
}

// Service is a third-party CAPTCHA-solving service. It is handed what a
// human solver would see — the image content, or the question text — and
// returns an answer. Real services charge per solve and return wrong
// answers at a measurable rate (Motoyama et al., cited in the paper);
// Service reproduces the error rates.
type Service struct {
	mu sync.Mutex
	// ImageErrorRate and KnowledgeErrorRate are the probabilities of a
	// wrong answer for the respective kinds.
	ImageErrorRate     float64
	KnowledgeErrorRate float64
	rng                *rand.Rand

	stats *serviceStats
}

// serviceStats is the solve/fail tally, shared between a Service and every
// stream Derive mints from it so aggregate accounting survives fan-out.
type serviceStats struct {
	mu     sync.Mutex
	solved int
	failed int
}

// NewService returns a solving service with the given error rates.
func NewService(imageErr, knowledgeErr float64, seed int64) *Service {
	return &Service{
		ImageErrorRate:     imageErr,
		KnowledgeErrorRate: knowledgeErr,
		rng:                xrand.New(seed),
		stats:              &serviceStats{},
	}
}

// Derive returns an independent solver stream with the same error rates but
// its own RNG seeded by seed. Derived streams share the parent's Stats
// counters. The parallel crawl engine gives each site its own stream so
// solver outcomes depend only on (seed, site) — never on the order in which
// concurrent attempts reach the service.
func (s *Service) Derive(seed int64) *Service {
	return &Service{
		ImageErrorRate:     s.ImageErrorRate,
		KnowledgeErrorRate: s.KnowledgeErrorRate,
		rng:                xrand.New(seed),
		stats:              s.stats,
	}
}

// SolveImage reads the text out of CAPTCHA image bytes, with the service's
// OCR error rate. It returns false when the bytes are not an image the
// service understands.
func (s *Service) SolveImage(imageData string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !strings.HasPrefix(imageData, ImagePrefix) {
		s.stats.add(0, 1)
		return "", false
	}
	answer := imageData[len(ImagePrefix):]
	if s.rng.Float64() < s.ImageErrorRate {
		s.stats.add(0, 1)
		return garble(answer, s.rng), true
	}
	s.stats.add(1, 0)
	return answer, true
}

// SolveKnowledge answers a free-form common-knowledge question. Questions
// outside the solver's knowledge, and its error rate, yield wrong answers;
// a fraction of questions it declines entirely.
func (s *Service) SolveKnowledge(question string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := strings.ToLower(strings.TrimSpace(question))
	for _, qa := range knowledgeQA {
		if strings.ToLower(qa.q) == q {
			if s.rng.Float64() < s.KnowledgeErrorRate {
				s.stats.add(0, 1)
				return "unknown", true
			}
			s.stats.add(1, 0)
			return qa.a, true
		}
	}
	s.stats.add(0, 1)
	return "", false
}

func (st *serviceStats) add(solved, failed int) {
	st.mu.Lock()
	st.solved += solved
	st.failed += failed
	st.mu.Unlock()
}

// Stats returns (correct solves, failures/wrong answers) so far, aggregated
// across this service and every stream derived from it.
func (s *Service) Stats() (solved, failed int) {
	s.stats.mu.Lock()
	defer s.stats.mu.Unlock()
	return s.stats.solved, s.stats.failed
}

// garble corrupts an answer the way OCR-based solvers do: one character
// substituted.
func garble(ans string, rng *rand.Rand) string {
	if ans == "" {
		return "x"
	}
	b := []byte(ans)
	i := rng.Intn(len(b))
	b[i] = "0123456789abcdef"[rng.Intn(16)]
	if string(b) == ans { // ensure it is actually wrong
		b[i] = '!'
	}
	return string(b)
}
