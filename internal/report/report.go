// Package report renders the paper's tables and figures from a completed
// pilot run: Table 1 (account creation estimates), Table 2 (compromised
// sites), Table 3 (per-account login activity), Table 4 (site eligibility),
// Figure 1 (crawler termination codes), Figure 2 (registration/login
// timeline), Figure 3 (registration funnel), and the §6.4 attacker-behaviour
// statistics.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tripwire/internal/core"
	"tripwire/internal/crawler"
	"tripwire/internal/identity"
	"tripwire/internal/sim"
)

// Table1Row aggregates one account-status bin.
type Table1Row struct {
	Status     core.AccountStatus
	AttHard    int
	AttEasy    int
	AttSites   int
	Success    float64 // measured validity rate
	ValidHard  int
	ValidEasy  int
	ValidSites int
}

// Table1 computes the account-creation estimates. Unlike the paper, which
// sampled 50 accounts per bin and extrapolated, the simulation probes every
// account's login endpoint, so "valid" counts are exact.
func Table1(p *sim.Pilot) []Table1Row {
	vals := p.ValidateAll()
	statuses := []core.AccountStatus{
		core.StatusEmailVerified, core.StatusEmailReceived,
		core.StatusOKSubmission, core.StatusBadHeuristics, core.StatusManual,
	}
	rows := make(map[core.AccountStatus]*Table1Row, len(statuses))
	attSites := make(map[core.AccountStatus]map[string]bool)
	validSites := make(map[core.AccountStatus]map[string]bool)
	for _, s := range statuses {
		rows[s] = &Table1Row{Status: s}
		attSites[s] = make(map[string]bool)
		validSites[s] = make(map[string]bool)
	}
	for _, v := range vals {
		reg := v.Registration
		st := reg.Status
		row, ok := rows[st]
		if !ok {
			continue
		}
		if reg.Identity.Class == identity.Hard {
			row.AttHard++
		} else {
			row.AttEasy++
		}
		attSites[st][reg.Domain] = true
		if v.Valid {
			if reg.Identity.Class == identity.Hard {
				row.ValidHard++
			} else {
				row.ValidEasy++
			}
			validSites[st][reg.Domain] = true
		}
	}
	out := make([]Table1Row, 0, len(statuses))
	for _, s := range statuses {
		row := rows[s]
		row.AttSites = len(attSites[s])
		row.ValidSites = len(validSites[s])
		if att := row.AttHard + row.AttEasy; att > 0 {
			row.Success = float64(row.ValidHard+row.ValidEasy) / float64(att)
		}
		out = append(out, *row)
	}
	return out
}

// RenderTable1 formats Table1 like the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %8s %8s %8s %8s %9s %8s %8s %8s %8s\n",
		"Account Status", "Hard", "Easy", "Total", "Sites", "Success", "VHard", "VEasy", "VTotal", "VSites")
	totA, totH, totE, totVH, totVE := 0, 0, 0, 0, 0
	siteSum, vSiteSum := 0, 0
	for _, r := range rows {
		att := r.AttHard + r.AttEasy
		valid := r.ValidHard + r.ValidEasy
		fmt.Fprintf(&b, "%-30s %8d %8d %8d %8d %8.0f%% %8d %8d %8d %8d\n",
			r.Status, r.AttHard, r.AttEasy, att, r.AttSites, r.Success*100,
			r.ValidHard, r.ValidEasy, valid, r.ValidSites)
		totA += att
		totH += r.AttHard
		totE += r.AttEasy
		totVH += r.ValidHard
		totVE += r.ValidEasy
		siteSum += r.AttSites
		vSiteSum += r.ValidSites
	}
	fmt.Fprintf(&b, "%-30s %8d %8d %8d %8d %9s %8d %8d %8d %8d\n",
		"Total", totH, totE, totA, siteSum, "", totVH, totVE, totVH+totVE, vSiteSum)
	return b.String()
}

// Table2Row summarizes one detected compromise.
type Table2Row struct {
	Label        string // anonymized site letter, A..S style
	Accessed     int
	Registered   int
	HardAccessed string // "Y", "N", or "-" when no hard account existed
	Category     string
	RankRounded  int // rounded up to the nearest 500, as the paper reports
}

// Table2 summarizes detected compromises in first-login order.
func Table2(p *sim.Pilot) []Table2Row {
	dets := p.Monitor.Detections()
	rows := make([]Table2Row, 0, len(dets))
	for i, d := range dets {
		hard := "N"
		switch p.Monitor.Classify(d) {
		case core.BreachPlaintext:
			hard = "Y"
		case core.BreachIndeterminate:
			hard = "-"
		}
		rows = append(rows, Table2Row{
			Label:        siteLabel(i),
			Accessed:     d.AccountsAccessed,
			Registered:   d.AccountsRegistered,
			HardAccessed: hard,
			Category:     d.Category,
			RankRounded:  ((d.Rank + 499) / 500) * 500,
		})
	}
	return rows
}

// RenderTable2 formats Table 2.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-10s %-6s %-15s %-10s\n", "Site", "Accounts", "Hard", "Category", "Rank")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %d of %-6d %-6s %-15s %-10d\n",
			r.Label, r.Accessed, r.Registered, r.HardAccessed, r.Category, r.RankRounded)
	}
	return b.String()
}

// siteLabel produces A, B, ..., Z, AA, AB ... labels.
func siteLabel(i int) string {
	label := ""
	for {
		label = string(rune('A'+i%26)) + label
		i = i/26 - 1
		if i < 0 {
			return label
		}
	}
}

// Table3Row is one accessed account's login activity.
type Table3Row struct {
	Alias        string // e.g. a1: site letter + per-site index
	Type         identity.PasswordClass
	Logins       int
	UntilDays    int // registration -> first access
	SinceDays    int // last access -> end of study
	Frozen       bool
	AccessedDays int // first access -> last access
}

// Table3 lists per-account login activity for every tripped account.
func Table3(p *sim.Pilot) []Table3Row {
	var rows []Table3Row
	end := p.Cfg.End
	for i, d := range p.Monitor.Detections() {
		accounts := make([]string, 0, len(d.Logins))
		for email := range d.Logins {
			accounts = append(accounts, email)
		}
		sort.Strings(accounts)
		// Order accounts by first access within the site.
		sort.Slice(accounts, func(a, b int) bool {
			return d.Logins[accounts[a]][0].Time.Before(d.Logins[accounts[b]][0].Time)
		})
		for j, email := range accounts {
			evs := d.Logins[email]
			reg, ok := p.Ledger.Lookup(email)
			if !ok {
				continue
			}
			first, last := evs[0].Time, evs[0].Time
			for _, ev := range evs {
				if ev.Time.Before(first) {
					first = ev.Time
				}
				if ev.Time.After(last) {
					last = ev.Time
				}
			}
			rows = append(rows, Table3Row{
				Alias:        fmt.Sprintf("%s%d", strings.ToLower(siteLabel(i)), j+1),
				Type:         reg.Identity.Class,
				Logins:       len(evs),
				UntilDays:    days(reg.When, first),
				SinceDays:    days(last, end),
				Frozen:       p.Provider.FrozenOrDeactivated(email),
				AccessedDays: days(first, last),
			})
		}
	}
	return rows
}

// RenderTable3 formats Table 3.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-5s %8s %7s %7s %7s %9s\n", "Acct", "Type", "#Logins", "Until", "Since", "Frozen", "DaysAcc")
	for _, r := range rows {
		frozen := "N"
		if r.Frozen {
			frozen = "Y"
		}
		fmt.Fprintf(&b, "%-6s %-5s %8d %7d %7d %7s %9d\n",
			r.Alias, r.Type, r.Logins, r.UntilDays, r.SinceDays, frozen, r.AccessedDays)
	}
	return b.String()
}

func days(a, b time.Time) int {
	d := int(b.Sub(a).Hours() / 24)
	if d < 0 {
		return 0
	}
	return d
}

// Fig1 counts crawler termination codes over all automated attempts.
func Fig1(p *sim.Pilot) map[crawler.Code]int {
	out := make(map[crawler.Code]int)
	for _, a := range p.Attempts {
		if !a.Manual {
			out[a.Code]++
		}
	}
	return out
}

// RenderFig1 formats the termination-code distribution.
func RenderFig1(counts map[crawler.Code]int) string {
	codes := []crawler.Code{
		crawler.CodeNoRegistration, crawler.CodeFieldsMissing,
		crawler.CodeSubmissionFailed, crawler.CodeOKSubmission,
		crawler.CodeSystemError,
	}
	total := 0
	for _, c := range codes {
		total += counts[c]
	}
	var b strings.Builder
	b.WriteString("Crawler termination codes (Figure 1 outcomes)\n")
	for _, c := range codes {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(counts[c]) / float64(total)
		}
		fmt.Fprintf(&b, "  %-30s %7d  %5.1f%%  %s\n", c, counts[c], pct, bar(pct))
	}
	fmt.Fprintf(&b, "  %-30s %7d\n", "Total attempts", total)
	return b.String()
}

func bar(pct float64) string {
	n := int(pct / 2)
	return strings.Repeat("#", n)
}
