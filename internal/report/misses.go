package report

import (
	"fmt"
	"sort"
	"strings"

	"tripwire/internal/captcha"
	"tripwire/internal/core"
	"tripwire/internal/sim"
	"tripwire/internal/webgen"
)

// MissReason classifies why a breached site produced no Tripwire detection,
// following the paper's §6.2 taxonomy of 50 known breaches it did not catch:
// 22 missed for scale/scope, 14 for technical limitations, 6 inherently out
// of scope (plus timing effects the paper's window imposed).
type MissReason int

const (
	// MissScaleScope: the site was outside the crawl (rank beyond the
	// batches) — §6.2.1's "ranked too low according to Alexa".
	MissScaleScope MissReason = iota
	// MissLanguage: a non-English site the English-only crawler cannot
	// process — §6.2.1's seven non-English breaches.
	MissLanguage
	// MissTechnical: within scope but the prototype failed — multi-page
	// forms, bot checks, JS-only forms, unfindable registration pages,
	// unrecognizable fields (§6.2.2).
	MissTechnical
	// MissInherent: no online self-registration, payment required, email
	// length caps (§6.2.3) — out of scope for any Tripwire.
	MissInherent
	// MissNoSignal: Tripwire held an account, but no login signal arrived
	// in the window — hashed storage protecting the only (hard) account,
	// cracking/stuffing landing after the study end, or the attacker never
	// testing that credential.
	MissNoSignal
)

// String names the reason with §6.2's vocabulary.
func (r MissReason) String() string {
	switch r {
	case MissScaleScope:
		return "missed due to scale/scope"
	case MissLanguage:
		return "missed due to language"
	case MissTechnical:
		return "missed due to technical challenge"
	case MissInherent:
		return "missed due to inherent limitations"
	case MissNoSignal:
		return "registered but no reuse signal in window"
	default:
		return fmt.Sprintf("MissReason(%d)", int(r))
	}
}

// Miss is one missed breach with its classification.
type Miss struct {
	Domain string
	Rank   int
	Reason MissReason
	Detail string
}

// MissAnalysis classifies every breach the pilot failed to detect.
func MissAnalysis(p *sim.Pilot) []Miss {
	maxRank := 0
	for _, b := range p.Cfg.Batches {
		if b.ToRank > maxRank {
			maxRank = b.ToRank
		}
	}
	var out []Miss
	for domain := range p.Campaign.Breaches() {
		if _, detected := p.Monitor.Detection(domain); detected {
			continue
		}
		site, ok := p.Universe.Site(domain)
		if !ok {
			continue
		}
		out = append(out, classifyMiss(p, site, maxRank))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

func classifyMiss(p *sim.Pilot, site *webgen.Site, maxRank int) Miss {
	m := Miss{Domain: site.Domain, Rank: site.Rank}
	regs := p.Ledger.SiteRegistrations(site.Domain)
	switch {
	case len(regs) > 0:
		m.Reason = MissNoSignal
		m.Detail = noSignalDetail(p, site, regs)
	case site.Rank > maxRank:
		m.Reason = MissScaleScope
		m.Detail = fmt.Sprintf("rank %d beyond crawled top-%d", site.Rank, maxRank)
	case site.Language != webgen.LangEnglish:
		m.Reason = MissLanguage
		m.Detail = string(site.Language) + "-language site"
	case !site.HasRegistration:
		m.Reason = MissInherent
		m.Detail = "no online registration"
	case site.RequiresPayment:
		m.Reason = MissInherent
		m.Detail = "registration requires payment"
	case site.ExternalAuthOnly:
		m.Reason = MissInherent
		m.Detail = "external-auth-only registration"
	case site.MaxEmailLen > 0:
		m.Reason = MissInherent
		m.Detail = fmt.Sprintf("email address capped at %d characters", site.MaxEmailLen)
	case site.LoadFailure:
		m.Reason = MissTechnical
		m.Detail = "site failed to load"
	case site.MultiStage:
		m.Reason = MissTechnical
		m.Detail = "multi-page registration form"
	case site.Captcha != captcha.None:
		m.Reason = MissTechnical
		m.Detail = site.Captcha.String() + " bot check"
	case site.JSForm:
		m.Reason = MissTechnical
		m.Detail = "script-assembled registration form"
	case site.ObscureRegLink:
		m.Reason = MissTechnical
		m.Detail = "registration page not discoverable"
	default:
		m.Reason = MissTechnical
		m.Detail = "registration attempt failed"
	}
	return m
}

func noSignalDetail(p *sim.Pilot, site *webgen.Site, regs []*core.Registration) string {
	hasEasyValid := false
	st := p.Universe.Store(site.Domain)
	for _, reg := range regs {
		if reg.Identity.Class.String() != "easy" {
			continue
		}
		if st.CheckPassword(reg.Identity.Username, reg.Identity.Password) {
			hasEasyValid = true
		}
	}
	if !site.Storage.HardRecoverable() && !hasEasyValid {
		return "hashed storage and no crackable (easy) account at the site"
	}
	return "credentials not tested against the provider within the window"
}

// RenderMisses formats the §6.2 taxonomy.
func RenderMisses(misses []Miss) string {
	var b strings.Builder
	b.WriteString("Undetected compromises (paper §6.2)\n")
	if len(misses) == 0 {
		b.WriteString("  every breach in the window was detected\n")
		return b.String()
	}
	counts := make(map[MissReason]int)
	for _, m := range misses {
		counts[m.Reason]++
	}
	order := []MissReason{MissScaleScope, MissLanguage, MissTechnical, MissInherent, MissNoSignal}
	for _, r := range order {
		if counts[r] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-45s %d\n", r.String()+":", counts[r])
	}
	fmt.Fprintf(&b, "  %-45s %d\n", "total breaches missed:", len(misses))
	return b.String()
}
