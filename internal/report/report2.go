package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tripwire/internal/crawler"
	"tripwire/internal/sim"
	"tripwire/internal/webgen"
)

// Table4Row is one 100-site eligibility census window.
type Table4Row struct {
	StartRank      int
	LoadFailure    float64
	NotEnglish     float64
	NoRegistration float64
	Ineligible     float64 // payment, SSO-only, email caps
	Rest           float64
}

// Table4 censuses 100-site windows starting at the given ranks,
// classifying each site into the paper's mutually exclusive buckets.
func Table4(p *sim.Pilot, startRanks []int) []Table4Row {
	var rows []Table4Row
	for _, start := range startRanks {
		row := Table4Row{StartRank: start}
		n := 0
		for rank := start; rank < start+100; rank++ {
			site, ok := p.Universe.SiteByRank(rank)
			if !ok {
				break
			}
			n++
			switch {
			case site.LoadFailure:
				row.LoadFailure++
			case site.Language != webgen.LangEnglish:
				row.NotEnglish++
			case !site.HasRegistration:
				row.NoRegistration++
			case site.ExternalAuthOnly || site.RequiresPayment || site.MaxEmailLen > 0:
				row.Ineligible++
			default:
				row.Rest++
			}
		}
		if n == 0 {
			continue
		}
		f := 100 / float64(n)
		row.LoadFailure *= f
		row.NotEnglish *= f
		row.NoRegistration *= f
		row.Ineligible *= f
		row.Rest *= f
		rows = append(rows, row)
	}
	return rows
}

// RenderTable4 formats the eligibility census.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %12s %15s %12s %8s\n",
		"StartRank", "LoadFail", "NotEnglish", "NoRegistration", "Ineligible", "Rest")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %9.0f%% %11.0f%% %14.0f%% %11.0f%% %7.0f%%\n",
			r.StartRank, r.LoadFailure, r.NotEnglish, r.NoRegistration, r.Ineligible, r.Rest)
	}
	return b.String()
}

// Funnel is Figure 3: the registration funnel from all sites submitted to
// estimated valid accounts.
type Funnel struct {
	TotalSites    int
	EligibleSites int // ground truth
	// Crawler outcomes among ground-truth eligible sites (fractions).
	NoRegFound     float64 // form/link misidentification + multistage
	SystemErrors   float64
	FailedFills    float64 // unavailable info, failed captchas, bad fields
	EstimatedOK    float64 // crawler believed success
	SuccessOnElig  float64 // actually-valid site fraction among eligible
	IneligibleFrac float64 // of all sites
}

// Fig3 computes the funnel. Outcomes are taken per site from the first
// automated attempt, mirroring how the paper accounts one crawl per site.
func Fig3(p *sim.Pilot) Funnel {
	f := Funnel{}
	bestBySite := make(map[string]crawler.Code)
	for _, a := range p.Attempts {
		if a.Manual {
			continue
		}
		if _, seen := bestBySite[a.Domain]; !seen {
			bestBySite[a.Domain] = a.Code
		}
	}
	f.TotalSites = len(bestBySite)
	if f.TotalSites == 0 {
		return f
	}
	var elig, inelig int
	var noReg, sysErr, failedFill, okSub int
	for domain, code := range bestBySite {
		site, ok := p.Universe.Site(domain)
		if !ok {
			continue
		}
		if !site.Eligible() {
			inelig++
			continue
		}
		elig++
		switch code {
		case crawler.CodeNoRegistration:
			noReg++
		case crawler.CodeSystemError:
			sysErr++
		case crawler.CodeFieldsMissing, crawler.CodeSubmissionFailed:
			failedFill++
		case crawler.CodeOKSubmission:
			okSub++
		}
	}
	f.EligibleSites = elig
	f.IneligibleFrac = float64(inelig) / float64(f.TotalSites)
	if elig > 0 {
		f.NoRegFound = float64(noReg) / float64(elig)
		f.SystemErrors = float64(sysErr) / float64(elig)
		f.FailedFills = float64(failedFill) / float64(elig)
		f.EstimatedOK = float64(okSub) / float64(elig)
	}
	// True success: eligible sites where at least one automated account is
	// actually valid.
	validSites := make(map[string]bool)
	for _, v := range p.ValidateAll() {
		if v.Valid && !v.Registration.Manual {
			validSites[v.Registration.Domain] = true
		}
	}
	okElig := 0
	for domain := range validSites {
		if site, ok := p.Universe.Site(domain); ok && site.Eligible() {
			okElig++
		}
	}
	if elig > 0 {
		f.SuccessOnElig = float64(okElig) / float64(elig)
	}
	return f
}

func codeRank(c crawler.Code) int {
	switch c {
	case crawler.CodeOKSubmission:
		return 4
	case crawler.CodeSubmissionFailed:
		return 3
	case crawler.CodeFieldsMissing:
		return 2
	case crawler.CodeNoRegistration:
		return 1
	default:
		return 0
	}
}

// RenderFig3 formats the funnel.
func RenderFig3(f Funnel) string {
	var b strings.Builder
	b.WriteString("Registration funnel (Figure 3)\n")
	fmt.Fprintf(&b, "  All sites submitted:          %d\n", f.TotalSites)
	fmt.Fprintf(&b, "  Ineligible (ground truth):    %.1f%%\n", f.IneligibleFrac*100)
	fmt.Fprintf(&b, "  Eligible:                     %.1f%% (%d sites)\n", (1-f.IneligibleFrac)*100, f.EligibleSites)
	b.WriteString("  Of eligible sites, crawler outcome:\n")
	fmt.Fprintf(&b, "    No registration found:      %.1f%%\n", f.NoRegFound*100)
	fmt.Fprintf(&b, "    System errors:              %.1f%%\n", f.SystemErrors*100)
	fmt.Fprintf(&b, "    Fill/submission failures:   %.1f%%\n", f.FailedFills*100)
	fmt.Fprintf(&b, "    System-estimated success:   %.1f%%\n", f.EstimatedOK*100)
	fmt.Fprintf(&b, "  Actual success on eligible:   %.1f%%\n", f.SuccessOnElig*100)
	return b.String()
}

// Fig2 renders the registration/login timeline per compromised site as an
// ASCII approximation of the paper's Figure 2: one row per site, columns
// are months, 'R' marks registrations, '*' marks login activity, and the
// right margin shows total logins.
func Fig2(p *sim.Pilot) string {
	dets := p.Monitor.Detections()
	if len(dets) == 0 {
		return "no compromises detected\n"
	}
	start := monthFloor(p.Cfg.Start)
	end := monthFloor(p.Cfg.End).AddDate(0, 1, 0)
	months := monthsBetween(start, end)

	var b strings.Builder
	b.WriteString("Login activity timeline (Figure 2); columns are months ")
	fmt.Fprintf(&b, "%s .. %s\n", start.Format("2006-01"), end.AddDate(0, -1, 0).Format("2006-01"))
	if gaps := lossWindows(p); len(gaps) > 0 {
		row := make([]byte, months)
		for j := range row {
			row[j] = ' '
		}
		for _, g := range gaps {
			for t := monthFloor(g[0]); t.Before(g[1]); t = t.AddDate(0, 1, 0) {
				if idx := monthIndex(start, t); idx >= 0 && idx < months {
					row[idx] = 'G'
				}
			}
		}
		fmt.Fprintf(&b, "gap %s (login data irrecoverably lost to provider retention)\n", string(row))
	}
	for i, d := range dets {
		row := make([]byte, months)
		for j := range row {
			row[j] = '.'
		}
		for _, reg := range p.Ledger.SiteRegistrations(d.Domain) {
			if idx := monthIndex(start, reg.When); idx >= 0 && idx < months {
				row[idx] = 'R'
			}
		}
		total := 0
		for _, evs := range d.Logins {
			for _, ev := range evs {
				total++
				if idx := monthIndex(start, ev.Time); idx >= 0 && idx < months {
					if row[idx] == 'R' {
						row[idx] = 'B' // both in the same month
					} else {
						row[idx] = '*'
					}
				}
			}
		}
		fmt.Fprintf(&b, "%-3s %s (%d)\n", siteLabel(i), string(row), total)
	}
	b.WriteString("R=registration  *=account logins  B=both  (.)=quiet\n")
	return b.String()
}

// lossWindows computes the periods whose login events could never be
// observed: between consecutive provider dumps, anything older than the
// retention limit at the next dump is purged before Tripwire sees it. The
// paper's Spring-2015 gap (March 20 – June 1, 2015) arose exactly this way.
func lossWindows(p *sim.Pilot) [][2]time.Time {
	var out [][2]time.Time
	dumps := p.Cfg.DumpDates
	for i := 1; i < len(dumps); i++ {
		lostUntil := dumps[i].Add(-p.Cfg.Retention)
		if lostUntil.After(dumps[i-1]) {
			out = append(out, [2]time.Time{dumps[i-1], lostUntil})
		}
	}
	return out
}

func monthFloor(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
}

func monthsBetween(a, b time.Time) int {
	return (b.Year()-a.Year())*12 + int(b.Month()) - int(a.Month())
}

func monthIndex(start time.Time, t time.Time) int {
	return monthsBetween(start, monthFloor(t))
}

// AttackerStats aggregates §6.4's attacker-behaviour measurements.
type AttackerStats struct {
	TotalLogins     int
	DistinctIPs     int
	ReusedIPs       int // IPs appearing more than once
	MaxIPUses       int
	Countries       int
	TopCountries    []CountryCount
	ResidentialPct  float64
	IMAPPct         float64
	BurstyAccounts  int // accounts with >=5 logins inside any 10-minute window
	AccountsTripped int
}

// CountryCount pairs a country code with its distinct-IP count.
type CountryCount struct {
	Code string
	IPs  int
}

// Sec64 computes attacker-behaviour statistics from attributed logins.
func Sec64(p *sim.Pilot) AttackerStats {
	st := AttackerStats{}
	ipUses := make(map[string]int)
	ipCountry := make(map[string]string)
	ipResidential := make(map[string]bool)
	perAccount := make(map[string][]time.Time)
	imap := 0
	for _, al := range p.Monitor.AttributedLogins() {
		ev := al.Event
		st.TotalLogins++
		key := ev.IP.String()
		ipUses[key]++
		if _, seen := ipCountry[key]; !seen {
			if c, ok := p.Space.Lookup(ev.IP); ok {
				ipCountry[key] = c.Code
			}
			ipResidential[key] = !p.Space.IsDatacenter(ev.IP)
		}
		if ev.Method == "IMAP" {
			imap++
		}
		perAccount[ev.Account] = append(perAccount[ev.Account], ev.Time)
	}
	st.DistinctIPs = len(ipUses)
	st.AccountsTripped = len(perAccount)
	countries := make(map[string]int)
	residential := 0
	for ip, uses := range ipUses {
		if uses > 1 {
			st.ReusedIPs++
		}
		if uses > st.MaxIPUses {
			st.MaxIPUses = uses
		}
		countries[ipCountry[ip]]++
		if ipResidential[ip] {
			residential++
		}
	}
	st.Countries = len(countries)
	for code, n := range countries {
		st.TopCountries = append(st.TopCountries, CountryCount{code, n})
	}
	sort.Slice(st.TopCountries, func(i, j int) bool {
		if st.TopCountries[i].IPs != st.TopCountries[j].IPs {
			return st.TopCountries[i].IPs > st.TopCountries[j].IPs
		}
		return st.TopCountries[i].Code < st.TopCountries[j].Code
	})
	if len(st.TopCountries) > 6 {
		st.TopCountries = st.TopCountries[:6]
	}
	if st.DistinctIPs > 0 {
		st.ResidentialPct = 100 * float64(residential) / float64(st.DistinctIPs)
	}
	if st.TotalLogins > 0 {
		st.IMAPPct = 100 * float64(imap) / float64(st.TotalLogins)
	}
	for _, times := range perAccount {
		sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
		for i := range times {
			j := i
			for j+1 < len(times) && times[j+1].Sub(times[i]) <= 10*time.Minute {
				j++
			}
			if j-i+1 >= 5 {
				st.BurstyAccounts++
				break
			}
		}
	}
	return st
}

// RenderSec64 formats the attacker-behaviour statistics.
func RenderSec64(st AttackerStats) string {
	var b strings.Builder
	b.WriteString("Attacker behaviour (paper §6.4)\n")
	fmt.Fprintf(&b, "  Accounts tripped:        %d\n", st.AccountsTripped)
	fmt.Fprintf(&b, "  Total logins:            %d\n", st.TotalLogins)
	fmt.Fprintf(&b, "  Distinct IPs:            %d (%d reused, max %d uses)\n", st.DistinctIPs, st.ReusedIPs, st.MaxIPUses)
	fmt.Fprintf(&b, "  Countries:               %d\n", st.Countries)
	b.WriteString("  Top countries by IPs:    ")
	for i, cc := range st.TopCountries {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s(%d)", cc.Code, cc.IPs)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  Residential IPs:         %.0f%%\n", st.ResidentialPct)
	fmt.Fprintf(&b, "  IMAP share of logins:    %.0f%%\n", st.IMAPPct)
	fmt.Fprintf(&b, "  Bursty accounts:         %d\n", st.BurstyAccounts)
	return b.String()
}
