package report

import (
	"strings"
	"testing"
)

func TestMissAnalysisCoversAllMissedBreaches(t *testing.T) {
	p := pilot(t)
	misses := MissAnalysis(p)
	breaches := p.Campaign.Breaches()
	detected := 0
	for domain := range breaches {
		if _, ok := p.Monitor.Detection(domain); ok {
			detected++
		}
	}
	if len(misses) != len(breaches)-detected {
		t.Fatalf("analysis has %d misses; %d breaches, %d detected", len(misses), len(breaches), detected)
	}
	for _, m := range misses {
		if _, ok := p.Monitor.Detection(m.Domain); ok {
			t.Fatalf("detected site %s classified as missed", m.Domain)
		}
		if m.Detail == "" {
			t.Fatalf("miss %s lacks a detail", m.Domain)
		}
	}
}

func TestMissReasonsMatchGroundTruth(t *testing.T) {
	p := pilot(t)
	for _, m := range MissAnalysis(p) {
		site, _ := p.Universe.Site(m.Domain)
		regs := p.Ledger.SiteRegistrations(m.Domain)
		switch m.Reason {
		case MissNoSignal:
			if len(regs) == 0 {
				t.Fatalf("%s: no-signal miss but no registration exists", m.Domain)
			}
		case MissLanguage:
			if site.Language == "en" {
				t.Fatalf("%s: language miss on an English site", m.Domain)
			}
		case MissInherent:
			if site.HasRegistration && !site.RequiresPayment && !site.ExternalAuthOnly && site.MaxEmailLen == 0 {
				t.Fatalf("%s: inherent miss but the site is registerable: %+v", m.Domain, site)
			}
		}
	}
}

func TestRenderMisses(t *testing.T) {
	p := pilot(t)
	out := RenderMisses(MissAnalysis(p))
	if !strings.Contains(out, "total breaches missed") && !strings.Contains(out, "every breach") {
		t.Fatalf("render incomplete:\n%s", out)
	}
	if RenderMisses(nil) == "" {
		t.Fatal("empty render")
	}
}
