package report

import (
	"strings"
	"sync"
	"testing"

	"tripwire/internal/core"
	"tripwire/internal/crawler"
	"tripwire/internal/sim"
)

var (
	pilotOnce sync.Once
	pilotInst *sim.Pilot
)

func pilot(t *testing.T) *sim.Pilot {
	t.Helper()
	pilotOnce.Do(func() {
		pilotInst = sim.NewPilot(sim.SmallConfig()).Run()
	})
	return pilotInst
}

func TestTable1ShapesAndRendering(t *testing.T) {
	p := pilot(t)
	rows := Table1(p)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 status bins", len(rows))
	}
	byStatus := map[core.AccountStatus]Table1Row{}
	for _, r := range rows {
		byStatus[r.Status] = r
		if r.ValidHard > r.AttHard || r.ValidEasy > r.AttEasy || r.ValidSites > r.AttSites {
			t.Fatalf("valid exceeds attempted in %v: %+v", r.Status, r)
		}
		if r.Success < 0 || r.Success > 1 {
			t.Fatalf("success rate %v out of [0,1]", r.Success)
		}
	}
	// The paper's ordering of bins by confidence.
	if !(byStatus[core.StatusEmailVerified].Success >= byStatus[core.StatusOKSubmission].Success) {
		t.Error("email-verified accounts should validate at least as often as OK submissions")
	}
	if !(byStatus[core.StatusOKSubmission].Success > byStatus[core.StatusBadHeuristics].Success) {
		t.Error("OK submissions should validate more often than bad-heuristics")
	}
	out := RenderTable1(rows)
	for _, label := range []string{"Email verified", "OK submission", "Manual", "Total"} {
		if !strings.Contains(out, label) {
			t.Errorf("rendered table missing %q:\n%s", label, out)
		}
	}
}

func TestTable2AgainstGroundTruth(t *testing.T) {
	p := pilot(t)
	rows := Table2(p)
	dets := p.Monitor.Detections()
	if len(rows) != len(dets) {
		t.Fatalf("rows = %d, detections = %d", len(rows), len(dets))
	}
	for i, r := range rows {
		d := dets[i]
		site, _ := p.Universe.Site(d.Domain)
		if r.HardAccessed == "Y" && !site.Storage.HardRecoverable() {
			t.Errorf("site %s: hard access reported under %v storage", d.Domain, site.Storage)
		}
		if r.Accessed > r.Registered {
			t.Errorf("row %s: accessed %d > registered %d", r.Label, r.Accessed, r.Registered)
		}
		if r.RankRounded < d.Rank {
			t.Errorf("row %s: rank rounded down (%d < %d)", r.Label, r.RankRounded, d.Rank)
		}
	}
	if out := RenderTable2(rows); !strings.Contains(out, "A") {
		t.Error("rendered table 2 lacks site labels")
	}
}

func TestSiteLabelSequence(t *testing.T) {
	want := map[int]string{0: "A", 1: "B", 25: "Z", 26: "AA", 27: "AB", 52: "BA"}
	for i, w := range want {
		if got := siteLabel(i); got != w {
			t.Errorf("siteLabel(%d) = %q, want %q", i, got, w)
		}
	}
}

func TestTable3Consistency(t *testing.T) {
	p := pilot(t)
	rows := Table3(p)
	if len(rows) == 0 {
		t.Fatal("no accessed accounts")
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Alias] {
			t.Errorf("duplicate alias %s", r.Alias)
		}
		seen[r.Alias] = true
		if r.Logins <= 0 {
			t.Errorf("%s: %d logins", r.Alias, r.Logins)
		}
		if r.Logins == 1 && r.AccessedDays != 0 {
			t.Errorf("%s: single login spans %d days", r.Alias, r.AccessedDays)
		}
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "a1") {
		t.Errorf("rendered table 3 lacks a1:\n%s", out)
	}
}

func TestTable4SumsTo100(t *testing.T) {
	p := pilot(t)
	rows := Table4(p, []int{1, 1000})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		sum := r.LoadFailure + r.NotEnglish + r.NoRegistration + r.Ineligible + r.Rest
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("row %d sums to %.1f", r.StartRank, sum)
		}
	}
	// Out-of-range window yields no row.
	if rows := Table4(p, []int{10 * 1000 * 1000}); len(rows) != 0 {
		t.Errorf("out-of-range census produced rows: %+v", rows)
	}
}

func TestFig1CountsMatchAttempts(t *testing.T) {
	p := pilot(t)
	counts := Fig1(p)
	total := 0
	for _, n := range counts {
		total += n
	}
	auto := 0
	for _, a := range p.Attempts {
		if !a.Manual {
			auto++
		}
	}
	if total != auto {
		t.Fatalf("Fig1 total %d != automated attempts %d", total, auto)
	}
	if out := RenderFig1(counts); !strings.Contains(out, "OK submission") {
		t.Error("rendered fig1 incomplete")
	}
}

func TestFig2RowsMatchDetections(t *testing.T) {
	p := pilot(t)
	out := Fig2(p)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + optional gap row + one line per detection + legend.
	want := len(p.Monitor.Detections()) + 2
	gap := 0
	if strings.HasPrefix(lines[1], "gap") {
		gap = 1
	}
	if len(lines) != want+gap {
		t.Fatalf("fig2 has %d lines, want %d:\n%s", len(lines), want+gap, out)
	}
	if gap == 1 && !strings.Contains(lines[1], "G") {
		t.Errorf("gap row has no G markers: %q", lines[1])
	}
	for _, l := range lines[1+gap : len(lines)-1] {
		if !strings.Contains(l, "R") {
			t.Errorf("timeline row lacks registration mark: %q", l)
		}
		if !strings.Contains(l, "(") {
			t.Errorf("timeline row lacks login count: %q", l)
		}
	}
}

func TestFig3Bounds(t *testing.T) {
	p := pilot(t)
	f := Fig3(p)
	if f.TotalSites == 0 || f.EligibleSites == 0 {
		t.Fatalf("funnel empty: %+v", f)
	}
	sum := f.NoRegFound + f.SystemErrors + f.FailedFills + f.EstimatedOK
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("eligible-site outcomes sum to %.2f", sum)
	}
	if f.SuccessOnElig > f.EstimatedOK+0.25 {
		t.Fatalf("actual success %.2f wildly above estimated %.2f", f.SuccessOnElig, f.EstimatedOK)
	}
	if out := RenderFig3(f); !strings.Contains(out, "funnel") {
		t.Error("rendered fig3 incomplete")
	}
}

func TestSec64Stats(t *testing.T) {
	p := pilot(t)
	st := Sec64(p)
	if st.TotalLogins != len(p.Monitor.AttributedLogins()) {
		t.Fatalf("TotalLogins %d != attributed %d", st.TotalLogins, len(p.Monitor.AttributedLogins()))
	}
	if st.DistinctIPs > st.TotalLogins {
		t.Fatal("more IPs than logins")
	}
	if st.Countries > 92 {
		t.Fatalf("countries %d exceeds the space", st.Countries)
	}
	if st.MaxIPUses > 100 {
		t.Fatalf("max IP uses %d implausible (paper max: 58)", st.MaxIPUses)
	}
	if out := RenderSec64(st); !strings.Contains(out, "Distinct IPs") {
		t.Error("rendered sec64 incomplete")
	}
}

func TestCodeRankCoversAllCodes(t *testing.T) {
	codes := []crawler.Code{
		crawler.CodeOKSubmission, crawler.CodeSubmissionFailed,
		crawler.CodeFieldsMissing, crawler.CodeNoRegistration,
		crawler.CodeSystemError,
	}
	seen := map[int]bool{}
	for _, c := range codes {
		r := codeRank(c)
		if seen[r] {
			t.Fatalf("codeRank collision at %d", r)
		}
		seen[r] = true
	}
}
