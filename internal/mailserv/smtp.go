package mailserv

import (
	"bufio"
	"fmt"
	"net"
	"strings"
)

// SMTPServer accepts RFC 5321 deliveries into a Server. It implements the
// minimal command set real MTAs require: HELO/EHLO, MAIL FROM, RCPT TO,
// DATA, RSET, NOOP, QUIT. The email provider's forwarding path delivers
// honey-account mail to Tripwire through this listener.
type SMTPServer struct {
	Store *Server
	// Hostname is announced in the greeting.
	Hostname string
	// MaxMessageBytes caps DATA size; oversized messages are rejected.
	MaxMessageBytes int
}

// NewSMTPServer returns an SMTP front end for store.
func NewSMTPServer(store *Server) *SMTPServer {
	return &SMTPServer{
		Store:           store,
		Hostname:        "mail.tripwire.test",
		MaxMessageBytes: 1 << 20,
	}
}

// Serve accepts connections until the listener is closed.
func (s *SMTPServer) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			// Per-connection errors end that session only.
			_ = s.ServeConn(conn)
		}()
	}
}

// ServeConn runs one SMTP session over conn.
func (s *SMTPServer) ServeConn(conn net.Conn) error {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	reply := func(code int, msg string) error {
		if _, err := fmt.Fprintf(w, "%d %s\r\n", code, msg); err != nil {
			return err
		}
		return w.Flush()
	}
	if err := reply(220, s.Hostname+" ESMTP tripwire-mailserv"); err != nil {
		return err
	}

	var from string
	var rcpts []string
	reset := func() { from = ""; rcpts = nil }

	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\r\n")
		verb, arg := splitVerb(line)
		switch verb {
		case "HELO":
			reset()
			if err := reply(250, s.Hostname); err != nil {
				return err
			}
		case "EHLO":
			reset()
			if _, err := fmt.Fprintf(w, "250-%s\r\n250 SIZE %d\r\n", s.Hostname, s.MaxMessageBytes); err != nil {
				return err
			}
			if err := w.Flush(); err != nil {
				return err
			}
		case "MAIL":
			addr, ok := parsePath(arg, "FROM")
			if !ok {
				if err := reply(501, "syntax: MAIL FROM:<address>"); err != nil {
					return err
				}
				continue
			}
			from = addr
			rcpts = nil
			if err := reply(250, "OK"); err != nil {
				return err
			}
		case "RCPT":
			if from == "" {
				if err := reply(503, "need MAIL before RCPT"); err != nil {
					return err
				}
				continue
			}
			addr, ok := parsePath(arg, "TO")
			if !ok || addr == "" {
				if err := reply(501, "syntax: RCPT TO:<address>"); err != nil {
					return err
				}
				continue
			}
			rcpts = append(rcpts, addr)
			if err := reply(250, "OK"); err != nil {
				return err
			}
		case "DATA":
			if len(rcpts) == 0 {
				if err := reply(503, "need RCPT before DATA"); err != nil {
					return err
				}
				continue
			}
			if err := reply(354, "end data with <CRLF>.<CRLF>"); err != nil {
				return err
			}
			raw, err := readData(r, s.MaxMessageBytes)
			if err != nil {
				if err := reply(552, "message too large"); err != nil {
					return err
				}
				reset()
				continue
			}
			if err := s.Store.DeliverRaw(from, rcpts, raw); err != nil {
				if err := reply(451, "message rejected: unparseable"); err != nil {
					return err
				}
			} else if err := reply(250, "OK: queued"); err != nil {
				return err
			}
			reset()
		case "RSET":
			reset()
			if err := reply(250, "OK"); err != nil {
				return err
			}
		case "NOOP":
			if err := reply(250, "OK"); err != nil {
				return err
			}
		case "QUIT":
			_ = reply(221, "bye")
			return nil
		default:
			if err := reply(502, "command not implemented"); err != nil {
				return err
			}
		}
	}
}

func splitVerb(line string) (verb, arg string) {
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return strings.ToUpper(line[:i]), strings.TrimSpace(line[i+1:])
	}
	return strings.ToUpper(line), ""
}

// parsePath parses "FROM:<addr>" / "TO:<addr>" arguments.
func parsePath(arg, key string) (string, bool) {
	upper := strings.ToUpper(arg)
	if !strings.HasPrefix(upper, key+":") {
		return "", false
	}
	rest := strings.TrimSpace(arg[len(key)+1:])
	rest = strings.TrimPrefix(rest, "<")
	if i := strings.IndexByte(rest, '>'); i >= 0 {
		rest = rest[:i]
	}
	return strings.TrimSpace(rest), true
}

// readData reads dot-terminated DATA content, undoing dot-stuffing.
func readData(r *bufio.Reader, maxBytes int) (string, error) {
	var b strings.Builder
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return "", err
		}
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "." {
			return b.String(), nil
		}
		if strings.HasPrefix(trimmed, "..") {
			trimmed = trimmed[1:]
		}
		b.WriteString(trimmed)
		b.WriteString("\r\n")
		if b.Len() > maxBytes {
			// Drain to the terminator so the session can continue.
			for {
				l, err := r.ReadString('\n')
				if err != nil || strings.TrimRight(l, "\r\n") == "." {
					break
				}
			}
			return "", fmt.Errorf("mailserv: message exceeds %d bytes", maxBytes)
		}
	}
}

// SMTPClient is a minimal SMTP sender used by the email provider's
// forwarding path to push honey-account mail to the Tripwire mail server
// over a real network connection.
type SMTPClient struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// DialSMTP opens an SMTP session over conn and consumes the greeting.
func DialSMTP(conn net.Conn) (*SMTPClient, error) {
	c := &SMTPClient{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if _, err := c.expect(220); err != nil {
		return nil, err
	}
	if err := c.cmd(250, "EHLO forwarder.provider.test"); err != nil {
		return nil, err
	}
	return c, nil
}

// Send transmits one message.
func (c *SMTPClient) Send(from, to, subject, body string) error {
	if err := c.cmd(250, "MAIL FROM:<%s>", from); err != nil {
		return err
	}
	if err := c.cmd(250, "RCPT TO:<%s>", to); err != nil {
		return err
	}
	if err := c.cmd(354, "DATA"); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "From: %s\r\nTo: %s\r\nSubject: %s\r\n\r\n", from, to, subject)
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.HasPrefix(line, ".") {
			line = "." + line // dot-stuffing
		}
		b.WriteString(line)
		b.WriteString("\r\n")
	}
	b.WriteString(".\r\n")
	if _, err := c.w.WriteString(b.String()); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	_, err := c.expect(250)
	return err
}

// Close quits the session and closes the connection.
func (c *SMTPClient) Close() error {
	_ = c.cmd(221, "QUIT")
	return c.conn.Close()
}

func (c *SMTPClient) cmd(wantCode int, format string, args ...any) error {
	if _, err := fmt.Fprintf(c.w, format+"\r\n", args...); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	_, err := c.expect(wantCode)
	return err
}

func (c *SMTPClient) expect(code int) (string, error) {
	var last string
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return "", err
		}
		last = strings.TrimRight(line, "\r\n")
		if len(last) < 4 {
			break
		}
		if last[3] == '-' {
			continue // multi-line reply
		}
		break
	}
	var got int
	if _, err := fmt.Sscanf(last, "%d", &got); err != nil {
		return last, fmt.Errorf("mailserv: malformed reply %q", last)
	}
	if got != code {
		return last, fmt.Errorf("mailserv: got %q, want code %d", last, code)
	}
	return last, nil
}
