package mailserv

import (
	"fmt"
	"testing"
)

// TestSince exercises the incremental drain cursor: Since(0) is the full
// history, a cursor walk sees every message exactly once, and cursors at or
// past the end return nil.
func TestSince(t *testing.T) {
	s := NewServer()
	for i := 0; i < 5; i++ {
		s.Deliver("site@example.com", fmt.Sprintf("u%d@mail.test", i), "hi", "body")
	}

	all := s.All()
	if len(all) != 5 {
		t.Fatalf("delivered 5, All returned %d", len(all))
	}
	since := s.Since(0)
	if len(since) != 5 {
		t.Fatalf("Since(0) returned %d messages, want 5", len(since))
	}
	for i := range all {
		if all[i] != since[i] {
			t.Fatalf("message %d differs between All and Since(0)", i)
		}
	}

	if got := s.Since(3); len(got) != 2 || got[0] != all[3] || got[1] != all[4] {
		t.Fatalf("Since(3) = %d messages, want the last 2 in order", len(got))
	}
	if got := s.Since(5); got != nil {
		t.Fatalf("Since(len) = %d messages, want nil", len(got))
	}
	if got := s.Since(99); got != nil {
		t.Fatalf("Since(past end) = %d messages, want nil", len(got))
	}
	if got := s.Since(-1); len(got) != 5 {
		t.Fatalf("Since(-1) = %d messages, want full history", len(got))
	}

	// Cursor walk with interleaved deliveries: no message seen twice or missed.
	cursor, seen := len(all), 0
	for _, batch := range []int{2, 0, 3} {
		for i := 0; i < batch; i++ {
			s.Deliver("site@example.com", "late@mail.test", "more", "body")
		}
		msgs := s.Since(cursor)
		cursor += len(msgs)
		seen += len(msgs)
	}
	if cursor != s.Count() || seen != 5 {
		t.Fatalf("cursor walk drained %d new messages to cursor %d, want 5 to %d", seen, cursor, s.Count())
	}
}
