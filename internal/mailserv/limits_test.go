package mailserv

import (
	"net"
	"strings"
	"testing"
)

// TestSMTPServeOverTCP accepts a delivery over a real loopback socket.
func TestSMTPServeOverTCP(t *testing.T) {
	store := NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer ln.Close()
	go NewSMTPServer(store).Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialSMTP(conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Send("a@x.test", "b@relay.test", "tcp subject", "tcp body"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	msgs := store.Messages("b@relay.test")
	if len(msgs) != 1 || msgs[0].Subject != "tcp subject" {
		t.Fatalf("messages = %+v", msgs)
	}
}

// TestSMTPMessageSizeLimit rejects oversized DATA while keeping the session
// alive for subsequent messages.
func TestSMTPMessageSizeLimit(t *testing.T) {
	store := NewServer()
	srv := NewSMTPServer(store)
	srv.MaxMessageBytes = 512
	cliConn, srvConn := net.Pipe()
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.ServeConn(srvConn); srvConn.Close() }()
	defer func() { cliConn.Close(); <-done }()

	cli, err := DialSMTP(cliConn)
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("spam and eggs ", 200)
	if err := cli.Send("a@x.test", "b@y.test", "big", big); err == nil {
		t.Fatal("oversized message accepted")
	}
	if store.Count() != 0 {
		t.Fatal("oversized message stored")
	}
	// The session survives: a small message still goes through.
	if err := cli.Send("a@x.test", "b@y.test", "small", "ok"); err != nil {
		t.Fatalf("post-rejection send: %v", err)
	}
	if store.Count() != 1 {
		t.Fatalf("stored %d messages", store.Count())
	}
	cli.Close()
}

// TestHandlerPanicSafety: a message observer that misbehaves must not lose
// the stored message (handlers run after storage).
func TestHandlerRunsAfterStorage(t *testing.T) {
	s := NewServer()
	sawStored := false
	s.OnMessage(func(m *Message) {
		sawStored = s.Count() >= 1
	})
	s.Deliver("a@x.test", "b@y.test", "s", "b")
	if !sawStored {
		t.Fatal("handler observed pre-storage state")
	}
}
