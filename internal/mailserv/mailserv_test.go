package mailserv

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestDeliverStoresAndNotifies(t *testing.T) {
	s := NewServer()
	var notified []*Message
	s.OnMessage(func(m *Message) { notified = append(notified, m) })
	s.Deliver("a@x.test", "Bob@Relay.Test", "Hi", "body text")
	if s.Count() != 1 {
		t.Fatalf("Count = %d", s.Count())
	}
	msgs := s.Messages("bob@relay.test")
	if len(msgs) != 1 || msgs[0].Subject != "Hi" {
		t.Fatalf("Messages = %+v (recipient case-normalization)", msgs)
	}
	if len(notified) != 1 || notified[0] != msgs[0] {
		t.Fatal("handler not notified with the stored message")
	}
}

func TestDeliverUsesVirtualClock(t *testing.T) {
	s := NewServer()
	fixed := time.Date(2015, 3, 1, 12, 0, 0, 0, time.UTC)
	s.Now = func() time.Time { return fixed }
	m := s.Deliver("a@x.test", "b@y.test", "s", "b")
	if !m.Received.Equal(fixed) {
		t.Fatalf("Received = %v", m.Received)
	}
}

func TestVerificationLinkExtraction(t *testing.T) {
	cases := []struct {
		body string
		want string
	}{
		{"Click here: http://site01.test/verify?token=abc123 thanks", "http://site01.test/verify?token=abc123"},
		{"Go to https://x.test/account/confirm/99 now", "https://x.test/account/confirm/99"},
		{"Activate: http://x.test/activate?id=7", "http://x.test/activate?id=7"},
		{"No links here", ""},
		{"Plain link http://x.test/page is not verification", ""},
	}
	for _, tc := range cases {
		m := &Message{Body: tc.body}
		got, ok := m.VerificationLink()
		if (tc.want != "") != ok || got != tc.want {
			t.Errorf("VerificationLink(%q) = %q, %v; want %q", tc.body, got, ok, tc.want)
		}
	}
}

func TestIsVerification(t *testing.T) {
	v := &Message{Subject: "Welcome!", Body: "verify at http://x.test/verify?t=1"}
	if !v.IsVerification() {
		t.Error("body link not recognized")
	}
	v2 := &Message{Subject: "Please confirm your account", Body: "visit http://x.test/x?t=1"}
	if !v2.IsVerification() {
		t.Error("verification subject + link not recognized")
	}
	w := &Message{Subject: "Welcome to Acme", Body: "Thanks for joining."}
	if w.IsVerification() {
		t.Error("welcome mail misclassified as verification")
	}
}

func TestSMTPSessionEndToEnd(t *testing.T) {
	store := NewServer()
	srv := NewSMTPServer(store)
	cliConn, srvConn := net.Pipe()
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.ServeConn(srvConn); srvConn.Close() }()

	cli, err := DialSMTP(cliConn)
	if err != nil {
		t.Fatal(err)
	}
	body := "Line one\n.leading dot line\nhttp://x.test/verify?token=zz\n"
	if err := cli.Send("noreply@site.test", "gem@relay.test", "Please verify", body); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	msgs := store.Messages("gem@relay.test")
	if len(msgs) != 1 {
		t.Fatalf("stored %d messages", len(msgs))
	}
	m := msgs[0]
	if m.Subject != "Please verify" {
		t.Errorf("subject = %q", m.Subject)
	}
	if !strings.Contains(m.Body, ".leading dot line") {
		t.Errorf("dot-stuffing broken: %q", m.Body)
	}
	if link, ok := m.VerificationLink(); !ok || link != "http://x.test/verify?token=zz" {
		t.Errorf("verification link = %q, %v", link, ok)
	}
	if m.From != "noreply@site.test" {
		t.Errorf("from = %q", m.From)
	}
}

func TestSMTPMultipleMessagesOneSession(t *testing.T) {
	store := NewServer()
	srv := NewSMTPServer(store)
	cliConn, srvConn := net.Pipe()
	go func() { _ = srv.ServeConn(srvConn); srvConn.Close() }()
	cli, err := DialSMTP(cliConn)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := cli.Send("a@x.test", "b@y.test", "m", "body"); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
	}
	cli.Close()
	if store.Count() != 3 {
		t.Fatalf("stored %d, want 3", store.Count())
	}
}

func TestSMTPCommandSequencing(t *testing.T) {
	store := NewServer()
	srv := NewSMTPServer(store)
	cliConn, srvConn := net.Pipe()
	go func() { _ = srv.ServeConn(srvConn); srvConn.Close() }()

	send := func(line string) string {
		if _, err := cliConn.Write([]byte(line + "\r\n")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 512)
		n, err := cliConn.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf[:n])
	}
	// Greeting.
	buf := make([]byte, 512)
	n, _ := cliConn.Read(buf)
	if !strings.HasPrefix(string(buf[:n]), "220") {
		t.Fatalf("greeting = %q", buf[:n])
	}
	if r := send("RCPT TO:<x@y.test>"); !strings.HasPrefix(r, "503") {
		t.Fatalf("RCPT before MAIL = %q", r)
	}
	if r := send("DATA"); !strings.HasPrefix(r, "503") {
		t.Fatalf("DATA before RCPT = %q", r)
	}
	if r := send("BOGUS"); !strings.HasPrefix(r, "502") {
		t.Fatalf("unknown verb = %q", r)
	}
	if r := send("MAIL FROM:<a@b.test>"); !strings.HasPrefix(r, "250") {
		t.Fatalf("MAIL = %q", r)
	}
	if r := send("RSET"); !strings.HasPrefix(r, "250") {
		t.Fatalf("RSET = %q", r)
	}
	if r := send("RCPT TO:<x@y.test>"); !strings.HasPrefix(r, "503") {
		t.Fatalf("RCPT after RSET should need MAIL again: %q", r)
	}
	if r := send("QUIT"); !strings.HasPrefix(r, "221") {
		t.Fatalf("QUIT = %q", r)
	}
	cliConn.Close()
}

func TestDeliverRawParsesHeaders(t *testing.T) {
	s := NewServer()
	raw := "From: sender@a.test\r\nSubject: Test subject\r\n\r\nThe body.\r\n"
	if err := s.DeliverRaw("env@a.test", []string{"r1@b.test", "r2@b.test"}, raw); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want one per recipient", s.Count())
	}
	m := s.Messages("r1@b.test")[0]
	if m.Subject != "Test subject" || !strings.Contains(m.Body, "The body.") {
		t.Fatalf("parsed message: %+v", m)
	}
}

func TestDeliverRawMalformed(t *testing.T) {
	s := NewServer()
	if err := s.DeliverRaw("e@a.test", []string{"r@b.test"}, "not a message at all \x00"); err == nil {
		// net/mail can parse header-less text as a message with no body;
		// if it parsed, the message must at least be stored.
		if s.Count() == 0 {
			t.Fatal("no error and no message stored")
		}
	}
}
