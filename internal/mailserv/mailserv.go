// Package mailserv is the Tripwire-side mail server (paper §4.3.3). The
// email provider forwards every message delivered to a honey account here;
// the server retains a copy of all messages, recognizes account-verification
// messages, and surfaces verification links so the pipeline can click them.
package mailserv

import (
	"fmt"
	"net/mail"
	"regexp"
	"strings"
	"sync"
	"time"
)

// Message is one received email.
type Message struct {
	From     string
	To       string
	Subject  string
	Body     string
	Received time.Time
}

// verifyLinkRe matches verification URLs in message bodies: a link whose
// path or query suggests confirmation. The pattern mirrors the paper's mail
// handler, which "processes all incoming messages to evaluate whether a
// message ... contains a validation link."
var verifyLinkRe = regexp.MustCompile(`https?://[^\s<>"]*(?:verify|confirm|activate|validate)[^\s<>"]*`)

// subjectVerifyRe recognizes verification-style subjects.
var subjectVerifyRe = regexp.MustCompile(`(?i)verify|confirm|activat|validate`)

// VerificationLink returns the first verification URL in the message body
// and whether one was found.
func (m *Message) VerificationLink() (string, bool) {
	link := verifyLinkRe.FindString(m.Body)
	return link, link != ""
}

// IsVerification reports whether the message looks like an account
// verification request (link in body, or verification-style subject plus
// any link).
func (m *Message) IsVerification() bool {
	if _, ok := m.VerificationLink(); ok {
		return true
	}
	return subjectVerifyRe.MatchString(m.Subject) && strings.Contains(m.Body, "http")
}

// Handler observes each message as it is delivered.
type Handler func(*Message)

// Server is the mail store. The zero value is not usable; construct with
// NewServer.
type Server struct {
	mu       sync.Mutex
	byRcpt   map[string][]*Message
	all      []*Message
	handlers []Handler
	// Now supplies receipt timestamps; defaults to time.Now.
	Now func() time.Time
}

// NewServer returns an empty mail server.
func NewServer() *Server {
	return &Server{
		byRcpt: make(map[string][]*Message),
		Now:    time.Now,
	}
}

// OnMessage registers a delivery observer. Handlers run synchronously, in
// registration order, during Deliver.
func (s *Server) OnMessage(h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers = append(s.handlers, h)
}

// Deliver stores a message and notifies handlers. It is the in-process
// delivery path; the SMTP listener calls it for network deliveries.
func (s *Server) Deliver(from, to, subject, body string) *Message {
	m := &Message{
		From:     from,
		To:       strings.ToLower(to),
		Subject:  subject,
		Body:     body,
		Received: s.now(),
	}
	s.mu.Lock()
	s.byRcpt[m.To] = append(s.byRcpt[m.To], m)
	s.all = append(s.all, m)
	handlers := append([]Handler(nil), s.handlers...)
	s.mu.Unlock()
	for _, h := range handlers {
		h(m)
	}
	return m
}

// DeliverRaw parses an RFC 822 message as received over SMTP and stores it
// for each recipient.
func (s *Server) DeliverRaw(envelopeFrom string, rcpts []string, raw string) error {
	msg, err := mail.ReadMessage(strings.NewReader(raw))
	if err != nil {
		return fmt.Errorf("mailserv: parsing message: %w", err)
	}
	subject := msg.Header.Get("Subject")
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := msg.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	from := msg.Header.Get("From")
	if from == "" {
		from = envelopeFrom
	}
	for _, rcpt := range rcpts {
		s.Deliver(from, rcpt, subject, body.String())
	}
	return nil
}

func (s *Server) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

// Messages returns all messages delivered to rcpt, oldest first.
func (s *Server) Messages(rcpt string) []*Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	msgs := s.byRcpt[strings.ToLower(rcpt)]
	out := make([]*Message, len(msgs))
	copy(out, msgs)
	return out
}

// All returns every stored message, oldest first.
func (s *Server) All() []*Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Message, len(s.all))
	copy(out, s.all)
	return out
}

// Since returns the messages delivered after the first cursor ones, oldest
// first. A caller that remembers cursor + len(result) between calls drains
// the store incrementally without recopying its whole history; cursors past
// the end return nil. Messages are append-only, so a cursor never
// invalidates.
func (s *Server) Since(cursor int) []*Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor >= len(s.all) {
		return nil
	}
	out := make([]*Message, len(s.all)-cursor)
	copy(out, s.all[cursor:])
	return out
}

// Count returns the total number of stored messages.
func (s *Server) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.all)
}
