package pop3

import (
	"errors"
	"net"
	"net/netip"
	"strings"
	"testing"

	"tripwire/internal/imap"
)

// TestServeOverTCP drives a full POP3 session over a loopback socket.
func TestServeOverTCP(t *testing.T) {
	b := testBackend()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer ln.Close()
	go NewServer(b).Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Auth("gem@mail.test", "Website1"); err != nil {
		t.Fatal(err)
	}
	n, err := c.Stat()
	if err != nil || n != 2 {
		t.Fatalf("Stat = %d, %v", n, err)
	}
	raw, err := c.Retr(1)
	if err != nil || !strings.Contains(raw, "Subject: One") {
		t.Fatalf("Retr = %q, %v", raw, err)
	}
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}
}

// TestServerCommandSurface exercises LIST, DELE, RSET, NOOP and error
// replies over a pipe.
func TestServerCommandSurface(t *testing.T) {
	c, cleanup := dialPOP(t, testBackend())
	defer cleanup()
	if err := c.Auth("gem@mail.test", "Website1"); err != nil {
		t.Fatal(err)
	}
	// LIST: multiline, one row per message, dot-terminated.
	if _, err := c.cmd("LIST"); err != nil {
		t.Fatal(err)
	}
	rows := 0
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimRight(line, "\r\n") == "." {
			break
		}
		rows++
	}
	if rows != 2 {
		t.Fatalf("LIST rows = %d", rows)
	}
	for _, verb := range []string{"DELE 1", "RSET", "NOOP"} {
		if _, err := c.cmd(verb); err != nil {
			t.Fatalf("%s: %v", verb, err)
		}
	}
	if _, err := c.cmd("XYZZY"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if _, err := c.cmd("RETR nope"); err == nil {
		t.Fatal("non-numeric RETR accepted")
	}
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}
}

// TestBackendSelectFailure covers maildrops whose INBOX cannot open: the
// POP3 session still authenticates and reports an empty maildrop.
func TestBackendSelectFailure(t *testing.T) {
	c, cleanup := dialPOP(t, failingBackend{})
	defer cleanup()
	if err := c.Auth("x@mail.test", "pw"); err != nil {
		t.Fatalf("auth should succeed: %v", err)
	}
	n, err := c.Stat()
	if err != nil || n != 0 {
		t.Fatalf("Stat = %d, %v", n, err)
	}
}

// failingBackend authenticates anyone but cannot open any mailbox.
type failingBackend struct{}

func (failingBackend) Login(user, pass string, _ netip.Addr) (imap.Session, error) {
	return failingSession{}, nil
}

type failingSession struct{}

func (failingSession) Select(string) (int, error)      { return 0, errors.New("mailbox corrupt") }
func (failingSession) Fetch(int) (imap.Message, error) { return imap.Message{}, errors.New("no") }
func (failingSession) Logout() error                   { return nil }
