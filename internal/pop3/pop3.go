// Package pop3 implements a minimal POP3 (RFC 1939) server and client.
// The provider's login dumps record access method — "timestamp, remote IP,
// and method (IMAP, POP, etc.)" (paper §4.2) — and a minority of attacker
// tooling collects mail over POP3 rather than IMAP; this package provides
// that second protocol path end to end.
package pop3

import (
	"bufio"
	"fmt"
	"net"
	"net/netip"
	"strconv"
	"strings"

	"tripwire/internal/imap"
)

// Server speaks POP3 over accepted connections. Authentication and mailbox
// access delegate to an imap.Backend (the mailbox model is identical:
// Select("INBOX") + Fetch).
type Server struct {
	Backend imap.Backend
	// Greeting is announced on connect.
	Greeting string
}

// NewServer returns a POP3 front end over backend.
func NewServer(backend imap.Backend) *Server {
	return &Server{Backend: backend, Greeting: "tripwire-sim POP3 ready"}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			addr := netip.Addr{}
			if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
				addr = ap.Addr()
			}
			_ = s.ServeConn(conn, addr)
		}()
	}
}

// ServeConn runs one POP3 session; remote is the address recorded on login.
func (s *Server) ServeConn(conn net.Conn, remote netip.Addr) error {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	ok := func(format string, args ...any) error {
		if _, err := fmt.Fprintf(w, "+OK "+format+"\r\n", args...); err != nil {
			return err
		}
		return w.Flush()
	}
	bad := func(format string, args ...any) error {
		if _, err := fmt.Fprintf(w, "-ERR "+format+"\r\n", args...); err != nil {
			return err
		}
		return w.Flush()
	}
	if err := ok("%s", s.Greeting); err != nil {
		return err
	}

	var user string
	var sess imap.Session
	var count int
	defer func() {
		if sess != nil {
			_ = sess.Logout()
		}
	}()

	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		verb, arg := splitVerb(strings.TrimRight(line, "\r\n"))
		switch verb {
		case "USER":
			user = arg
			if err := ok("send PASS"); err != nil {
				return err
			}
		case "PASS":
			if user == "" {
				if err := bad("USER first"); err != nil {
					return err
				}
				continue
			}
			newSess, err := s.Backend.Login(user, arg, remote)
			if err != nil {
				if err := bad("authentication failed"); err != nil {
					return err
				}
				continue
			}
			sess = newSess
			count, err = sess.Select("INBOX")
			if err != nil {
				count = 0
			}
			if err := ok("maildrop has %d messages", count); err != nil {
				return err
			}
		case "STAT":
			if sess == nil {
				if err := bad("not authenticated"); err != nil {
					return err
				}
				continue
			}
			if err := ok("%d %d", count, count*1024); err != nil {
				return err
			}
		case "LIST":
			if sess == nil {
				if err := bad("not authenticated"); err != nil {
					return err
				}
				continue
			}
			if err := ok("%d messages", count); err != nil {
				return err
			}
			for i := 1; i <= count; i++ {
				fmt.Fprintf(w, "%d 1024\r\n", i)
			}
			if _, err := w.WriteString(".\r\n"); err != nil {
				return err
			}
			if err := w.Flush(); err != nil {
				return err
			}
		case "RETR":
			if sess == nil {
				if err := bad("not authenticated"); err != nil {
					return err
				}
				continue
			}
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 || n > count {
				if err := bad("no such message"); err != nil {
					return err
				}
				continue
			}
			m, err := sess.Fetch(n)
			if err != nil {
				if err := bad("fetch failed"); err != nil {
					return err
				}
				continue
			}
			if err := ok("message follows"); err != nil {
				return err
			}
			body := fmt.Sprintf("From: %s\r\nSubject: %s\r\n\r\n%s", m.From, m.Subject, m.Body)
			for _, ln := range strings.Split(body, "\r\n") {
				if strings.HasPrefix(ln, ".") {
					ln = "." + ln
				}
				fmt.Fprintf(w, "%s\r\n", ln)
			}
			if _, err := w.WriteString(".\r\n"); err != nil {
				return err
			}
			if err := w.Flush(); err != nil {
				return err
			}
		case "DELE", "RSET":
			// Honey mailboxes are read-only in the simulation; accept and
			// ignore, like a maildrop that never expunges.
			if err := ok("noted"); err != nil {
				return err
			}
		case "NOOP":
			if err := ok(""); err != nil {
				return err
			}
		case "QUIT":
			return ok("bye")
		default:
			if err := bad("unknown command"); err != nil {
				return err
			}
		}
	}
}

func splitVerb(line string) (string, string) {
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return strings.ToUpper(line[:i]), strings.TrimSpace(line[i+1:])
	}
	return strings.ToUpper(line), ""
}

// Client is a minimal POP3 client.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial opens a POP3 session over conn, consuming the greeting.
func Dial(conn net.Conn) (*Client, error) {
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if _, err := c.expectOK(); err != nil {
		return nil, err
	}
	return c, nil
}

// Auth authenticates with USER/PASS.
func (c *Client) Auth(user, pass string) error {
	if _, err := c.cmd("USER " + user); err != nil {
		return err
	}
	if _, err := c.cmd("PASS " + pass); err != nil {
		return fmt.Errorf("pop3: authentication failed")
	}
	return nil
}

// Stat returns the message count.
func (c *Client) Stat() (int, error) {
	line, err := c.cmd("STAT")
	if err != nil {
		return 0, err
	}
	var n, size int
	if _, err := fmt.Sscanf(line, "+OK %d %d", &n, &size); err != nil {
		return 0, fmt.Errorf("pop3: malformed STAT reply %q", line)
	}
	return n, nil
}

// Retr fetches message n (1-based) as raw text.
func (c *Client) Retr(n int) (string, error) {
	if _, err := c.cmd(fmt.Sprintf("RETR %d", n)); err != nil {
		return "", err
	}
	var b strings.Builder
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return "", err
		}
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "." {
			return b.String(), nil
		}
		if strings.HasPrefix(trimmed, "..") {
			trimmed = trimmed[1:]
		}
		b.WriteString(trimmed)
		b.WriteString("\r\n")
	}
}

// Quit ends the session and closes the connection.
func (c *Client) Quit() error {
	_, _ = c.cmd("QUIT")
	return c.conn.Close()
}

func (c *Client) cmd(line string) (string, error) {
	if _, err := c.w.WriteString(line + "\r\n"); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	return c.expectOK()
}

func (c *Client) expectOK() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if !strings.HasPrefix(line, "+OK") {
		return line, fmt.Errorf("pop3: server said %q", line)
	}
	return line, nil
}
