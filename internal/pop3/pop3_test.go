package pop3

import (
	"errors"
	"net"
	"net/netip"
	"strings"
	"testing"

	"tripwire/internal/imap"
)

// fakeBackend implements imap.Backend for protocol tests.
type fakeBackend struct {
	pass  map[string]string
	boxes map[string][]imap.Message
}

func (b *fakeBackend) Login(user, pwd string, remote netip.Addr) (imap.Session, error) {
	if b.pass[user] != pwd || pwd == "" {
		return nil, imap.ErrAuthFailed
	}
	return &fakeSession{msgs: b.boxes[user]}, nil
}

type fakeSession struct{ msgs []imap.Message }

func (s *fakeSession) Select(box string) (int, error) {
	if !strings.EqualFold(box, "INBOX") {
		return 0, errors.New("no such mailbox")
	}
	return len(s.msgs), nil
}

func (s *fakeSession) Fetch(seq int) (imap.Message, error) {
	if seq < 1 || seq > len(s.msgs) {
		return imap.Message{}, errors.New("no such message")
	}
	return s.msgs[seq-1], nil
}

func (s *fakeSession) Logout() error { return nil }

func dialPOP(t *testing.T, backend imap.Backend) (*Client, func()) {
	t.Helper()
	srv := NewServer(backend)
	cliConn, srvConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.ServeConn(srvConn, netip.MustParseAddr("10.9.8.7"))
		srvConn.Close()
	}()
	c, err := Dial(cliConn)
	if err != nil {
		t.Fatal(err)
	}
	return c, func() { cliConn.Close(); <-done }
}

func testBackend() *fakeBackend {
	return &fakeBackend{
		pass: map[string]string{"gem@mail.test": "Website1"},
		boxes: map[string][]imap.Message{
			"gem@mail.test": {
				{From: "a@x.test", Subject: "One", Body: "first body"},
				{From: "b@x.test", Subject: "Two", Body: ".dot-leading\r\nsecond"},
			},
		},
	}
}

func TestAuthStatRetrQuit(t *testing.T) {
	c, cleanup := dialPOP(t, testBackend())
	defer cleanup()
	if err := c.Auth("gem@mail.test", "Website1"); err != nil {
		t.Fatal(err)
	}
	n, err := c.Stat()
	if err != nil || n != 2 {
		t.Fatalf("Stat = %d, %v", n, err)
	}
	raw, err := c.Retr(2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(raw, "Subject: Two") {
		t.Fatalf("RETR missing subject: %q", raw)
	}
	if !strings.Contains(raw, ".dot-leading") {
		t.Fatalf("dot-stuffing broken: %q", raw)
	}
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}
}

func TestAuthFailure(t *testing.T) {
	c, cleanup := dialPOP(t, testBackend())
	defer cleanup()
	if err := c.Auth("gem@mail.test", "wrong"); err == nil {
		t.Fatal("wrong password accepted")
	}
	if _, err := c.Stat(); err == nil {
		t.Fatal("STAT allowed without auth")
	}
}

func TestRetrOutOfRange(t *testing.T) {
	c, cleanup := dialPOP(t, testBackend())
	defer cleanup()
	if err := c.Auth("gem@mail.test", "Website1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Retr(99); err == nil {
		t.Fatal("RETR 99 succeeded on a 2-message maildrop")
	}
	// The session survives the error.
	if n, err := c.Stat(); err != nil || n != 2 {
		t.Fatalf("post-error Stat = %d, %v", n, err)
	}
}

func TestPassWithoutUser(t *testing.T) {
	backend := testBackend()
	srv := NewServer(backend)
	cliConn, srvConn := net.Pipe()
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.ServeConn(srvConn, netip.Addr{}); srvConn.Close() }()
	defer func() { cliConn.Close(); <-done }()

	buf := make([]byte, 256)
	n, _ := cliConn.Read(buf) // greeting
	_ = n
	cliConn.Write([]byte("PASS nope\r\n"))
	n, _ = cliConn.Read(buf)
	if !strings.HasPrefix(string(buf[:n]), "-ERR") {
		t.Fatalf("PASS before USER = %q", buf[:n])
	}
	cliConn.Write([]byte("QUIT\r\n"))
	cliConn.Read(buf)
}
