// Package distsweep lifts internal/sweep's multi-seed study sweep onto a
// coordinator/worker architecture: one coordinator partitions the sweep
// into idempotent, lease-based seed tasks and serves them over an HTTP
// control plane; any number of workers (other processes, other machines)
// lease tasks, run each seed through the ordinary study pipeline
// (sweep.RunSeedContext → tripwire.New(...).RunContext), and stream the
// per-seed result back with a content digest.
//
// The determinism argument mirrors the in-process sweep's: a seed's
// SeedResult is a pure function of its configuration, so it does not
// matter which worker runs it, how often it is retried, or in what order
// completions arrive — the coordinator slots results by seed index and
// the aggregated Outcome is byte-identical to a serial sweep.Run (modulo
// the wall-clock Wall field, which is measurement metadata).
//
// Fault tolerance is lease-based, in the idempotent-task style of the
// registry's generation-fenced incarnations:
//
//   - A lease carries a deadline and a generation number. A worker that
//     dies, stalls, or partitions away simply stops renewing; once the
//     deadline passes the coordinator re-issues the task with the
//     generation bumped.
//   - A completion must quote the generation it leased. Completions for a
//     superseded generation — the crashed worker coming back, a slow
//     duplicate — are discarded, so exactly one result per seed is ever
//     accepted.
//   - Every completion carries a SHA-256 digest of its canonical result
//     encoding; the coordinator recomputes it over the bytes it received
//     and rejects mismatches, so a corrupted result can never enter the
//     aggregate.
//
// The control plane reuses the patterns of internal/registry and
// internal/hook: a Go 1.22 ServeMux, the registry's per-IP token-bucket
// rate limiter, and hook-style HMAC-SHA256 request signing
// (X-Tripwire-Signature over the request body) under a shared secret.
package distsweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"tripwire/internal/obs"
	"tripwire/internal/sweep"
)

// Spec is the sweep description the coordinator hands to joining workers:
// how many seeds there are and the opaque scale tag the caller uses to
// rebuild the per-seed configuration (cmd/tripwire-sweep maps it through
// the same ConfigFor both serially and distributed).
type Spec struct {
	// N is how many seed tasks the sweep holds (seed indexes 1..N).
	N int `json:"n"`
	// Scale is an opaque configuration tag; workers resolve it to a
	// ConfigFor function. The coordinator never interprets it.
	Scale string `json:"scale"`
	// LeaseTTLMS is the lease deadline workers must renew within,
	// in milliseconds.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

// wireResult is the canonical over-the-wire encoding of one
// sweep.SeedResult. Field order is fixed by the struct, so
// json.Marshal(wireResult) is a canonical byte string and its SHA-256 is
// the task's content digest. Wall crosses as integer nanoseconds —
// float64 seconds would not round-trip bit-exactly.
type wireResult struct {
	Seed       int64   `json:"seed"`
	Detections int     `json:"detections"`
	Plaintext  int     `json:"plaintext"`
	ValidPct   float64 `json:"valid_pct"`
	HasValid   bool    `json:"has_valid"`
	EligPct    float64 `json:"elig_pct"`
	Alarms     int     `json:"alarms"`
	WallNS     int64   `json:"wall_ns"`
	Err        string  `json:"err,omitempty"`
}

// toWire converts a SeedResult for transport.
func toWire(r sweep.SeedResult) wireResult {
	w := wireResult{
		Seed:       r.Seed,
		Detections: r.Detections,
		Plaintext:  r.Plaintext,
		ValidPct:   r.ValidPct,
		HasValid:   r.HasValid,
		EligPct:    r.EligPct,
		Alarms:     r.Alarms,
		WallNS:     int64(r.Wall),
	}
	if r.Err != nil {
		w.Err = r.Err.Error()
	}
	return w
}

// fromWire restores the SeedResult. Error identity does not survive the
// wire — only the message does — which is all the sweep's rendering and
// exit-status paths ever use.
func (w wireResult) fromWire() sweep.SeedResult {
	r := sweep.SeedResult{
		Seed:       w.Seed,
		Detections: w.Detections,
		Plaintext:  w.Plaintext,
		ValidPct:   w.ValidPct,
		HasValid:   w.HasValid,
		EligPct:    w.EligPct,
		Alarms:     w.Alarms,
		Wall:       time.Duration(w.WallNS),
	}
	if w.Err != "" {
		r.Err = errors.New(w.Err)
	}
	return r
}

// EncodeResult renders a SeedResult in its canonical wire form; Digest of
// these bytes is what a completion must quote.
func EncodeResult(r sweep.SeedResult) []byte {
	data, err := json.Marshal(toWire(r))
	if err != nil {
		// wireResult contains only scalars; Marshal cannot fail.
		panic(fmt.Sprintf("distsweep: encoding result: %v", err))
	}
	return data
}

// Digest is the content digest quoted by completions: hex SHA-256.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// taskState is the lease lifecycle of one seed task.
type taskState int

const (
	taskPending taskState = iota
	taskLeased
	taskDone
)

// task is one seed's coordinator-side state.
type task struct {
	state      taskState
	generation int       // bumped on every (re-)issue; completions must match
	deadline   time.Time // lease expiry when leased
	worker     string
	result     sweep.SeedResult
	digest     string // digest of the accepted result
}

// Options configures a Coordinator.
type Options struct {
	// N is how many seed tasks to issue (seed indexes 1..N).
	N int
	// Scale is the opaque configuration tag echoed to workers in Spec.
	Scale string
	// LeaseTTL is how long a lease lives without renewal before the task
	// is re-issued. Default 30s; tests shrink it to force expiry.
	LeaseTTL time.Duration
	// Secret, when non-empty, requires every mutating request to carry a
	// valid X-Tripwire-Signature (hook.Sign over the body).
	Secret string
	// Progress, when non-nil, receives one sweep progress line per
	// accepted completion, in completion order, through a single
	// serializing writer goroutine (the same format and mechanism as the
	// in-process sweep).
	Progress io.Writer
	// Metrics, when non-nil, receives the tripwire_distsweep_* inventory.
	Metrics *obs.Registry
	// Rate and Burst configure the per-IP token-bucket limiter on the
	// control plane; Rate <= 0 disables limiting.
	Rate  float64
	Burst int
	// Now is the clock (test hook). Default time.Now.
	Now func() time.Time
}

// metrics is the tripwire_distsweep_* instrument set.
type metrics struct {
	leased     *obs.Counter
	completed  *obs.Counter
	reissued   *obs.Counter
	discarded  *obs.CounterVec
	seedsMilli *obs.Gauge
}

// discard reasons (the closed label set of
// tripwire_distsweep_completions_discarded_total).
const (
	discardStale     = "stale_generation"
	discardDuplicate = "duplicate"
	discardDigest    = "digest_mismatch"
)

// Coordinator owns a sweep's task set and aggregates accepted results in
// seed order. Serve it over HTTP with Handler.
type Coordinator struct {
	opts Options

	mu        sync.Mutex
	tasks     []task // index i holds seed index i+1
	remaining int
	workers   map[string]time.Time // worker name → last contact
	started   time.Time
	// Protocol accounting: authoritative (the obs instruments mirror
	// these, but a nil registry must not blind Status).
	reissued  int
	discarded int

	done     chan struct{}
	doneOnce sync.Once
	progress *sweep.ProgressWriter

	m metrics
}

// NewCoordinator builds the coordinator for an N-seed sweep.
func NewCoordinator(opts Options) (*Coordinator, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("distsweep: N must be positive, got %d", opts.N)
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 30 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	c := &Coordinator{
		opts:      opts,
		tasks:     make([]task, opts.N),
		remaining: opts.N,
		workers:   make(map[string]time.Time),
		started:   opts.Now(),
		done:      make(chan struct{}),
		progress:  sweep.NewProgressWriter(opts.Progress),
	}
	reg := opts.Metrics
	c.m.leased = reg.Counter("tripwire_distsweep_tasks_leased_total",
		"Seed-task leases issued to workers (including re-issues)")
	c.m.completed = reg.Counter("tripwire_distsweep_tasks_completed_total",
		"Seed tasks whose first valid completion was accepted")
	c.m.reissued = reg.Counter("tripwire_distsweep_tasks_reissued_total",
		"Seed tasks re-issued after a lease expired (worker lost or stalled)")
	c.m.discarded = reg.CounterVec("tripwire_distsweep_completions_discarded_total",
		"Completions rejected instead of aggregated", "reason",
		discardStale, discardDuplicate, discardDigest)
	c.m.seedsMilli = reg.Gauge("tripwire_distsweep_seeds_per_sec_milli",
		"Sweep throughput: accepted completions per wall-clock second, in thousandths")
	if reg != nil {
		reg.GaugeFunc("tripwire_distsweep_workers_live",
			"Workers heard from within the last three lease TTLs",
			c.liveWorkers)
	}
	return c, nil
}

// Spec describes the sweep to a joining worker.
func (c *Coordinator) Spec() Spec {
	return Spec{N: c.opts.N, Scale: c.opts.Scale, LeaseTTLMS: c.opts.LeaseTTL.Milliseconds()}
}

// liveWorkers counts workers heard from within three lease TTLs — the
// collection-time read behind tripwire_distsweep_workers_live.
func (c *Coordinator) liveWorkers() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	cutoff := c.opts.Now().Add(-3 * c.opts.LeaseTTL)
	var n int64
	for _, last := range c.workers {
		if last.After(cutoff) {
			n++
		}
	}
	return n
}

// touch records contact from a worker. Callers hold c.mu.
func (c *Coordinator) touch(worker string) {
	if worker != "" {
		c.workers[worker] = c.opts.Now()
	}
}

// expireLocked re-issues every leased task whose deadline has passed,
// bumping its generation so the lost worker's eventual completion is
// fenced off. Callers hold c.mu.
func (c *Coordinator) expireLocked(now time.Time) {
	for i := range c.tasks {
		t := &c.tasks[i]
		if t.state == taskLeased && now.After(t.deadline) {
			t.state = taskPending
			t.generation++
			t.worker = ""
			c.reissued++
			c.m.reissued.Inc()
		}
	}
}

// Lease hands out the lowest pending seed task. The second return is
// false when nothing is leasable right now: the caller distinguishes
// "sweep complete" (Done) from "poll again later".
func (c *Coordinator) Lease(worker string) (seedIndex, generation int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.touch(worker)
	c.expireLocked(now)
	for i := range c.tasks {
		t := &c.tasks[i]
		if t.state != taskPending {
			continue
		}
		if t.generation == 0 {
			t.generation = 1 // first issue
		}
		t.state = taskLeased
		t.deadline = now.Add(c.opts.LeaseTTL)
		t.worker = worker
		c.m.leased.Inc()
		return i + 1, t.generation, true
	}
	return 0, 0, false
}

// Renew extends the lease on (seedIndex, generation). A false return
// means the lease is gone — expired and re-issued, or already completed —
// and the worker should abandon the seed.
func (c *Coordinator) Renew(worker string, seedIndex, generation int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(worker)
	if seedIndex < 1 || seedIndex > len(c.tasks) {
		return false
	}
	t := &c.tasks[seedIndex-1]
	if t.state != taskLeased || t.generation != generation {
		return false
	}
	t.deadline = c.opts.Now().Add(c.opts.LeaseTTL)
	return true
}

// CompleteError discriminates rejected completions.
type CompleteError struct {
	Reason string // one of the discard reasons
}

func (e *CompleteError) Error() string {
	return "distsweep: completion discarded: " + e.Reason
}

// Complete ingests one worker's result for (seedIndex, generation):
// resultBytes is the canonical encoding (EncodeResult) and digest its
// claimed SHA-256. Duplicate and superseded-generation completions are
// discarded with a *CompleteError — the distributed sweep's idempotency
// point: re-running a seed can never double-count it.
func (c *Coordinator) Complete(worker string, seedIndex, generation int, resultBytes []byte, digest string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(worker)
	if seedIndex < 1 || seedIndex > len(c.tasks) {
		return fmt.Errorf("distsweep: seed index %d out of range 1..%d", seedIndex, len(c.tasks))
	}
	t := &c.tasks[seedIndex-1]
	if t.state == taskDone {
		c.discarded++
		c.m.discarded.With(discardDuplicate).Inc()
		return &CompleteError{Reason: discardDuplicate}
	}
	if t.generation != generation {
		c.discarded++
		c.m.discarded.With(discardStale).Inc()
		return &CompleteError{Reason: discardStale}
	}
	if got := Digest(resultBytes); got != digest {
		c.discarded++
		c.m.discarded.With(discardDigest).Inc()
		return &CompleteError{Reason: discardDigest}
	}
	var w wireResult
	if err := json.Unmarshal(resultBytes, &w); err != nil {
		c.discarded++
		c.m.discarded.With(discardDigest).Inc()
		return fmt.Errorf("distsweep: decoding result for seed %d: %w", seedIndex, err)
	}
	t.result = w.fromWire()
	t.digest = digest
	t.state = taskDone
	t.worker = worker
	c.remaining--
	c.m.completed.Inc()
	if elapsed := c.opts.Now().Sub(c.started).Seconds(); elapsed > 0 {
		completed := float64(len(c.tasks) - c.remaining)
		c.m.seedsMilli.Set(int64(completed / elapsed * 1000))
	}
	c.progress.Write(t.result)
	if c.remaining == 0 {
		c.doneOnce.Do(func() {
			c.progress.Close()
			close(c.done)
		})
	}
	return nil
}

// Done is closed once every seed task has an accepted result.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Remaining reports how many seed tasks still lack an accepted result.
func (c *Coordinator) Remaining() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remaining
}

// Outcome assembles the aggregate in seed order. It is valid once Done is
// closed; called earlier it returns the partial aggregate (incomplete
// seeds zero-valued).
func (c *Coordinator) Outcome() *sweep.Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := &sweep.Outcome{Results: make([]sweep.SeedResult, len(c.tasks))}
	for i, t := range c.tasks {
		out.Results[i] = t.result
	}
	return out
}

// Status is the coordinator's aggregate progress snapshot (GET /status).
type Status struct {
	N         int   `json:"n"`
	Pending   int   `json:"pending"`
	Leased    int   `json:"leased"`
	Done      int   `json:"done"`
	Reissued  int   `json:"reissued"`
	Discarded int   `json:"discarded"`
	Workers   int64 `json:"workers_live"`
}

// Status snapshots task-set progress from the coordinator's own
// accounting — it stays correct with no metrics registry configured.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	var s Status
	s.N = len(c.tasks)
	for _, t := range c.tasks {
		switch t.state {
		case taskPending:
			s.Pending++
		case taskLeased:
			s.Leased++
		case taskDone:
			s.Done++
		}
	}
	s.Reissued = c.reissued
	s.Discarded = c.discarded
	c.mu.Unlock()
	s.Workers = c.liveWorkers()
	return s
}
