package distsweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"tripwire/internal/hook"
	"tripwire/internal/obs"
	"tripwire/internal/registry"
)

// maxBody bounds control-plane request bodies; a SeedResult is a few
// hundred bytes, so 1 MiB is generous.
const maxBody = 1 << 20

// Wire request bodies. Every mutating request names its worker so the
// coordinator can account liveness, and quotes (seed_index, generation)
// so the lease fence applies.
type leaseRequest struct {
	Worker string `json:"worker"`
}

type leaseResponse struct {
	SeedIndex  int   `json:"seed_index"`
	Generation int   `json:"generation"`
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

type renewRequest struct {
	Worker     string `json:"worker"`
	SeedIndex  int    `json:"seed_index"`
	Generation int    `json:"generation"`
}

type completeRequest struct {
	Worker     string          `json:"worker"`
	SeedIndex  int             `json:"seed_index"`
	Generation int             `json:"generation"`
	Result     json.RawMessage `json:"result"`
	Digest     string          `json:"digest"`
}

// Handler builds the coordinator's HTTP control plane:
//
//	GET  /sweep      sweep spec (N, scale, lease TTL) → Spec
//	POST /lease      lease the next seed task → 200 leaseResponse,
//	                 204 nothing leasable right now (poll again),
//	                 410 sweep complete (worker should exit)
//	POST /renew      extend a held lease → 200, or 409 lease lost
//	POST /complete   submit a result → 200, 409 stale/duplicate
//	                 (discarded — the worker just moves on), 400 digest
//	                 or decode failure
//	GET  /status     task-set progress → Status
//	GET  /metrics, /metrics.json, /healthz   observability (internal/obs)
//
// When opts.Secret is set, every POST must carry X-Tripwire-Signature =
// hook.Sign(secret, body); bad or missing signatures get 401. The
// registry's per-IP token-bucket limiter wraps everything but /healthz
// when opts.Rate > 0.
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /sweep", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Spec())
	})

	mux.HandleFunc("POST /lease", signed(c, func(w http.ResponseWriter, r *http.Request, body []byte) {
		var req leaseRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		idx, gen, ok := c.Lease(req.Worker)
		if !ok {
			if c.Remaining() == 0 {
				writeError(w, http.StatusGone, "sweep complete")
				return
			}
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, leaseResponse{
			SeedIndex:  idx,
			Generation: gen,
			LeaseTTLMS: c.opts.LeaseTTL.Milliseconds(),
		})
	}))

	mux.HandleFunc("POST /renew", signed(c, func(w http.ResponseWriter, r *http.Request, body []byte) {
		var req renewRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		if !c.Renew(req.Worker, req.SeedIndex, req.Generation) {
			writeError(w, http.StatusConflict, "lease lost")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "renewed"})
	}))

	mux.HandleFunc("POST /complete", signed(c, func(w http.ResponseWriter, r *http.Request, body []byte) {
		var req completeRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		err := c.Complete(req.Worker, req.SeedIndex, req.Generation, req.Result, req.Digest)
		var ce *CompleteError
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, map[string]string{"status": "accepted"})
		case errors.As(err, &ce) && ce.Reason != discardDigest:
			// Stale generation or duplicate: the seed is (or will be) covered
			// by another completion; the worker should just move on.
			writeError(w, http.StatusConflict, err.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
	}))

	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})

	mux.Handle("/metrics", obs.Handler(c.opts.Metrics))
	mux.Handle("/metrics.json", obs.Handler(c.opts.Metrics))
	mux.Handle("/healthz", obs.Handler(c.opts.Metrics))

	var limiter *registry.RateLimiter
	if c.opts.Rate > 0 {
		limiter = registry.NewRateLimiter(c.opts.Rate, c.opts.Burst)
	}
	return limiter.Middleware(mux)
}

// signed wraps a mutating handler with body capture and, when a secret is
// configured, HMAC verification in the internal/hook signature format.
func signed(c *Coordinator, next func(http.ResponseWriter, *http.Request, []byte)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading body")
			return
		}
		if len(body) > maxBody {
			writeError(w, http.StatusRequestEntityTooLarge, "body too large")
			return
		}
		if c.opts.Secret != "" && !hook.Verify(c.opts.Secret, body, r.Header.Get("X-Tripwire-Signature")) {
			writeError(w, http.StatusUnauthorized, "bad or missing signature")
			return
		}
		next(w, r, body)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// Client is the worker side of the control plane: thin typed wrappers
// over the HTTP endpoints, signing request bodies when a secret is set.
type Client struct {
	// BaseURL is the coordinator root, e.g. "http://10.0.0.1:9090".
	BaseURL string
	// Secret must match the coordinator's; empty sends unsigned requests.
	Secret string
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (cl *Client) httpClient() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// errStatus decodes the control plane's {"error": ...} body into an error.
func errStatus(op string, resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e)
	if e.Error == "" {
		e.Error = resp.Status
	}
	return fmt.Errorf("distsweep: %s: %s", op, e.Error)
}

// post sends one signed POST and returns the response (caller closes).
func (cl *Client) post(path string, v any) (*http.Response, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, cl.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if cl.Secret != "" {
		req.Header.Set("X-Tripwire-Signature", hook.Sign(cl.Secret, body))
	}
	return cl.httpClient().Do(req)
}

// Spec fetches the sweep description (the join handshake).
func (cl *Client) Spec() (Spec, error) {
	resp, err := cl.httpClient().Get(cl.BaseURL + "/sweep")
	if err != nil {
		return Spec{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Spec{}, errStatus("join", resp)
	}
	var s Spec
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("distsweep: decoding spec: %w", err)
	}
	return s, nil
}

// Lease outcomes.
var (
	// ErrSweepDone reports the coordinator has every result it needs.
	ErrSweepDone = errors.New("distsweep: sweep complete")
	// ErrNoTask reports nothing is leasable right now (all tasks leased
	// out); the worker should poll again shortly.
	ErrNoTask = errors.New("distsweep: no task available")
	// ErrLeaseLost reports the coordinator fenced this lease off (expired
	// and re-issued, or completed by another worker).
	ErrLeaseLost = errors.New("distsweep: lease lost")
)

// Lease asks for the next seed task.
func (cl *Client) Lease(worker string) (leaseResponse, error) {
	resp, err := cl.post("/lease", leaseRequest{Worker: worker})
	if err != nil {
		return leaseResponse{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var lr leaseResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(&lr); err != nil {
			return leaseResponse{}, fmt.Errorf("distsweep: decoding lease: %w", err)
		}
		return lr, nil
	case http.StatusNoContent:
		return leaseResponse{}, ErrNoTask
	case http.StatusGone:
		return leaseResponse{}, ErrSweepDone
	default:
		return leaseResponse{}, errStatus("lease", resp)
	}
}

// Renew extends a held lease; ErrLeaseLost means stop working the seed.
func (cl *Client) Renew(worker string, seedIndex, generation int) error {
	resp, err := cl.post("/renew", renewRequest{Worker: worker, SeedIndex: seedIndex, Generation: generation})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return ErrLeaseLost
	default:
		return errStatus("renew", resp)
	}
}

// Complete submits one seed's canonical result bytes under the lease
// fence. ErrLeaseLost means the completion was discarded (stale or
// duplicate) — the sweep no longer needs it, which a worker treats as
// success for its own control flow.
func (cl *Client) Complete(worker string, seedIndex, generation int, resultBytes []byte) error {
	resp, err := cl.post("/complete", completeRequest{
		Worker:     worker,
		SeedIndex:  seedIndex,
		Generation: generation,
		Result:     json.RawMessage(resultBytes),
		Digest:     Digest(resultBytes),
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return ErrLeaseLost
	default:
		return errStatus("complete", resp)
	}
}
