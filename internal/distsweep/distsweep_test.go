package distsweep_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tripwire"
	"tripwire/internal/distsweep"
	"tripwire/internal/obs"
	"tripwire/internal/sweep"
)

// testConfig is the quick study the distributed tests run per seed —
// small enough that a coordinator, workers, and a serial reference sweep
// all fit in one test, but still the full pipeline end to end.
func testConfig(seed int64) tripwire.Config {
	cfg := tripwire.SmallConfig()
	cfg.Seed = seed * 101
	cfg.Web.NumSites = 150
	cfg.NumUnused = 120
	return cfg
}

// zeroWall strips the wall-clock field, the single SeedResult field
// excluded from the byte-identity contract.
func zeroWall(rs []sweep.SeedResult) []sweep.SeedResult {
	out := make([]sweep.SeedResult, len(rs))
	copy(out, rs)
	for i := range out {
		out[i].Wall = 0
	}
	return out
}

func renderNormalized(oc *sweep.Outcome, label string) string {
	return (&sweep.Outcome{Results: zeroWall(oc.Results)}).Render(label)
}

// TestDistSweepByteIdentical is the core acceptance smoke: a coordinator
// plus two workers over loopback HTTP produce an aggregate byte-identical
// to serial sweep.Run over the same seeds. This is also the `make ci`
// distributed-sweep smoke.
func TestDistSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("several quick pilots in -short mode")
	}
	const n = 2
	serial := sweep.Run(sweep.Options{N: n, ConfigFor: testConfig})
	if err := serial.Failed(); err != nil {
		t.Fatalf("serial reference sweep failed: %v", err)
	}

	var progress bytes.Buffer
	reg := obs.New()
	coord, err := distsweep.NewCoordinator(distsweep.Options{
		N:        n,
		Scale:    "test",
		Secret:   "sweep-secret",
		Progress: &progress,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(distsweep.Handler(coord))
	defer srv.Close()

	client := &distsweep.Client{BaseURL: srv.URL, Secret: "sweep-secret"}
	spec, err := client.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != n || spec.Scale != "test" {
		t.Fatalf("spec handshake returned %+v", spec)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			w := &distsweep.Worker{Client: client, Name: name, ConfigFor: testConfig, Poll: 20 * time.Millisecond}
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}(name)
	}
	wg.Wait()
	select {
	case <-coord.Done():
	default:
		t.Fatal("workers exited but coordinator is not done")
	}

	dist := coord.Outcome()
	if err := dist.Failed(); err != nil {
		t.Fatalf("distributed sweep failed: %v", err)
	}
	a, b := renderNormalized(serial, "test"), renderNormalized(dist, "test")
	if a != b {
		t.Fatalf("distributed aggregate diverges from serial:\nserial:\n%s\ndistributed:\n%s", a, b)
	}
	if got := strings.Count(progress.String(), "\n"); got != n {
		t.Fatalf("coordinator progress stream has %d lines, want %d:\n%s", got, n, progress.String())
	}
	st := coord.Status()
	if st.Done != n || st.Reissued != 0 || st.Discarded != 0 {
		t.Fatalf("unexpected status after clean run: %+v", st)
	}
}

// TestDistSweepWorkerLossByteIdentical injects a worker crash mid-seed:
// the first worker leases seed 1, runs it partway, and dies without
// completing. The lease expires, the coordinator re-issues the seed, a
// healthy worker completes everything, and the late stale-generation
// completion from the dead worker is discarded — with the final aggregate
// still byte-identical to serial.
func TestDistSweepWorkerLossByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("several quick pilots in -short mode")
	}
	const n = 2
	serial := sweep.Run(sweep.Options{N: n, ConfigFor: testConfig})
	if err := serial.Failed(); err != nil {
		t.Fatalf("serial reference sweep failed: %v", err)
	}

	coord, err := distsweep.NewCoordinator(distsweep.Options{
		N:        n,
		Scale:    "test",
		LeaseTTL: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(distsweep.Handler(coord))
	defer srv.Close()
	client := &distsweep.Client{BaseURL: srv.URL}

	// The doomed worker: lease seed 1, run the study for a moment, then
	// die (context cancelled, no completion, no further renewals).
	lease, err := client.Lease("doomed")
	if err != nil {
		t.Fatal(err)
	}
	if lease.SeedIndex != 1 || lease.Generation != 1 {
		t.Fatalf("first lease = %+v, want seed 1 generation 1", lease)
	}
	crashCtx, crash := context.WithCancel(context.Background())
	crashed := make(chan sweep.SeedResult, 1)
	go func() {
		crashed <- sweep.RunSeedContext(crashCtx, testConfig(int64(lease.SeedIndex)))
	}()
	time.Sleep(50 * time.Millisecond)
	crash() // the worker process dies mid-seed

	// A healthy worker drains the sweep: seed 2 immediately, then seed 1
	// again once the dead worker's lease expires and is re-issued.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	w := &distsweep.Worker{Client: client, Name: "healthy", ConfigFor: testConfig, Poll: 25 * time.Millisecond}
	if err := w.Run(ctx); err != nil {
		t.Fatalf("healthy worker: %v", err)
	}
	select {
	case <-coord.Done():
	case <-time.After(time.Minute):
		t.Fatal("sweep did not complete after worker loss")
	}

	// The dead worker's ghost reports in late with the superseded
	// generation; the fence must discard it.
	ghost := <-crashed
	err = client.Complete("doomed", 1, 1, distsweep.EncodeResult(ghost))
	if !errors.Is(err, distsweep.ErrLeaseLost) {
		t.Fatalf("stale-generation completion: got %v, want ErrLeaseLost", err)
	}

	st := coord.Status()
	if st.Reissued < 1 {
		t.Fatalf("coordinator never re-issued the lost seed: %+v", st)
	}
	if st.Discarded < 1 {
		t.Fatalf("stale completion was not counted discarded: %+v", st)
	}
	dist := coord.Outcome()
	if err := dist.Failed(); err != nil {
		t.Fatalf("distributed sweep failed: %v", err)
	}
	a, b := renderNormalized(serial, "test"), renderNormalized(dist, "test")
	if a != b {
		t.Fatalf("aggregate diverges from serial after worker loss:\nserial:\n%s\ndistributed:\n%s", a, b)
	}
}

// TestLeaseProtocol drives the lease state machine directly under a fake
// clock: issue, expiry, re-issue with a bumped generation, fencing of the
// old generation, and exactly-once completion.
func TestLeaseProtocol(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	coord, err := distsweep.NewCoordinator(distsweep.Options{
		N:        2,
		LeaseTTL: 10 * time.Second,
		Now:      clock,
	})
	if err != nil {
		t.Fatal(err)
	}

	idx, gen, ok := coord.Lease("a")
	if !ok || idx != 1 || gen != 1 {
		t.Fatalf("first lease = (%d, %d, %v)", idx, gen, ok)
	}
	idx2, gen2, ok := coord.Lease("b")
	if !ok || idx2 != 2 || gen2 != 1 {
		t.Fatalf("second lease = (%d, %d, %v)", idx2, gen2, ok)
	}
	if _, _, ok := coord.Lease("c"); ok {
		t.Fatal("third lease succeeded with every task leased out")
	}

	// Worker a renews inside the TTL; worker b goes silent. Sixteen
	// seconds in, a's renewed lease holds (deadline 18s) while b's
	// original deadline (10s) has passed — so the next lease request gets
	// exactly seed 2, re-issued with the generation bumped.
	now = now.Add(8 * time.Second)
	if !coord.Renew("a", 1, 1) {
		t.Fatal("renew within TTL failed")
	}
	now = now.Add(8 * time.Second)
	idx3, gen3, ok := coord.Lease("c")
	if !ok || idx3 != 2 || gen3 != 2 {
		t.Fatalf("re-issued lease = (%d, %d, %v), want seed 2 generation 2 (and never seed 1, whose renewal holds)", idx3, gen3, ok)
	}
	if _, _, ok := coord.Lease("c"); ok {
		t.Fatal("renewed lease was stolen")
	}
	if coord.Renew("b", 2, 1) {
		t.Fatal("superseded generation renewed")
	}

	// b's late completion is fenced; c's lands.
	res := distsweep.EncodeResult(sweep.SeedResult{Seed: 202, Detections: 3})
	err = coord.Complete("b", 2, 1, res, distsweep.Digest(res))
	var ce *distsweep.CompleteError
	if !errors.As(err, &ce) {
		t.Fatalf("stale completion error = %v", err)
	}
	if err := coord.Complete("c", 2, 2, res, distsweep.Digest(res)); err != nil {
		t.Fatalf("valid completion rejected: %v", err)
	}
	// A duplicate after acceptance is discarded too.
	if err := coord.Complete("c", 2, 2, res, distsweep.Digest(res)); !errors.As(err, &ce) {
		t.Fatalf("duplicate completion error = %v", err)
	}
	// Corrupted payloads never enter the aggregate.
	res1 := distsweep.EncodeResult(sweep.SeedResult{Seed: 101})
	if err := coord.Complete("a", 1, 1, res1, distsweep.Digest(append(res1, ' '))); !errors.As(err, &ce) {
		t.Fatalf("digest mismatch error = %v", err)
	}
	if err := coord.Complete("a", 1, 1, res1, distsweep.Digest(res1)); err != nil {
		t.Fatalf("final completion rejected: %v", err)
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("coordinator not done after both seeds completed")
	}
	if got := coord.Outcome().Results[1].Detections; got != 3 {
		t.Fatalf("aggregated result lost data: detections = %d, want 3", got)
	}
}

// TestDistSweepAuth pins the control-plane authentication: with a secret
// configured, unsigned and mis-signed mutating requests are rejected and
// change nothing.
func TestDistSweepAuth(t *testing.T) {
	coord, err := distsweep.NewCoordinator(distsweep.Options{N: 1, Scale: "test", Secret: "right"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(distsweep.Handler(coord))
	defer srv.Close()

	for _, secret := range []string{"", "wrong"} {
		bad := &distsweep.Client{BaseURL: srv.URL, Secret: secret}
		if _, err := bad.Lease("intruder"); err == nil || errors.Is(err, distsweep.ErrNoTask) || errors.Is(err, distsweep.ErrSweepDone) {
			t.Fatalf("lease with secret %q succeeded: %v", secret, err)
		}
	}
	if st := coord.Status(); st.Leased != 0 {
		t.Fatalf("unauthenticated request leased a task: %+v", st)
	}
	// The spec handshake is read-only and stays open (workers need it to
	// discover the scale before they can sign anything meaningful).
	good := &distsweep.Client{BaseURL: srv.URL, Secret: "right"}
	if _, err := good.Spec(); err != nil {
		t.Fatalf("spec handshake: %v", err)
	}
	if _, err := good.Lease("worker"); err != nil {
		t.Fatalf("signed lease: %v", err)
	}
}

// TestDistSweepMetrics checks the tripwire_distsweep_* inventory moves:
// leases, completions, re-issues, and discards all count, and worker
// liveness tracks contact recency.
func TestDistSweepMetrics(t *testing.T) {
	now := time.Unix(5000, 0)
	reg := obs.New()
	coord, err := distsweep.NewCoordinator(distsweep.Options{
		N:        1,
		LeaseTTL: time.Second,
		Metrics:  reg,
		Now:      func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := coord.Lease("w"); !ok {
		t.Fatal("lease failed")
	}
	now = now.Add(2 * time.Second) // expire
	idx, gen, ok := coord.Lease("w")
	if !ok || idx != 1 || gen != 2 {
		t.Fatalf("re-lease = (%d, %d, %v)", idx, gen, ok)
	}
	res := distsweep.EncodeResult(sweep.SeedResult{Seed: 101})
	if err := coord.Complete("w", 1, 1, res, distsweep.Digest(res)); err == nil {
		t.Fatal("stale completion accepted")
	}
	if err := coord.Complete("w", 1, 2, res, distsweep.Digest(res)); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	snap := map[string]float64{}
	for name, v := range s.Counters {
		snap[name] = v
	}
	for name, v := range s.Gauges {
		snap[name] = v
	}
	want := map[string]float64{
		"tripwire_distsweep_tasks_leased_total":                                       2,
		"tripwire_distsweep_tasks_completed_total":                                    1,
		"tripwire_distsweep_tasks_reissued_total":                                     1,
		"tripwire_distsweep_completions_discarded_total{reason=\"stale_generation\"}": 1,
		"tripwire_distsweep_workers_live":                                             1,
	}
	for name, v := range want {
		if snap[name] != v {
			t.Errorf("%s = %v, want %v (snapshot %v)", name, snap[name], v, snap)
		}
	}
}
