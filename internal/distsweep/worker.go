package distsweep

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tripwire"
	"tripwire/internal/sweep"
)

// Worker is the execution side of a distributed sweep: it leases seed
// tasks from a coordinator, runs each through the ordinary study pipeline
// (sweep.RunSeedContext → tripwire.New(...).RunContext), and submits the
// canonical result bytes with their digest. It renews its lease on a
// heartbeat while the study runs; losing the lease (the coordinator
// re-issued the seed) cancels the study mid-flight so the worker moves on
// instead of finishing work that is fenced off anyway.
type Worker struct {
	// Client reaches the coordinator.
	Client *Client
	// Name identifies this worker in leases and liveness accounting.
	Name string
	// ConfigFor builds the study configuration for one seed index (1..N),
	// exactly as sweep.Options.ConfigFor does. It must be the same
	// function the serial sweep would use — that is the whole byte-
	// identity argument.
	ConfigFor func(seed int64) tripwire.Config
	// Poll is how long to wait before re-asking when every task is leased
	// out. Default 200ms.
	Poll time.Duration
	// OnLease, when non-nil, observes each leased seed index before the
	// study starts. Tests use it to crash a worker mid-seed.
	OnLease func(seedIndex int)
}

// Run leases and executes seed tasks until the coordinator reports the
// sweep complete (nil return), the context is cancelled, or the control
// plane errors persistently.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil || w.ConfigFor == nil {
		return errors.New("distsweep: worker needs Client and ConfigFor")
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := w.Client.Lease(w.Name)
		switch {
		case errors.Is(err, ErrSweepDone):
			return nil
		case errors.Is(err, ErrNoTask):
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
			continue
		case err != nil:
			return fmt.Errorf("distsweep: worker %q: %w", w.Name, err)
		}
		if w.OnLease != nil {
			w.OnLease(lease.SeedIndex)
		}
		if err := w.runTask(ctx, lease); err != nil {
			return err
		}
	}
}

// runTask executes one leased seed under heartbeat renewal and submits
// the result.
func (w *Worker) runTask(ctx context.Context, lease leaseResponse) error {
	// The study context: cancelled when the worker shuts down or the
	// heartbeat discovers the lease is gone.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	ttl := time.Duration(lease.LeaseTTLMS) * time.Millisecond
	beat := ttl / 3
	if beat <= 0 {
		beat = time.Second
	}
	lost := make(chan struct{})
	stopBeat := make(chan struct{})
	go func() {
		ticker := time.NewTicker(beat)
		defer ticker.Stop()
		for {
			select {
			case <-stopBeat:
				return
			case <-runCtx.Done():
				return
			case <-ticker.C:
				if err := w.Client.Renew(w.Name, lease.SeedIndex, lease.Generation); errors.Is(err, ErrLeaseLost) {
					close(lost)
					cancel()
					return
				}
				// Transient renew errors are ignored: the lease either
				// survives to the next beat or expires, and expiry is safe —
				// the seed is simply re-issued.
			}
		}
	}()

	result := sweep.RunSeedContext(runCtx, w.ConfigFor(int64(lease.SeedIndex)))
	close(stopBeat)

	select {
	case <-lost:
		// Fenced off: the result (possibly a cancelled prefix) must not be
		// submitted; the re-issued lease owns the seed now.
		return nil
	default:
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	err := w.Client.Complete(w.Name, lease.SeedIndex, lease.Generation, EncodeResult(result))
	if errors.Is(err, ErrLeaseLost) {
		// Discarded as stale or duplicate — another completion covers the
		// seed, which is success as far as this worker is concerned.
		return nil
	}
	return err
}
