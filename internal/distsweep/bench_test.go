package distsweep_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tripwire"
	"tripwire/internal/distsweep"
)

// benchConfig mirrors sweep_test.BenchSweepConfig (external test packages
// cannot import one another): a latency-bound study — per-page RTT
// emulated with Config.NetLatency, internal pools pinned to one goroutine
// — so sweep-level fan-out is the only concurrency and the measured
// speedup is latency overlap, which scales with worker count even on a
// single-core CI box. Keeping the two configs identical makes
// BenchmarkDistSweep/workers=N directly comparable to
// BenchmarkSweep/parallel=N: the gap between them is the HTTP control
// plane's overhead, nothing else.
func benchConfig(seed int64) tripwire.Config {
	cfg := tripwire.SmallConfig()
	cfg.Seed = seed * 101
	cfg.Web.NumSites = 150
	cfg.NumUnused = 120
	cfg.NetLatency = 8 * time.Millisecond
	cfg.CrawlWorkers = 1
	cfg.TimelineWorkers = 1
	return cfg
}

// BenchmarkDistSweep measures distributed sweep throughput (seeds/s) with
// 1, 2, and 4 workers leasing seeds from one coordinator over loopback
// HTTP. One op is a whole sweep: coordinator boot, worker join, every
// seed leased, run, and aggregated.
func BenchmarkDistSweep(b *testing.B) {
	const seeds = 4
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				coord, err := distsweep.NewCoordinator(distsweep.Options{
					N:        seeds,
					Scale:    "bench",
					LeaseTTL: time.Minute,
				})
				if err != nil {
					b.Fatal(err)
				}
				srv := httptest.NewServer(distsweep.Handler(coord))
				var wg sync.WaitGroup
				errs := make([]error, workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						worker := &distsweep.Worker{
							Client:    &distsweep.Client{BaseURL: srv.URL},
							Name:      fmt.Sprintf("w%d", w),
							ConfigFor: benchConfig,
							Poll:      5 * time.Millisecond,
						}
						errs[w] = worker.Run(context.Background())
					}(w)
				}
				wg.Wait()
				srv.Close()
				for w, err := range errs {
					if err != nil {
						b.Fatalf("worker %d: %v", w, err)
					}
				}
				if err := coord.Outcome().Failed(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*seeds)/b.Elapsed().Seconds(), "seeds/s")
		})
	}
}
