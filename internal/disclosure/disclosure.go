// Package disclosure reproduces the paper's §6.3 responsible-disclosure
// process: for every detected compromise, discover contact addresses (the
// site's own contact page, the domain-WHOIS registrant, and common
// security aliases), send a notification, and track whether and how the
// site responds. The paper's experience — a third of sites responding, one
// corroboration, disputes with no alternative explanation, dead MX records
// and expired WHOIS domains — is reproduced from each site's generated
// response profile.
package disclosure

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tripwire/internal/browser"
	"tripwire/internal/htmldom"
	"tripwire/internal/simclock"
	"tripwire/internal/webgen"
)

// Outcome is the final state of one site's notification.
type Outcome int

const (
	// OutcomeNoResponse: messages delivered, nobody answered.
	OutcomeNoResponse Outcome = iota
	// OutcomeBounced: no deliverable address existed (no MX, expired
	// WHOIS domain, no published contact).
	OutcomeBounced
	// OutcomeResponded: a human answered; see the Reaction.
	OutcomeResponded
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeNoResponse:
		return "no response"
	case OutcomeBounced:
		return "undeliverable"
	case OutcomeResponded:
		return "responded"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Notification is the disclosure record for one site.
type Notification struct {
	Domain    string
	SentAt    time.Time
	Addresses []string // every address the first message went to
	Outcome   Outcome
	Reaction  webgen.Reaction
	// RespondedAfter is the first-response latency (zero unless responded).
	RespondedAfter time.Duration
	// FollowUps counts messages exchanged after the first response.
	FollowUps int
}

// commonAliases are the guessed addresses the paper CC'd ("emailing common
// email addresses that might be relevant, e.g. security@, webmaster@").
var commonAliases = []string{"security", "webmaster", "abuse", "support"}

// MailChecker answers whether a domain can receive mail at all; the DNS
// resolver implements it (MX lookup). When nil, the campaign falls back to
// the site's ground-truth NoMX flag.
type MailChecker interface {
	CanReceiveMail(domain string) bool
}

// Campaign runs disclosures against a synthetic web on the virtual clock.
type Campaign struct {
	Universe *webgen.Universe
	Sched    *simclock.Scheduler
	// Browser fetches contact pages; a fresh in-process session is fine.
	Browser *browser.Client
	// DNS, when set, performs the MX deliverability check.
	DNS MailChecker

	notifications []*Notification
}

// NewCampaign returns a disclosure campaign over universe.
func NewCampaign(universe *webgen.Universe, sched *simclock.Scheduler) *Campaign {
	return &Campaign{
		Universe: universe,
		Sched:    sched,
		Browser:  browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: universe})),
	}
}

// DiscoverAddresses assembles the recipient set for a domain the way the
// paper did: scrape the live contact page, read domain WHOIS, and add
// common aliases. "In each case, we emailed the complete set of addresses
// in case any individual address was invalid."
func (c *Campaign) DiscoverAddresses(domain string) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(addr string) {
		addr = strings.ToLower(strings.TrimSpace(addr))
		if addr != "" && strings.Contains(addr, "@") && !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	// 1. The site's own contact page (a real fetch and DOM walk).
	if page, err := c.Browser.Get("http://" + domain + "/contact"); err == nil && page.OK() {
		page.DOM.Walk(func(n *htmldom.Node) bool {
			if n.Tag == "a" {
				if href, ok := n.Attr("href"); ok {
					if addr, found := strings.CutPrefix(href, "mailto:"); found {
						add(addr)
					}
				}
			}
			return true
		})
	}
	// 2. Domain WHOIS registrant (skipping expired contact domains).
	if w, ok := c.Universe.Whois(domain); ok && !w.Expired {
		add(w.Registrant)
	}
	// 3. Common aliases.
	for _, alias := range commonAliases {
		add(alias + "@" + domain)
	}
	return out
}

// Notify sends the first disclosure message to domain at the current
// virtual time and schedules the site's (possible) response.
func (c *Campaign) Notify(domain string) *Notification {
	now := c.Sched.Clock().Now()
	n := &Notification{Domain: domain, SentAt: now}
	c.notifications = append(c.notifications, n)

	site, ok := c.Universe.Site(domain)
	if !ok {
		n.Outcome = OutcomeBounced
		return n
	}
	deliverable := !site.NoMX
	if c.DNS != nil {
		deliverable = c.DNS.CanReceiveMail(domain)
	}
	if !deliverable {
		// Site J: "no MX record" — nothing is deliverable at the domain.
		n.Outcome = OutcomeBounced
		return n
	}
	n.Addresses = c.DiscoverAddresses(domain)
	if len(n.Addresses) == 0 {
		n.Outcome = OutcomeBounced
		return n
	}
	if !site.Responds {
		n.Outcome = OutcomeNoResponse
		return n
	}
	c.Sched.After(site.ResponseDelay, "disclosure response from "+domain, func(at time.Time) {
		n.Outcome = OutcomeResponded
		n.Reaction = site.Reaction
		n.RespondedAfter = at.Sub(n.SentAt)
		// The paper followed up with methodology and specifics; responsive
		// sites exchanged a handful of messages (calls omitted).
		switch site.Reaction {
		case webgen.ReactAutoTicket:
			n.FollowUps = 0
		case webgen.ReactCorroborate, webgen.ReactAcknowledge:
			n.FollowUps = 3
		default:
			n.FollowUps = 2
		}
	})
	return n
}

// Notifications returns all records, ordered by domain for stable output.
func (c *Campaign) Notifications() []*Notification {
	out := make([]*Notification, len(c.notifications))
	copy(out, c.notifications)
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Summary aggregates a campaign the way §6.3 reports it.
type Summary struct {
	Notified     int
	Responded    int
	Bounced      int
	Corroborated int
	Disputed     int
	Acknowledged int
	AutoTicket   int
	// FastestResponse / SlowestResponse bound first-reply latency among
	// responders.
	FastestResponse, SlowestResponse time.Duration
}

// Summarize rolls up the campaign.
func Summarize(notifications []*Notification) Summary {
	s := Summary{}
	for _, n := range notifications {
		s.Notified++
		switch n.Outcome {
		case OutcomeBounced:
			s.Bounced++
		case OutcomeResponded:
			s.Responded++
			if s.FastestResponse == 0 || n.RespondedAfter < s.FastestResponse {
				s.FastestResponse = n.RespondedAfter
			}
			if n.RespondedAfter > s.SlowestResponse {
				s.SlowestResponse = n.RespondedAfter
			}
			switch n.Reaction {
			case webgen.ReactCorroborate:
				s.Corroborated++
			case webgen.ReactDispute:
				s.Disputed++
			case webgen.ReactAcknowledge:
				s.Acknowledged++
			case webgen.ReactAutoTicket:
				s.AutoTicket++
			}
		}
	}
	return s
}

// Render formats the §6.3 disclosure summary.
func Render(s Summary) string {
	var b strings.Builder
	b.WriteString("Disclosure outcomes (paper §6.3)\n")
	fmt.Fprintf(&b, "  Sites notified:            %d\n", s.Notified)
	fmt.Fprintf(&b, "  Responded:                 %d\n", s.Responded)
	fmt.Fprintf(&b, "  No response:               %d\n", s.Notified-s.Responded-s.Bounced)
	fmt.Fprintf(&b, "  Undeliverable:             %d (no MX / dead addresses)\n", s.Bounced)
	if s.Responded > 0 {
		fmt.Fprintf(&b, "  First-reply latency:       %s .. %s\n",
			s.FastestResponse.Round(time.Minute), s.SlowestResponse.Round(time.Minute))
	}
	fmt.Fprintf(&b, "  Corroborated breach:       %d\n", s.Corroborated)
	fmt.Fprintf(&b, "  Disputed, no alternative:  %d\n", s.Disputed)
	fmt.Fprintf(&b, "  Acknowledged:              %d\n", s.Acknowledged)
	fmt.Fprintf(&b, "  Swallowed by ticketing:    %d\n", s.AutoTicket)
	return b.String()
}
