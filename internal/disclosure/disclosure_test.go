package disclosure

import (
	"strings"
	"testing"
	"time"

	"tripwire/internal/simclock"
	"tripwire/internal/webgen"
)

var t0 = time.Date(2016, 9, 7, 0, 0, 0, 0, time.UTC)

func fixture() (*webgen.Universe, *Campaign, *simclock.Scheduler) {
	cfg := webgen.DefaultConfig()
	cfg.NumSites = 400
	u := webgen.Generate(cfg)
	sched := simclock.NewScheduler(simclock.New(t0))
	return u, NewCampaign(u, sched), sched
}

// findSite locates a site matching pred, mutating is allowed by callers.
func findSite(t *testing.T, u *webgen.Universe, pred func(*webgen.Site) bool) *webgen.Site {
	t.Helper()
	for _, s := range u.Sites() {
		if pred(s) {
			return s
		}
	}
	t.Fatal("no matching site in universe")
	return nil
}

func TestDiscoverAddressesFromContactPage(t *testing.T) {
	u, c, _ := fixture()
	site := findSite(t, u, func(s *webgen.Site) bool {
		return !s.LoadFailure && s.ContactEmail != "" && !s.WhoisExpired
	})
	addrs := c.DiscoverAddresses(site.Domain)
	has := func(a string) bool {
		for _, x := range addrs {
			if x == strings.ToLower(a) {
				return true
			}
		}
		return false
	}
	if !has(site.ContactEmail) {
		t.Fatalf("contact-page address %q not discovered in %v", site.ContactEmail, addrs)
	}
	if !has(site.WhoisEmail) {
		t.Fatalf("WHOIS registrant %q not discovered", site.WhoisEmail)
	}
	if !has("security@" + site.Domain) {
		t.Fatal("common alias security@ missing")
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("duplicate address %q", a)
		}
		seen[a] = true
	}
}

func TestDiscoverSkipsExpiredWhois(t *testing.T) {
	u, c, _ := fixture()
	site := findSite(t, u, func(s *webgen.Site) bool { return !s.LoadFailure })
	site.WhoisExpired = true
	for _, a := range c.DiscoverAddresses(site.Domain) {
		if a == site.WhoisEmail {
			t.Fatalf("expired WHOIS address %q still targeted (site M's squatted domain)", a)
		}
	}
}

func TestNotifyResponder(t *testing.T) {
	u, c, sched := fixture()
	site := findSite(t, u, func(s *webgen.Site) bool { return !s.LoadFailure && !s.NoMX })
	site.Responds = true
	site.ResponseDelay = 45 * time.Minute
	site.Reaction = webgen.ReactCorroborate

	n := c.Notify(site.Domain)
	if n.Outcome != OutcomeNoResponse {
		t.Fatalf("pre-response outcome = %v", n.Outcome)
	}
	sched.RunUntil(t0.Add(24 * time.Hour))
	if n.Outcome != OutcomeResponded || n.Reaction != webgen.ReactCorroborate {
		t.Fatalf("outcome = %v reaction = %v", n.Outcome, n.Reaction)
	}
	if n.RespondedAfter != 45*time.Minute {
		t.Fatalf("RespondedAfter = %v", n.RespondedAfter)
	}
	if n.FollowUps == 0 {
		t.Fatal("corroborating site exchanged no follow-ups")
	}
}

func TestNotifyNoMX(t *testing.T) {
	u, c, sched := fixture()
	site := findSite(t, u, func(s *webgen.Site) bool { return !s.LoadFailure })
	site.NoMX = true
	site.Responds = false
	n := c.Notify(site.Domain)
	sched.RunUntil(t0.Add(time.Hour))
	if n.Outcome != OutcomeBounced {
		t.Fatalf("no-MX site outcome = %v, want bounced (paper's site J)", n.Outcome)
	}
}

func TestNotifyNonResponder(t *testing.T) {
	u, c, sched := fixture()
	site := findSite(t, u, func(s *webgen.Site) bool { return !s.LoadFailure && !s.NoMX })
	site.Responds = false
	n := c.Notify(site.Domain)
	sched.RunUntil(t0.Add(30 * 24 * time.Hour))
	if n.Outcome != OutcomeNoResponse {
		t.Fatalf("outcome = %v", n.Outcome)
	}
}

func TestSummarizeAndRender(t *testing.T) {
	u, c, sched := fixture()
	count := 0
	for _, s := range u.Sites() {
		if s.LoadFailure {
			continue
		}
		c.Notify(s.Domain)
		count++
		if count == 18 { // the paper disclosed to 18 sites
			break
		}
	}
	sched.RunUntil(t0.Add(60 * 24 * time.Hour))
	sum := Summarize(c.Notifications())
	if sum.Notified != 18 {
		t.Fatalf("Notified = %d", sum.Notified)
	}
	if sum.Responded+sum.Bounced > sum.Notified {
		t.Fatalf("inconsistent summary: %+v", sum)
	}
	if sum.Responded > 0 && sum.FastestResponse > sum.SlowestResponse {
		t.Fatalf("latency bounds inverted: %+v", sum)
	}
	out := Render(sum)
	for _, want := range []string{"Sites notified", "Responded", "Corroborated"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestNotificationsSorted(t *testing.T) {
	u, c, _ := fixture()
	sites := u.Sites()
	c.Notify(sites[5].Domain)
	c.Notify(sites[1].Domain)
	c.Notify(sites[3].Domain)
	ns := c.Notifications()
	for i := 1; i < len(ns); i++ {
		if ns[i-1].Domain > ns[i].Domain {
			t.Fatalf("notifications unsorted: %s > %s", ns[i-1].Domain, ns[i].Domain)
		}
	}
}
