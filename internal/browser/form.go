package browser

import (
	"fmt"
	"net/url"
	"strings"

	"tripwire/internal/htmldom"
)

// Field is one fillable control in a form, with the contextual text a
// heuristic can use to guess its meaning: name, id, label, placeholder.
type Field struct {
	Node        *htmldom.Node
	Tag         string // input, select, textarea
	Type        string // text, password, email, checkbox, hidden, submit...
	Name        string
	Value       string // default value from the markup
	Label       string // associated visible label text, if discoverable
	Placeholder string
	Required    bool
	Options     []string // select options (values)

	// ctx memoizes Context(): field attributes never change after
	// extraction, and the crawler's classifier asks for the context of the
	// same field repeatedly (once per scoring pass).
	ctx   string
	ctxOK bool
}

// Form is one parsed <form>.
type Form struct {
	Node   *htmldom.Node
	Action *url.URL
	Method string // GET or POST, upper-case
	Fields []Field
}

// Forms extracts every form on the page, resolving actions against the
// page URL and associating labels with controls the way a rendering engine
// would: <label for=id>, wrapping <label>, or the nearest preceding label
// in the same container.
func (p *Page) Forms() []*Form {
	var out []*Form
	for _, f := range p.DOM.ElementsByTag("form") {
		form := &Form{Node: f, Method: strings.ToUpper(f.AttrOr("method", "GET"))}
		if form.Method != "POST" {
			form.Method = "GET"
		}
		action := f.AttrOr("action", "")
		if u, err := p.URL.Parse(action); err == nil {
			form.Action = u
		} else {
			form.Action = p.URL
		}
		labelFor := labelIndex(f)
		f.Walk(func(n *htmldom.Node) bool {
			switch n.Tag {
			case "input", "select", "textarea":
				form.Fields = append(form.Fields, makeField(n, labelFor))
			}
			return true
		})
		out = append(out, form)
	}
	return out
}

// labelIndex maps control ids to label text within a form.
func labelIndex(form *htmldom.Node) map[string]string {
	idx := make(map[string]string)
	for _, l := range form.ElementsByTag("label") {
		if id, ok := l.Attr("for"); ok && id != "" {
			idx[id] = l.Text()
		}
	}
	return idx
}

func makeField(n *htmldom.Node, labelFor map[string]string) Field {
	fld := Field{
		Node:        n,
		Tag:         n.Tag,
		Type:        strings.ToLower(n.AttrOr("type", "text")),
		Name:        n.AttrOr("name", ""),
		Value:       n.AttrOr("value", ""),
		Placeholder: n.AttrOr("placeholder", ""),
		Required:    n.HasAttr("required"),
	}
	if n.Tag == "select" {
		fld.Type = "select"
		for _, o := range n.ElementsByTag("option") {
			fld.Options = append(fld.Options, o.AttrOr("value", o.Text()))
		}
	}
	if n.Tag == "textarea" {
		fld.Type = "textarea"
		fld.Value = n.Text()
	}
	// Label discovery: explicit for=, wrapping label, else nearest
	// preceding label/text in the same paragraph-ish container.
	if id := n.ID(); id != "" {
		if txt, ok := labelFor[id]; ok {
			fld.Label = txt
		}
	}
	if fld.Label == "" {
		if wrap := n.Ancestor("label"); wrap != nil {
			fld.Label = wrap.Text()
		}
	}
	if fld.Label == "" {
		fld.Label = nearestLabelText(n)
	}
	return fld
}

// nearestLabelText walks backwards among siblings (and up one level) for
// visible text that likely labels the control.
func nearestLabelText(n *htmldom.Node) string {
	for cur := n; cur != nil; cur = cur.Parent {
		for sib := cur.PrevSibling(); sib != nil; sib = sib.PrevSibling() {
			switch {
			case sib.Type == htmldom.TextNode && strings.TrimSpace(sib.Data) != "":
				return strings.TrimSpace(sib.Data)
			case sib.Type == htmldom.ElementNode && sib.Tag == "label":
				return sib.Text()
			case sib.Type == htmldom.ElementNode && (sib.Tag == "input" || sib.Tag == "select" || sib.Tag == "form"):
				return "" // hit another control: no label between them
			case sib.Type == htmldom.ElementNode:
				if t := sib.Text(); t != "" {
					return t
				}
			}
		}
		if cur.Parent != nil && cur.Parent.Tag == "form" {
			break
		}
	}
	return ""
}

// Context returns all the text a heuristic can match against for this
// field: name, id, label, and placeholder, space-joined and lower-cased.
// Fields built without a parsed DOM node (synthetic fields in tests or
// callers classifying bare attribute tuples) simply contribute no id.
// The result is computed once per field: every downstream regex pass gets
// pre-lowered text without re-scanning mixed-case markup.
func (f *Field) Context() string {
	if f.ctxOK {
		return f.ctx
	}
	id := ""
	if f.Node != nil {
		id = f.Node.ID()
	}
	parts := []string{f.Name, id, f.Label, f.Placeholder}
	f.ctx = strings.ToLower(strings.Join(parts, " "))
	f.ctxOK = true
	return f.ctx
}

// Submission is a filled form ready to send.
type Submission struct {
	form   *Form
	values url.Values
	checks map[string]bool // checkbox name -> checked
}

// Fill starts a submission with the form's default values: hidden inputs,
// pre-set values, first select options. Checkboxes default to unchecked.
func (f *Form) Fill() *Submission {
	s := &Submission{form: f, values: url.Values{}, checks: make(map[string]bool)}
	for _, fld := range f.Fields {
		if fld.Name == "" {
			continue
		}
		switch fld.Type {
		case "submit", "button", "image", "reset":
			// Buttons only contribute when clicked; our submissions click
			// the default button, which most sites leave unnamed.
		case "checkbox", "radio":
			s.checks[fld.Name] = false
		case "select":
			if len(fld.Options) > 0 {
				s.values.Set(fld.Name, fld.Options[0])
			}
		default:
			s.values.Set(fld.Name, fld.Value)
		}
	}
	return s
}

// Set assigns a value to the named field.
func (s *Submission) Set(name, value string) *Submission {
	s.values.Set(name, value)
	return s
}

// Check marks the named checkbox as checked.
func (s *Submission) Check(name string) *Submission {
	s.checks[name] = true
	return s
}

// SelectLast chooses the last option of the named select (often the only
// non-empty one in short lists).
func (s *Submission) SelectLast(name string) *Submission {
	for _, fld := range s.form.Fields {
		if fld.Name == name && fld.Type == "select" && len(fld.Options) > 0 {
			s.values.Set(name, fld.Options[len(fld.Options)-1])
		}
	}
	return s
}

// Values returns the encoded form body that would be sent now.
func (s *Submission) Values() url.Values {
	v := url.Values{}
	for k, vs := range s.values {
		for _, x := range vs {
			v.Add(k, x)
		}
	}
	for name, checked := range s.checks {
		if checked {
			v.Set(name, "on")
		}
	}
	return v
}

// Submit sends the filled form through the browser session.
func (c *Client) Submit(s *Submission) (*Page, error) {
	if s.form.Action == nil {
		return nil, fmt.Errorf("browser: form has no resolvable action")
	}
	if s.form.Method == "POST" {
		return c.Post(s.form.Action.String(), s.Values())
	}
	u := *s.form.Action
	u.RawQuery = s.Values().Encode()
	return c.Get(u.String())
}
