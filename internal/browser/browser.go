// Package browser is a from-scratch headless web browser: it fetches pages
// over HTTP, maintains cookies, parses HTML into a DOM (internal/htmldom),
// resolves links, and fills and submits forms. It replaces the PhantomJS/
// WebKit engine the paper's crawler scripted (paper §4.3.1), providing the
// same capability surface the registration heuristics require.
package browser

import (
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/url"
	"strings"
	"unsafe"

	"tripwire/internal/htmldom"
)

// Page is one fetched and parsed document.
type Page struct {
	URL        *url.URL // final URL after redirects
	StatusCode int
	Raw        string
	DOM        *htmldom.Node
}

// Link is an anchor on a page with its resolved destination.
type Link struct {
	URL  *url.URL
	Text string // visible anchor text ("" for image-only links)
	Node *htmldom.Node
}

// Client is a headless browser session. Construct with New; the zero value
// is not usable.
type Client struct {
	hc *http.Client
	// UserAgent is sent on every request.
	UserAgent string
	// MaxBodyBytes caps how much of a response body is read.
	MaxBodyBytes int64
	// pageLoads counts fetches, for rate-limit accounting by the caller.
	pageLoads int
	// uaValue is the cached one-element header value for UserAgent, shared
	// read-only across this session's requests.
	uaValue []string
}

// Option configures a Client.
type Option func(*Client)

// WithTransport sets the underlying RoundTripper (e.g. an in-process
// handler transport or a proxy-bound transport).
func WithTransport(rt http.RoundTripper) Option {
	return func(c *Client) { c.hc.Transport = rt }
}

// New returns a browser session with a fresh cookie jar.
func New(opts ...Option) *Client {
	jar, err := cookiejar.New(nil)
	if err != nil {
		panic(err) // cookiejar.New with nil options cannot fail
	}
	c := &Client{
		hc:           &http.Client{Jar: jar},
		UserAgent:    "Mozilla/5.0 (compatible; tripwire-crawler/1.0)",
		MaxBodyBytes: 4 << 20,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// PageLoads returns the number of HTTP fetches performed so far.
func (c *Client) PageLoads() int { return c.pageLoads }

// Get fetches and parses the page at rawURL.
func (c *Client) Get(rawURL string) (*Page, error) {
	req, err := http.NewRequest(http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, fmt.Errorf("browser: building request for %q: %w", rawURL, err)
	}
	return c.do(req)
}

// GetURL fetches a pre-resolved URL (e.g. from Page.Links), skipping the
// serialize-then-reparse round trip Get(u.String()) would pay per page.
func (c *Client) GetURL(u *url.URL) (*Page, error) {
	req := &http.Request{
		Method:     http.MethodGet,
		URL:        u,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     make(http.Header),
		Host:       u.Host,
	}
	return c.do(req)
}

// Post submits an application/x-www-form-urlencoded POST.
func (c *Client) Post(rawURL string, form url.Values) (*Page, error) {
	req, err := http.NewRequest(http.MethodPost, rawURL, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, fmt.Errorf("browser: building POST for %q: %w", rawURL, err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	return c.do(req)
}

func (c *Client) do(req *http.Request) (*Page, error) {
	// The header key is pre-canonical and the value slice is shared across
	// the session's requests, sparing a per-request one-element allocation.
	if c.uaValue == nil || c.uaValue[0] != c.UserAgent {
		c.uaValue = []string{c.UserAgent}
	}
	req.Header["User-Agent"] = c.uaValue
	c.pageLoads++
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("browser: fetch %s: %w", req.URL, err)
	}
	defer resp.Body.Close()
	raw, err := readBody(resp, c.MaxBodyBytes)
	if err != nil {
		return nil, fmt.Errorf("browser: reading %s: %w", req.URL, err)
	}
	return &Page{
		URL:        resp.Request.URL,
		StatusCode: resp.StatusCode,
		Raw:        raw,
		DOM:        htmldom.Parse(raw),
	}, nil
}

// readBody drains the response body, capped at limit bytes. When the
// response declares its length — always true for the in-process handler
// transport — the buffer is sized exactly once instead of re-growing
// through io.ReadAll's append cycle on every page, and is aliased into the
// returned string without a second copy (the buffer never escapes, so
// nothing can mutate it afterwards).
func readBody(resp *http.Response, limit int64) (string, error) {
	if n := resp.ContentLength; n >= 0 && n <= limit {
		buf := make([]byte, n)
		if _, err := io.ReadFull(resp.Body, buf); err != nil {
			return "", err
		}
		return unsafe.String(unsafe.SliceData(buf), len(buf)), nil
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	return string(b), err
}

// Links returns every anchor on the page with a resolvable href.
func (p *Page) Links() []Link {
	var out []Link
	for _, a := range p.DOM.ElementsByTag("a") {
		href, ok := a.Attr("href")
		if !ok || href == "" || strings.HasPrefix(href, "javascript:") || strings.HasPrefix(href, "#") {
			continue
		}
		u, err := p.URL.Parse(href)
		if err != nil {
			continue
		}
		out = append(out, Link{URL: u, Text: a.Text(), Node: a})
	}
	return out
}

// Title returns the page's <title> text.
func (p *Page) Title() string {
	if t := p.DOM.First(func(n *htmldom.Node) bool { return n.Tag == "title" }); t != nil {
		return t.Text()
	}
	return ""
}

// OK reports whether the page loaded with a 2xx status.
func (p *Page) OK() bool { return p.StatusCode >= 200 && p.StatusCode < 300 }
