package browser

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"sync"
	"time"
)

// HandlerTransport is an http.RoundTripper that dispatches requests to an
// in-process http.Handler without touching the network. The simulation uses
// it so a year-long crawl of tens of thousands of sites runs in seconds;
// the same code paths (request construction, redirects, cookies, body
// handling) execute as over TCP.
type HandlerTransport struct {
	Handler http.Handler
}

// RoundTrip implements http.RoundTripper.
func (t *HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rw := newRecorder()
	inner := req.Clone(req.Context())
	if inner.Body == nil {
		inner.Body = http.NoBody
	}
	if inner.Host == "" {
		inner.Host = req.URL.Host
	}
	t.Handler.ServeHTTP(rw, inner)
	return rw.response(req), nil
}

// recorder is a minimal in-memory http.ResponseWriter.
type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
	wrote  bool
}

func newRecorder() *recorder {
	return &recorder{code: http.StatusOK, header: make(http.Header)}
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
}

func (r *recorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.body.Write(p)
}

func (r *recorder) response(req *http.Request) *http.Response {
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", r.code, http.StatusText(r.code)),
		StatusCode:    r.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        r.header,
		Body:          io.NopCloser(bytes.NewReader(r.body.Bytes())),
		ContentLength: int64(r.body.Len()),
		Request:       req,
	}
}

// ProxyTransport wraps a RoundTripper, stamping each outbound request with
// a source IP drawn from a rotating proxy set and recording which IP each
// host saw. It models the paper's §4.3.2 proxy network: "websites receive
// at most one account registration from a given IP."
type ProxyTransport struct {
	Base http.RoundTripper
	// NextIP selects the source address for a host. It is called once per
	// host; the choice is cached so retries reuse the same exit.
	NextIP func(host string) netip.Addr
	// Latency, when positive, blocks each round trip for one emulated
	// network round-trip time (wall-clock, unlike the crawler's virtual-time
	// rate limit). It reproduces the latency-bound character of real
	// crawling so concurrent workers have something to overlap.
	Latency time.Duration

	mu     sync.Mutex
	byHost map[string]netip.Addr
}

// RoundTrip implements http.RoundTripper, adding an X-Forwarded-For header
// carrying the chosen exit IP (the synthetic web reads it as the client
// address).
func (t *ProxyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Hostname()
	t.mu.Lock()
	if t.byHost == nil {
		t.byHost = make(map[string]netip.Addr)
	}
	ip, ok := t.byHost[host]
	if !ok {
		ip = t.NextIP(host)
		t.byHost[host] = ip
	}
	t.mu.Unlock()
	if t.Latency > 0 {
		time.Sleep(t.Latency)
	}
	r2 := req.Clone(req.Context())
	r2.Header.Set("X-Forwarded-For", ip.String())
	return t.Base.RoundTrip(r2)
}

// ExitIP returns the exit address assigned to host, if one has been used.
func (t *ProxyTransport) ExitIP(host string) (netip.Addr, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ip, ok := t.byHost[host]
	return ip, ok
}
