package browser

import (
	"bytes"
	"fmt"
	"net/http"
	"net/netip"
	"sync"
	"time"
)

// HandlerTransport is an http.RoundTripper that dispatches requests to an
// in-process http.Handler without touching the network. The simulation uses
// it so a year-long crawl of tens of thousands of sites runs in seconds;
// the same code paths (request construction, redirects, cookies, body
// handling) execute as over TCP.
type HandlerTransport struct {
	Handler http.Handler
}

// RoundTrip implements http.RoundTripper.
func (t *HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rw := newRecorder()
	// Shallow copy instead of req.Clone: the handler is in-process and
	// treats the request as read-only apart from ParseForm, which only
	// writes the copy's own Form/PostForm fields. Cloning the header map
	// and URL for every page load would be pure allocation churn.
	inner := *req
	if inner.Body == nil {
		inner.Body = http.NoBody
	}
	if inner.Host == "" {
		inner.Host = req.URL.Host
	}
	t.Handler.ServeHTTP(rw, &inner)
	return rw.response(req), nil
}

// recorder is a minimal in-memory http.ResponseWriter. Recorders are
// pooled: response() hands the recorder itself out as the response body,
// and closing that body releases it for reuse — so in steady state a round
// trip recycles one recorder, its header map, and its grown body buffer
// instead of allocating fresh ones per page. The usual body contract
// applies: reading after Close reads another request's bytes.
type recorder struct {
	code     int
	header   http.Header
	body     bytes.Buffer
	wrote    bool
	reader   bytes.Reader // Read view over body, set by response()
	released bool
}

var recorderPool = sync.Pool{New: func() any { return new(recorder) }}

func newRecorder() *recorder {
	r := recorderPool.Get().(*recorder)
	r.code = http.StatusOK
	r.wrote = false
	r.released = false
	r.body.Reset()
	if r.header == nil {
		r.header = make(http.Header)
	} else {
		clear(r.header)
	}
	return r
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
}

func (r *recorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.body.Write(p)
}

// WriteString lets io.WriteString append handler output without an
// intermediate []byte copy of the page.
func (r *recorder) WriteString(s string) (int, error) {
	r.wrote = true
	return r.body.WriteString(s)
}

// Read serves the response body.
func (r *recorder) Read(p []byte) (int, error) { return r.reader.Read(p) }

// Close returns the recorder to the pool. Idempotent against the
// double-close an http.Client error path can produce.
func (r *recorder) Close() error {
	if !r.released {
		r.released = true
		recorderPool.Put(r)
	}
	return nil
}

// statusLines caches "200 OK"-style status strings for the codes the
// synthetic web actually emits; anything else falls back to formatting.
var statusLines sync.Map // int -> string

func statusLine(code int) string {
	if s, ok := statusLines.Load(code); ok {
		return s.(string)
	}
	s := fmt.Sprintf("%d %s", code, http.StatusText(code))
	statusLines.Store(code, s)
	return s
}

func (r *recorder) response(req *http.Request) *http.Response {
	r.reader.Reset(r.body.Bytes())
	return &http.Response{
		Status:        statusLine(r.code),
		StatusCode:    r.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        r.header,
		Body:          r,
		ContentLength: int64(r.body.Len()),
		Request:       req,
	}
}

// ProxyTransport wraps a RoundTripper, stamping each outbound request with
// a source IP drawn from a rotating proxy set and recording which IP each
// host saw. It models the paper's §4.3.2 proxy network: "websites receive
// at most one account registration from a given IP."
type ProxyTransport struct {
	Base http.RoundTripper
	// NextIP selects the source address for a host. It is called once per
	// host; the choice is cached so retries reuse the same exit.
	NextIP func(host string) netip.Addr
	// Latency, when positive, blocks each round trip for one emulated
	// network round-trip time (wall-clock, unlike the crawler's virtual-time
	// rate limit). It reproduces the latency-bound character of real
	// crawling so concurrent workers have something to overlap.
	Latency time.Duration

	mu     sync.Mutex
	byHost map[string]netip.Addr
	// debt is how much longer the session has already slept than Latency
	// per round trip would require. time.Sleep reliably oversleeps (timer
	// granularity plus scheduling delay — ~10% at 1ms on a loaded box), so
	// uncorrected sleeps would emulate a systematically slower network than
	// configured; carrying the overshoot forward keeps a session's total
	// emulated latency at requests x Latency.
	debt time.Duration
}

// RoundTrip implements http.RoundTripper, adding an X-Forwarded-For header
// carrying the chosen exit IP (the synthetic web reads it as the client
// address).
func (t *ProxyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Hostname()
	t.mu.Lock()
	if t.byHost == nil {
		t.byHost = make(map[string]netip.Addr)
	}
	ip, ok := t.byHost[host]
	if !ok {
		ip = t.NextIP(host)
		t.byHost[host] = ip
	}
	t.mu.Unlock()
	if t.Latency > 0 {
		t.mu.Lock()
		target := t.Latency - t.debt
		t.mu.Unlock()
		var slept time.Duration
		if target > 0 {
			start := time.Now()
			time.Sleep(target)
			slept = time.Since(start)
		}
		t.mu.Lock()
		t.debt += slept - t.Latency
		t.mu.Unlock()
	}
	// The request is browser-owned: Client.do builds a fresh one per fetch
	// and nothing else holds a reference, so the header can be stamped in
	// place instead of cloning the map (and its value slices) per page.
	req.Header.Set("X-Forwarded-For", ip.String())
	return t.Base.RoundTrip(req)
}

// ExitIP returns the exit address assigned to host, if one has been used.
func (t *ProxyTransport) ExitIP(host string) (netip.Addr, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ip, ok := t.byHost[host]
	return ip, ok
}
