package browser

import (
	"fmt"
	"net/http"
	"net/netip"
	"strings"
	"testing"
)

// testHandler serves a small site for browser tests.
func testHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.SetCookie(w, &http.Cookie{Name: "session", Value: "abc123", Path: "/"})
		fmt.Fprint(w, `<html><head><title>Test Site</title></head><body>
			<a href="/about">About</a>
			<a href="relative/page">Rel</a>
			<a href="javascript:void(0)">JS</a>
			<a href="#frag">Frag</a>
			<a href="http://other.test/x">Other</a>
			</body></html>`)
	})
	mux.HandleFunc("/about", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<html><body><p>about page</p></body></html>")
	})
	mux.HandleFunc("/redir", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/about", http.StatusFound)
	})
	mux.HandleFunc("/whoami", func(w http.ResponseWriter, r *http.Request) {
		c, err := r.Cookie("session")
		if err != nil {
			fmt.Fprint(w, "<p>no cookie</p>")
			return
		}
		fmt.Fprintf(w, "<p>cookie=%s</p>", c.Value)
	})
	mux.HandleFunc("/form", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body><form action="/submit" method="post">
			<input type="hidden" name="csrf" value="tok">
			<p><label for="em">Email</label><input type="text" name="em" id="em" required></p>
			<p><label>Password</label><input type="password" name="pw"></p>
			<p><input type="checkbox" name="tos" value="on"> <label>Agree</label></p>
			<select name="state"><option value="">--</option><option value="CA">CA</option></select>
			<input type="submit" value="Go">
			</form></body></html>`)
	})
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		r.ParseForm()
		fmt.Fprintf(w, "<p>csrf=%s em=%s pw=%s tos=%s state=%s</p>",
			r.PostFormValue("csrf"), r.PostFormValue("em"), r.PostFormValue("pw"),
			r.PostFormValue("tos"), r.PostFormValue("state"))
	})
	return mux
}

func testClient() *Client {
	return New(WithTransport(&HandlerTransport{Handler: testHandler()}))
}

func TestGetAndTitle(t *testing.T) {
	c := testClient()
	p, err := c.Get("http://site.test/")
	if err != nil {
		t.Fatal(err)
	}
	if !p.OK() || p.Title() != "Test Site" {
		t.Fatalf("status=%d title=%q", p.StatusCode, p.Title())
	}
	if c.PageLoads() != 1 {
		t.Fatalf("PageLoads = %d", c.PageLoads())
	}
}

func TestLinksResolvedAndFiltered(t *testing.T) {
	c := testClient()
	p, _ := c.Get("http://site.test/")
	links := p.Links()
	if len(links) != 3 {
		t.Fatalf("got %d links %v, want 3 (javascript: and #frag filtered)", len(links), links)
	}
	if links[0].URL.String() != "http://site.test/about" || links[0].Text != "About" {
		t.Fatalf("link[0] = %v %q", links[0].URL, links[0].Text)
	}
	if links[1].URL.String() != "http://site.test/relative/page" {
		t.Fatalf("relative resolution broken: %v", links[1].URL)
	}
	if links[2].URL.Host != "other.test" {
		t.Fatalf("absolute link broken: %v", links[2].URL)
	}
}

func TestRedirectFollowed(t *testing.T) {
	c := testClient()
	p, err := c.Get("http://site.test/redir")
	if err != nil {
		t.Fatal(err)
	}
	if p.URL.Path != "/about" || !strings.Contains(p.Raw, "about page") {
		t.Fatalf("redirect not followed: %v", p.URL)
	}
}

func TestCookiesPersistAcrossRequests(t *testing.T) {
	c := testClient()
	if _, err := c.Get("http://site.test/"); err != nil {
		t.Fatal(err)
	}
	p, err := c.Get("http://site.test/whoami")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Raw, "cookie=abc123") {
		t.Fatalf("cookie not sent: %s", p.Raw)
	}
	// A fresh session has its own jar.
	p2, _ := testClient().Get("http://site.test/whoami")
	if !strings.Contains(p2.Raw, "no cookie") {
		t.Fatal("cookie leaked across sessions")
	}
}

func TestFormExtraction(t *testing.T) {
	c := testClient()
	p, _ := c.Get("http://site.test/form")
	forms := p.Forms()
	if len(forms) != 1 {
		t.Fatalf("got %d forms", len(forms))
	}
	f := forms[0]
	if f.Method != "POST" || f.Action.Path != "/submit" {
		t.Fatalf("form meta: %s %v", f.Method, f.Action)
	}
	byName := map[string]Field{}
	for _, fld := range f.Fields {
		byName[fld.Name] = fld
	}
	if byName["csrf"].Type != "hidden" || byName["csrf"].Value != "tok" {
		t.Fatalf("hidden field: %+v", byName["csrf"])
	}
	if byName["em"].Label != "Email" || !byName["em"].Required {
		t.Fatalf("label-for association failed: %+v", byName["em"])
	}
	if byName["pw"].Type != "password" || byName["pw"].Label != "Password" {
		t.Fatalf("sibling label failed: %+v", byName["pw"])
	}
	if len(byName["state"].Options) != 2 {
		t.Fatalf("select options: %+v", byName["state"])
	}
}

func TestFieldContext(t *testing.T) {
	c := testClient()
	p, _ := c.Get("http://site.test/form")
	f := p.Forms()[0]
	for _, fld := range f.Fields {
		if fld.Name == "em" {
			ctx := fld.Context()
			if !strings.Contains(ctx, "email") || !strings.Contains(ctx, "em") {
				t.Fatalf("Context() = %q", ctx)
			}
		}
	}
}

func TestSubmissionDefaultsAndOverrides(t *testing.T) {
	c := testClient()
	p, _ := c.Get("http://site.test/form")
	f := p.Forms()[0]
	sub := f.Fill().
		Set("em", "a@b.test").
		Set("pw", "secret").
		Check("tos").
		SelectLast("state")
	resp, err := c.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	want := "csrf=tok em=a@b.test pw=secret tos=on state=CA"
	if !strings.Contains(resp.Raw, want) {
		t.Fatalf("submitted values wrong:\n got %s\nwant %s", resp.Raw, want)
	}
}

func TestUncheckedCheckboxOmitted(t *testing.T) {
	c := testClient()
	p, _ := c.Get("http://site.test/form")
	sub := p.Forms()[0].Fill().Set("em", "x").Set("pw", "y")
	resp, _ := c.Submit(sub)
	if !strings.Contains(resp.Raw, "tos= ") {
		t.Fatalf("unchecked checkbox submitted a value: %s", resp.Raw)
	}
}

func TestProxyTransportStampsAndPins(t *testing.T) {
	var seen []string
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = append(seen, r.Header.Get("X-Forwarded-For"))
		fmt.Fprint(w, "<p>ok</p>")
	})
	calls := 0
	pt := &ProxyTransport{
		Base: &HandlerTransport{Handler: h},
		NextIP: func(host string) netip.Addr {
			calls++
			return netip.AddrFrom4([4]byte{10, 0, 0, byte(calls)})
		},
	}
	c := New(WithTransport(pt))
	c.Get("http://a.test/")
	c.Get("http://a.test/page2")
	c.Get("http://b.test/")
	if calls != 2 {
		t.Fatalf("NextIP called %d times, want 2 (one per host)", calls)
	}
	if seen[0] != seen[1] {
		t.Fatalf("same host saw different exits: %v", seen)
	}
	if seen[2] == seen[0] {
		t.Fatalf("different hosts shared an exit: %v", seen)
	}
	if ip, ok := pt.ExitIP("a.test"); !ok || ip.String() != seen[0] {
		t.Fatalf("ExitIP mismatch: %v %v", ip, ok)
	}
}

func TestHandlerTransportStatusAndBody(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, "<p>nope</p>")
			return
		}
		fmt.Fprint(w, "<p>hi</p>")
	})
	c := New(WithTransport(&HandlerTransport{Handler: h}))
	p, err := c.Get("http://x.test/missing")
	if err != nil {
		t.Fatal(err)
	}
	if p.StatusCode != 404 || !strings.Contains(p.Raw, "nope") {
		t.Fatalf("status=%d body=%q", p.StatusCode, p.Raw)
	}
}

func TestMaxBodyBytes(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, strings.Repeat("x", 1000))
	})
	c := New(WithTransport(&HandlerTransport{Handler: h}))
	c.MaxBodyBytes = 100
	p, err := c.Get("http://x.test/")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Raw) != 100 {
		t.Fatalf("body length %d, want capped at 100", len(p.Raw))
	}
}
