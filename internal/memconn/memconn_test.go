package memconn

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestPingPong(t *testing.T) {
	p := NewPair()
	c, s := p.Client(), p.Server()
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 16)
		n, err := s.Read(buf)
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := s.Write(bytes.ToUpper(buf[:n])); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatalf("client write: %v", err)
	}
	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err != nil || string(buf[:n]) != "HELLO" {
		t.Fatalf("client read = %q, %v", buf[:n], err)
	}
	<-done
}

// TestDrainThenEOF pins the TCP-shutdown-like close semantics the protocol
// code relies on: bytes written before the peer closed stay readable, and
// only then does the reader see io.EOF.
func TestDrainThenEOF(t *testing.T) {
	p := NewPair()
	c, s := p.Client(), p.Server()
	if _, err := s.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	buf := make([]byte, 2)
	var got []byte
	for {
		n, err := c.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	if string(got) != "bye" {
		t.Fatalf("drained %q, want %q", got, "bye")
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("write to closed peer: %v, want ErrClosedPipe", err)
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	p := NewPair()
	c := p.Client()
	errc := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		errc <- err
	}()
	c.Close()
	if err := <-errc; !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("read after own close: %v, want ErrClosedPipe", err)
	}
}

// TestResetReuse cycles one pair through many sessions, the stuffing
// bot-pool usage pattern: session, both ends closed, Reset, repeat.
func TestResetReuse(t *testing.T) {
	p := NewPair()
	for i := 0; i < 100; i++ {
		c, s := p.Client(), p.Server()
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, 8)
			n, _ := s.Read(buf)
			s.Write(buf[:n])
			s.Close()
		}()
		if _, err := c.Write([]byte("ping")); err != nil {
			t.Fatalf("session %d write: %v", i, err)
		}
		buf := make([]byte, 8)
		n, err := c.Read(buf)
		if err != nil || string(buf[:n]) != "ping" {
			t.Fatalf("session %d read = %q, %v", i, buf[:n], err)
		}
		c.Close()
		<-done
		p.Reset()
	}
}
