// Package memconn provides a reusable in-memory duplex net.Conn pair.
//
// It exists for the credential-stuffing hot path: every simulated IMAP/POP3
// login used to dial a fresh net.Pipe, whose synchronous rendezvous and
// per-conn deadline machinery allocate on every session. A Pair is two
// buffered byte streams with a mutex/cond each; Reset rewinds both ends so
// one Pair serves tens of thousands of sequential sessions without
// reallocating.
//
// Semantics differ from net.Pipe in one deliberate way: writes are
// buffered (never block waiting for a reader), and a reader keeps draining
// buffered bytes after the peer closes, hitting io.EOF only when the
// stream is empty. That matches TCP shutdown semantics, which is what the
// protocol code written against real conns expects.
package memconn

import (
	"io"
	"net"
	"sync"
	"time"
)

// addr is the static address both ends report.
type addr struct{}

func (addr) Network() string { return "mem" }
func (addr) String() string  { return "mem" }

// stream is one direction of the pair: an append buffer with a read
// cursor, guarded by a mutex, with a cond for blocked readers.
type stream struct {
	mu      sync.Mutex
	cond    sync.Cond
	buf     []byte
	r       int
	wclosed bool // write end closed: drain, then EOF
	rclosed bool // read end closed: reads and peer writes fail
}

func (s *stream) init() { s.cond.L = &s.mu }

func (s *stream) read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.rclosed {
			return 0, io.ErrClosedPipe
		}
		if s.r < len(s.buf) {
			n := copy(p, s.buf[s.r:])
			s.r += n
			if s.r == len(s.buf) {
				s.buf = s.buf[:0]
				s.r = 0
			}
			return n, nil
		}
		if s.wclosed {
			return 0, io.EOF
		}
		s.cond.Wait()
	}
}

func (s *stream) write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wclosed || s.rclosed {
		return 0, io.ErrClosedPipe
	}
	s.buf = append(s.buf, p...)
	s.cond.Broadcast()
	return len(p), nil
}

func (s *stream) closeWrite() {
	s.mu.Lock()
	s.wclosed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *stream) closeRead() {
	s.mu.Lock()
	s.rclosed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// reset rewinds the stream for reuse. The caller must guarantee no
// goroutine is still using either end (the Pair contract).
func (s *stream) reset() {
	s.mu.Lock()
	s.buf = s.buf[:0]
	s.r = 0
	s.wclosed = false
	s.rclosed = false
	s.mu.Unlock()
}

// Pair is a connected in-memory duplex conn pair. The zero value is not
// usable; construct with NewPair. A Pair may be Reset and reused once both
// sides are done with the previous session.
type Pair struct {
	ab, ba stream // client→server, server→client
	client End
	server End
}

// NewPair returns a connected pair.
func NewPair() *Pair {
	p := &Pair{}
	p.ab.init()
	p.ba.init()
	p.client = End{read: &p.ba, write: &p.ab}
	p.server = End{read: &p.ab, write: &p.ba}
	return p
}

// Client returns the client-side conn.
func (p *Pair) Client() net.Conn { return &p.client }

// Server returns the server-side conn.
func (p *Pair) Server() net.Conn { return &p.server }

// Reset rewinds both directions so the pair can carry a fresh session.
// Callers must have joined whatever goroutines used the previous session.
func (p *Pair) Reset() {
	p.ab.reset()
	p.ba.reset()
}

// End is one side of a Pair. It satisfies net.Conn; deadlines are
// accepted and ignored (virtual-time simulations have no wall-clock I/O
// timeouts).
type End struct {
	read, write *stream
}

// Read implements net.Conn.
func (e *End) Read(p []byte) (int, error) { return e.read.read(p) }

// Write implements net.Conn.
func (e *End) Write(p []byte) (int, error) { return e.write.write(p) }

// Close shuts this end: its pending reads fail, and the peer drains
// whatever was already written before seeing io.EOF. Idempotent.
func (e *End) Close() error {
	e.read.closeRead()
	e.write.closeWrite()
	return nil
}

// LocalAddr implements net.Conn.
func (e *End) LocalAddr() net.Addr { return addr{} }

// RemoteAddr implements net.Conn.
func (e *End) RemoteAddr() net.Addr { return addr{} }

// SetDeadline implements net.Conn as a no-op.
func (e *End) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn as a no-op.
func (e *End) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn as a no-op.
func (e *End) SetWriteDeadline(time.Time) error { return nil }
