// Package stats provides the small set of summary statistics the
// multi-seed robustness sweep reports (cmd/tripwire-sweep): means, standard
// deviations, and quantiles over per-seed outcome metrics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 when n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation over the sorted sample. It panics on q outside [0,1] and
// returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median is Quantile(xs, 0.5).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MinMax returns the extrema of xs (0, 0 for an empty slice).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Summary is a one-line roll-up of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		Median: Median(xs),
		Max:    max,
	}
}

// String renders "mean ± std (min/median/max, n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.1f ± %.1f (min %.0f, med %.1f, max %.0f; n=%d)",
		s.Mean, s.StdDev, s.Min, s.Median, s.Max, s.N)
}
