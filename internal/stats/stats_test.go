package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5) {
		t.Fatalf("Mean = %v", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2.138089935) > 1e-6 {
		t.Fatalf("StdDev = %v", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty/degenerate cases wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Median(xs); !approx(q, 2.5) {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile([]float64{7}, 0.99); q != 7 {
		t.Fatalf("single-element quantile = %v", q)
	}
	// Input must not be mutated (Quantile sorts a copy).
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for q=2")
		}
	}()
	Quantile([]float64{1}, 2)
}

func TestMinMaxAndSummary(t *testing.T) {
	xs := []float64{5, -1, 3}
	min, max := MinMax(xs)
	if min != -1 || max != 5 {
		t.Fatalf("MinMax = %v, %v", min, max)
	}
	s := Summarize(xs)
	if s.N != 3 || s.Min != -1 || s.Max != 5 || !approx(s.Median, 3) {
		t.Fatalf("Summary = %+v", s)
	}
	if out := s.String(); !strings.Contains(out, "n=3") {
		t.Fatalf("String() = %q", out)
	}
}

// Property: min <= median <= max and mean within [min, max].
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n%50)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max && s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, math.Min(q, 1))
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
