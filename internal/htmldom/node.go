package htmldom

import (
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"
)

// NodeType identifies the kind of a DOM node.
type NodeType int

const (
	// DocumentNode is the root of a parsed document.
	DocumentNode NodeType = iota
	// ElementNode is a tag with attributes and children.
	ElementNode
	// TextNode holds character data.
	TextNode
	// CommentNode holds a comment's content.
	CommentNode
)

// Node is a DOM node. Fields are exported for read access; mutate through
// the tree-building parser only.
type Node struct {
	Type     NodeType
	Tag      string // element tag, lower-case (ElementNode only)
	Data     string // text or comment content
	Attrs    []Attr
	Parent   *Node
	Children []*Node
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == name {
			return a.Val, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute's value, or def when absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// HasAttr reports whether the named attribute is present (even if empty, as
// with <input required>).
func (n *Node) HasAttr(name string) bool {
	_, ok := n.Attr(name)
	return ok
}

// ID returns the element's id attribute, or "".
func (n *Node) ID() string { return n.AttrOr("id", "") }

// bufPool recycles scratch byte buffers for Text and Render. Pooling the
// backing slice (rather than a strings.Builder, whose Reset discards it)
// is what makes repeated calls allocation-cheap.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// Text returns the concatenation of all descendant text, with runs of
// whitespace collapsed to single spaces and the result trimmed.
func (n *Node) Text() string {
	bp := bufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	pending := false
	var collect func(*Node)
	collect = func(x *Node) {
		if x.Type == TextNode {
			buf, pending = appendCollapsed(buf, x.Data, pending)
			pending = true // text nodes are whitespace-separated
			return
		}
		for _, c := range x.Children {
			collect(c)
		}
	}
	collect(n)
	s := string(buf)
	*bp = buf
	bufPool.Put(bp)
	return s
}

// appendCollapsed appends s to buf with runs of Unicode whitespace
// collapsed to single spaces, trimming leading space when buf is empty.
// pending carries an unflushed separator between calls.
func appendCollapsed(buf []byte, s string, pending bool) ([]byte, bool) {
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f' {
				pending = true
				i++
				continue
			}
			if pending && len(buf) > 0 {
				buf = append(buf, ' ')
			}
			pending = false
			buf = append(buf, c)
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if unicode.IsSpace(r) {
			pending = true
			i += size
			continue
		}
		if pending && len(buf) > 0 {
			buf = append(buf, ' ')
		}
		pending = false
		// Append the original bytes, preserving invalid UTF-8 exactly as
		// strings.Fields would.
		buf = append(buf, s[i:i+size]...)
		i += size
	}
	return buf, pending
}

// Walk calls fn for n and every descendant in document order. If fn returns
// false the walk does not descend into that node's children.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// FindAll returns all descendant elements (including n itself if it is an
// element) satisfying pred, in document order.
func (n *Node) FindAll(pred func(*Node) bool) []*Node {
	var out []*Node
	n.Walk(func(x *Node) bool {
		if x.Type == ElementNode && pred(x) {
			out = append(out, x)
		}
		return true
	})
	return out
}

// First returns the first descendant element satisfying pred, or nil.
func (n *Node) First(pred func(*Node) bool) *Node {
	var found *Node
	n.Walk(func(x *Node) bool {
		if found != nil {
			return false
		}
		if x.Type == ElementNode && pred(x) {
			found = x
			return false
		}
		return true
	})
	return found
}

// ElementsByTag returns all descendant elements with the given tag.
func (n *Node) ElementsByTag(tag string) []*Node {
	return n.FindAll(func(x *Node) bool { return x.Tag == tag })
}

// ByID returns the descendant element with the given id, or nil.
func (n *Node) ByID(id string) *Node {
	if id == "" {
		return nil
	}
	return n.First(func(x *Node) bool { return x.ID() == id })
}

// Ancestor returns the nearest ancestor (excluding n) with the given tag,
// or nil.
func (n *Node) Ancestor(tag string) *Node {
	for p := n.Parent; p != nil; p = p.Parent {
		if p.Type == ElementNode && p.Tag == tag {
			return p
		}
	}
	return nil
}

// PrevSibling returns the node immediately before n under the same parent,
// or nil.
func (n *Node) PrevSibling() *Node {
	if n.Parent == nil {
		return nil
	}
	var prev *Node
	for _, c := range n.Parent.Children {
		if c == n {
			return prev
		}
		prev = c
	}
	return nil
}

// voidElements never take children.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// autoClose lists tags that implicitly close an open element of the same
// (or listed) tag, approximating real browser recovery behaviour.
var autoClose = map[string][]string{
	"li":     {"li"},
	"p":      {"p"},
	"option": {"option"},
	"tr":     {"tr", "td", "th"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"dd":     {"dd", "dt"},
	"dt":     {"dd", "dt"},
}

// nodeSlab hands out nodes from chunked backing arrays so a parse performs
// a handful of slab allocations instead of one per node. Pointers stay
// valid because a chunk is abandoned, never regrown, once full.
type nodeSlab struct {
	chunk []Node
}

func (s *nodeSlab) new(n Node) *Node {
	if len(s.chunk) == cap(s.chunk) {
		s.chunk = make([]Node, 0, 64)
	}
	s.chunk = append(s.chunk, n)
	return &s.chunk[len(s.chunk)-1]
}

// Parse builds a DOM from src. It never fails. Tokens are consumed
// directly from the streaming tokenizer; no token slice is materialized.
func Parse(src string) *Node {
	var slab nodeSlab
	doc := slab.new(Node{Type: DocumentNode})
	stack := make([]*Node, 1, 16)
	stack[0] = doc
	top := func() *Node { return stack[len(stack)-1] }
	appendChild := func(c *Node) {
		c.Parent = top()
		top().Children = append(top().Children, c)
	}
	// Adjacent text tokens (the tokenizer may split around degraded markup
	// and raw-text bodies) merge into one TextNode, as browsers build one
	// character-data run.
	pendingText := ""
	flushText := func() {
		if pendingText == "" {
			return
		}
		if !(top() == doc && strings.TrimSpace(pendingText) == "") {
			appendChild(slab.new(Node{Type: TextNode, Data: pendingText}))
		}
		pendingText = ""
	}
	z := Tokenizer{src: src}
	for {
		tok, ok := z.Next()
		if !ok {
			break
		}
		if tok.Type == TextToken {
			if pendingText == "" {
				pendingText = tok.Data
			} else {
				pendingText += tok.Data
			}
			continue
		}
		flushText()
		switch tok.Type {
		case CommentToken:
			appendChild(slab.new(Node{Type: CommentNode, Data: tok.Data}))
		case DoctypeToken:
			// Recorded nowhere: the crawler does not need it.
		case StartTagToken, SelfClosingTagToken:
			if closers, ok := autoClose[tok.Data]; ok {
				if t := top(); t.Type == ElementNode {
					for _, c := range closers {
						if t.Tag == c {
							stack = stack[:len(stack)-1]
							break
						}
					}
				}
			}
			el := slab.new(Node{Type: ElementNode, Tag: tok.Data, Attrs: tok.Attrs})
			appendChild(el)
			if tok.Type == StartTagToken && !voidElements[tok.Data] {
				stack = append(stack, el)
			}
		case EndTagToken:
			// Pop to the matching open element, if any; otherwise ignore.
			for j := len(stack) - 1; j >= 1; j-- {
				if stack[j].Tag == tok.Data {
					stack = stack[:j]
					break
				}
			}
		}
	}
	flushText()
	return doc
}
