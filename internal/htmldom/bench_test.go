package htmldom

import (
	"fmt"
	"strings"
	"testing"
)

// benchPage approximates one synthetic registration page as webgen renders
// it: chrome, nav, blurbs, a decoy search form, and a ~10-field
// registration form. Benchmarks over it track the crawler's per-page cost.
var benchPage = func() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><title>Create your account - Example Site</title></head>\n")
	b.WriteString("<body>\n<div id=\"header\"><h1>Example Site</h1>\n<ul id=\"nav\">\n")
	for _, item := range []string{"Home", "About", "Contact", "Log in"} {
		fmt.Fprintf(&b, "<li><a href=\"/%s\">%s</a></li>\n", strings.ToLower(item), item)
	}
	b.WriteString("</ul></div>\n<div id=\"content\">\n")
	b.WriteString("<p>Join thousands of members who trust us every day &amp; browse our catalog.</p>\n")
	b.WriteString("<form action=\"/search\" method=\"get\"><input type=\"text\" name=\"q\"><input type=\"submit\" value=\"Search\"></form>\n")
	b.WriteString("<h2>Create your account</h2>\n<form id=\"regform\" action=\"/register\" method=\"post\">\n")
	b.WriteString("<input type=\"hidden\" name=\"csrf_token\" value=\"deadbeef01234567\">\n")
	fields := []struct{ label, typ, name string }{
		{"Username", "text", "username"},
		{"Email address", "email", "email"},
		{"Password", "password", "password"},
		{"Confirm password", "password", "password2"},
		{"First name", "text", "first_name"},
		{"Last name", "text", "last_name"},
		{"ZIP code", "text", "zip"},
		{"Phone number", "text", "phone"},
	}
	for _, f := range fields {
		fmt.Fprintf(&b, "<p><label for=\"%s\">%s *</label><input type=%q name=%q id=%q required></p>\n",
			f.name, f.label, f.typ, f.name, f.name)
	}
	b.WriteString("<p><select name=\"state\"><option value=\"\"></option><option value=\"CA\">CA</option><option value=\"NY\">NY</option></select></p>\n")
	b.WriteString("<p><input type=\"checkbox\" name=\"tos\" value=\"on\" required> <label>I agree to the Terms of Service</label></p>\n")
	b.WriteString("<input type=\"submit\" value=\"Create account\">\n</form>\n")
	b.WriteString("<script>if (a < b) { track(\"reg&amp;view\"); }</script>\n")
	b.WriteString("</div>\n<div id=\"footer\"><p>&copy; Example Site</p></div>\n</body></html>\n")
	return b.String()
}()

func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPage)))
	for i := 0; i < b.N; i++ {
		Tokenize(benchPage)
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPage)))
	for i := 0; i < b.N; i++ {
		Parse(benchPage)
	}
}

func BenchmarkText(b *testing.B) {
	doc := Parse(benchPage)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc.Text()
	}
}

func BenchmarkRender(b *testing.B) {
	doc := Parse(benchPage)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Render(doc)
	}
}

func BenchmarkDecodeEntities(b *testing.B) {
	b.Run("clean", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			DecodeEntities("Join thousands of members who trust us every day")
		}
	})
	b.Run("entities", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			DecodeEntities("a&amp;b &lt;strong&gt; &#65;&#x42; &nbsp;done")
		}
	})
}
