package htmldom

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRenderBasic(t *testing.T) {
	src := `<html><body class="x"><p>a &amp; b</p><br><img src="i.png"></body></html>`
	doc := Parse(src)
	out := Render(doc)
	if !strings.Contains(out, `class="x"`) || !strings.Contains(out, "a &amp; b") {
		t.Fatalf("render lost content: %q", out)
	}
	if strings.Contains(out, "</br>") || strings.Contains(out, "</img>") {
		t.Fatalf("void elements got end tags: %q", out)
	}
}

func TestRenderEscapesAttrs(t *testing.T) {
	doc := Parse(`<a href="/x?a=1&amp;b=2" title="say &quot;hi&quot;">t</a>`)
	out := Render(doc)
	re := Parse(out)
	a := re.ElementsByTag("a")[0]
	if v, _ := a.Attr("href"); v != "/x?a=1&b=2" {
		t.Fatalf("href round trip = %q", v)
	}
	if v, _ := a.Attr("title"); v != `say "hi"` {
		t.Fatalf("title round trip = %q", v)
	}
}

func TestEqual(t *testing.T) {
	a := Parse("<div><p>x</p></div>")
	b := Parse("<div><p>x</p></div>")
	c := Parse("<div><p>y</p></div>")
	if !Equal(a, b) {
		t.Fatal("identical trees unequal")
	}
	if Equal(a, c) {
		t.Fatal("different trees equal")
	}
}

// Property: Render∘Parse is a projection — parsing rendered output yields
// an equal tree (idempotence after the first normalization pass).
func TestQuickRenderParseRoundTrip(t *testing.T) {
	f := func(s string) bool {
		first := Parse(s)
		rendered := Render(first)
		second := Parse(rendered)
		return Equal(first, second)
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the round trip also holds for webgen-shaped markup with forms
// and attributes.
func TestQuickFormMarkupRoundTrip(t *testing.T) {
	f := func(name, label string, required bool) bool {
		name = sanitizeIdent(name)
		var req string
		if required {
			req = " required"
		}
		src := `<form action="/r" method="post"><p><label for="` + name + `">` +
			escapeText(label) + `</label><input type="text" name="` + name + `" id="` + name + `"` + req + `></p></form>`
		first := Parse(src)
		return Equal(first, Parse(Render(first)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeIdent(s string) string {
	var b strings.Builder
	b.WriteString("f")
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}
