package htmldom

// Render serializes a DOM back to HTML. Text is entity-escaped, attribute
// values are quoted and escaped, and void elements render without end tags,
// so Parse(Render(doc)) reproduces an equivalent tree. Render is mainly a
// debugging and testing aid: the crawler works on parsed trees, but tests
// use the round-trip property to validate the parser.
func Render(n *Node) string {
	bp := bufPool.Get().(*[]byte)
	buf := renderTo((*bp)[:0], n)
	s := string(buf)
	*bp = buf
	bufPool.Put(bp)
	return s
}

func renderTo(buf []byte, n *Node) []byte {
	switch n.Type {
	case DocumentNode:
		for _, c := range n.Children {
			buf = renderTo(buf, c)
		}
	case TextNode:
		buf = appendEscaped(buf, n.Data, false)
	case CommentNode:
		buf = append(buf, "<!--"...)
		buf = append(buf, n.Data...)
		buf = append(buf, "-->"...)
	case ElementNode:
		buf = append(buf, '<')
		buf = append(buf, n.Tag...)
		for _, a := range n.Attrs {
			buf = append(buf, ' ')
			buf = append(buf, a.Key...)
			buf = append(buf, `="`...)
			buf = appendEscaped(buf, a.Val, true)
			buf = append(buf, '"')
		}
		buf = append(buf, '>')
		if voidElements[n.Tag] {
			return buf
		}
		for _, c := range n.Children {
			buf = renderTo(buf, c)
		}
		buf = append(buf, "</"...)
		buf = append(buf, n.Tag...)
		buf = append(buf, '>')
	}
	return buf
}

// appendEscaped appends s with &, <, > (and, for attribute values, ")
// replaced by entities.
func appendEscaped(buf []byte, s string, attr bool) []byte {
	start := 0
	for i := 0; i < len(s); i++ {
		var ent string
		switch s[i] {
		case '&':
			ent = "&amp;"
		case '<':
			ent = "&lt;"
		case '>':
			ent = "&gt;"
		case '"':
			if !attr {
				continue
			}
			ent = "&quot;"
		default:
			continue
		}
		buf = append(buf, s[start:i]...)
		buf = append(buf, ent...)
		start = i + 1
	}
	return append(buf, s[start:]...)
}

func escapeText(s string) string {
	return string(appendEscaped(nil, s, false))
}

func escapeAttr(s string) string {
	return string(appendEscaped(nil, s, true))
}

// Equal reports whether two trees are structurally identical: same node
// types, tags, attributes (order-sensitive), and text content.
func Equal(a, b *Node) bool {
	if a.Type != b.Type || a.Tag != b.Tag || a.Data != b.Data {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}
