package htmldom

import (
	"strings"
)

// Render serializes a DOM back to HTML. Text is entity-escaped, attribute
// values are quoted and escaped, and void elements render without end tags,
// so Parse(Render(doc)) reproduces an equivalent tree. Render is mainly a
// debugging and testing aid: the crawler works on parsed trees, but tests
// use the round-trip property to validate the parser.
func Render(n *Node) string {
	var b strings.Builder
	renderTo(&b, n)
	return b.String()
}

func renderTo(b *strings.Builder, n *Node) {
	switch n.Type {
	case DocumentNode:
		for _, c := range n.Children {
			renderTo(b, c)
		}
	case TextNode:
		b.WriteString(escapeText(n.Data))
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Key)
			b.WriteString(`="`)
			b.WriteString(escapeAttr(a.Val))
			b.WriteByte('"')
		}
		b.WriteByte('>')
		if voidElements[n.Tag] {
			return
		}
		for _, c := range n.Children {
			renderTo(b, c)
		}
		b.WriteString("</")
		b.WriteString(n.Tag)
		b.WriteByte('>')
	}
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Equal reports whether two trees are structurally identical: same node
// types, tags, attributes (order-sensitive), and text content.
func Equal(a, b *Node) bool {
	if a.Type != b.Type || a.Tag != b.Tag || a.Data != b.Data {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}
