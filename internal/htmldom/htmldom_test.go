package htmldom

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize(`<html><body class="main">Hello <b>world</b></body></html>`)
	var kinds []TokenType
	for _, tk := range toks {
		kinds = append(kinds, tk.Type)
	}
	want := []TokenType{StartTagToken, StartTagToken, TextToken, StartTagToken, TextToken, EndTagToken, EndTagToken, EndTagToken}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d kind %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[1].Attrs[0].Key != "class" || toks[1].Attrs[0].Val != "main" {
		t.Fatalf("attr = %+v", toks[1].Attrs)
	}
}

func TestTokenizeAttributeForms(t *testing.T) {
	toks := Tokenize(`<input type='text' required name=user value="a&amp;b">`)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens", len(toks))
	}
	tok := toks[0]
	get := func(k string) (string, bool) {
		for _, a := range tok.Attrs {
			if a.Key == k {
				return a.Val, true
			}
		}
		return "", false
	}
	if v, _ := get("type"); v != "text" {
		t.Errorf("type = %q", v)
	}
	if _, ok := get("required"); !ok {
		t.Error("bare attribute 'required' missing")
	}
	if v, _ := get("name"); v != "user" {
		t.Errorf("unquoted name = %q", v)
	}
	if v, _ := get("value"); v != "a&b" {
		t.Errorf("entity-decoded value = %q", v)
	}
}

func TestTokenizeSelfClosingAndComments(t *testing.T) {
	toks := Tokenize(`<!DOCTYPE html><!-- hi --><br/><img src=x />`)
	if toks[0].Type != DoctypeToken {
		t.Fatalf("token 0 = %v", toks[0])
	}
	if toks[1].Type != CommentToken || strings.TrimSpace(toks[1].Data) != "hi" {
		t.Fatalf("comment = %+v", toks[1])
	}
	if toks[2].Type != SelfClosingTagToken || toks[2].Data != "br" {
		t.Fatalf("br = %+v", toks[2])
	}
	if toks[3].Type != SelfClosingTagToken || toks[3].Data != "img" {
		t.Fatalf("img = %+v", toks[3])
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	src := `<script>if (a < b) { document.write("<p>hi</p>"); }</script><p>after</p>`
	doc := Parse(src)
	if ps := doc.ElementsByTag("p"); len(ps) != 1 || ps[0].Text() != "after" {
		t.Fatalf("script content leaked into DOM: %d <p> elements", len(ps))
	}
	script := doc.ElementsByTag("script")[0]
	if !strings.Contains(script.Children[0].Data, "a < b") {
		t.Fatalf("script text lost: %q", script.Children[0].Data)
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := map[string]string{
		"a&amp;b":        "a&b",
		"&lt;x&gt;":      "<x>",
		"&quot;q&quot;":  `"q"`,
		"&#65;&#x42;":    "AB",
		"no entities":    "no entities",
		"&bogus;":        "&bogus;",
		"&unterminated":  "&unterminated",
		"&nbsp;joined":   " joined",
		"&#xZZ; literal": "&#xZZ; literal",
	}
	for in, want := range cases {
		if got := DecodeEntities(in); got != want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseTree(t *testing.T) {
	doc := Parse(`<html><body><div id="a"><p>one</p><p>two</p></div></body></html>`)
	div := doc.ByID("a")
	if div == nil {
		t.Fatal("ByID(a) = nil")
	}
	ps := div.ElementsByTag("p")
	if len(ps) != 2 {
		t.Fatalf("got %d <p>, want 2 (auto-close p-in-p)", len(ps))
	}
	if ps[0].Text() != "one" || ps[1].Text() != "two" {
		t.Fatalf("texts = %q, %q", ps[0].Text(), ps[1].Text())
	}
	if ps[0].Parent != div {
		t.Fatal("parent pointer wrong")
	}
}

func TestParseUnclosedTags(t *testing.T) {
	doc := Parse(`<ul><li>one<li>two<li>three</ul><p>after`)
	lis := doc.ElementsByTag("li")
	if len(lis) != 3 {
		t.Fatalf("got %d <li>, want 3", len(lis))
	}
	for i, want := range []string{"one", "two", "three"} {
		if lis[i].Text() != want {
			t.Fatalf("li[%d] = %q, want %q", i, lis[i].Text(), want)
		}
	}
	if p := doc.First(func(n *Node) bool { return n.Tag == "p" }); p == nil || p.Text() != "after" {
		t.Fatal("trailing unclosed <p> lost")
	}
}

func TestParseStrayEndTagIgnored(t *testing.T) {
	doc := Parse(`<div>a</span>b</div>`)
	div := doc.ElementsByTag("div")[0]
	if got := div.Text(); got != "a b" && got != "ab" {
		t.Fatalf("div text = %q", got)
	}
}

func TestVoidElementsTakeNoChildren(t *testing.T) {
	doc := Parse(`<form><input name="a"><input name="b"></form>`)
	inputs := doc.ElementsByTag("input")
	if len(inputs) != 2 {
		t.Fatalf("got %d inputs, want 2", len(inputs))
	}
	for _, in := range inputs {
		if len(in.Children) != 0 {
			t.Fatalf("void element has children: %+v", in)
		}
	}
	if inputs[0].Parent.Tag != "form" || inputs[1].Parent.Tag != "form" {
		t.Fatal("inputs not siblings under form")
	}
}

func TestNodeTextCollapsesWhitespace(t *testing.T) {
	doc := Parse("<p>  hello\n\t  world  </p>")
	if got := doc.Text(); got != "hello world" {
		t.Fatalf("Text() = %q", got)
	}
}

func TestAttrHelpers(t *testing.T) {
	doc := Parse(`<a href="/x" id="link1">go</a>`)
	a := doc.ElementsByTag("a")[0]
	if v, ok := a.Attr("href"); !ok || v != "/x" {
		t.Fatalf("Attr(href) = %q, %v", v, ok)
	}
	if a.AttrOr("missing", "dflt") != "dflt" {
		t.Fatal("AttrOr default broken")
	}
	if !a.HasAttr("id") || a.HasAttr("nope") {
		t.Fatal("HasAttr broken")
	}
	if a.ID() != "link1" {
		t.Fatalf("ID() = %q", a.ID())
	}
}

func TestAncestorAndPrevSibling(t *testing.T) {
	doc := Parse(`<form><label>User</label><input name="u"></form>`)
	input := doc.ElementsByTag("input")[0]
	if f := input.Ancestor("form"); f == nil || f.Tag != "form" {
		t.Fatal("Ancestor(form) failed")
	}
	prev := input.PrevSibling()
	if prev == nil || prev.Tag != "label" {
		t.Fatalf("PrevSibling = %+v", prev)
	}
	if doc.PrevSibling() != nil {
		t.Fatal("document PrevSibling should be nil")
	}
}

func TestSelectOptionAutoClose(t *testing.T) {
	doc := Parse(`<select name="s"><option value="1">One<option value="2">Two</select>`)
	opts := doc.ElementsByTag("option")
	if len(opts) != 2 {
		t.Fatalf("got %d options, want 2", len(opts))
	}
	if opts[0].AttrOr("value", "") != "1" || opts[1].AttrOr("value", "") != "2" {
		t.Fatalf("option values wrong: %+v", opts)
	}
}

func TestTableRowAutoClose(t *testing.T) {
	doc := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`)
	if trs := doc.ElementsByTag("tr"); len(trs) != 2 {
		t.Fatalf("got %d rows, want 2", len(trs))
	}
	if tds := doc.ElementsByTag("td"); len(tds) != 3 {
		t.Fatalf("got %d cells, want 3", len(tds))
	}
}

func TestWalkPruning(t *testing.T) {
	doc := Parse(`<div id="skip"><p>inner</p></div><p>outer</p>`)
	var seen []string
	doc.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			seen = append(seen, n.Tag)
		}
		return n.ID() != "skip"
	})
	for _, tag := range seen {
		if tag == "p" {
			// one <p> is outside the pruned subtree; ensure inner not seen
			// by checking count below.
			continue
		}
	}
	count := 0
	for _, tag := range seen {
		if tag == "p" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("Walk pruning failed: saw %d <p>", count)
	}
}

func TestLoneLessThanIsText(t *testing.T) {
	doc := Parse(`<p>1 < 2 and 3 > 2</p>`)
	if got := doc.Text(); !strings.Contains(got, "<") {
		t.Fatalf("lone '<' lost: %q", got)
	}
}

// Property: Parse never panics and yields a document whose element parents
// are consistent, for arbitrary byte soup.
func TestQuickParseTotal(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		ok := true
		doc.Walk(func(n *Node) bool {
			for _, c := range n.Children {
				if c.Parent != n {
					ok = false
				}
			}
			return true
		})
		return ok && doc.Type == DocumentNode
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// Property: well-formed nested markup round-trips its text content.
func TestQuickNestedDivsPreserveText(t *testing.T) {
	f := func(depth uint8, payload string) bool {
		d := int(depth%10) + 1
		payload = strings.Map(func(r rune) rune {
			if r == '<' || r == '&' || r == '>' {
				return 'x'
			}
			return r
		}, payload)
		var b strings.Builder
		for i := 0; i < d; i++ {
			b.WriteString("<div>")
		}
		b.WriteString(payload)
		for i := 0; i < d; i++ {
			b.WriteString("</div>")
		}
		doc := Parse(b.String())
		return len(doc.ElementsByTag("div")) == d &&
			doc.Text() == strings.Join(strings.Fields(payload), " ")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}
