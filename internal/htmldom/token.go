// Package htmldom implements a small HTML tokenizer, a lenient tree parser,
// and a queryable DOM. It is the document substrate for the headless
// browser (internal/browser) that replaces the paper's PhantomJS/WebKit
// engine: the crawler's registration heuristics run weighted regular
// expressions over these nodes exactly as the paper's heuristics ran over
// WebKit's DOM.
//
// The parser is deliberately forgiving, in the spirit of real browsers:
// unknown tags, stray end tags, and unclosed elements never fail; they
// produce the most reasonable tree.
package htmldom

import (
	"strings"
)

// TokenType identifies the kind of a lexical token.
type TokenType int

const (
	// TextToken is character data between tags.
	TextToken TokenType = iota
	// StartTagToken is <name attr="v">.
	StartTagToken
	// EndTagToken is </name>.
	EndTagToken
	// SelfClosingTagToken is <name/>.
	SelfClosingTagToken
	// CommentToken is <!-- ... -->.
	CommentToken
	// DoctypeToken is <!DOCTYPE ...>.
	DoctypeToken
)

// Attr is a single name="value" attribute. Names are lower-cased by the
// tokenizer; values are entity-decoded.
type Attr struct {
	Key string
	Val string
}

// Token is one lexical token.
type Token struct {
	Type  TokenType
	Data  string // tag name (lower-case) or text/comment content
	Attrs []Attr
}

// Tokenize lexes src into tokens. It never fails: malformed markup
// degrades to text.
func Tokenize(src string) []Token {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			toks = appendText(toks, src[i:])
			break
		}
		if lt > 0 {
			toks = appendText(toks, src[i:i+lt])
			i += lt
		}
		// src[i] == '<'
		if i+1 >= n {
			toks = appendText(toks, src[i:])
			break
		}
		switch {
		case strings.HasPrefix(src[i:], "<!--"):
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				toks = append(toks, Token{Type: CommentToken, Data: src[i+4:]})
				i = n
			} else {
				toks = append(toks, Token{Type: CommentToken, Data: src[i+4 : i+4+end]})
				i += 4 + end + 3
			}
		case src[i+1] == '!':
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				toks = appendText(toks, src[i:])
				i = n
			} else {
				toks = append(toks, Token{Type: DoctypeToken, Data: strings.TrimSpace(src[i+2 : i+end])})
				i += end + 1
			}
		case src[i+1] == '/':
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				toks = appendText(toks, src[i:])
				i = n
			} else {
				name := strings.ToLower(strings.TrimSpace(src[i+2 : i+end]))
				if isTagName(name) {
					toks = append(toks, Token{Type: EndTagToken, Data: name})
				}
				i += end + 1
			}
		case isNameStart(src[i+1]):
			tok, adv := lexStartTag(src[i:])
			toks = append(toks, tok)
			i += adv
			// Raw-text elements: swallow everything up to the matching
			// close tag so scripts/styles never parse as markup.
			if tok.Type == StartTagToken && (tok.Data == "script" || tok.Data == "style") {
				closeTag := "</" + tok.Data
				rest := strings.ToLower(src[i:])
				idx := strings.Index(rest, closeTag)
				if idx < 0 {
					toks = appendText(toks, src[i:])
					i = n
					break
				}
				if idx > 0 {
					toks = append(toks, Token{Type: TextToken, Data: src[i : i+idx]})
				}
				gt := strings.IndexByte(src[i+idx:], '>')
				toks = append(toks, Token{Type: EndTagToken, Data: tok.Data})
				if gt < 0 {
					i = n
				} else {
					i += idx + gt + 1
				}
			}
		default:
			// A lone '<' that does not begin a tag is text.
			toks = appendText(toks, "<")
			i++
		}
	}
	return toks
}

func appendText(toks []Token, s string) []Token {
	if s == "" {
		return toks
	}
	if len(toks) > 0 && toks[len(toks)-1].Type == TextToken {
		toks[len(toks)-1].Data += DecodeEntities(s)
		return toks
	}
	return append(toks, Token{Type: TextToken, Data: DecodeEntities(s)})
}

// lexStartTag lexes a start tag beginning at src[0] == '<'. It returns the
// token and the number of bytes consumed.
func lexStartTag(src string) (Token, int) {
	i := 1
	n := len(src)
	start := i
	for i < n && isNameChar(src[i]) {
		i++
	}
	tok := Token{Type: StartTagToken, Data: strings.ToLower(src[start:i])}
	for {
		for i < n && isSpace(src[i]) {
			i++
		}
		if i >= n {
			return tok, n
		}
		if src[i] == '>' {
			return tok, i + 1
		}
		if src[i] == '/' {
			// Possibly self-closing.
			j := i + 1
			for j < n && isSpace(src[j]) {
				j++
			}
			if j < n && src[j] == '>' {
				tok.Type = SelfClosingTagToken
				return tok, j + 1
			}
			i++
			continue
		}
		// Attribute name.
		aStart := i
		for i < n && src[i] != '=' && src[i] != '>' && src[i] != '/' && !isSpace(src[i]) {
			i++
		}
		name := strings.ToLower(src[aStart:i])
		val := ""
		for i < n && isSpace(src[i]) {
			i++
		}
		if i < n && src[i] == '=' {
			i++
			for i < n && isSpace(src[i]) {
				i++
			}
			if i < n && (src[i] == '"' || src[i] == '\'') {
				q := src[i]
				i++
				vStart := i
				for i < n && src[i] != q {
					i++
				}
				val = src[vStart:i]
				if i < n {
					i++ // closing quote
				}
			} else {
				vStart := i
				for i < n && !isSpace(src[i]) && src[i] != '>' {
					i++
				}
				val = src[vStart:i]
			}
		}
		if name != "" {
			tok.Attrs = append(tok.Attrs, Attr{Key: name, Val: DecodeEntities(val)})
		}
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' }

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '_' || c == ':'
}

func isTagName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i]) {
			return false
		}
	}
	return true
}

// DecodeEntities decodes the common named HTML entities and numeric
// character references.
func DecodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte('&')
			i++
			continue
		}
		ent := s[i+1 : i+semi]
		switch {
		case ent == "amp":
			b.WriteByte('&')
		case ent == "lt":
			b.WriteByte('<')
		case ent == "gt":
			b.WriteByte('>')
		case ent == "quot":
			b.WriteByte('"')
		case ent == "apos":
			b.WriteByte('\'')
		case ent == "nbsp":
			b.WriteByte(' ')
		case strings.HasPrefix(ent, "#"):
			r := parseNumericRef(ent[1:])
			if r < 0 {
				b.WriteByte('&')
				i++
				continue
			}
			b.WriteRune(rune(r))
		default:
			b.WriteByte('&')
			i++
			continue
		}
		i += semi + 1
	}
	return b.String()
}

func parseNumericRef(s string) int {
	base := 10
	if len(s) > 1 && (s[0] == 'x' || s[0] == 'X') {
		base = 16
		s = s[1:]
	}
	if s == "" {
		return -1
	}
	v := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d int
		switch {
		case c >= '0' && c <= '9':
			d = int(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int(c-'A') + 10
		default:
			return -1
		}
		v = v*base + d
		if v > 0x10FFFF {
			return -1
		}
	}
	return v
}
