// Package htmldom implements a small HTML tokenizer, a lenient tree parser,
// and a queryable DOM. It is the document substrate for the headless
// browser (internal/browser) that replaces the paper's PhantomJS/WebKit
// engine: the crawler's registration heuristics run weighted regular
// expressions over these nodes exactly as the paper's heuristics ran over
// WebKit's DOM.
//
// The parser is deliberately forgiving, in the spirit of real browsers:
// unknown tags, stray end tags, and unclosed elements never fail; they
// produce the most reasonable tree.
//
// The tokenizer streams: Parse consumes tokens one at a time from a
// Tokenizer without materializing a token slice, tag and attribute names
// are interned, and entity decoding has an allocation-free fast path, so
// the steady-state crawl loop parses pages with a near-minimal number of
// allocations.
package htmldom

import (
	"strings"
)

// TokenType identifies the kind of a lexical token.
type TokenType int

const (
	// TextToken is character data between tags.
	TextToken TokenType = iota
	// StartTagToken is <name attr="v">.
	StartTagToken
	// EndTagToken is </name>.
	EndTagToken
	// SelfClosingTagToken is <name/>.
	SelfClosingTagToken
	// CommentToken is <!-- ... -->.
	CommentToken
	// DoctypeToken is <!DOCTYPE ...>.
	DoctypeToken
)

// Attr is a single name="value" attribute. Names are lower-cased by the
// tokenizer; values are entity-decoded.
type Attr struct {
	Key string
	Val string
}

// Token is one lexical token.
type Token struct {
	Type  TokenType
	Data  string // tag name (lower-case) or text/comment content
	Attrs []Attr
}

// Tokenizer lexes a document incrementally. The zero value is not usable;
// construct with NewTokenizer. Adjacent text may be emitted as multiple
// TextTokens (Tokenize and Parse coalesce them); malformed markup never
// fails, it degrades to text.
type Tokenizer struct {
	src string
	i   int
	// queue holds tokens already lexed but not yet returned: the raw-text
	// body and close tag of a <script>/<style> element are produced
	// together with its start tag.
	queue [2]Token
	qn    int // tokens in queue
	qi    int // next queue slot to return
	// attrs is a chunked slab backing every token's Attrs slice, so a
	// document costs a handful of attribute allocations rather than one per
	// tag. A full chunk is abandoned, never regrown, keeping issued slices
	// valid; tokens get capacity-clamped views so an append on a token
	// cannot clobber a neighbour.
	attrs []Attr
}

// NewTokenizer returns a tokenizer over src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token. ok is false when the input is exhausted.
func (z *Tokenizer) Next() (tok Token, ok bool) {
	if z.qi < z.qn {
		tok = z.queue[z.qi]
		z.qi++
		return tok, true
	}
	src, n := z.src, len(z.src)
	for z.i < n {
		i := z.i
		if src[i] != '<' {
			return z.lexText(), true
		}
		// src[i] == '<'
		if i+1 >= n {
			z.i = n
			return Token{Type: TextToken, Data: DecodeEntities(src[i:])}, true
		}
		switch {
		case strings.HasPrefix(src[i:], "<!--"):
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				z.i = n
				return Token{Type: CommentToken, Data: src[i+4:]}, true
			}
			z.i = i + 4 + end + 3
			return Token{Type: CommentToken, Data: src[i+4 : i+4+end]}, true
		case src[i+1] == '!':
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				z.i = n
				return Token{Type: TextToken, Data: DecodeEntities(src[i:])}, true
			}
			z.i = i + end + 1
			return Token{Type: DoctypeToken, Data: strings.TrimSpace(src[i+2 : i+end])}, true
		case src[i+1] == '/':
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				z.i = n
				return Token{Type: TextToken, Data: DecodeEntities(src[i:])}, true
			}
			z.i = i + end + 1
			name := lowerName(strings.TrimSpace(src[i+2 : i+end]))
			if isTagName(name) {
				return Token{Type: EndTagToken, Data: name}, true
			}
			continue // dropped invalid end tag: no token
		case isNameStart(src[i+1]):
			tok, adv := z.lexStartTag(src[i:])
			z.i = i + adv
			// Raw-text elements: swallow everything up to the matching
			// close tag so scripts/styles never parse as markup.
			if tok.Type == StartTagToken && (tok.Data == "script" || tok.Data == "style") {
				z.queueRawText(tok.Data)
			}
			return tok, true
		default:
			// A lone '<' that does not begin a tag is text; lexText
			// consumes it together with any following character data.
			return z.lexText(), true
		}
	}
	return Token{}, false
}

// lexText consumes a maximal run of character data starting at z.i. Lone
// '<' characters that do not open a tag, comment, or doctype are part of
// the run.
func (z *Tokenizer) lexText() Token {
	src, n := z.src, len(z.src)
	start := z.i
	i := start
	for {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			i = n
			break
		}
		i += lt
		if i+1 >= n {
			i = n // trailing '<' is text
			break
		}
		c := src[i+1]
		if c == '!' || c == '/' || isNameStart(c) {
			break // a construct begins here (it may still degrade to text)
		}
		i++ // lone '<': keep scanning
	}
	z.i = i
	return Token{Type: TextToken, Data: DecodeEntities(src[start:i])}
}

// queueRawText lexes the raw-text body and close tag of a just-opened
// <script>/<style> element into the token queue.
func (z *Tokenizer) queueRawText(name string) {
	src, n := z.src, len(z.src)
	i := z.i
	z.qn, z.qi = 0, 0
	idx := indexCloseTag(src[i:], name)
	if idx < 0 {
		if i < n {
			z.queue[z.qn] = Token{Type: TextToken, Data: DecodeEntities(src[i:])}
			z.qn++
		}
		z.i = n
		return
	}
	if idx > 0 {
		z.queue[z.qn] = Token{Type: TextToken, Data: src[i : i+idx]}
		z.qn++
	}
	z.queue[z.qn] = Token{Type: EndTagToken, Data: name}
	z.qn++
	gt := strings.IndexByte(src[i+idx:], '>')
	if gt < 0 {
		z.i = n
	} else {
		z.i = i + idx + gt + 1
	}
}

// indexCloseTag returns the index of the first "</name" in s, matched
// ASCII-case-insensitively, or -1. It replaces lower-casing the whole
// remaining document per raw-text element.
func indexCloseTag(s, name string) int {
	for j := 0; ; {
		k := strings.Index(s[j:], "</")
		if k < 0 {
			return -1
		}
		j += k
		if len(s)-j >= 2+len(name) && asciiFoldEqual(s[j+2:j+2+len(name)], name) {
			return j
		}
		j += 2
	}
}

// asciiFoldEqual reports whether a equals b under ASCII case folding; b
// must already be lower-case.
func asciiFoldEqual(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		c := a[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != b[i] {
			return false
		}
	}
	return true
}

// Tokenize lexes src into tokens. It never fails: malformed markup
// degrades to text. Adjacent text is coalesced, matching what Parse builds.
func Tokenize(src string) []Token {
	var toks []Token
	z := Tokenizer{src: src}
	for {
		tok, ok := z.Next()
		if !ok {
			return toks
		}
		if tok.Type == TextToken {
			if tok.Data == "" {
				continue
			}
			if len(toks) > 0 && toks[len(toks)-1].Type == TextToken {
				toks[len(toks)-1].Data += tok.Data
				continue
			}
		}
		toks = append(toks, tok)
	}
}

// pushAttr appends a to the attribute slab, growing it with the current
// tag's attributes carried over so a tag's slice stays contiguous. It
// returns the (possibly relocated) index of the tag's first attribute.
func (z *Tokenizer) pushAttr(tagStart int, a Attr) int {
	if len(z.attrs) == cap(z.attrs) {
		next := make([]Attr, len(z.attrs)-tagStart, 64)
		copy(next, z.attrs[tagStart:])
		z.attrs = next
		tagStart = 0
	}
	z.attrs = append(z.attrs, a)
	return tagStart
}

// lexStartTag lexes a start tag beginning at src[0] == '<'. It returns the
// token and the number of bytes consumed.
func (z *Tokenizer) lexStartTag(src string) (Token, int) {
	i := 1
	n := len(src)
	start := i
	for i < n && isNameChar(src[i]) {
		i++
	}
	tok := Token{Type: StartTagToken, Data: lowerName(src[start:i])}
	tagStart := len(z.attrs)
	for {
		for i < n && isSpace(src[i]) {
			i++
		}
		if i >= n {
			return tok, n
		}
		if src[i] == '>' {
			return tok, i + 1
		}
		if src[i] == '/' {
			// Possibly self-closing.
			j := i + 1
			for j < n && isSpace(src[j]) {
				j++
			}
			if j < n && src[j] == '>' {
				tok.Type = SelfClosingTagToken
				return tok, j + 1
			}
			i++
			continue
		}
		// Attribute name.
		aStart := i
		for i < n && src[i] != '=' && src[i] != '>' && src[i] != '/' && !isSpace(src[i]) {
			i++
		}
		name := lowerName(src[aStart:i])
		val := ""
		for i < n && isSpace(src[i]) {
			i++
		}
		if i < n && src[i] == '=' {
			i++
			for i < n && isSpace(src[i]) {
				i++
			}
			if i < n && (src[i] == '"' || src[i] == '\'') {
				q := src[i]
				i++
				vStart := i
				for i < n && src[i] != q {
					i++
				}
				val = src[vStart:i]
				if i < n {
					i++ // closing quote
				}
			} else {
				vStart := i
				for i < n && !isSpace(src[i]) && src[i] != '>' {
					i++
				}
				val = src[vStart:i]
			}
		}
		if name != "" {
			tagStart = z.pushAttr(tagStart, Attr{Key: name, Val: DecodeEntities(val)})
			tok.Attrs = z.attrs[tagStart:len(z.attrs):len(z.attrs)]
		}
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' }

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '_' || c == ':'
}

func isTagName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i]) {
			return false
		}
	}
	return true
}

// internTable dedups the tag and attribute names that dominate real
// markup so mixed-case input does not allocate a lower-cased copy per
// node. (Already-lower-case names skip it: they are substrings of the
// source and free.)
var internTable = func() map[string]string {
	names := []string{
		// tags
		"html", "head", "title", "meta", "link", "body", "div", "span",
		"p", "a", "ul", "ol", "li", "h1", "h2", "h3", "h4", "br", "hr",
		"img", "form", "input", "label", "select", "option", "textarea",
		"button", "table", "tr", "td", "th", "thead", "tbody", "script",
		"style", "strong", "em", "b", "i", "small", "footer", "header",
		"nav", "section", "article",
		// attributes
		"id", "class", "href", "src", "alt", "name", "value", "type",
		"action", "method", "placeholder", "required", "for", "rel",
		"content", "charset", "checked", "selected", "disabled",
		"data-sitekey",
	}
	m := make(map[string]string, len(names))
	for _, s := range names {
		m[s] = s
	}
	return m
}()

// lowerName lower-cases an ASCII tag/attribute name, interning common
// names and avoiding any allocation when s is already lower-case.
func lowerName(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		// Already lower-case: s is a zero-copy substring of the source,
		// which the tree pins anyway through its text nodes — interning
		// would only trade a map lookup per name for nothing.
		return s
	}
	if len(s) <= 64 {
		var buf [64]byte
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			buf[i] = c
		}
		// Map lookup with a converted []byte key does not allocate.
		if in, ok := internTable[string(buf[:len(s)])]; ok {
			return in
		}
		return string(buf[:len(s)])
	}
	return strings.ToLower(s)
}

// DecodeEntities decodes the common named HTML entities and numeric
// character references. When s contains nothing decodable it is returned
// as-is, with no allocation.
func DecodeEntities(s string) string {
	i := strings.IndexByte(s, '&')
	if i < 0 {
		return s
	}
	var b strings.Builder
	started := false
	start := 0 // beginning of the pending literal run
	for i < len(s) {
		if s[i] != '&' {
			next := strings.IndexByte(s[i:], '&')
			if next < 0 {
				break
			}
			i += next
		}
		r, width, ok := decodeEntity(s[i:])
		if !ok {
			i++
			continue
		}
		if !started {
			b.Grow(len(s))
			started = true
		}
		b.WriteString(s[start:i])
		b.WriteRune(r)
		i += width
		start = i
	}
	if !started {
		return s
	}
	b.WriteString(s[start:])
	return b.String()
}

// decodeEntity decodes one entity at s[0] == '&'. width is the number of
// input bytes consumed.
func decodeEntity(s string) (r rune, width int, ok bool) {
	semi := strings.IndexByte(s, ';')
	if semi < 0 || semi > 10 {
		return 0, 0, false
	}
	ent := s[1:semi]
	switch ent {
	case "amp":
		return '&', semi + 1, true
	case "lt":
		return '<', semi + 1, true
	case "gt":
		return '>', semi + 1, true
	case "quot":
		return '"', semi + 1, true
	case "apos":
		return '\'', semi + 1, true
	case "nbsp":
		return ' ', semi + 1, true
	}
	if strings.HasPrefix(ent, "#") {
		if v := parseNumericRef(ent[1:]); v >= 0 {
			return rune(v), semi + 1, true
		}
	}
	return 0, 0, false
}

func parseNumericRef(s string) int {
	base := 10
	if len(s) > 1 && (s[0] == 'x' || s[0] == 'X') {
		base = 16
		s = s[1:]
	}
	if s == "" {
		return -1
	}
	v := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d int
		switch {
		case c >= '0' && c <= '9':
			d = int(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int(c-'A') + 10
		default:
			return -1
		}
		v = v*base + d
		if v > 0x10FFFF {
			return -1
		}
	}
	return v
}
