package htmldom

import "testing"

// allocPage is a small but representative document: nesting, attributes,
// an entity, and text runs. Small on purpose — the budgets below are per
// structural feature, not amortized away by input size.
const allocPage = `<html><head><title>t</title></head><body><div class="x"><p>hello &amp; goodbye</p><a href="/reg">Sign up</a></div></body></html>`

// TestParseAllocBudget pins the allocation count of the streaming parse
// path. The slab allocator hands out nodes in chunks and the tokenizer
// feeds the parser without materializing a token slice, so the whole
// parse of allocPage costs a fixed handful of allocations. The budget is
// the measured count plus slack of two; a regression that reintroduces
// per-token or per-node allocation blows well past it.
func TestParseAllocBudget(t *testing.T) {
	const budget = 16
	if got := testing.AllocsPerRun(200, func() { Parse(allocPage) }); got > budget {
		t.Errorf("Parse(allocPage) = %.1f allocs/op, budget %d", got, budget)
	}
}

// TestTokenizeAllocBudget pins the streaming tokenizer on its own: a
// Tokenizer walk allocates only for attribute slices and non-interned
// names, never per token.
func TestTokenizeAllocBudget(t *testing.T) {
	const budget = 5
	got := testing.AllocsPerRun(200, func() {
		tz := NewTokenizer(allocPage)
		for {
			if _, ok := tz.Next(); !ok {
				break
			}
		}
	})
	if got > budget {
		t.Errorf("tokenizer walk = %.1f allocs/op, budget %d", got, budget)
	}
}

// TestDecodeEntitiesFastPathAllocs proves the two no-op fast paths are
// allocation-free: text without '&' returns before any scanning, and
// text whose ampersands decode to nothing returns the input string
// unchanged without ever starting a builder.
func TestDecodeEntitiesFastPathAllocs(t *testing.T) {
	cases := map[string]string{
		"no-ampersand":    "plain text with no references at all",
		"bare-ampersands": "a & b &x < > but no decodable refs &; &nosuch;",
	}
	for name, in := range cases {
		if got := testing.AllocsPerRun(200, func() { DecodeEntities(in) }); got != 0 {
			t.Errorf("%s: DecodeEntities = %.1f allocs/op, want 0", name, got)
		}
		if out := DecodeEntities(in); out != in {
			t.Errorf("%s: fast path changed the input: %q", name, out)
		}
	}
}

// TestTextRenderAllocBudget pins the pooled-buffer paths: extracting the
// collapsed text of a parsed document and re-serializing it each cost
// exactly one allocation — the final string copy out of the pooled buffer.
func TestTextRenderAllocBudget(t *testing.T) {
	doc := Parse(allocPage)
	if got := testing.AllocsPerRun(200, func() { doc.Text() }); got > 1 {
		t.Errorf("Text = %.1f allocs/op, want <= 1", got)
	}
	if got := testing.AllocsPerRun(200, func() { Render(doc) }); got > 1 {
		t.Errorf("Render = %.1f allocs/op, want <= 1", got)
	}
}
