package xrand

import (
	"math"
	"testing"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverge at draw %d", i)
		}
	}
	if New(42).Uint64() == New(43).Uint64() {
		t.Error("adjacent seeds produce identical first draws")
	}
}

func TestSeedResets(t *testing.T) {
	s := NewSource(7)
	first := s.Uint64()
	s.Uint64()
	s.Seed(7)
	if got := s.Uint64(); got != first {
		t.Errorf("Seed did not reset the stream: %d vs %d", got, first)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := NewSource(-12345)
	for i := 0; i < 10000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative value %d", v)
		}
	}
}

// TestFloat64Uniform sanity-checks the splitmix64 stream through the
// rand.Rand adapters the simulation actually uses: Float64 mean and bucket
// occupancy, and Intn balance. These are coarse bands — the point is to
// catch a broken bit-mixing change, not to certify the generator.
func TestFloat64Uniform(t *testing.T) {
	r := New(1)
	const n = 200000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
		buckets[int(v*10)]++
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean %.4f too far from 0.5", mean)
	}
	for i, c := range buckets {
		if f := float64(c) / n; f < 0.09 || f > 0.11 {
			t.Errorf("bucket %d occupancy %.4f outside [0.09, 0.11]", i, f)
		}
	}
}

func TestIntnBalance(t *testing.T) {
	r := New(2)
	const n = 120000
	counts := make([]int, 6)
	for i := 0; i < n; i++ {
		counts[r.Intn(6)]++
	}
	for i, c := range counts {
		if f := float64(c) / n; f < 0.15 || f > 0.185 {
			t.Errorf("Intn(6) value %d frequency %.4f outside [0.15, 0.185]", i, f)
		}
	}
}

// TestMixDecorrelates checks that Mix produces distinct child seeds across
// neighbouring (k, stream) pairs — the property the parallel engine's
// per-task streams rely on.
func TestMixDecorrelates(t *testing.T) {
	seen := make(map[int64]bool)
	for k := int64(0); k < 1000; k++ {
		for stream := int64(1); stream <= 4; stream++ {
			s := Mix(42, k, stream)
			if seen[s] {
				t.Fatalf("Mix collision at k=%d stream=%d", k, stream)
			}
			seen[s] = true
		}
	}
}

func BenchmarkNewSource(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = New(int64(i)).Uint64()
	}
}
