// Package xrand provides cheap deterministic randomness for hot paths.
//
// math/rand's default source is a 607-word lagged-Fibonacci generator whose
// Seed runs ~600 iterations of a multiplicative recurrence and whose state
// costs ~4.9 KB per source. That is irrelevant for long-lived generators but
// dominates when a source lives for one crawl task: profiling the parallel
// crawl engine showed rand.NewSource as ~30% of wave CPU and ~39% of
// allocated bytes. Source here is a splitmix64 generator: 8 bytes of state,
// O(1) seeding, and statistical quality that comfortably exceeds the
// lagged-Fibonacci source for simulation use.
//
// The package also hosts Mix, the (seed, rank, stream) child-seed derivation
// shared by the parallel crawl engine, the standalone crawler command, and
// lazy site materialization, so every component derives decorrelated streams
// the same way.
package xrand

import "math/rand"

// Mix derives a decorrelated child seed from (seed, k, stream) with a
// splitmix64-style finalizer, so derived seeds are independent of each other
// and of every package-level RNG seeded with small offsets of a study seed.
func Mix(seed, k, stream int64) int64 {
	z := uint64(seed) + uint64(k)*0x9e3779b97f4a7c15 + uint64(stream)*0xff51afd7ed558ccd
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Source is a splitmix64 rand.Source64. The zero value is a valid generator
// (equivalent to NewSource(0)); it is not safe for concurrent use, exactly
// like math/rand sources.
type Source struct {
	state uint64
}

// NewSource returns a Source seeded in O(1).
func NewSource(seed int64) *Source {
	return &Source{state: uint64(seed)}
}

// Seed resets the generator state. Implements rand.Source.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 returns the next value in the splitmix64 sequence. Implements
// rand.Source64.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Int63 returns a non-negative 63-bit value. Implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// New returns a *rand.Rand over a fresh splitmix64 source. It is a drop-in
// replacement for rand.New(rand.NewSource(seed)) on paths that create one
// generator per task, per site, or per page render.
func New(seed int64) *rand.Rand { return rand.New(NewSource(seed)) }
