package core

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"tripwire/internal/emailprovider"
	"tripwire/internal/identity"
)

// AttributedLogin is one provider login event attributed to a registration.
type AttributedLogin struct {
	Event        emailprovider.LoginEvent
	Registration *Registration
}

// IntegrityAlarm is raised when a login trips an account that was never
// registered anywhere. Under the paper's threat analysis (§4.4) this would
// indicate compromise of the email provider or of Tripwire's own database —
// it must never fire in a healthy deployment.
type IntegrityAlarm struct {
	Event  emailprovider.LoginEvent
	Reason string
}

// Error renders the alarm.
func (a IntegrityAlarm) Error() string {
	return fmt.Sprintf("core: integrity alarm: %s (account %s at %s from %s)",
		a.Reason, a.Event.Account, a.Event.Time.Format(time.RFC3339), a.Event.IP)
}

// ExpectedControlLogin describes a legitimate login Tripwire itself makes
// to a control account, so the monitor can both verify the provider reports
// it and avoid flagging it.
type ExpectedControlLogin struct {
	Account string
	From    netip.Addr
}

// Monitor correlates provider login dumps with the registration ledger and
// maintains per-site detection state.
type Monitor struct {
	mu     sync.Mutex
	ledger *Ledger

	lastDump   time.Time
	attributed []AttributedLogin
	alarms     []IntegrityAlarm

	expectedControls map[string]bool // account -> expected
	seenControls     map[string]int  // account -> observed logins

	// detections indexed by site domain, in first-detection order.
	detections map[string]*Detection
	order      []string

	// rev counts durable-state mutations (checkpoint cache key).
	rev uint64

	// Metrics, when non-nil, receives per-dump observations. Recording is
	// atomic-only and never influences attribution.
	Metrics *MonitorMetrics
}

// Detection is the monitor's evidence of compromise at one site.
type Detection struct {
	Domain    string
	Rank      int
	Category  string
	FirstSeen time.Time
	LastSeen  time.Time
	// Logins per account email.
	Logins map[string][]emailprovider.LoginEvent
	// HardAccessed is true once any hard-password account at the site is
	// accessed, indicating plaintext or reversible password storage.
	HardAccessed bool
	// AccountsRegistered/AccountsAccessed give the "n of m" of Table 2.
	AccountsRegistered int
	AccountsAccessed   int
}

// NewMonitor returns a monitor over ledger starting its dump cursor at
// start.
func NewMonitor(ledger *Ledger, start time.Time) *Monitor {
	return &Monitor{
		ledger:           ledger,
		lastDump:         start,
		expectedControls: make(map[string]bool),
		seenControls:     make(map[string]int),
		detections:       make(map[string]*Detection),
	}
}

// ExpectControlLogin registers an upcoming legitimate control-account login.
func (m *Monitor) ExpectControlLogin(account string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expectedControls[strings.ToLower(account)] = true
	m.rev++
}

// StateRev returns the monitor's durable-state mutation counter: it moves
// whenever ExportState's result may have changed, so checkpoints can reuse
// a cached encoding while it holds still.
func (m *Monitor) StateRev() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rev
}

// Ingest processes a provider dump: every event is attributed, alarmed, or
// recognized as a control login. It returns the site domains whose
// compromise was *newly* detected by this dump.
func (m *Monitor) Ingest(events []emailprovider.LoginEvent) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rev++
	if m.Metrics != nil {
		m.Metrics.dumpsIngested.Inc()
		m.Metrics.eventsIngested.Add(uint64(len(events)))
	}
	var newly []string
	for _, ev := range events {
		if ev.Time.After(m.lastDump) {
			m.lastDump = ev.Time
		}
		account := strings.ToLower(ev.Account)
		if m.ledger.IsControl(account) {
			m.seenControls[account]++
			if m.Metrics != nil {
				m.Metrics.controlLogins.Inc()
			}
			continue
		}
		reg, ok := m.ledger.Lookup(account)
		if !ok {
			reason := "login to account never registered at any site"
			if m.ledger.IsUnused(account) {
				reason = "login to unused honeypot account (provider or Tripwire database compromise?)"
			}
			m.alarms = append(m.alarms, IntegrityAlarm{Event: ev, Reason: reason})
			if m.Metrics != nil {
				m.Metrics.integrityAlarms.Inc()
			}
			continue
		}
		m.attributed = append(m.attributed, AttributedLogin{Event: ev, Registration: reg})
		if m.Metrics != nil {
			m.Metrics.attributedLogins.Inc()
		}
		det, seen := m.detections[reg.Domain]
		if !seen {
			det = &Detection{
				Domain:    reg.Domain,
				Rank:      reg.Rank,
				Category:  reg.Category,
				FirstSeen: ev.Time,
				LastSeen:  ev.Time,
				Logins:    make(map[string][]emailprovider.LoginEvent),
			}
			m.detections[reg.Domain] = det
			m.order = append(m.order, reg.Domain)
			newly = append(newly, reg.Domain)
			if m.Metrics != nil {
				m.Metrics.detections.Inc()
			}
		}
		if ev.Time.Before(det.FirstSeen) {
			det.FirstSeen = ev.Time
		}
		if ev.Time.After(det.LastSeen) {
			det.LastSeen = ev.Time
		}
		det.Logins[account] = append(det.Logins[account], ev)
		if reg.Identity.Class == identity.Hard {
			det.HardAccessed = true
		}
	}
	// Refresh the n-of-m counters for every touched site.
	for _, det := range m.detections {
		det.AccountsRegistered = len(m.ledger.SiteRegistrations(det.Domain))
		det.AccountsAccessed = len(det.Logins)
	}
	return newly
}

// Detections returns all detections in first-seen order.
func (m *Monitor) Detections() []*Detection {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Detection, 0, len(m.order))
	for _, d := range m.order {
		out = append(out, m.detections[d])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].FirstSeen.Before(out[j].FirstSeen) })
	return out
}

// Detection returns the detection for domain, if any.
func (m *Monitor) Detection(domain string) (*Detection, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.detections[domain]
	return d, ok
}

// Alarms returns integrity alarms raised so far. A healthy deployment
// returns none.
func (m *Monitor) Alarms() []IntegrityAlarm {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]IntegrityAlarm, len(m.alarms))
	copy(out, m.alarms)
	return out
}

// AlarmCount returns how many integrity alarms have been raised, without
// copying them — the progress-mirror read runs once per epoch.
func (m *Monitor) AlarmCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.alarms)
}

// AttributedLogins returns every site-attributed login.
func (m *Monitor) AttributedLogins() []AttributedLogin {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]AttributedLogin, len(m.attributed))
	copy(out, m.attributed)
	return out
}

// ControlLoginsSeen returns the number of control-account logins the
// provider reported; §4.2 requires every control login to be "accurately
// reported by our provider".
func (m *Monitor) ControlLoginsSeen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, c := range m.seenControls {
		n += c
	}
	return n
}

// BreachClass summarizes what a detection implies about the site's password
// storage (paper §6.1.2).
type BreachClass int

const (
	// BreachHashedOnly: only easy-password accounts were accessed — the
	// site appears to hash passwords well enough to protect strong ones.
	BreachHashedOnly BreachClass = iota
	// BreachPlaintext: hard-password accounts were accessed — plaintext
	// storage, a trivially reversed hash, or capture before hashing.
	BreachPlaintext
	// BreachIndeterminate: no hard account was registered at the site, so
	// the storage question cannot be answered (site P in the paper).
	BreachIndeterminate
)

// String names the class.
func (b BreachClass) String() string {
	switch b {
	case BreachHashedOnly:
		return "hashed (easy passwords only)"
	case BreachPlaintext:
		return "plaintext-equivalent (hard password accessed)"
	case BreachIndeterminate:
		return "indeterminate (no hard account registered)"
	default:
		return fmt.Sprintf("BreachClass(%d)", int(b))
	}
}

// Classify returns the breach class for det given the site's registrations.
func (m *Monitor) Classify(det *Detection) BreachClass {
	if det.HardAccessed {
		return BreachPlaintext
	}
	for _, reg := range m.ledger.SiteRegistrations(det.Domain) {
		if reg.Identity.Class == identity.Hard {
			return BreachHashedOnly
		}
	}
	return BreachIndeterminate
}
