package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"tripwire/internal/crawler"
	"tripwire/internal/emailprovider"
	"tripwire/internal/identity"
)

func randTime(rng *rand.Rand) time.Time {
	if rng.Intn(8) == 0 {
		return time.Time{}
	}
	return time.Unix(0, rng.Int63n(1<<50)).UTC()
}

func randString(rng *rand.Rand, max int) string {
	b := make([]byte, rng.Intn(max+1))
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func randIdentity(rng *rand.Rand, i int) identity.Identity {
	return identity.Identity{
		ID:        i,
		FirstName: randString(rng, 8),
		LastName:  randString(rng, 8),
		Username:  randString(rng, 14),
		LocalPart: randString(rng, 18),
		Email:     fmt.Sprintf("id%04d@hmail.test", i),
		Password:  randString(rng, 10),
		Class:     identity.PasswordClass(rng.Intn(2)),
		Street:    randString(rng, 20),
		City:      randString(rng, 10),
		State:     randString(rng, 2),
		Zip:       randString(rng, 5),
		Phone:     randString(rng, 12),
		Birthday:  randTime(rng),
		Employer:  randString(rng, 12),
	}
}

func randLedgerState(rng *rand.Rand) *LedgerState {
	st := &LedgerState{}
	id := 0
	randSegs := func() []PoolSegmentState {
		var segs []PoolSegmentState
		for i := 0; i < rng.Intn(4); i++ {
			if rng.Intn(2) == 0 {
				segs = append(segs, PoolSegmentState{IsItem: true, Item: randIdentity(rng, id)})
				id++
			} else {
				from := rng.Int63n(1 << 30)
				segs = append(segs, PoolSegmentState{From: from, To: from + 1 + rng.Int63n(1000)})
			}
		}
		return segs
	}
	st.PoolHard = randSegs()
	st.PoolEasy = randSegs()
	randSpans := func() []SpanState {
		var spans []SpanState
		for i := 0; i < rng.Intn(3); i++ {
			from := rng.Int63n(1 << 30)
			spans = append(spans, SpanState{From: from, To: from + 1 + rng.Int63n(1 << 20)})
		}
		return spans
	}
	st.SpansHard = randSpans()
	st.SpansEasy = randSpans()
	for i := 0; i < rng.Intn(5); i++ {
		st.Burned = append(st.Burned, rng.Int63n(1<<40))
	}
	for i := 0; i < rng.Intn(4); i++ {
		st.Registrations = append(st.Registrations, RegistrationState{
			Identity: randIdentity(rng, id),
			Domain:   fmt.Sprintf("site%05d.test", rng.Intn(99999)),
			Rank:     rng.Intn(100000),
			Category: randString(rng, 10),
			When:     randTime(rng),
			Code:     crawler.Code(rng.Intn(5)),
			Status:   AccountStatus(rng.Intn(5)),
			Manual:   rng.Intn(2) == 0,
		})
		id++
	}
	for i := 0; i < rng.Intn(3); i++ {
		st.Controls = append(st.Controls, randIdentity(rng, id))
		id++
	}
	for i := 0; i < rng.Intn(5); i++ {
		st.Unused = append(st.Unused, fmt.Sprintf("unused%d@hmail.test", i))
	}
	return st
}

func TestLedgerStateRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randLedgerState(rng)
		data := EncodeLedgerState(st)
		got, err := DecodeLedgerState(data)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if !reflect.DeepEqual(got, st) {
			t.Logf("mismatch:\n got %+v\nwant %+v", got, st)
			return false
		}
		return bytes.Equal(EncodeLedgerState(got), data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randMonitorState(rng *rand.Rand) *MonitorState {
	st := &MonitorState{LastDump: randTime(rng), Alarms: rng.Intn(3)}
	for i := 0; i < rng.Intn(3); i++ {
		st.ExpectedControls = append(st.ExpectedControls, fmt.Sprintf("ctl%d@hmail.test", i))
	}
	for i := 0; i < rng.Intn(3); i++ {
		st.SeenControls = append(st.SeenControls, ControlSeen{Account: fmt.Sprintf("ctl%d@hmail.test", i), Count: rng.Intn(9)})
	}
	ev := func() emailprovider.LoginEvent {
		var ip netip.Addr
		if rng.Intn(2) == 0 {
			var b [4]byte
			rng.Read(b[:])
			ip = netip.AddrFrom4(b)
		}
		return emailprovider.LoginEvent{Account: randString(rng, 16), Time: randTime(rng), IP: ip, Method: "IMAP"}
	}
	for i := 0; i < rng.Intn(4); i++ {
		st.Attributed = append(st.Attributed, AttributedState{Event: ev(), Domain: randString(rng, 14)})
	}
	for i := 0; i < rng.Intn(3); i++ {
		det := DetectionState{
			Domain:             fmt.Sprintf("site%05d.test", i),
			Rank:               rng.Intn(100000),
			Category:           randString(rng, 8),
			FirstSeen:          randTime(rng),
			LastSeen:           randTime(rng),
			HardAccessed:       rng.Intn(2) == 0,
			AccountsRegistered: rng.Intn(5),
			AccountsAccessed:   rng.Intn(5),
		}
		for j := 0; j < rng.Intn(3); j++ {
			var evs []emailprovider.LoginEvent
			for k := 0; k < 1+rng.Intn(3); k++ {
				evs = append(evs, ev())
			}
			det.Logins = append(det.Logins, AccountLogins{Account: fmt.Sprintf("a%d@hmail.test", j), Events: evs})
		}
		st.Detections = append(st.Detections, det)
	}
	return st
}

func TestMonitorStateRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randMonitorState(rng)
		data := EncodeMonitorState(st)
		got, err := DecodeMonitorState(data)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if !reflect.DeepEqual(got, st) {
			t.Logf("mismatch:\n got %+v\nwant %+v", got, st)
			return false
		}
		return bytes.Equal(EncodeMonitorState(got), data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLedgerExportRoundTrip exercises a live ledger end to end.
func TestLedgerExportRoundTrip(t *testing.T) {
	gen := identity.NewGenerator("hmail.test", 42)
	l := NewLedger()
	for i := 0; i < 6; i++ {
		l.AddIdentity(gen.New(identity.PasswordClass(i % 2)))
	}
	l.AddControl(gen.New(identity.Hard))
	when := time.Date(2014, 8, 1, 0, 0, 0, 0, time.UTC)
	id := l.Take(identity.Hard)
	l.Burn(id, "site00001.test", 1, "news", when, crawler.CodeOKSubmission, false)
	l.NoteEmail(id.Email, true)

	st := l.ExportState()
	got, err := DecodeLedgerState(EncodeLedgerState(st))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatal("live ledger export did not survive a codec round trip")
	}
	if len(got.Registrations) != 1 || got.Registrations[0].Status != StatusEmailVerified {
		t.Fatalf("registrations exported wrong: %+v", got.Registrations)
	}
	if !bytes.Equal(EncodeLedgerState(l.ExportState()), EncodeLedgerState(st)) {
		t.Fatal("re-export changed bytes")
	}
}
