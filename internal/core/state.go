package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tripwire/internal/crawler"
	"tripwire/internal/emailprovider"
	"tripwire/internal/identity"
	"tripwire/internal/snapshot"
)

// RegistrationState is one burned registration in canonical form. The
// identity is embedded by value — registrations own their identity for
// snapshot purposes; the pool/control/unused sets never overlap with the
// burned set.
type RegistrationState struct {
	Identity identity.Identity
	Domain   string
	Rank     int
	Category string
	When     time.Time
	Code     crawler.Code
	Status   AccountStatus
	Manual   bool
}

// PoolSegmentState is one FIFO pool segment in canonical form: either a
// contiguous run of not-yet-materialized identity indexes [From, To) or a
// single explicitly added identity.
type PoolSegmentState struct {
	IsItem   bool
	From, To int64             // index span when !IsItem
	Item     identity.Identity // when IsItem
}

// SpanState is a half-open run [From, To) of identity indexes of one
// class belonging to the monitored-unused universe.
type SpanState struct{ From, To int64 }

// LedgerState is the Tripwire database in canonical form: FIFO identity
// pools (segment order preserved — it is the determinism-bearing part),
// the span-provisioned unused universe with its burned ranks, burned
// registrations, control accounts, and the explicitly provisioned unused
// set. Span-covered pool members appear only as index arithmetic, so the
// export stays O(deviation) even with a 10M-account universe.
type LedgerState struct {
	PoolHard      []PoolSegmentState  // FIFO order
	PoolEasy      []PoolSegmentState  // FIFO order
	SpansHard     []SpanState         // unused-universe index spans
	SpansEasy     []SpanState         // unused-universe index spans
	Burned        []int64             // sorted burned span ranks
	Registrations []RegistrationState // sorted by identity email
	Controls      []identity.Identity // sorted by email
	Unused        []string            // sorted lowercased explicit emails
}

// canonIdentity copies an identity with its times canonicalized.
func canonIdentity(id *identity.Identity) identity.Identity {
	c := *id
	c.Birthday = snapshot.CanonTime(c.Birthday)
	return c
}

func exportPool(p *classPool) []PoolSegmentState {
	var out []PoolSegmentState
	for i := p.head; i < len(p.segs); i++ {
		s := &p.segs[i]
		if s.id != nil {
			out = append(out, PoolSegmentState{IsItem: true, Item: canonIdentity(s.id)})
		} else if s.from < s.to {
			out = append(out, PoolSegmentState{From: s.from, To: s.to})
		}
	}
	return out
}

func exportSpans(spans []rankSpan) []SpanState {
	var out []SpanState
	for _, s := range spans {
		out = append(out, SpanState{From: s.from, To: s.to})
	}
	return out
}

func exportRegistration(reg *Registration) RegistrationState {
	return RegistrationState{
		Identity: canonIdentity(reg.Identity),
		Domain:   reg.Domain,
		Rank:     reg.Rank,
		Category: reg.Category,
		When:     snapshot.CanonTime(reg.When),
		Code:     reg.Code,
		Status:   reg.Status,
		Manual:   reg.Manual,
	}
}

// ExportState captures the ledger. Pool segments keep their FIFO order;
// map-backed sets are sorted, so equivalent ledgers export identically.
func (l *Ledger) ExportState() *LedgerState {
	st := &LedgerState{}
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for _, reg := range sh.regs {
			st.Registrations = append(st.Registrations, exportRegistration(reg))
		}
		sh.mu.Unlock()
	}
	sort.Slice(st.Registrations, func(i, j int) bool {
		return strings.ToLower(st.Registrations[i].Identity.Email) < strings.ToLower(st.Registrations[j].Identity.Email)
	})
	l.mu.Lock()
	defer l.mu.Unlock()
	st.PoolHard = exportPool(&l.pools[identity.Hard])
	st.PoolEasy = exportPool(&l.pools[identity.Easy])
	st.SpansHard = exportSpans(l.spans[identity.Hard])
	st.SpansEasy = exportSpans(l.spans[identity.Easy])
	for rank := range l.burned {
		st.Burned = append(st.Burned, rank)
	}
	sort.Slice(st.Burned, func(i, j int) bool { return st.Burned[i] < st.Burned[j] })
	for _, id := range l.controls {
		st.Controls = append(st.Controls, canonIdentity(id))
	}
	sort.Slice(st.Controls, func(i, j int) bool { return st.Controls[i].Email < st.Controls[j].Email })
	for email := range l.unused {
		st.Unused = append(st.Unused, email)
	}
	sort.Strings(st.Unused)
	return st
}

func appendIdentity(e *snapshot.Encoder, id *identity.Identity) {
	e.Int(int64(id.ID))
	e.String(id.FirstName)
	e.String(id.LastName)
	e.String(id.Username)
	e.String(id.LocalPart)
	e.String(id.Email)
	e.String(id.Password)
	e.Uint(uint64(id.Class))
	e.String(id.Street)
	e.String(id.City)
	e.String(id.State)
	e.String(id.Zip)
	e.String(id.Phone)
	e.Time(id.Birthday)
	e.String(id.Employer)
}

func decodeIdentity(d *snapshot.Decoder) identity.Identity {
	return identity.Identity{
		ID:        int(d.Int()),
		FirstName: d.String(),
		LastName:  d.String(),
		Username:  d.String(),
		LocalPart: d.String(),
		Email:     d.String(),
		Password:  d.String(),
		Class:     identity.PasswordClass(d.Uint()),
		Street:    d.String(),
		City:      d.String(),
		State:     d.String(),
		Zip:       d.String(),
		Phone:     d.String(),
		Birthday:  d.Time(),
		Employer:  d.String(),
	}
}

// identityMinBytes: an identity costs at least 15 length/flag bytes.
const identityMinBytes = 15

func encodeIdentities(e *snapshot.Encoder, ids []identity.Identity) {
	e.Uint(uint64(len(ids)))
	for i := range ids {
		appendIdentity(e, &ids[i])
	}
}

func decodeIdentities(d *snapshot.Decoder) []identity.Identity {
	n := d.Count(identityMinBytes)
	var out []identity.Identity
	if n > 0 {
		out = make([]identity.Identity, 0, n)
	}
	for i := 0; i < n; i++ {
		out = append(out, decodeIdentity(d))
	}
	return out
}

func encodePoolSegments(e *snapshot.Encoder, segs []PoolSegmentState) {
	e.Uint(uint64(len(segs)))
	for i := range segs {
		s := &segs[i]
		e.Bool(s.IsItem)
		if s.IsItem {
			appendIdentity(e, &s.Item)
		} else {
			e.Int(s.From)
			e.Int(s.To)
		}
	}
}

func decodePoolSegments(d *snapshot.Decoder) []PoolSegmentState {
	n := d.Count(3)
	var out []PoolSegmentState
	for i := 0; i < n; i++ {
		var s PoolSegmentState
		s.IsItem = d.Bool()
		if s.IsItem {
			s.Item = decodeIdentity(d)
		} else {
			s.From = d.Int()
			s.To = d.Int()
		}
		if d.Err() != nil {
			return out
		}
		out = append(out, s)
	}
	return out
}

func encodeSpans(e *snapshot.Encoder, spans []SpanState) {
	e.Uint(uint64(len(spans)))
	for _, s := range spans {
		e.Int(s.From)
		e.Int(s.To)
	}
}

func decodeSpans(d *snapshot.Decoder) []SpanState {
	n := d.Count(2)
	var out []SpanState
	for i := 0; i < n; i++ {
		out = append(out, SpanState{From: d.Int(), To: d.Int()})
	}
	return out
}

// appendRegistrationState encodes one registration body — shared by the
// monolithic section encode and the per-registration cache blobs, so the
// two paths are byte-identical by construction.
func appendRegistrationState(e *snapshot.Encoder, r *RegistrationState) {
	appendIdentity(e, &r.Identity)
	e.String(r.Domain)
	e.Int(int64(r.Rank))
	e.String(r.Category)
	e.Time(r.When)
	e.Uint(uint64(r.Code))
	e.Uint(uint64(r.Status))
	e.Bool(r.Manual)
}

// EncodeLedgerState serializes the export into snapshot-section bytes.
func EncodeLedgerState(st *LedgerState) []byte {
	e := snapshot.NewEncoder()
	encodePoolSegments(e, st.PoolHard)
	encodePoolSegments(e, st.PoolEasy)
	encodeSpans(e, st.SpansHard)
	encodeSpans(e, st.SpansEasy)
	e.Uint(uint64(len(st.Burned)))
	for _, rank := range st.Burned {
		e.Int(rank)
	}
	e.Uint(uint64(len(st.Registrations)))
	for i := range st.Registrations {
		appendRegistrationState(e, &st.Registrations[i])
	}
	encodeIdentities(e, st.Controls)
	e.Uint(uint64(len(st.Unused)))
	for _, email := range st.Unused {
		e.String(email)
	}
	return e.Bytes()
}

// DecodeLedgerState parses EncodeLedgerState's output.
func DecodeLedgerState(data []byte) (*LedgerState, error) {
	d := snapshot.NewDecoder(data)
	st := &LedgerState{}
	st.PoolHard = decodePoolSegments(d)
	st.PoolEasy = decodePoolSegments(d)
	st.SpansHard = decodeSpans(d)
	st.SpansEasy = decodeSpans(d)
	nb := d.Count(1)
	for i := 0; i < nb; i++ {
		st.Burned = append(st.Burned, d.Int())
	}
	n := d.Count(identityMinBytes + 7)
	for i := 0; i < n; i++ {
		var r RegistrationState
		r.Identity = decodeIdentity(d)
		r.Domain = d.String()
		r.Rank = int(d.Int())
		r.Category = d.String()
		r.When = d.Time()
		r.Code = crawler.Code(d.Uint())
		r.Status = AccountStatus(d.Uint())
		r.Manual = d.Bool()
		if err := d.Err(); err != nil {
			return nil, err
		}
		st.Registrations = append(st.Registrations, r)
	}
	st.Controls = decodeIdentities(d)
	nu := d.Count(1)
	for i := 0; i < nu; i++ {
		st.Unused = append(st.Unused, d.String())
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in ledger state", snapshot.ErrCorrupt, d.Remaining())
	}
	return st, nil
}

// EncodeStateCached produces the ledger section bytes through a
// SectionCache: per-registration blobs whose versions did not move since
// the last checkpoint are stitched back verbatim. Everything else (pool
// segments, spans, burned ranks, controls, explicit unused) is tiny under
// the virtual-pool representation and re-encodes fresh. A nil cache falls
// back to the canonical full encode; the output is byte-identical either
// way.
func (l *Ledger) EncodeStateCached(c *snapshot.SectionCache) []byte {
	if c == nil {
		return EncodeLedgerState(l.ExportState())
	}
	type ref struct {
		email string
		reg   *Registration
		ver   uint64
	}
	var refs []ref
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for email, reg := range sh.regs {
			refs = append(refs, ref{email: email, reg: reg, ver: reg.version})
		}
		sh.mu.Unlock()
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].email < refs[j].email })

	st := &LedgerState{}
	l.mu.Lock()
	st.PoolHard = exportPool(&l.pools[identity.Hard])
	st.PoolEasy = exportPool(&l.pools[identity.Easy])
	st.SpansHard = exportSpans(l.spans[identity.Hard])
	st.SpansEasy = exportSpans(l.spans[identity.Easy])
	for rank := range l.burned {
		st.Burned = append(st.Burned, rank)
	}
	for _, id := range l.controls {
		st.Controls = append(st.Controls, canonIdentity(id))
	}
	for email := range l.unused {
		st.Unused = append(st.Unused, email)
	}
	l.mu.Unlock()
	sort.Slice(st.Burned, func(i, j int) bool { return st.Burned[i] < st.Burned[j] })
	sort.Slice(st.Controls, func(i, j int) bool { return st.Controls[i].Email < st.Controls[j].Email })
	sort.Strings(st.Unused)

	e := snapshot.NewEncoder()
	encodePoolSegments(e, st.PoolHard)
	encodePoolSegments(e, st.PoolEasy)
	encodeSpans(e, st.SpansHard)
	encodeSpans(e, st.SpansEasy)
	e.Uint(uint64(len(st.Burned)))
	for _, rank := range st.Burned {
		e.Int(rank)
	}
	e.Uint(uint64(len(refs)))
	for _, r := range refs {
		r := r
		e.Raw(c.GetOrBuild("lr/"+r.email, r.ver, func() []byte {
			sh := l.shardFor(r.email)
			sh.mu.Lock()
			rs := exportRegistration(r.reg)
			sh.mu.Unlock()
			blob := snapshot.NewEncoder()
			appendRegistrationState(blob, &rs)
			return blob.Bytes()
		}))
	}
	encodeIdentities(e, st.Controls)
	e.Uint(uint64(len(st.Unused)))
	for _, email := range st.Unused {
		e.String(email)
	}
	return e.Bytes()
}

// ControlSeen is one control account's observed-login count.
type ControlSeen struct {
	Account string
	Count   int
}

// DetectionState is one site detection in canonical form; per-account
// login lists are flattened into a slice sorted by account.
type DetectionState struct {
	Domain             string
	Rank               int
	Category           string
	FirstSeen          time.Time
	LastSeen           time.Time
	HardAccessed       bool
	AccountsRegistered int
	AccountsAccessed   int
	Logins             []AccountLogins
}

// AccountLogins is the attributed events of one account at one site.
type AccountLogins struct {
	Account string
	Events  []emailprovider.LoginEvent
}

// AttributedState is one attributed login flattened to its registration
// domain (the pointer identity is re-derivable from the ledger).
type AttributedState struct {
	Event  emailprovider.LoginEvent
	Domain string
}

// MonitorState is the monitor's durable view: the dump cursor, control
// bookkeeping, the full attributed-login history, alarm count, and every
// detection in first-detection order.
type MonitorState struct {
	LastDump         time.Time
	ExpectedControls []string // sorted
	SeenControls     []ControlSeen
	Attributed       []AttributedState
	Alarms           int
	Detections       []DetectionState // first-detection order
}

// ExportState captures the monitor.
func (m *Monitor) ExportState() *MonitorState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := &MonitorState{LastDump: snapshot.CanonTime(m.lastDump), Alarms: len(m.alarms)}
	for acct := range m.expectedControls {
		st.ExpectedControls = append(st.ExpectedControls, acct)
	}
	sort.Strings(st.ExpectedControls)
	for acct, n := range m.seenControls {
		st.SeenControls = append(st.SeenControls, ControlSeen{Account: acct, Count: n})
	}
	sort.Slice(st.SeenControls, func(i, j int) bool { return st.SeenControls[i].Account < st.SeenControls[j].Account })
	for _, al := range m.attributed {
		ev := al.Event
		ev.Time = snapshot.CanonTime(ev.Time)
		st.Attributed = append(st.Attributed, AttributedState{Event: ev, Domain: al.Registration.Domain})
	}
	for _, domain := range m.order {
		det := m.detections[domain]
		ds := DetectionState{
			Domain:             det.Domain,
			Rank:               det.Rank,
			Category:           det.Category,
			FirstSeen:          snapshot.CanonTime(det.FirstSeen),
			LastSeen:           snapshot.CanonTime(det.LastSeen),
			HardAccessed:       det.HardAccessed,
			AccountsRegistered: det.AccountsRegistered,
			AccountsAccessed:   det.AccountsAccessed,
		}
		for acct, evs := range det.Logins {
			cp := make([]emailprovider.LoginEvent, len(evs))
			copy(cp, evs)
			for i := range cp {
				cp[i].Time = snapshot.CanonTime(cp[i].Time)
			}
			ds.Logins = append(ds.Logins, AccountLogins{Account: acct, Events: cp})
		}
		sort.Slice(ds.Logins, func(i, j int) bool { return ds.Logins[i].Account < ds.Logins[j].Account })
		st.Detections = append(st.Detections, ds)
	}
	return st
}

// EncodeMonitorState serializes the export into snapshot-section bytes.
func EncodeMonitorState(st *MonitorState) []byte {
	e := snapshot.NewEncoder()
	e.Time(st.LastDump)
	e.Uint(uint64(len(st.ExpectedControls)))
	for _, acct := range st.ExpectedControls {
		e.String(acct)
	}
	e.Uint(uint64(len(st.SeenControls)))
	for _, cs := range st.SeenControls {
		e.String(cs.Account)
		e.Int(int64(cs.Count))
	}
	e.Uint(uint64(len(st.Attributed)))
	for _, at := range st.Attributed {
		emailprovider.AppendLoginEvent(e, at.Event)
		e.String(at.Domain)
	}
	e.Int(int64(st.Alarms))
	e.Uint(uint64(len(st.Detections)))
	for i := range st.Detections {
		det := &st.Detections[i]
		e.String(det.Domain)
		e.Int(int64(det.Rank))
		e.String(det.Category)
		e.Time(det.FirstSeen)
		e.Time(det.LastSeen)
		e.Bool(det.HardAccessed)
		e.Int(int64(det.AccountsRegistered))
		e.Int(int64(det.AccountsAccessed))
		e.Uint(uint64(len(det.Logins)))
		for _, al := range det.Logins {
			e.String(al.Account)
			emailprovider.EncodeLoginEvents(e, al.Events)
		}
	}
	return e.Bytes()
}

// DecodeMonitorState parses EncodeMonitorState's output.
func DecodeMonitorState(data []byte) (*MonitorState, error) {
	d := snapshot.NewDecoder(data)
	st := &MonitorState{LastDump: d.Time()}
	n := d.Count(1)
	for i := 0; i < n; i++ {
		st.ExpectedControls = append(st.ExpectedControls, d.String())
	}
	n = d.Count(2)
	for i := 0; i < n; i++ {
		st.SeenControls = append(st.SeenControls, ControlSeen{Account: d.String(), Count: int(d.Int())})
	}
	n = d.Count(5)
	for i := 0; i < n; i++ {
		ev, err := emailprovider.DecodeLoginEvent(d)
		if err != nil {
			return nil, err
		}
		st.Attributed = append(st.Attributed, AttributedState{Event: ev, Domain: d.String()})
	}
	st.Alarms = int(d.Int())
	n = d.Count(10)
	for i := 0; i < n; i++ {
		var det DetectionState
		det.Domain = d.String()
		det.Rank = int(d.Int())
		det.Category = d.String()
		det.FirstSeen = d.Time()
		det.LastSeen = d.Time()
		det.HardAccessed = d.Bool()
		det.AccountsRegistered = int(d.Int())
		det.AccountsAccessed = int(d.Int())
		na := d.Count(2)
		for j := 0; j < na; j++ {
			acct := d.String()
			evs, err := emailprovider.DecodeLoginEvents(d)
			if err != nil {
				return nil, err
			}
			det.Logins = append(det.Logins, AccountLogins{Account: acct, Events: evs})
		}
		if err := d.Err(); err != nil {
			return nil, err
		}
		st.Detections = append(st.Detections, det)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in monitor state", snapshot.ErrCorrupt, d.Remaining())
	}
	return st, nil
}
