package core

import (
	"net/netip"
	"testing"
	"time"

	"tripwire/internal/crawler"
	"tripwire/internal/emailprovider"
	"tripwire/internal/identity"
)

var (
	t0     = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	someIP = netip.MustParseAddr("198.51.100.7")
)

func newGen() *identity.Generator { return identity.NewGenerator("bigmail.test", 77) }

func TestPoolTakeReturn(t *testing.T) {
	l := NewLedger()
	g := newGen()
	hard := g.New(identity.Hard)
	easy := g.New(identity.Easy)
	l.AddIdentity(hard)
	l.AddIdentity(easy)
	if l.PoolSize() != 2 || l.UnusedCount() != 2 {
		t.Fatalf("pool=%d unused=%d", l.PoolSize(), l.UnusedCount())
	}
	got := l.Take(identity.Easy)
	if got != easy {
		t.Fatalf("Take(Easy) = %v", got)
	}
	if l.Take(identity.Easy) != nil {
		t.Fatal("Take from empty class should return nil")
	}
	l.Return(got)
	if l.Take(identity.Easy) != easy {
		t.Fatal("returned identity not reusable")
	}
}

func TestBurnSemantics(t *testing.T) {
	l := NewLedger()
	id := newGen().New(identity.Hard)
	l.AddIdentity(id)
	taken := l.Take(identity.Hard)
	reg := l.Burn(taken, "site1.test", 10, "Gaming", t0, crawler.CodeOKSubmission, false)
	if reg.Status != StatusOKSubmission {
		t.Fatalf("initial status = %v", reg.Status)
	}
	if l.UnusedCount() != 0 {
		t.Fatal("burned identity still counted unused")
	}
	// Idempotent re-burn to the same site.
	if l.Burn(taken, "site1.test", 10, "Gaming", t0, crawler.CodeOKSubmission, false) != reg {
		t.Fatal("re-burn to same site should return existing registration")
	}
	// Burn to a different site panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("burn to second site did not panic")
			}
		}()
		l.Burn(taken, "site2.test", 20, "News", t0, crawler.CodeOKSubmission, false)
	}()
	// Returning a burned identity panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("returning burned identity did not panic")
			}
		}()
		l.Return(taken)
	}()
}

func TestInitialStatusMapping(t *testing.T) {
	l := NewLedger()
	g := newGen()
	cases := []struct {
		code   crawler.Code
		manual bool
		want   AccountStatus
	}{
		{crawler.CodeOKSubmission, false, StatusOKSubmission},
		{crawler.CodeSubmissionFailed, false, StatusBadHeuristics},
		{crawler.CodeFieldsMissing, false, StatusBadHeuristics},
		{crawler.CodeOKSubmission, true, StatusManual},
	}
	for i, tc := range cases {
		id := g.New(identity.Hard)
		l.AddIdentity(id)
		reg := l.Burn(id, "s.test"+string(rune('a'+i)), 1, "X", t0, tc.code, tc.manual)
		if reg.Status != tc.want {
			t.Errorf("case %d: status = %v, want %v", i, reg.Status, tc.want)
		}
	}
}

func TestNoteEmailUpgrades(t *testing.T) {
	l := NewLedger()
	id := newGen().New(identity.Hard)
	l.AddIdentity(id)
	reg := l.Burn(id, "s.test", 1, "X", t0, crawler.CodeOKSubmission, false)

	if l.NoteEmail("unknown@bigmail.test", true) != nil {
		t.Fatal("NoteEmail for unknown recipient should return nil")
	}
	l.NoteEmail(id.Email, false)
	if reg.Status != StatusEmailReceived {
		t.Fatalf("after non-verification mail: %v", reg.Status)
	}
	l.NoteEmail(id.Email, true)
	if reg.Status != StatusEmailVerified {
		t.Fatalf("after verification mail: %v", reg.Status)
	}
	// Downgrades never happen.
	l.NoteEmail(id.Email, false)
	if reg.Status != StatusEmailVerified {
		t.Fatalf("status downgraded to %v", reg.Status)
	}
}

func ev(account string, at time.Time) emailprovider.LoginEvent {
	return emailprovider.LoginEvent{Account: account, Time: at, IP: someIP, Method: "IMAP"}
}

func TestMonitorDetection(t *testing.T) {
	l := NewLedger()
	g := newGen()
	hard := g.New(identity.Hard)
	easy := g.New(identity.Easy)
	l.AddIdentity(hard)
	l.AddIdentity(easy)
	l.Burn(hard, "victim.test", 42, "Gaming", t0, crawler.CodeOKSubmission, false)
	l.Burn(easy, "victim.test", 42, "Gaming", t0, crawler.CodeOKSubmission, false)

	m := NewMonitor(l, t0)
	newly := m.Ingest([]emailprovider.LoginEvent{ev(easy.Email, t0.Add(100*24*time.Hour))})
	if len(newly) != 1 || newly[0] != "victim.test" {
		t.Fatalf("newly = %v", newly)
	}
	det, ok := m.Detection("victim.test")
	if !ok {
		t.Fatal("detection missing")
	}
	if det.HardAccessed {
		t.Fatal("easy-only access flagged hard")
	}
	if m.Classify(det) != BreachHashedOnly {
		t.Fatalf("classify = %v", m.Classify(det))
	}
	if det.AccountsRegistered != 2 || det.AccountsAccessed != 1 {
		t.Fatalf("counters: %d of %d", det.AccountsAccessed, det.AccountsRegistered)
	}

	// Hard account access upgrades the classification.
	newly = m.Ingest([]emailprovider.LoginEvent{ev(hard.Email, t0.Add(120*24*time.Hour))})
	if len(newly) != 0 {
		t.Fatalf("same site re-reported as new: %v", newly)
	}
	det, _ = m.Detection("victim.test")
	if m.Classify(det) != BreachPlaintext {
		t.Fatalf("classify after hard access = %v", m.Classify(det))
	}
	if det.AccountsAccessed != 2 {
		t.Fatalf("accessed = %d", det.AccountsAccessed)
	}
}

func TestMonitorIndeterminateClass(t *testing.T) {
	l := NewLedger()
	easy := newGen().New(identity.Easy)
	l.AddIdentity(easy)
	l.Burn(easy, "p.test", 400, "Adult", t0, crawler.CodeOKSubmission, false)
	m := NewMonitor(l, t0)
	m.Ingest([]emailprovider.LoginEvent{ev(easy.Email, t0.Add(time.Hour))})
	det, _ := m.Detection("p.test")
	if m.Classify(det) != BreachIndeterminate {
		t.Fatalf("classify = %v (no hard account registered: site P case)", m.Classify(det))
	}
}

func TestMonitorIntegrityAlarms(t *testing.T) {
	l := NewLedger()
	unused := newGen().New(identity.Hard)
	l.AddIdentity(unused) // provisioned but never burned
	m := NewMonitor(l, t0)
	m.Ingest([]emailprovider.LoginEvent{ev(unused.Email, t0.Add(time.Hour))})
	alarms := m.Alarms()
	if len(alarms) != 1 {
		t.Fatalf("alarms = %v", alarms)
	}
	if msg := alarms[0].Error(); msg == "" {
		t.Fatal("alarm renders empty")
	}
	if len(m.Detections()) != 0 {
		t.Fatal("alarm produced a detection")
	}
}

func TestMonitorControlLogins(t *testing.T) {
	l := NewLedger()
	ctrl := newGen().New(identity.Hard)
	l.AddControl(ctrl)
	m := NewMonitor(l, t0)
	m.ExpectControlLogin(ctrl.Email)
	m.Ingest([]emailprovider.LoginEvent{{Account: ctrl.Email, Time: t0.Add(time.Hour), IP: someIP, Method: "WEB"}})
	if len(m.Alarms()) != 0 {
		t.Fatal("control login raised an alarm")
	}
	if m.ControlLoginsSeen() != 1 {
		t.Fatalf("ControlLoginsSeen = %d", m.ControlLoginsSeen())
	}
}

func TestDetectionsOrderedByFirstSeen(t *testing.T) {
	l := NewLedger()
	g := newGen()
	var emails []string
	for i := 0; i < 3; i++ {
		id := g.New(identity.Easy)
		l.AddIdentity(id)
		l.Burn(id, "s"+string(rune('a'+i))+".test", i+1, "X", t0, crawler.CodeOKSubmission, false)
		emails = append(emails, id.Email)
	}
	m := NewMonitor(l, t0)
	// Ingest out of order: site c first by time but last in the slice.
	m.Ingest([]emailprovider.LoginEvent{
		ev(emails[1], t0.Add(48*time.Hour)),
		ev(emails[0], t0.Add(72*time.Hour)),
		ev(emails[2], t0.Add(24*time.Hour)),
	})
	dets := m.Detections()
	if len(dets) != 3 {
		t.Fatalf("detections = %d", len(dets))
	}
	if !(dets[0].Domain == "sc.test" && dets[1].Domain == "sb.test" && dets[2].Domain == "sa.test") {
		t.Fatalf("order = %s, %s, %s", dets[0].Domain, dets[1].Domain, dets[2].Domain)
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[AccountStatus]string{
		StatusEmailVerified: "Email verified",
		StatusEmailReceived: "Email received",
		StatusOKSubmission:  "OK submission",
		StatusBadHeuristics: "Bad heuristics/Fields missing",
		StatusManual:        "Manual",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", int(st), st.String())
		}
	}
}
