package core

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tripwire/internal/crawler"
	"tripwire/internal/emailprovider"
	"tripwire/internal/identity"
)

// TestLedgerParallelStress hammers the ledger from many goroutines the way
// a crawl wave does — concurrent takes, burns, returns, mail notes, and
// readers — and checks the conservation invariant afterwards. Run under
// -race this doubles as the data-race proof for the parallel engine's
// shared ledger.
func TestLedgerParallelStress(t *testing.T) {
	t.Parallel()
	const (
		goroutines = 8
		perWorker  = 50
	)
	l := NewLedger()
	g := identity.NewGenerator("bigmail.test", 101)
	total := goroutines * perWorker
	for i := 0; i < total; i++ {
		l.AddIdentity(g.New(identity.Hard))
	}

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				id := l.Take(identity.Hard)
				if id == nil {
					t.Error("pool ran dry: Take lost an identity")
					return
				}
				switch rng.Intn(3) {
				case 0:
					l.Return(id)
				case 1:
					domain := fmt.Sprintf("w%d-i%d.test", w, i)
					l.Burn(id, domain, w*1000+i, "Stress", t0, crawler.CodeOKSubmission, false)
					l.NoteEmail(id.Email, rng.Intn(2) == 0)
				default:
					domain := fmt.Sprintf("w%d-i%d.test", w, i)
					l.Burn(id, domain, w*1000+i, "Stress", t0, crawler.CodeSubmissionFailed, false)
					// Idempotent re-burn to the same site must stay legal
					// concurrently.
					l.Burn(id, domain, w*1000+i, "Stress", t0, crawler.CodeSubmissionFailed, false)
				}
			}
		}(w)
	}
	// Concurrent readers: the monitor and report layers walk these views
	// while waves are in flight.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = l.Sites()
				_ = l.Registrations()
				_ = l.PoolSize()
				_ = l.UnusedCount()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	burned := len(l.Registrations())
	if got := l.PoolSize() + burned; got != total {
		t.Fatalf("identities not conserved: pool %d + burned %d = %d, want %d",
			l.PoolSize(), burned, got, total)
	}
	if l.UnusedCount() != l.PoolSize() {
		t.Fatalf("unused %d != pool %d: burn/unused bookkeeping diverged",
			l.UnusedCount(), l.PoolSize())
	}
	for _, domain := range l.Sites() {
		for _, reg := range l.SiteRegistrations(domain) {
			if reg.Domain != domain {
				t.Fatalf("registration for %s filed under %s", reg.Domain, domain)
			}
		}
	}
}

// TestControlsNeverTripProperty is the §4.2 control-account property: no
// attacker login schedule may ever turn a control account into an alarm or
// a detection — even while registration burns mutate the ledger
// concurrently with dump ingestion. testing/quick drives randomized
// schedules; -race checks the concurrent access.
func TestControlsNeverTripProperty(t *testing.T) {
	t.Parallel()
	property := func(seed int64, nEvents uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLedger()
		g := identity.NewGenerator("bigmail.test", seed)
		m := NewMonitor(l, t0)

		var controls []*identity.Identity
		for i := 0; i < 5; i++ {
			id := g.New(identity.Hard)
			l.AddControl(id)
			controls = append(controls, id)
		}
		var pool []*identity.Identity
		for i := 0; i < 20; i++ {
			id := g.New(identity.Hard)
			l.AddIdentity(id)
			pool = append(pool, id)
		}

		// Crawl waves burn identities while the attacker's dump is being
		// ingested: the two must not interfere.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if id := l.Take(identity.Hard); id != nil {
					l.Burn(id, fmt.Sprintf("burn%d.test", i), i+1, "Stress",
						t0.Add(time.Duration(i)*time.Hour), crawler.CodeOKSubmission, false)
				}
			}
		}()

		// Arbitrary attacker schedule: logins against control accounts,
		// honeypot pool accounts, and unknown accounts, in any order, from
		// any IP, expected or not.
		events := make([]emailprovider.LoginEvent, 0, nEvents)
		for i := 0; i < int(nEvents); i++ {
			var account string
			switch rng.Intn(3) {
			case 0:
				account = controls[rng.Intn(len(controls))].Email
			case 1:
				account = pool[rng.Intn(len(pool))].Email
			default:
				account = fmt.Sprintf("stranger%d@bigmail.test", rng.Intn(50))
			}
			if rng.Intn(2) == 0 {
				m.ExpectControlLogin(account) // expectation must not matter
			}
			events = append(events, emailprovider.LoginEvent{
				Account: account,
				Time:    t0.Add(time.Duration(rng.Intn(10000)) * time.Minute),
				IP:      netip.AddrFrom4([4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), 1}),
				Method:  []string{"IMAP", "POP3", "WEB"}[rng.Intn(3)],
			})
		}
		// Ingest in two concurrent halves like overlapping dump deliveries.
		half := len(events) / 2
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Ingest(events[:half])
		}()
		m.Ingest(events[half:])
		wg.Wait()

		isControl := func(email string) bool {
			for _, c := range controls {
				if c.Email == email {
					return true
				}
			}
			return false
		}
		for _, a := range m.Alarms() {
			if isControl(a.Event.Account) {
				return false // control login raised an integrity alarm
			}
		}
		for _, d := range m.Detections() {
			for account := range d.Logins {
				if isControl(account) {
					return false // control login attributed as a compromise
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatalf("control account tripped the monitor: %v", err)
	}
}
