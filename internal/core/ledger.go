// Package core implements the Tripwire inference engine — the paper's
// primary contribution. It owns the identity pool and the registration
// ledger (which identity is bound to which site, and how confident we are
// that an account exists), ingests the email provider's sporadic login
// dumps, attributes each successful login back to the site whose database
// must have leaked it, classifies the breach by password strength
// (plaintext vs hashed storage), and enforces the integrity invariants of
// §4.4: control accounts and unused accounts must never trip.
package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"tripwire/internal/crawler"
	"tripwire/internal/identity"
)

// AccountStatus is the registration-confidence bin an account lands in,
// matching the rows of the paper's Table 1.
type AccountStatus int

const (
	// StatusBadHeuristics: the identity was exposed, but the crawler's
	// heuristics signalled failure or could not complete the form
	// ("Bad heuristics/Fields missing"). ~7% of these exist anyway.
	StatusBadHeuristics AccountStatus = iota
	// StatusOKSubmission: submission passed all success heuristics but no
	// email was ever received.
	StatusOKSubmission
	// StatusEmailReceived: some email arrived that was not recognized as a
	// verification message.
	StatusEmailReceived
	// StatusEmailVerified: a recognized verification email arrived — the
	// highest-confidence automated bin.
	StatusEmailVerified
	// StatusManual: registered by hand (the Alexa top-500 pass); assumed
	// valid.
	StatusManual
)

// String names the status with the paper's Table 1 labels.
func (s AccountStatus) String() string {
	switch s {
	case StatusBadHeuristics:
		return "Bad heuristics/Fields missing"
	case StatusOKSubmission:
		return "OK submission"
	case StatusEmailReceived:
		return "Email received"
	case StatusEmailVerified:
		return "Email verified"
	case StatusManual:
		return "Manual"
	default:
		return fmt.Sprintf("AccountStatus(%d)", int(s))
	}
}

// Registration is one identity permanently bound ("burned") to one site.
type Registration struct {
	Identity *identity.Identity
	Domain   string
	Rank     int
	Category string
	When     time.Time
	Code     crawler.Code
	Status   AccountStatus
	Manual   bool
}

// Ledger is the Tripwire database: the identity pool, burned identities,
// per-site registrations, and the monitored-but-unused account set. All
// methods are safe for concurrent use.
type Ledger struct {
	mu       sync.Mutex
	pool     map[identity.PasswordClass][]*identity.Identity
	byEmail  map[string]*Registration
	bySite   map[string][]*Registration
	controls map[string]*identity.Identity // control accounts, never registered
	unused   map[string]*identity.Identity // provisioned, not yet used
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		pool:     make(map[identity.PasswordClass][]*identity.Identity),
		byEmail:  make(map[string]*Registration),
		bySite:   make(map[string][]*Registration),
		controls: make(map[string]*identity.Identity),
		unused:   make(map[string]*identity.Identity),
	}
}

// AddIdentity places an identity in the available pool. Its email account
// is also tracked as unused until burned.
func (l *Ledger) AddIdentity(id *identity.Identity) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pool[id.Class] = append(l.pool[id.Class], id)
	l.unused[strings.ToLower(id.Email)] = id
}

// AddControl registers a control account: provisioned at the provider,
// logged into by Tripwire itself from time to time, never registered at any
// site (paper §4.2).
func (l *Ledger) AddControl(id *identity.Identity) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.controls[strings.ToLower(id.Email)] = id
}

// IsControl reports whether email is a control account.
func (l *Ledger) IsControl(email string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.controls[strings.ToLower(email)]
	return ok
}

// Take removes and returns an identity of the given class from the pool,
// or nil when the pool is dry. Identities are handed out in FIFO order so
// runs are deterministic.
func (l *Ledger) Take(class identity.PasswordClass) *identity.Identity {
	l.mu.Lock()
	defer l.mu.Unlock()
	q := l.pool[class]
	if len(q) == 0 {
		return nil
	}
	id := q[0]
	l.pool[class] = q[1:]
	return id
}

// Return puts an identity back in the pool. Only legal if the identity was
// never exposed: "the identity used may be returned to the general pool ...
// only if neither the email address nor password were exposed" (§4.3.1).
// Returning a burned identity panics: that is a protocol violation the
// simulation must never commit.
func (l *Ledger) Return(id *identity.Identity) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, burned := l.byEmail[strings.ToLower(id.Email)]; burned {
		panic("core: returning a burned identity to the pool")
	}
	l.pool[id.Class] = append(l.pool[id.Class], id)
}

// Burn permanently associates id with a site. The first burn wins; burning
// an already-burned identity to a different site panics (one-to-one mapping
// is the system's core invariant, §4.1).
func (l *Ledger) Burn(id *identity.Identity, domain string, rank int, category string, when time.Time, code crawler.Code, manual bool) *Registration {
	email := strings.ToLower(id.Email)
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.byEmail[email]; ok {
		if prev.Domain != domain {
			panic(fmt.Sprintf("core: identity %s already burned to %s, cannot burn to %s", email, prev.Domain, domain))
		}
		return prev
	}
	reg := &Registration{
		Identity: id,
		Domain:   domain,
		Rank:     rank,
		Category: category,
		When:     when,
		Code:     code,
		Manual:   manual,
		Status:   initialStatus(code, manual),
	}
	l.byEmail[email] = reg
	l.bySite[domain] = append(l.bySite[domain], reg)
	delete(l.unused, email)
	return reg
}

func initialStatus(code crawler.Code, manual bool) AccountStatus {
	switch {
	case manual:
		return StatusManual
	case code == crawler.CodeOKSubmission:
		return StatusOKSubmission
	default:
		return StatusBadHeuristics
	}
}

// NoteEmail upgrades a registration's status on mail receipt: verification
// mail lifts it to EmailVerified; any other mail to at least EmailReceived.
// It returns the registration, or nil if the recipient is not burned.
func (l *Ledger) NoteEmail(rcpt string, isVerification bool) *Registration {
	l.mu.Lock()
	defer l.mu.Unlock()
	reg, ok := l.byEmail[strings.ToLower(rcpt)]
	if !ok {
		return nil
	}
	if reg.Status == StatusManual {
		return reg
	}
	if isVerification {
		reg.Status = StatusEmailVerified
	} else if reg.Status < StatusEmailReceived {
		reg.Status = StatusEmailReceived
	}
	return reg
}

// Lookup returns the registration bound to email.
func (l *Ledger) Lookup(email string) (*Registration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	reg, ok := l.byEmail[strings.ToLower(email)]
	return reg, ok
}

// SiteRegistrations returns the registrations at domain.
func (l *Ledger) SiteRegistrations(domain string) []*Registration {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Registration, len(l.bySite[domain]))
	copy(out, l.bySite[domain])
	return out
}

// Registrations returns every burned registration.
func (l *Ledger) Registrations() []*Registration {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Registration, 0, len(l.byEmail))
	for _, reg := range l.byEmail {
		out = append(out, reg)
	}
	return out
}

// Sites returns the set of domains with at least one registration.
func (l *Ledger) Sites() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.bySite))
	for d := range l.bySite {
		out = append(out, d)
	}
	return out
}

// PoolSize returns the number of identities currently available.
func (l *Ledger) PoolSize() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, q := range l.pool {
		n += len(q)
	}
	return n
}

// UnusedCount returns how many provisioned accounts were never used at any
// site — the honeypot set guarding the provider's and Tripwire's own
// integrity (paper §4.4: "more than 100,000 valid email addresses ...
// monitored for logins, but ... not registered with sites").
func (l *Ledger) UnusedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.unused)
}

// IsUnused reports whether email belongs to the unused monitored set.
func (l *Ledger) IsUnused(email string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.unused[strings.ToLower(email)]
	return ok
}
