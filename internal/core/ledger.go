// Package core implements the Tripwire inference engine — the paper's
// primary contribution. It owns the identity pool and the registration
// ledger (which identity is bound to which site, and how confident we are
// that an account exists), ingests the email provider's sporadic login
// dumps, attributes each successful login back to the site whose database
// must have leaked it, classifies the breach by password strength
// (plaintext vs hashed storage), and enforces the integrity invariants of
// §4.4: control accounts and unused accounts must never trip.
package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"tripwire/internal/crawler"
	"tripwire/internal/identity"
)

// AccountStatus is the registration-confidence bin an account lands in,
// matching the rows of the paper's Table 1.
type AccountStatus int

const (
	// StatusBadHeuristics: the identity was exposed, but the crawler's
	// heuristics signalled failure or could not complete the form
	// ("Bad heuristics/Fields missing"). ~7% of these exist anyway.
	StatusBadHeuristics AccountStatus = iota
	// StatusOKSubmission: submission passed all success heuristics but no
	// email was ever received.
	StatusOKSubmission
	// StatusEmailReceived: some email arrived that was not recognized as a
	// verification message.
	StatusEmailReceived
	// StatusEmailVerified: a recognized verification email arrived — the
	// highest-confidence automated bin.
	StatusEmailVerified
	// StatusManual: registered by hand (the Alexa top-500 pass); assumed
	// valid.
	StatusManual
)

// String names the status with the paper's Table 1 labels.
func (s AccountStatus) String() string {
	switch s {
	case StatusBadHeuristics:
		return "Bad heuristics/Fields missing"
	case StatusOKSubmission:
		return "OK submission"
	case StatusEmailReceived:
		return "Email received"
	case StatusEmailVerified:
		return "Email verified"
	case StatusManual:
		return "Manual"
	default:
		return fmt.Sprintf("AccountStatus(%d)", int(s))
	}
}

// Registration is one identity permanently bound ("burned") to one site.
type Registration struct {
	Identity *identity.Identity
	Domain   string
	Rank     int
	Category string
	When     time.Time
	Code     crawler.Code
	Status   AccountStatus
	Manual   bool

	// version counts mutations since creation so the incremental
	// checkpoint can tell whether its cached per-registration blob is
	// stale. Guarded by the owning regShard's mutex.
	version uint64
}

// ledgerShards is the burn-map stripe count. Burned-identity lookups are
// the hot ledger operation during parallel crawling (every wave probes
// tripwireAccountExists per candidate); striping by email hash keeps them
// from serializing on one mutex.
const ledgerShards = 64

// regShard is one stripe of the email → registration index.
type regShard struct {
	mu   sync.Mutex
	regs map[string]*Registration
}

// poolSegment is one run of the FIFO identity pool: either a contiguous
// span of not-yet-materialized identity indexes [from, to) — the common
// case after bulk provisioning — or a single explicitly added identity
// (AddIdentity, Return). Spans keep the 10M-account pool O(1) resident;
// identities materialize one at a time as Take reaches them.
type poolSegment struct {
	from, to int64              // index span when id == nil
	id       *identity.Identity // explicit item when id != nil
}

// classPool is one password class's FIFO pool: segments in arrival order,
// consumed from the front.
type classPool struct {
	segs []poolSegment
	head int
}

func (p *classPool) size() int64 {
	n := int64(0)
	for i := p.head; i < len(p.segs); i++ {
		if s := &p.segs[i]; s.id != nil {
			n++
		} else {
			n += s.to - s.from
		}
	}
	return n
}

// compact reclaims the consumed prefix once it dominates the slice.
func (p *classPool) compact() {
	if p.head > 64 && p.head*2 >= len(p.segs) {
		p.segs = append(p.segs[:0], p.segs[p.head:]...)
		p.head = 0
	}
}

// rankSpan is a half-open run [from, to) of identity indexes of one class
// belonging to the monitored-unused universe.
type rankSpan struct{ from, to int64 }

// Ledger is the Tripwire database: the identity pool, burned identities,
// per-site registrations, and the monitored-but-unused account set. All
// methods are safe for concurrent use.
//
// The pool and the unused set are virtual: bulk provisioning records index
// spans (ExtendPool) instead of materialized identities, and membership
// questions resolve arithmetically through the deriver/rank functions the
// pilot injects. Only explicitly added identities (AddIdentity, Return)
// and burned registrations occupy per-account memory.
type Ledger struct {
	mu        sync.Mutex // guards pools, bySite, controls, unused, spans, burned
	pools     [2]classPool
	bySite    map[string][]*Registration
	controls  map[string]*identity.Identity // control accounts, never registered
	unused    map[string]*identity.Identity // explicitly provisioned, not yet used
	spans     [2][]rankSpan                 // unused-universe index spans per class
	spanTotal int64                         // total indexes covered by spans
	burnedIn  int64                         // span members burned so far
	burned    map[int64]struct{}            // burned ranks from spans

	deriver func(rank int64) *identity.Identity
	rankFn  func(email string) (rank int64, ok bool)

	shards [ledgerShards]regShard // email → registration
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	l := &Ledger{
		bySite:   make(map[string][]*Registration),
		controls: make(map[string]*identity.Identity),
		unused:   make(map[string]*identity.Identity),
		burned:   make(map[int64]struct{}),
	}
	for i := range l.shards {
		l.shards[i].regs = make(map[string]*Registration)
	}
	return l
}

// SetDeriver installs the rank → identity materializer (identity.Generator.At)
// used when Take reaches a span segment.
func (l *Ledger) SetDeriver(fn func(rank int64) *identity.Identity) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.deriver = fn
}

// SetRankFn installs the email → rank inverse (identity.Generator.RankOf)
// used to answer unused-set membership for span-covered accounts.
func (l *Ledger) SetRankFn(fn func(email string) (int64, bool)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rankFn = fn
}

func (l *Ledger) shardFor(email string) *regShard {
	h := fnv.New32a()
	h.Write([]byte(email))
	return &l.shards[h.Sum32()%ledgerShards]
}

// AddIdentity places a materialized identity in the available pool. Its
// email account is also tracked as unused until burned.
func (l *Ledger) AddIdentity(id *identity.Identity) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := &l.pools[id.Class]
	p.segs = append(p.segs, poolSegment{id: id})
	l.unused[strings.ToLower(id.Email)] = id
}

// ExtendPool appends the index span [from, from+n) of class to the FIFO
// pool without materializing anything: the span's identities exist only as
// arithmetic until Take reaches them. The span also joins the
// monitored-unused universe, exactly as if each identity had been added
// via AddIdentity.
func (l *Ledger) ExtendPool(class identity.PasswordClass, from, n int64) {
	if n <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	p := &l.pools[class]
	p.segs = append(p.segs, poolSegment{from: from, to: from + n})
	spans := l.spans[class]
	if k := len(spans); k > 0 && spans[k-1].to == from {
		spans[k-1].to = from + n
	} else {
		spans = append(spans, rankSpan{from: from, to: from + n})
	}
	l.spans[class] = spans
	l.spanTotal += n
}

// AddControl registers a control account: provisioned at the provider,
// logged into by Tripwire itself from time to time, never registered at any
// site (paper §4.2).
func (l *Ledger) AddControl(id *identity.Identity) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.controls[strings.ToLower(id.Email)] = id
}

// IsControl reports whether email is a control account.
func (l *Ledger) IsControl(email string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.controls[strings.ToLower(email)]
	return ok
}

// Take removes and returns an identity of the given class from the pool,
// or nil when the pool is dry. Identities are handed out in FIFO order so
// runs are deterministic; a span segment materializes its front rank
// through the injected deriver.
func (l *Ledger) Take(class identity.PasswordClass) *identity.Identity {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := &l.pools[class]
	for p.head < len(p.segs) {
		s := &p.segs[p.head]
		if s.id != nil {
			id := s.id
			p.head++
			p.compact()
			return id
		}
		if s.from < s.to {
			rank := identity.RankFor(class, s.from)
			s.from++
			if s.from == s.to {
				p.head++
				p.compact()
			}
			return l.deriver(rank)
		}
		p.head++
	}
	p.compact()
	return nil
}

// Return puts an identity back in the pool. Only legal if the identity was
// never exposed: "the identity used may be returned to the general pool ...
// only if neither the email address nor password were exposed" (§4.3.1).
// Returning a burned identity panics: that is a protocol violation the
// simulation must never commit.
func (l *Ledger) Return(id *identity.Identity) {
	email := strings.ToLower(id.Email)
	sh := l.shardFor(email)
	sh.mu.Lock()
	_, burnedReg := sh.regs[email]
	sh.mu.Unlock()
	if burnedReg {
		panic("core: returning a burned identity to the pool")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	p := &l.pools[id.Class]
	p.segs = append(p.segs, poolSegment{id: id})
}

// Burn permanently associates id with a site. The first burn wins; burning
// an already-burned identity to a different site panics (one-to-one mapping
// is the system's core invariant, §4.1).
func (l *Ledger) Burn(id *identity.Identity, domain string, rank int, category string, when time.Time, code crawler.Code, manual bool) *Registration {
	email := strings.ToLower(id.Email)
	sh := l.shardFor(email)
	sh.mu.Lock()
	if prev, ok := sh.regs[email]; ok {
		prevDomain := prev.Domain
		sh.mu.Unlock()
		if prevDomain != domain {
			panic(fmt.Sprintf("core: identity %s already burned to %s, cannot burn to %s", email, prevDomain, domain))
		}
		return prev
	}
	reg := &Registration{
		Identity: id,
		Domain:   domain,
		Rank:     rank,
		Category: category,
		When:     when,
		Code:     code,
		Manual:   manual,
		Status:   initialStatus(code, manual),
		version:  1,
	}
	sh.regs[email] = reg
	sh.mu.Unlock()

	l.mu.Lock()
	l.bySite[domain] = append(l.bySite[domain], reg)
	if _, ok := l.unused[email]; ok {
		delete(l.unused, email)
	} else if l.rankFn != nil {
		if r, ok := l.rankFn(email); ok && l.inSpansLocked(r) {
			if _, dup := l.burned[r]; !dup {
				l.burned[r] = struct{}{}
				l.burnedIn++
			}
		}
	}
	l.mu.Unlock()
	return reg
}

// inSpansLocked reports whether rank belongs to the span-provisioned
// unused universe. Caller holds l.mu.
func (l *Ledger) inSpansLocked(rank int64) bool {
	class := identity.ClassOf(rank)
	idx := identity.IndexOf(rank)
	spans := l.spans[class]
	i := sort.Search(len(spans), func(i int) bool { return spans[i].to > idx })
	return i < len(spans) && spans[i].from <= idx
}

func initialStatus(code crawler.Code, manual bool) AccountStatus {
	switch {
	case manual:
		return StatusManual
	case code == crawler.CodeOKSubmission:
		return StatusOKSubmission
	default:
		return StatusBadHeuristics
	}
}

// NoteEmail upgrades a registration's status on mail receipt: verification
// mail lifts it to EmailVerified; any other mail to at least EmailReceived.
// It returns the registration, or nil if the recipient is not burned.
func (l *Ledger) NoteEmail(rcpt string, isVerification bool) *Registration {
	email := strings.ToLower(rcpt)
	sh := l.shardFor(email)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	reg, ok := sh.regs[email]
	if !ok {
		return nil
	}
	if reg.Status == StatusManual {
		return reg
	}
	if isVerification {
		if reg.Status != StatusEmailVerified {
			reg.Status = StatusEmailVerified
			reg.version++
		}
	} else if reg.Status < StatusEmailReceived {
		reg.Status = StatusEmailReceived
		reg.version++
	}
	return reg
}

// Lookup returns the registration bound to email.
func (l *Ledger) Lookup(email string) (*Registration, bool) {
	key := strings.ToLower(email)
	sh := l.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	reg, ok := sh.regs[key]
	return reg, ok
}

// SiteRegistrations returns the registrations at domain.
func (l *Ledger) SiteRegistrations(domain string) []*Registration {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Registration, len(l.bySite[domain]))
	copy(out, l.bySite[domain])
	return out
}

// Registrations returns every burned registration.
func (l *Ledger) Registrations() []*Registration {
	var out []*Registration
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for _, reg := range sh.regs {
			out = append(out, reg)
		}
		sh.mu.Unlock()
	}
	return out
}

// Sites returns the set of domains with at least one registration.
func (l *Ledger) Sites() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.bySite))
	for d := range l.bySite {
		out = append(out, d)
	}
	return out
}

// SiteCount returns how many domains hold at least one registration,
// without materializing the domain list — the progress-mirror read runs
// once per epoch.
func (l *Ledger) SiteCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.bySite)
}

// PoolSize returns the number of identities currently available.
func (l *Ledger) PoolSize() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.pools[identity.Hard].size() + l.pools[identity.Easy].size())
}

// UnusedCount returns how many provisioned accounts were never used at any
// site — the honeypot set guarding the provider's and Tripwire's own
// integrity (paper §4.4: "more than 100,000 valid email addresses ...
// monitored for logins, but ... not registered with sites"). Span-covered
// members are counted arithmetically.
func (l *Ledger) UnusedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.unused) + int(l.spanTotal-l.burnedIn)
}

// IsUnused reports whether email belongs to the unused monitored set.
func (l *Ledger) IsUnused(email string) bool {
	key := strings.ToLower(email)
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.unused[key]; ok {
		return true
	}
	if l.rankFn == nil {
		return false
	}
	rank, ok := l.rankFn(key)
	if !ok || !l.inSpansLocked(rank) {
		return false
	}
	_, wasBurned := l.burned[rank]
	return !wasBurned
}
