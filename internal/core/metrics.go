package core

import (
	"tripwire/internal/obs"
)

// MonitorMetrics aggregates detection-side telemetry. A nil *MonitorMetrics
// is a no-op.
type MonitorMetrics struct {
	dumpsIngested    *obs.Counter
	eventsIngested   *obs.Counter
	attributedLogins *obs.Counter
	controlLogins    *obs.Counter
	integrityAlarms  *obs.Counter
	detections       *obs.Counter
}

// NewMonitorMetrics registers the monitor metric families on r and exposes
// the current detection count as a collection-time gauge.
func (m *Monitor) NewMonitorMetrics(r *obs.Registry) *MonitorMetrics {
	if r == nil {
		return nil
	}
	mm := &MonitorMetrics{
		dumpsIngested:    r.Counter("tripwire_monitor_dumps_total", "Provider login dumps ingested."),
		eventsIngested:   r.Counter("tripwire_monitor_events_total", "Login events processed across all dumps."),
		attributedLogins: r.Counter("tripwire_monitor_attributed_logins_total", "Login events attributed to a site registration."),
		controlLogins:    r.Counter("tripwire_monitor_control_logins_total", "Control-account logins recognized in dumps."),
		integrityAlarms:  r.Counter("tripwire_monitor_integrity_alarms_total", "Logins to accounts never registered anywhere (must stay 0)."),
		detections:       r.Counter("tripwire_monitor_detections_total", "Sites newly detected as compromised."),
	}
	r.GaugeFunc("tripwire_monitor_sites_detected", "Distinct sites currently carrying a detection.", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(len(m.detections))
	})
	return mm
}
