package sim

import (
	"bytes"
	"context"
	"fmt"
	"net/netip"
	"os"
	"testing"

	"tripwire/internal/identity"
	"tripwire/internal/snapshot"
)

// TestLazyEagerAccountEquivalence is the account-store property test,
// mirroring webgen's lazy-materialization invariance: a study whose
// provider accounts exist only implicitly through the (seed, rank)
// deriver must finish in exactly the state of a run that materializes
// every provisioned account up front — byte-identical across every
// attested section (provider export with AllLogins, ledger, outputs with
// detection times) — at several worker counts.
func TestLazyEagerAccountEquivalence(t *testing.T) {
	want := fingerprint(NewPilot(resumeTestConfig()).Run())

	workerGrid := []int{1, 2, 4, 8}
	if testing.Short() {
		workerGrid = []int{1, 4}
	}
	for _, w := range workerGrid {
		for _, eager := range []bool{false, true} {
			cfg := resumeTestConfig()
			cfg.CrawlWorkers = w
			cfg.TimelineWorkers = w
			cfg.EagerAccounts = eager
			p := NewPilot(cfg).Run()
			label := fmt.Sprintf("eager=%v workers=%d", eager, w)
			sameFingerprint(t, label, fingerprint(p), want)
		}
	}

	// The eager path really does materialize what the lazy path leaves
	// implicit — the equivalence above is not vacuous.
	lazy := NewPilot(resumeTestConfig()).Run()
	eagerCfg := resumeTestConfig()
	eagerCfg.EagerAccounts = true
	eager := NewPilot(eagerCfg).Run()
	if got, want := eager.Provider.NumAccounts(), lazy.Provider.NumAccounts(); got != want {
		t.Fatalf("NumAccounts: eager %d, lazy %d", got, want)
	}
	lazySt, eagerSt := lazy.Provider.ExportState(), eager.Provider.ExportState()
	if lazySt.Implicit == 0 {
		t.Fatal("lazy run has no implicit accounts; the provisioning path went eager")
	}
	if lazySt.Implicit != eagerSt.Implicit || len(lazySt.Accounts) != len(eagerSt.Accounts) {
		t.Fatalf("export shape differs: lazy %d implicit/%d explicit, eager %d implicit/%d explicit",
			lazySt.Implicit, len(lazySt.Accounts), eagerSt.Implicit, len(eagerSt.Accounts))
	}
}

// TestIncrementalCheckpointEquivalence pins the O(dirty) checkpoint
// machinery: a run checkpointed through the section cache at every wave
// writes files byte-identical to a run whose cache is disabled (every
// checkpoint a full re-encode), the cache actually reuses bytes past the
// first checkpoint, and Resume from each incremental snapshot passes the
// byte attestation.
func TestIncrementalCheckpointEquivalence(t *testing.T) {
	// Both runs checkpoint into the same directory path — the path is part
	// of the encoded config section — so the incremental run's files are
	// captured in memory before the cache-disabled run overwrites them.
	dir := t.TempDir()

	cfg := resumeTestConfig()
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 1
	incr := NewPilot(cfg)
	incr.Run()
	if stats := incr.LastCheckpointStats(); stats.ReusedBytes == 0 {
		t.Fatal("final checkpoint reused no cached bytes; the incremental path is not engaging")
	}
	incrFiles := checkpointFiles(t, dir)
	if len(incrFiles) == 0 {
		t.Fatal("no checkpoints written")
	}
	incrBytes := make(map[string][]byte, len(incrFiles))
	for _, file := range incrFiles {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		incrBytes[file] = data
	}

	full := NewPilot(cfg)
	full.ckptCache = nil // every checkpoint re-encodes from live state
	full.Run()
	if stats := full.LastCheckpointStats(); stats.ReusedBytes != 0 || stats.EncodedBytes != 0 {
		t.Fatalf("cache-disabled run recorded cache stats %+v", stats)
	}

	fullFiles := checkpointFiles(t, dir)
	if len(fullFiles) != len(incrFiles) {
		t.Fatalf("checkpoint counts differ: %d incremental, %d full", len(incrFiles), len(fullFiles))
	}
	for _, file := range fullFiles {
		want, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := incrBytes[file]
		if !ok {
			t.Fatalf("full run wrote %s, which the incremental run did not", file)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: incremental file differs from full re-encode (%d vs %d bytes)",
				file, len(got), len(want))
		}
	}

	// The finished pilot's cached assembly must also equal a fresh full
	// encode — not just the files written mid-run.
	incrSnap, err := incr.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	fullSnap, err := incr.CheckpointFull()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshot.Encode(incrSnap), snapshot.Encode(fullSnap)) {
		t.Fatal("post-run Checkpoint() and CheckpointFull() encode different bytes")
	}

	// Resume from every incremental snapshot: RunContext replays the
	// prefix and byte-attests the rebuilt state against the snapshot; a
	// stale or mis-stitched section fails here naming itself.
	files := incrFiles
	if testing.Short() {
		files = []string{files[0], files[len(files)/2], files[len(files)-1]}
	}
	want := fingerprint(incr)
	for _, file := range files {
		p, err := ResumePilot(file, func(c *Config) {
			c.CheckpointDir = ""
			c.CheckpointEvery = 0
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.RunContext(context.Background()); err != nil {
			t.Fatalf("resume %s: %v", file, err)
		}
		sameFingerprint(t, "resumed "+file, fingerprint(p), want)
	}
}

// TestLazyMillionAccountSmoke provisions a million honey accounts through
// the lazy (seed, rank) path and spot-checks the population without ever
// materializing it. It is the `make ci` -race smoke: fast because
// provisioning is O(1) per span regardless of the account count.
func TestLazyMillionAccountSmoke(t *testing.T) {
	const perClass = 500_000
	p := NewPilot(SmallConfig())
	p.provisionIdentities(perClass, identity.Hard)
	p.provisionIdentities(perClass, identity.Easy)

	if got := p.Provider.NumAccounts(); got < 2*perClass {
		t.Fatalf("NumAccounts = %d after provisioning %d", got, 2*perClass)
	}
	if got := p.Ledger.UnusedCount(); got < 2*perClass {
		t.Fatalf("UnusedCount = %d after provisioning %d", got, 2*perClass)
	}

	// Spot-check accounts across the range: they exist, derive stable
	// credentials, and accept logins — all without bulk materialization.
	for _, idx := range []int64{0, 1, perClass / 2, perClass - 1} {
		id := p.gen.At(identity.RankFor(identity.Hard, idx))
		if !p.Provider.Exists(id.Email) {
			t.Fatalf("provisioned account %s does not exist", id.Email)
		}
		if err := p.Provider.WebLogin(id.Email, id.Password, netip.MustParseAddr("203.0.113.7")); err != nil {
			t.Fatalf("login to %s: %v", id.Email, err)
		}
		if !p.Ledger.IsUnused(id.Email) {
			t.Fatalf("unregistered account %s not tracked as unused", id.Email)
		}
	}

	// Export stays O(deviating): logging in does not deviate a pristine
	// account, so the million-account population exports as a counter plus
	// the login events, not a million rows.
	st := p.Provider.ExportState()
	if st.Implicit < 2*perClass {
		t.Fatalf("Implicit = %d, want >= %d", st.Implicit, 2*perClass)
	}
	if len(st.Accounts) != 0 {
		t.Fatalf("%d accounts materialized by read-only spot checks", len(st.Accounts))
	}
	if len(st.Logins) != 4 {
		t.Fatalf("expected the 4 spot-check logins in the export, got %d", len(st.Logins))
	}

	// Taking an identity from the FIFO pool materializes exactly that
	// front-of-span identity.
	id := p.Ledger.Take(identity.Hard)
	if id == nil {
		t.Fatal("Take returned nil with a full pool")
	}
	if want := p.gen.At(identity.RankFor(identity.Hard, 0)).Email; id.Email != want {
		t.Fatalf("pool is not FIFO over the span: took %s, want %s", id.Email, want)
	}
}
