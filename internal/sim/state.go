package sim

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"tripwire/internal/attacker"
	"tripwire/internal/core"
	"tripwire/internal/crawler"
	"tripwire/internal/emailprovider"
	"tripwire/internal/identity"
	"tripwire/internal/snapshot"
	"tripwire/internal/webgen"
)

// A checkpoint is one snapshot.File with these sections. "config" and
// "progress" drive resume (rebuild the pilot, replay this many epochs);
// the rest are attestation material: byte images of every subsystem's
// durable state, re-derived after replay and compared section by section.
// The scheduler's pending queue is deliberately absent — it holds closures
// over live subsystem state and is instead re-derived by re-running the
// deterministic schedule (see Pilot.replay).
const (
	sectionConfig   = "config"
	sectionProgress = "progress"
	sectionOutputs  = "outputs"
	sectionProvider = "provider"
	sectionLedger   = "ledger"
	sectionMonitor  = "monitor"
	sectionAttacker = "attacker"
	sectionWebgen   = "webgen"
)

// attested lists the sections compared after replay, in comparison order.
// "config" is excluded: resume may legitimately override runtime knobs
// (worker counts, checkpoint cadence) that the config section records.
var attested = []string{
	sectionProgress, sectionOutputs, sectionProvider,
	sectionLedger, sectionMonitor, sectionAttacker, sectionWebgen,
}

// encodeConfig serializes every determinism-relevant Config field.
// Metrics is runtime wiring, not state, and is skipped.
func encodeConfig(cfg *Config) []byte {
	e := snapshot.NewEncoder()
	e.Int(cfg.Seed)

	w := &cfg.Web
	e.Int(int64(w.NumSites))
	e.Int(w.Seed)
	for _, f := range []float64{
		w.LoadFailureTop, w.LoadFailureTail, w.NonEnglish,
		w.NoRegistrationTop, w.NoRegistrationTail, w.IneligibleOther,
		w.CaptchaRate, w.MultiStageRate, w.ObscureLink, w.OddFields,
		w.JSFormRate, w.SpecialCharPwd, w.EmailVerifyRate,
		w.WelcomeEmailRate, w.FlakyBackendRate, w.VagueResponse,
		w.PlaintextFrac, w.ReversibleFrac, w.WeakHashFrac, w.StrongHashFrac,
	} {
		e.Float(f)
	}

	e.Time(cfg.Start)
	e.Time(cfg.End)
	e.Uint(uint64(len(cfg.Batches)))
	for _, b := range cfg.Batches {
		e.String(b.Name)
		e.Time(b.Start)
		e.Duration(b.Duration)
		e.Int(int64(b.FromRank))
		e.Int(int64(b.ToRank))
		e.Bool(b.Manual)
	}
	e.Int(int64(cfg.NumUnused))
	e.Int(int64(cfg.NumControls))
	e.Duration(cfg.ControlLoginEvery)
	e.Int(int64(cfg.BreachRegistered))
	e.Int(int64(cfg.BreachUnregistered))
	e.Time(cfg.BreachWindowStart)
	e.Time(cfg.BreachWindowEnd)
	e.Int(int64(cfg.OrganicUsersMin))
	e.Int(int64(cfg.OrganicUsersMax))
	e.Uint(uint64(len(cfg.DumpDates)))
	for _, d := range cfg.DumpDates {
		e.Time(d)
	}
	e.Duration(cfg.Retention)
	e.Float(cfg.CaptchaImageErr)
	e.Float(cfg.CaptchaKnowledgeErr)
	e.Float(cfg.CrawlerFaultRate)
	e.Bool(cfg.UseLanguagePacks)
	e.Bool(cfg.UseSearchEngine)
	e.Bool(cfg.UseMultiStage)
	e.Bool(cfg.ReRegisterDetected)
	e.Int(int64(cfg.CrawlWorkers))
	e.Int(int64(cfg.TimelineWorkers))
	e.Duration(cfg.NetLatency)
	e.Int(int64(cfg.CheckpointEvery))
	e.String(cfg.CheckpointDir)
	e.Int(int64(cfg.LogResidentBudget))
	e.String(cfg.LogSpillDir)
	e.Bool(cfg.EagerAccounts)
	e.Bool(cfg.TimelineAdaptiveAlign)
	return e.Bytes()
}

// decodeConfig is the inverse of encodeConfig.
func decodeConfig(data []byte) (Config, error) {
	d := snapshot.NewDecoder(data)
	var cfg Config
	cfg.Seed = d.Int()

	w := &cfg.Web
	w.NumSites = int(d.Int())
	w.Seed = d.Int()
	for _, p := range []*float64{
		&w.LoadFailureTop, &w.LoadFailureTail, &w.NonEnglish,
		&w.NoRegistrationTop, &w.NoRegistrationTail, &w.IneligibleOther,
		&w.CaptchaRate, &w.MultiStageRate, &w.ObscureLink, &w.OddFields,
		&w.JSFormRate, &w.SpecialCharPwd, &w.EmailVerifyRate,
		&w.WelcomeEmailRate, &w.FlakyBackendRate, &w.VagueResponse,
		&w.PlaintextFrac, &w.ReversibleFrac, &w.WeakHashFrac, &w.StrongHashFrac,
	} {
		*p = d.Float()
	}

	cfg.Start = d.Time()
	cfg.End = d.Time()
	if n := d.Count(6); n > 0 {
		cfg.Batches = make([]Batch, n)
		for i := range cfg.Batches {
			b := &cfg.Batches[i]
			b.Name = d.String()
			b.Start = d.Time()
			b.Duration = d.Duration()
			b.FromRank = int(d.Int())
			b.ToRank = int(d.Int())
			b.Manual = d.Bool()
		}
	}
	cfg.NumUnused = int(d.Int())
	cfg.NumControls = int(d.Int())
	cfg.ControlLoginEvery = d.Duration()
	cfg.BreachRegistered = int(d.Int())
	cfg.BreachUnregistered = int(d.Int())
	cfg.BreachWindowStart = d.Time()
	cfg.BreachWindowEnd = d.Time()
	cfg.OrganicUsersMin = int(d.Int())
	cfg.OrganicUsersMax = int(d.Int())
	if n := d.Count(1); n > 0 {
		cfg.DumpDates = make([]time.Time, n)
		for i := range cfg.DumpDates {
			cfg.DumpDates[i] = d.Time()
		}
	}
	cfg.Retention = d.Duration()
	cfg.CaptchaImageErr = d.Float()
	cfg.CaptchaKnowledgeErr = d.Float()
	cfg.CrawlerFaultRate = d.Float()
	cfg.UseLanguagePacks = d.Bool()
	cfg.UseSearchEngine = d.Bool()
	cfg.UseMultiStage = d.Bool()
	cfg.ReRegisterDetected = d.Bool()
	cfg.CrawlWorkers = int(d.Int())
	cfg.TimelineWorkers = int(d.Int())
	cfg.NetLatency = d.Duration()
	cfg.CheckpointEvery = int(d.Int())
	cfg.CheckpointDir = d.String()
	cfg.LogResidentBudget = int(d.Int())
	cfg.LogSpillDir = d.String()
	cfg.EagerAccounts = d.Bool()
	cfg.TimelineAdaptiveAlign = d.Bool()
	if err := d.Err(); err != nil {
		return Config{}, fmt.Errorf("config section: %w", err)
	}
	if d.Remaining() != 0 {
		return Config{}, fmt.Errorf("config section: %w: %d trailing bytes", snapshot.ErrCorrupt, d.Remaining())
	}
	return cfg, nil
}

// progressState is the run's position on the timeline plus every serial
// cursor the driver goroutine owns. Epochs is the resume unit; the rest
// are determinism fingerprints that make the attestation sharp (a
// diverging replay shows up here even when the big sections happen to
// collide).
type progressState struct {
	Epochs     uint64 // completed timeline epochs
	WavesDone  int    // completed registration waves
	Now        time.Time
	SchedSeq   uint64 // next scheduler sequence number
	TaskSeq    int64  // crawl-task creation counter
	MailCursor int
	LastDump   time.Time
	OrganicSeq int
}

func (p *Pilot) progress() progressState {
	return progressState{
		Epochs:     p.epochsRun,
		WavesDone:  p.wavesDone,
		Now:        snapshot.CanonTime(p.Clock.Now()),
		SchedSeq:   p.Sched.Seq(),
		TaskSeq:    p.taskSeq,
		MailCursor: p.mailCursor,
		LastDump:   snapshot.CanonTime(p.lastDump),
		OrganicSeq: p.organicSeq,
	}
}

func encodeProgress(st progressState) []byte {
	e := snapshot.NewEncoder()
	e.Uint(st.Epochs)
	e.Int(int64(st.WavesDone))
	e.Time(st.Now)
	e.Uint(st.SchedSeq)
	e.Int(st.TaskSeq)
	e.Int(int64(st.MailCursor))
	e.Time(st.LastDump)
	e.Int(int64(st.OrganicSeq))
	return e.Bytes()
}

func decodeProgress(data []byte) (progressState, error) {
	d := snapshot.NewDecoder(data)
	st := progressState{
		Epochs:     d.Uint(),
		WavesDone:  int(d.Int()),
		Now:        d.Time(),
		SchedSeq:   d.Uint(),
		TaskSeq:    d.Int(),
		MailCursor: int(d.Int()),
		LastDump:   d.Time(),
		OrganicSeq: int(d.Int()),
	}
	if err := d.Err(); err != nil {
		return progressState{}, fmt.Errorf("progress section: %w", err)
	}
	if d.Remaining() != 0 {
		return progressState{}, fmt.Errorf("progress section: %w: %d trailing bytes", snapshot.ErrCorrupt, d.Remaining())
	}
	return st, nil
}

// domainTime is one DetectionTimes entry, sorted by domain for export.
type domainTime struct {
	Domain string
	At     time.Time
}

// outputsState is the pilot's result record: the attempt log, detection
// times, and missed breaches — everything resume must reproduce
// byte-identically for the completed prefix.
type outputsState struct {
	Attempts       []Attempt
	DetectionTimes []domainTime // sorted by domain
	Missed         []string
}

func (p *Pilot) outputs() outputsState {
	var st outputsState
	for _, a := range p.Attempts {
		a.When = snapshot.CanonTime(a.When)
		st.Attempts = append(st.Attempts, a)
	}
	for domain, at := range p.DetectionTimes {
		st.DetectionTimes = append(st.DetectionTimes, domainTime{Domain: domain, At: snapshot.CanonTime(at)})
	}
	sort.Slice(st.DetectionTimes, func(i, j int) bool {
		return st.DetectionTimes[i].Domain < st.DetectionTimes[j].Domain
	})
	// MissedBreaches is appended in campaign-map order (recordMisses runs
	// once, at the very end of a run, after the last possible checkpoint);
	// sort the export so the section is a deterministic function of state.
	st.Missed = append(st.Missed, p.MissedBreaches...)
	sort.Strings(st.Missed)
	return st
}

func appendAttempt(e *snapshot.Encoder, a *Attempt) {
	e.String(a.Domain)
	e.Int(int64(a.Rank))
	e.Int(int64(a.Class))
	e.Int(int64(a.Code))
	e.Bool(a.Exposed)
	e.Bool(a.Manual)
	e.Time(a.When)
	e.String(a.Email)
	e.Int(int64(a.PageLoad))
}

func appendOutputsTail(e *snapshot.Encoder, st *outputsState) {
	e.Uint(uint64(len(st.DetectionTimes)))
	for _, dt := range st.DetectionTimes {
		e.String(dt.Domain)
		e.Time(dt.At)
	}
	e.Uint(uint64(len(st.Missed)))
	for _, m := range st.Missed {
		e.String(m)
	}
}

func encodeOutputs(st outputsState) []byte {
	e := snapshot.NewEncoder()
	e.Uint(uint64(len(st.Attempts)))
	for i := range st.Attempts {
		appendAttempt(e, &st.Attempts[i])
	}
	appendOutputsTail(e, &st)
	return e.Bytes()
}

// attemptChunk is the attempt-log cache granularity: the log is
// append-only, so every full chunk is immutable (version = fill count
// freezes at attemptChunk) and only the growing tail chunk re-encodes.
const attemptChunk = 256

// encodeOutputsCached assembles encodeOutputs(st) bytes through the
// section cache, re-encoding only the tail attempt chunk plus the small
// detection/missed trailer. Byte-identical to encodeOutputs by
// construction (shared append helpers).
func encodeOutputsCached(st outputsState, c *snapshot.SectionCache) []byte {
	e := snapshot.NewEncoder()
	e.Uint(uint64(len(st.Attempts)))
	for i := 0; i < len(st.Attempts); i += attemptChunk {
		j := i + attemptChunk
		if j > len(st.Attempts) {
			j = len(st.Attempts)
		}
		chunk := st.Attempts[i:j]
		e.Raw(c.GetOrBuild(fmt.Sprintf("ou/att/%d", i/attemptChunk), uint64(j-i), func() []byte {
			blob := snapshot.NewEncoder()
			for k := range chunk {
				appendAttempt(blob, &chunk[k])
			}
			return blob.Bytes()
		}))
	}
	// DetectionTimes entries are written once per domain and MissedBreaches
	// only at the very end of a run, so the pair's lengths are a sound
	// version for the trailer.
	e.Raw(c.GetOrBuild("ou/tail", uint64(len(st.DetectionTimes))<<20|uint64(len(st.Missed)), func() []byte {
		blob := snapshot.NewEncoder()
		appendOutputsTail(blob, &st)
		return blob.Bytes()
	}))
	return e.Bytes()
}

func decodeOutputs(data []byte) (outputsState, error) {
	d := snapshot.NewDecoder(data)
	var st outputsState
	if n := d.Count(9); n > 0 {
		st.Attempts = make([]Attempt, n)
		for i := range st.Attempts {
			a := &st.Attempts[i]
			a.Domain = d.String()
			a.Rank = int(d.Int())
			a.Class = identity.PasswordClass(d.Int())
			a.Code = crawler.Code(d.Int())
			a.Exposed = d.Bool()
			a.Manual = d.Bool()
			a.When = d.Time()
			a.Email = d.String()
			a.PageLoad = int(d.Int())
		}
	}
	if n := d.Count(2); n > 0 {
		st.DetectionTimes = make([]domainTime, n)
		for i := range st.DetectionTimes {
			st.DetectionTimes[i].Domain = d.String()
			st.DetectionTimes[i].At = d.Time()
		}
	}
	if n := d.Count(1); n > 0 {
		st.Missed = make([]string, n)
		for i := range st.Missed {
			st.Missed[i] = d.String()
		}
	}
	if err := d.Err(); err != nil {
		return outputsState{}, fmt.Errorf("outputs section: %w", err)
	}
	if d.Remaining() != 0 {
		return outputsState{}, fmt.Errorf("outputs section: %w: %d trailing bytes", snapshot.ErrCorrupt, d.Remaining())
	}
	return st, nil
}

// exportSection renders one attestation section from live pilot state.
// Must run on the driver goroutine between epochs.
func (p *Pilot) exportSection(name string) []byte {
	switch name {
	case sectionProgress:
		return encodeProgress(p.progress())
	case sectionOutputs:
		return encodeOutputs(p.outputs())
	case sectionProvider:
		return emailprovider.EncodeProviderState(p.Provider.ExportState())
	case sectionLedger:
		return core.EncodeLedgerState(p.Ledger.ExportState())
	case sectionMonitor:
		return core.EncodeMonitorState(p.Monitor.ExportState())
	case sectionAttacker:
		st := attacker.AttackerState{
			Campaign: p.Campaign.ExportState(),
			Stuffer:  p.Stuffer.ExportState(),
		}
		return attacker.EncodeAttackerState(&st)
	case sectionWebgen:
		return webgen.EncodeUniverseState(p.Universe.ExportState())
	default:
		panic("sim: unknown snapshot section " + name)
	}
}

// exportSectionCached renders one attestation section through the
// checkpoint cache: unchanged sub-sections (per-account blobs, attempt
// chunks, whole small sections keyed on their owners' mutation counters)
// are stitched back verbatim instead of re-encoded. A nil cache degrades
// to exportSection. The bytes are identical either way — the resume
// attestation (which always uses exportSection) and the
// incremental-equivalence test both pin this.
func (p *Pilot) exportSectionCached(name string, c *snapshot.SectionCache) []byte {
	if c == nil {
		return p.exportSection(name)
	}
	switch name {
	case sectionProgress:
		// Progress moves every checkpoint (epochs advanced); keying on the
		// epoch count keeps its bytes in the encoded/reused accounting.
		return c.GetOrBuild("sec/progress", p.epochsRun, func() []byte {
			return encodeProgress(p.progress())
		})
	case sectionOutputs:
		return encodeOutputsCached(p.outputs(), c)
	case sectionProvider:
		return p.Provider.EncodeStateCached(c)
	case sectionLedger:
		return p.Ledger.EncodeStateCached(c)
	case sectionMonitor:
		return c.GetOrBuild("sec/monitor", p.Monitor.StateRev(), func() []byte {
			return p.exportSection(sectionMonitor)
		})
	case sectionAttacker:
		// Both counters are monotone, so their sum moves whenever either
		// does.
		return c.GetOrBuild("sec/attacker", p.Campaign.StateRev()+p.Stuffer.StateRev(), func() []byte {
			return p.exportSection(sectionAttacker)
		})
	case sectionWebgen:
		return c.GetOrBuild("sec/webgen", uint64(p.Universe.MaterializedSites()), func() []byte {
			return p.exportSection(sectionWebgen)
		})
	default:
		return p.exportSection(name)
	}
}

// CheckpointStats is the byte accounting of one checkpoint assembly.
type CheckpointStats struct {
	EncodedBytes int64 // bytes re-encoded because their sub-section changed
	ReusedBytes  int64 // bytes stitched back from the cache, CRC-verified
}

// LastCheckpointStats reports the encoded/reused split of the most recent
// Checkpoint call. Zero until the first checkpoint.
func (p *Pilot) LastCheckpointStats() CheckpointStats { return p.lastCkpt }

// Checkpoint assembles a resumable snapshot of the pilot's current state,
// re-encoding only sub-sections that changed since the previous checkpoint
// (O(dirty), not O(state)). The emitted file is complete and
// self-contained — incrementality saves encode work, not file content.
// Must be called between epochs (RunContext's driver loop does), when no
// parallel work is in flight.
func (p *Pilot) Checkpoint() (*snapshot.File, error) {
	return p.checkpoint(p.ckptCache)
}

// CheckpointFull assembles the same snapshot without the sub-section
// cache, re-encoding everything from live state. Checkpoint's output is
// byte-identical; this is the oracle the equivalence test compares
// against.
func (p *Pilot) CheckpointFull() (*snapshot.File, error) {
	return p.checkpoint(nil)
}

func (p *Pilot) checkpoint(c *snapshot.SectionCache) (*snapshot.File, error) {
	if err := p.Provider.SpillErr(); err != nil {
		// A failed cold tier means AllLogins — and so the provider section —
		// is missing events; a checkpoint written now would attest garbage.
		return nil, fmt.Errorf("login-log spill failed earlier: %w", err)
	}
	if c != nil {
		c.BeginBuild()
	}
	f := snapshot.New()
	f.Add(sectionConfig, encodeConfig(&p.Cfg))
	for _, name := range attested {
		f.Add(name, p.exportSectionCached(name, c))
	}
	if c != nil {
		enc, reused := c.Stats()
		p.lastCkpt = CheckpointStats{EncodedBytes: enc, ReusedBytes: reused}
	}
	return f, nil
}

// WriteCheckpoint writes a checkpoint atomically to path, creating parent
// directories as needed.
func (p *Pilot) WriteCheckpoint(path string) error {
	f, err := p.Checkpoint()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return snapshot.WriteFile(path, f)
}

// attest byte-compares every rebuilt state section against the snapshot,
// naming the first diverging section. Called once, after replay.
func (p *Pilot) attest(f *snapshot.File) error {
	for _, name := range attested {
		want, ok := f.Section(name)
		if !ok {
			return fmt.Errorf("sim: resume: %w: snapshot has no %q section", snapshot.ErrCorrupt, name)
		}
		if got := p.exportSection(name); !bytes.Equal(got, want) {
			return fmt.Errorf("sim: resume: replayed state diverges from checkpoint in section %q (%d vs %d bytes) — the snapshot was taken with a different seed, configuration, or code version", name, len(got), len(want))
		}
	}
	return nil
}

// EpochsRun returns how many timeline epochs the pilot has completed; a
// checkpoint records it and resume replays to it.
func (p *Pilot) EpochsRun() uint64 { return p.epochsRun }

// WavesDone returns how many registration waves have completed.
func (p *Pilot) WavesDone() int { return p.wavesDone }

// ResumePilot rebuilds a pilot from a checkpoint written by
// WriteCheckpoint. The returned pilot's RunContext first re-executes the
// checkpoint's recorded epoch count — the scheduler queue holds closures
// and cannot be serialized, so resume replays the deterministic prefix —
// then verifies the rebuilt state byte-for-byte against the snapshot and
// continues to the configured end. The completed run is byte-identical to
// an uninterrupted one, at any worker count.
//
// mutate, when non-nil, may adjust runtime knobs (CrawlWorkers,
// TimelineWorkers, Metrics, checkpoint cadence and directories) on the
// restored configuration before the pilot is built. Changing
// determinism-relevant fields (seed, batches, rates, window) makes the
// replay diverge from the snapshot, which RunContext reports as an error
// naming the diverging section.
func ResumePilot(path string, mutate func(*Config)) (*Pilot, error) {
	f, err := snapshot.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sim: resume %s: %w", path, err)
	}
	cdata, ok := f.Section(sectionConfig)
	if !ok {
		return nil, fmt.Errorf("sim: resume %s: %w: no %q section", path, snapshot.ErrCorrupt, sectionConfig)
	}
	cfg, err := decodeConfig(cdata)
	if err != nil {
		return nil, fmt.Errorf("sim: resume %s: %w", path, err)
	}
	pdata, ok := f.Section(sectionProgress)
	if !ok {
		return nil, fmt.Errorf("sim: resume %s: %w: no %q section", path, snapshot.ErrCorrupt, sectionProgress)
	}
	prog, err := decodeProgress(pdata)
	if err != nil {
		return nil, fmt.Errorf("sim: resume %s: %w", path, err)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	if err := Validate(cfg); err != nil {
		return nil, fmt.Errorf("sim: resume %s: %w", path, err)
	}
	p := NewPilot(cfg)
	p.replayEpochs = prog.Epochs
	p.resumeSnap = f
	return p, nil
}
