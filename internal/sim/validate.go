package sim

import (
	"net/url"

	"tripwire/internal/browser"
	"tripwire/internal/core"
)

// Validation is the ground-truth check of one burned registration: does an
// account with our credentials actually exist and accept logins at the
// site? The paper estimated this by manually logging in to 50 sampled
// accounts per status bin (§5.2.3); the simulation can probe every account
// through the same login endpoint a human would use.
type Validation struct {
	Registration *core.Registration
	Valid        bool
}

// ValidateAll probes every burned registration over HTTP and returns the
// outcomes. Probes use a fresh browser session and the site's public login
// form; sites that require email verification before login reject accounts
// whose verification link was never clicked, exactly as live sites did.
func (p *Pilot) ValidateAll() []Validation {
	b := browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: p.Universe}))
	regs := p.Ledger.Registrations()
	out := make([]Validation, 0, len(regs))
	for _, reg := range regs {
		out = append(out, Validation{Registration: reg, Valid: p.probeLogin(b, reg)})
	}
	return out
}

func (p *Pilot) probeLogin(b *browser.Client, reg *core.Registration) bool {
	vals := url.Values{}
	vals.Set("login", reg.Identity.Email)
	vals.Set("password", reg.Identity.Password)
	page, err := b.Post("http://"+reg.Domain+"/login", vals)
	if err == nil && page.OK() {
		return true
	}
	// Some sites key accounts by username rather than email.
	vals.Set("login", reg.Identity.Username)
	page, err = b.Post("http://"+reg.Domain+"/login", vals)
	return err == nil && page.OK()
}
