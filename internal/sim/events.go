package sim

import (
	"time"

	"tripwire/internal/core"
)

// EventKind discriminates pilot progress events.
type EventKind int

const (
	// EventWaveDone fires after a crawl wave (both phases) completes.
	EventWaveDone EventKind = iota
	// EventDetection fires when a provider dump newly implicates a site.
	EventDetection
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventWaveDone:
		return "wave-done"
	case EventDetection:
		return "detection"
	default:
		return "event(?)"
	}
}

// Event is one pilot progress notification.
//
// Ordering guarantee: events are emitted synchronously on the scheduler
// goroutine, so they arrive in virtual-time order; detections within one
// dump arrive in the monitor's first-seen order. A given run emits the
// same event sequence regardless of CrawlWorkers.
type Event struct {
	Kind EventKind
	// At is the virtual time the event fired.
	At time.Time

	// Wave fields (EventWaveDone).
	Batch            string
	FromRank, ToRank int
	Attempts         int // registration attempts recorded by this wave
	Manual           bool

	// Detection carries the monitor's evidence (EventDetection). The
	// pointer aliases live monitor state; treat it as read-only.
	Detection *core.Detection
}

// emit delivers ev to the OnEvent hook, if any.
func (p *Pilot) emit(ev Event) {
	if p.OnEvent != nil {
		p.OnEvent(ev)
	}
}
