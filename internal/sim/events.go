package sim

import (
	"time"

	"tripwire/internal/core"
	"tripwire/internal/emailprovider"
)

// EventKind discriminates pilot progress events.
type EventKind int

const (
	// EventWaveDone fires after a crawl wave (both phases) completes.
	EventWaveDone EventKind = iota
	// EventDetection fires when a provider dump newly implicates a site.
	EventDetection
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventWaveDone:
		return "wave-done"
	case EventDetection:
		return "detection"
	default:
		return "event(?)"
	}
}

// Event is one pilot progress notification.
//
// Ordering guarantee: events are emitted synchronously on the scheduler
// goroutine, so they arrive in virtual-time order; detections within one
// dump arrive in the monitor's first-seen order. A given run emits the
// same event sequence regardless of CrawlWorkers.
type Event struct {
	Kind EventKind
	// At is the virtual time the event fired.
	At time.Time

	// Wave fields (EventWaveDone).
	Batch            string
	FromRank, ToRank int
	Attempts         int // registration attempts recorded by this wave
	Manual           bool

	// Detection carries the monitor's evidence (EventDetection): a
	// snapshot taken when the event fired, safe to retain and read from
	// any goroutine — later dumps mutate the monitor's copy, not this one.
	Detection *core.Detection
}

// snapshotDetection deep-copies det on the scheduler goroutine, before
// any later dump can touch it, so event consumers running concurrently
// with the simulation never alias live monitor state.
func snapshotDetection(det *core.Detection) *core.Detection {
	cp := *det
	cp.Logins = make(map[string][]emailprovider.LoginEvent, len(det.Logins))
	for account, logins := range det.Logins {
		cp.Logins[account] = append([]emailprovider.LoginEvent(nil), logins...)
	}
	return &cp
}

// emit delivers ev to the OnEvent hook, if any.
func (p *Pilot) emit(ev Event) {
	if p.OnEvent != nil {
		p.OnEvent(ev)
	}
}
