package sim

import (
	"errors"
	"fmt"
)

// Validate checks cfg for configurations that would make a run panic,
// hang, or silently misbehave. Study.RunContext calls it before building a
// pilot; cmd/tripwire turns a failure into a non-zero exit.
func Validate(cfg Config) error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	if cfg.Web.NumSites < 1 {
		fail("web: NumSites = %d, need at least 1", cfg.Web.NumSites)
	}
	if !cfg.End.After(cfg.Start) {
		fail("window: End %s is not after Start %s", fmtDate(cfg.End), fmtDate(cfg.Start))
	}
	for i, b := range cfg.Batches {
		if b.FromRank < 1 {
			fail("batch %d (%s): FromRank = %d, ranks are 1-based", i, b.Name, b.FromRank)
		}
		if b.ToRank < b.FromRank {
			fail("batch %d (%s): ToRank %d < FromRank %d", i, b.Name, b.ToRank, b.FromRank)
		}
		if b.Duration <= 0 {
			fail("batch %d (%s): Duration must be positive", i, b.Name)
		}
	}
	if cfg.NumUnused < 0 {
		fail("NumUnused = %d, cannot be negative", cfg.NumUnused)
	}
	if cfg.NumControls < 0 {
		fail("NumControls = %d, cannot be negative", cfg.NumControls)
	}
	if cfg.NumControls > 0 && cfg.ControlLoginEvery <= 0 {
		// scheduleControls advances t by ControlLoginEvery; zero would spin
		// forever booking events at the same instant.
		fail("NumControls = %d but ControlLoginEvery = %v; control logins need a positive cadence", cfg.NumControls, cfg.ControlLoginEvery)
	}
	if cfg.BreachRegistered < 0 || cfg.BreachUnregistered < 0 {
		fail("breach counts cannot be negative (registered %d, unregistered %d)", cfg.BreachRegistered, cfg.BreachUnregistered)
	}
	if cfg.BreachRegistered+cfg.BreachUnregistered > 0 && !cfg.BreachWindowEnd.After(cfg.BreachWindowStart) {
		// scheduleBreaches draws Int63n over the window; an empty window
		// panics inside math/rand.
		fail("breach window: end %s is not after start %s", fmtDate(cfg.BreachWindowEnd), fmtDate(cfg.BreachWindowStart))
	}
	if cfg.OrganicUsersMin < 0 || cfg.OrganicUsersMax < cfg.OrganicUsersMin {
		fail("organic users: min %d, max %d (need 0 <= min <= max)", cfg.OrganicUsersMin, cfg.OrganicUsersMax)
	}
	if cfg.Retention <= 0 {
		fail("Retention = %v, must be positive", cfg.Retention)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"CaptchaImageErr", cfg.CaptchaImageErr},
		{"CaptchaKnowledgeErr", cfg.CaptchaKnowledgeErr},
		{"CrawlerFaultRate", cfg.CrawlerFaultRate},
	} {
		if r.v < 0 || r.v > 1 {
			fail("%s = %v, must be in [0, 1]", r.name, r.v)
		}
	}
	if cfg.CrawlWorkers < 0 {
		fail("CrawlWorkers = %d, cannot be negative", cfg.CrawlWorkers)
	}
	if cfg.NetLatency < 0 {
		fail("NetLatency = %v, cannot be negative", cfg.NetLatency)
	}
	if cfg.CheckpointEvery < 0 {
		fail("CheckpointEvery = %d, cannot be negative", cfg.CheckpointEvery)
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointDir == "" {
		fail("CheckpointEvery = %d but CheckpointDir is empty; periodic checkpoints need a directory", cfg.CheckpointEvery)
	}
	if cfg.LogResidentBudget < 0 {
		fail("LogResidentBudget = %d, cannot be negative", cfg.LogResidentBudget)
	}
	if cfg.LogResidentBudget > 0 && cfg.LogSpillDir == "" {
		fail("LogResidentBudget = %d but LogSpillDir is empty; spilling needs a directory", cfg.LogResidentBudget)
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("sim: invalid config: %w", errors.Join(errs...))
}
