package sim

import (
	"runtime"
	"testing"
	"time"

	"tripwire/internal/snapshot"
)

// The heap-envelope configuration: a full (short) study over a 1M-site
// universe whose batches register 2048 of those sites, with the login log
// capped at a small resident budget so the run must spill cold segments
// to disk. The point of the numbers: the universe is ~500x larger than
// the registered set, so any O(universe) heap cost — eager
// materialization, a full login log held resident — blows the envelope
// immediately, while the intended O(registered) cost fits with room to
// spare.
const (
	envelopeUniverse = 1_000_000
	envelopeRanks    = 2048
	envelopeBudget   = 64 // resident login-log events before spilling

	// envelopeHeapMB is the in-bench live-heap ceiling. Measured ~31 MB;
	// the ceiling leaves ~3x headroom for GC timing and platform variance
	// while still catching any O(universe) regression (eagerly
	// materializing even 5% of the universe costs hundreds of MB). The
	// tighter 5% drift gate lives in `make bench-compare` against
	// BENCH_baseline.json.
	envelopeHeapMB = 100
)

// envelopeConfig is the 1M-site spilled-log study the envelope is defined
// over. Batches cover ranks 1..2048 twice (seed + refresh) so accounts
// age, dumps fire, and the login log grows well past the resident budget.
func envelopeConfig(spillDir string) Config {
	cfg := SmallConfig()
	cfg.Web.NumSites = envelopeUniverse
	cfg.Batches = []Batch{
		{Name: "seed", Start: date(2014, 12, 10), Duration: 14 * 24 * time.Hour, FromRank: 1, ToRank: envelopeRanks / 2},
		{Name: "refresh", Start: date(2015, 11, 20), Duration: 21 * 24 * time.Hour, FromRank: 1, ToRank: envelopeRanks},
	}
	cfg.NumUnused = 200
	cfg.BreachRegistered = 6
	cfg.BreachUnregistered = 3
	cfg.OrganicUsersMin = 5
	cfg.OrganicUsersMax = 15
	cfg.CrawlWorkers = 8
	cfg.NetLatency = time.Millisecond
	cfg.LogSpillDir = spillDir
	cfg.LogResidentBudget = envelopeBudget
	return cfg
}

// BenchmarkHeapEnvelope runs the full 1M-site spilled-log study and
// measures the live heap it retains at the end (post-GC, study state
// still reachable). It reports heap-MB, materialized-sites, and
// spilled-segments, and fails outright if the live heap exceeds the
// fixed envelope. `make bench-compare` additionally gates heap-MB at 5%
// drift against the tracked baseline.
func BenchmarkHeapEnvelope(b *testing.B) {
	b.ReportAllocs()
	var p *Pilot
	var materialized, segments, resident int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := envelopeConfig(b.TempDir())
		p = NewPilot(cfg)
		b.StartTimer()
		p.Run()
		b.StopTimer()
		if err := p.Provider.SpillErr(); err != nil {
			b.Fatal(err)
		}
		materialized = int64(p.Universe.MaterializedSites())
		segments = int64(p.Provider.SpilledSegments())
		resident = int64(p.Provider.ResidentLogSize())
		if segments == 0 {
			b.Fatalf("resident budget %d never forced a spill (resident log size %d)",
				envelopeBudget, resident)
		}
		if resident > envelopeBudget {
			b.Fatalf("resident log size %d exceeds budget %d", resident, envelopeBudget)
		}
		b.StartTimer()
	}
	b.StopTimer()
	// Live heap with the final pilot still reachable: what a long-running
	// study retains between waves, not what the run transiently allocated.
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	heapMB := float64(ms.HeapAlloc) / 1e6
	b.ReportMetric(heapMB, "heap-MB")
	b.ReportMetric(float64(materialized), "materialized-sites")
	b.ReportMetric(float64(segments), "spilled-segments")
	if heapMB > envelopeHeapMB {
		b.Fatalf("live heap %.1f MB exceeds the %d MB envelope for a %d-site universe / %d-rank study",
			heapMB, envelopeHeapMB, envelopeUniverse, envelopeRanks)
	}
	runtime.KeepAlive(p)
}

// envelope10MAccounts/envelope10MHeapMB: the 10M-honey-account variant.
// The population exists through the (seed, rank) deriver and the ledger's
// rank spans — O(1) heap per provisioned span, not per account — so ten
// million accounts must fit the same order of heap as the 1M-site
// envelope. The 256 MB ceiling is the tentpole acceptance bound; the
// measured figure (~31 MB, dominated by the registered set and the
// dictionary) is gated at 5% drift via BENCH_baseline.json.
const (
	envelope10MAccounts = 10_000_000
	envelope10MHeapMB   = 256
)

// BenchmarkHeapEnvelope10M is BenchmarkHeapEnvelope with the monitored
// honeypot population raised to 10M accounts. Everything else — the 1M
// -site universe, the 2048-rank crawl, the spilled login log — stays the
// same, so the delta against the plain envelope isolates what ten million
// provisioned accounts cost.
func BenchmarkHeapEnvelope10M(b *testing.B) {
	b.ReportAllocs()
	var p *Pilot
	var accounts, unused int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := envelopeConfig(b.TempDir())
		cfg.NumUnused = envelope10MAccounts
		p = NewPilot(cfg)
		b.StartTimer()
		p.Run()
		b.StopTimer()
		if err := p.Provider.SpillErr(); err != nil {
			b.Fatal(err)
		}
		accounts = int64(p.Provider.NumAccounts())
		unused = int64(p.Ledger.UnusedCount())
		if accounts < envelope10MAccounts {
			b.Fatalf("study provisioned %d accounts, want >= %d", accounts, envelope10MAccounts)
		}
		// Registrations draw from the same pool, so the unused monitoring
		// population is 10M minus the identities the 2048-rank crawl burned.
		if unused < envelope10MAccounts-4*envelopeRanks {
			b.Fatalf("only %d unused honeypots monitored, want ~%d", unused, envelope10MAccounts)
		}
		b.StartTimer()
	}
	b.StopTimer()
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	heapMB := float64(ms.HeapAlloc) / 1e6
	b.ReportMetric(heapMB, "heap-MB")
	b.ReportMetric(float64(accounts)/1e6, "Maccounts")
	if heapMB > envelope10MHeapMB {
		b.Fatalf("live heap %.1f MB exceeds the %d MB envelope for a %d-account study",
			heapMB, envelope10MHeapMB, envelope10MAccounts)
	}
	runtime.KeepAlive(p)
}

// checkpointConfig is the study BenchmarkCheckpoint measures: two batches
// over the same 1024 ranks, so the refresh batch's waves re-crawl already
// -materialized sites — steady-state waves where the only dirty state is
// the wave's own registrations and attempts. CheckpointEvery=1 exercises
// the section cache at every wave boundary.
func checkpointConfig(ckptDir, spillDir string) Config {
	cfg := SmallConfig()
	cfg.Web.NumSites = 4000
	cfg.Batches = []Batch{
		{Name: "seed", Start: date(2014, 12, 10), Duration: 14 * 24 * time.Hour, FromRank: 1, ToRank: 1024},
		{Name: "refresh", Start: date(2015, 11, 20), Duration: 21 * 24 * time.Hour, FromRank: 1, ToRank: 1024},
	}
	cfg.NumUnused = 100_000
	cfg.BreachRegistered = 6
	cfg.BreachUnregistered = 3
	cfg.OrganicUsersMin = 5
	cfg.OrganicUsersMax = 15
	cfg.CrawlWorkers = 8
	cfg.NetLatency = time.Millisecond
	cfg.CheckpointDir = ckptDir
	cfg.CheckpointEvery = 1
	cfg.LogSpillDir = spillDir
	cfg.LogResidentBudget = envelopeBudget
	return cfg
}

// checkpointSteadyRatio is the in-bench floor on full-encode bytes over
// the steadiest wave's incrementally re-encoded bytes. The acceptance
// criterion is >=10x; the measured ratio is far higher, and the absolute
// figures (ckpt-full-KB, ckpt-incr-KB) are gated at 5% drift via
// BENCH_baseline.json.
const checkpointSteadyRatio = 10

// BenchmarkCheckpoint runs a checkpoint-every-wave study and reports the
// cost split of incremental checkpointing: ckpt-full-KB is the size of a
// complete snapshot re-encoded from live state, ckpt-incr-KB is the
// bytes the steadiest mid-run wave actually re-encoded (everything else
// was stitched from the section cache, CRC-verified). The wall-clock of
// the run itself includes every incremental checkpoint.
func BenchmarkCheckpoint(b *testing.B) {
	b.ReportAllocs()
	var fullKB, steadyKB float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := NewPilot(checkpointConfig(b.TempDir(), b.TempDir()))
		// Collect each checkpoint's encoded-byte figure. Stats are written
		// on the driver goroutine between epochs; the wave event that
		// observes them runs after that write, so the read is ordered.
		var encoded []int64
		var last CheckpointStats
		p.OnEvent = func(ev Event) {
			if ev.Kind != EventWaveDone {
				return
			}
			if s := p.LastCheckpointStats(); s != last && s.EncodedBytes > 0 {
				encoded = append(encoded, s.EncodedBytes)
				last = s
			}
		}
		b.StartTimer()
		p.Run()
		b.StopTimer()
		if s := p.LastCheckpointStats(); s != last && s.EncodedBytes > 0 {
			encoded = append(encoded, s.EncodedBytes)
		}
		if len(encoded) < 4 {
			b.Fatalf("only %d checkpoints observed; the cadence did not engage", len(encoded))
		}
		full, err := p.CheckpointFull()
		if err != nil {
			b.Fatal(err)
		}
		fullBytes := int64(len(snapshot.Encode(full)))
		// The first checkpoint encodes ~everything (cold cache); the steady
		// figure is the cheapest later wave.
		steady := encoded[1]
		for _, e := range encoded[2:] {
			if e < steady {
				steady = e
			}
		}
		fullKB = float64(fullBytes) / 1e3
		steadyKB = float64(steady) / 1e3
		if fullBytes < steady*checkpointSteadyRatio {
			b.Fatalf("incremental checkpoint on a steady-state wave re-encoded %d bytes against a %d-byte full snapshot (< %dx)",
				steady, fullBytes, checkpointSteadyRatio)
		}
	}
	b.ReportMetric(fullKB, "ckpt-full-KB")
	b.ReportMetric(steadyKB, "ckpt-incr-KB")
}
