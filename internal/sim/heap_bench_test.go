package sim

import (
	"runtime"
	"testing"
	"time"
)

// The heap-envelope configuration: a full (short) study over a 1M-site
// universe whose batches register 2048 of those sites, with the login log
// capped at a small resident budget so the run must spill cold segments
// to disk. The point of the numbers: the universe is ~500x larger than
// the registered set, so any O(universe) heap cost — eager
// materialization, a full login log held resident — blows the envelope
// immediately, while the intended O(registered) cost fits with room to
// spare.
const (
	envelopeUniverse = 1_000_000
	envelopeRanks    = 2048
	envelopeBudget   = 64 // resident login-log events before spilling

	// envelopeHeapMB is the in-bench live-heap ceiling. Measured ~31 MB;
	// the ceiling leaves ~3x headroom for GC timing and platform variance
	// while still catching any O(universe) regression (eagerly
	// materializing even 5% of the universe costs hundreds of MB). The
	// tighter 5% drift gate lives in `make bench-compare` against
	// BENCH_baseline.json.
	envelopeHeapMB = 100
)

// envelopeConfig is the 1M-site spilled-log study the envelope is defined
// over. Batches cover ranks 1..2048 twice (seed + refresh) so accounts
// age, dumps fire, and the login log grows well past the resident budget.
func envelopeConfig(spillDir string) Config {
	cfg := SmallConfig()
	cfg.Web.NumSites = envelopeUniverse
	cfg.Batches = []Batch{
		{Name: "seed", Start: date(2014, 12, 10), Duration: 14 * 24 * time.Hour, FromRank: 1, ToRank: envelopeRanks / 2},
		{Name: "refresh", Start: date(2015, 11, 20), Duration: 21 * 24 * time.Hour, FromRank: 1, ToRank: envelopeRanks},
	}
	cfg.NumUnused = 200
	cfg.BreachRegistered = 6
	cfg.BreachUnregistered = 3
	cfg.OrganicUsersMin = 5
	cfg.OrganicUsersMax = 15
	cfg.CrawlWorkers = 8
	cfg.NetLatency = time.Millisecond
	cfg.LogSpillDir = spillDir
	cfg.LogResidentBudget = envelopeBudget
	return cfg
}

// BenchmarkHeapEnvelope runs the full 1M-site spilled-log study and
// measures the live heap it retains at the end (post-GC, study state
// still reachable). It reports heap-MB, materialized-sites, and
// spilled-segments, and fails outright if the live heap exceeds the
// fixed envelope. `make bench-compare` additionally gates heap-MB at 5%
// drift against the tracked baseline.
func BenchmarkHeapEnvelope(b *testing.B) {
	b.ReportAllocs()
	var p *Pilot
	var materialized, segments, resident int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := envelopeConfig(b.TempDir())
		p = NewPilot(cfg)
		b.StartTimer()
		p.Run()
		b.StopTimer()
		if err := p.Provider.SpillErr(); err != nil {
			b.Fatal(err)
		}
		materialized = int64(p.Universe.MaterializedSites())
		segments = int64(p.Provider.SpilledSegments())
		resident = int64(p.Provider.ResidentLogSize())
		if segments == 0 {
			b.Fatalf("resident budget %d never forced a spill (resident log size %d)",
				envelopeBudget, resident)
		}
		if resident > envelopeBudget {
			b.Fatalf("resident log size %d exceeds budget %d", resident, envelopeBudget)
		}
		b.StartTimer()
	}
	b.StopTimer()
	// Live heap with the final pilot still reachable: what a long-running
	// study retains between waves, not what the run transiently allocated.
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	heapMB := float64(ms.HeapAlloc) / 1e6
	b.ReportMetric(heapMB, "heap-MB")
	b.ReportMetric(float64(materialized), "materialized-sites")
	b.ReportMetric(float64(segments), "spilled-segments")
	if heapMB > envelopeHeapMB {
		b.Fatalf("live heap %.1f MB exceeds the %d MB envelope for a %d-site universe / %d-rank study",
			heapMB, envelopeHeapMB, envelopeUniverse, envelopeRanks)
	}
	runtime.KeepAlive(p)
}
