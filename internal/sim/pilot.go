package sim

import (
	"math/rand"
	"net"
	"net/netip"
	"os"
	"strings"
	"sync"
	"time"

	"tripwire/internal/attacker"
	"tripwire/internal/browser"
	"tripwire/internal/captcha"
	"tripwire/internal/core"
	"tripwire/internal/crawler"
	"tripwire/internal/disclosure"
	"tripwire/internal/dnssim"
	"tripwire/internal/emailprovider"
	"tripwire/internal/geo"
	"tripwire/internal/identity"
	"tripwire/internal/imap"
	"tripwire/internal/mailserv"
	"tripwire/internal/pop3"
	"tripwire/internal/simclock"
	"tripwire/internal/snapshot"
	"tripwire/internal/webgen"
)

// ProviderDomain is the partner email provider's mail domain.
const ProviderDomain = "bigmail.test"

// RelayDomain is the innocuous Tripwire-controlled domain forwarding
// addresses point at (paper §4.2: forwarding addresses are visible in the
// provider's web UI, so they must not advertise the study).
const RelayDomain = "relay.blueharbor-media.test"

// Attempt records one crawl attempt for funnel/table accounting.
type Attempt struct {
	Domain   string
	Rank     int
	Class    identity.PasswordClass
	Code     crawler.Code
	Exposed  bool
	Manual   bool
	When     time.Time
	Email    string // identity email when exposed, else ""
	PageLoad int
}

// Pilot wires every subsystem together for one study run.
type Pilot struct {
	Cfg Config

	Clock      *simclock.Clock
	Sched      *simclock.Scheduler
	Universe   *webgen.Universe
	Provider   *emailprovider.Provider
	Mail       *mailserv.Server
	Ledger     *core.Ledger
	Monitor    *core.Monitor
	Space      *geo.Space
	Pool       *attacker.ProxyPool
	Stuffer    *attacker.Stuffer
	Campaign   *attacker.Campaign
	Crawler    *crawler.Crawler
	Solver     *captcha.Service
	Disclosure *disclosure.Campaign
	DNS        *dnssim.Resolver

	gen       *identity.Generator
	rng       *rand.Rand
	verifier  *browser.Client // clicks verification links
	forwarder *smtpForwarder
	institutIP netip.Addr
	taskSeq    int64 // crawl-task creation counter (see parallel.go)
	metrics    *pilotMetrics

	Attempts     []Attempt
	controlCreds map[string]string // control email -> password
	mailCursor   int
	lastDump     time.Time
	organicSeq   int

	// Checkpoint/resume progress markers. epochsRun counts completed
	// timeline epochs — the replay unit of resume: an epoch's boundary is a
	// pure function of the schedule, never of worker count, so "run N
	// epochs" lands every run in the same global state. wavesDone counts
	// completed registration waves and drives the checkpoint cadence.
	epochsRun uint64
	wavesDone int
	ckptNext  int // next wavesDone value that triggers a checkpoint
	// replayEpochs/resumeSnap are set by ResumePilot: RunContext first
	// re-executes replayEpochs epochs, then attests the rebuilt state
	// against resumeSnap section by section before continuing.
	replayEpochs uint64
	resumeSnap   *snapshot.File
	// ckptCache retains encoded checkpoint sub-sections between waves so
	// Checkpoint re-encodes only state that changed (O(dirty)); lastCkpt
	// records the encoded/reused byte split of the latest assembly.
	ckptCache *snapshot.SectionCache
	lastCkpt  CheckpointStats

	// prog mirrors the driver-owned progress counters behind atomics so
	// Status/HTTP readers never race the run (see progress.go).
	prog progressMirror

	// DetectionTimes records when the monitor first reported each site.
	DetectionTimes map[string]time.Time
	// MissedBreaches are breached sites that produced no detection.
	MissedBreaches []string

	// OnEvent, when non-nil, receives progress events (wave completions,
	// detections) synchronously on the scheduler goroutine. Handlers must
	// not call back into the pilot.
	OnEvent func(Event)
	// Interrupted is set when RunContext stopped early on a cancelled
	// context; completed waves remain valid and deterministic.
	Interrupted bool
}

// NewPilot builds a fully wired pilot for cfg. Call Run to execute it.
func NewPilot(cfg Config) *Pilot {
	clock := simclock.New(cfg.Start)
	sched := simclock.NewScheduler(clock)

	p := &Pilot{
		Cfg:            cfg,
		Clock:          clock,
		Sched:          sched,
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		gen:            identity.NewGenerator(ProviderDomain, cfg.Seed+1),
		controlCreds:   make(map[string]string),
		DetectionTimes: make(map[string]time.Time),
		lastDump:       cfg.Start,
		ckptCache:      snapshot.NewSectionCache(),
	}

	// Synthetic web.
	p.Universe = webgen.Generate(cfg.Web)
	p.Universe.Now = clock.Now

	// Email provider.
	p.Provider = emailprovider.New(ProviderDomain)
	p.Provider.Now = clock.Now
	p.Provider.Retention = cfg.Retention
	if cfg.LogSpillDir != "" && cfg.LogResidentBudget > 0 {
		// Cold-tier spilling for the login log. Directory creation is
		// best-effort here; an unwritable directory surfaces as SpillErr on
		// the first spill, which checkpointing checks.
		_ = os.MkdirAll(cfg.LogSpillDir, 0o755)
		p.Provider.SpillLoginLog(cfg.LogSpillDir, cfg.LogResidentBudget)
	}
	p.Universe.Mailer = p.Provider
	// Accounts the generator has allocated are a pure function of their
	// address; the provider resolves them on demand instead of storing 10M
	// pristine rows (eager mode creates the rows but they still derive —
	// and elide — identically).
	p.Provider.SetDeriver(&accountDeriver{gen: p.gen})

	// Tripwire mail server, fed by the provider's forwarding over real
	// SMTP connections.
	p.Mail = mailserv.NewServer()
	p.Mail.Now = clock.Now
	p.forwarder = &smtpForwarder{front: mailserv.NewSMTPServer(p.Mail)}
	p.Provider.Forward = p.forwarder.send

	// Ledger and monitor. The ledger's pool spans materialize identities
	// through the generator, and unused-set membership inverts addresses
	// back to ranks arithmetically.
	p.Ledger = core.NewLedger()
	p.Ledger.SetDeriver(p.gen.At)
	p.Ledger.SetRankFn(p.gen.RankOf)
	p.Monitor = core.NewMonitor(p.Ledger, cfg.Start)

	// Attacker: proxy network over the geo space, stuffing over IMAP.
	p.Space = geo.NewSpace()
	p.Pool = attacker.NewProxyPool(p.Space, cfg.Seed+2, 0.25)
	imapSrv := imap.NewServer(p.Provider)
	p.Stuffer = attacker.NewStuffer(imapSrv, p.Pool, clock.Now)
	// A minority of attacker tooling collects over POP3 (§4.2 dumps list
	// "IMAP, POP, etc."; §6.4: access is "typically via IMAP").
	p.Stuffer.UsePOP(pop3.NewServer(p.Provider.POPBackend()), 0.08, cfg.Seed+7)
	acfg := attacker.DefaultCampaignConfig(cfg.End)
	acfg.Seed = cfg.Seed + 3
	if cfg.TimelineAdaptiveAlign {
		acfg.AlignMax = attacker.DefaultAlignMax
	}
	p.Campaign = attacker.NewCampaign(acfg, sched, p.Stuffer, p.Provider)

	// Crawler with CAPTCHA solving service and virtual-time rate limiting.
	p.Solver = captcha.NewService(cfg.CaptchaImageErr, cfg.CaptchaKnowledgeErr, cfg.Seed+4)
	ccfg := crawler.DefaultConfig()
	ccfg.FaultRate = cfg.CrawlerFaultRate
	ccfg.Seed = cfg.Seed + 5
	if cfg.UseLanguagePacks {
		ccfg.Packs = crawler.BuiltinPacks()
	}
	if cfg.UseSearchEngine {
		ccfg.SearchFn = p.Universe.SearchRegistrationPages
	}
	ccfg.MultiStageSupport = cfg.UseMultiStage
	p.Crawler = crawler.New(ccfg, p.Solver)
	// Rate-limit delays are charged to each crawl task's private virtual
	// time account (parallel.go), not to the global clock: a wave of
	// concurrent crawls must not move time for everyone else.

	// Research proxy IPs: institution-owned, as in §4.3.2.
	p.institutIP = p.Space.SampleIPIn(rand.New(rand.NewSource(cfg.Seed+6)), "US")

	p.verifier = browser.New(browser.WithTransport(&browser.HandlerTransport{Handler: p.Universe}))
	p.Disclosure = disclosure.NewCampaign(p.Universe, sched)
	// Deliverability checks go through the synthetic DNS, as the real
	// process discovered site J's missing MX record through DNS.
	p.DNS = dnssim.New(p.Universe, p.Space)
	p.DNS.AddMX(ProviderDomain, "mx."+ProviderDomain)
	p.DNS.AddMX(RelayDomain, "mx."+RelayDomain)
	p.Disclosure.DNS = p.DNS

	// Observability: thread the registry through every subsystem. All
	// wiring is nil-safe, so a run without metrics pays only nil checks.
	if r := cfg.Metrics; r != nil {
		p.metrics = p.newPilotMetrics(r)
		p.Crawler.Metrics = crawler.NewMetrics(r)
		p.Universe.Observe(r)
		p.Provider.Metrics = p.Provider.NewMetrics(r)
		am := attacker.NewMetrics(r)
		p.Stuffer.Metrics = am
		p.Campaign.Metrics = am
		p.Monitor.Metrics = p.Monitor.NewMonitorMetrics(r)
	}
	return p
}

// smtpForwarder pushes provider-forwarded mail through a real SMTP session
// over an in-memory duplex connection. The session is persistent: dialed on
// first use and reused for every message, like a real MTA holding a
// connection open to a busy destination. One message used to cost a fresh
// pipe, server goroutine, greeting/EHLO exchange, and four bufio buffers;
// amortizing them matters because crawl workers trigger forwarding
// concurrently on every registration. The mutex serializes sends, which is
// also what keeps interleaved SMTP commands from corrupting the session.
type smtpForwarder struct {
	front *mailserv.SMTPServer

	mu  sync.Mutex
	cli *mailserv.SMTPClient
}

func (f *smtpForwarder) send(from, to, subject, body string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cli == nil {
		if err := f.dialLocked(); err != nil {
			return err
		}
	}
	err := f.cli.Send(from, to, subject, body)
	if err != nil {
		// The session may be out of sync (e.g. a rejected DATA mid-message):
		// drop it and retry the message once on a fresh one, so a single
		// refused delivery does not poison every later forward.
		f.closeLocked()
		if derr := f.dialLocked(); derr != nil {
			return err
		}
		return f.cli.Send(from, to, subject, body)
	}
	return nil
}

// dialLocked establishes the session: an in-memory pipe with the SMTP
// front end serving one long-lived connection on its own goroutine.
func (f *smtpForwarder) dialLocked() error {
	cliConn, srvConn := net.Pipe()
	go func() {
		_ = f.front.ServeConn(srvConn)
		srvConn.Close()
	}()
	cli, err := mailserv.DialSMTP(cliConn)
	if err != nil {
		cliConn.Close()
		return err
	}
	f.cli = cli
	return nil
}

// closeLocked quits the session; the server goroutine exits with it.
func (f *smtpForwarder) closeLocked() {
	if f.cli != nil {
		_ = f.cli.Close()
		f.cli = nil
	}
}

// Close shuts the forwarding session down. Safe to call repeatedly; a later
// send re-dials transparently.
func (f *smtpForwarder) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closeLocked()
}

// takeIdentity pops an identity from the pool, provisioning more at the
// provider on demand.
func (p *Pilot) takeIdentity(class identity.PasswordClass) *identity.Identity {
	if id := p.Ledger.Take(class); id != nil {
		return id
	}
	p.provisionIdentities(200, class)
	return p.Ledger.Take(class)
}

// accountDeriver adapts the identity generator to the provider's lazy
// account interface: an address is covered once its rank has been
// allocated, and its pristine account state — name, password, forwarding —
// is a pure function of that rank.
type accountDeriver struct{ gen *identity.Generator }

func (a *accountDeriver) DeriveAccount(email string) (emailprovider.DerivedAccount, bool) {
	rank, ok := a.gen.RankOf(email)
	if !ok || identity.IndexOf(rank) >= a.gen.Allocated(identity.ClassOf(rank)) {
		return emailprovider.DerivedAccount{}, false
	}
	id := a.gen.At(rank)
	return emailprovider.DerivedAccount{
		Name:      id.FullName(),
		Password:  id.Password,
		ForwardTo: forwardAddress(email),
	}, true
}

func (a *accountDeriver) DerivedCount() int64 {
	return a.gen.Allocated(identity.Hard) + a.gen.Allocated(identity.Easy)
}

// provisionIdentities reserves n fresh identities of class and extends the
// ledger pool with their index span. Lazily (the default) that is all:
// the identities' provider accounts exist implicitly through the deriver
// until something deviates them. With Cfg.EagerAccounts the accounts are
// additionally materialized up front, exactly as the original
// implementation provisioned them; both modes export byte-identical state.
func (p *Pilot) provisionIdentities(n int, class identity.PasswordClass) {
	from := p.gen.Reserve(class, n)
	p.Ledger.ExtendPool(class, from, int64(n))
	if p.Cfg.EagerAccounts {
		for idx := from; idx < from+int64(n); idx++ {
			id := p.gen.At(identity.RankFor(class, idx))
			if err := p.Provider.CreateAccount(id.Email, id.FullName(), id.Password); err != nil {
				continue // collision or policy: account stays implicit
			}
			_ = p.Provider.SetForwarding(id.Email, forwardAddress(id.Email))
		}
	}
	if p.metrics != nil {
		p.metrics.provisioned.Add(uint64(n))
	}
}

// forwardAddress maps a honey address to its relay-domain forwarding
// address (same local part, Tripwire-controlled domain).
func forwardAddress(email string) string {
	local, _, _ := strings.Cut(email, "@")
	return local + "@" + RelayDomain
}

// honeyAddress inverts forwardAddress.
func honeyAddress(relayAddr string) string {
	local, _, _ := strings.Cut(relayAddr, "@")
	return local + "@" + ProviderDomain
}

// drainMail processes mail that arrived since the last drain: statuses are
// upgraded and verification links are clicked (paper §4.3.3). Only the
// messages past the cursor are fetched, so a drain costs O(new mail) rather
// than recopying the store's whole history every wave.
func (p *Pilot) drainMail() {
	msgs := p.Mail.Since(p.mailCursor)
	p.mailCursor += len(msgs)
	for _, m := range msgs {
		honey := honeyAddress(m.To)
		reg := p.Ledger.NoteEmail(honey, m.IsVerification())
		if reg == nil {
			continue
		}
		if link, ok := m.VerificationLink(); ok {
			// Load the verification page and retain it, as the paper's
			// mail server did.
			if page, err := p.verifier.Get(link); err == nil {
				_ = page
			}
		}
	}
}

func fmtDate(t time.Time) string { return t.Format("2006-01-02") }
