package sim

import (
	"sync"
	"testing"
	"time"

	"tripwire/internal/core"
	"tripwire/internal/crawler"
	"tripwire/internal/identity"
)

// smallPilot is one small pilot run shared across tests in this package.
// Tests treat it as read-only; initialization is guarded by a sync.Once so
// tests marked t.Parallel cannot race on first use.
var (
	smallPilot     *Pilot
	smallPilotOnce sync.Once
)

func pilot(t *testing.T) *Pilot {
	t.Helper()
	smallPilotOnce.Do(func() {
		smallPilot = NewPilot(SmallConfig()).Run()
	})
	return smallPilot
}

func TestPilotRegistersAccounts(t *testing.T) {
	p := pilot(t)
	if len(p.Attempts) == 0 {
		t.Fatal("no registration attempts recorded")
	}
	regs := p.Ledger.Registrations()
	if len(regs) == 0 {
		t.Fatal("no identities burned")
	}
	// Some registrations must be high-confidence (email verified).
	verified := 0
	for _, r := range regs {
		if r.Status == core.StatusEmailVerified {
			verified++
		}
	}
	if verified == 0 {
		t.Error("no registration reached Email-verified status")
	}
	t.Logf("attempts=%d burned=%d verified=%d sites=%d",
		len(p.Attempts), len(regs), verified, len(p.Ledger.Sites()))
}

func TestPilotTerminationCodeMix(t *testing.T) {
	p := pilot(t)
	counts := make(map[crawler.Code]int)
	for _, a := range p.Attempts {
		if !a.Manual {
			counts[a.Code]++
		}
	}
	// Every Figure-1 termination code must occur on a realistic web.
	for _, code := range []crawler.Code{
		crawler.CodeOKSubmission, crawler.CodeSubmissionFailed,
		crawler.CodeFieldsMissing, crawler.CodeNoRegistration,
		crawler.CodeSystemError,
	} {
		if counts[code] == 0 {
			t.Errorf("termination code %q never occurred: %v", code, counts)
		}
	}
	// "No registration found" should dominate raw attempts (paper: ~69% of
	// all submitted sites).
	if counts[crawler.CodeNoRegistration] < counts[crawler.CodeOKSubmission] {
		t.Errorf("expected no-registration to dominate: %v", counts)
	}
}

func TestPilotDetectsCompromises(t *testing.T) {
	p := pilot(t)
	dets := p.Monitor.Detections()
	if len(dets) == 0 {
		t.Fatal("no compromises detected; attacker pipeline is broken")
	}
	breaches := p.Campaign.Breaches()
	for _, d := range dets {
		if _, breached := breaches[d.Domain]; !breached {
			t.Errorf("site %s detected but never breached: false positive", d.Domain)
		}
		if d.AccountsAccessed == 0 || d.AccountsRegistered == 0 {
			t.Errorf("detection %s has empty account counts: %+v", d.Domain, d)
		}
		if d.FirstSeen.After(d.LastSeen) {
			t.Errorf("detection %s has FirstSeen after LastSeen", d.Domain)
		}
	}
	t.Logf("breached=%d detected=%d missed=%d", len(breaches), len(dets), len(p.MissedBreaches))
}

func TestPilotNoIntegrityAlarms(t *testing.T) {
	p := pilot(t)
	if alarms := p.Monitor.Alarms(); len(alarms) != 0 {
		t.Fatalf("integrity alarms fired: %v", alarms[0])
	}
	if p.Ledger.UnusedCount() == 0 {
		t.Fatal("unused honeypot account set is empty")
	}
}

func TestPilotControlLoginsReported(t *testing.T) {
	p := pilot(t)
	if p.Monitor.ControlLoginsSeen() == 0 {
		t.Fatal("control logins were not reported by the provider")
	}
}

func TestPilotBreachClassification(t *testing.T) {
	p := pilot(t)
	sawHashed, sawPlain := false, false
	for _, d := range p.Monitor.Detections() {
		switch p.Monitor.Classify(d) {
		case core.BreachHashedOnly:
			sawHashed = true
			// Verify against site ground truth: a hashed-only verdict must
			// not come from a plaintext site *when the hard account exists
			// in the store* — on plaintext sites the hard credential is
			// recoverable, so if it existed it should eventually trip.
		case core.BreachPlaintext:
			sawPlain = true
			site, _ := p.Universe.Site(d.Domain)
			if site != nil && !site.Storage.HardRecoverable() {
				t.Errorf("site %s classified plaintext but stores %v", d.Domain, site.Storage)
			}
		}
	}
	if !sawHashed && !sawPlain {
		t.Error("no breach classification produced")
	}
	t.Logf("hashed-only=%v plaintext=%v", sawHashed, sawPlain)
}

func TestPilotDetectionLagPositive(t *testing.T) {
	p := pilot(t)
	breaches := p.Campaign.Breaches()
	for domain, when := range p.DetectionTimes {
		b, ok := breaches[domain]
		if !ok {
			continue
		}
		if when.Before(b) {
			t.Errorf("site %s detected at %v before breach at %v", domain, when, b)
		}
	}
}

func TestPilotEndsOnTime(t *testing.T) {
	p := pilot(t)
	for _, a := range p.Attempts {
		if a.When.After(p.Cfg.End.Add(24 * time.Hour)) {
			t.Errorf("attempt at %v is past study end %v", a.When, p.Cfg.End)
		}
	}
}

func TestPilotEasyFollowsHard(t *testing.T) {
	p := pilot(t)
	// Wherever an easy account was registered automatically, a hard account
	// attempt must precede it at the same site (paper §4.1.2 ordering).
	hardSeen := make(map[string]bool)
	for _, a := range p.Attempts {
		if a.Manual {
			continue
		}
		if a.Class == identity.Hard {
			hardSeen[a.Domain] = true
		} else if !hardSeen[a.Domain] {
			t.Errorf("easy attempt at %s without prior hard attempt", a.Domain)
		}
	}
}
