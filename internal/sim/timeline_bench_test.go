package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"tripwire/internal/attacker"
	"tripwire/internal/emailprovider"
	"tripwire/internal/geo"
	"tripwire/internal/identity"
	"tripwire/internal/imap"
	"tripwire/internal/simclock"
	"tripwire/internal/webgen"
)

// benchTimelineDomains / benchTimelineAccounts size the attacker-only
// timeline benchmark: breached plaintext sites whose dumps all crack to
// valid provider credentials, so every account produces a long stream of
// keyed stuffing events (real IMAP logins over in-memory conns).
const (
	benchTimelineDomains  = 24
	benchTimelineAccounts = 1200
	benchTimelineDays     = 120
	// benchTimelineLatency emulates the proxy-network round trip each login
	// attempt costs (Stuffer.Latency). Real stuffing is latency-bound; the
	// speedup from extra timeline workers is latency overlap, which scales
	// with worker count on any machine — including single-core CI boxes
	// where a purely CPU-bound benchmark could never show one (the same
	// reasoning as Config.NetLatency in the crawl benchmark).
	benchTimelineLatency = 500 * time.Microsecond
)

// buildTimelineBench assembles the attacker-only fixture: provider,
// stuffer, and a campaign with every domain breached in the first hours.
// The 24h alignment grain packs independent accounts' visits onto shared
// timestamps, and adaptive widening (wired through Tune exactly as the
// pilot wires it) then grows the grain until epochs are wide enough to
// keep the whole worker pool busy.
func buildTimelineBench(workers int) (*simclock.Epochs, time.Time) {
	start := date(2015, 6, 1)
	end := start.Add(benchTimelineDays * 24 * time.Hour)
	clock := simclock.New(start)
	sched := simclock.NewScheduler(clock)
	p := emailprovider.New(ProviderDomain)
	p.Now = clock.Now
	pool := attacker.NewProxyPool(geo.NewSpace(), 5, 0.25)
	stuffer := attacker.NewStuffer(imap.NewServer(p), pool, clock.Now)
	stuffer.Latency = benchTimelineLatency
	cfg := attacker.DefaultCampaignConfig(end)
	cfg.Align = 24 * time.Hour
	cfg.AlignMax = attacker.DefaultAlignMax
	// Steer wider than the pilot default: the fixture's bursty single-IP
	// visits cost up to ~45 serial round trips each, and only epochs much
	// wider than one burst keep that straggler cost amortized across the
	// pool at 8-16 workers.
	cfg.AlignTargetWidth = 1024
	camp := attacker.NewCampaign(cfg, sched, stuffer, p)

	gen := identity.NewGenerator(ProviderDomain, 17)
	per := benchTimelineAccounts / benchTimelineDomains
	for d := 0; d < benchTimelineDomains; d++ {
		store := webgen.NewStore(webgen.StorePlaintext)
		for a := 0; a < per; a++ {
			id := gen.New(identity.Easy)
			if err := p.CreateAccount(id.Email, id.FullName(), id.Password); err != nil {
				continue
			}
			local, _, _ := strings.Cut(id.Email, "@")
			_, _ = store.Create(local, id.Email, id.Password, "", start)
		}
		camp.Breach(fmt.Sprintf("bench-site%03d.test", d), store, start.Add(time.Duration(d%36)*time.Hour))
	}
	ep := &simclock.Epochs{
		Sched:      sched,
		Workers:    workers,
		Sequencers: []simclock.Sequencer{p, stuffer},
		Tune:       camp.TuneEpoch,
	}
	return ep, end
}

// BenchmarkTimeline measures timeline engine throughput (events/s) at
// several worker counts over the attacker-heavy fixture, plus the two
// quality metrics the bench harness gates: allocs/event (allocations per
// fired event, timed region only) and scaling-eff (events/s per worker
// relative to the workers=1 run of the same bench invocation). The fixture
// is rebuilt outside the timer each iteration (a breach only happens
// once); the timed region is exactly the epoch loop RunContext drives.
func BenchmarkTimeline(b *testing.B) {
	var baseEventsPerSec float64
	for _, workers := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var events int64
			var mallocs uint64
			var ms runtime.MemStats
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ep, end := buildTimelineBench(workers)
				runtime.ReadMemStats(&ms)
				m0 := ms.Mallocs
				b.StartTimer()
				events += int64(ep.RunUntil(end))
				b.StopTimer()
				runtime.ReadMemStats(&ms)
				mallocs += ms.Mallocs - m0
				ep.Close()
				b.StartTimer()
			}
			b.StopTimer()
			evs := float64(events) / b.Elapsed().Seconds()
			b.ReportMetric(evs, "events/s")
			if events > 0 {
				b.ReportMetric(float64(mallocs)/float64(events), "allocs/event")
			}
			if workers == 1 {
				baseEventsPerSec = evs
			} else if baseEventsPerSec > 0 {
				b.ReportMetric(evs/(baseEventsPerSec*float64(workers)), "scaling-eff")
			}
		})
	}
}
