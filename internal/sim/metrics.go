package sim

import (
	"time"

	"tripwire/internal/obs"
	"tripwire/internal/simclock"
)

// pilotMetrics is the sim-layer view of the registry: wave spans, task
// throughput, worker utilization, and timeline-engine telemetry. A nil
// *pilotMetrics is a no-op.
type pilotMetrics struct {
	waveSpan    *obs.Span
	waves       *obs.Counter
	tasks       *obs.Counter
	taskDur     *obs.Histogram
	utilization *obs.Gauge
	provisioned *obs.Counter

	tlEvents      *obs.Counter
	tlEpochs      *obs.Counter
	tlSegments    *obs.Counter
	tlWidth       *obs.Histogram
	tlPartitions  *obs.Histogram
	tlUtilization *obs.Gauge
	alignSec      *obs.Gauge
}

// newPilotMetrics registers the sim metric families on r and exposes the
// configured worker count as a gauge.
func (p *Pilot) newPilotMetrics(r *obs.Registry) *pilotMetrics {
	if r == nil {
		return nil
	}
	m := &pilotMetrics{
		waveSpan:    r.Span("tripwire_sim_wave", "One crawl wave (both phases)", nil),
		waves:       r.Counter("tripwire_sim_waves_total", "Crawl waves completed."),
		tasks:       r.Counter("tripwire_sim_crawl_tasks_total", "Crawl tasks executed across all waves."),
		taskDur:     r.Histogram("tripwire_sim_task_duration_seconds", "Wall-clock duration of one crawl task.", nil),
		utilization: r.Gauge("tripwire_sim_worker_utilization_percent", "Share of the last phase's worker-time spent crawling."),
		provisioned: r.Counter("tripwire_sim_identities_provisioned_total", "Honey identities provisioned at the provider."),

		tlEvents:      r.Counter("tripwire_timeline_events_total", "Timeline events executed by the epoch engine."),
		tlEpochs:      r.Counter("tripwire_timeline_epochs_total", "Timeline epochs executed."),
		// Count-shaped buckets: these histograms observe event/partition
		// counts, not durations (partitions cap at the 64-way key fold).
		tlWidth:       r.Histogram("tripwire_timeline_epoch_width", "Events per epoch (frontier width).", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
		tlPartitions:  r.Histogram("tripwire_timeline_partitions", "Conflict partitions per epoch.", []float64{1, 2, 4, 8, 16, 32, 64}),
		tlUtilization: r.Gauge("tripwire_timeline_worker_utilization_percent", "Share of the last parallel epoch's worker-time spent executing events."),
		tlSegments:    r.Counter("tripwire_timeline_segments_total", "Parallel segments executed across all epochs."),
		alignSec:      r.Gauge("tripwire_timeline_align_seconds", "Attacker scheduling grain currently in effect (moves only under adaptive align)."),
	}
	r.GaugeFunc("tripwire_sim_workers", "Configured crawl workers (0 meant GOMAXPROCS).", func() int64 {
		return int64(p.workers())
	})
	r.GaugeFunc("tripwire_timeline_workers", "Configured timeline workers (0 meant GOMAXPROCS).", func() int64 {
		return int64(p.timelineWorkers())
	})
	return m
}

// epochDone records one executed timeline epoch; it is the Epochs.Observe
// hook. Worker utilization is only meaningful for epochs that actually ran
// partitions in parallel, so serial epochs leave the gauge untouched.
func (m *pilotMetrics) epochDone(st simclock.EpochStats) {
	if m == nil {
		return
	}
	m.tlEvents.Add(uint64(st.Width))
	m.tlEpochs.Inc()
	m.tlSegments.Add(uint64(st.Segments))
	m.tlWidth.Observe(float64(st.Width))
	m.tlPartitions.Observe(float64(st.Partitions))
	if st.Workers > 1 && st.Elapsed > 0 {
		m.tlUtilization.Set(int64(100 * st.Busy / (st.Elapsed * time.Duration(st.Workers))))
	}
}

// waveStart opens the wave span; pair with waveDone.
func (m *pilotMetrics) waveStart() obs.SpanTimer {
	if m == nil {
		return obs.SpanTimer{}
	}
	return m.waveSpan.Start()
}

// waveDone closes the wave span and counts the wave.
func (m *pilotMetrics) waveDone(t obs.SpanTimer) {
	if m == nil {
		return
	}
	t.End()
	m.waves.Inc()
}

// phaseDone records one finished phase: per-task wall-clock durations were
// already observed by the workers; here the busy total is turned into a
// utilization percentage over the phase's span.
func (m *pilotMetrics) phaseDone(tasks int, busy, elapsed time.Duration, workers int) {
	if m == nil {
		return
	}
	m.tasks.Add(uint64(tasks))
	if elapsed > 0 && workers > 0 {
		m.utilization.Set(int64(100 * busy / (elapsed * time.Duration(workers))))
	}
}
