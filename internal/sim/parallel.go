package sim

import (
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tripwire/internal/browser"
	"tripwire/internal/captcha"
	"tripwire/internal/core"
	"tripwire/internal/crawler"
	"tripwire/internal/identity"
	"tripwire/internal/webgen"
	"tripwire/internal/xrand"
)

// The parallel crawl engine shards a wave of registrations across
// Config.CrawlWorkers goroutines while keeping runs bit-identical for a
// given seed regardless of worker count. Determinism rests on three rules:
//
//  1. Everything order-sensitive is serial. Task collection, identity
//     allocation (the ledger pool is FIFO), result merging, and mail
//     draining happen on the scheduler goroutine in rank order, before and
//     after the parallel section.
//  2. Everything parallel is self-contained. Each crawl task derives its
//     fault RNG, CAPTCHA-solver stream, proxy-exit RNG, and virtual-time
//     account from (seed, rank, task sequence number) via xrand.Mix, owns
//     browser and cookie jar, and during the wave no two tasks share a
//     site domain — so a task's outcome is a pure function of the task.
//  3. Shared substrate is safe and order-free. The webgen universe, email
//     provider, and mail server are mutex-protected, and their observable
//     state (per-domain token counters, per-account inboxes) does not
//     depend on cross-site interleaving.
const crawlWaveSize = 64

// RNG stream tags: one independent derived stream per consumer so no two
// draws within a task are correlated.
const (
	streamFault int64 = iota + 1
	streamSolver
	streamProxy
)

// workers resolves Config.CrawlWorkers, defaulting to GOMAXPROCS.
func (p *Pilot) workers() int {
	if p.Cfg.CrawlWorkers > 0 {
		return p.Cfg.CrawlWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// timelineWorkers resolves Config.TimelineWorkers, defaulting to GOMAXPROCS.
func (p *Pilot) timelineWorkers() int {
	if p.Cfg.TimelineWorkers > 0 {
		return p.Cfg.TimelineWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// runSharded fans fn(0..n-1) out over at most workers goroutines pulling
// from a shared atomic counter. Which worker runs which task is timing-
// dependent, as is completion order — callers must keep fn's effects a pure
// function of i (the engine's self-contained-task rule) so neither matters.
// Dynamic pull beats static striding here because task durations are wildly
// uneven (a load-failure site costs one page, a registration flow seven):
// striding pins the slow tasks to whichever stripe drew them, and the wave
// waits on that stripe's unlucky sum.
func runSharded(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// rankAt pairs a rank with its nominal visit time inside a batch window.
type rankAt struct {
	rank int
	at   time.Time
}

// crawlTask is one registration attempt: inputs are fixed serially before
// the parallel section, outputs are written only by the worker that owns
// the task and read only after the wave barrier.
type crawlTask struct {
	seq    int64 // global creation sequence number, salt for RNG derivation
	site   *webgen.Site
	class  identity.PasswordClass
	manual bool
	at     time.Time // nominal visit time
	id     *identity.Identity

	res  crawler.Result
	done time.Time // at + accumulated rate-limit delays
	skip bool      // manual attempt aborted before exposure
}

// newTask mints a task. Must be called serially: the sequence number keys
// the task's RNG streams and so must be assigned in deterministic order.
func (p *Pilot) newTask(site *webgen.Site, class identity.PasswordClass, manual bool, at time.Time) *crawlTask {
	p.taskSeq++
	return &crawlTask{seq: p.taskSeq, site: site, class: class, manual: manual, at: at}
}

// taskSeed derives the seed for one of a task's RNG streams via the shared
// splitmix64 mixer, so per-task RNGs are independent of each other and of
// every package-level RNG seeded with small offsets of Seed.
func (p *Pilot) taskSeed(t *crawlTask, stream int64) int64 {
	return xrand.Mix(p.Cfg.Seed, int64(t.site.Rank), t.seq<<8|stream)
}

// taskBrowser returns the task's private browser session, routed through
// institution proxy exits drawn from the task's own RNG stream.
func (p *Pilot) taskBrowser(t *crawlTask) *browser.Client {
	rng := xrand.New(p.taskSeed(t, streamProxy))
	return browser.New(browser.WithTransport(&browser.ProxyTransport{
		Base:    &browser.HandlerTransport{Handler: p.Universe},
		Latency: p.Cfg.NetLatency,
		NextIP: func(host string) netip.Addr {
			return p.Space.SampleIPIn(rng, "US")
		},
	}))
}

// crawlTask runs the crawl part of one task — everything that may execute
// concurrently with other tasks. Ledger writes and attempt accounting are
// deferred to mergeTask.
func (p *Pilot) crawlTask(t *crawlTask) {
	if t.manual {
		p.crawlManual(t)
		return
	}
	var slept time.Duration
	env := &crawler.Env{
		Rng:    xrand.New(p.taskSeed(t, streamFault)),
		Solver: p.Solver.Derive(p.taskSeed(t, streamSolver)),
		Sleep:  func(d time.Duration) { slept += d },
	}
	b := p.taskBrowser(t)
	t.res = p.Crawler.RegisterWith(env, b, "http://"+t.site.Domain+"/", t.id)
	t.done = t.at.Add(slept)
}

// mergeTask applies one finished task to the shared record: burn or return
// the identity and append the attempt. Called serially in rank order.
func (p *Pilot) mergeTask(t *crawlTask) {
	if t.skip {
		return
	}
	att := Attempt{
		Domain:   t.site.Domain,
		Rank:     t.site.Rank,
		Class:    t.class,
		Code:     t.res.Code,
		Exposed:  t.res.Exposed,
		Manual:   t.manual,
		When:     t.done,
		PageLoad: t.res.PageLoads,
	}
	if t.manual {
		att.Email = t.id.Email
	}
	if t.res.Exposed {
		att.Email = t.id.Email
		p.Ledger.Burn(t.id, t.site.Domain, t.site.Rank, t.site.Category, t.done, t.res.Code, t.manual)
	} else {
		p.Ledger.Return(t.id)
	}
	p.Attempts = append(p.Attempts, att)
}

// collectTasks builds the wave's task list serially, applying the same
// eligibility and dedup rules the serial engine used per rank.
func (p *Pilot) collectTasks(ranks []rankAt, manual bool) []*crawlTask {
	var tasks []*crawlTask
	for _, ra := range ranks {
		site, ok := p.Universe.SiteByRank(ra.rank)
		if !ok {
			continue
		}
		if manual && !site.Eligible() {
			continue
		}
		if p.alreadyRegistered(site.Domain) {
			continue
		}
		class := identity.Hard
		if manual {
			class = identity.Easy
		}
		tasks = append(tasks, p.newTask(site, class, manual, ra.at))
	}
	return tasks
}

// alreadyRegistered reports whether a believed-successful registration from
// an earlier batch already covers domain.
func (p *Pilot) alreadyRegistered(domain string) bool {
	for _, reg := range p.Ledger.SiteRegistrations(domain) {
		if reg.Status >= core.StatusOKSubmission {
			return true
		}
	}
	return false
}

// runPhase executes one phase of a wave: serial identity allocation (the
// FIFO pool order must not depend on crawl completion order), the parallel
// crawl, a serial rank-order merge, and one mail drain after every burn in
// the phase has landed in the ledger.
func (p *Pilot) runPhase(tasks []*crawlTask) {
	if len(tasks) == 0 {
		return
	}
	for _, t := range tasks {
		t.id = p.takeIdentity(t.class)
	}
	workers := p.workers()
	if p.metrics == nil {
		runSharded(workers, len(tasks), func(i int) {
			p.crawlTask(tasks[i])
		})
	} else {
		// Metered variant: per-task wall time feeds the duration histogram
		// and a busy total that phaseDone turns into worker utilization.
		// The extra cost is two time.Now calls and three atomic adds per
		// task — nothing the crawl itself can observe.
		var busy atomic.Int64
		phaseStart := time.Now()
		runSharded(workers, len(tasks), func(i int) {
			start := time.Now()
			p.crawlTask(tasks[i])
			d := time.Since(start)
			busy.Add(int64(d))
			p.metrics.taskDur.ObserveDuration(d)
		})
		p.metrics.phaseDone(len(tasks), time.Duration(busy.Load()), time.Since(phaseStart), min(workers, len(tasks)))
	}
	for _, t := range tasks {
		p.mergeTask(t)
	}
	p.drainMail()
}

// runWave registers one wave of ranks: the hard-password phase first, then
// an easy-password follow-up phase at sites whose hard attempt appeared to
// succeed (paper §4.1.2). A site's easy eligibility depends only on its own
// hard result, so the phase split preserves per-site semantics.
func (p *Pilot) runWave(ranks []rankAt, manual bool, batch string) {
	timer := p.metrics.waveStart()
	before := len(p.Attempts)
	tasks := p.collectTasks(ranks, manual)
	p.runPhase(tasks)
	if !manual {
		var easy []*crawlTask
		for _, t := range tasks {
			if t.res.Code == crawler.CodeOKSubmission {
				easy = append(easy, p.newTask(t.site, identity.Easy, false, t.done))
			}
		}
		p.runPhase(easy)
	}
	p.metrics.waveDone(timer)
	// Wave events are exclusive scheduler events (they mutate p.Attempts),
	// so the counter needs no synchronization. It is the checkpoint cadence:
	// wave boundaries depend only on batch rank ranges, never on workers.
	p.wavesDone++
	if len(ranks) > 0 {
		p.emit(Event{
			Kind:     EventWaveDone,
			At:       p.Clock.Now(),
			Batch:    batch,
			FromRank: ranks[0].rank,
			ToRank:   ranks[len(ranks)-1].rank,
			Attempts: len(p.Attempts) - before,
			Manual:   manual,
		})
	}
}

// crawlManual emulates the authors registering by hand at eligible
// English-language top sites: a human reads the form perfectly, solves any
// CAPTCHA, and completes multi-stage flows. Only the crawler's heuristics
// are bypassed — the same HTTP endpoints are exercised.
func (p *Pilot) crawlManual(t *crawlTask) {
	site, id := t.site, t.id
	b := p.taskBrowser(t)
	spec := p.Universe.FormSpec(site)
	vals := manualFormValues(spec, id)
	page, err := b.Get("http://" + site.Domain + site.RegPath)
	if err != nil || !page.OK() {
		t.skip = true
		return
	}
	// Copy hidden inputs (CSRF, captcha id) from the live form. A human's
	// browser executes scripts and renders JS-assembled forms, so for
	// JSForm sites (where the static DOM is empty) we recover the same
	// values from ground truth — the human sees them on screen.
	issuer := p.Universe.Issuer(site)
	for _, form := range page.Forms() {
		for _, fld := range form.Fields {
			if fld.Type == "hidden" && fld.Name != "" {
				vals.Set(fld.Name, fld.Value)
			}
		}
	}
	if f, ok := spec.Field(webgen.FieldCSRF); ok && vals.Get(f.Name) == "" {
		vals.Set(f.Name, webgen.CSRFToken(site.Domain))
	}
	if site.Captcha != captcha.None {
		ch := issuer.Issue(site.Captcha, xrand.New(int64(site.Rank)))
		if got := vals.Get("captcha_id"); got != "" {
			ch = captcha.Challenge{ID: got, Kind: site.Captcha}
		} else {
			vals.Set("captcha_id", ch.ID)
		}
		if f, ok := spec.Field(webgen.FieldCaptcha); ok {
			vals.Set(f.Name, issuer.Answer(ch))
		}
		if site.Captcha == captcha.Interactive {
			vals.Set("captcha_token", issuer.Answer(ch))
		}
	}
	resp, err := b.Post("http://"+site.Domain+site.RegPath, vals)
	t.res = crawler.Result{Code: crawler.CodeOKSubmission, Site: site.Domain, Exposed: err == nil}
	// Multi-stage: the human reads page two and completes it.
	if err == nil && site.MultiStage {
		p.completeStep2(b, site, resp)
	}
	t.done = t.at
}
