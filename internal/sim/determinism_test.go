package sim

import (
	"testing"

	"tripwire/internal/crawler"
)

// TestRunDeterministic asserts that two pilots with identical configuration
// produce identical results — seeds fully determine the run. (An earlier
// version leaked Go map-iteration randomness into breach-target selection;
// this test pins the fix.)
func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full pilots in -short mode")
	}
	cfg := SmallConfig()
	cfg.Web.NumSites = 600
	cfg.NumUnused = 500
	a := NewPilot(cfg).Run()
	b := NewPilot(cfg).Run()

	if len(a.Attempts) != len(b.Attempts) {
		t.Fatalf("attempt counts differ: %d vs %d", len(a.Attempts), len(b.Attempts))
	}
	for i := range a.Attempts {
		x, y := a.Attempts[i], b.Attempts[i]
		if x.Domain != y.Domain || x.Code != y.Code || x.Class != y.Class || !x.When.Equal(y.When) {
			t.Fatalf("attempt %d differs: %+v vs %+v", i, x, y)
		}
	}

	da, db := a.Monitor.Detections(), b.Monitor.Detections()
	if len(da) != len(db) {
		t.Fatalf("detection counts differ: %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i].Domain != db[i].Domain || !da[i].FirstSeen.Equal(db[i].FirstSeen) ||
			da[i].AccountsAccessed != db[i].AccountsAccessed {
			t.Fatalf("detection %d differs: %+v vs %+v", i, da[i], db[i])
		}
	}

	// Breach schedules must match exactly.
	ba, bb := a.Campaign.Breaches(), b.Campaign.Breaches()
	if len(ba) != len(bb) {
		t.Fatalf("breach counts differ: %d vs %d", len(ba), len(bb))
	}
	for domain, when := range ba {
		if !bb[domain].Equal(when) {
			t.Fatalf("breach %s at %v vs %v", domain, when, bb[domain])
		}
	}

	// Termination-code histogram as a final cross-check.
	hist := func(p *Pilot) map[crawler.Code]int {
		m := make(map[crawler.Code]int)
		for _, at := range p.Attempts {
			m[at.Code]++
		}
		return m
	}
	ha, hb := hist(a), hist(b)
	for code, n := range ha {
		if hb[code] != n {
			t.Fatalf("code %v count %d vs %d", code, n, hb[code])
		}
	}
}
