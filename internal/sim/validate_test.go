package sim

import (
	"strings"
	"testing"
	"time"
)

func TestValidateAcceptsShippedConfigs(t *testing.T) {
	for name, cfg := range map[string]Config{
		"default": DefaultConfig(),
		"small":   SmallConfig(),
	} {
		if err := Validate(cfg); err != nil {
			t.Errorf("%s config rejected: %v", name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string // substring of the error
	}{
		{"no sites", func(c *Config) { c.Web.NumSites = 0 }, "NumSites"},
		{"inverted window", func(c *Config) { c.End = c.Start }, "not after Start"},
		{"zero-based rank", func(c *Config) { c.Batches[0].FromRank = 0 }, "1-based"},
		{"inverted batch ranks", func(c *Config) { c.Batches[1].ToRank = c.Batches[1].FromRank - 1 }, "ToRank"},
		{"zero batch duration", func(c *Config) { c.Batches[0].Duration = 0 }, "Duration"},
		{"negative unused", func(c *Config) { c.NumUnused = -1 }, "NumUnused"},
		{"controls without cadence", func(c *Config) { c.ControlLoginEvery = 0 }, "cadence"},
		{"negative breaches", func(c *Config) { c.BreachRegistered = -3 }, "breach counts"},
		{"empty breach window", func(c *Config) { c.BreachWindowEnd = c.BreachWindowStart }, "breach window"},
		{"inverted organic bounds", func(c *Config) { c.OrganicUsersMax = c.OrganicUsersMin - 1 }, "organic users"},
		{"zero retention", func(c *Config) { c.Retention = 0 }, "Retention"},
		{"captcha rate above one", func(c *Config) { c.CaptchaImageErr = 1.5 }, "CaptchaImageErr"},
		{"negative fault rate", func(c *Config) { c.CrawlerFaultRate = -0.1 }, "CrawlerFaultRate"},
		{"negative workers", func(c *Config) { c.CrawlWorkers = -2 }, "CrawlWorkers"},
		{"negative latency", func(c *Config) { c.NetLatency = -time.Second }, "NetLatency"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := SmallConfig()
			tc.mutate(&cfg)
			err := Validate(cfg)
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateJoinsAllErrors(t *testing.T) {
	cfg := SmallConfig()
	cfg.Web.NumSites = 0
	cfg.Retention = 0
	err := Validate(cfg)
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	for _, want := range []string{"NumSites", "Retention"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %q", err, want)
		}
	}
}
