package sim

import (
	"sync/atomic"
	"time"
)

// Progress is a race-safe snapshot of a pilot's position on the timeline,
// readable from any goroutine while the run is in flight. It is the data
// behind Study.Status and the service control plane's live study view.
type Progress struct {
	WavesDone       int       `json:"waves_done"`
	WavesTotal      int       `json:"waves_total"`
	EpochsRun       uint64    `json:"epochs_run"`
	Attempts        int       `json:"attempts"`
	RegisteredSites int       `json:"registered_sites"`
	Detections      int       `json:"detections"`
	IntegrityAlarms int       `json:"integrity_alarms"`
	VirtualNow      time.Time `json:"virtual_now"`
}

// progressMirror is the atomic mirror of the driver-owned counters. The
// driver publishes between epochs (when no parallel work is in flight and
// every count is stable); concurrent readers — Status calls, HTTP
// handlers — load the atomics without touching simulation state.
type progressMirror struct {
	waves      atomic.Int64
	epochs     atomic.Uint64
	attempts   atomic.Int64
	regSites   atomic.Int64
	detections atomic.Int64
	alarms     atomic.Int64
}

// publishProgress refreshes the mirror from driver-owned state. Called on
// the driver goroutine between epochs and at run end; handlers may be
// mid-epoch when a reader loads the mirror, so readers see the last epoch
// boundary, never a torn mid-epoch count.
func (p *Pilot) publishProgress() {
	p.prog.waves.Store(int64(p.wavesDone))
	p.prog.epochs.Store(p.epochsRun)
	p.prog.attempts.Store(int64(len(p.Attempts)))
	p.prog.regSites.Store(int64(p.Ledger.SiteCount()))
	p.prog.detections.Store(int64(len(p.DetectionTimes)))
	p.prog.alarms.Store(int64(p.Monitor.AlarmCount()))
}

// Progress returns the pilot's progress snapshot. Safe for concurrent use
// with a running pilot; the virtual clock read is itself atomic.
func (p *Pilot) Progress() Progress {
	return Progress{
		WavesDone:       int(p.prog.waves.Load()),
		WavesTotal:      TotalWaves(&p.Cfg),
		EpochsRun:       p.prog.epochs.Load(),
		Attempts:        int(p.prog.attempts.Load()),
		RegisteredSites: int(p.prog.regSites.Load()),
		Detections:      int(p.prog.detections.Load()),
		IntegrityAlarms: int(p.prog.alarms.Load()),
		VirtualNow:      p.Clock.Now(),
	}
}

// TotalWaves computes how many registration waves the configured batches
// schedule — a pure function of the rank ranges, never of worker count
// (the same invariant the checkpoint cadence relies on).
func TotalWaves(cfg *Config) int {
	n := 0
	for _, b := range cfg.Batches {
		c := b.ToRank - b.FromRank + 1
		if c <= 0 {
			continue
		}
		n += (c + crawlWaveSize - 1) / crawlWaveSize
	}
	return n
}
