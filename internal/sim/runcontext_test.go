package sim

import (
	"context"
	"errors"
	"testing"
)

// TestRunContextCancelledUpfront: a context that is already cancelled stops
// the run before any scheduler event fires.
func TestRunContextCancelledUpfront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPilot(SmallConfig())
	err := p.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !p.Interrupted {
		t.Fatal("Interrupted not set")
	}
	if len(p.Attempts) != 0 {
		t.Fatalf("%d attempts despite upfront cancellation", len(p.Attempts))
	}
}

// TestRunContextCancelMidRunIsPrefix asserts the cancellation contract:
// stopping at a wave boundary leaves every completed wave's results valid,
// i.e. the interrupted run's attempt log is an exact prefix of the
// uninterrupted run's.
func TestRunContextCancelMidRunIsPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("two pilots in -short mode")
	}
	full := NewPilot(SmallConfig())
	if err := full.RunContext(context.Background()); err != nil {
		t.Fatalf("full run failed: %v", err)
	}
	if len(full.Attempts) == 0 {
		t.Fatal("full run produced no attempts")
	}

	ctx, cancel := context.WithCancel(context.Background())
	p := NewPilot(SmallConfig())
	waves := 0
	p.OnEvent = func(ev Event) {
		// Cancel from inside the second wave's completion event: the event
		// in flight finishes, the next scheduler step must not start.
		if ev.Kind == EventWaveDone {
			waves++
			if waves == 2 {
				cancel()
			}
		}
	}
	err := p.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !p.Interrupted {
		t.Fatal("Interrupted not set")
	}
	if len(p.Attempts) == 0 || len(p.Attempts) >= len(full.Attempts) {
		t.Fatalf("interrupted run has %d attempts, full run %d; want a proper non-empty prefix",
			len(p.Attempts), len(full.Attempts))
	}
	for i := range p.Attempts {
		if p.Attempts[i] != full.Attempts[i] {
			t.Fatalf("attempt %d diverges after cancellation:\n interrupted: %+v\n full:        %+v",
				i, p.Attempts[i], full.Attempts[i])
		}
	}
}
