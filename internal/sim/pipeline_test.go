package sim

import (
	"strings"
	"testing"

	"tripwire/internal/core"
	"tripwire/internal/identity"
	"tripwire/internal/webgen"
)

// TestMailForwardingPipeline exercises the full verification chain: a site
// emails the honey account at the provider; the provider forwards it over a
// real SMTP session to the Tripwire mail server at the relay domain; the
// pipeline maps the relay address back, upgrades the registration status,
// and clicks the verification link so the site marks the account verified.
func TestMailForwardingPipeline(t *testing.T) {
	p := pilot(t)
	// Find a registration that reached EmailVerified status.
	var reg *core.Registration
	for _, r := range p.Ledger.Registrations() {
		if r.Status == core.StatusEmailVerified && !r.Manual {
			reg = r
			break
		}
	}
	if reg == nil {
		t.Fatal("no email-verified registration in pilot")
	}
	// The message must exist on the Tripwire mail server, addressed to the
	// relay domain, not the provider domain.
	relayAddr := forwardAddress(reg.Identity.Email)
	msgs := p.Mail.Messages(relayAddr)
	if len(msgs) == 0 {
		t.Fatalf("no forwarded mail at %s", relayAddr)
	}
	if !strings.HasSuffix(msgs[0].To, "@"+RelayDomain) {
		t.Fatalf("forwarded message addressed to %s, want relay domain", msgs[0].To)
	}
	// A copy must also sit in the provider inbox (sites mail the honey
	// address directly).
	if len(p.Provider.Inbox(reg.Identity.Email)) == 0 {
		t.Fatal("provider inbox empty for verified account")
	}
	// If the site gates login on verification, the verification click must
	// have landed: the stored account is marked verified.
	site, _ := p.Universe.Site(reg.Domain)
	if site != nil && site.VerifyToLogin && !site.BrokenVerify {
		st := p.Universe.Store(reg.Domain)
		local, _, _ := strings.Cut(reg.Identity.Email, "@")
		acct, ok := st.Lookup(reg.Identity.Username)
		if !ok {
			acct, ok = st.Lookup(local)
		}
		if ok && !acct.Verified {
			t.Fatalf("verification link for %s on %s never clicked", reg.Identity.Email, reg.Domain)
		}
	}
}

// TestForwardAddressRoundTrip checks the relay-address mapping.
func TestForwardAddressRoundTrip(t *testing.T) {
	honey := "arguablegem8317@" + ProviderDomain
	fwd := forwardAddress(honey)
	if !strings.HasSuffix(fwd, "@"+RelayDomain) {
		t.Fatalf("forward address %q not at relay domain", fwd)
	}
	if got := honeyAddress(fwd); got != honey {
		t.Fatalf("round trip %q -> %q -> %q", honey, fwd, got)
	}
}

// TestValidationMatchesStores cross-checks ValidateAll against ground truth:
// an account validates iff it exists in the site store with the identity's
// password and passes any verification gate.
func TestValidationMatchesStores(t *testing.T) {
	p := pilot(t)
	vals := p.ValidateAll()
	if len(vals) == 0 {
		t.Fatal("no registrations to validate")
	}
	okCount := 0
	for _, v := range vals {
		reg := v.Registration
		st := p.Universe.Store(reg.Domain)
		local, _, _ := strings.Cut(reg.Identity.Email, "@")
		exists := st.CheckPassword(reg.Identity.Username, reg.Identity.Password) ||
			st.CheckPassword(local, reg.Identity.Password)
		if v.Valid && !exists {
			t.Fatalf("%s at %s validated but no stored credential matches", reg.Identity.Email, reg.Domain)
		}
		if v.Valid {
			okCount++
		}
	}
	if okCount == 0 {
		t.Fatal("no registration validated")
	}
}

// TestUnusedAccountsDwarfUsed verifies the §4.4 monitoring population: far
// more provisioned accounts stay unused than are ever burned.
func TestUnusedAccountsDwarfUsed(t *testing.T) {
	p := pilot(t)
	used := len(p.Ledger.Registrations())
	unused := p.Ledger.UnusedCount()
	if unused <= used {
		t.Fatalf("unused (%d) should exceed used (%d)", unused, used)
	}
}

// TestIdentityReuseAcrossSites verifies the paper's §5 economy: non-exposed
// attempts return identities to the pool, so total identities consumed is
// far below total attempts.
func TestIdentityReuseAcrossSites(t *testing.T) {
	p := pilot(t)
	burned := len(p.Ledger.Registrations())
	attempts := len(p.Attempts)
	if burned >= attempts {
		t.Fatalf("burned (%d) should be well below attempts (%d): identities must be reused", burned, attempts)
	}
}

// TestBreachTargetsHadAccounts ensures the registered-site breach selector
// only picked sites where a Tripwire account truly exists.
func TestBreachTargetsHadAccounts(t *testing.T) {
	p := pilot(t)
	for _, d := range p.Monitor.Detections() {
		if !p.tripwireAccountExists(d.Domain) {
			t.Fatalf("detected site %s holds no tripwire account", d.Domain)
		}
	}
}

// TestManualOnlyOnEligibleTopSites checks the manual batch respected the
// paper's constraints: English-language eligible sites within the batch's
// rank range, all with easy passwords.
func TestManualOnlyOnEligibleTopSites(t *testing.T) {
	p := pilot(t)
	maxRank := 0
	for _, b := range p.Cfg.Batches {
		if b.Manual && b.ToRank > maxRank {
			maxRank = b.ToRank
		}
	}
	for _, a := range p.Attempts {
		if !a.Manual {
			continue
		}
		if a.Rank > maxRank {
			t.Errorf("manual registration at rank %d beyond batch range %d", a.Rank, maxRank)
		}
		if a.Class != identity.Easy {
			t.Errorf("manual registration with %v password; paper used easy", a.Class)
		}
		site, _ := p.Universe.Site(a.Domain)
		if site.Language != webgen.LangEnglish {
			t.Errorf("manual registration at non-English site %s", a.Domain)
		}
	}
}
