package sim

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"tripwire/internal/crawler"
	"tripwire/internal/identity"
)

func identityClass(rng *rand.Rand) identity.PasswordClass {
	return identity.PasswordClass(rng.Intn(2))
}

func crawlerCode(rng *rand.Rand) crawler.Code {
	return crawler.Code(rng.Intn(6))
}

// resumeTestConfig is a fast study that still schedules several waves, a
// retention-gapped dump calendar, breaches, and a manual batch — so resume
// crosses every kind of scheduler event.
func resumeTestConfig() Config {
	cfg := SmallConfig()
	cfg.Web.NumSites = 260
	cfg.Batches = []Batch{
		{Name: "seed", Start: date(2014, 12, 10), Duration: 14 * 24 * time.Hour, FromRank: 1, ToRank: 130},
		{Name: "refresh", Start: date(2015, 11, 20), Duration: 21 * 24 * time.Hour, FromRank: 1, ToRank: 200},
		{Name: "manual", Start: date(2016, 5, 15), Duration: 7 * 24 * time.Hour, FromRank: 1, ToRank: 64, Manual: true},
	}
	cfg.NumUnused = 40
	cfg.NumControls = 2
	cfg.BreachRegistered = 4
	cfg.BreachUnregistered = 2
	cfg.OrganicUsersMin = 5
	cfg.OrganicUsersMax = 15
	cfg.CrawlWorkers = 2
	cfg.TimelineWorkers = 2
	return cfg
}

// fingerprint renders every attested state section of a finished pilot;
// two byte-equal fingerprints mean identical Attempts, DetectionTimes,
// AllLogins, ledger, monitor, attacker, and materialization state.
func fingerprint(p *Pilot) map[string][]byte {
	out := make(map[string][]byte)
	for _, name := range attested {
		out[name] = p.exportSection(name)
	}
	return out
}

func sameFingerprint(t *testing.T, label string, got, want map[string][]byte) {
	t.Helper()
	for _, name := range attested {
		if !bytes.Equal(got[name], want[name]) {
			t.Fatalf("%s: section %q differs from uninterrupted reference (%d vs %d bytes)",
				label, name, len(got[name]), len(want[name]))
		}
	}
}

func checkpointFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.twsnap"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	return files
}

// eventLine flattens an Event for sequence comparison.
func eventLine(ev Event) string {
	s := fmt.Sprintf("%s %s %q %d-%d a=%d m=%v", ev.Kind, ev.At.Format(time.RFC3339), ev.Batch, ev.FromRank, ev.ToRank, ev.Attempts, ev.Manual)
	if ev.Detection != nil {
		s += " det=" + ev.Detection.Domain
	}
	return s
}

// TestResumeByteIdentical is the tentpole invariant: cancel-at-any-wave-
// boundary + resume = the uninterrupted run, byte for byte, at any worker
// count. Every checkpoint the run produced is resumed at several worker
// counts and fingerprinted against the reference.
func TestResumeByteIdentical(t *testing.T) {
	ref := NewPilot(resumeTestConfig())
	var refEvents []string
	ref.OnEvent = func(ev Event) { refEvents = append(refEvents, eventLine(ev)) }
	ref.Run()
	want := fingerprint(ref)

	dir := t.TempDir()
	cfg := resumeTestConfig()
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 1
	base := NewPilot(cfg).Run()
	sameFingerprint(t, "checkpointing run", fingerprint(base), want)

	files := checkpointFiles(t, dir)
	if len(files) < 4 {
		t.Fatalf("only %d checkpoints written, want one per wave (several)", len(files))
	}
	workerGrid := []int{1, 2, 4, 8}
	if testing.Short() {
		workerGrid = []int{1, 4}
		files = []string{files[0], files[len(files)/2], files[len(files)-1]}
	}
	for _, file := range files {
		for _, w := range workerGrid {
			label := fmt.Sprintf("%s workers=%d", filepath.Base(file), w)
			p, err := ResumePilot(file, func(c *Config) {
				c.CrawlWorkers = w
				c.TimelineWorkers = w
				c.CheckpointDir = ""
				c.CheckpointEvery = 0
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			var events []string
			p.OnEvent = func(ev Event) { events = append(events, eventLine(ev)) }
			if err := p.RunContext(context.Background()); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			sameFingerprint(t, label, fingerprint(p), want)
			// A resumed run replays the full event sequence from the start.
			if !reflect.DeepEqual(events, refEvents) {
				t.Fatalf("%s: event sequence differs (%d vs %d events)", label, len(events), len(refEvents))
			}
		}
	}
}

// TestResumeAfterCancel exercises the real workflow end to end: a run is
// cancelled mid-study, the latest checkpoint on disk is resumed, and the
// completed run matches the uninterrupted reference.
func TestResumeAfterCancel(t *testing.T) {
	want := fingerprint(NewPilot(resumeTestConfig()).Run())

	dir := t.TempDir()
	cfg := resumeTestConfig()
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 1
	p := NewPilot(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waves := 0
	p.OnEvent = func(ev Event) {
		if ev.Kind == EventWaveDone {
			if waves++; waves == 3 {
				cancel()
			}
		}
	}
	err := p.RunContext(ctx)
	if err == nil || !p.Interrupted {
		t.Fatalf("run was not interrupted (err=%v, interrupted=%v)", err, p.Interrupted)
	}

	files := checkpointFiles(t, dir)
	if len(files) == 0 {
		t.Fatal("no checkpoint survived the cancelled run")
	}
	latest := files[len(files)-1]
	resumed, err := ResumePilot(latest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	sameFingerprint(t, "resumed "+filepath.Base(latest), fingerprint(resumed), want)
	// The resumed run keeps checkpointing past the cancellation point: it
	// must end with more checkpoints on disk than the cancelled run left.
	if after := checkpointFiles(t, dir); len(after) <= len(files) {
		t.Fatalf("resumed run wrote no further checkpoints (%d -> %d)", len(files), len(after))
	}
}

// TestResumeDetectsDivergence: replaying under a different seed must fail
// loudly, naming a diverging section — not silently continue from state
// that does not match the snapshot.
func TestResumeDetectsDivergence(t *testing.T) {
	dir := t.TempDir()
	cfg := resumeTestConfig()
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 1
	NewPilot(cfg).Run()
	files := checkpointFiles(t, dir)
	if len(files) == 0 {
		t.Fatal("no checkpoints written")
	}

	p, err := ResumePilot(files[len(files)-1], func(c *Config) { c.Seed++ })
	if err != nil {
		t.Fatal(err)
	}
	err = p.RunContext(context.Background())
	if err == nil {
		t.Fatal("resume under a different seed completed without error")
	}
	if got := err.Error(); !bytes.Contains([]byte(got), []byte("diverges")) {
		t.Fatalf("divergence error does not name the problem: %v", err)
	}
}

// TestResumeRejectsBadFiles: garbage and section-less snapshots produce
// errors, not panics or half-built pilots.
func TestResumeRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.twsnap")
	if err := os.WriteFile(garbage, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumePilot(garbage, nil); err == nil {
		t.Fatal("garbage file resumed without error")
	}
	if _, err := ResumePilot(filepath.Join(dir, "missing.twsnap"), nil); err == nil {
		t.Fatal("missing file resumed without error")
	}
}

// TestPilotSpillInvariance: a pilot whose provider spills its login log to
// disk finishes in exactly the state of an all-resident pilot — and a
// checkpoint taken mid-run under spilling resumes to the same state too.
func TestPilotSpillInvariance(t *testing.T) {
	want := fingerprint(NewPilot(resumeTestConfig()).Run())

	ckptDir := t.TempDir()
	cfg := resumeTestConfig()
	cfg.LogSpillDir = t.TempDir()
	cfg.LogResidentBudget = 16
	cfg.CheckpointDir = ckptDir
	cfg.CheckpointEvery = 2
	sp := NewPilot(cfg).Run()
	if err := sp.Provider.SpillErr(); err != nil {
		t.Fatal(err)
	}
	if sp.Provider.SpilledSegments() == 0 {
		t.Fatal("budget never forced a spill; the invariance check is vacuous")
	}
	if got := sp.Provider.ResidentLogSize(); got > cfg.LogResidentBudget {
		t.Fatalf("resident log %d exceeds budget %d", got, cfg.LogResidentBudget)
	}
	sameFingerprint(t, "spilling run", fingerprint(sp), want)

	files := checkpointFiles(t, ckptDir)
	if len(files) < 2 {
		t.Fatalf("only %d checkpoints written", len(files))
	}
	// Resume the middle checkpoint with a fresh spill directory (the
	// replay regenerates the cold tier from scratch).
	p, err := ResumePilot(files[len(files)/2], func(c *Config) {
		c.LogSpillDir = t.TempDir()
		c.CheckpointDir = ""
		c.CheckpointEvery = 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	sameFingerprint(t, "resumed spilling run", fingerprint(p), want)
}

// TestConfigCodecRoundTrip: encode→decode is the identity on Config and
// the re-encoding is byte-stable, across randomized field values.
func TestConfigCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randTime := func() time.Time { return time.Unix(rng.Int63n(4e9), rng.Int63n(1e9)).UTC() }
	for i := 0; i < 200; i++ {
		cfg := SmallConfig()
		cfg.Seed = rng.Int63()
		cfg.Web.NumSites = 1 + rng.Intn(1e6)
		cfg.Web.CaptchaRate = rng.Float64()
		cfg.Start = randTime()
		cfg.End = randTime()
		cfg.Batches = nil
		for j := rng.Intn(5); j > 0; j-- {
			cfg.Batches = append(cfg.Batches, Batch{
				Name:     fmt.Sprintf("batch-%d", rng.Intn(1000)),
				Start:    randTime(),
				Duration: time.Duration(rng.Int63n(1e15)),
				FromRank: rng.Intn(1000),
				ToRank:   rng.Intn(100000),
				Manual:   rng.Intn(2) == 0,
			})
		}
		cfg.DumpDates = nil
		for j := rng.Intn(6); j > 0; j-- {
			cfg.DumpDates = append(cfg.DumpDates, randTime())
		}
		cfg.CheckpointEvery = rng.Intn(10)
		cfg.CheckpointDir = fmt.Sprintf("/tmp/ckpt-%d", rng.Intn(100))
		cfg.LogResidentBudget = rng.Intn(1 << 20)
		cfg.LogSpillDir = fmt.Sprintf("spill-%d", rng.Intn(100))
		cfg.NetLatency = time.Duration(rng.Int63n(1e9))
		cfg.EagerAccounts = rng.Intn(2) == 0

		enc := encodeConfig(&cfg)
		got, err := decodeConfig(enc)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, cfg) {
			t.Fatalf("round %d: decoded config differs\n got %+v\nwant %+v", i, got, cfg)
		}
		if !bytes.Equal(encodeConfig(&got), enc) {
			t.Fatalf("round %d: re-encoding is not byte-stable", i)
		}
	}
	// Truncations must error, never panic.
	full := encodeConfig(&Config{})
	for n := 0; n < len(full); n++ {
		if _, err := decodeConfig(full[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded silently", n)
		}
	}
}

// TestProgressOutputsCodecRoundTrip covers the two driver-state sections.
func TestProgressOutputsCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	randTime := func() time.Time { return time.Unix(rng.Int63n(4e9), rng.Int63n(1e9)).UTC() }
	for i := 0; i < 200; i++ {
		prog := progressState{
			Epochs:     rng.Uint64(),
			WavesDone:  rng.Intn(1 << 20),
			Now:        randTime(),
			SchedSeq:   rng.Uint64(),
			TaskSeq:    rng.Int63(),
			MailCursor: rng.Intn(1 << 20),
			LastDump:   randTime(),
			OrganicSeq: rng.Intn(1 << 20),
		}
		enc := encodeProgress(prog)
		got, err := decodeProgress(enc)
		if err != nil {
			t.Fatalf("progress round %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, prog) {
			t.Fatalf("progress round %d: decoded state differs", i)
		}

		var out outputsState
		for j := rng.Intn(6); j > 0; j-- {
			out.Attempts = append(out.Attempts, Attempt{
				Domain:   fmt.Sprintf("site-%d.test", rng.Intn(1000)),
				Rank:     rng.Intn(100000),
				Class:    identityClass(rng),
				Code:     crawlerCode(rng),
				Exposed:  rng.Intn(2) == 0,
				Manual:   rng.Intn(2) == 0,
				When:     randTime(),
				Email:    fmt.Sprintf("a%d@x.test", rng.Intn(1000)),
				PageLoad: rng.Intn(20),
			})
		}
		for j := rng.Intn(4); j > 0; j-- {
			out.DetectionTimes = append(out.DetectionTimes, domainTime{
				Domain: fmt.Sprintf("d-%d.test", rng.Intn(1000)), At: randTime(),
			})
		}
		for j := rng.Intn(4); j > 0; j-- {
			out.Missed = append(out.Missed, fmt.Sprintf("m-%d.test", rng.Intn(1000)))
		}
		oenc := encodeOutputs(out)
		ogot, err := decodeOutputs(oenc)
		if err != nil {
			t.Fatalf("outputs round %d: %v", i, err)
		}
		if !reflect.DeepEqual(ogot, out) {
			t.Fatalf("outputs round %d: decoded state differs\n got %+v\nwant %+v", i, ogot, out)
		}
		if !bytes.Equal(encodeOutputs(ogot), oenc) {
			t.Fatalf("outputs round %d: re-encoding is not byte-stable", i)
		}
		for n := 0; n < len(oenc); n++ {
			if _, err := decodeOutputs(oenc[:n]); err == nil {
				t.Fatalf("outputs truncation to %d bytes decoded silently", n)
			}
		}
	}
}
