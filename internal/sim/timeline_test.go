package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"tripwire/internal/obs"
	"tripwire/internal/sim"
)

// runTimelinePilot runs a small pilot with the given worker count and
// adaptive-align setting, metrics live so the invariance covers the
// metered epoch executor too.
func runTimelinePilot(workers int, adaptive bool) *sim.Pilot {
	cfg := sim.SmallConfig()
	cfg.TimelineWorkers = workers
	cfg.TimelineAdaptiveAlign = adaptive
	cfg.Metrics = obs.New()
	return sim.NewPilot(cfg).Run()
}

// comparePilots asserts two pilot runs are bit-identical: same attempts in
// the same order, same detection times, and a byte-identical provider
// login log (the most interleaving-sensitive artifact: every stuffing
// login in order, with IP and method).
func comparePilots(t *testing.T, serial, par *sim.Pilot, label string) {
	t.Helper()
	if !reflect.DeepEqual(serial.Attempts, par.Attempts) {
		t.Fatalf("Attempts diverge between baseline and %s", label)
	}
	if !reflect.DeepEqual(serial.DetectionTimes, par.DetectionTimes) {
		t.Fatalf("DetectionTimes diverge between baseline and %s:\nbase: %v\n%s: %v",
			label, serial.DetectionTimes, label, par.DetectionTimes)
	}
	serialLogins := serial.Provider.AllLogins()
	logins := par.Provider.AllLogins()
	if len(logins) != len(serialLogins) {
		t.Fatalf("login counts differ: %d (baseline) vs %d (%s)",
			len(serialLogins), len(logins), label)
	}
	for i := range logins {
		if logins[i] != serialLogins[i] {
			t.Fatalf("login %d diverges between baseline and %s:\nbase: %+v\n%s: %+v",
				i, label, serialLogins[i], label, logins[i])
		}
	}
}

// TestTimelineWorkerInvariance asserts the epoch-parallel timeline
// engine's core contract at the pilot level: a run with TimelineWorkers
// 2, 4, 8 or 16 is bit-identical to the serial run. The per-count
// subtests let CI smoke a single worker count under -race.
func TestTimelineWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("five full pilots in -short mode")
	}
	serial := runTimelinePilot(1, false)
	if len(serial.Provider.AllLogins()) == 0 {
		t.Fatal("serial pilot produced no provider logins; the fixture exercises nothing")
	}
	for _, workers := range []int{2, 4, 8, 16} {
		t.Run(testName("workers", workers), func(t *testing.T) {
			comparePilots(t, serial, runTimelinePilot(workers, false), testName("workers", workers))
		})
	}
}

// TestTimelineAdaptiveAlignInvariance asserts the adaptive epoch-widening
// controller keeps the worker-count invariance: grain decisions derive
// only from schedule shape, never from worker count or measured elapsed
// time, so adaptive runs at any worker count stay bit-identical to the
// adaptive serial run.
func TestTimelineAdaptiveAlignInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("four full pilots in -short mode")
	}
	serial := runTimelinePilot(1, true)
	if len(serial.Provider.AllLogins()) == 0 {
		t.Fatal("adaptive serial pilot produced no provider logins")
	}
	for _, workers := range []int{2, 4, 8} {
		t.Run(testName("workers", workers), func(t *testing.T) {
			comparePilots(t, serial, runTimelinePilot(workers, true), testName("workers", workers))
		})
	}
}

func testName(prefix string, n int) string {
	return fmt.Sprintf("%s=%d", prefix, n)
}
