package sim_test

import (
	"reflect"
	"testing"

	"tripwire/internal/obs"
	"tripwire/internal/sim"
)

// TestTimelineWorkerInvariance asserts the epoch-parallel timeline
// engine's core contract at the pilot level: a run with TimelineWorkers
// 2, 4 or 8 is bit-identical to the serial run — same attempts in the
// same order, same detection times, and a byte-identical provider login
// log (the most interleaving-sensitive artifact: every stuffing login in
// order, with IP and method). All runs carry a live metrics registry so
// the invariance covers the metered epoch executor too.
func TestTimelineWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("four full pilots in -short mode")
	}
	run := func(workers int) *sim.Pilot {
		cfg := sim.SmallConfig()
		cfg.TimelineWorkers = workers
		cfg.Metrics = obs.New()
		return sim.NewPilot(cfg).Run()
	}
	serial := run(1)
	serialLogins := serial.Provider.AllLogins()
	if len(serialLogins) == 0 {
		t.Fatal("serial pilot produced no provider logins; the fixture exercises nothing")
	}

	for _, workers := range []int{2, 4, 8} {
		par := run(workers)
		if !reflect.DeepEqual(serial.Attempts, par.Attempts) {
			t.Fatalf("Attempts diverge between TimelineWorkers=1 and =%d", workers)
		}
		if !reflect.DeepEqual(serial.DetectionTimes, par.DetectionTimes) {
			t.Fatalf("DetectionTimes diverge between TimelineWorkers=1 and =%d:\n1: %v\n%d: %v",
				workers, serial.DetectionTimes, workers, par.DetectionTimes)
		}
		logins := par.Provider.AllLogins()
		if len(logins) != len(serialLogins) {
			t.Fatalf("login counts differ: %d (1 worker) vs %d (%d workers)",
				len(serialLogins), len(logins), workers)
		}
		for i := range logins {
			if logins[i] != serialLogins[i] {
				t.Fatalf("login %d diverges between TimelineWorkers=1 and =%d:\n1: %+v\n%d: %+v",
					i, workers, serialLogins[i], workers, logins[i])
			}
		}
	}
}
