package sim

import (
	"testing"

	"tripwire/internal/identity"
)

// TestControlLoginsDeterministic pins the scheduleControls ordering fix: the
// provider's login log — control logins included — must come out identical
// for two same-seed runs. (An earlier version ranged over the controlCreds
// map, so the log's within-tick order varied run to run.)
func TestControlLoginsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full pilots in -short mode")
	}
	cfg := SmallConfig()
	cfg.Web.NumSites = 400
	cfg.NumUnused = 300
	a := NewPilot(cfg).Run()
	b := NewPilot(cfg).Run()

	la, lb := a.Provider.AllLogins(), b.Provider.AllLogins()
	if len(la) != len(lb) {
		t.Fatalf("login log lengths differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		x, y := la[i], lb[i]
		if x.Account != y.Account || !x.Time.Equal(y.Time) || x.IP != y.IP || x.Method != y.Method {
			t.Fatalf("login %d differs: %+v vs %+v", i, x, y)
		}
	}
}

// TestDrainMailIncremental checks the cursor-based drain: after a run every
// delivered message has been consumed exactly once (cursor caught up to the
// store), and draining again is a no-op — the incremental path cannot
// reprocess history the way the old drain-All() loop re-copied it.
func TestDrainMailIncremental(t *testing.T) {
	if testing.Short() {
		t.Skip("full pilot in -short mode")
	}
	cfg := SmallConfig()
	cfg.Web.NumSites = 400
	cfg.NumUnused = 300
	p := NewPilot(cfg).Run()

	if got, want := p.mailCursor, p.Mail.Count(); got != want {
		t.Fatalf("mail cursor %d, want %d (all delivered mail drained)", got, want)
	}
	if msgs := p.Mail.Since(p.mailCursor); msgs != nil {
		t.Fatalf("Since(cursor) returned %d messages, want none", len(msgs))
	}
	attempts, logins := len(p.Attempts), len(p.Provider.AllLogins())
	p.drainMail()
	if len(p.Attempts) != attempts || len(p.Provider.AllLogins()) != logins {
		t.Fatalf("re-drain changed state: attempts %d->%d, logins %d->%d",
			attempts, len(p.Attempts), logins, len(p.Provider.AllLogins()))
	}

	// The incremental view over the whole history is the full history.
	all, since := p.Mail.All(), p.Mail.Since(0)
	if len(all) != len(since) {
		t.Fatalf("Since(0) has %d messages, All has %d", len(since), len(all))
	}
	for i := range all {
		if all[i] != since[i] {
			t.Fatalf("message %d differs between All and Since(0)", i)
		}
	}
}

// TestLazyMaterializationSmoke runs a wave over ~10% of a 10k-site universe
// at high worker count and asserts the lazy substrate derived exactly the
// touched ranks — memory scales with sites crawled, not universe size. Runs
// under the race detector in `make ci`; skipped with -short.
func TestLazyMaterializationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-site universe in -short mode")
	}
	const waveSites = 1024
	cfg := SmallConfig()
	cfg.Web.NumSites = 10000
	cfg.CrawlWorkers = 16
	cfg.BreachRegistered = 0
	cfg.BreachUnregistered = 0
	p := NewPilot(cfg)
	p.provisionIdentities(waveSites+50, identity.Hard)
	p.provisionIdentities(waveSites/2, identity.Easy)
	if got := p.Universe.MaterializedSites(); got != 0 {
		t.Fatalf("fresh pilot already materialized %d sites", got)
	}
	ranks := make([]rankAt, waveSites)
	for i := range ranks {
		ranks[i] = rankAt{rank: i*9 + 1, at: cfg.Start} // spread across the rank space
	}
	p.runWave(ranks, false, "smoke")

	if got := p.Universe.MaterializedSites(); got != waveSites {
		t.Fatalf("materialized %d sites, want exactly the %d crawled", got, waveSites)
	}
	if len(p.Attempts) < waveSites {
		t.Fatalf("recorded %d attempts, want at least one per crawled site (%d)", len(p.Attempts), waveSites)
	}
}
