// Package sim orchestrates the full Tripwire pilot study over virtual
// time: it provisions honey identities at the email provider, runs the
// crawler over the synthetic web in the paper's four registration batches
// (December 2014 through May 2016), lets the attacker campaign breach sites
// and stuff credentials, pulls the provider's sporadic login dumps (with
// the paper's Spring-2015 retention gap), and feeds the monitor whose
// detections reproduce Tables 1-3 and Figures 1-3.
package sim

import (
	"time"

	"tripwire/internal/obs"
	"tripwire/internal/webgen"
)

// Batch is one registration campaign over a rank range.
type Batch struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	// FromRank..ToRank (inclusive) are the Alexa-style ranks covered.
	FromRank, ToRank int
	// Manual marks the hand-registration pass over eligible top sites.
	Manual bool
}

// Config parameterizes a pilot run.
type Config struct {
	Seed int64
	// Web configures the synthetic web.
	Web webgen.Config

	// Start and End bound the study window.
	Start, End time.Time
	// Batches are the registration campaigns, in order.
	Batches []Batch

	// NumUnused is how many provisioned-but-never-registered accounts are
	// monitored (the paper had >100,000).
	NumUnused int
	// NumControls is how many control accounts Tripwire logs into itself.
	NumControls int
	// ControlLoginEvery is the cadence of control logins.
	ControlLoginEvery time.Duration

	// BreachRegistered / BreachUnregistered are how many sites the
	// attacker breaches among sites where Tripwire holds a valid account,
	// and among the rest of the web (undetectable; the paper's §6.2).
	BreachRegistered   int
	BreachUnregistered int
	// BreachWindowStart/End bound when breaches occur.
	BreachWindowStart, BreachWindowEnd time.Time

	// OrganicUsersPerSite bounds the synthetic organic population added to
	// a site's database before its breach (so dumps are mostly not ours).
	OrganicUsersMin, OrganicUsersMax int

	// DumpDates are when Tripwire receives provider login dumps. Combined
	// with Retention they reproduce the Spring 2015 data gap.
	DumpDates []time.Time
	// Retention is the provider's login-log retention limit.
	Retention time.Duration

	// CaptchaImageErr / CaptchaKnowledgeErr are solving-service error rates.
	CaptchaImageErr, CaptchaKnowledgeErr float64
	// CrawlerFaultRate injects prototype faults (System Error share).
	CrawlerFaultRate float64

	// UseLanguagePacks enables the §7.2 multi-language crawler extension;
	// off by default to reproduce the English-only prototype.
	UseLanguagePacks bool
	// UseSearchEngine enables §6.2.2 search-assisted registration-page
	// discovery; off by default.
	UseSearchEngine bool
	// UseMultiStage enables the §7.2 multi-page-form extension; off by
	// default.
	UseMultiStage bool

	// ReRegisterDetected re-registers accounts at detected sites in
	// May 2016 to test recovery (paper §6.1.4).
	ReRegisterDetected bool

	// CrawlWorkers is how many goroutines crawl a registration wave
	// concurrently. Zero means runtime.GOMAXPROCS(0). Results are
	// bit-identical for a given seed regardless of the value: each site's
	// outcome derives only from (seed, rank, attempt), and waves merge in
	// rank order (see parallel.go).
	CrawlWorkers int
	// TimelineWorkers is how many goroutines execute one timeline epoch's
	// conflict partitions concurrently (see internal/simclock's epoch
	// executor). Zero means runtime.GOMAXPROCS(0); 1 executes epochs
	// serially. Results are bit-identical for a given seed regardless of
	// the value: same-key events are serialized, scheduling from parallel
	// handlers is flushed in frontier order, and append-ordered shared logs
	// are re-sequenced per segment.
	TimelineWorkers int
	// TimelineAdaptiveAlign lets the attacker campaign widen its scheduling
	// grain adaptively: the epoch engine feeds each epoch's deterministic
	// shape back to the campaign, which doubles its align grain (up to
	// attacker.DefaultAlignMax) while stuffing epochs run narrower than the
	// target width and narrows it back when they overshoot. Wider epochs
	// give the worker pool more independent partitions per epoch, which is
	// what near-linear stuffing-phase scaling needs. Off by default; the
	// fixed-grain path is the determinism oracle. Either setting is
	// worker-count invariant (the controller only consumes schedule-derived
	// statistics), but toggling it changes event timestamps and therefore
	// study results, like any attacker-timing parameter.
	TimelineAdaptiveAlign bool
	// NetLatency emulates one network round-trip of wall-clock delay per
	// crawler page load (real crawling is latency-bound, not CPU-bound).
	// Zero — the default — keeps simulations instant; benchmarks set it to
	// measure how well workers overlap network waits.
	NetLatency time.Duration

	// CheckpointEvery, with CheckpointDir, writes a resumable snapshot
	// after every CheckpointEvery-th completed registration wave (see
	// internal/snapshot and Pilot.WriteCheckpoint). Zero disables periodic
	// checkpoints. Checkpoint writes are observation-only: they draw no
	// randomness and feed nothing back, so enabling them never changes
	// study results.
	CheckpointEvery int
	// CheckpointDir is where periodic checkpoints land, named
	// checkpoint-%06d.twsnap by completed-wave count. Created on demand.
	CheckpointDir string

	// LogResidentBudget caps how many login events the email provider
	// keeps in memory; when exceeded, the oldest events spill to cold
	// segment files in LogSpillDir (see internal/emailprovider's spill
	// tier). Zero keeps the whole log resident. Spilling is transparent:
	// dumps and exports see identical results either way.
	LogResidentBudget int
	// LogSpillDir is where cold login-log segments are written.
	LogSpillDir string

	// EagerAccounts forces the pilot to materialize every provisioned
	// identity as an explicit provider account up front, as the original
	// implementation did. The default (false) provisions lazily: bulk
	// identities exist only as index spans, and accounts materialize on
	// first deviation from their derived pristine state. Both modes
	// produce byte-identical state exports at any worker count; eager
	// mode exists as the equivalence oracle and for debugging.
	EagerAccounts bool

	// Metrics, when non-nil, receives telemetry from every subsystem of the
	// pilot. Instruments are observation-only — they draw no randomness and
	// feed nothing back — so attaching a registry never changes results
	// (TestWorkerCountInvariance runs with one attached). Nil disables
	// telemetry at the cost of one branch per record site.
	Metrics *obs.Registry
}

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// DefaultConfig returns the paper-scale configuration: ~33.6k sites,
// the four registration occasions of §5.1, dump dates with the retention
// gap, and breach volume calibrated to the paper's 19 detections.
func DefaultConfig() Config {
	start := date(2014, 7, 1)
	end := date(2017, 2, 1)
	web := webgen.DefaultConfig()
	return Config{
		Seed:  42,
		Web:   web,
		Start: start,
		End:   end,
		Batches: []Batch{
			{Name: "seed top-1k Alexa + top-1k Quantcast", Start: date(2014, 12, 10), Duration: 14 * 24 * time.Hour, FromRank: 1, ToRank: 2000},
			{Name: "Alexa top-25k", Start: date(2015, 1, 15), Duration: 60 * 24 * time.Hour, FromRank: 1, ToRank: 25000},
			{Name: "Alexa top-30k", Start: date(2015, 11, 20), Duration: 21 * 24 * time.Hour, FromRank: 1, ToRank: 30000},
			{Name: "manual top-500", Start: date(2016, 5, 15), Duration: 7 * 24 * time.Hour, FromRank: 1, ToRank: 500, Manual: true},
		},
		NumUnused:          100000,
		NumControls:        8,
		ControlLoginEvery:  30 * 24 * time.Hour,
		BreachRegistered:   26,
		BreachUnregistered: 24,
		BreachWindowStart:  date(2015, 4, 1),
		BreachWindowEnd:    date(2016, 12, 1),
		OrganicUsersMin:    40,
		OrganicUsersMax:    250,
		DumpDates: []time.Time{
			date(2015, 3, 20),
			date(2015, 8, 15),
			date(2015, 10, 10),
			date(2015, 12, 5),
			date(2016, 2, 1),
			date(2016, 4, 1),
			date(2016, 6, 1),
			date(2016, 8, 1),
			date(2016, 10, 1),
			date(2016, 12, 1),
			date(2017, 2, 1),
		},
		Retention:           75 * 24 * time.Hour,
		CaptchaImageErr:     0.15,
		CaptchaKnowledgeErr: 0.25,
		CrawlerFaultRate:    0.18,
		ReRegisterDetected:  true,
	}
}

// SmallConfig scales everything down for tests and quick demos while
// keeping every mechanism active.
func SmallConfig() Config {
	cfg := DefaultConfig()
	cfg.Web.NumSites = 1200
	cfg.Batches = []Batch{
		{Name: "seed", Start: date(2014, 12, 10), Duration: 14 * 24 * time.Hour, FromRank: 1, ToRank: 300},
		{Name: "main", Start: date(2015, 1, 15), Duration: 60 * 24 * time.Hour, FromRank: 1, ToRank: 1000},
		{Name: "refresh", Start: date(2015, 11, 20), Duration: 21 * 24 * time.Hour, FromRank: 1, ToRank: 1200},
		{Name: "manual top-100", Start: date(2016, 5, 15), Duration: 7 * 24 * time.Hour, FromRank: 1, ToRank: 100, Manual: true},
	}
	cfg.NumUnused = 2000
	cfg.BreachRegistered = 12
	cfg.BreachUnregistered = 6
	cfg.OrganicUsersMin = 10
	cfg.OrganicUsersMax = 40
	return cfg
}
