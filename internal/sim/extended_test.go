package sim

import (
	"testing"

	"tripwire/internal/core"
)

// TestExtendedCrawlerWidensCoverage runs the same pilot twice — once as the
// paper's English-only prototype, once with every §7.2/§6.2.2 extension
// enabled — and verifies the extended deployment registers valid accounts
// at strictly more sites. This is the paper's own scaling prediction:
// "supporting multiple languages would be the single greatest improvement
// to the crawler's coverage."
func TestExtendedCrawlerWidensCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("two pilots in -short mode")
	}
	base := SmallConfig()
	base.Web.NumSites = 800
	base.NumUnused = 500

	ext := base
	ext.UseLanguagePacks = true
	ext.UseSearchEngine = true
	ext.UseMultiStage = true

	validSites := func(cfg Config) map[string]bool {
		p := NewPilot(cfg).Run()
		out := make(map[string]bool)
		for _, v := range p.ValidateAll() {
			if v.Valid && !v.Registration.Manual {
				out[v.Registration.Domain] = true
			}
		}
		return out
	}

	baseSites := validSites(base)
	extSites := validSites(ext)
	if len(extSites) <= len(baseSites) {
		t.Fatalf("extensions did not widen coverage: %d vs %d sites", len(extSites), len(baseSites))
	}
	t.Logf("prototype covers %d sites; extended covers %d (+%.0f%%)",
		len(baseSites), len(extSites), 100*float64(len(extSites)-len(baseSites))/float64(len(baseSites)))
}

// TestExtendedCoversNonEnglishRegistrations double-checks the mechanism:
// the extended pilot must hold valid accounts at non-English sites, the
// prototype none.
func TestExtendedCoversNonEnglishRegistrations(t *testing.T) {
	if testing.Short() {
		t.Skip("full pilot in -short mode")
	}
	cfg := SmallConfig()
	cfg.Web.NumSites = 800
	cfg.NumUnused = 500
	cfg.UseLanguagePacks = true
	p := NewPilot(cfg).Run()
	nonEnglish := 0
	for _, reg := range p.Ledger.Registrations() {
		site, ok := p.Universe.Site(reg.Domain)
		if ok && site.Language != "en" && reg.Status >= core.StatusOKSubmission && !reg.Manual {
			nonEnglish++
		}
	}
	if nonEnglish == 0 {
		t.Fatal("language packs produced no non-English registrations")
	}
	t.Logf("non-English believed-successful registrations: %d", nonEnglish)
}
