package sim

import (
	"context"
	"fmt"
	"math/rand"
	"net/url"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"tripwire/internal/browser"
	"tripwire/internal/crawler"
	"tripwire/internal/identity"
	"tripwire/internal/simclock"
	"tripwire/internal/webgen"
)

// Run executes the full pilot: provisioning, registration batches, attacker
// campaign, control logins, provider dumps, and monitoring, all on the
// virtual timeline. It returns the pilot itself for inspection.
func (p *Pilot) Run() *Pilot {
	_ = p.RunContext(context.Background())
	return p
}

// RunContext is Run with cooperative cancellation: the context is checked
// between timeline epochs — which includes every wave boundary — so a
// cancelled run stops cleanly after the epoch in flight. Completed epochs
// are untouched by cancellation: a run cancelled at any point is a prefix
// of the uncancelled run (a test pins this; epochs fire in the same order
// as serial events, so the prefix property survives parallel execution).
// On cancellation the pilot is marked Interrupted, the end-of-study
// accounting (final mail drain, missed-breach analysis) is skipped, and
// ctx's error is returned.
//
// With Config.CheckpointEvery set, a resumable snapshot is written after
// every Nth completed wave (see WriteCheckpoint); a pilot built by
// ResumePilot first replays the checkpoint's epoch prefix and attests the
// rebuilt state against the snapshot before continuing.
func (p *Pilot) RunContext(ctx context.Context) error {
	// The SMTP forwarding session stays open for the whole run; closing it
	// here releases the pipe and its server goroutine (a later send would
	// transparently re-dial).
	defer p.forwarder.Close()
	p.provisionUpfront()
	p.scheduleControls()
	p.scheduleBatches()
	p.scheduleBreaches()
	p.scheduleDumps()
	p.scheduleDisclosures()
	// The epoch-parallel timeline engine: keyed attacker events in one
	// epoch execute concurrently, bounded by TimelineWorkers; the provider
	// login ring and the attacker record log are re-sequenced per segment.
	ep := &simclock.Epochs{
		Sched:      p.Sched,
		Workers:    p.timelineWorkers(),
		Sequencers: []simclock.Sequencer{p.Provider, p.Stuffer},
	}
	defer ep.Close()
	// The campaign's adaptive align controller consumes the deterministic
	// epoch shape (a no-op unless AlignMax widening is enabled); the gauge
	// exports whatever grain it settles on.
	ep.Tune = func(st simclock.EpochStats) {
		p.Campaign.TuneEpoch(st)
		if p.metrics != nil {
			p.metrics.alignSec.Set(int64(p.Campaign.CurrentAlign() / time.Second))
		}
	}
	if p.metrics != nil {
		ep.Observe = p.metrics.epochDone
	}
	if p.resumeSnap != nil {
		if err := p.replay(ctx, ep); err != nil {
			return err
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			p.Interrupted = true
			p.publishProgress()
			return err
		}
		at, ok := p.Sched.NextAt()
		if !ok || at.After(p.Cfg.End) {
			break
		}
		ep.RunEpoch()
		p.epochsRun++
		p.publishProgress()
		if err := p.maybeCheckpoint(); err != nil {
			return err
		}
	}
	p.Clock.AdvanceTo(p.Cfg.End)
	p.drainMail()
	p.recordMisses()
	p.publishProgress()
	return nil
}

// replay re-executes a resumed run's completed prefix — exactly the epoch
// count the checkpoint recorded — then byte-compares every rebuilt state
// section against the snapshot. The scheduler queue holds closures over
// live subsystem state and cannot be serialized, so resume re-derives it:
// determinism makes the replayed prefix identical to the original run, and
// the attestation proves it (catching a changed seed, a changed binary, or
// a corrupted snapshot by naming the diverging section). Checkpoints are
// not rewritten during replay; the cadence counter just advances past the
// boundaries the original run already covered.
func (p *Pilot) replay(ctx context.Context, ep *simclock.Epochs) error {
	for p.epochsRun < p.replayEpochs {
		if err := ctx.Err(); err != nil {
			p.Interrupted = true
			return err
		}
		at, ok := p.Sched.NextAt()
		if !ok || at.After(p.Cfg.End) {
			return fmt.Errorf("sim: resume: schedule ran dry after %d of %d recorded epochs (checkpoint from a different configuration?)", p.epochsRun, p.replayEpochs)
		}
		ep.RunEpoch()
		p.epochsRun++
		p.publishProgress()
	}
	if err := p.attest(p.resumeSnap); err != nil {
		return err
	}
	p.resumeSnap = nil
	if every := p.Cfg.CheckpointEvery; every > 0 {
		p.ckptNext = (p.wavesDone/every + 1) * every
	}
	return nil
}

// maybeCheckpoint writes a periodic checkpoint when the completed-wave
// count has crossed the configured cadence. Called between epochs on the
// driver goroutine, where no parallel work is in flight and every
// subsystem is safe to export.
func (p *Pilot) maybeCheckpoint() error {
	every := p.Cfg.CheckpointEvery
	if every <= 0 || p.Cfg.CheckpointDir == "" {
		return nil
	}
	if p.ckptNext == 0 {
		p.ckptNext = every
	}
	if p.wavesDone < p.ckptNext {
		return nil
	}
	path := filepath.Join(p.Cfg.CheckpointDir, fmt.Sprintf("checkpoint-%06d.twsnap", p.wavesDone))
	if err := p.WriteCheckpoint(path); err != nil {
		return fmt.Errorf("sim: checkpoint after wave %d: %w", p.wavesDone, err)
	}
	p.ckptNext = (p.wavesDone/every + 1) * every
	return nil
}

// scheduleDisclosures books the paper's two disclosure batches (§6.3.1:
// "most occurring on September 7th, 2016, and sites compromised after that
// date on November 4th, 2016"), notifying every detected-but-unnotified
// site each time.
func (p *Pilot) scheduleDisclosures() {
	notified := make(map[string]bool)
	for _, d := range []time.Time{date(2016, 9, 7), date(2016, 11, 4), p.Cfg.End.Add(-24 * time.Hour)} {
		if d.After(p.Cfg.End) || d.Before(p.Cfg.Start) {
			continue
		}
		p.Sched.At(d, "disclosure batch "+fmtDate(d), func(now time.Time) {
			for _, det := range p.Monitor.Detections() {
				if notified[det.Domain] {
					continue
				}
				notified[det.Domain] = true
				p.Disclosure.Notify(det.Domain)
			}
		})
	}
}

// provisionUpfront creates the monitored account population: the unused
// honeypot set plus control accounts.
func (p *Pilot) provisionUpfront() {
	half := p.Cfg.NumUnused / 2
	p.provisionIdentities(half, identity.Hard)
	p.provisionIdentities(p.Cfg.NumUnused-half, identity.Easy)
	for i := 0; i < p.Cfg.NumControls; i++ {
		id := p.gen.New(identity.Hard)
		if err := p.Provider.CreateAccount(id.Email, id.FullName(), id.Password); err != nil {
			continue
		}
		p.Ledger.AddControl(id)
		p.controlCreds[id.Email] = id.Password
	}
}

// scheduleControls books periodic control-account logins from the
// institution's own address; every one must be reported by the provider.
// The email order is pinned once here: ranging over the controlCreds map
// directly would log the control logins in a different order every run,
// breaking the reproducibility of AllLogins() for same-seed runs.
func (p *Pilot) scheduleControls() {
	if len(p.controlCreds) == 0 {
		return
	}
	emails := make([]string, 0, len(p.controlCreds))
	for email := range p.controlCreds {
		emails = append(emails, email)
	}
	sort.Strings(emails)
	for t := p.Cfg.Start.Add(p.Cfg.ControlLoginEvery); t.Before(p.Cfg.End); t = t.Add(p.Cfg.ControlLoginEvery) {
		p.Sched.At(t, "control logins", func(now time.Time) {
			for _, email := range emails {
				p.Monitor.ExpectControlLogin(email)
				_ = p.Provider.WebLogin(email, p.controlCreds[email], p.institutIP)
			}
		})
	}
}

// scheduleBatches spreads each registration batch's site visits uniformly
// over its window, grouped into fixed-size waves. A wave is one scheduler
// event that crawls its ranks in parallel (see parallel.go); the wave
// boundaries depend only on the batch's rank range — never on the worker
// count — so the schedule is identical however many workers execute it.
func (p *Pilot) scheduleBatches() {
	for _, b := range p.Cfg.Batches {
		b := b
		n := b.ToRank - b.FromRank + 1
		if n <= 0 {
			continue
		}
		step := b.Duration / time.Duration(n)
		for lo := b.FromRank; lo <= b.ToRank; lo += crawlWaveSize {
			hi := lo + crawlWaveSize - 1
			if hi > b.ToRank {
				hi = b.ToRank
			}
			wave := make([]rankAt, 0, hi-lo+1)
			for rank := lo; rank <= hi; rank++ {
				wave = append(wave, rankAt{rank: rank, at: b.Start.Add(step * time.Duration(rank-b.FromRank))})
			}
			manual := b.Manual
			p.Sched.At(wave[0].at, fmt.Sprintf("register ranks %d-%d (%s)", lo, hi, b.Name), func(now time.Time) {
				p.runWave(wave, manual, b.Name)
			})
		}
	}
}

// crawlOnce runs one automated attempt serially — collection, crawl, merge,
// and mail drain in a single step. Used outside batch waves (re-registration
// probes); the task machinery keeps its RNG streams on the same derivation
// scheme as the parallel engine.
func (p *Pilot) crawlOnce(site *webgen.Site, class identity.PasswordClass) crawler.Result {
	t := p.newTask(site, class, false, p.Clock.Now())
	t.id = p.takeIdentity(class)
	p.crawlTask(t)
	p.mergeTask(t)
	p.drainMail()
	return t.res
}

// manualFormValues fills a registration form from ground truth the way a
// human reads it off the screen: every field correctly. CSRF and CAPTCHA
// values are resolved later from the live page.
func manualFormValues(spec *webgen.FormSpec, id *identity.Identity) url.Values {
	vals := url.Values{}
	for _, f := range spec.Fields {
		switch f.Kind {
		case webgen.FieldCSRF:
			// The browser would echo it; fetch the live form for the token
			// and the captcha id.
		case webgen.FieldEmail:
			vals.Set(f.Name, id.Email)
		case webgen.FieldPassword, webgen.FieldConfirm:
			vals.Set(f.Name, id.Password)
		case webgen.FieldUsername:
			vals.Set(f.Name, id.Username)
		case webgen.FieldFirstName:
			vals.Set(f.Name, id.FirstName)
		case webgen.FieldLastName:
			vals.Set(f.Name, id.LastName)
		case webgen.FieldFullName:
			vals.Set(f.Name, id.FullName())
		case webgen.FieldZip:
			vals.Set(f.Name, id.Zip)
		case webgen.FieldPhone:
			vals.Set(f.Name, id.Phone)
		case webgen.FieldDOB:
			vals.Set(f.Name, id.Birthday.Format("01/02/2006"))
		case webgen.FieldState:
			vals.Set(f.Name, "CA")
		case webgen.FieldTOS:
			vals.Set(f.Name, "on")
		case webgen.FieldCaptcha:
			// Humans solve their own CAPTCHAs; resolved from the live page.
		}
	}
	return vals
}

// completeStep2 fills the second page of a multi-stage registration the way
// a human would: every field correctly, checkboxes checked.
func (p *Pilot) completeStep2(b *browser.Client, site *webgen.Site, step2 *browser.Page) {
	for _, form := range step2.Forms() {
		sub := form.Fill()
		for _, fld := range form.Fields {
			switch fld.Type {
			case "hidden", "submit":
			case "checkbox":
				sub.Check(fld.Name)
			default:
				sub.Set(fld.Name, "Manual Entry")
			}
		}
		if _, err := b.Submit(sub); err == nil {
			return
		}
	}
}

// recordMisses captures breached sites that never tripped the monitor —
// the paper's §6.2 undetected-compromise analysis.
func (p *Pilot) recordMisses() {
	for domain := range p.Campaign.Breaches() {
		if _, ok := p.Monitor.Detection(domain); !ok {
			p.MissedBreaches = append(p.MissedBreaches, domain)
		}
	}
}

// scheduleDumps books the provider's sporadic login-information dumps.
func (p *Pilot) scheduleDumps() {
	for _, d := range p.Cfg.DumpDates {
		d := d
		if d.After(p.Cfg.End) {
			continue
		}
		p.Sched.At(d, "provider dump "+fmtDate(d), func(now time.Time) {
			events := p.Provider.DumpSince(p.lastDump)
			newly := p.Monitor.Ingest(events)
			for _, domain := range newly {
				p.DetectionTimes[domain] = now
				if det, ok := p.Monitor.Detection(domain); ok {
					p.emit(Event{Kind: EventDetection, At: now, Detection: snapshotDetection(det)})
				}
			}
			p.lastDump = now
			p.Provider.PurgeExpired()
			if p.Cfg.ReRegisterDetected {
				p.reRegisterDetected(newly, now)
			}
		})
	}
}

// reRegisterDetected registers fresh accounts at newly detected sites (the
// paper did this in mid-May 2016 to see whether sites had recovered).
func (p *Pilot) reRegisterDetected(domains []string, now time.Time) {
	for _, domain := range domains {
		site, ok := p.Universe.Site(domain)
		if !ok || !site.Eligible() {
			continue
		}
		p.Sched.After(30*24*time.Hour, "re-register "+domain, func(t time.Time) {
			p.crawlOnce(site, identity.Hard)
		})
	}
}

// scheduleBreaches books the attacker's site compromises: some at sites
// where Tripwire holds accounts (detectable), some elsewhere (§6.2).
func (p *Pilot) scheduleBreaches() {
	rng := rand.New(rand.NewSource(p.Cfg.Seed + 9))
	window := p.Cfg.BreachWindowEnd.Sub(p.Cfg.BreachWindowStart)
	breached := make(map[string]bool)

	for i := 0; i < p.Cfg.BreachRegistered; i++ {
		at := p.Cfg.BreachWindowStart.Add(time.Duration(rng.Int63n(int64(window))))
		p.Sched.At(at, "breach (registered site)", func(now time.Time) {
			domain := p.pickBreachTarget(rng, breached, true)
			if domain == "" {
				return
			}
			breached[domain] = true
			p.breachSite(domain, now)
		})
	}
	for i := 0; i < p.Cfg.BreachUnregistered; i++ {
		at := p.Cfg.BreachWindowStart.Add(time.Duration(rng.Int63n(int64(window))))
		p.Sched.At(at, "breach (unregistered site)", func(now time.Time) {
			domain := p.pickBreachTarget(rng, breached, false)
			if domain == "" {
				return
			}
			breached[domain] = true
			p.breachSite(domain, now)
		})
	}
}

// pickBreachTarget selects a random un-breached site; withAccount selects
// between sites where Tripwire's account actually exists and ones where it
// does not.
func (p *Pilot) pickBreachTarget(rng *rand.Rand, breached map[string]bool, withAccount bool) string {
	var cands []string
	if withAccount {
		for _, domain := range p.Ledger.Sites() {
			if breached[domain] {
				continue
			}
			if p.tripwireAccountExists(domain) {
				cands = append(cands, domain)
			}
		}
	} else {
		// Sample ranks instead of snapshotting Sites(): the latter would
		// materialize the whole universe just to breach a handful of sites.
		n := p.Universe.NumSites()
		for tries := 0; tries < 200 && len(cands) < 30; tries++ {
			s, _ := p.Universe.SiteByRank(rng.Intn(n) + 1)
			if !breached[s.Domain] && !p.tripwireAccountExists(s.Domain) {
				cands = append(cands, s.Domain)
			}
		}
	}
	if len(cands) == 0 {
		return ""
	}
	// Ledger.Sites() iterates a map: sort so runs are reproducible.
	sort.Strings(cands)
	return cands[rng.Intn(len(cands))]
}

// tripwireAccountExists reports whether a Tripwire identity actually has a
// stored account at domain (the crawler may have believed wrongly).
func (p *Pilot) tripwireAccountExists(domain string) bool {
	st := p.Universe.Store(domain)
	for _, reg := range p.Ledger.SiteRegistrations(domain) {
		if _, ok := st.Lookup(reg.Identity.Username); ok {
			return true
		}
		local, _, _ := strings.Cut(reg.Identity.Email, "@")
		if _, ok := st.Lookup(local); ok {
			return true
		}
	}
	return false
}

// breachSite populates the organic user base and hands the site to the
// attacker campaign.
func (p *Pilot) breachSite(domain string, now time.Time) {
	st := p.Universe.Store(domain)
	p.populateOrganics(st, domain)
	p.Campaign.Breach(domain, st, now)
}

// organicDomains are where the synthetic organic population's email lives;
// a share is at the monitored provider (those addresses do not exist there,
// so stuffing them fails — realistic noise).
var organicDomains = []string{
	ProviderDomain, "othermail.test", "webpost.test", "mailbox-corp.test",
	"fastmail-like.test",
}

// populateOrganics seeds a site's store with organic users so breached
// dumps are mostly not Tripwire's accounts.
func (p *Pilot) populateOrganics(st *webgen.Store, domain string) {
	rng := rand.New(rand.NewSource(p.Cfg.Seed + int64(len(domain))*31))
	words := identity.DictionaryWords()
	n := p.Cfg.OrganicUsersMin
	if spread := p.Cfg.OrganicUsersMax - p.Cfg.OrganicUsersMin; spread > 0 {
		n += rng.Intn(spread)
	}
	for i := 0; i < n; i++ {
		p.organicSeq++
		user := fmt.Sprintf("user%07d", p.organicSeq)
		email := fmt.Sprintf("%s@%s", user, organicDomains[rng.Intn(len(organicDomains))])
		var pw string
		if rng.Float64() < 0.6 {
			w := words[rng.Intn(len(words))]
			pw = strings.ToUpper(w[:1]) + w[1:] + string(rune('0'+rng.Intn(10)))
		} else {
			pw = randomPassword(rng)
		}
		salt := fmt.Sprintf("osalt%07d", p.organicSeq)
		_, _ = st.Create(user, email, pw, salt, p.Clock.Now())
	}
}

func randomPassword(rng *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	n := 8 + rng.Intn(5)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alpha[rng.Intn(len(alpha))])
	}
	return b.String()
}
