package sim

import (
	"fmt"
	"math/rand"
	"net/url"
	"sort"
	"strings"
	"time"

	"tripwire/internal/browser"
	"tripwire/internal/captcha"
	"tripwire/internal/core"
	"tripwire/internal/crawler"
	"tripwire/internal/identity"
	"tripwire/internal/webgen"
)

// Run executes the full pilot: provisioning, registration batches, attacker
// campaign, control logins, provider dumps, and monitoring, all on the
// virtual timeline. It returns the pilot itself for inspection.
func (p *Pilot) Run() *Pilot {
	p.provisionUpfront()
	p.scheduleControls()
	p.scheduleBatches()
	p.scheduleBreaches()
	p.scheduleDumps()
	p.scheduleDisclosures()
	p.Sched.RunUntil(p.Cfg.End)
	p.drainMail()
	p.recordMisses()
	return p
}

// scheduleDisclosures books the paper's two disclosure batches (§6.3.1:
// "most occurring on September 7th, 2016, and sites compromised after that
// date on November 4th, 2016"), notifying every detected-but-unnotified
// site each time.
func (p *Pilot) scheduleDisclosures() {
	notified := make(map[string]bool)
	for _, d := range []time.Time{date(2016, 9, 7), date(2016, 11, 4), p.Cfg.End.Add(-24 * time.Hour)} {
		if d.After(p.Cfg.End) || d.Before(p.Cfg.Start) {
			continue
		}
		p.Sched.At(d, "disclosure batch "+fmtDate(d), func(now time.Time) {
			for _, det := range p.Monitor.Detections() {
				if notified[det.Domain] {
					continue
				}
				notified[det.Domain] = true
				p.Disclosure.Notify(det.Domain)
			}
		})
	}
}

// provisionUpfront creates the monitored account population: the unused
// honeypot set plus control accounts.
func (p *Pilot) provisionUpfront() {
	half := p.Cfg.NumUnused / 2
	p.provisionIdentities(half, identity.Hard)
	p.provisionIdentities(p.Cfg.NumUnused-half, identity.Easy)
	for i := 0; i < p.Cfg.NumControls; i++ {
		id := p.gen.New(identity.Hard)
		if err := p.Provider.CreateAccount(id.Email, id.FullName(), id.Password); err != nil {
			continue
		}
		p.Ledger.AddControl(id)
		p.controlCreds[id.Email] = id.Password
	}
}

// scheduleControls books periodic control-account logins from the
// institution's own address; every one must be reported by the provider.
func (p *Pilot) scheduleControls() {
	if len(p.controlCreds) == 0 {
		return
	}
	for t := p.Cfg.Start.Add(p.Cfg.ControlLoginEvery); t.Before(p.Cfg.End); t = t.Add(p.Cfg.ControlLoginEvery) {
		p.Sched.At(t, "control logins", func(now time.Time) {
			for email, pass := range p.controlCreds {
				p.Monitor.ExpectControlLogin(email)
				_ = p.Provider.WebLogin(email, pass, p.institutIP)
			}
		})
	}
}

// scheduleBatches spreads each registration batch's site visits uniformly
// over its window.
func (p *Pilot) scheduleBatches() {
	for _, b := range p.Cfg.Batches {
		b := b
		n := b.ToRank - b.FromRank + 1
		if n <= 0 {
			continue
		}
		step := b.Duration / time.Duration(n)
		for rank := b.FromRank; rank <= b.ToRank; rank++ {
			rank := rank
			at := b.Start.Add(step * time.Duration(rank-b.FromRank))
			p.Sched.At(at, fmt.Sprintf("register rank %d (%s)", rank, b.Name), func(now time.Time) {
				p.registerSite(rank, b.Manual, now)
			})
		}
	}
}

// registerSite performs the per-site registration protocol: a hard-password
// attempt first and, if it appears to succeed, an easy-password follow-up
// (paper §4.1.2). Manual batches register eligible sites by hand.
func (p *Pilot) registerSite(rank int, manual bool, now time.Time) {
	site, ok := p.Universe.SiteByRank(rank)
	if !ok {
		return
	}
	if manual {
		p.manualRegister(site)
		return
	}
	// Skip sites that already hold a believed-successful registration from
	// an earlier batch.
	for _, reg := range p.Ledger.SiteRegistrations(site.Domain) {
		if reg.Status >= core.StatusOKSubmission {
			return
		}
	}
	res := p.crawlOnce(site, identity.Hard)
	if res.Code == crawler.CodeOKSubmission {
		p.crawlOnce(site, identity.Easy)
	}
}

// crawlOnce runs one automated attempt and applies the burn/return rule.
func (p *Pilot) crawlOnce(site *webgen.Site, class identity.PasswordClass) crawler.Result {
	id := p.takeIdentity(class)
	b := p.newSiteBrowser()
	res := p.Crawler.Register(b, "http://"+site.Domain+"/", id)
	att := Attempt{
		Domain:   site.Domain,
		Rank:     site.Rank,
		Class:    class,
		Code:     res.Code,
		Exposed:  res.Exposed,
		When:     p.Clock.Now(),
		PageLoad: res.PageLoads,
	}
	if res.Exposed {
		att.Email = id.Email
		p.Ledger.Burn(id, site.Domain, site.Rank, site.Category, p.Clock.Now(), res.Code, false)
	} else {
		p.Ledger.Return(id)
	}
	p.Attempts = append(p.Attempts, att)
	p.drainMail()
	return res
}

// manualRegister emulates the authors registering by hand at eligible
// English-language top sites: a human reads the form perfectly, solves any
// CAPTCHA, and completes multi-stage flows. Only the crawler's heuristics
// are bypassed — the same HTTP endpoints are exercised.
func (p *Pilot) manualRegister(site *webgen.Site) {
	if !site.Eligible() {
		return
	}
	for _, reg := range p.Ledger.SiteRegistrations(site.Domain) {
		if reg.Status >= core.StatusOKSubmission {
			return // already covered by an automated registration
		}
	}
	id := p.takeIdentity(identity.Easy)
	b := p.newSiteBrowser()
	spec := p.Universe.FormSpec(site)
	vals := url.Values{}
	for _, f := range spec.Fields {
		switch f.Kind {
		case webgen.FieldCSRF:
			// The browser would echo it; fetch the live form for the token
			// and the captcha id.
		case webgen.FieldEmail:
			vals.Set(f.Name, id.Email)
		case webgen.FieldPassword, webgen.FieldConfirm:
			vals.Set(f.Name, id.Password)
		case webgen.FieldUsername:
			vals.Set(f.Name, id.Username)
		case webgen.FieldFirstName:
			vals.Set(f.Name, id.FirstName)
		case webgen.FieldLastName:
			vals.Set(f.Name, id.LastName)
		case webgen.FieldFullName:
			vals.Set(f.Name, id.FullName())
		case webgen.FieldZip:
			vals.Set(f.Name, id.Zip)
		case webgen.FieldPhone:
			vals.Set(f.Name, id.Phone)
		case webgen.FieldDOB:
			vals.Set(f.Name, id.Birthday.Format("01/02/2006"))
		case webgen.FieldState:
			vals.Set(f.Name, "CA")
		case webgen.FieldTOS:
			vals.Set(f.Name, "on")
		case webgen.FieldCaptcha:
			// Humans solve their own CAPTCHAs; resolved below from the
			// live page.
		}
	}
	page, err := b.Get("http://" + site.Domain + site.RegPath)
	if err != nil || !page.OK() {
		return
	}
	// Copy hidden inputs (CSRF, captcha id) from the live form. A human's
	// browser executes scripts and renders JS-assembled forms, so for
	// JSForm sites (where the static DOM is empty) we recover the same
	// values from ground truth — the human sees them on screen.
	issuer := p.Universe.Issuer(site)
	for _, form := range page.Forms() {
		for _, fld := range form.Fields {
			if fld.Type == "hidden" && fld.Name != "" {
				vals.Set(fld.Name, fld.Value)
			}
		}
	}
	if f, ok := spec.Field(webgen.FieldCSRF); ok && vals.Get(f.Name) == "" {
		vals.Set(f.Name, webgen.CSRFToken(site.Domain))
	}
	if site.Captcha != captcha.None {
		ch := issuer.Issue(site.Captcha, rand.New(rand.NewSource(int64(site.Rank))))
		if got := vals.Get("captcha_id"); got != "" {
			ch = captcha.Challenge{ID: got, Kind: site.Captcha}
		} else {
			vals.Set("captcha_id", ch.ID)
		}
		if f, ok := spec.Field(webgen.FieldCaptcha); ok {
			vals.Set(f.Name, issuer.Answer(ch))
		}
		if site.Captcha == captcha.Interactive {
			vals.Set("captcha_token", issuer.Answer(ch))
		}
	}
	resp, err := b.Post("http://"+site.Domain+site.RegPath, vals)
	exposed := err == nil
	if exposed {
		p.Ledger.Burn(id, site.Domain, site.Rank, site.Category, p.Clock.Now(), crawler.CodeOKSubmission, true)
	} else {
		p.Ledger.Return(id)
	}
	// Multi-stage: the human reads page two and completes it.
	if err == nil && site.MultiStage {
		p.completeStep2(b, site, resp)
	}
	p.Attempts = append(p.Attempts, Attempt{
		Domain: site.Domain, Rank: site.Rank, Class: identity.Easy,
		Code: crawler.CodeOKSubmission, Exposed: exposed, Manual: true,
		When: p.Clock.Now(), Email: id.Email,
	})
	p.drainMail()
}

// completeStep2 fills the second page of a multi-stage registration the way
// a human would: every field correctly, checkboxes checked.
func (p *Pilot) completeStep2(b *browser.Client, site *webgen.Site, step2 *browser.Page) {
	for _, form := range step2.Forms() {
		sub := form.Fill()
		for _, fld := range form.Fields {
			switch fld.Type {
			case "hidden", "submit":
			case "checkbox":
				sub.Check(fld.Name)
			default:
				sub.Set(fld.Name, "Manual Entry")
			}
		}
		if _, err := b.Submit(sub); err == nil {
			return
		}
	}
}

// recordMisses captures breached sites that never tripped the monitor —
// the paper's §6.2 undetected-compromise analysis.
func (p *Pilot) recordMisses() {
	for domain := range p.Campaign.Breaches() {
		if _, ok := p.Monitor.Detection(domain); !ok {
			p.MissedBreaches = append(p.MissedBreaches, domain)
		}
	}
}

// scheduleDumps books the provider's sporadic login-information dumps.
func (p *Pilot) scheduleDumps() {
	for _, d := range p.Cfg.DumpDates {
		d := d
		if d.After(p.Cfg.End) {
			continue
		}
		p.Sched.At(d, "provider dump "+fmtDate(d), func(now time.Time) {
			events := p.Provider.DumpSince(p.lastDump)
			newly := p.Monitor.Ingest(events)
			for _, domain := range newly {
				p.DetectionTimes[domain] = now
			}
			p.lastDump = now
			p.Provider.PurgeExpired()
			if p.Cfg.ReRegisterDetected {
				p.reRegisterDetected(newly, now)
			}
		})
	}
}

// reRegisterDetected registers fresh accounts at newly detected sites (the
// paper did this in mid-May 2016 to see whether sites had recovered).
func (p *Pilot) reRegisterDetected(domains []string, now time.Time) {
	for _, domain := range domains {
		site, ok := p.Universe.Site(domain)
		if !ok || !site.Eligible() {
			continue
		}
		p.Sched.After(30*24*time.Hour, "re-register "+domain, func(t time.Time) {
			p.crawlOnce(site, identity.Hard)
		})
	}
}

// scheduleBreaches books the attacker's site compromises: some at sites
// where Tripwire holds accounts (detectable), some elsewhere (§6.2).
func (p *Pilot) scheduleBreaches() {
	rng := rand.New(rand.NewSource(p.Cfg.Seed + 9))
	window := p.Cfg.BreachWindowEnd.Sub(p.Cfg.BreachWindowStart)
	breached := make(map[string]bool)

	for i := 0; i < p.Cfg.BreachRegistered; i++ {
		at := p.Cfg.BreachWindowStart.Add(time.Duration(rng.Int63n(int64(window))))
		p.Sched.At(at, "breach (registered site)", func(now time.Time) {
			domain := p.pickBreachTarget(rng, breached, true)
			if domain == "" {
				return
			}
			breached[domain] = true
			p.breachSite(domain, now)
		})
	}
	for i := 0; i < p.Cfg.BreachUnregistered; i++ {
		at := p.Cfg.BreachWindowStart.Add(time.Duration(rng.Int63n(int64(window))))
		p.Sched.At(at, "breach (unregistered site)", func(now time.Time) {
			domain := p.pickBreachTarget(rng, breached, false)
			if domain == "" {
				return
			}
			breached[domain] = true
			p.breachSite(domain, now)
		})
	}
}

// pickBreachTarget selects a random un-breached site; withAccount selects
// between sites where Tripwire's account actually exists and ones where it
// does not.
func (p *Pilot) pickBreachTarget(rng *rand.Rand, breached map[string]bool, withAccount bool) string {
	var cands []string
	if withAccount {
		for _, domain := range p.Ledger.Sites() {
			if breached[domain] {
				continue
			}
			if p.tripwireAccountExists(domain) {
				cands = append(cands, domain)
			}
		}
	} else {
		sites := p.Universe.Sites()
		for tries := 0; tries < 200 && len(cands) < 30; tries++ {
			s := sites[rng.Intn(len(sites))]
			if !breached[s.Domain] && !p.tripwireAccountExists(s.Domain) {
				cands = append(cands, s.Domain)
			}
		}
	}
	if len(cands) == 0 {
		return ""
	}
	// Ledger.Sites() iterates a map: sort so runs are reproducible.
	sort.Strings(cands)
	return cands[rng.Intn(len(cands))]
}

// tripwireAccountExists reports whether a Tripwire identity actually has a
// stored account at domain (the crawler may have believed wrongly).
func (p *Pilot) tripwireAccountExists(domain string) bool {
	st := p.Universe.Store(domain)
	for _, reg := range p.Ledger.SiteRegistrations(domain) {
		if _, ok := st.Lookup(reg.Identity.Username); ok {
			return true
		}
		local, _, _ := strings.Cut(reg.Identity.Email, "@")
		if _, ok := st.Lookup(local); ok {
			return true
		}
	}
	return false
}

// breachSite populates the organic user base and hands the site to the
// attacker campaign.
func (p *Pilot) breachSite(domain string, now time.Time) {
	st := p.Universe.Store(domain)
	p.populateOrganics(st, domain)
	p.Campaign.Breach(domain, st, now)
}

// organicDomains are where the synthetic organic population's email lives;
// a share is at the monitored provider (those addresses do not exist there,
// so stuffing them fails — realistic noise).
var organicDomains = []string{
	ProviderDomain, "othermail.test", "webpost.test", "mailbox-corp.test",
	"fastmail-like.test",
}

// populateOrganics seeds a site's store with organic users so breached
// dumps are mostly not Tripwire's accounts.
func (p *Pilot) populateOrganics(st *webgen.Store, domain string) {
	rng := rand.New(rand.NewSource(p.Cfg.Seed + int64(len(domain))*31))
	words := identity.DictionaryWords()
	n := p.Cfg.OrganicUsersMin
	if spread := p.Cfg.OrganicUsersMax - p.Cfg.OrganicUsersMin; spread > 0 {
		n += rng.Intn(spread)
	}
	for i := 0; i < n; i++ {
		p.organicSeq++
		user := fmt.Sprintf("user%07d", p.organicSeq)
		email := fmt.Sprintf("%s@%s", user, organicDomains[rng.Intn(len(organicDomains))])
		var pw string
		if rng.Float64() < 0.6 {
			w := words[rng.Intn(len(words))]
			pw = strings.ToUpper(w[:1]) + w[1:] + string(rune('0'+rng.Intn(10)))
		} else {
			pw = randomPassword(rng)
		}
		salt := fmt.Sprintf("osalt%07d", p.organicSeq)
		_, _ = st.Create(user, email, pw, salt, p.Clock.Now())
	}
}

func randomPassword(rng *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	n := 8 + rng.Intn(5)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alpha[rng.Intn(len(alpha))])
	}
	return b.String()
}
