package sim_test

import (
	"testing"

	"tripwire/internal/obs"
	"tripwire/internal/report"
	"tripwire/internal/sim"
)

// TestWorkerCountInvariance asserts the parallel crawl engine's core
// contract: a pilot sharded over 8 crawl workers is bit-identical to the
// same pilot run on 1 worker — same attempts in the same order, same
// detections, and byte-identical Table 1 and Table 2 renderings. Both runs
// carry a live metrics registry so the invariance covers the instrumented
// code paths (telemetry must be observation-only).
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two full pilots in -short mode")
	}
	run := func(workers int) *sim.Pilot {
		cfg := sim.SmallConfig()
		cfg.CrawlWorkers = workers
		cfg.Metrics = obs.New()
		return sim.NewPilot(cfg).Run()
	}
	serial := run(1)
	parallel := run(8)

	if len(serial.Attempts) != len(parallel.Attempts) {
		t.Fatalf("attempt counts differ: %d (1 worker) vs %d (8 workers)",
			len(serial.Attempts), len(parallel.Attempts))
	}
	for i := range serial.Attempts {
		x, y := serial.Attempts[i], parallel.Attempts[i]
		if x != y {
			t.Fatalf("attempt %d differs:\n 1 worker: %+v\n 8 workers: %+v", i, x, y)
		}
	}

	ds, dp := serial.Monitor.Detections(), parallel.Monitor.Detections()
	if len(ds) != len(dp) {
		t.Fatalf("detection counts differ: %d vs %d", len(ds), len(dp))
	}
	for i := range ds {
		if ds[i].Domain != dp[i].Domain || !ds[i].FirstSeen.Equal(dp[i].FirstSeen) ||
			ds[i].AccountsAccessed != dp[i].AccountsAccessed ||
			ds[i].AccountsRegistered != dp[i].AccountsRegistered {
			t.Fatalf("detection %d differs: %+v vs %+v", i, ds[i], dp[i])
		}
	}

	if t1s, t1p := report.RenderTable1(report.Table1(serial)), report.RenderTable1(report.Table1(parallel)); t1s != t1p {
		t.Errorf("Table 1 differs across worker counts:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s", t1s, t1p)
	}
	if t2s, t2p := report.RenderTable2(report.Table2(serial)), report.RenderTable2(report.Table2(parallel)); t2s != t2p {
		t.Errorf("Table 2 differs across worker counts:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s", t2s, t2p)
	}
}
