package sim

import (
	"fmt"
	"testing"
	"time"

	"tripwire/internal/identity"
	"tripwire/internal/obs"
)

// benchWaveSites is how many sites one benchmark iteration crawls.
const benchWaveSites = 384

// benchParallelCrawl measures crawl throughput of one registration wave at
// several worker counts. Each iteration gets a fresh pilot (a site can
// only be first-registered once) built outside the timer; the timed region
// is exactly what a wave event executes: serial identity allocation, the
// sharded crawl, the rank-order merge, and the mail drain.
//
// Real crawling is dominated by network round trips, not CPU, so the
// benchmark emulates a 1ms RTT per page load (Config.NetLatency). The
// speedup from extra workers is therefore latency overlap — which scales
// with worker count on any machine, including single-core CI boxes where a
// purely CPU-bound benchmark could never show one.
//
// withMetrics attaches a live obs.Registry, so comparing the two
// benchmarks in one run (cmd/tripwire-bench -assert-overhead) bounds the
// observability layer's hot-path cost.
func benchParallelCrawl(b *testing.B, withMetrics bool) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var pages int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := SmallConfig()
				cfg.Web.NumSites = benchWaveSites
				cfg.CrawlWorkers = workers
				cfg.NetLatency = time.Millisecond
				if withMetrics {
					cfg.Metrics = obs.New()
				}
				p := NewPilot(cfg)
				// Pre-provision so on-demand provisioning (identical work at
				// every worker count) stays out of the hot loop.
				p.provisionIdentities(benchWaveSites+50, identity.Hard)
				p.provisionIdentities(benchWaveSites/2, identity.Easy)
				ranks := make([]rankAt, benchWaveSites)
				for r := 1; r <= benchWaveSites; r++ {
					ranks[r-1] = rankAt{rank: r, at: cfg.Start}
				}
				b.StartTimer()
				p.runWave(ranks, false, "bench")
				b.StopTimer()
				for _, a := range p.Attempts {
					pages += int64(a.PageLoad)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(benchWaveSites)*float64(b.N)/b.Elapsed().Seconds(), "sites/s")
			b.ReportMetric(float64(pages)/b.Elapsed().Seconds(), "pages/s")
		})
	}
}

// BenchmarkParallelCrawl is the baseline: no registry attached.
func BenchmarkParallelCrawl(b *testing.B) { benchParallelCrawl(b, false) }

// BenchmarkParallelCrawlMetrics is the same wave with live telemetry; the
// pages/s gap against BenchmarkParallelCrawl is the observability tax,
// asserted < 3% by `make bench-overhead`.
func BenchmarkParallelCrawlMetrics(b *testing.B) { benchParallelCrawl(b, true) }
