package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"tripwire/internal/identity"
	"tripwire/internal/obs"
)

// benchWaveSites is how many sites one benchmark iteration crawls.
const benchWaveSites = 2300

// bench10kUniverse / bench10kWave size the large-universe variant: a 10k-site
// web of which one wave touches ~10%, spread across the rank space. The point
// is not raw throughput but that cost — materialization and heap — tracks the
// crawled subset, not the universe.
const (
	bench10kUniverse = 10000
	bench10kWave     = 1024
)

// benchCrawlGrid measures crawl throughput of one registration wave at
// several worker counts. Each iteration gets a fresh pilot (a site can
// only be first-registered once) built outside the timer; the timed region
// is exactly what a wave event executes: serial identity allocation, the
// sharded crawl, the rank-order merge, and the mail drain.
//
// Real crawling is dominated by network round trips, not CPU, so the
// benchmark emulates a 1ms RTT per page load (Config.NetLatency). The
// speedup from extra workers is therefore latency overlap — which scales
// with worker count on any machine, including single-core CI boxes where a
// purely CPU-bound benchmark could never show one.
//
// warm pre-materializes and pre-renders the whole universe, so the timed
// region is the crawl engine alone (both are deterministic site functions).
// The 10k variant leaves warm off: lazy materialization under crawl load is
// exactly what it exists to demonstrate, so it reports materialized-sites
// and post-wave live heap alongside throughput.
//
// withMetrics attaches a live obs.Registry, so comparing the two 2.3k
// benchmarks in one run (cmd/tripwire-bench -assert-overhead) bounds the
// observability layer's hot-path cost.
func benchCrawlGrid(b *testing.B, numSites, waveSites int, warm, withMetrics bool) {
	for _, workers := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var pages, materialized int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := SmallConfig()
				cfg.Web.NumSites = numSites
				cfg.CrawlWorkers = workers
				cfg.NetLatency = time.Millisecond
				if withMetrics {
					cfg.Metrics = obs.New()
				}
				p := NewPilot(cfg)
				// Pre-provision so on-demand provisioning (identical work at
				// every worker count) stays out of the hot loop.
				p.provisionIdentities(waveSites+50, identity.Hard)
				p.provisionIdentities(waveSites/2, identity.Easy)
				if warm {
					p.Universe.WarmRender()
				}
				stride := numSites / waveSites
				ranks := make([]rankAt, waveSites)
				for r := 0; r < waveSites; r++ {
					ranks[r] = rankAt{rank: r*stride + 1, at: cfg.Start}
				}
				b.StartTimer()
				p.runWave(ranks, false, "bench")
				b.StopTimer()
				for _, a := range p.Attempts {
					pages += int64(a.PageLoad)
				}
				materialized = int64(p.Universe.MaterializedSites())
				b.StartTimer()
			}
			b.ReportMetric(float64(waveSites)*float64(b.N)/b.Elapsed().Seconds(), "sites/s")
			b.ReportMetric(float64(pages)/b.Elapsed().Seconds(), "pages/s")
			if !warm {
				// Lazy-materialization evidence: how much of the universe the
				// wave actually derived, and the live heap it retains.
				b.StopTimer()
				var ms runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&ms)
				b.ReportMetric(float64(materialized), "materialized-sites")
				b.ReportMetric(float64(ms.HeapAlloc)/1e6, "heap-MB")
				b.StartTimer()
			}
		})
	}
}

// BenchmarkParallelCrawl is the baseline: full 2.3k universe, no registry.
func BenchmarkParallelCrawl(b *testing.B) {
	benchCrawlGrid(b, benchWaveSites, benchWaveSites, true, false)
}

// BenchmarkParallelCrawlMetrics is the same wave with live telemetry; the
// pages/s gap against BenchmarkParallelCrawl is the observability tax,
// asserted < 3% by `make bench-overhead`.
func BenchmarkParallelCrawlMetrics(b *testing.B) {
	benchCrawlGrid(b, benchWaveSites, benchWaveSites, true, true)
}

// BenchmarkParallelCrawl10k crawls a ~10% wave of a 10k-site universe with
// lazy materialization live, demonstrating that per-wave cost is O(sites
// crawled), not O(universe).
func BenchmarkParallelCrawl10k(b *testing.B) {
	benchCrawlGrid(b, bench10kUniverse, bench10kWave, false, false)
}
