package emailprovider

import (
	"fmt"
	"net/netip"
	"testing"
	"time"
)

var ringEpoch = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)

func ringEvent(i int) LoginEvent {
	return LoginEvent{
		Account: fmt.Sprintf("acct%03d@honey.test", i%7),
		Time:    ringEpoch.Add(time.Duration(i) * time.Minute),
		IP:      netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		Method:  "IMAP",
	}
}

// naiveDump is the reference the binary-search path must agree with.
func naiveDump(events []LoginEvent, since, cutoff, now time.Time) []LoginEvent {
	var out []LoginEvent
	for _, ev := range events {
		if inWindow(ev.Time, since, cutoff, now) {
			out = append(out, ev)
		}
	}
	return out
}

func sameEvents(t *testing.T, label string, got, want []LoginEvent) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d events, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: event %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestLoginRingDumpMatchesNaiveScan(t *testing.T) {
	var r loginRing
	var all []LoginEvent
	for i := 0; i < 500; i++ {
		ev := ringEvent(i)
		r.append(ev)
		all = append(all, ev)
	}
	now := ringEpoch.Add(600 * time.Minute)
	for _, tc := range []struct {
		name          string
		since, cutoff time.Time
	}{
		{"full", ringEpoch.Add(-time.Hour), ringEpoch.Add(-time.Hour)},
		{"recent", ringEpoch.Add(400 * time.Minute), ringEpoch},
		{"cutoff-trims-head", ringEpoch.Add(-time.Hour), ringEpoch.Add(100 * time.Minute)},
		{"empty-window", now, ringEpoch},
		{"since-after-all", ringEpoch.Add(9999 * time.Minute), ringEpoch},
		{"boundary-exclusive", ringEpoch.Add(250 * time.Minute), ringEpoch},
	} {
		sameEvents(t, tc.name, r.dumpSince(tc.since, tc.cutoff, now), naiveDump(all, tc.since, tc.cutoff, now))
	}
	// now in the middle of the log bounds the upper end.
	mid := ringEpoch.Add(300 * time.Minute)
	sameEvents(t, "now-bounded", r.dumpSince(ringEpoch, ringEpoch, mid), naiveDump(all, ringEpoch, ringEpoch, mid))
}

// TestLoginRingWraparound drives the ring through purge-then-append cycles
// so live events straddle the buffer seam, then checks every read path.
func TestLoginRingWraparound(t *testing.T) {
	var r loginRing
	var all []LoginEvent
	next := 0
	appendN := func(n int) {
		for ; n > 0; n-- {
			ev := ringEvent(next)
			next++
			r.append(ev)
			all = append(all, ev)
		}
	}
	purgeBefore := func(cutoff time.Time) {
		want := 0
		kept := all[:0]
		for _, ev := range all {
			if ev.Time.Before(cutoff) {
				want++
			} else {
				kept = append(kept, ev)
			}
		}
		all = kept
		if got := r.purgeExpired(cutoff); got != want {
			t.Fatalf("purgeExpired dropped %d, want %d", got, want)
		}
	}

	appendN(100) // fills past the initial 64 capacity
	purgeBefore(ringEpoch.Add(90 * time.Minute))
	appendN(110) // wraps: head is mid-buffer and the log spans the seam
	if len(r.buf) != 128 || r.head == 0 {
		t.Fatalf("scenario no longer exercises wraparound: cap=%d head=%d", len(r.buf), r.head)
	}

	sameEvents(t, "all", r.all(), all)
	now := ringEpoch.Add(time.Duration(next) * time.Minute)
	since := ringEpoch.Add(150 * time.Minute)
	sameEvents(t, "dump", r.dumpSince(since, ringEpoch, now), naiveDump(all, since, ringEpoch, now))
	if r.size() != len(all) {
		t.Fatalf("size = %d, want %d", r.size(), len(all))
	}

	purgeBefore(now.Add(time.Hour)) // drop everything
	if r.size() != 0 || r.head != 0 {
		t.Fatalf("empty ring: size=%d head=%d", r.size(), r.head)
	}
	appendN(5)
	sameEvents(t, "post-drain", r.all(), all)
}

// TestLoginRingUnsortedFallback feeds out-of-order events and checks the
// ring degrades to correct linear scans, then recovers the sorted fast path
// once a purge compacts the disorder away.
func TestLoginRingUnsortedFallback(t *testing.T) {
	var r loginRing
	events := []LoginEvent{ringEvent(5), ringEvent(1), ringEvent(9), ringEvent(3)}
	for _, ev := range events {
		r.append(ev)
	}
	if !r.unsorted {
		t.Fatal("out-of-order appends did not flip the unsorted flag")
	}
	now := ringEpoch.Add(time.Hour)
	sameEvents(t, "unsorted-dump", r.dumpSince(ringEpoch, ringEpoch, now), naiveDump(events, ringEpoch, ringEpoch, now))

	// Purging everything before minute 4 leaves {5, 9}: sorted again.
	if got := r.purgeExpired(ringEpoch.Add(4 * time.Minute)); got != 2 {
		t.Fatalf("purged %d, want 2", got)
	}
	if r.unsorted {
		t.Fatal("purge did not restore the sorted fast path")
	}
	sameEvents(t, "recovered", r.all(), []LoginEvent{ringEvent(5), ringEvent(9)})
}

func TestProviderDumpUsesRing(t *testing.T) {
	p := New("honey.test")
	clock := ringEpoch
	p.Now = func() time.Time { return clock }
	p.Retention = 24 * time.Hour
	ip := netip.MustParseAddr("203.0.113.9")
	for i := 0; i < 40; i++ {
		email := fmt.Sprintf("acct%02d@honey.test", i)
		if err := p.CreateAccount(email, "A B", "pw"); err != nil {
			t.Fatal(err)
		}
		clock = clock.Add(time.Hour)
		if err := p.WebLogin(email, "pw", ip); err != nil {
			t.Fatal(err)
		}
	}
	// Retention hides everything older than 24h from dumps: logins landed
	// at hours 1..40, the cutoff sits at hour 16 (inclusive), so hours
	// 16..40 — 25 events — remain visible.
	got := p.DumpSince(time.Time{})
	if len(got) != 25 {
		t.Fatalf("DumpSince returned %d events, want 25 inside retention", len(got))
	}
	if purged := p.PurgeExpired(); purged != 15 {
		t.Fatalf("PurgeExpired dropped %d events, want the 15 outside retention", purged)
	}
	if n := len(p.AllLogins()); n != 25 {
		t.Fatalf("AllLogins after purge = %d, want 25", n)
	}
	// Incremental dump from the midpoint of the retained window; since is
	// exclusive, so the tail starts at the next event.
	mid := got[11].Time
	tail := p.DumpSince(mid)
	if len(tail) != 13 || tail[0].Time != got[12].Time {
		t.Fatalf("incremental dump wrong: %d events", len(tail))
	}
}

// BenchmarkDumpSince measures an incremental dump of the most recent slice
// of a large retained log — the provider's steady-state query shape. The
// ring's binary search makes this O(log n + matches); the old linear scan
// walked all N events per dump.
func BenchmarkDumpSince(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("log=%d", n), func(b *testing.B) {
			var r loginRing
			for i := 0; i < n; i++ {
				r.append(ringEvent(i))
			}
			now := ringEpoch.Add(time.Duration(n) * time.Minute)
			since := ringEpoch.Add(time.Duration(n-64) * time.Minute)
			cutoff := ringEpoch.Add(-time.Hour)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if out := r.dumpSince(since, cutoff, now); len(out) != 63 {
					b.Fatalf("got %d events, want 63", len(out))
				}
			}
		})
	}
}
