package emailprovider

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"tripwire/internal/imap"
)

// randTime returns a canonical time, sometimes zero, so round-trip state
// compares deep-equal.
func randTime(rng *rand.Rand) time.Time {
	if rng.Intn(8) == 0 {
		return time.Time{}
	}
	return time.Unix(0, rng.Int63n(1<<50)).UTC()
}

// randAddr returns a v4, v6, or zero address.
func randAddr(rng *rand.Rand) netip.Addr {
	switch rng.Intn(3) {
	case 0:
		var b [4]byte
		rng.Read(b[:])
		return netip.AddrFrom4(b)
	case 1:
		var b [16]byte
		rng.Read(b[:])
		return netip.AddrFrom16(b)
	default:
		return netip.Addr{}
	}
}

func randString(rng *rand.Rand, max int) string {
	b := make([]byte, rng.Intn(max+1))
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func randLogins(rng *rand.Rand, n int) []LoginEvent {
	var evs []LoginEvent
	for i := 0; i < n; i++ {
		evs = append(evs, LoginEvent{
			Account: randString(rng, 20),
			Time:    randTime(rng),
			IP:      randAddr(rng),
			Method:  []string{"IMAP", "POP3", "WEB"}[rng.Intn(3)],
		})
	}
	return evs
}

func randProviderState(rng *rand.Rand) *ProviderState {
	st := &ProviderState{Domain: randString(rng, 12)}
	for i := 0; i < rng.Intn(6); i++ {
		var inbox []imap.Message
		for j := 0; j < rng.Intn(3); j++ {
			inbox = append(inbox, imap.Message{From: randString(rng, 10), Subject: randString(rng, 10), Body: randString(rng, 40)})
		}
		st.Accounts = append(st.Accounts, AccountState{
			Email:        fmt.Sprintf("acct%d@%s", i, st.Domain),
			Name:         randString(rng, 16),
			Password:     randString(rng, 10),
			State:        State(rng.Intn(4)),
			ForwardTo:    randString(rng, 16),
			Inbox:        inbox,
			FailedSince:  randTime(rng),
			FailedCount:  rng.Intn(20),
			ThrottledTil: randTime(rng),
		})
	}
	st.Logins = randLogins(rng, rng.Intn(8))
	return st
}

// TestProviderStateRoundTrip: encode→decode is deep-equal and
// decode→encode is byte-stable, over generated states.
func TestProviderStateRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randProviderState(rng)
		data := EncodeProviderState(st)
		got, err := DecodeProviderState(data)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if !reflect.DeepEqual(got, st) {
			t.Logf("state mismatch:\n got %+v\nwant %+v", got, st)
			return false
		}
		return bytes.Equal(EncodeProviderState(got), data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestProviderStateDecodeRejectsTruncation: every strict prefix of a
// non-trivial encoding errors rather than decoding silently.
func TestProviderStateDecodeRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var st *ProviderState
	for st = randProviderState(rng); len(st.Accounts) == 0 || len(st.Logins) == 0; {
		st = randProviderState(rng)
	}
	data := EncodeProviderState(st)
	for n := 0; n < len(data); n++ {
		if _, err := DecodeProviderState(data[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(data))
		}
	}
}

// TestExportStateRoundTrip drives a real provider and round-trips its
// export, pinning that live state (not just generated structs) survives.
func TestExportStateRoundTrip(t *testing.T) {
	p := New("hmail.test")
	now := time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC)
	p.Now = func() time.Time { return now }
	for i := 0; i < 5; i++ {
		email := fmt.Sprintf("user%d@hmail.test", i)
		if err := p.CreateAccount(email, "User Name", "Password1"); err != nil {
			t.Fatal(err)
		}
		if err := p.SetForwarding(email, "sink@collector.test"); err != nil {
			t.Fatal(err)
		}
	}
	ip := netip.MustParseAddr("203.0.113.9")
	for i := 0; i < 20; i++ {
		now = now.Add(time.Hour)
		if err := p.WebLogin(fmt.Sprintf("user%d@hmail.test", i%5), "Password1", ip); err != nil {
			t.Fatal(err)
		}
	}
	p.Freeze("user3@hmail.test")
	if err := p.Deliver("noreply@site1.test", "user0@hmail.test", "welcome", "hello"); err != nil {
		t.Fatal(err)
	}

	st := p.ExportState()
	if len(st.Accounts) != 5 || len(st.Logins) != 20 {
		t.Fatalf("export: %d accounts, %d logins", len(st.Accounts), len(st.Logins))
	}
	got, err := DecodeProviderState(EncodeProviderState(st))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatal("live provider export did not survive a codec round trip")
	}
	// A second export is byte-identical: exporting is read-only and
	// deterministic.
	if !bytes.Equal(EncodeProviderState(p.ExportState()), EncodeProviderState(st)) {
		t.Fatal("re-export changed bytes")
	}
}
