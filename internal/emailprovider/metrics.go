package emailprovider

import (
	"tripwire/internal/obs"
)

// Metrics aggregates provider telemetry. A nil *Metrics is a no-op, so the
// field can stay unset on providers running without observability.
type Metrics struct {
	// logins is indexed by access method; resolved at wiring time.
	logins       map[string]*obs.Counter
	authFailures *obs.Counter
	throttled    *obs.Counter
	lockedOut    *obs.Counter
	frozen       *obs.Counter
	deactivated  *obs.Counter
	forcedResets *obs.Counter
}

// NewMetrics registers the provider metric families on r and exposes the
// account and login-log sizes as collection-time gauges.
func (p *Provider) NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	vec := r.CounterVec("tripwire_provider_logins_total", "Successful account logins by access method.", "method", "imap", "pop3", "web")
	m := &Metrics{
		logins: map[string]*obs.Counter{
			"IMAP": vec.With("imap"),
			"POP3": vec.With("pop3"),
			"WEB":  vec.With("web"),
		},
		authFailures: r.Counter("tripwire_provider_auth_failures_total", "Rejected logins (bad password, unknown account, or forced reset)."),
		throttled:    r.Counter("tripwire_provider_throttled_logins_total", "Logins rejected while an account was brute-force throttled."),
		lockedOut:    r.Counter("tripwire_provider_locked_logins_total", "Logins rejected because the account was frozen or deactivated."),
		frozen:       r.Counter("tripwire_provider_accounts_frozen_total", "Accounts frozen for suspicious activity."),
		deactivated:  r.Counter("tripwire_provider_accounts_deactivated_total", "Accounts deactivated for sending spam."),
		forcedResets: r.Counter("tripwire_provider_forced_resets_total", "Provider-forced password resets after recognized compromise."),
	}
	r.GaugeFunc("tripwire_provider_accounts", "Provisioned honey accounts.", func() int64 { return int64(p.NumAccounts()) })
	r.GaugeFunc("tripwire_provider_login_log_size", "Login events currently held in the provider log.", func() int64 {
		return int64(p.log.size())
	})
	return m
}

func (m *Metrics) loginOK(method string) {
	if m == nil {
		return
	}
	m.logins[method].Inc()
}
