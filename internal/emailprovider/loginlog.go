package emailprovider

import (
	"sort"
	"sync"
	"time"
)

// loginRing stores successful-login events in a time-ordered ring buffer.
// The simulation's virtual clock only moves forward, so appends arrive in
// nondecreasing time order and every dump reduces to two binary searches
// over a contiguous window — O(log n + matches) instead of the full-log
// scan the slice-backed log needed. Retention purges drop whole prefixes by
// advancing the head, so expiry is O(log n) and frees no per-event work.
// If a caller ever appends out of order the ring flips to a linear-scan
// fallback rather than returning wrong windows.
type loginRing struct {
	mu       sync.Mutex
	buf      []LoginEvent
	head     int // index of the oldest event in buf
	n        int // events currently stored
	unsorted bool
	marked   int // logical index saved by mark() for seal()
	// inSegment is true between mark and seal. While set, takeSpill
	// refuses to detach a prefix: spilling would move the head and
	// invalidate the marked index, and mid-segment content is not yet
	// deterministically ordered.
	inSegment bool
	// version counts content changes (appends, seals, purges, spills) so
	// the incremental checkpoint knows when its cached resident-log blob
	// is stale.
	version uint64
}

// rev returns the content version.
func (r *loginRing) rev() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// at returns the i-th oldest stored event. Callers hold mu and guarantee
// 0 <= i < n (so buf is non-empty).
func (r *loginRing) at(i int) *LoginEvent {
	return &r.buf[(r.head+i)%len(r.buf)]
}

// grow linearizes the ring into a buffer of at least double the capacity.
func (r *loginRing) grow() {
	next := make([]LoginEvent, max(64, 2*len(r.buf)))
	for i := 0; i < r.n; i++ {
		next[i] = *r.at(i)
	}
	r.buf = next
	r.head = 0
}

func (r *loginRing) append(ev LoginEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == len(r.buf) {
		r.grow()
	}
	if r.n > 0 && ev.Time.Before(r.at(r.n-1).Time) {
		r.unsorted = true
	}
	*r.at(r.n) = ev
	r.n++
	r.version++
}

// dumpSince returns the events with Time in (since, now] that are not older
// than cutoff, oldest first.
func (r *loginRing) dumpSince(since, cutoff, now time.Time) []LoginEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.unsorted {
		var out []LoginEvent
		for i := 0; i < r.n; i++ {
			if ev := *r.at(i); inWindow(ev.Time, since, cutoff, now) {
				out = append(out, ev)
			}
		}
		return out
	}
	// Both bounds are monotone in event time, so the matching events form
	// one contiguous run: [lo, hi).
	lo := sort.Search(r.n, func(i int) bool {
		t := r.at(i).Time
		return t.After(since) && !t.Before(cutoff)
	})
	hi := lo + sort.Search(r.n-lo, func(i int) bool {
		return r.at(lo + i).Time.After(now)
	})
	if lo >= hi {
		return nil
	}
	out := make([]LoginEvent, hi-lo)
	for i := lo; i < hi; i++ {
		out[i-lo] = *r.at(i)
	}
	return out
}

func inWindow(t, since, cutoff, now time.Time) bool {
	return t.After(since) && !t.Before(cutoff) && !t.After(now)
}

// purgeExpired discards events older than cutoff and reports how many were
// dropped. In the sorted fast path this only advances the head.
func (r *loginRing) purgeExpired(cutoff time.Time) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return 0
	}
	if !r.unsorted {
		drop := sort.Search(r.n, func(i int) bool {
			return !r.at(i).Time.Before(cutoff)
		})
		r.head = (r.head + drop) % len(r.buf)
		r.n -= drop
		if r.n == 0 {
			r.head = 0
		}
		if drop > 0 {
			r.version++
		}
		return drop
	}
	// Out-of-order log: compact in place and recheck orderedness, so a ring
	// that drained its disordered tail regains the binary-search path.
	kept := make([]LoginEvent, 0, r.n)
	for i := 0; i < r.n; i++ {
		if ev := *r.at(i); !ev.Time.Before(cutoff) {
			kept = append(kept, ev)
		}
	}
	purged := r.n - len(kept)
	if purged > 0 {
		r.version++
	}
	r.buf = kept
	r.head = 0
	r.n = len(kept)
	r.unsorted = false
	for i := 1; i < len(kept); i++ {
		if kept[i].Time.Before(kept[i-1].Time) {
			r.unsorted = true
			break
		}
	}
	return purged
}

// mark remembers the current logical length; seal later re-sequences
// everything appended after it. The pair brackets one parallel timeline
// segment (simclock.Sequencer): within a segment the clock is frozen, so
// every appended event carries the same timestamp and cross-account append
// order is an accident of goroutine interleaving. seal erases that accident.
// No purge can run between mark and seal (dumps are exclusive events), so
// the logical index stays valid.
func (r *loginRing) mark() {
	r.mu.Lock()
	r.marked = r.n
	r.inSegment = true
	r.mu.Unlock()
}

// seal stably sorts the block appended since mark by (Time, Account). Two
// same-epoch logins to the same account come from the same conflict
// partition and are therefore already in deterministic order, which the
// stable sort preserves — making the whole log independent of how the
// segment's partitions interleaved.
func (r *loginRing) seal() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inSegment = false
	m := r.marked
	if r.n-m < 2 {
		return
	}
	r.version++
	blk := make([]LoginEvent, r.n-m)
	for i := m; i < r.n; i++ {
		blk[i-m] = *r.at(i)
	}
	sort.SliceStable(blk, func(a, b int) bool {
		if !blk[a].Time.Equal(blk[b].Time) {
			return blk[a].Time.Before(blk[b].Time)
		}
		return blk[a].Account < blk[b].Account
	})
	for i := range blk {
		*r.at(m+i) = blk[i]
	}
}

// takeSpill detaches and returns the oldest prefix when the ring holds
// more than budget events, leaving budget/2 resident (so spills happen in
// batches rather than on every append). It refuses mid-segment (the
// marked index must stay valid and segment content is not yet sealed into
// deterministic order) and on the unsorted fallback path (a disordered
// prefix cannot be binary-searched once cold). After detaching it shrinks
// the buffer, releasing the spilled prefix's heap.
func (r *loginRing) takeSpill(budget int) []LoginEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if budget <= 0 || r.inSegment || r.unsorted || r.n <= budget {
		return nil
	}
	keep := budget / 2
	k := r.n - keep
	r.version++
	out := make([]LoginEvent, k)
	for i := 0; i < k; i++ {
		out[i] = *r.at(i)
	}
	r.head = (r.head + k) % len(r.buf)
	r.n = keep
	if r.n == 0 {
		r.head = 0
	}
	if want := max(64, 2*r.n); len(r.buf) > 2*want {
		next := make([]LoginEvent, want)
		for i := 0; i < r.n; i++ {
			next[i] = *r.at(i)
		}
		r.buf = next
		r.head = 0
	}
	return out
}

// all returns every stored event, oldest first.
func (r *loginRing) all() []LoginEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]LoginEvent, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = *r.at(i)
	}
	return out
}

// size returns the number of stored events.
func (r *loginRing) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
