package emailprovider

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"tripwire/internal/imap"
	"tripwire/internal/snapshot"
)

// AccountState is one provider account in canonical (exported) form:
// plain values, times reduced to CanonTime, ready for codec round trips
// and deep-equality comparison.
type AccountState struct {
	Email        string
	Name         string
	Password     string
	State        State
	ForwardTo    string
	Inbox        []imap.Message
	FailedSince  time.Time
	FailedCount  int
	ThrottledTil time.Time
}

// ProviderState is the provider's full durable state: every account plus
// the complete retained login log (resident and spilled tiers alike).
// Accounts are sorted by address so the export is independent of shard
// layout and map iteration order.
type ProviderState struct {
	Domain   string
	Accounts []AccountState
	Logins   []LoginEvent
}

// ExportState captures the provider's durable state. The export is
// deterministic: two providers that processed the same events export
// byte-identical state regardless of interleaving history.
func (p *Provider) ExportState() *ProviderState {
	st := &ProviderState{Domain: p.domain}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, a := range sh.accounts {
			var inbox []imap.Message
			if len(a.inbox) > 0 {
				inbox = make([]imap.Message, len(a.inbox))
				copy(inbox, a.inbox)
			}
			st.Accounts = append(st.Accounts, AccountState{
				Email:        a.email,
				Name:         a.name,
				Password:     a.password,
				State:        a.state,
				ForwardTo:    a.forwardTo,
				Inbox:        inbox,
				FailedSince:  snapshot.CanonTime(a.failedSince),
				FailedCount:  a.failedCount,
				ThrottledTil: snapshot.CanonTime(a.throttledTil),
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(st.Accounts, func(i, j int) bool { return st.Accounts[i].Email < st.Accounts[j].Email })
	if evs := canonLogins(p.AllLogins()); len(evs) > 0 {
		st.Logins = evs
	}
	return st
}

// canonLogins canonicalizes event times for deep-equal comparison.
func canonLogins(evs []LoginEvent) []LoginEvent {
	for i := range evs {
		evs[i].Time = snapshot.CanonTime(evs[i].Time)
	}
	return evs
}

// AppendLoginEvent encodes one login event. The format is shared by the
// provider snapshot section, the monitor's attributed-login export, and
// the on-disk cold log segments.
func AppendLoginEvent(e *snapshot.Encoder, ev LoginEvent) {
	e.String(ev.Account)
	e.Time(ev.Time)
	e.Blob(ev.IP.AsSlice())
	e.String(ev.Method)
}

// DecodeLoginEvent reads one login event. Decode errors surface through
// the decoder's sticky error; a malformed IP is reported directly.
func DecodeLoginEvent(d *snapshot.Decoder) (LoginEvent, error) {
	var ev LoginEvent
	ev.Account = d.String()
	ev.Time = d.Time()
	raw := d.Blob()
	ev.Method = d.String()
	if err := d.Err(); err != nil {
		return LoginEvent{}, err
	}
	if len(raw) > 0 {
		ip, ok := netip.AddrFromSlice(raw)
		if !ok {
			return LoginEvent{}, fmt.Errorf("%w: login event with %d-byte IP", snapshot.ErrCorrupt, len(raw))
		}
		ev.IP = ip
	}
	return ev, nil
}

// loginEventMinBytes is the least a login event can occupy encoded (four
// length/flag bytes), used to sanity-cap collection counts before decode
// allocates.
const loginEventMinBytes = 4

// EncodeLoginEvents encodes a count-prefixed run of login events — the
// payload format of both the provider section's log and cold segments.
func EncodeLoginEvents(e *snapshot.Encoder, evs []LoginEvent) {
	e.Uint(uint64(len(evs)))
	for _, ev := range evs {
		AppendLoginEvent(e, ev)
	}
}

// DecodeLoginEvents reads a count-prefixed run of login events.
func DecodeLoginEvents(d *snapshot.Decoder) ([]LoginEvent, error) {
	n := d.Count(loginEventMinBytes)
	if err := d.Err(); err != nil {
		return nil, err
	}
	var evs []LoginEvent
	if n > 0 {
		evs = make([]LoginEvent, 0, n)
	}
	for i := 0; i < n; i++ {
		ev, err := DecodeLoginEvent(d)
		if err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// EncodeProviderState serializes the export into snapshot-section bytes.
func EncodeProviderState(st *ProviderState) []byte {
	e := snapshot.NewEncoder()
	e.String(st.Domain)
	e.Uint(uint64(len(st.Accounts)))
	for i := range st.Accounts {
		a := &st.Accounts[i]
		e.String(a.Email)
		e.String(a.Name)
		e.String(a.Password)
		e.Uint(uint64(a.State))
		e.String(a.ForwardTo)
		e.Uint(uint64(len(a.Inbox)))
		for _, m := range a.Inbox {
			e.String(m.From)
			e.String(m.Subject)
			e.String(m.Body)
		}
		e.Time(a.FailedSince)
		e.Int(int64(a.FailedCount))
		e.Time(a.ThrottledTil)
	}
	EncodeLoginEvents(e, st.Logins)
	return e.Bytes()
}

// DecodeProviderState parses EncodeProviderState's output.
func DecodeProviderState(data []byte) (*ProviderState, error) {
	d := snapshot.NewDecoder(data)
	st := &ProviderState{Domain: d.String()}
	// An empty account still costs ≥ 9 bytes of length/flag fields.
	n := d.Count(9)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > 0 {
		st.Accounts = make([]AccountState, 0, n)
	}
	for i := 0; i < n; i++ {
		var a AccountState
		a.Email = d.String()
		a.Name = d.String()
		a.Password = d.String()
		a.State = State(d.Uint())
		a.ForwardTo = d.String()
		nm := d.Count(3)
		for j := 0; j < nm; j++ {
			a.Inbox = append(a.Inbox, imap.Message{From: d.String(), Subject: d.String(), Body: d.String()})
		}
		a.FailedSince = d.Time()
		a.FailedCount = int(d.Int())
		a.ThrottledTil = d.Time()
		if err := d.Err(); err != nil {
			return nil, err
		}
		st.Accounts = append(st.Accounts, a)
	}
	logins, err := DecodeLoginEvents(d)
	if err != nil {
		return nil, err
	}
	st.Logins = logins
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in provider state", snapshot.ErrCorrupt, d.Remaining())
	}
	return st, nil
}
