package emailprovider

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"tripwire/internal/imap"
	"tripwire/internal/snapshot"
)

// AccountState is one provider account in canonical (exported) form:
// plain values, times reduced to CanonTime, ready for codec round trips
// and deep-equality comparison.
type AccountState struct {
	Email        string
	Name         string
	Password     string
	State        State
	ForwardTo    string
	Inbox        []imap.Message
	FailedSince  time.Time
	FailedCount  int
	ThrottledTil time.Time
}

// ProviderState is the provider's full durable state: every deviating
// account plus the complete retained login log (resident and spilled tiers
// alike). Accounts are sorted by address so the export is independent of
// shard layout and map iteration order.
//
// Accounts the deriver covers that are still pristine — untouched since
// (implicit) provisioning — are represented only by the Implicit count:
// their content is a pure function of the address, so listing them would
// record derivable bytes. This is also what makes lazy and eager
// provisioning export byte-identically: an eagerly created, still-pristine
// account elides to the same count.
type ProviderState struct {
	Domain   string
	Implicit int64
	Accounts []AccountState
	Logins   []LoginEvent
}

// exportLocked builds the canonical form of one row. Caller holds sh.mu.
func (sh *accountShard) exportLocked(slot int32, domain string) AccountState {
	var inbox []imap.Message
	if n := len(sh.inboxes[slot]); n > 0 {
		inbox = make([]imap.Message, n)
		copy(inbox, sh.inboxes[slot])
	}
	return AccountState{
		Email:        sh.locals[slot] + "@" + domain,
		Name:         sh.names[slot],
		Password:     sh.passwords[slot],
		State:        State(sh.states[slot]),
		ForwardTo:    sh.forwards[slot],
		Inbox:        inbox,
		FailedSince:  nanoTime(sh.failedSince[slot]),
		FailedCount:  int(sh.failedCount[slot]),
		ThrottledTil: nanoTime(sh.throttledTil[slot]),
	}
}

// pristineLocked reports whether a row still equals its derived pristine
// form, i.e. nothing has touched it since (implicit) provisioning.
// Caller holds sh.mu.
func (sh *accountShard) pristineLocked(slot int32, d DerivedAccount) bool {
	return State(sh.states[slot]) == Active &&
		sh.failedCount[slot] == 0 &&
		sh.failedSince[slot] == 0 &&
		sh.throttledTil[slot] == 0 &&
		len(sh.inboxes[slot]) == 0 &&
		sh.names[slot] == d.Name &&
		sh.passwords[slot] == d.Password &&
		sh.forwards[slot] == d.ForwardTo
}

// nanoTime converts the packed UnixNano back to CanonTime form (0 = zero).
func nanoTime(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}

// ExportState captures the provider's durable state. The export is
// deterministic: two providers that processed the same events export
// byte-identical state regardless of interleaving history — and
// regardless of whether accounts were provisioned eagerly or derived
// lazily, because pristine covered accounts elide to the Implicit count
// either way.
func (p *Provider) ExportState() *ProviderState {
	st := &ProviderState{Domain: p.domain}
	coveredDeviating := int64(0)
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for slot := int32(0); slot < int32(len(sh.locals)); slot++ {
			if d, covered := p.derive(sh.locals[slot]); covered {
				if sh.pristineLocked(slot, d) {
					continue
				}
				coveredDeviating++
			}
			st.Accounts = append(st.Accounts, sh.exportLocked(slot, p.domain))
		}
		sh.mu.Unlock()
	}
	if p.deriver != nil {
		st.Implicit = p.deriver.DerivedCount() - coveredDeviating
	}
	sort.Slice(st.Accounts, func(i, j int) bool { return st.Accounts[i].Email < st.Accounts[j].Email })
	if evs := canonLogins(p.AllLogins()); len(evs) > 0 {
		st.Logins = evs
	}
	return st
}

// canonLogins canonicalizes event times for deep-equal comparison.
func canonLogins(evs []LoginEvent) []LoginEvent {
	for i := range evs {
		evs[i].Time = snapshot.CanonTime(evs[i].Time)
	}
	return evs
}

// AppendLoginEvent encodes one login event. The format is shared by the
// provider snapshot section, the monitor's attributed-login export, and
// the on-disk cold log segments.
func AppendLoginEvent(e *snapshot.Encoder, ev LoginEvent) {
	e.String(ev.Account)
	e.Time(ev.Time)
	e.Blob(ev.IP.AsSlice())
	e.String(ev.Method)
}

// DecodeLoginEvent reads one login event. Decode errors surface through
// the decoder's sticky error; a malformed IP is reported directly.
func DecodeLoginEvent(d *snapshot.Decoder) (LoginEvent, error) {
	var ev LoginEvent
	ev.Account = d.String()
	ev.Time = d.Time()
	raw := d.Blob()
	ev.Method = d.String()
	if err := d.Err(); err != nil {
		return LoginEvent{}, err
	}
	if len(raw) > 0 {
		ip, ok := netip.AddrFromSlice(raw)
		if !ok {
			return LoginEvent{}, fmt.Errorf("%w: login event with %d-byte IP", snapshot.ErrCorrupt, len(raw))
		}
		ev.IP = ip
	}
	return ev, nil
}

// loginEventMinBytes is the least a login event can occupy encoded (four
// length/flag bytes), used to sanity-cap collection counts before decode
// allocates.
const loginEventMinBytes = 4

// EncodeLoginEvents encodes a count-prefixed run of login events — the
// payload format of both the provider section's log and cold segments.
func EncodeLoginEvents(e *snapshot.Encoder, evs []LoginEvent) {
	e.Uint(uint64(len(evs)))
	for _, ev := range evs {
		AppendLoginEvent(e, ev)
	}
}

// DecodeLoginEvents reads a count-prefixed run of login events.
func DecodeLoginEvents(d *snapshot.Decoder) ([]LoginEvent, error) {
	n := d.Count(loginEventMinBytes)
	if err := d.Err(); err != nil {
		return nil, err
	}
	var evs []LoginEvent
	if n > 0 {
		evs = make([]LoginEvent, 0, n)
	}
	for i := 0; i < n; i++ {
		ev, err := DecodeLoginEvent(d)
		if err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// appendAccountState encodes one account body — shared by the monolithic
// section encode and the per-account cache blobs, so the two paths are
// byte-identical by construction.
func appendAccountState(e *snapshot.Encoder, a *AccountState) {
	e.String(a.Email)
	e.String(a.Name)
	e.String(a.Password)
	e.Uint(uint64(a.State))
	e.String(a.ForwardTo)
	e.Uint(uint64(len(a.Inbox)))
	for _, m := range a.Inbox {
		e.String(m.From)
		e.String(m.Subject)
		e.String(m.Body)
	}
	e.Time(a.FailedSince)
	e.Int(int64(a.FailedCount))
	e.Time(a.ThrottledTil)
}

// EncodeProviderState serializes the export into snapshot-section bytes.
func EncodeProviderState(st *ProviderState) []byte {
	e := snapshot.NewEncoder()
	e.String(st.Domain)
	e.Uint(uint64(st.Implicit))
	e.Uint(uint64(len(st.Accounts)))
	for i := range st.Accounts {
		appendAccountState(e, &st.Accounts[i])
	}
	EncodeLoginEvents(e, st.Logins)
	return e.Bytes()
}

// DecodeProviderState parses EncodeProviderState's output.
func DecodeProviderState(data []byte) (*ProviderState, error) {
	d := snapshot.NewDecoder(data)
	st := &ProviderState{Domain: d.String(), Implicit: int64(d.Uint())}
	// An empty account still costs ≥ 9 bytes of length/flag fields.
	n := d.Count(9)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > 0 {
		st.Accounts = make([]AccountState, 0, n)
	}
	for i := 0; i < n; i++ {
		var a AccountState
		a.Email = d.String()
		a.Name = d.String()
		a.Password = d.String()
		a.State = State(d.Uint())
		a.ForwardTo = d.String()
		nm := d.Count(3)
		for j := 0; j < nm; j++ {
			a.Inbox = append(a.Inbox, imap.Message{From: d.String(), Subject: d.String(), Body: d.String()})
		}
		a.FailedSince = d.Time()
		a.FailedCount = int(d.Int())
		a.ThrottledTil = d.Time()
		if err := d.Err(); err != nil {
			return nil, err
		}
		st.Accounts = append(st.Accounts, a)
	}
	logins, err := DecodeLoginEvents(d)
	if err != nil {
		return nil, err
	}
	st.Logins = logins
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in provider state", snapshot.ErrCorrupt, d.Remaining())
	}
	return st, nil
}

// EncodeStateCached produces the provider section bytes through a
// SectionCache: per-account blobs and login-log blobs (one per immutable
// cold segment plus the bounded resident ring) whose versions did not move
// since the last checkpoint are stitched back verbatim, so encode cost
// tracks the wave's mutations, not the account population. A nil cache
// falls back to the canonical full encode. The output is byte-identical to
// EncodeProviderState(ExportState()) — the incremental-equivalence test
// and the resume attestation both pin this.
func (p *Provider) EncodeStateCached(c *snapshot.SectionCache) []byte {
	if c == nil {
		return EncodeProviderState(p.ExportState())
	}
	type ref struct {
		email string
		sh    *accountShard
		slot  int32
		ver   uint32
	}
	var refs []ref
	coveredDeviating := int64(0)
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for slot := int32(0); slot < int32(len(sh.locals)); slot++ {
			if d, covered := p.derive(sh.locals[slot]); covered {
				if sh.pristineLocked(slot, d) {
					continue
				}
				coveredDeviating++
			}
			refs = append(refs, ref{email: sh.locals[slot] + "@" + p.domain, sh: sh, slot: slot, ver: sh.versions[slot]})
		}
		sh.mu.Unlock()
	}
	implicit := int64(0)
	if p.deriver != nil {
		implicit = p.deriver.DerivedCount() - coveredDeviating
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].email < refs[j].email })

	e := snapshot.NewEncoder()
	e.String(p.domain)
	e.Uint(uint64(implicit))
	e.Uint(uint64(len(refs)))
	for _, r := range refs {
		r := r
		e.Raw(c.GetOrBuild("pa/"+r.email, uint64(r.ver), func() []byte {
			r.sh.mu.Lock()
			a := r.sh.exportLocked(r.slot, p.domain)
			r.sh.mu.Unlock()
			blob := snapshot.NewEncoder()
			appendAccountState(blob, &a)
			return blob.Bytes()
		}))
	}
	p.appendLoginsCached(e, c)
	return e.Bytes()
}

// appendLoginsCached assembles the EncodeLoginEvents(AllLogins()) bytes
// from cached blobs: cold segments are immutable once written (only the
// purge high-water mark can mask a straddling segment's prefix, which is
// folded into the blob version), and the resident ring blob is bounded by
// the spill budget.
func (p *Provider) appendLoginsCached(e *snapshot.Encoder, c *snapshot.SectionCache) {
	p.spill.mu.Lock()
	segments := make([]coldSegment, len(p.spill.segments))
	copy(segments, p.spill.segments)
	pb := p.spill.purgedBefore
	p.spill.mu.Unlock()

	type part struct {
		blob  []byte
		count uint64
	}
	parts := make([]part, 0, len(segments)+1)
	total := uint64(0)
	for _, seg := range segments {
		if seg.max.Before(pb) {
			continue
		}
		seg := seg
		ver := uint64(0)
		if seg.min.Before(pb) {
			ver = uint64(pb.UnixNano()) // straddling: content depends on the mask
		}
		blob, kept := c.GetOrBuildAux("pl/"+seg.path, ver, func() ([]byte, uint64) {
			evs, err := p.readSegment(seg)
			if err != nil {
				p.noteSpillErr(err)
				return nil, 0
			}
			lo := sort.Search(len(evs), func(i int) bool {
				return !evs[i].Time.Before(pb)
			})
			enc := snapshot.NewEncoder()
			for _, ev := range evs[lo:] {
				AppendLoginEvent(enc, ev)
			}
			return enc.Bytes(), uint64(len(evs) - lo)
		})
		parts = append(parts, part{blob: blob, count: kept})
		total += kept
	}
	resBlob, resCount := c.GetOrBuildAux("pl/resident", p.log.rev(), func() ([]byte, uint64) {
		evs := p.log.all()
		enc := snapshot.NewEncoder()
		for _, ev := range evs {
			AppendLoginEvent(enc, ev)
		}
		return enc.Bytes(), uint64(len(evs))
	})
	parts = append(parts, part{blob: resBlob, count: resCount})
	total += resCount

	e.Uint(total)
	for _, pt := range parts {
		e.Raw(pt.blob)
	}
}
