package emailprovider

import (
	"time"
)

// DumpSince returns the successful-login events with Time in (since, now],
// subject to the provider's retention window: events older than Retention
// (measured from the current virtual time) have been purged and cannot be
// recovered, which is how the paper lost its Spring 2015 data ("due to a
// misunderstanding of the retention limits at the email provider, login
// activity was lost from March 20, 2015, through June 1, 2015").
//
// The log is a time-ordered ring (see loginRing) plus optional cold
// segments spilled to disk (see spill.go); both tiers are time-sorted, so
// the window is located by binary search in each rather than a scan over
// the whole retained history. Cold segments are strictly older than every
// resident event, so concatenating segment results before ring results
// preserves global order.
func (p *Provider) DumpSince(since time.Time) []LoginEvent {
	now := p.Now()
	cutoff := now.Add(-p.Retention)
	out := p.spilledSince(since, cutoff, now)
	resident := p.log.dumpSince(since, cutoff, now)
	if out == nil {
		return resident
	}
	return append(out, resident...)
}

// AllLogins returns every retained login event, cold and resident tiers
// merged oldest-first (ground truth for tests and state export).
func (p *Provider) AllLogins() []LoginEvent {
	spilled := p.allSpilled()
	resident := p.log.all()
	if spilled == nil {
		return resident
	}
	return append(spilled, resident...)
}

// PurgeExpired discards events beyond the retention window, modelling the
// provider's storage policy actually deleting data. Cold segments wholly
// behind the window are unlinked; the resident ring advances its head.
func (p *Provider) PurgeExpired() int {
	cutoff := p.Now().Add(-p.Retention)
	return p.purgeSpilled(cutoff) + p.log.purgeExpired(cutoff)
}

// BeginSegment / EndSegment implement simclock.Sequencer: the epoch-parallel
// timeline engine brackets every parallel segment with them so the login
// log's append order — the one piece of provider state that is sensitive to
// goroutine interleaving — is re-sequenced deterministically (see
// loginRing.seal). All other provider state is per-account and per-account
// events never run concurrently.
func (p *Provider) BeginSegment() { p.log.mark() }

// EndSegment closes the segment opened by BeginSegment, then gives the
// cold tier a chance to spill: post-seal the ring's order is
// deterministic, so segment boundaries are too.
func (p *Provider) EndSegment() {
	p.log.seal()
	p.maybeSpill()
}

// Abuse-response operations: the provider's security systems acting on
// compromised accounts, per paper §6.4.4.

// Freeze locks an account for suspicious activity.
func (p *Provider) Freeze(email string) bool { return p.setState(email, Frozen) }

// Deactivate shuts an account down for sending spam.
func (p *Provider) Deactivate(email string) bool { return p.setState(email, Deactivated) }

// ForceReset invalidates the password after recognized compromise.
func (p *Provider) ForceReset(email string) bool { return p.setState(email, ResetForced) }

func (p *Provider) setState(email string, st State) bool {
	return p.mutate(email, func(sh *accountShard, slot int32) bool {
		if State(sh.states[slot]) == st {
			return false
		}
		if p.Metrics != nil {
			switch st {
			case Frozen:
				p.Metrics.frozen.Inc()
			case Deactivated:
				p.Metrics.deactivated.Inc()
			case ResetForced:
				p.Metrics.forcedResets.Inc()
			}
		}
		sh.states[slot] = uint8(st)
		return true
	})
}

// Attacker-side account manipulation (observed in paper §6.4.4: "account g2
// had had the password changed and our forwarding address removed by the
// attacker"). These require a prior successful login; callers enforce that.

// ChangePassword sets a new password on the account.
func (p *Provider) ChangePassword(email, newPassword string) bool {
	return p.mutate(email, func(sh *accountShard, slot int32) bool {
		if sh.passwords[slot] == newPassword {
			return false
		}
		sh.passwords[slot] = newPassword
		return true
	})
}

// RemoveForwarding clears the account's forwarding address.
func (p *Provider) RemoveForwarding(email string) bool {
	return p.mutate(email, func(sh *accountShard, slot int32) bool {
		if sh.forwards[slot] == "" {
			return false
		}
		sh.forwards[slot] = ""
		return true
	})
}

// ReportSpam records that an account emitted outbound spam; after a couple
// of reports the provider deactivates it, matching the fate of accounts b1,
// g2, h1, h2, i2, k1 and m2 in the paper.
func (p *Provider) ReportSpam(email string, messages int) State {
	st := Active
	p.mutate(email, func(sh *accountShard, slot int32) bool {
		st = State(sh.states[slot])
		if messages > 0 && st == Active {
			st = Deactivated
			sh.states[slot] = uint8(Deactivated)
			if p.Metrics != nil {
				p.Metrics.deactivated.Inc()
			}
			return true
		}
		return false
	})
	return st
}

// FrozenOrDeactivated reports whether the provider has locked the account
// in any way.
func (p *Provider) FrozenOrDeactivated(email string) bool {
	st, ok := p.State(email)
	return ok && (st == Frozen || st == Deactivated)
}
