package emailprovider

import (
	"fmt"
	"net/netip"
	"reflect"
	"testing"
	"time"
)

// spillFixture builds two providers fed an identical login stream: ref
// keeps everything resident, spilled runs with the given budget. It
// returns both plus the distinct event times, oldest first.
func spillFixture(t *testing.T, budget, events int) (ref, spilled *Provider, times []time.Time) {
	t.Helper()
	build := func(dir string) *Provider {
		p := New("hmail.test")
		if dir != "" {
			p.SpillLoginLog(dir, budget)
		}
		for i := 0; i < 8; i++ {
			if err := p.CreateAccount(fmt.Sprintf("acct%d@hmail.test", i), "A B", "Password1"); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	ref = build("")
	spilled = build(t.TempDir())
	ip := netip.MustParseAddr("198.51.100.7")
	now := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < events; i++ {
		// Bursts of equal timestamps so segment seams can land inside a
		// same-time run.
		if i%3 == 0 {
			now = now.Add(time.Hour)
		}
		times = append(times, now)
		for _, p := range []*Provider{ref, spilled} {
			p.Now = func() time.Time { return now }
			if err := p.WebLogin(fmt.Sprintf("acct%d@hmail.test", i%8), "Password1", ip); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ref, spilled, times
}

// TestDumpSinceSpillContract: with thresholds forcing 0, 1, and many cold
// segments, DumpSince over a sweep of windows — including every segment
// seam — is identical to the all-resident ring.
func TestDumpSinceSpillContract(t *testing.T) {
	const events = 120
	cases := []struct {
		name         string
		budget       int
		wantSegments string // "zero", "one", "many"
	}{
		{"no-spill", events + 1, "zero"},
		{"one-segment", 100, "one"},
		{"many-segments", 10, "many"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, sp, times := spillFixture(t, tc.budget, events)
			segs := sp.SpilledSegments()
			switch tc.wantSegments {
			case "zero":
				if segs != 0 {
					t.Fatalf("%d segments, want 0", segs)
				}
			case "one":
				if segs != 1 {
					t.Fatalf("%d segments, want 1", segs)
				}
			case "many":
				if segs < 3 {
					t.Fatalf("%d segments, want many", segs)
				}
			}
			if err := sp.SpillErr(); err != nil {
				t.Fatal(err)
			}
			if tc.budget <= events && sp.ResidentLogSize() > tc.budget {
				t.Fatalf("resident size %d exceeds budget %d", sp.ResidentLogSize(), tc.budget)
			}

			// Full-log identity first.
			if !reflect.DeepEqual(sp.AllLogins(), ref.AllLogins()) {
				t.Fatal("AllLogins differs from all-resident reference")
			}
			// Sweep windows anchored at every distinct event time — these
			// include every segment seam — plus off-seam probes.
			anchors := []time.Time{{}, times[0].Add(-time.Minute)}
			for _, tm := range times {
				anchors = append(anchors, tm, tm.Add(-time.Nanosecond), tm.Add(time.Nanosecond))
			}
			for _, since := range anchors {
				got := sp.DumpSince(since)
				want := ref.DumpSince(since)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("DumpSince(%v): %d events, want %d", since, len(got), len(want))
				}
			}
		})
	}
}

// TestSpillPurgeDropsWholeSegments: retention expiry unlinks cold
// segments and the two tiers agree with the reference afterwards.
func TestSpillPurgeDropsWholeSegments(t *testing.T) {
	ref, sp, times := spillFixture(t, 10, 120)
	last := times[len(times)-1]
	// Retain only the newest quarter of the timeline.
	cut := last.Sub(times[len(times)/4*3])
	for _, p := range []*Provider{ref, sp} {
		p.Retention = cut
		p.Now = func() time.Time { return last }
	}
	before := sp.SpilledSegments()
	refPurged, spPurged := ref.PurgeExpired(), sp.PurgeExpired()
	if sp.SpilledSegments() >= before {
		t.Fatalf("purge dropped no segments (%d -> %d)", before, sp.SpilledSegments())
	}
	// The spilled provider may retain slightly more (a straddling segment
	// is kept whole, its expired prefix masked at read time), never less.
	if spPurged > refPurged {
		t.Fatalf("spilled purge dropped %d > reference %d", spPurged, refPurged)
	}
	if !reflect.DeepEqual(sp.DumpSince(time.Time{}), ref.DumpSince(time.Time{})) {
		t.Fatal("post-purge DumpSince differs from reference")
	}
	// A straddling segment keeps its file, but AllLogins must mask the
	// expired prefix exactly as the ring's physical purge did.
	if !reflect.DeepEqual(sp.AllLogins(), ref.AllLogins()) {
		t.Fatal("post-purge AllLogins differs from reference")
	}
	if err := sp.SpillErr(); err != nil {
		t.Fatal(err)
	}
}

// TestSpillDeferredInsideSegment: between BeginSegment and EndSegment the
// ring must not move (the sequencer's marked index stays valid); the
// spill happens at EndSegment instead.
func TestSpillDeferredInsideSegment(t *testing.T) {
	p := New("hmail.test")
	p.SpillLoginLog(t.TempDir(), 4)
	if err := p.CreateAccount("acct@hmail.test", "A B", "Password1"); err != nil {
		t.Fatal(err)
	}
	now := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	p.Now = func() time.Time { return now }
	ip := netip.MustParseAddr("198.51.100.7")
	p.BeginSegment()
	for i := 0; i < 10; i++ {
		now = now.Add(time.Minute)
		if err := p.WebLogin("acct@hmail.test", "Password1", ip); err != nil {
			t.Fatal(err)
		}
	}
	if p.SpilledSegments() != 0 {
		t.Fatal("spilled inside an open segment")
	}
	p.EndSegment()
	if p.SpilledSegments() == 0 {
		t.Fatal("EndSegment did not spill an over-budget ring")
	}
	if got := len(p.AllLogins()); got != 10 {
		t.Fatalf("AllLogins = %d events, want 10", got)
	}
}
