package emailprovider

import (
	"net/netip"
	"testing"
	"time"

	"tripwire/internal/imap"
	"tripwire/internal/simclock"
)

var testIP = netip.MustParseAddr("203.0.113.9")

func newTestProvider() (*Provider, *simclock.Clock) {
	clock := simclock.New(time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC))
	p := New("bigmail.test")
	p.Now = clock.Now
	return p, clock
}

func TestCreateAccountPolicies(t *testing.T) {
	p, _ := newTestProvider()
	if err := p.CreateAccount("arguablegem8317@bigmail.test", "Jane Doe", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := p.CreateAccount("arguablegem8317@bigmail.test", "Other", "pw"); err != ErrCollision {
		t.Fatalf("duplicate: err = %v", err)
	}
	if err := p.CreateAccount("admin@bigmail.test", "X", "pw"); err != ErrNamingPolicy {
		t.Fatalf("reserved: err = %v", err)
	}
	if err := p.CreateAccount("ab@bigmail.test", "X", "pw"); err != ErrNamingPolicy {
		t.Fatalf("too short: err = %v", err)
	}
	if err := p.CreateAccount("bad name@bigmail.test", "X", "pw"); err != ErrNamingPolicy {
		t.Fatalf("bad chars: err = %v", err)
	}
	if err := p.CreateAccount("x@otherdomain.test", "X", "pw"); err == nil {
		t.Fatal("foreign domain accepted")
	}
	if !p.Exists("ArguableGem8317@bigmail.test") {
		t.Fatal("Exists should be case-insensitive")
	}
	if p.NumAccounts() != 1 {
		t.Fatalf("NumAccounts = %d", p.NumAccounts())
	}
}

func TestLoginLogsSuccessOnly(t *testing.T) {
	p, clock := newTestProvider()
	p.CreateAccount("user1@bigmail.test", "U", "Secret99x")
	if _, err := p.Login("user1@bigmail.test", "wrong", testIP); err != imap.ErrAuthFailed {
		t.Fatalf("wrong password: %v", err)
	}
	if n := len(p.AllLogins()); n != 0 {
		t.Fatalf("failed attempt logged: %d events (paper: failures are not disclosed)", n)
	}
	sess, err := p.Login("user1@bigmail.test", "Secret99x", testIP)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Logout()
	evs := p.AllLogins()
	if len(evs) != 1 {
		t.Fatalf("%d events", len(evs))
	}
	ev := evs[0]
	if ev.Account != "user1@bigmail.test" || ev.IP != testIP || ev.Method != "IMAP" || !ev.Time.Equal(clock.Now()) {
		t.Fatalf("event = %+v", ev)
	}
}

func TestLoginMethods(t *testing.T) {
	p, _ := newTestProvider()
	p.CreateAccount("meth0@bigmail.test", "M", "pw123456")
	if err := p.WebLogin("meth0@bigmail.test", "pw123456", testIP); err != nil {
		t.Fatal(err)
	}
	if err := p.POPLogin("meth0@bigmail.test", "pw123456", testIP); err != nil {
		t.Fatal(err)
	}
	methods := map[string]bool{}
	for _, ev := range p.AllLogins() {
		methods[ev.Method] = true
	}
	if !methods["WEB"] || !methods["POP3"] {
		t.Fatalf("methods = %v", methods)
	}
}

func TestBruteForceDefence(t *testing.T) {
	p, clock := newTestProvider()
	p.CreateAccount("bfuser@bigmail.test", "B", "RealPass1")
	for i := 0; i <= p.BruteForceMax; i++ {
		p.Login("bfuser@bigmail.test", "guess", testIP)
	}
	// Even the CORRECT password is now throttled.
	if _, err := p.Login("bfuser@bigmail.test", "RealPass1", testIP); err != imap.ErrThrottled {
		t.Fatalf("after brute force: %v", err)
	}
	clock.Advance(p.ThrottlePeriod + time.Hour)
	if _, err := p.Login("bfuser@bigmail.test", "RealPass1", testIP); err != nil {
		t.Fatalf("after throttle expiry: %v", err)
	}
}

func TestMailDeliveryAndForwarding(t *testing.T) {
	p, _ := newTestProvider()
	p.CreateAccount("fwd01@bigmail.test", "F", "pw123456")
	var forwarded []string
	p.Forward = func(from, to, subject, body string) error {
		forwarded = append(forwarded, to+"|"+subject)
		return nil
	}
	p.SetForwarding("fwd01@bigmail.test", "fwd01@relay.test")
	if err := p.Send("noreply@site.test", "fwd01@bigmail.test", "Verify", "click"); err != nil {
		t.Fatal(err)
	}
	if len(forwarded) != 1 || forwarded[0] != "fwd01@relay.test|Verify" {
		t.Fatalf("forwarded = %v", forwarded)
	}
	inbox := p.Inbox("fwd01@bigmail.test")
	if len(inbox) != 1 || inbox[0].Subject != "Verify" {
		t.Fatalf("inbox = %+v", inbox)
	}
	if tgt, ok := p.ForwardingOf("fwd01@bigmail.test"); !ok || tgt != "fwd01@relay.test" {
		t.Fatalf("ForwardingOf = %q, %v", tgt, ok)
	}
}

func TestIMAPSessionReadsInbox(t *testing.T) {
	p, _ := newTestProvider()
	p.CreateAccount("reader@bigmail.test", "R", "pw123456")
	p.Send("a@site.test", "reader@bigmail.test", "One", "b1")
	p.Send("a@site.test", "reader@bigmail.test", "Two", "b2")
	sess, err := p.Login("reader@bigmail.test", "pw123456", testIP)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sess.Select("INBOX")
	if err != nil || n != 2 {
		t.Fatalf("Select = %d, %v", n, err)
	}
	m, err := sess.Fetch(2)
	if err != nil || m.Subject != "Two" {
		t.Fatalf("Fetch(2) = %+v, %v", m, err)
	}
	if _, err := sess.Fetch(3); err == nil {
		t.Fatal("Fetch past end allowed")
	}
	if _, err := sess.Select("Drafts"); err == nil {
		t.Fatal("non-INBOX mailbox allowed")
	}
}

func TestAbuseLifecycle(t *testing.T) {
	p, _ := newTestProvider()
	p.CreateAccount("ab1@bigmail.test", "A", "pw123456")
	if st := p.ReportSpam("ab1@bigmail.test", 500); st != Deactivated {
		t.Fatalf("after spam: %v", st)
	}
	if _, err := p.Login("ab1@bigmail.test", "pw123456", testIP); err != imap.ErrAccountFrozen {
		t.Fatalf("deactivated login: %v", err)
	}
	if !p.FrozenOrDeactivated("ab1@bigmail.test") {
		t.Fatal("FrozenOrDeactivated = false")
	}

	p.CreateAccount("ab2@bigmail.test", "A", "pw123456")
	p.Freeze("ab2@bigmail.test")
	if _, err := p.Login("ab2@bigmail.test", "pw123456", testIP); err != imap.ErrAccountFrozen {
		t.Fatalf("frozen login: %v", err)
	}

	p.CreateAccount("ab3@bigmail.test", "A", "OldPass99")
	p.ForceReset("ab3@bigmail.test")
	if _, err := p.Login("ab3@bigmail.test", "OldPass99", testIP); err != imap.ErrAuthFailed {
		t.Fatalf("reset-forced login: %v", err)
	}
}

func TestAttackerTakeover(t *testing.T) {
	p, _ := newTestProvider()
	p.CreateAccount("taken@bigmail.test", "T", "Original1")
	p.SetForwarding("taken@bigmail.test", "taken@relay.test")
	if !p.ChangePassword("taken@bigmail.test", "Hijacked9") {
		t.Fatal("ChangePassword failed")
	}
	if !p.RemoveForwarding("taken@bigmail.test") {
		t.Fatal("RemoveForwarding failed")
	}
	if _, err := p.Login("taken@bigmail.test", "Original1", testIP); err == nil {
		t.Fatal("old password still works")
	}
	if _, err := p.Login("taken@bigmail.test", "Hijacked9", testIP); err != nil {
		t.Fatalf("new password rejected: %v", err)
	}
	if _, ok := p.ForwardingOf("taken@bigmail.test"); ok {
		t.Fatal("forwarding still set")
	}
}

func TestDumpSinceAndRetention(t *testing.T) {
	p, clock := newTestProvider()
	p.Retention = 75 * 24 * time.Hour
	p.CreateAccount("dumper@bigmail.test", "D", "pw123456")

	login := func() {
		if _, err := p.Login("dumper@bigmail.test", "pw123456", testIP); err != nil {
			t.Fatal(err)
		}
	}
	login() // Jan 1
	clock.Advance(60 * 24 * time.Hour)
	login() // Mar 2
	clock.Advance(60 * 24 * time.Hour)
	login() // May 1

	// Now is ~May 1; retention cutoff is ~Feb 15. The Jan 1 event is
	// beyond retention and invisible even to a since-the-beginning dump —
	// the paper's Spring 2015 gap mechanism.
	evs := p.DumpSince(time.Date(2014, 12, 1, 0, 0, 0, 0, time.UTC))
	if len(evs) != 2 {
		t.Fatalf("dump saw %d events, want 2 (one lost to retention)", len(evs))
	}
	// A dump since Mar 15 sees only the May event.
	evs = p.DumpSince(time.Date(2015, 3, 15, 0, 0, 0, 0, time.UTC))
	if len(evs) != 1 {
		t.Fatalf("dump since mid-March saw %d events", len(evs))
	}
	if purged := p.PurgeExpired(); purged != 1 {
		t.Fatalf("PurgeExpired = %d, want 1", purged)
	}
	if len(p.AllLogins()) != 2 {
		t.Fatalf("after purge: %d events", len(p.AllLogins()))
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Active: "active", Frozen: "frozen", Deactivated: "deactivated", ResetForced: "reset-forced"} {
		if st.String() != want {
			t.Errorf("State(%d) = %q", int(st), st.String())
		}
	}
}
