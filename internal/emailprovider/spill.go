package emailprovider

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"tripwire/internal/snapshot"
)

// The login log's retention tiers. The resident tier is the loginRing;
// when it exceeds LogResidentBudget events, the oldest prefix is written
// to a cold segment file in LogSpillDir using the snapshot container
// (one "logins" section, CRC-protected) and dropped from the ring.
// Cold segments are immutable, strictly older than every resident event,
// and internally time-sorted — so DumpSince binary-searches each
// overlapping segment exactly the way it searches the ring, and retention
// expiry unlinks whole segment files without touching their contents.

// segmentSection names the single section inside a cold segment file.
const segmentSection = "logins"

// coldSegment is the in-memory index entry for one spilled segment file.
type coldSegment struct {
	path     string
	min, max time.Time // event-time span, inclusive
	count    int
}

// spillState is the provider's cold-tier bookkeeping, separate from the
// ring's lock: segment reads do file IO and must not block appends.
type spillState struct {
	mu       sync.Mutex
	segments []coldSegment // oldest first
	next     int           // next segment file number
	err      error         // first spill IO failure, sticky
	// purgedBefore is the high-water retention cutoff. A purge drops whole
	// segments; a segment straddling the cutoff stays on disk, so its
	// expired prefix must be masked at read time — exactly as the resident
	// ring, which physically drops those events, would have.
	purgedBefore time.Time
}

// SpillLoginLog enables the cold tier: when the resident login log
// exceeds budget events, the oldest prefix spills to a segment file in
// dir. A budget ≤ 0 or empty dir disables spilling.
func (p *Provider) SpillLoginLog(dir string, budget int) {
	p.spillDir = dir
	p.logResidentBudget = budget
}

// ResidentLogSize returns how many login events are held in memory; the
// heap-envelope benchmark asserts this stays inside the budget while
// AllLogins still sees everything.
func (p *Provider) ResidentLogSize() int { return p.log.size() }

// SpilledSegments returns how many cold segment files exist.
func (p *Provider) SpilledSegments() int {
	p.spill.mu.Lock()
	defer p.spill.mu.Unlock()
	return len(p.spill.segments)
}

// SpillErr returns the first cold-tier IO failure, if any. Dumps degrade
// to the resident tier after a failure, so callers that need the full
// log (checkpointing, final accounting) must check it.
func (p *Provider) SpillErr() error {
	p.spill.mu.Lock()
	defer p.spill.mu.Unlock()
	return p.spill.err
}

// maybeSpill moves the oldest resident events to a new cold segment when
// the ring exceeds its budget. Called after appends (outside parallel
// segments) and at EndSegment, so spill timing is deterministic whenever
// append order is.
func (p *Provider) maybeSpill() {
	if p.spillDir == "" || p.logResidentBudget <= 0 {
		return
	}
	evs := p.log.takeSpill(p.logResidentBudget)
	if len(evs) == 0 {
		return
	}
	e := snapshot.NewEncoder()
	EncodeLoginEvents(e, evs)
	f := snapshot.New()
	f.Add(segmentSection, e.Bytes())

	p.spill.mu.Lock()
	defer p.spill.mu.Unlock()
	path := filepath.Join(p.spillDir, fmt.Sprintf("logseg-%06d.twsnap", p.spill.next))
	if err := snapshot.WriteFile(path, f); err != nil {
		// The detached events would be lost; surface the failure and stop
		// trusting the cold tier.
		if p.spill.err == nil {
			p.spill.err = err
		}
		return
	}
	p.spill.next++
	p.spill.segments = append(p.spill.segments, coldSegment{
		path:  path,
		min:   evs[0].Time,
		max:   evs[len(evs)-1].Time,
		count: len(evs),
	})
}

// readSegment loads and decodes one cold segment.
func (p *Provider) readSegment(seg coldSegment) ([]LoginEvent, error) {
	f, err := snapshot.ReadFile(seg.path)
	if err != nil {
		return nil, err
	}
	data, ok := f.Section(segmentSection)
	if !ok {
		return nil, fmt.Errorf("%s: %w: missing %q section", seg.path, snapshot.ErrCorrupt, segmentSection)
	}
	evs, err := DecodeLoginEvents(snapshot.NewDecoder(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", seg.path, err)
	}
	return evs, nil
}

// spilledSince collects the events from cold segments with Time in
// (since, now] and not before cutoff, oldest first. Each overlapping
// segment is loaded and binary-searched with the same predicates the
// resident ring uses; non-overlapping segments are skipped on their index
// entry alone, without touching the file.
func (p *Provider) spilledSince(since, cutoff, now time.Time) []LoginEvent {
	p.spill.mu.Lock()
	segments := make([]coldSegment, len(p.spill.segments))
	copy(segments, p.spill.segments)
	p.spill.mu.Unlock()

	var out []LoginEvent
	for _, seg := range segments {
		if !seg.max.After(since) || seg.max.Before(cutoff) || seg.min.After(now) {
			continue
		}
		evs, err := p.readSegment(seg)
		if err != nil {
			p.noteSpillErr(err)
			continue
		}
		lo := sort.Search(len(evs), func(i int) bool {
			t := evs[i].Time
			return t.After(since) && !t.Before(cutoff)
		})
		hi := lo + sort.Search(len(evs)-lo, func(i int) bool {
			return evs[lo+i].Time.After(now)
		})
		out = append(out, evs[lo:hi]...)
	}
	return out
}

// allSpilled returns every cold event that survived retention, oldest
// first. Events before the last purge's cutoff are masked even when their
// straddling segment file was kept whole.
func (p *Provider) allSpilled() []LoginEvent {
	p.spill.mu.Lock()
	segments := make([]coldSegment, len(p.spill.segments))
	copy(segments, p.spill.segments)
	pb := p.spill.purgedBefore
	p.spill.mu.Unlock()

	var out []LoginEvent
	for _, seg := range segments {
		if seg.max.Before(pb) {
			continue
		}
		evs, err := p.readSegment(seg)
		if err != nil {
			p.noteSpillErr(err)
			continue
		}
		lo := sort.Search(len(evs), func(i int) bool {
			return !evs[i].Time.Before(pb)
		})
		out = append(out, evs[lo:]...)
	}
	return out
}

// purgeSpilled unlinks segments that lie wholly before cutoff and
// returns how many events they held. Segments straddling the cutoff stay;
// their expired prefix is filtered at read time by the same cutoff
// predicate every dump applies.
func (p *Provider) purgeSpilled(cutoff time.Time) int {
	p.spill.mu.Lock()
	defer p.spill.mu.Unlock()
	dropped := 0
	i := 0
	for ; i < len(p.spill.segments); i++ {
		seg := p.spill.segments[i]
		if !seg.max.Before(cutoff) {
			break
		}
		dropped += seg.count
		os.Remove(seg.path)
	}
	p.spill.segments = p.spill.segments[i:]
	if cutoff.After(p.spill.purgedBefore) {
		p.spill.purgedBefore = cutoff
	}
	return dropped
}

func (p *Provider) noteSpillErr(err error) {
	p.spill.mu.Lock()
	if p.spill.err == nil {
		p.spill.err = err
	}
	p.spill.mu.Unlock()
}
