// Package emailprovider simulates Tripwire's partner email provider (paper
// §4.2): it creates honey accounts (rejecting collisions and policy
// violations), forwards all delivered mail to the Tripwire mail server,
// records every successful login with timestamp, remote IP, and method,
// defends against brute-forcing, and freezes or deactivates abused accounts
// — each behaviour the paper reports observing.
package emailprovider

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"time"

	"tripwire/internal/imap"
)

// State is an account's lifecycle state.
type State int

const (
	// Active accounts accept logins.
	Active State = iota
	// Frozen accounts were locked by the provider for suspicious activity;
	// logins fail. (Paper Table 3's "Frozen" column.)
	Frozen
	// Deactivated accounts were shut down for sending spam.
	Deactivated
	// ResetForced accounts had a provider-forced password reset after
	// recognized compromise; the old password no longer works.
	ResetForced
)

// String names the state.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Frozen:
		return "frozen"
	case Deactivated:
		return "deactivated"
	case ResetForced:
		return "reset-forced"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// LoginEvent is one successful login, as included in the provider's
// sporadic dumps to Tripwire: "timestamp, remote IP, and method ... but does
// not disclose failed attempts" (paper §4.2).
type LoginEvent struct {
	Account string // email address
	Time    time.Time
	IP      netip.Addr
	Method  string // "IMAP", "POP3", "WEB"
}

// Forwarder receives mail forwarded off honey accounts toward Tripwire's
// own mail server.
type Forwarder func(from, to, subject, body string) error

// Errors returned by account creation.
var (
	// ErrCollision means an account with that address already exists.
	ErrCollision = errors.New("emailprovider: address already taken")
	// ErrNamingPolicy means the local part violates the provider's rules.
	ErrNamingPolicy = errors.New("emailprovider: address violates naming policy")
)

type account struct {
	email        string
	name         string
	password     string
	state        State
	forwardTo    string
	inbox        []imap.Message
	failedSince  time.Time
	failedCount  int
	throttledTil time.Time
}

// accountShards fixes the provider's lock striping width. Per-account
// invariants (password, state, brute-force counters, inbox) only ever span
// one account, so any address-stable partition preserves them; 32 shards
// keep unrelated accounts off each other's locks.
const accountShards = 32

// accountShard guards one stripe of the account table.
type accountShard struct {
	mu       sync.Mutex
	accounts map[string]*account
}

// Provider is the simulated email service.
type Provider struct {
	domain string

	// shards stripes the account table by address hash; log is the
	// time-indexed successful-login record dumps read from.
	shards [accountShards]accountShard
	log    loginRing
	// Cold-tier spill configuration and bookkeeping (see spill.go). Set
	// via SpillLoginLog before the first login; zero values disable the
	// tier and keep the whole log resident.
	spillDir          string
	logResidentBudget int
	spill             spillState
	// reserved local parts per the provider's naming policy. Read-only
	// after New, so lookups need no lock.
	reserved map[string]bool

	// Forward delivers forwarded copies; nil disables forwarding.
	Forward Forwarder
	// Now supplies virtual time.
	Now func() time.Time

	// Brute-force defence: more than BruteForceMax failures within
	// BruteForceWindow throttles the account for ThrottlePeriod.
	BruteForceMax    int
	BruteForceWindow time.Duration
	ThrottlePeriod   time.Duration

	// Retention bounds how far back login events are kept; dumps cannot
	// see past it. The paper lost Spring 2015 data to exactly this limit.
	Retention time.Duration

	// Metrics, when non-nil, receives login and lifecycle observations.
	// Recording is atomic-only and never changes auth decisions.
	Metrics *Metrics
}

// New returns a provider serving addresses @domain.
func New(domain string) *Provider {
	p := &Provider{
		domain:           domain,
		reserved:         map[string]bool{"admin": true, "postmaster": true, "abuse": true, "support": true, "root": true, "noreply": true},
		Now:              time.Now,
		BruteForceMax:    10,
		BruteForceWindow: time.Hour,
		ThrottlePeriod:   24 * time.Hour,
		Retention:        365 * 24 * time.Hour,
	}
	for i := range p.shards {
		p.shards[i].accounts = make(map[string]*account)
	}
	return p
}

// shardFor maps a lowercased address to its account shard (FNV-1a).
func (p *Provider) shardFor(email string) *accountShard {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(email); i++ {
		h ^= uint64(email[i])
		h *= 0x100000001b3
	}
	return &p.shards[h&(accountShards-1)]
}

// Domain returns the provider's mail domain.
func (p *Provider) Domain() string { return p.domain }

// CreateAccount provisions an account, applying the collision and
// naming-policy checks the paper describes: "the corresponding accounts
// unless they collided with a pre-existing account or violated the
// provider's naming policies."
func (p *Provider) CreateAccount(email, fullName, password string) error {
	email = strings.ToLower(email)
	local, dom, ok := strings.Cut(email, "@")
	if !ok || dom != p.domain {
		return fmt.Errorf("emailprovider: %q is not an address under %s", email, p.domain)
	}
	if len(local) < 3 || len(local) > 64 || p.reserved[local] {
		return ErrNamingPolicy
	}
	for i := 0; i < len(local); i++ {
		c := local[i]
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '.' || c == '_' || c == '-') {
			return ErrNamingPolicy
		}
	}
	sh := p.shardFor(email)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.accounts[email]; dup {
		return ErrCollision
	}
	sh.accounts[email] = &account{email: email, name: fullName, password: password, state: Active}
	return nil
}

// lookup returns the account for email (case-insensitive) with its shard
// locked; the caller must unlock sh.mu. The account pointer is nil when the
// address has no account.
func (p *Provider) lookup(email string) (*account, *accountShard) {
	email = strings.ToLower(email)
	sh := p.shardFor(email)
	sh.mu.Lock()
	return sh.accounts[email], sh
}

// Exists reports whether the address has an account.
func (p *Provider) Exists(email string) bool {
	a, sh := p.lookup(email)
	sh.mu.Unlock()
	return a != nil
}

// NumAccounts returns the number of provisioned accounts.
func (p *Provider) NumAccounts() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		n += len(sh.accounts)
		sh.mu.Unlock()
	}
	return n
}

// SetForwarding configures mail forwarding for email to target. Forwarding
// addresses are visible in the web interface, so Tripwire points them at
// innocuous domains it controls (paper §4.2).
func (p *Provider) SetForwarding(email, target string) error {
	a, sh := p.lookup(email)
	defer sh.mu.Unlock()
	if a == nil {
		return fmt.Errorf("emailprovider: no account %q", email)
	}
	a.forwardTo = target
	return nil
}

// ForwardingOf returns the forwarding target for email, if any.
func (p *Provider) ForwardingOf(email string) (string, bool) {
	a, sh := p.lookup(email)
	defer sh.mu.Unlock()
	if a == nil || a.forwardTo == "" {
		return "", false
	}
	return a.forwardTo, true
}

// State returns the account's lifecycle state.
func (p *Provider) State(email string) (State, bool) {
	a, sh := p.lookup(email)
	defer sh.mu.Unlock()
	if a == nil {
		return Active, false
	}
	return a.state, true
}

// Deliver accepts a message addressed to a provider account: it is stored
// in the account's inbox and, when forwarding is configured, relayed to the
// Tripwire mail server. Implements webgen.Mailer.
func (p *Provider) Deliver(from, to, subject, body string) error {
	a, sh := p.lookup(to)
	if a == nil {
		sh.mu.Unlock()
		return fmt.Errorf("emailprovider: no mailbox %q", to)
	}
	a.inbox = append(a.inbox, imap.Message{From: from, Subject: subject, Body: body})
	fwd := a.forwardTo
	forward := p.Forward
	deactivated := a.state == Deactivated
	sh.mu.Unlock()
	if fwd != "" && forward != nil && !deactivated {
		return forward(from, fwd, subject, body)
	}
	return nil
}

// Send implements webgen.Mailer so a Universe can deliver straight into
// provider mailboxes.
func (p *Provider) Send(from, to, subject, body string) error {
	return p.Deliver(from, to, subject, body)
}

// Inbox returns a copy of the account's stored messages.
func (p *Provider) Inbox(email string) []imap.Message {
	a, sh := p.lookup(email)
	defer sh.mu.Unlock()
	if a == nil {
		return nil
	}
	out := make([]imap.Message, len(a.inbox))
	copy(out, a.inbox)
	return out
}

// login is the shared auth path; method labels the access channel.
func (p *Provider) login(email, password string, remote netip.Addr, method string) (*account, error) {
	now := p.Now()
	a, sh := p.lookup(email)
	defer sh.mu.Unlock()
	if a == nil {
		if p.Metrics != nil {
			p.Metrics.authFailures.Inc()
		}
		return nil, imap.ErrAuthFailed
	}
	if now.Before(a.throttledTil) {
		if p.Metrics != nil {
			p.Metrics.throttled.Inc()
		}
		return nil, imap.ErrThrottled
	}
	if a.state == Frozen || a.state == Deactivated {
		if p.Metrics != nil {
			p.Metrics.lockedOut.Inc()
		}
		return nil, imap.ErrAccountFrozen
	}
	if a.state == ResetForced || a.password != password {
		// Track failures for the brute-force defence. Failed attempts are
		// never disclosed in dumps.
		if now.Sub(a.failedSince) > p.BruteForceWindow {
			a.failedSince = now
			a.failedCount = 0
		}
		a.failedCount++
		if a.failedCount > p.BruteForceMax {
			a.throttledTil = now.Add(p.ThrottlePeriod)
		}
		if p.Metrics != nil {
			p.Metrics.authFailures.Inc()
		}
		return nil, imap.ErrAuthFailed
	}
	a.failedCount = 0
	p.log.append(LoginEvent{Account: a.email, Time: now, IP: remote, Method: method})
	p.maybeSpill()
	p.Metrics.loginOK(method)
	return a, nil
}

// Login implements imap.Backend.
func (p *Provider) Login(user, pass string, remote netip.Addr) (imap.Session, error) {
	a, err := p.login(user, pass, remote, "IMAP")
	if err != nil {
		return nil, err
	}
	return &session{p: p, a: a}, nil
}

// methodBackend is an imap.Backend view of the provider that records a
// different access method in the login log (e.g. POP3 front ends).
type methodBackend struct {
	p      *Provider
	method string
}

// Login implements imap.Backend with the wrapped method label.
func (b methodBackend) Login(user, pass string, remote netip.Addr) (imap.Session, error) {
	a, err := b.p.login(user, pass, remote, b.method)
	if err != nil {
		return nil, err
	}
	return &session{p: b.p, a: a}, nil
}

// POPBackend returns a mailbox backend whose successful logins are logged
// with method "POP3"; the POP3 server front end uses it.
func (p *Provider) POPBackend() imap.Backend { return methodBackend{p: p, method: "POP3"} }

// WebLogin authenticates through the provider's web interface; Tripwire's
// own control-account logins use this method.
func (p *Provider) WebLogin(email, password string, remote netip.Addr) error {
	_, err := p.login(email, password, remote, "WEB")
	return err
}

// POPLogin authenticates via POP3 (some attacker tooling uses it).
func (p *Provider) POPLogin(email, password string, remote netip.Addr) error {
	_, err := p.login(email, password, remote, "POP3")
	return err
}

// session implements imap.Session over a provider account.
type session struct {
	p        *Provider
	a        *account
	selected bool
}

func (s *session) Select(mailbox string) (int, error) {
	if !strings.EqualFold(mailbox, "INBOX") {
		return 0, fmt.Errorf("emailprovider: no mailbox %q", mailbox)
	}
	s.selected = true
	sh := s.p.shardFor(s.a.email)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(s.a.inbox), nil
}

func (s *session) Fetch(seq int) (imap.Message, error) {
	sh := s.p.shardFor(s.a.email)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !s.selected || seq < 1 || seq > len(s.a.inbox) {
		return imap.Message{}, fmt.Errorf("emailprovider: no message %d", seq)
	}
	return s.a.inbox[seq-1], nil
}

func (s *session) Logout() error { return nil }
