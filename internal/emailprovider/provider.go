// Package emailprovider simulates Tripwire's partner email provider (paper
// §4.2): it creates honey accounts (rejecting collisions and policy
// violations), forwards all delivered mail to the Tripwire mail server,
// records every successful login with timestamp, remote IP, and method,
// defends against brute-forcing, and freezes or deactivates abused accounts
// — each behaviour the paper reports observing.
//
// The account table is built to hold a 10M-account honey population in a
// bounded heap: storage is struct-of-arrays per shard (flat columns instead
// of per-account heap objects, times packed as int64 nanos, the domain
// interned once), and accounts covered by an AccountDeriver exist only
// implicitly — a pristine account is a pure function of its address, so it
// is materialized into a shard row the first time something actually
// mutates it (a delivery, a failed login, a state change). Reads and
// correct-password logins on pristine accounts never allocate a row.
package emailprovider

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tripwire/internal/imap"
)

// State is an account's lifecycle state.
type State int

const (
	// Active accounts accept logins.
	Active State = iota
	// Frozen accounts were locked by the provider for suspicious activity;
	// logins fail. (Paper Table 3's "Frozen" column.)
	Frozen
	// Deactivated accounts were shut down for sending spam.
	Deactivated
	// ResetForced accounts had a provider-forced password reset after
	// recognized compromise; the old password no longer works.
	ResetForced
)

// String names the state.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Frozen:
		return "frozen"
	case Deactivated:
		return "deactivated"
	case ResetForced:
		return "reset-forced"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// LoginEvent is one successful login, as included in the provider's
// sporadic dumps to Tripwire: "timestamp, remote IP, and method ... but does
// not disclose failed attempts" (paper §4.2).
type LoginEvent struct {
	Account string // email address
	Time    time.Time
	IP      netip.Addr
	Method  string // "IMAP", "POP3", "WEB"
}

// Forwarder receives mail forwarded off honey accounts toward Tripwire's
// own mail server.
type Forwarder func(from, to, subject, body string) error

// Errors returned by account creation.
var (
	// ErrCollision means an account with that address already exists.
	ErrCollision = errors.New("emailprovider: address already taken")
	// ErrNamingPolicy means the local part violates the provider's rules.
	ErrNamingPolicy = errors.New("emailprovider: address violates naming policy")
)

// DerivedAccount is the pristine form of an implicitly provisioned
// account: what its row would hold if it were materialized untouched.
type DerivedAccount struct {
	Name      string
	Password  string
	ForwardTo string
}

// AccountDeriver makes a honey-account population implicit: DeriveAccount
// reports whether an address is covered and, if so, its pristine account,
// as a pure function of the address. DerivedCount is how many addresses
// are covered in total. Implementations must be safe for concurrent use
// and deterministic — two calls for the same address must agree, and
// coverage may only grow.
type AccountDeriver interface {
	DeriveAccount(email string) (DerivedAccount, bool)
	DerivedCount() int64
}

// accountShards fixes the provider's lock striping width. Per-account
// invariants (password, state, brute-force counters, inbox) only ever span
// one account, so any address-stable partition preserves them; 32 shards
// keep unrelated accounts off each other's locks.
const accountShards = 32

// accountShard guards one stripe of the account table: a local-part index
// into parallel flat columns. Rows are never deleted, so a slot is a
// stable handle. versions counts mutations per row — the incremental
// checkpoint's dirty tracking.
type accountShard struct {
	mu    sync.Mutex
	index map[string]int32 // local-part → slot

	locals       []string
	names        []string
	passwords    []string
	forwards     []string
	states       []uint8
	failedSince  []int64 // UnixNano; 0 = never
	throttledTil []int64 // UnixNano; 0 = never
	failedCount  []int32
	inboxes      [][]imap.Message
	versions     []uint32
}

// insertLocked appends a row and returns its slot. Caller holds mu.
func (sh *accountShard) insertLocked(local, name, password, forwardTo string) int32 {
	slot := int32(len(sh.locals))
	sh.index[local] = slot
	sh.locals = append(sh.locals, local)
	sh.names = append(sh.names, name)
	sh.passwords = append(sh.passwords, password)
	sh.forwards = append(sh.forwards, forwardTo)
	sh.states = append(sh.states, uint8(Active))
	sh.failedSince = append(sh.failedSince, 0)
	sh.throttledTil = append(sh.throttledTil, 0)
	sh.failedCount = append(sh.failedCount, 0)
	sh.inboxes = append(sh.inboxes, nil)
	sh.versions = append(sh.versions, 1)
	return slot
}

// Provider is the simulated email service.
type Provider struct {
	domain string

	// shards stripes the account table by address hash; log is the
	// time-indexed successful-login record dumps read from.
	shards [accountShards]accountShard
	log    loginRing
	// deriver, when set, makes covered accounts implicit (see
	// AccountDeriver); explicit counts accounts created outside its
	// coverage, so NumAccounts is a lock-free sum.
	deriver  AccountDeriver
	explicit atomic.Int64
	// Cold-tier spill configuration and bookkeeping (see spill.go). Set
	// via SpillLoginLog before the first login; zero values disable the
	// tier and keep the whole log resident.
	spillDir          string
	logResidentBudget int
	spill             spillState
	// reserved local parts per the provider's naming policy. Read-only
	// after New, so lookups need no lock.
	reserved map[string]bool

	// Forward delivers forwarded copies; nil disables forwarding.
	Forward Forwarder
	// Now supplies virtual time.
	Now func() time.Time

	// Brute-force defence: more than BruteForceMax failures within
	// BruteForceWindow throttles the account for ThrottlePeriod.
	BruteForceMax    int
	BruteForceWindow time.Duration
	ThrottlePeriod   time.Duration

	// Retention bounds how far back login events are kept; dumps cannot
	// see past it. The paper lost Spring 2015 data to exactly this limit.
	Retention time.Duration

	// Metrics, when non-nil, receives login and lifecycle observations.
	// Recording is atomic-only and never changes auth decisions.
	Metrics *Metrics
}

// New returns a provider serving addresses @domain.
func New(domain string) *Provider {
	p := &Provider{
		domain:           domain,
		reserved:         map[string]bool{"admin": true, "postmaster": true, "abuse": true, "support": true, "root": true, "noreply": true},
		Now:              time.Now,
		BruteForceMax:    10,
		BruteForceWindow: time.Hour,
		ThrottlePeriod:   24 * time.Hour,
		Retention:        365 * 24 * time.Hour,
	}
	for i := range p.shards {
		p.shards[i].index = make(map[string]int32)
	}
	return p
}

// SetDeriver installs the implicit-account source. Must be called before
// the provider sees traffic; coverage growing later (the deriver extending
// its allocated range) is fine.
func (p *Provider) SetDeriver(d AccountDeriver) { p.deriver = d }

// shardFor maps a lowercased local-part to its account shard (FNV-1a over
// the full address, so the stripe layout is stable against the storage
// becoming local-part-keyed).
func (p *Provider) shardFor(local string) *accountShard {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(local); i++ {
		h ^= uint64(local[i])
		h *= 0x100000001b3
	}
	h ^= '@'
	h *= 0x100000001b3
	for i := 0; i < len(p.domain); i++ {
		h ^= uint64(p.domain[i])
		h *= 0x100000001b3
	}
	return &p.shards[h&(accountShards-1)]
}

// Domain returns the provider's mail domain.
func (p *Provider) Domain() string { return p.domain }

// localOf splits a lowercased address under the provider's domain into its
// local part; ok is false for foreign addresses.
func (p *Provider) localOf(email string) (string, bool) {
	email = strings.ToLower(email)
	local, dom, found := strings.Cut(email, "@")
	if !found || dom != p.domain {
		return "", false
	}
	return local, true
}

// derive consults the deriver for the pristine account of an address.
func (p *Provider) derive(local string) (DerivedAccount, bool) {
	if p.deriver == nil {
		return DerivedAccount{}, false
	}
	return p.deriver.DeriveAccount(local + "@" + p.domain)
}

// CreateAccount provisions an account, applying the collision and
// naming-policy checks the paper describes: "the corresponding accounts
// unless they collided with a pre-existing account or violated the
// provider's naming policies." Creating an address the deriver covers
// materializes it with the supplied name and password (and no forwarding)
// — exactly the state an eager provisioning pass would have left.
func (p *Provider) CreateAccount(email, fullName, password string) error {
	email = strings.ToLower(email)
	local, ok := p.localOf(email)
	if !ok {
		return fmt.Errorf("emailprovider: %q is not an address under %s", email, p.domain)
	}
	if len(local) < 3 || len(local) > 64 || p.reserved[local] {
		return ErrNamingPolicy
	}
	for i := 0; i < len(local); i++ {
		c := local[i]
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '.' || c == '_' || c == '-') {
			return ErrNamingPolicy
		}
	}
	_, covered := p.derive(local)
	sh := p.shardFor(local)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.index[local]; dup {
		return ErrCollision
	}
	sh.insertLocked(local, fullName, password, "")
	if !covered {
		p.explicit.Add(1)
	}
	return nil
}

// lookup returns the materialized slot for email with its shard locked;
// the caller must unlock sh.mu. slot is -1 when the address has no row
// (it may still exist implicitly — callers consult derive).
func (p *Provider) lookup(email string) (local string, slot int32, sh *accountShard) {
	local, ok := p.localOf(email)
	if !ok {
		sh = &p.shards[0]
		sh.mu.Lock()
		return "", -1, sh
	}
	sh = p.shardFor(local)
	sh.mu.Lock()
	if s, found := sh.index[local]; found {
		return local, s, sh
	}
	return local, -1, sh
}

// materializeLocked turns an implicit pristine account into a shard row.
// Caller holds sh.mu and has verified the address is covered and absent.
func (sh *accountShard) materializeLocked(local string, d DerivedAccount) int32 {
	return sh.insertLocked(local, d.Name, d.Password, d.ForwardTo)
}

// Exists reports whether the address has an account, materialized or
// implicit.
func (p *Provider) Exists(email string) bool {
	local, slot, sh := p.lookup(email)
	sh.mu.Unlock()
	if slot >= 0 {
		return true
	}
	if local == "" {
		return false
	}
	_, covered := p.derive(local)
	return covered
}

// NumAccounts returns the number of provisioned accounts — every address
// the deriver covers plus every explicitly created one. Lock-free: the
// obs gauge samples it on every scrape.
func (p *Provider) NumAccounts() int {
	n := p.explicit.Load()
	if p.deriver != nil {
		n += p.deriver.DerivedCount()
	}
	return int(n)
}

// mutate runs fn against the account's row, materializing a covered
// implicit account first, and bumps the row version when fn reports a
// change. It returns false when the address has no account at all.
func (p *Provider) mutate(email string, fn func(sh *accountShard, slot int32) (changed bool)) bool {
	local, slot, sh := p.lookup(email)
	defer sh.mu.Unlock()
	if slot < 0 {
		if local == "" {
			return false
		}
		d, covered := p.derive(local)
		if !covered {
			return false
		}
		slot = sh.materializeLocked(local, d)
	}
	if fn(sh, slot) {
		sh.versions[slot]++
	}
	return true
}

// SetForwarding configures mail forwarding for email to target. Forwarding
// addresses are visible in the web interface, so Tripwire points them at
// innocuous domains it controls (paper §4.2).
func (p *Provider) SetForwarding(email, target string) error {
	ok := p.mutate(email, func(sh *accountShard, slot int32) bool {
		if sh.forwards[slot] == target {
			return false
		}
		sh.forwards[slot] = target
		return true
	})
	if !ok {
		return fmt.Errorf("emailprovider: no account %q", email)
	}
	return nil
}

// ForwardingOf returns the forwarding target for email, if any. Implicit
// accounts report their derived target without materializing.
func (p *Provider) ForwardingOf(email string) (string, bool) {
	local, slot, sh := p.lookup(email)
	if slot >= 0 {
		fwd := sh.forwards[slot]
		sh.mu.Unlock()
		return fwd, fwd != ""
	}
	sh.mu.Unlock()
	if local == "" {
		return "", false
	}
	if d, covered := p.derive(local); covered && d.ForwardTo != "" {
		return d.ForwardTo, true
	}
	return "", false
}

// State returns the account's lifecycle state.
func (p *Provider) State(email string) (State, bool) {
	local, slot, sh := p.lookup(email)
	if slot >= 0 {
		st := State(sh.states[slot])
		sh.mu.Unlock()
		return st, true
	}
	sh.mu.Unlock()
	if local == "" {
		return Active, false
	}
	if _, covered := p.derive(local); covered {
		return Active, true
	}
	return Active, false
}

// Deliver accepts a message addressed to a provider account: it is stored
// in the account's inbox and, when forwarding is configured, relayed to the
// Tripwire mail server. Implements webgen.Mailer.
func (p *Provider) Deliver(from, to, subject, body string) error {
	var fwd string
	var deactivated bool
	ok := p.mutate(to, func(sh *accountShard, slot int32) bool {
		sh.inboxes[slot] = append(sh.inboxes[slot], imap.Message{From: from, Subject: subject, Body: body})
		fwd = sh.forwards[slot]
		deactivated = State(sh.states[slot]) == Deactivated
		return true
	})
	if !ok {
		return fmt.Errorf("emailprovider: no mailbox %q", to)
	}
	if fwd != "" && p.Forward != nil && !deactivated {
		return p.Forward(from, fwd, subject, body)
	}
	return nil
}

// Send implements webgen.Mailer so a Universe can deliver straight into
// provider mailboxes.
func (p *Provider) Send(from, to, subject, body string) error {
	return p.Deliver(from, to, subject, body)
}

// Inbox returns a copy of the account's stored messages.
func (p *Provider) Inbox(email string) []imap.Message {
	_, slot, sh := p.lookup(email)
	defer sh.mu.Unlock()
	if slot < 0 {
		return nil
	}
	inbox := sh.inboxes[slot]
	if len(inbox) == 0 {
		return nil
	}
	out := make([]imap.Message, len(inbox))
	copy(out, inbox)
	return out
}

// login is the shared auth path; method labels the access channel.
func (p *Provider) login(email, password string, remote netip.Addr, method string) (string, error) {
	now := p.Now()
	local, slot, sh := p.lookup(email)
	if slot < 0 {
		d, covered := DerivedAccount{}, false
		if local != "" {
			d, covered = p.derive(local)
		}
		if !covered {
			sh.mu.Unlock()
			if p.Metrics != nil {
				p.Metrics.authFailures.Inc()
			}
			return "", imap.ErrAuthFailed
		}
		if password == d.Password {
			// A correct-password login on a pristine account mutates
			// nothing (its failure counters are already zero), so it
			// succeeds without materializing a row.
			sh.mu.Unlock()
			p.log.append(LoginEvent{Account: local + "@" + p.domain, Time: now, IP: remote, Method: method})
			p.maybeSpill()
			p.Metrics.loginOK(method)
			return local + "@" + p.domain, nil
		}
		// Wrong password: the brute-force counters are about to move, so
		// the account becomes real.
		slot = sh.materializeLocked(local, d)
	}
	defer sh.mu.Unlock()
	if t := sh.throttledTil[slot]; t != 0 && now.Before(time.Unix(0, t)) {
		if p.Metrics != nil {
			p.Metrics.throttled.Inc()
		}
		return "", imap.ErrThrottled
	}
	st := State(sh.states[slot])
	if st == Frozen || st == Deactivated {
		if p.Metrics != nil {
			p.Metrics.lockedOut.Inc()
		}
		return "", imap.ErrAccountFrozen
	}
	if st == ResetForced || sh.passwords[slot] != password {
		// Track failures for the brute-force defence. Failed attempts are
		// never disclosed in dumps.
		if fs := sh.failedSince[slot]; fs == 0 || now.Sub(time.Unix(0, fs)) > p.BruteForceWindow {
			sh.failedSince[slot] = now.UnixNano()
			sh.failedCount[slot] = 0
		}
		sh.failedCount[slot]++
		if int(sh.failedCount[slot]) > p.BruteForceMax {
			sh.throttledTil[slot] = now.Add(p.ThrottlePeriod).UnixNano()
		}
		sh.versions[slot]++
		if p.Metrics != nil {
			p.Metrics.authFailures.Inc()
		}
		return "", imap.ErrAuthFailed
	}
	if sh.failedCount[slot] != 0 {
		sh.failedCount[slot] = 0
		sh.versions[slot]++
	}
	p.log.append(LoginEvent{Account: local + "@" + p.domain, Time: now, IP: remote, Method: method})
	p.maybeSpill()
	p.Metrics.loginOK(method)
	return local + "@" + p.domain, nil
}

// Login implements imap.Backend.
func (p *Provider) Login(user, pass string, remote netip.Addr) (imap.Session, error) {
	email, err := p.login(user, pass, remote, "IMAP")
	if err != nil {
		return nil, err
	}
	return &session{p: p, email: email}, nil
}

// methodBackend is an imap.Backend view of the provider that records a
// different access method in the login log (e.g. POP3 front ends).
type methodBackend struct {
	p      *Provider
	method string
}

// Login implements imap.Backend with the wrapped method label.
func (b methodBackend) Login(user, pass string, remote netip.Addr) (imap.Session, error) {
	email, err := b.p.login(user, pass, remote, b.method)
	if err != nil {
		return nil, err
	}
	return &session{p: b.p, email: email}, nil
}

// POPBackend returns a mailbox backend whose successful logins are logged
// with method "POP3"; the POP3 server front end uses it.
func (p *Provider) POPBackend() imap.Backend { return methodBackend{p: p, method: "POP3"} }

// WebLogin authenticates through the provider's web interface; Tripwire's
// own control-account logins use this method.
func (p *Provider) WebLogin(email, password string, remote netip.Addr) error {
	_, err := p.login(email, password, remote, "WEB")
	return err
}

// POPLogin authenticates via POP3 (some attacker tooling uses it).
func (p *Provider) POPLogin(email, password string, remote netip.Addr) error {
	_, err := p.login(email, password, remote, "POP3")
	return err
}

// session implements imap.Session over a provider account. It holds the
// address, not a row: a pristine account has no row yet, and re-resolving
// per operation keeps the session valid if one materializes mid-session.
type session struct {
	p        *Provider
	email    string
	selected bool
}

func (s *session) Select(mailbox string) (int, error) {
	if !strings.EqualFold(mailbox, "INBOX") {
		return 0, fmt.Errorf("emailprovider: no mailbox %q", mailbox)
	}
	s.selected = true
	_, slot, sh := s.p.lookup(s.email)
	defer sh.mu.Unlock()
	if slot < 0 {
		return 0, nil // pristine: empty inbox
	}
	return len(sh.inboxes[slot]), nil
}

func (s *session) Fetch(seq int) (imap.Message, error) {
	_, slot, sh := s.p.lookup(s.email)
	defer sh.mu.Unlock()
	if !s.selected || slot < 0 || seq < 1 || seq > len(sh.inboxes[slot]) {
		return imap.Message{}, fmt.Errorf("emailprovider: no message %d", seq)
	}
	return sh.inboxes[slot][seq-1], nil
}

func (s *session) Logout() error { return nil }
