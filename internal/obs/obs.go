// Package obs is Tripwire's zero-dependency observability layer: a metrics
// registry of sharded atomic counters, gauges, and fixed-bucket histograms,
// plus lightweight stage spans, built entirely on the standard library.
//
// The paper's pilot ran unattended for a year and its operators could only
// reconstruct funnel health from logs after the fact; obs gives a
// production-scale reproduction live telemetry on every pipeline stage
// without perturbing it. Two properties are load-bearing:
//
//   - Hot-path cost is near zero. Recording is atomic adds only — no locks,
//     no maps, no allocation (pinned by the AllocsPerRun budgets in
//     obs_test.go). Counters stripe across cache-line-padded shards so
//     heavily contended counts (page loads across 8 crawl workers) do not
//     serialize on one cache line.
//
//   - Metrics are observation-only. No instrument draws randomness, takes a
//     simulation lock, or feeds anything back into the pipeline, so a run
//     with a live Registry attached is bit-identical to one without
//     (TestWorkerCountInvariance runs with one attached).
//
// Every instrument method and Registry constructor is nil-receiver-safe:
// a nil *Registry hands out nil instruments whose methods are no-ops, so
// pipeline code records unconditionally and disabled telemetry costs one
// predictable branch.
//
// Read side: Snapshot returns a JSON-ready struct, WriteProm encodes the
// Prometheus text exposition format, and Handler/Serve expose both over
// HTTP (the -metrics-addr flag on cmd/tripwire and cmd/tripwire-crawl).
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// numShards stripes each counter; must be a power of two. 16 shards cover
// any worker count the crawl engine realistically runs with.
const numShards = 16

// shard is one cache-line-padded counter stripe. The padding keeps two
// shards from sharing a 64-byte line, so concurrent writers on different
// shards never false-share.
type shard struct {
	v atomic.Uint64
	_ [56]byte
}

// shardIndex picks a stripe for the calling goroutine. Goroutine stacks
// live in distinct allocations, so the address of a stack byte is a cheap,
// allocation-free discriminator that spreads concurrent writers across
// stripes without any runtime hooks. The >>10 skips the low bits that vary
// within one frame.
func shardIndex() int {
	var b byte
	return int((uintptr(unsafe.Pointer(&b)) >> 10) & (numShards - 1))
}

// Counter is a monotonically increasing, striped atomic counter.
// The zero value is NOT usable; obtain counters from a Registry. A nil
// *Counter is a no-op, which is how disabled telemetry stays free.
type Counter struct {
	shards [numShards]shard
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. It is lock-free and allocation-free.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// Value sums the stripes.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous int64 value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value loads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bounds are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
// Observe is lock-free: one atomic add for the bucket, one for the count,
// and a CAS loop for the float64 sum.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (~10) and a scan beats a branchy
	// binary search at this size — and never allocates.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DurationBuckets are the default bounds (seconds) for stage spans: wide
// enough for a sub-millisecond cache hit and a multi-minute paper-scale
// wave.
var DurationBuckets = []float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.25, 1, 5, 30, 120}

// Span measures a pipeline stage: a histogram of stage durations plus a
// gauge of currently active executions. Start/End are allocation-free
// (SpanTimer is a value).
type Span struct {
	active *Gauge
	dur    *Histogram
}

// Start begins one execution of the stage.
func (s *Span) Start() SpanTimer {
	if s == nil {
		return SpanTimer{}
	}
	s.active.Add(1)
	return SpanTimer{s: s, start: time.Now()}
}

// SpanTimer is one in-flight stage execution; call End exactly once.
type SpanTimer struct {
	s     *Span
	start time.Time
}

// End records the stage duration and marks the execution finished.
func (t SpanTimer) End() {
	if t.s == nil {
		return
	}
	t.s.active.Add(-1)
	t.s.dur.ObserveDuration(time.Since(t.start))
}

// kind discriminates metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one exposed time series within a family: a label suffix (empty
// or `{label="value"}`) and a read function.
type series struct {
	labels string
	value  func() float64
}

// family is one registered metric family.
type family struct {
	name   string
	help   string
	kind   kind
	series []series     // counters and gauges
	hists  []*Histogram // histograms (label-free)
}

// Registry holds registered instruments. Registration takes a mutex;
// recording never does. A nil *Registry returns nil instruments from every
// constructor, making disabled telemetry a chain of no-ops.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	objects  map[string]any // instrument identity for idempotent re-registration
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family), objects: make(map[string]any)}
}

// register installs (or finds) a family, panicking on kind mismatch —
// colliding metric names of different kinds are a programming error.
func (r *Registry) register(name, help string, k kind) *family {
	f, ok := r.byName[name]
	if ok {
		if f.kind != k {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, k, f.kind))
		}
		return f
	}
	f = &family{name: name, help: help, kind: k}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers (idempotently, by name) and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, kindCounter)
	if c, ok := r.objects[name].(*Counter); ok {
		return c
	}
	c := &Counter{}
	r.objects[name] = c
	f.series = append(f.series, series{value: func() float64 { return float64(c.Value()) }})
	return c
}

// CounterFunc registers a counter family whose value is read from fn at
// collection time. Use it to expose an always-on package counter (e.g. a
// cache's internal hit count) without double-counting on the hot path.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, kindCounter)
	if _, dup := r.objects[name]; dup {
		return
	}
	r.objects[name] = fn
	f.series = append(f.series, series{value: func() float64 { return float64(fn()) }})
}

// CounterVec registers a counter family with one fixed label and a closed
// value set, e.g. crawler termination codes. Unknown values return nil
// counters (no-ops) rather than growing the set at runtime — the series
// inventory stays static and documentable.
type CounterVec struct {
	byValue map[string]*Counter
}

// CounterVec registers the family and pre-creates one counter per value.
func (r *Registry) CounterVec(name, help, label string, values ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, kindCounter)
	if v, ok := r.objects[name].(*CounterVec); ok {
		return v
	}
	v := &CounterVec{byValue: make(map[string]*Counter, len(values))}
	r.objects[name] = v
	for _, val := range values {
		c := &Counter{}
		v.byValue[val] = c
		cc := c
		f.series = append(f.series, series{
			labels: fmt.Sprintf("{%s=%q}", label, val),
			value:  func() float64 { return float64(cc.Value()) },
		})
	}
	return v
}

// With returns the counter for one label value (resolve once at wiring
// time, not on the hot path). Unknown values and nil receivers return nil.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	return v.byValue[value]
}

// Gauge registers (idempotently) and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, kindGauge)
	if g, ok := r.objects[name].(*Gauge); ok {
		return g
	}
	g := &Gauge{}
	r.objects[name] = g
	f.series = append(f.series, series{value: func() float64 { return float64(g.Value()) }})
	return g
}

// GaugeFunc registers a gauge read from fn at collection time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, kindGauge)
	if _, dup := r.objects[name]; dup {
		return
	}
	r.objects[name] = fn
	f.series = append(f.series, series{value: func() float64 { return float64(fn()) }})
}

// Histogram registers (idempotently) and returns a histogram with the
// given ascending upper bounds (nil means DurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, kindHistogram)
	if h, ok := r.objects[name].(*Histogram); ok {
		return h
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	r.objects[name] = h
	f.hists = append(f.hists, h)
	return h
}

// Span registers a stage span: <name>_duration_seconds (histogram) and
// <name>_active (gauge). Document both derived series under the base name.
func (r *Registry) Span(name, help string, bounds []float64) *Span {
	if r == nil {
		return nil
	}
	return &Span{
		active: r.Gauge(name+"_active", help+" (currently executing)"),
		dur:    r.Histogram(name+"_duration_seconds", help+" (stage duration, seconds)", bounds),
	}
}
