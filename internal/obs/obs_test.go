package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("tw_test_total", "test counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("tw_test_total", "test counter"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := New()
	g := r.Gauge("tw_gauge", "test gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("tw_hist", "test histogram", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	st := histStats(h)
	if st.Count != 5 {
		t.Fatalf("count = %d, want 5", st.Count)
	}
	if st.Sum != 556.5 {
		t.Fatalf("sum = %v, want 556.5", st.Sum)
	}
	// Cumulative: <=1 catches 0.5 and 1; <=10 adds 5; <=100 adds 50; +Inf all.
	wantCum := []uint64{2, 3, 4, 5}
	for i, b := range st.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d (le=%s) = %d, want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
}

func TestCounterVec(t *testing.T) {
	r := New()
	v := r.CounterVec("tw_outcomes_total", "outcomes", "code", "ok", "fail")
	v.With("ok").Add(3)
	v.With("fail").Inc()
	v.With("unknown").Inc() // nil counter: must not panic, must not count
	snap := r.Snapshot()
	if got := snap.Counters[`tw_outcomes_total{code="ok"}`]; got != 3 {
		t.Fatalf(`ok series = %v, want 3`, got)
	}
	if got := snap.Counters[`tw_outcomes_total{code="fail"}`]; got != 1 {
		t.Fatalf(`fail series = %v, want 1`, got)
	}
	if len(snap.Counters) != 2 {
		t.Fatalf("snapshot has %d counter series, want 2: %v", len(snap.Counters), snap.Counters)
	}
}

func TestFuncInstruments(t *testing.T) {
	r := New()
	n := uint64(11)
	r.CounterFunc("tw_func_total", "func counter", func() uint64 { return n })
	r.GaugeFunc("tw_func_gauge", "func gauge", func() int64 { return -2 })
	snap := r.Snapshot()
	if snap.Counters["tw_func_total"] != 11 || snap.Gauges["tw_func_gauge"] != -2 {
		t.Fatalf("func instruments wrong: %+v", snap)
	}
}

func TestSpan(t *testing.T) {
	r := New()
	sp := r.Span("tw_stage", "a stage", nil)
	timer := sp.Start()
	snap := r.Snapshot()
	if got := snap.Gauges["tw_stage_active"]; got != 1 {
		t.Fatalf("active during span = %v, want 1", got)
	}
	timer.End()
	snap = r.Snapshot()
	if got := snap.Gauges["tw_stage_active"]; got != 0 {
		t.Fatalf("active after span = %v, want 0", got)
	}
	if got := snap.Histograms["tw_stage_duration_seconds"].Count; got != 1 {
		t.Fatalf("span duration count = %v, want 1", got)
	}
}

// TestNilSafety proves the disabled-telemetry path: a nil registry hands
// out nil instruments and every operation is a silent no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter counted")
	}
	r.Gauge("y", "").Set(3)
	r.Histogram("z", "", nil).Observe(1)
	r.CounterVec("v", "", "l", "a").With("a").Inc()
	r.CounterFunc("f", "", func() uint64 { return 1 })
	r.GaugeFunc("g", "", func() int64 { return 1 })
	timer := r.Span("s", "", nil).Start()
	timer.End()
	if err := r.WriteProm(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteProm: %v", err)
	}
	if snap := r.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("tw_clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("tw_clash", "")
}

// TestRegistryConcurrentHammer drives one registry from 16 writer
// goroutines while a reader snapshots and Prom-encodes concurrently; run
// under -race (make ci does) this is the data-race proof, and the final
// totals prove no update was lost to striping.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := New()
	c := r.Counter("tw_hammer_total", "hammered counter")
	vec := r.CounterVec("tw_hammer_vec_total", "hammered vec", "w", "even", "odd")
	g := r.Gauge("tw_hammer_gauge", "hammered gauge")
	h := r.Histogram("tw_hammer_seconds", "hammered histogram", nil)
	sp := r.Span("tw_hammer_stage", "hammered span", nil)

	const (
		writers = 16
		perG    = 5000
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Snapshot()
			var sb strings.Builder
			if err := r.WriteProm(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			series := "even"
			if w%2 == 1 {
				series = "odd"
			}
			vc := vec.With(series)
			for i := 0; i < perG; i++ {
				c.Inc()
				vc.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 0.001)
				timer := sp.Start()
				timer.End()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if got := c.Value(); got != writers*perG {
		t.Fatalf("counter = %d, want %d (lost updates)", got, writers*perG)
	}
	snap := r.Snapshot()
	sum := snap.Counters[`tw_hammer_vec_total{w="even"}`] + snap.Counters[`tw_hammer_vec_total{w="odd"}`]
	if sum != writers*perG {
		t.Fatalf("vec sum = %v, want %d", sum, writers*perG)
	}
	if got := g.Value(); got != writers*perG {
		t.Fatalf("gauge = %d, want %d", got, writers*perG)
	}
	if got := h.Count(); got != writers*perG {
		t.Fatalf("histogram count = %d, want %d", got, writers*perG)
	}
	if got := snap.Gauges["tw_hammer_stage_active"]; got != 0 {
		t.Fatalf("active spans after quiesce = %v, want 0", got)
	}
}

// TestAllocBudget pins the hot-path contract: recording into any
// instrument allocates nothing. A regression here would show up as new
// allocs/op in BenchmarkParallelCrawlMetrics too, but this test names the
// culprit directly.
func TestAllocBudget(t *testing.T) {
	r := New()
	c := r.Counter("tw_alloc_total", "")
	g := r.Gauge("tw_alloc_gauge", "")
	h := r.Histogram("tw_alloc_seconds", "", nil)
	sp := r.Span("tw_alloc_stage", "", nil)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(9) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(0.004) }},
		{"Histogram.ObserveDuration", func() { h.ObserveDuration(3 * time.Millisecond) }},
		{"Span.Start+End", func() { sp.Start().End() }},
	}
	for _, tc := range cases {
		if got := testing.AllocsPerRun(200, tc.fn); got != 0 {
			t.Errorf("%s allocates %.1f/op, want 0", tc.name, got)
		}
	}
}
