package obs

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with one instrument of every kind and
// deterministic recorded values (exact binary floats only, no wall-clock
// spans), so its text encoding is byte-stable across platforms.
func goldenRegistry() *Registry {
	r := New()
	r.Counter("tw_requests_total", "Total requests.").Add(42)
	vec := r.CounterVec("tw_outcomes_total", "Registration outcomes by code.", "code", "ok", "fail")
	vec.With("ok").Add(3)
	vec.With("fail").Inc()
	r.Gauge("tw_active_workers", "Crawl workers currently busy.").Set(8)
	h := r.Histogram("tw_wave_seconds", "Wave latency.", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 8} {
		h.Observe(v)
	}
	return r
}

func TestWritePromGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	const goldenPath = "testdata/golden.prom"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("Prometheus text encoding drifted from %s (set UPDATE_GOLDEN=1 to regenerate).\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, sb.String())
	}
	if snap.Counters["tw_requests_total"] != 42 {
		t.Fatalf("round-tripped counter = %v, want 42", snap.Counters["tw_requests_total"])
	}
	hist, ok := snap.Histograms["tw_wave_seconds"]
	if !ok {
		t.Fatal("histogram missing from round-tripped snapshot")
	}
	if hist.Count != 4 || hist.Sum != 13 {
		t.Fatalf("histogram stats = count %d sum %v, want 4 / 13", hist.Count, hist.Sum)
	}
	last := hist.Buckets[len(hist.Buckets)-1]
	if last.LE != "+Inf" || last.Count != 4 {
		t.Fatalf("+Inf bucket = %+v, want le=+Inf count=4", last)
	}
}
