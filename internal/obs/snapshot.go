package obs

import (
	"encoding/json"
	"io"
	"strconv"
)

// Snapshot is a point-in-time copy of every registered metric, shaped for
// JSON. Keys are full series names including any label suffix
// (`tripwire_crawler_outcomes_total{code="ok_submission"}`).
type Snapshot struct {
	Counters   map[string]float64        `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// HistogramStats summarizes one histogram.
type HistogramStats struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Bucket is one cumulative histogram bucket; LE is the upper bound
// ("+Inf" for the catch-all) rendered as a string so the JSON stays valid.
type Bucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// histStats copies a histogram's state. Buckets are cumulative, matching
// the Prometheus exposition convention.
func histStats(h *Histogram) HistogramStats {
	st := HistogramStats{Count: h.Count(), Sum: h.Sum()}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		st.Buckets = append(st.Buckets, Bucket{LE: le, Count: cum})
	}
	return st
}

// Snapshot collects every registered metric. It takes the registration
// mutex (collection is off the hot path) and reads instrument values with
// the same atomics writers use, so it is safe to call while 16 goroutines
// hammer the instruments.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]float64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramStats),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		switch f.kind {
		case kindCounter:
			for _, s := range f.series {
				snap.Counters[f.name+s.labels] = s.value()
			}
		case kindGauge:
			for _, s := range f.series {
				snap.Gauges[f.name+s.labels] = s.value()
			}
		case kindHistogram:
			for _, h := range f.hists {
				snap.Histograms[f.name] = histStats(h)
			}
		}
	}
	return snap
}

// WriteJSON writes the indented JSON snapshot (the -metrics-out format for
// non-.prom paths).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// formatFloat renders a float the way the Prometheus text format expects:
// shortest representation that round-trips ("42", "0.025", "1e+06").
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
