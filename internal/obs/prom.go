package obs

import (
	"bufio"
	"io"
)

// WriteProm encodes every registered metric in the Prometheus text
// exposition format (version 0.0.4): per family a # HELP and # TYPE line,
// then one line per series. Families appear in registration order and a
// family's series in creation order, so output is deterministic — the
// golden-file test depends on that.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		switch f.kind {
		case kindCounter, kindGauge:
			for _, s := range f.series {
				bw.WriteString(f.name)
				bw.WriteString(s.labels)
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(s.value()))
				bw.WriteByte('\n')
			}
		case kindHistogram:
			for _, h := range f.hists {
				st := histStats(h)
				for _, b := range st.Buckets {
					bw.WriteString(f.name)
					bw.WriteString(`_bucket{le="`)
					bw.WriteString(b.LE)
					bw.WriteString(`"} `)
					bw.WriteString(formatFloat(float64(b.Count)))
					bw.WriteByte('\n')
				}
				bw.WriteString(f.name)
				bw.WriteString("_sum ")
				bw.WriteString(formatFloat(st.Sum))
				bw.WriteByte('\n')
				bw.WriteString(f.name)
				bw.WriteString("_count ")
				bw.WriteString(formatFloat(float64(st.Count)))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}
