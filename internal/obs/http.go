package obs

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
)

// Handler serves the registry over HTTP:
//
//	/metrics       Prometheus text exposition format
//	/metrics.json  indented JSON snapshot
//	/healthz       200 ok (liveness for schedulers)
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Serve starts a metrics listener on addr (e.g. ":9200" or
// "127.0.0.1:0"). It returns the bound address and a shutdown function.
// The server runs on a background goroutine; serving errors after shutdown
// are discarded.
func Serve(addr string, r *Registry) (boundAddr string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

// WriteFile dumps the registry to path: Prometheus text for *.prom paths,
// JSON otherwise. "-" writes the Prometheus text to stdout. This is the
// -metrics-out exit dump.
func WriteFile(path string, r *Registry) error {
	if path == "-" {
		return r.WriteProm(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".prom") {
		err = r.WriteProm(f)
	} else {
		err = r.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
