package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func httpTestRegistry() *Registry {
	r := New()
	r.Counter("tw_http_test_total", "test counter").Add(7)
	r.Gauge("tw_http_test_gauge", "test gauge").Set(3)
	return r
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(httpTestRegistry()))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q lacks exposition version", ctype)
	}
	if !strings.Contains(body, "tw_http_test_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	body, ctype = get("/metrics.json")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/metrics.json content type %q", ctype)
	}
	if !strings.Contains(body, `"tw_http_test_gauge": 3`) {
		t.Errorf("/metrics.json missing gauge:\n%s", body)
	}

	if body, _ = get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %q", body)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	addr, shutdown, err := Serve("127.0.0.1:0", httpTestRegistry())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET live server: %v", err)
	}
	resp.Body.Close()
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still reachable after shutdown")
	}
}

func TestWriteFileFormats(t *testing.T) {
	dir := t.TempDir()
	r := httpTestRegistry()

	prom := filepath.Join(dir, "m.prom")
	if err := WriteFile(prom, r); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(prom)
	if !strings.Contains(string(data), "# TYPE tw_http_test_total counter") {
		t.Errorf(".prom file is not Prometheus text:\n%s", data)
	}

	js := filepath.Join(dir, "m.json")
	if err := WriteFile(js, r); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(js)
	if !strings.HasPrefix(strings.TrimSpace(string(data)), "{") {
		t.Errorf("non-.prom file is not JSON:\n%s", data)
	}
}
