// Package hook is the outbound webhook dispatcher of the study service:
// rules match event kinds to destination URLs, payloads are signed with
// HMAC-SHA256, and delivery is retried with exponential backoff over a
// bounded per-endpoint queue, so one slow or dead subscriber can neither
// backpressure the event producer nor starve the other endpoints. The
// rule/trigger shape follows the adnanh/webhook model; configuration is
// env-only (see RulesFromEnv).
package hook

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Rule routes matching events to one endpoint.
type Rule struct {
	// Name identifies the rule (the <NAME> of its env variables); it is
	// echoed in the X-Tripwire-Hook request header.
	Name string
	// URL receives matching events as JSON POSTs.
	URL string
	// Secret, when non-empty, signs each payload: the X-Tripwire-Signature
	// header carries "sha256=" + hex(HMAC-SHA256(secret, body)).
	Secret string
	// Kinds filters event kinds ("detection", "wave", "study.done", ...).
	// Empty — or containing "*" — matches every kind.
	Kinds []string
}

// Matches reports whether the rule wants events of kind.
func (r *Rule) Matches(kind string) bool {
	if len(r.Kinds) == 0 {
		return true
	}
	for _, k := range r.Kinds {
		if k == "*" || k == kind {
			return true
		}
	}
	return false
}

// Options tunes a Dispatcher. The zero value gives production defaults;
// tests shrink the backoff to keep the retry path fast.
type Options struct {
	// Client performs the deliveries; nil uses a client with a 10 s
	// request timeout.
	Client *http.Client
	// QueueSize bounds each endpoint's pending-delivery queue; when full,
	// new deliveries for that endpoint are dropped (and counted) instead
	// of blocking the producer. Default 256.
	QueueSize int
	// MaxAttempts is how many times one delivery is tried before it is
	// recorded failed. Default 5.
	MaxAttempts int
	// BackoffBase is the sleep before the first retry; each further retry
	// doubles it up to BackoffMax. Defaults 100 ms and 5 s.
	BackoffBase, BackoffMax time.Duration
	// Observe, when non-nil, receives one call per delivery outcome step:
	// "delivered", "retry", "failed", "dropped". The service layer bridges
	// this to its metrics registry.
	Observe func(outcome string)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Client == nil {
		out.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if out.QueueSize <= 0 {
		out.QueueSize = 256
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 5
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = 100 * time.Millisecond
	}
	if out.BackoffMax <= 0 {
		out.BackoffMax = 5 * time.Second
	}
	return out
}

// EndpointStats is the delivery accounting of one rule's endpoint.
type EndpointStats struct {
	Queued    int64 `json:"queued"`    // accepted into the queue
	Delivered int64 `json:"delivered"` // 2xx acknowledged
	Retries   int64 `json:"retries"`   // individual retry attempts
	Failed    int64 `json:"failed"`    // gave up after MaxAttempts
	Dropped   int64 `json:"dropped"`   // rejected on a full queue
}

// endpoint is one rule plus its bounded queue and worker.
type endpoint struct {
	rule Rule
	q    chan delivery

	queued, delivered, retries, failed, dropped atomic.Int64
}

type delivery struct {
	id   uint64
	kind string
	body []byte
}

// Dispatcher fans events out to every matching rule's endpoint. Dispatch
// never blocks; each endpoint drains its own queue on its own goroutine.
type Dispatcher struct {
	opts      Options
	endpoints []*endpoint
	nextID    atomic.Uint64
	stop      chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
}

// NewDispatcher starts one delivery worker per rule.
func NewDispatcher(rules []Rule, opts Options) *Dispatcher {
	d := &Dispatcher{opts: opts.withDefaults(), stop: make(chan struct{})}
	for _, r := range rules {
		e := &endpoint{rule: r, q: make(chan delivery, d.opts.QueueSize)}
		d.endpoints = append(d.endpoints, e)
		d.wg.Add(1)
		go d.work(e)
	}
	return d
}

// Rules returns the configured rules, in registration order.
func (d *Dispatcher) Rules() []Rule {
	out := make([]Rule, len(d.endpoints))
	for i, e := range d.endpoints {
		out[i] = e.rule
	}
	return out
}

// Dispatch enqueues body for every rule matching kind. It never blocks: a
// full endpoint queue drops the delivery for that endpoint and counts it,
// so a stuck subscriber costs its own events only.
func (d *Dispatcher) Dispatch(kind string, body []byte) {
	if len(d.endpoints) == 0 {
		return
	}
	id := d.nextID.Add(1)
	for _, e := range d.endpoints {
		if !e.rule.Matches(kind) {
			continue
		}
		select {
		case e.q <- delivery{id: id, kind: kind, body: body}:
			e.queued.Add(1)
		default:
			e.dropped.Add(1)
			d.observe("dropped")
		}
	}
}

// Close stops the dispatcher: pending retries are abandoned, queued but
// undelivered events are recorded failed, and Close returns once every
// worker has exited. Dispatch calls racing Close may be dropped.
func (d *Dispatcher) Close() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
}

// Stats returns per-rule delivery accounting, keyed by rule name.
func (d *Dispatcher) Stats() map[string]EndpointStats {
	out := make(map[string]EndpointStats, len(d.endpoints))
	for _, e := range d.endpoints {
		out[e.rule.Name] = EndpointStats{
			Queued:    e.queued.Load(),
			Delivered: e.delivered.Load(),
			Retries:   e.retries.Load(),
			Failed:    e.failed.Load(),
			Dropped:   e.dropped.Load(),
		}
	}
	return out
}

func (d *Dispatcher) observe(outcome string) {
	if d.opts.Observe != nil {
		d.opts.Observe(outcome)
	}
}

// work drains one endpoint's queue until the dispatcher closes.
func (d *Dispatcher) work(e *endpoint) {
	defer d.wg.Done()
	for {
		select {
		case <-d.stop:
			// Drain what is queued into the failed count so Stats balances.
			for {
				select {
				case <-e.q:
					e.failed.Add(1)
				default:
					return
				}
			}
		case del := <-e.q:
			d.deliver(e, del)
		}
	}
}

// deliver attempts one delivery with exponential backoff between tries.
func (d *Dispatcher) deliver(e *endpoint, del delivery) {
	backoff := d.opts.BackoffBase
	for attempt := 1; ; attempt++ {
		if d.post(e, del, attempt) {
			e.delivered.Add(1)
			d.observe("delivered")
			return
		}
		if attempt >= d.opts.MaxAttempts {
			e.failed.Add(1)
			d.observe("failed")
			return
		}
		e.retries.Add(1)
		d.observe("retry")
		select {
		case <-time.After(backoff):
		case <-d.stop:
			e.failed.Add(1)
			return
		}
		if backoff *= 2; backoff > d.opts.BackoffMax {
			backoff = d.opts.BackoffMax
		}
	}
}

// post performs one signed POST; true means the endpoint acknowledged
// with a 2xx status.
func (d *Dispatcher) post(e *endpoint, del delivery, attempt int) bool {
	req, err := http.NewRequest(http.MethodPost, e.rule.URL, bytes.NewReader(del.body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tripwire-Hook", e.rule.Name)
	req.Header.Set("X-Tripwire-Event", del.kind)
	req.Header.Set("X-Tripwire-Delivery", strconv.FormatUint(del.id, 10))
	req.Header.Set("X-Tripwire-Attempt", strconv.Itoa(attempt))
	if e.rule.Secret != "" {
		req.Header.Set("X-Tripwire-Signature", Sign(e.rule.Secret, del.body))
	}
	resp, err := d.opts.Client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// Sign computes the payload signature header value:
// "sha256=" + hex(HMAC-SHA256(secret, body)).
func Sign(secret string, body []byte) string {
	mac := hmac.New(sha256.New, []byte(secret))
	mac.Write(body)
	return "sha256=" + hex.EncodeToString(mac.Sum(nil))
}

// Verify reports whether header is a valid signature of body under
// secret, in constant time. Receivers use it to authenticate deliveries.
func Verify(secret string, body []byte, header string) bool {
	return hmac.Equal([]byte(Sign(secret, body)), []byte(header))
}

// envPrefix introduces every hook rule variable:
// TRIPWIRE_HOOK_<NAME>_URL (required), _SECRET, _EVENTS (comma-separated
// kinds; empty or "*" means all).
const envPrefix = "TRIPWIRE_HOOK_"

// RulesFromEnv parses hook rules out of an environment list (os.Environ
// form). Rules are returned sorted by name so the dispatcher's endpoint
// order — and with it Stats and test output — is deterministic. A _SECRET
// or _EVENTS with no matching _URL is an error: a silently ignored
// misspelling would disable the endpoint the operator thought was armed.
func RulesFromEnv(environ []string) ([]Rule, error) {
	urls := map[string]string{}
	secrets := map[string]string{}
	events := map[string]string{}
	for _, kv := range environ {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || !strings.HasPrefix(key, envPrefix) {
			continue
		}
		rest := strings.TrimPrefix(key, envPrefix)
		switch {
		case strings.HasSuffix(rest, "_URL"):
			urls[strings.TrimSuffix(rest, "_URL")] = val
		case strings.HasSuffix(rest, "_SECRET"):
			secrets[strings.TrimSuffix(rest, "_SECRET")] = val
		case strings.HasSuffix(rest, "_EVENTS"):
			events[strings.TrimSuffix(rest, "_EVENTS")] = val
		default:
			return nil, fmt.Errorf("hook: unrecognized variable %s (want %s<NAME>_URL, _SECRET, or _EVENTS)", key, envPrefix)
		}
	}
	for name := range secrets {
		if _, ok := urls[name]; !ok {
			return nil, fmt.Errorf("hook: %s%s_SECRET set without %s%s_URL", envPrefix, name, envPrefix, name)
		}
	}
	for name := range events {
		if _, ok := urls[name]; !ok {
			return nil, fmt.Errorf("hook: %s%s_EVENTS set without %s%s_URL", envPrefix, name, envPrefix, name)
		}
	}
	names := make([]string, 0, len(urls))
	for name := range urls {
		names = append(names, name)
	}
	sort.Strings(names)
	var rules []Rule
	for _, name := range names {
		if _, err := url.ParseRequestURI(urls[name]); err != nil {
			return nil, fmt.Errorf("hook: %s%s_URL: %w", envPrefix, name, err)
		}
		r := Rule{Name: name, URL: urls[name], Secret: secrets[name]}
		if ev := strings.TrimSpace(events[name]); ev != "" && ev != "*" {
			for _, k := range strings.Split(ev, ",") {
				if k = strings.TrimSpace(k); k != "" {
					r.Kinds = append(r.Kinds, k)
				}
			}
		}
		rules = append(rules, r)
	}
	return rules, nil
}
