package hook

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fastOpts keeps the retry path quick in tests.
func fastOpts() Options {
	return Options{BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond}
}

func TestSignGolden(t *testing.T) {
	// Pinned value: HMAC-SHA256("s3cret", `{"kind":"detection"}`).
	got := Sign("s3cret", []byte(`{"kind":"detection"}`))
	want := "sha256=c7a4c612b990ba3c41c26e6a39b19701e60886c9d5f97be18739fcce834cd16f"
	if got != want {
		t.Fatalf("Sign = %s, want %s", got, want)
	}
	if !Verify("s3cret", []byte(`{"kind":"detection"}`), got) {
		t.Fatal("Verify rejected its own signature")
	}
	if Verify("s3cret", []byte(`{"kind":"detection!"}`), got) {
		t.Fatal("Verify accepted signature of different body")
	}
	if Verify("other", []byte(`{"kind":"detection"}`), got) {
		t.Fatal("Verify accepted signature under wrong secret")
	}
}

func TestDispatchSignsAndSetsHeaders(t *testing.T) {
	type seen struct {
		body                      []byte
		sig, kind, hook, delivery string
	}
	got := make(chan seen, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		got <- seen{
			body:     body,
			sig:      r.Header.Get("X-Tripwire-Signature"),
			kind:     r.Header.Get("X-Tripwire-Event"),
			hook:     r.Header.Get("X-Tripwire-Hook"),
			delivery: r.Header.Get("X-Tripwire-Delivery"),
		}
	}))
	defer srv.Close()

	d := NewDispatcher([]Rule{{Name: "lab", URL: srv.URL, Secret: "k", Kinds: []string{"detection"}}}, fastOpts())
	defer d.Close()
	d.Dispatch("wave", []byte(`ignored`)) // kind not matched by the rule
	d.Dispatch("detection", []byte(`{"site":"a.example"}`))

	select {
	case s := <-got:
		if string(s.body) != `{"site":"a.example"}` {
			t.Fatalf("body = %q", s.body)
		}
		if !Verify("k", s.body, s.sig) {
			t.Fatalf("delivered signature %q does not verify", s.sig)
		}
		if s.kind != "detection" || s.hook != "lab" || s.delivery == "" {
			t.Fatalf("headers = %+v", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivery never arrived")
	}
	select {
	case s := <-got:
		t.Fatalf("unmatched kind was delivered: %+v", s)
	case <-time.After(50 * time.Millisecond):
	}
	st := d.Stats()["lab"]
	if st.Queued != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryBackoffFlakyEndpoint(t *testing.T) {
	var calls atomic.Int64
	done := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Fail twice, then accept.
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		close(done)
	}))
	defer srv.Close()

	d := NewDispatcher([]Rule{{Name: "flaky", URL: srv.URL}}, fastOpts())
	defer d.Close()
	d.Dispatch("study.done", []byte(`{}`))

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("delivery never succeeded; %d calls", calls.Load())
	}
	// Dispatcher counters settle after the handler responds; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := d.Stats()["flaky"]
		if st.Delivered == 1 && st.Retries == 2 && st.Failed == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v, want 1 delivered after 2 retries", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	opts := fastOpts()
	opts.MaxAttempts = 3
	d := NewDispatcher([]Rule{{Name: "dead", URL: srv.URL}}, opts)
	d.Dispatch("wave", []byte(`{}`))

	deadline := time.Now().Add(2 * time.Second)
	for d.Stats()["dead"].Failed == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("never gave up; stats = %+v", d.Stats()["dead"])
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.Close()
	if n := calls.Load(); n != 3 {
		t.Fatalf("endpoint called %d times, want 3", n)
	}
	if st := d.Stats()["dead"]; st.Retries != 2 || st.Delivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBoundedQueueDropsWithoutBlocking(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		mu.Lock()
		served++
		mu.Unlock()
	}))
	defer srv.Close()

	opts := fastOpts()
	opts.QueueSize = 2
	d := NewDispatcher([]Rule{{Name: "slow", URL: srv.URL}}, opts)

	// Worker takes one delivery and parks in the handler; two more fill the
	// queue; the rest must drop immediately rather than block this loop.
	start := time.Now()
	for i := 0; i < 10; i++ {
		d.Dispatch("wave", []byte(`{}`))
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Dispatch blocked for %v on a full queue", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for d.Stats()["slow"].Dropped == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no drops recorded; stats = %+v", d.Stats()["slow"])
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	d.Close()
	st := d.Stats()["slow"]
	if st.Queued+st.Dropped != 10 {
		t.Fatalf("queued %d + dropped %d != 10 dispatched", st.Queued, st.Dropped)
	}
	if st.Delivered+st.Failed != st.Queued {
		t.Fatalf("stats do not balance after Close: %+v", st)
	}
}

func TestCloseAbortsPendingRetry(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	opts := fastOpts()
	opts.BackoffBase = time.Hour // a retry sleep Close must interrupt
	d := NewDispatcher([]Rule{{Name: "r", URL: srv.URL}}, opts)
	d.Dispatch("wave", []byte(`{}`))

	deadline := time.Now().Add(2 * time.Second)
	for d.Stats()["r"].Retries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first attempt never failed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	closed := make(chan struct{})
	go func() { d.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a sleeping retry")
	}
}

func TestObserveCallback(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	opts := fastOpts()
	opts.Observe = func(outcome string) {
		mu.Lock()
		counts[outcome]++
		mu.Unlock()
	}
	d := NewDispatcher([]Rule{{Name: "o", URL: srv.URL}}, opts)
	d.Dispatch("wave", []byte(`{}`))
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := counts["delivered"]
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("observe counts = %v", counts)
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.Close()
}

func TestRulesFromEnv(t *testing.T) {
	rules, err := RulesFromEnv([]string{
		"PATH=/usr/bin",
		"TRIPWIRE_HOOK_LAB_URL=http://lab.example/hook",
		"TRIPWIRE_HOOK_LAB_SECRET=k1",
		"TRIPWIRE_HOOK_LAB_EVENTS=detection, study.done",
		"TRIPWIRE_HOOK_ALL_URL=http://all.example/hook",
		"TRIPWIRE_HOOK_ALL_EVENTS=*",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules: %+v", len(rules), rules)
	}
	// Sorted by name: ALL before LAB.
	if rules[0].Name != "ALL" || rules[0].Secret != "" || len(rules[0].Kinds) != 0 {
		t.Fatalf("rules[0] = %+v", rules[0])
	}
	if !rules[0].Matches("anything") {
		t.Fatal("wildcard rule should match any kind")
	}
	lab := rules[1]
	if lab.Name != "LAB" || lab.URL != "http://lab.example/hook" || lab.Secret != "k1" {
		t.Fatalf("rules[1] = %+v", lab)
	}
	if !lab.Matches("detection") || !lab.Matches("study.done") || lab.Matches("wave") {
		t.Fatalf("LAB kind matching wrong: %+v", lab.Kinds)
	}
}

func TestRulesFromEnvErrors(t *testing.T) {
	cases := []struct {
		env  []string
		want string
	}{
		{[]string{"TRIPWIRE_HOOK_X_SECRET=k"}, "_SECRET set without"},
		{[]string{"TRIPWIRE_HOOK_X_EVENTS=wave"}, "_EVENTS set without"},
		{[]string{"TRIPWIRE_HOOK_X_URI=http://x"}, "unrecognized variable"},
		{[]string{"TRIPWIRE_HOOK_X_URL=:%bad"}, "_URL"},
	}
	for _, c := range cases {
		if _, err := RulesFromEnv(c.env); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("RulesFromEnv(%v) err = %v, want containing %q", c.env, err, c.want)
		}
	}
	if rules, err := RulesFromEnv([]string{"HOME=/root"}); err != nil || len(rules) != 0 {
		t.Errorf("unrelated env: rules=%v err=%v", rules, err)
	}
}
