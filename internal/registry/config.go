package registry

import (
	"fmt"
	"time"

	"tripwire"
)

// SubmitRequest is the POST /studies body: a named scale preset plus the
// runtime knobs a caller may turn. Everything else about a study is
// derived from the preset, keeping the control plane's input surface
// small and validatable.
type SubmitRequest struct {
	// Scale picks the configuration preset: "small" (SmallConfig), "paper"
	// (DefaultConfig, the full pilot), or "demo" (a seconds-long study with
	// several waves, breaches, and detections — the preset the service
	// tests and quickstart use). Empty means "small".
	Scale string `json:"scale"`
	// Seed overrides the preset's master seed.
	Seed *int64 `json:"seed,omitempty"`
	// Workers/TimelineWorkers override the crawl and timeline concurrency;
	// zero keeps the preset's value. Results are bit-identical for a given
	// seed regardless.
	Workers         int `json:"workers,omitempty"`
	TimelineWorkers int `json:"timeline_workers,omitempty"`
	// CheckpointEvery writes a resumable snapshot every Nth completed wave.
	// Zero means 1 — every wave — so a pause can always resume from the
	// latest wave boundary. Negative disables checkpointing (a pause then
	// restarts the study from scratch on resume; determinism makes that an
	// equivalence, just a slower one).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Label is a free-form caller tag echoed in status output.
	Label string `json:"label,omitempty"`
	// EagerAccounts materializes all honey accounts up front (debugging
	// aid; results are identical either way).
	EagerAccounts bool `json:"eager_accounts,omitempty"`
}

// buildConfig resolves the request to a concrete study configuration.
func (r *SubmitRequest) buildConfig() (tripwire.Config, error) {
	var cfg tripwire.Config
	switch r.Scale {
	case "", "small":
		cfg = tripwire.SmallConfig()
	case "paper":
		cfg = tripwire.DefaultConfig()
	case "demo":
		cfg = DemoConfig()
	default:
		return cfg, fmt.Errorf(`unknown scale %q (want "small", "paper", or "demo")`, r.Scale)
	}
	if r.Seed != nil {
		cfg.Seed = *r.Seed
	}
	if r.Workers != 0 {
		cfg.CrawlWorkers = r.Workers
	}
	if r.TimelineWorkers != 0 {
		cfg.TimelineWorkers = r.TimelineWorkers
	}
	if r.EagerAccounts {
		cfg.EagerAccounts = true
	}
	return cfg, nil
}

// DemoConfig returns the service demo preset: a 260-site universe with two
// registration campaigns, a handful of breaches, and organic traffic —
// enough waves to pause between and enough attacker activity to produce
// detections, while finishing in seconds. The lifecycle tests and the CI
// serve smoke run on it.
func DemoConfig() tripwire.Config {
	cfg := tripwire.SmallConfig()
	cfg.Web.NumSites = 260
	day := func(y int, m time.Month, d int) time.Time {
		return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
	}
	cfg.Batches = []tripwire.Batch{
		{Name: "seed", Start: day(2014, 12, 10), Duration: 14 * 24 * time.Hour, FromRank: 1, ToRank: 130},
		{Name: "refresh", Start: day(2015, 11, 20), Duration: 21 * 24 * time.Hour, FromRank: 1, ToRank: 200},
	}
	cfg.NumUnused = 40
	cfg.NumControls = 2
	cfg.BreachRegistered = 4
	cfg.BreachUnregistered = 2
	cfg.OrganicUsersMin = 5
	cfg.OrganicUsersMax = 15
	return cfg
}
