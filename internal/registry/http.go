package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"tripwire/internal/obs"
)

// Handler builds the control plane's HTTP surface over reg:
//
//	POST /studies               submit (SubmitRequest body) → 201 Info
//	GET  /studies               list → []Info
//	GET  /studies/{id}          status → Info (Status served verbatim)
//	POST /studies/{id}/pause    park at the next wave boundary → Info
//	POST /studies/{id}/resume   continue from the newest checkpoint → Info
//	POST /studies/{id}/cancel   stop for good → Info
//	GET  /studies/{id}/events   SSE stream with Last-Event-ID replay
//	GET  /hooks                 webhook delivery stats per endpoint
//	GET  /metrics, /metrics.json, /healthz   observability (internal/obs)
//
// Errors are JSON objects {"error": "..."}: 400 for bad input, 404 for
// unknown studies, 409 for illegal lifecycle transitions, 429 from the
// rate limiter. limiter may be nil (no limiting).
func Handler(reg *Registry, limiter *RateLimiter) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /studies", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		h, err := reg.Submit(req)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrClosed) {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, err.Error())
			return
		}
		w.Header().Set("Location", "/studies/"+h.ID())
		writeJSON(w, http.StatusCreated, h.Info())
	})

	mux.HandleFunc("GET /studies", func(w http.ResponseWriter, r *http.Request) {
		handles := reg.List()
		infos := make([]Info, len(handles))
		for i, h := range handles {
			infos[i] = h.Info()
		}
		writeJSON(w, http.StatusOK, infos)
	})

	mux.HandleFunc("GET /studies/{id}", func(w http.ResponseWriter, r *http.Request) {
		h, ok := reg.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such study")
			return
		}
		writeJSON(w, http.StatusOK, h.Info())
	})

	lifecycle := func(op func(*Handle) error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			h, ok := reg.Get(r.PathValue("id"))
			if !ok {
				writeError(w, http.StatusNotFound, "no such study")
				return
			}
			if err := op(h); err != nil {
				var te *TransitionError
				if errors.As(err, &te) {
					writeError(w, http.StatusConflict, err.Error())
				} else {
					writeError(w, http.StatusInternalServerError, err.Error())
				}
				return
			}
			writeJSON(w, http.StatusOK, h.Info())
		}
	}
	mux.HandleFunc("POST /studies/{id}/pause", lifecycle((*Handle).Pause))
	mux.HandleFunc("POST /studies/{id}/resume", lifecycle((*Handle).Resume))
	mux.HandleFunc("POST /studies/{id}/cancel", lifecycle((*Handle).Cancel))

	mux.HandleFunc("GET /studies/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		h, ok := reg.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such study")
			return
		}
		serveSSE(w, r, h)
	})

	mux.HandleFunc("GET /hooks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, reg.HookStats())
	})

	mux.Handle("/metrics", obs.Handler(reg.opts.Metrics))
	mux.Handle("/metrics.json", obs.Handler(reg.opts.Metrics))
	mux.Handle("/healthz", obs.Handler(reg.opts.Metrics))

	return limiter.Middleware(mux)
}

// serveSSE streams a study's events as Server-Sent Events. The id: of
// each frame is the event's sequence number; a reconnecting client sends
// it back as Last-Event-ID (or ?since=N) and receives exactly the events
// it has not seen — the stream replayed from seq+1, which a from-start
// subscriber would see as the same suffix. The stream ends when the
// study reaches a terminal state (its bus closes) or the client leaves.
func serveSSE(w http.ResponseWriter, r *http.Request, h *Handle) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var since uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			since = n
		}
	} else if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad since parameter")
			return
		}
		since = n
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for ev := range h.EventsSince(r.Context(), since) {
		data, err := json.Marshal(ev)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
		flusher.Flush()
	}
}

// writeJSON renders v as the response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders a JSON error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
