package registry

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"tripwire"
	"tripwire/internal/evbus"
)

// State is a study's position in the registry lifecycle. It is the
// registry's view — coarser than tripwire.StudyStatus.Phase, which tracks
// the current simulation incarnation (a Paused handle's underlying study
// reports "interrupted"; the handle owns the fact that it will resume).
type State int

const (
	// Pending: submitted, waiting for an active-studies slot.
	Pending State = iota
	// Running: the simulation is executing (or re-acquiring its slot after
	// a resume).
	Running
	// Paused: stopped at a wave boundary with a checkpoint on disk;
	// Resume continues it.
	Paused
	// Done: ran to the configured end date.
	Done
	// Cancelled: stopped for good by the caller (or registry shutdown).
	Cancelled
	// Failed: the run returned an error other than cancellation.
	Failed
)

// String names the state in the lower-case form the HTTP API serves.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Paused:
		return "paused"
	case Done:
		return "done"
	case Cancelled:
		return "cancelled"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether no further transition can leave s.
func (s State) Terminal() bool { return s == Done || s == Cancelled || s == Failed }

// transitions is the full lifecycle machine. Terminal states have no
// outgoing edges; the table test walks every State×State pair against it.
var transitions = map[State][]State{
	Pending: {Running, Cancelled},
	Running: {Paused, Done, Cancelled, Failed},
	Paused:  {Running, Cancelled},
}

// CanTransition reports whether from→to is a legal lifecycle edge.
func CanTransition(from, to State) bool {
	for _, t := range transitions[from] {
		if t == to {
			return true
		}
	}
	return false
}

// TransitionError reports a lifecycle operation that is not legal from
// the study's current state; the HTTP layer maps it to 409 Conflict.
type TransitionError struct {
	Study    string
	From, To State
}

// Error renders the rejected edge.
func (e *TransitionError) Error() string {
	return fmt.Sprintf("registry: %s: invalid transition %s -> %s", e.Study, e.From, e.To)
}

// intentNone marks "no stop requested"; the zero State (Pending) can never
// be a stop intent, so it doubles as the empty value.
const intentNone = Pending

// Handle is one study under registry management: the lifecycle state
// machine, the current simulation incarnation, and the study's
// sequence-numbered event stream. Pause works by checkpoint-and-cancel —
// the study snapshots at every wave boundary, so cancelling the run
// context leaves a resume point at the last completed wave — and Resume
// rebuilds a fresh incarnation from the newest checkpoint (or, if none
// was written yet, from scratch: determinism makes the rerun equivalent).
// Because the simulation is bit-identical for its seed, the resumed
// incarnation replays the same event prefix the old one published; the
// handle skips the already-published prefix so the study's stream stays
// gapless and duplicate-free across any number of pauses.
type Handle struct {
	id    string
	label string
	scale string
	cfg   tripwire.Config
	reg   *Registry

	// checkpointDir is empty when checkpointing is disabled.
	checkpointDir   string
	checkpointEvery int

	bus   *evbus.Hub[Event]
	pubMu sync.Mutex // serializes Seq assignment with Append
	// simSeen counts simulation events (wave/detection) published to bus;
	// a new incarnation's pump starts after this prefix.
	simSeen atomic.Uint64

	mu     sync.Mutex
	state  State
	study  *tripwire.Study // current incarnation; never nil
	gen    int             // incarnation counter, guards stale goroutines
	cancel context.CancelFunc
	done   chan struct{} // closed when the current run goroutine finishes
	intent State         // Paused or Cancelled while a stop is in flight
	err    error         // terminal run error (Failed)
}

// ID returns the registry-assigned study ID.
func (h *Handle) ID() string { return h.id }

// State returns the current lifecycle state.
func (h *Handle) State() State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Err returns the run error of a Failed study, else nil.
func (h *Handle) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// Info is the control plane's study record: GET /studies/{id} serves it.
// Status is the underlying study's structured progress, embedded verbatim.
type Info struct {
	ID     string               `json:"id"`
	Label  string               `json:"label,omitempty"`
	Scale  string               `json:"scale"`
	State  string               `json:"state"`
	Events uint64               `json:"events"` // stream high-water mark
	Error  string               `json:"error,omitempty"`
	Status tripwire.StudyStatus `json:"status"`
}

// Info snapshots the handle for the HTTP API.
func (h *Handle) Info() Info {
	h.mu.Lock()
	st, study, err := h.state, h.study, h.err
	h.mu.Unlock()
	info := Info{
		ID:     h.id,
		Label:  h.label,
		Scale:  h.scale,
		State:  st.String(),
		Events: h.bus.Len(),
		Status: study.Status(),
	}
	if err != nil {
		info.Error = err.Error()
	}
	return info
}

// EventsSince subscribes to the study's stream after seq (0 replays from
// the start); the channel closes when the stream ends or ctx is done.
// This is the SSE Last-Event-ID contract: Event.Seq is gapless and
// 1-based, so a client that saw seq n resumes with EventsSince(ctx, n).
func (h *Handle) EventsSince(ctx context.Context, seq uint64) <-chan Event {
	return h.bus.SinceCtx(ctx, seq)
}

// EventSeq returns the stream's high-water sequence number.
func (h *Handle) EventSeq() uint64 { return h.bus.Len() }

// Wait blocks until the study reaches a terminal state (returning it and
// the Failed error, if any) or ctx is done (returning the current state
// and ctx's error).
func (h *Handle) Wait(ctx context.Context) (State, error) {
	for range h.bus.SinceCtx(ctx, h.bus.Len()) {
	}
	st := h.State()
	if st.Terminal() {
		return st, h.Err()
	}
	return st, ctx.Err()
}

// Pause stops a Running study at the next wave boundary and parks it
// Paused. It blocks until the stop lands, so a successful return means
// the checkpoint to resume from is on disk (or the study had not reached
// its first wave, in which case Resume reruns from scratch — an
// equivalence under determinism). If the study reaches a terminal state
// before the pause takes effect, a TransitionError naming that state is
// returned.
func (h *Handle) Pause() error {
	h.mu.Lock()
	if h.state != Running {
		defer h.mu.Unlock()
		return &TransitionError{Study: h.id, From: h.state, To: Paused}
	}
	h.intent = Paused
	cancel, done := h.cancel, h.done
	h.mu.Unlock()
	cancel()
	<-done
	if st := h.State(); st != Paused {
		return &TransitionError{Study: h.id, From: st, To: Paused}
	}
	return nil
}

// Resume continues a Paused study from its newest checkpoint. The new
// incarnation deterministically replays the completed prefix (attested
// byte-for-byte against the snapshot) and then runs on; its final results
// are byte-identical to a never-paused run.
func (h *Handle) Resume() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != Paused {
		return &TransitionError{Study: h.id, From: h.state, To: Running}
	}
	study, err := h.rebuild()
	if err != nil {
		return fmt.Errorf("registry: %s: resume: %w", h.id, err)
	}
	h.study = study
	h.gen++
	h.state = Running
	h.intent = intentNone
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	h.done = make(chan struct{})
	go h.run(study, h.gen, ctx, h.done, h.simSeen.Load())
	return nil
}

// rebuild constructs the incarnation Resume will run: the newest
// checkpoint when one exists, otherwise a fresh study over the original
// configuration. Called with h.mu held.
func (h *Handle) rebuild() (*tripwire.Study, error) {
	if h.checkpointDir != "" {
		files, err := filepath.Glob(filepath.Join(h.checkpointDir, "checkpoint-*.twsnap"))
		if err != nil {
			return nil, err
		}
		if len(files) > 0 {
			sort.Strings(files)
			return tripwire.Resume(files[len(files)-1],
				tripwire.WithCheckpoint(h.checkpointDir, h.checkpointEvery))
		}
	}
	study := h.newIncarnation()
	if err := study.Err(); err != nil {
		return nil, err
	}
	return study, nil
}

// newIncarnation builds a from-scratch study over the handle's config.
func (h *Handle) newIncarnation() *tripwire.Study {
	opts := []tripwire.Option{tripwire.WithConfig(h.cfg)}
	if h.checkpointDir != "" {
		opts = append(opts, tripwire.WithCheckpoint(h.checkpointDir, h.checkpointEvery))
	}
	return tripwire.New(opts...)
}

// Cancel stops the study for good: a queued or running study is cancelled
// at the next wave boundary (blocking until the stop lands), a paused one
// immediately. If a racing completion wins, a TransitionError naming the
// terminal state is returned.
func (h *Handle) Cancel() error {
	h.mu.Lock()
	switch h.state {
	case Paused:
		h.state = Cancelled
		study := h.study
		h.mu.Unlock()
		h.publish(Event{Kind: KindCancelled, At: study.Status().VirtualNow, State: Cancelled.String()})
		h.bus.Close()
		return nil
	case Pending, Running:
		h.intent = Cancelled
		cancel, done := h.cancel, h.done
		h.mu.Unlock()
		cancel()
		<-done
		if st := h.State(); st != Cancelled {
			return &TransitionError{Study: h.id, From: st, To: Cancelled}
		}
		return nil
	default:
		defer h.mu.Unlock()
		return &TransitionError{Study: h.id, From: h.state, To: Cancelled}
	}
}

// run is one incarnation's driver goroutine: acquire an active slot, pump
// the simulation's event stream onto the study stream (skipping the
// fromSeq prefix an earlier incarnation already published), execute, and
// settle the resulting lifecycle transition.
func (h *Handle) run(study *tripwire.Study, gen int, ctx context.Context, done chan struct{}, fromSeq uint64) {
	defer close(done)

	pumpCtx, pumpCancel := context.WithCancel(context.Background())
	defer pumpCancel()
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		// Subscribe from 0, not fromSeq: the incarnation's own stream is
		// empty until the replay runs, and evbus clamps a cursor beyond
		// the high-water mark back down — the skip must be counted here.
		skip := fromSeq
		for ev := range study.EventsSinceContext(pumpCtx, 0) {
			if skip > 0 {
				skip--
				continue
			}
			h.publishSim(ev)
		}
	}()

	ran := false
	select {
	case h.reg.sem <- struct{}{}:
		ran = true
		h.markRunning(gen, study)
		// RunContext closes the study's event hub on every exit path, so
		// the pump below drains the full stream and ends on its own.
		_ = study.RunContext(ctx)
		<-h.reg.sem
	case <-ctx.Done():
		// Cancelled while queued; the study never started and its hub
		// never closes, so release the pump by context instead.
		pumpCancel()
	}
	<-pumpDone
	h.settle(study, gen, ran)
}

// markRunning records the Pending→Running edge (first incarnation only —
// Resume re-enters Running synchronously) and announces the (re)start.
func (h *Handle) markRunning(gen int, study *tripwire.Study) {
	h.mu.Lock()
	if h.gen != gen {
		h.mu.Unlock()
		return
	}
	if h.state == Pending {
		h.state = Running
	}
	h.mu.Unlock()
	h.publish(Event{Kind: KindRunning, At: study.Status().VirtualNow, State: Running.String()})
}

// settle applies the incarnation's outcome to the state machine and
// publishes the matching lifecycle event. It runs after the event pump
// has drained, so the lifecycle event is ordered after every simulation
// event of the incarnation.
func (h *Handle) settle(study *tripwire.Study, gen int, ran bool) {
	h.mu.Lock()
	if h.gen != gen {
		h.mu.Unlock()
		return
	}
	var to State
	err := study.Err()
	switch {
	case ran && !study.Interrupted() && err == nil:
		to = Done
	case ran && !study.Interrupted() && err != nil:
		to = Failed
		h.err = err
	default:
		// Interrupted at a wave boundary, or never ran: the stop intent
		// chose the destination. Registry shutdown cancels without intent.
		if h.intent == Paused {
			to = Paused
		} else {
			to = Cancelled
		}
	}
	h.state = to
	h.intent = intentNone
	h.mu.Unlock()

	ev := Event{Kind: lifecycleKind(to), At: study.Status().VirtualNow, State: to.String()}
	if err != nil && to == Failed {
		ev.Error = err.Error()
	}
	h.publish(ev)
	if to.Terminal() {
		h.bus.Close()
	}
}

// lifecycleKind maps a settled state to its event kind.
func lifecycleKind(s State) string {
	switch s {
	case Running:
		return KindRunning
	case Paused:
		return KindPaused
	case Cancelled:
		return KindCancelled
	case Failed:
		return KindFailed
	default:
		return KindDone
	}
}

// publishSim forwards one simulation event onto the study stream.
func (h *Handle) publishSim(ev tripwire.Event) {
	h.simSeen.Add(1)
	h.publish(fromSim(ev))
}

// publish assigns the next sequence number and appends ev to the study
// stream, then hands it to the registry for webhook dispatch. pubMu makes
// the Len-then-Append pair atomic so Seq always matches the bus position.
func (h *Handle) publish(ev Event) {
	h.pubMu.Lock()
	ev.Study = h.id
	ev.Seq = h.bus.Len() + 1
	h.bus.Append(ev)
	h.pubMu.Unlock()
	h.reg.published(ev)
}
