package registry

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// newTestRegistry returns a registry rooted in a temp dir.
func newTestRegistry(t *testing.T, opts Options) *Registry {
	t.Helper()
	if opts.DataDir == "" {
		opts.DataDir = t.TempDir()
	}
	reg, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	return reg
}

// demoRequest is the lifecycle tests' study: seconds-long, several waves,
// several detections.
func demoRequest() SubmitRequest { return SubmitRequest{Scale: "demo"} }

// waitKind consumes h's stream from seq until an event of kind arrives,
// returning it.
func waitKind(t *testing.T, h *Handle, seq uint64, kind string) Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for ev := range h.EventsSince(ctx, seq) {
		if ev.Kind == kind {
			return ev
		}
	}
	t.Fatalf("stream ended without a %q event (state %s)", kind, h.State())
	return Event{}
}

// TestTransitionTable pins the full lifecycle machine: every State×State
// pair against the expected edge set.
func TestTransitionTable(t *testing.T) {
	states := []State{Pending, Running, Paused, Done, Cancelled, Failed}
	legal := map[[2]State]bool{
		{Pending, Running}:   true,
		{Pending, Cancelled}: true,
		{Running, Paused}:    true,
		{Running, Done}:      true,
		{Running, Cancelled}: true,
		{Running, Failed}:    true,
		{Paused, Running}:    true,
		{Paused, Cancelled}:  true,
	}
	for _, from := range states {
		for _, to := range states {
			if got, want := CanTransition(from, to), legal[[2]State{from, to}]; got != want {
				t.Errorf("CanTransition(%s, %s) = %v, want %v", from, to, got, want)
			}
		}
		if from.Terminal() != (len(transitions[from]) == 0) {
			t.Errorf("%s: Terminal()=%v but has %d outgoing edges", from, from.Terminal(), len(transitions[from]))
		}
	}
}

// TestRunToDone: the plain lifecycle — submitted, running, waves and
// detections, done — with a gapless 1-based sequence and a closed stream.
func TestRunToDone(t *testing.T) {
	reg := newTestRegistry(t, Options{})
	h, err := reg.Submit(demoRequest())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if st, err := h.Wait(ctx); st != Done || err != nil {
		t.Fatalf("Wait = %s, %v", st, err)
	}

	var events []Event
	for ev := range h.EventsSince(context.Background(), 0) {
		events = append(events, ev)
	}
	if len(events) < 4 {
		t.Fatalf("only %d events", len(events))
	}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("events[%d].Seq = %d, want %d (gapless 1-based)", i, ev.Seq, i+1)
		}
		if ev.Study != h.ID() {
			t.Fatalf("events[%d].Study = %q", i, ev.Study)
		}
	}
	if events[0].Kind != KindSubmitted || events[1].Kind != KindRunning {
		t.Fatalf("stream must open submitted,running; got %s,%s", events[0].Kind, events[1].Kind)
	}
	if last := events[len(events)-1]; last.Kind != KindDone || last.State != "done" {
		t.Fatalf("stream must end with study.done; got %+v", last)
	}
	waves, detections := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case KindWave:
			waves++
		case KindDetection:
			detections++
		}
	}
	if waves == 0 || detections == 0 {
		t.Fatalf("demo study produced %d waves, %d detections", waves, detections)
	}

	info := h.Info()
	if info.State != "done" || info.Status.Phase != "done" || info.Status.Detections != detections {
		t.Fatalf("info = %+v", info)
	}
	if info.Events != uint64(len(events)) {
		t.Fatalf("info.Events = %d, want %d", info.Events, len(events))
	}
}

// simEvents filters a stream down to the simulation payloads (wave and
// detection), dropping Seq — which legitimately shifts when lifecycle
// markers interleave differently across pause/resume — and the study ID,
// so streams of two studies over the same configuration compare equal.
func simEvents(events []Event) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Kind == KindWave || ev.Kind == KindDetection {
			ev.Seq = 0
			ev.Study = ""
			out = append(out, ev)
		}
	}
	return out
}

// TestPauseResume: pause after the first wave, check the checkpoint and
// the parked state, resume, and require (a) the final Status byte-identical
// to an uninterrupted run's and (b) the simulation event stream duplicate-
// free and identical to the uninterrupted stream.
func TestPauseResume(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, Options{DataDir: dir})

	ref, err := reg.Submit(demoRequest())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if st, _ := ref.Wait(ctx); st != Done {
		t.Fatalf("reference study ended %s", st)
	}

	h, err := reg.Submit(demoRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitKind(t, h, 0, KindWave)
	if err := h.Pause(); err != nil {
		t.Fatalf("Pause: %v", err)
	}
	if st := h.State(); st != Paused {
		t.Fatalf("state after Pause = %s", st)
	}
	if err := h.Pause(); err == nil {
		t.Fatal("second Pause succeeded")
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, h.ID(), "checkpoints", "checkpoint-*.twsnap"))
	if len(snaps) == 0 {
		t.Fatal("no checkpoint on disk after a post-wave pause")
	}
	if last := h.Info(); last.State != "paused" {
		t.Fatalf("info.State = %s", last.State)
	}

	if err := h.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if st, err := h.Wait(ctx); st != Done || err != nil {
		t.Fatalf("Wait after resume = %s, %v", st, err)
	}
	if err := h.Resume(); err == nil {
		t.Fatal("Resume of a done study succeeded")
	}
	var te *TransitionError
	if err := h.Cancel(); !errors.As(err, &te) || te.From != Done {
		t.Fatalf("Cancel of a done study: %v", err)
	}

	// Byte-identical Status to the never-paused run (modulo the seed-
	// independent fields, which are identical anyway).
	got, _ := json.Marshal(h.Info().Status)
	want, _ := json.Marshal(ref.Info().Status)
	if string(got) != string(want) {
		t.Fatalf("paused+resumed status differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}

	// The paused study's stream must carry the same simulation events,
	// exactly once each, with pause/resume markers in between.
	var events []Event
	for ev := range h.EventsSince(context.Background(), 0) {
		events = append(events, ev)
	}
	var refEvents []Event
	for ev := range ref.EventsSince(context.Background(), 0) {
		refEvents = append(refEvents, ev)
	}
	gotSim, _ := json.Marshal(simEvents(events))
	wantSim, _ := json.Marshal(simEvents(refEvents))
	if string(gotSim) != string(wantSim) {
		t.Fatalf("sim event stream differs across pause/resume:\n got %s\nwant %s", gotSim, wantSim)
	}
	kinds := make(map[string]int)
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	if kinds[KindPaused] != 1 || kinds[KindRunning] != 2 || kinds[KindDone] != 1 {
		t.Fatalf("lifecycle markers wrong: %v", kinds)
	}
}

// TestPauseBeforeFirstCheckpoint: pausing a study that has not completed
// a wave leaves no checkpoint; Resume reruns from scratch and still
// converges to the uninterrupted result.
func TestPauseBeforeFirstCheckpoint(t *testing.T) {
	reg := newTestRegistry(t, Options{})
	ref, err := reg.Submit(demoRequest())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if st, _ := ref.Wait(ctx); st != Done {
		t.Fatalf("reference study ended %s", st)
	}

	h, err := reg.Submit(demoRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitKind(t, h, 0, KindRunning)
	if err := h.Pause(); err != nil {
		// The study may have finished its first wave and parked cleanly, or
		// even raced to completion; only the latter is a test-environment
		// fluke worth skipping on.
		var te *TransitionError
		if errors.As(err, &te) && te.From == Done {
			t.Skip("study completed before the pause landed")
		}
		t.Fatalf("Pause: %v", err)
	}
	if err := h.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if st, err := h.Wait(ctx); st != Done || err != nil {
		t.Fatalf("Wait = %s, %v", st, err)
	}
	got, _ := json.Marshal(h.Info().Status)
	want, _ := json.Marshal(ref.Info().Status)
	if string(got) != string(want) {
		t.Fatalf("status differs:\n got %s\nwant %s", got, want)
	}
}

// TestCancelRunning: cancel lands at a wave boundary, the stream ends
// with study.cancelled, and no further transition is legal.
func TestCancelRunning(t *testing.T) {
	reg := newTestRegistry(t, Options{})
	h, err := reg.Submit(demoRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitKind(t, h, 0, KindWave)
	if err := h.Cancel(); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if st := h.State(); st != Cancelled {
		t.Fatalf("state = %s", st)
	}
	events := h.bus.Snapshot(0)
	if last := events[len(events)-1]; last.Kind != KindCancelled {
		t.Fatalf("last event %+v", last)
	}
	if err := h.Resume(); err == nil {
		t.Fatal("Resume of a cancelled study succeeded")
	}
	if info := h.Info(); info.State != "cancelled" || !info.Status.Interrupted {
		t.Fatalf("info = %+v", info)
	}
}

// TestCancelPaused: Paused → Cancelled is direct (no goroutine in
// flight) and closes the stream.
func TestCancelPaused(t *testing.T) {
	reg := newTestRegistry(t, Options{})
	h, err := reg.Submit(demoRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitKind(t, h, 0, KindWave)
	if err := h.Pause(); err != nil {
		t.Fatalf("Pause: %v", err)
	}
	if err := h.Cancel(); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if st := h.State(); st != Cancelled {
		t.Fatalf("state = %s", st)
	}
	if !h.bus.Closed() {
		t.Fatal("stream still open after cancel")
	}
}

// TestCancelQueued: with one active slot, a second submission parks in
// Pending; cancelling it must work without it ever running.
func TestCancelQueued(t *testing.T) {
	reg := newTestRegistry(t, Options{MaxActive: 1})
	a, err := reg.Submit(demoRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitKind(t, a, 0, KindWave) // a holds the only slot
	b, err := reg.Submit(demoRequest())
	if err != nil {
		t.Fatal(err)
	}
	if st := b.State(); st != Pending {
		t.Skipf("study b already %s (slot freed early)", st)
	}
	if err := b.Cancel(); err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	for _, ev := range b.bus.Snapshot(0) {
		if ev.Kind == KindRunning || ev.Kind == KindWave {
			t.Fatalf("cancelled-before-start study emitted %+v", ev)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if st, _ := a.Wait(ctx); st != Done {
		t.Fatalf("study a ended %s", st)
	}
}

// TestMaxActiveQueuesAndDrains: both studies complete even though only
// one may execute at a time.
func TestMaxActiveQueuesAndDrains(t *testing.T) {
	reg := newTestRegistry(t, Options{MaxActive: 1})
	a, _ := reg.Submit(demoRequest())
	b, _ := reg.Submit(demoRequest())
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if st, _ := a.Wait(ctx); st != Done {
		t.Fatalf("a ended %s", st)
	}
	if st, _ := b.Wait(ctx); st != Done {
		t.Fatalf("b ended %s", st)
	}
}

// TestSubmitValidation: bad requests leave no handle behind.
func TestSubmitValidation(t *testing.T) {
	reg := newTestRegistry(t, Options{})
	if _, err := reg.Submit(SubmitRequest{Scale: "galactic"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if got := len(reg.List()); got != 0 {
		t.Fatalf("%d handles after failed submits", got)
	}
}

// TestRegistryClose: close cancels live studies and rejects new work.
func TestRegistryClose(t *testing.T) {
	reg := newTestRegistry(t, Options{})
	h, err := reg.Submit(demoRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitKind(t, h, 0, KindWave)
	reg.Close()
	if st := h.State(); st != Cancelled && st != Done {
		t.Fatalf("state after Close = %s", st)
	}
	if _, err := reg.Submit(demoRequest()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
}

// TestListOrder: List returns submission order and Get round-trips IDs.
func TestListOrder(t *testing.T) {
	reg := newTestRegistry(t, Options{})
	a, _ := reg.Submit(demoRequest())
	b, _ := reg.Submit(demoRequest())
	list := reg.List()
	if len(list) != 2 || list[0] != a || list[1] != b {
		t.Fatalf("List = %v", list)
	}
	if got, ok := reg.Get(a.ID()); !ok || got != a {
		t.Fatalf("Get(%s) = %v, %v", a.ID(), got, ok)
	}
	if _, ok := reg.Get("study-9999"); ok {
		t.Fatal("Get of unknown id succeeded")
	}
}
