package registry

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// RateLimiter is a per-client-IP token bucket for the control plane:
// each IP accrues Rate tokens per second up to Burst, and a request
// costs one token. Requests finding an empty bucket get 429. Liveness
// probes (/healthz) bypass it — see Middleware.
type RateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	sweep   time.Time
	now     func() time.Time // test hook
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter returns a limiter granting rate requests/second with
// bursts of burst. Non-positive values disable limiting (Allow always
// true).
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	return &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// Allow spends one token from ip's bucket, reporting whether it was
// available.
func (l *RateLimiter) Allow(ip string) bool {
	if l == nil || l.rate <= 0 || l.burst <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[ip]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[ip] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	l.prune(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// prune drops buckets idle long enough to have refilled completely; they
// are indistinguishable from fresh ones, so the map stays bounded by the
// set of recently active clients. Called with l.mu held, at most once a
// minute.
func (l *RateLimiter) prune(now time.Time) {
	if now.Sub(l.sweep) < time.Minute {
		return
	}
	l.sweep = now
	full := time.Duration(l.burst / l.rate * float64(time.Second))
	for ip, b := range l.buckets {
		if now.Sub(b.last) > full {
			delete(l.buckets, ip)
		}
	}
}

// Middleware enforces the limit around next, keyed by the request's
// remote IP. /healthz is exempt so schedulers and load balancers can
// probe at any frequency.
func (l *RateLimiter) Middleware(next http.Handler) http.Handler {
	if l == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		ip, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			ip = r.RemoteAddr
		}
		if !l.Allow(ip) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		next.ServeHTTP(w, r)
	})
}
