// Package registry is the study service's control plane: a daemon-side
// registry hosting many concurrent studies, each wrapped in a Handle
// whose lifecycle state machine (Pending → Running ⇄ Paused →
// Done/Cancelled/Failed) is built on the simulation's wave-boundary
// cancellation and checkpoint/resume machinery. The HTTP API over it
// lives in http.go; outbound webhooks ride the same per-study event
// streams through internal/hook.
package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"tripwire/internal/evbus"
	"tripwire/internal/hook"
	"tripwire/internal/obs"
)

// Options configures a Registry.
type Options struct {
	// DataDir roots per-study state (checkpoints live in
	// <DataDir>/<id>/checkpoints). Empty uses a directory under the
	// system temp dir.
	DataDir string
	// MaxActive bounds concurrently executing simulations; further
	// submissions queue in Pending. Default 2.
	MaxActive int
	// Metrics, when non-nil, receives the service counters
	// (tripwire_serve_*). Study simulations are not instrumented here —
	// a study's own metrics stay per-study concerns.
	Metrics *obs.Registry
	// Hooks, when non-nil, receives every published event for webhook
	// delivery. The registry does not own it: the caller Closes it after
	// the registry.
	Hooks *hook.Dispatcher
}

// Registry hosts the studies. All methods are safe for concurrent use.
type Registry struct {
	opts Options
	sem  chan struct{} // active-study slots

	mu      sync.Mutex
	studies map[string]*Handle
	order   []string
	nextID  int
	closed  bool

	mSubmitted *obs.Counter
	mEvents    *obs.Counter
}

// New builds a registry, creating DataDir if needed.
func New(opts Options) (*Registry, error) {
	if opts.DataDir == "" {
		opts.DataDir = filepath.Join(os.TempDir(), "tripwire-serve")
	}
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: data dir: %w", err)
	}
	if opts.MaxActive <= 0 {
		opts.MaxActive = 2
	}
	return &Registry{
		opts:       opts,
		sem:        make(chan struct{}, opts.MaxActive),
		studies:    make(map[string]*Handle),
		mSubmitted: opts.Metrics.Counter("tripwire_serve_studies_submitted", "studies accepted by POST /studies"),
		mEvents:    opts.Metrics.Counter("tripwire_serve_events_published", "events published on study streams"),
	}, nil
}

// ErrClosed rejects submissions to a shut-down registry.
var ErrClosed = errors.New("registry: closed")

// Submit validates req, builds the study, and starts its lifecycle. A
// request that fails validation (unknown scale, invalid derived
// configuration) returns an error and leaves no handle behind.
func (r *Registry) Submit(req SubmitRequest) (*Handle, error) {
	cfg, err := req.buildConfig()
	if err != nil {
		return nil, err
	}
	every := req.CheckpointEvery
	if every == 0 {
		every = 1
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	r.nextID++
	id := fmt.Sprintf("study-%04d", r.nextID)
	r.mu.Unlock()

	h := &Handle{
		id:              id,
		label:           req.Label,
		scale:           req.Scale,
		cfg:             cfg,
		reg:             r,
		checkpointEvery: every,
		bus:             evbus.New[Event](),
		state:           Pending,
	}
	if h.scale == "" {
		h.scale = "small"
	}
	if every > 0 {
		h.checkpointDir = filepath.Join(r.opts.DataDir, id, "checkpoints")
		if err := os.MkdirAll(h.checkpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("registry: %s: checkpoint dir: %w", id, err)
		}
	} else {
		h.checkpointEvery = 0
	}

	study := h.newIncarnation()
	if err := study.Err(); err != nil {
		return nil, fmt.Errorf("registry: invalid study configuration: %w", err)
	}
	h.study = study
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	h.done = make(chan struct{})

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	r.studies[id] = h
	r.order = append(r.order, id)
	r.mu.Unlock()

	r.mSubmitted.Inc()
	h.publish(Event{Kind: KindSubmitted, At: cfg.Start, State: Pending.String()})
	go h.run(study, h.gen, ctx, h.done, 0)
	return h, nil
}

// Get returns the handle for id.
func (r *Registry) Get(id string) (*Handle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.studies[id]
	return h, ok
}

// List returns every handle in submission order.
func (r *Registry) List() []*Handle {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Handle, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.studies[id])
	}
	return out
}

// HookStats exposes the webhook dispatcher's per-endpoint accounting
// (GET /hooks); nil dispatcher yields an empty map.
func (r *Registry) HookStats() map[string]hook.EndpointStats {
	if r.opts.Hooks == nil {
		return map[string]hook.EndpointStats{}
	}
	return r.opts.Hooks.Stats()
}

// Close stops accepting submissions, cancels every study that has not
// reached a terminal state, and waits for their goroutines to settle.
// Checkpoints stay on disk under DataDir.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closed = true
	handles := make([]*Handle, 0, len(r.order))
	for _, id := range r.order {
		handles = append(handles, r.studies[id])
	}
	r.mu.Unlock()
	for _, h := range handles {
		if !h.State().Terminal() {
			_ = h.Cancel() // racing completions surface as TransitionError; both outcomes are settled
		}
	}
}

// published counts and forwards one event to the webhook dispatcher.
// Dispatch never blocks (bounded per-endpoint queues), so publishing —
// which runs on the simulation's event path — stays O(1).
func (r *Registry) published(ev Event) {
	r.mEvents.Inc()
	if r.opts.Hooks == nil {
		return
	}
	body, err := json.Marshal(ev)
	if err != nil {
		return
	}
	r.opts.Hooks.Dispatch(ev.Kind, body)
}
