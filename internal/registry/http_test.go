package registry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer wires a registry into an httptest server (no rate limit).
func newTestServer(t *testing.T) (*Registry, *httptest.Server) {
	t.Helper()
	reg := newTestRegistry(t, Options{MaxActive: 4})
	srv := httptest.NewServer(Handler(reg, nil))
	t.Cleanup(srv.Close)
	return reg, srv
}

func postJSON(t *testing.T, url string, body string) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	_ = json.NewDecoder(resp.Body).Decode(&m)
	return resp, m
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	_ = json.NewDecoder(resp.Body).Decode(&m)
	return resp, m
}

func studyID(t *testing.T, m map[string]json.RawMessage) string {
	t.Helper()
	var id string
	if err := json.Unmarshal(m["id"], &id); err != nil || id == "" {
		t.Fatalf("no study id in %v", m)
	}
	return id
}

// TestHTTPPauseResumeStatusByteIdentity is the PR's acceptance pin: a
// study paused through the HTTP API and resumed must serve a final
// GET /studies/{id} "status" document byte-identical to an uninterrupted
// run's, at 1, 2, 4, and 8 workers (one shared baseline — the status is
// worker-invariant by the determinism contract).
func TestHTTPPauseResumeStatusByteIdentity(t *testing.T) {
	reg, srv := newTestServer(t)

	resp, m := postJSON(t, srv.URL+"/studies", `{"scale":"demo"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d (%v)", resp.StatusCode, m)
	}
	baseID := studyID(t, m)
	baseH, _ := reg.Get(baseID)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if st, err := baseH.Wait(ctx); st != Done || err != nil {
		t.Fatalf("baseline ended %s, %v", st, err)
	}
	_, m = getJSON(t, srv.URL+"/studies/"+baseID)
	baseline := m["status"]
	if len(baseline) == 0 {
		t.Fatal("baseline status missing")
	}

	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			body := fmt.Sprintf(`{"scale":"demo","workers":%d,"timeline_workers":%d}`, workers, workers)
			resp, m := postJSON(t, srv.URL+"/studies", body)
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("submit = %d (%v)", resp.StatusCode, m)
			}
			id := studyID(t, m)
			h, _ := reg.Get(id)

			waitKind(t, h, 0, KindWave)
			if resp, m := postJSON(t, srv.URL+"/studies/"+id+"/pause", ""); resp.StatusCode != http.StatusOK {
				t.Fatalf("pause = %d (%v)", resp.StatusCode, m)
			}
			_, m = getJSON(t, srv.URL+"/studies/"+id)
			var state string
			_ = json.Unmarshal(m["state"], &state)
			if state != "paused" {
				t.Fatalf("state after pause = %q", state)
			}
			if resp, m := postJSON(t, srv.URL+"/studies/"+id+"/resume", ""); resp.StatusCode != http.StatusOK {
				t.Fatalf("resume = %d (%v)", resp.StatusCode, m)
			}
			if st, err := h.Wait(ctx); st != Done || err != nil {
				t.Fatalf("resumed study ended %s, %v", st, err)
			}
			_, m = getJSON(t, srv.URL+"/studies/"+id)
			if !bytes.Equal(m["status"], baseline) {
				t.Fatalf("paused+resumed status differs from uninterrupted baseline:\n got %s\nwant %s", m["status"], baseline)
			}
		})
	}
}

// sseFrame is one parsed SSE event.
type sseFrame struct {
	id, event, data string
}

// readSSE parses frames from url until the stream closes.
func readSSE(t *testing.T, url string, lastEventID string) []sseFrame {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.id != "" || cur.data != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return frames
}

// TestSSEReplayFromLastEventID is the second acceptance pin: replaying
// with Last-Event-ID=k returns exactly the frames after position k of
// what a from-start subscriber sees — same ids, kinds, and payload bytes.
func TestSSEReplayFromLastEventID(t *testing.T) {
	reg, srv := newTestServer(t)
	resp, m := postJSON(t, srv.URL+"/studies", `{"scale":"demo"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	id := studyID(t, m)
	h, _ := reg.Get(id)

	// The from-start subscriber follows the stream live, end to end.
	events := srv.URL + "/studies/" + id + "/events"
	full := readSSE(t, events, "")
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if st, err := h.Wait(ctx); st != Done || err != nil {
		t.Fatalf("study ended %s, %v", st, err)
	}
	if len(full) < 4 {
		t.Fatalf("only %d frames", len(full))
	}
	for i, fr := range full {
		if fr.id != fmt.Sprint(i+1) {
			t.Fatalf("frame %d has id %q (want gapless 1-based)", i, fr.id)
		}
	}

	// Reconnect from every split point; each suffix must match the full
	// stream's tail exactly.
	for _, k := range []int{0, 1, len(full) / 2, len(full) - 1, len(full)} {
		got := readSSE(t, events, fmt.Sprint(k))
		want := full[k:]
		if len(got) != len(want) {
			t.Fatalf("Last-Event-ID=%d returned %d frames, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Last-Event-ID=%d frame %d:\n got %+v\nwant %+v", k, i, got[i], want[i])
			}
		}
	}

	// ?since= is the header's query twin.
	got := readSSE(t, events+"?since="+fmt.Sprint(len(full)/2), "")
	if len(got) != len(full)-len(full)/2 {
		t.Fatalf("?since returned %d frames, want %d", len(got), len(full)-len(full)/2)
	}
}

// TestHTTPErrors: the error contract — 400 for bad input, 404 for
// unknown studies, 409 for illegal transitions.
func TestHTTPErrors(t *testing.T) {
	reg, srv := newTestServer(t)

	if resp, _ := postJSON(t, srv.URL+"/studies", `{"scale":"galactic"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scale = %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/studies", `{"unknown_field":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field = %d", resp.StatusCode)
	}
	if resp, _ := getJSON(t, srv.URL+"/studies/study-9999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown study = %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/studies/study-9999/pause", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pause unknown = %d", resp.StatusCode)
	}

	resp, m := postJSON(t, srv.URL+"/studies", `{"scale":"demo"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	id := studyID(t, m)
	h, _ := reg.Get(id)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if st, _ := h.Wait(ctx); st != Done {
		t.Fatalf("study ended %s", st)
	}
	if resp, em := postJSON(t, srv.URL+"/studies/"+id+"/pause", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("pause of done study = %d (%v)", resp.StatusCode, em)
	} else if len(em["error"]) == 0 {
		t.Fatal("409 without error body")
	}
	if resp, _ := postJSON(t, srv.URL+"/studies/"+id+"/resume", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume of done study = %d", resp.StatusCode)
	}

	// Bad ?since is a 400, not a hung stream.
	r2, err := http.Get(srv.URL + "/studies/" + id + "/events?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since = %d", r2.StatusCode)
	}

	// List includes the study.
	r3, err := http.Get(srv.URL + "/studies")
	if err != nil {
		t.Fatal(err)
	}
	var list []Info
	if err := json.NewDecoder(r3.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if len(list) != 1 || list[0].ID != id {
		t.Fatalf("list = %+v", list)
	}
}

// TestRateLimiterUnit exercises the token bucket directly: burst, refill,
// and per-IP isolation.
func TestRateLimiterUnit(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewRateLimiter(1, 2)
	l.now = func() time.Time { return now }

	if !l.Allow("a") || !l.Allow("a") {
		t.Fatal("burst of 2 rejected")
	}
	if l.Allow("a") {
		t.Fatal("third immediate request allowed")
	}
	if !l.Allow("b") {
		t.Fatal("second IP throttled by first IP's spend")
	}
	now = now.Add(1500 * time.Millisecond)
	if !l.Allow("a") {
		t.Fatal("refilled token rejected")
	}
	if l.Allow("a") {
		t.Fatal("over-refill: bucket exceeded burst")
	}
	var nilLimiter *RateLimiter
	if !nilLimiter.Allow("x") {
		t.Fatal("nil limiter must allow")
	}
}
