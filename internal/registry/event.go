package registry

import (
	"time"

	"tripwire"
)

// Event kinds published on a study's stream. Simulation kinds ("wave",
// "detection") carry the pilot's payload; lifecycle kinds mark registry
// state transitions. Webhook rules match on these strings.
const (
	KindWave      = "wave"
	KindDetection = "detection"

	KindSubmitted = "study.submitted"
	KindRunning   = "study.running"
	KindPaused    = "study.paused"
	KindDone      = "study.done"
	KindCancelled = "study.cancelled"
	KindFailed    = "study.failed"
)

// Event is one entry on a study's sequence-numbered stream: what SSE
// subscribers receive (Seq is the SSE event id / Last-Event-ID value) and
// what webhook payloads carry. All timestamps are virtual — the event
// stream of a given study is deterministic for its seed, including across
// pause/resume.
type Event struct {
	// Seq is the 1-based, gapless position on this study's stream.
	Seq uint64 `json:"seq"`
	// Study is the owning study's registry ID.
	Study string `json:"study"`
	Kind  string `json:"kind"`
	// At is the virtual time the event fired (for lifecycle kinds, the
	// simulation clock's position when the transition happened).
	At time.Time `json:"at"`

	// Wave payload (kind "wave").
	Batch    string `json:"batch,omitempty"`
	FromRank int    `json:"from_rank,omitempty"`
	ToRank   int    `json:"to_rank,omitempty"`
	Attempts int    `json:"attempts,omitempty"`

	// Detection payload (kind "detection").
	Site             string `json:"site,omitempty"`
	Rank             int    `json:"rank,omitempty"`
	AccountsAccessed int    `json:"accounts_accessed,omitempty"`

	// Lifecycle payload (kind "study.*").
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// fromSim translates one pilot progress event into the registry's wire
// shape (without Seq/Study, which the handle assigns at publish).
func fromSim(ev tripwire.Event) Event {
	switch ev.Kind {
	case tripwire.EventDetection:
		out := Event{Kind: KindDetection, At: ev.At}
		if d := ev.Detection; d != nil {
			out.Site = d.Domain
			out.Rank = d.Rank
			out.AccountsAccessed = d.AccountsAccessed
		}
		return out
	default:
		return Event{
			Kind:     KindWave,
			At:       ev.At,
			Batch:    ev.Batch,
			FromRank: ev.FromRank,
			ToRank:   ev.ToRank,
			Attempts: ev.Attempts,
		}
	}
}
