// Package snapshot is the compact, versioned binary container every piece
// of durable Tripwire state travels in: study checkpoints written at wave
// boundaries, the cold login-log segments the email provider spills to
// disk, and the crawl-resume files of cmd/tripwire-crawl.
//
// A snapshot file is a magic tag, a format version, and a sequence of
// named, length-prefixed sections, each protected by its own CRC-32. The
// container knows nothing about what a section means — subsystems encode
// their state with the Encoder/Decoder primitives in codec.go and register
// the bytes under a section name. That split keeps the format honest:
// decoding is pure (no domain imports), corruption is detected per section
// with the section name in the error, and a version bump never requires
// touching every subsystem at once.
//
// Version policy: Decode accepts exactly the versions it knows how to
// read. A file written by a newer format version fails with
// ErrVersionSkew rather than being misread; older versions are migrated
// explicitly here when the format evolves (none exist yet — Version 1 is
// the first).
//
// Every decode path is hardened against hostile input: all length fields
// are sanity-capped against the bytes actually remaining before any
// allocation happens, so a truncated or bit-flipped file returns an error
// instead of panicking or ballooning memory (FuzzSnapshotDecode pins
// this).
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Magic opens every snapshot file.
const Magic = "TWSN"

// Version is the current format version, bumped on any layout change.
// v2: the sim config section gained the timeline adaptive-align flag.
const Version = 2

// Sanity bounds on container metadata. Section payloads are bounded by the
// file size itself (lengths are checked against remaining bytes), so only
// the name needs an absolute cap.
const maxSectionName = 256

// Decode failure modes, distinguishable with errors.Is.
var (
	// ErrMagic means the input does not start with the snapshot magic.
	ErrMagic = errors.New("snapshot: bad magic")
	// ErrVersionSkew means the file's format version is newer than this
	// build can read.
	ErrVersionSkew = errors.New("snapshot: format version newer than supported")
	// ErrCorrupt means a length field, CRC, or structural invariant failed.
	ErrCorrupt = errors.New("snapshot: corrupt")
)

// Section is one named, CRC-protected payload inside a snapshot file.
type Section struct {
	Name string
	Data []byte
}

// File is a decoded snapshot container.
type File struct {
	Version  uint16
	Sections []Section
}

// Section returns the payload of the named section.
func (f *File) Section(name string) ([]byte, bool) {
	for i := range f.Sections {
		if f.Sections[i].Name == name {
			return f.Sections[i].Data, true
		}
	}
	return nil, false
}

// Add appends a section.
func (f *File) Add(name string, data []byte) {
	f.Sections = append(f.Sections, Section{Name: name, Data: data})
}

// New returns an empty container at the current format version.
func New() *File { return &File{Version: Version} }

// Encode serializes the container:
//
//	magic  "TWSN"
//	uvarint format version
//	uvarint section count
//	per section:
//	  uvarint name length, name bytes
//	  uvarint data length, data bytes
//	  uint32 little-endian CRC-32 (IEEE) of the data bytes
func Encode(f *File) []byte {
	n := len(Magic) + 2*binary.MaxVarintLen64
	for _, s := range f.Sections {
		n += 2*binary.MaxVarintLen64 + len(s.Name) + len(s.Data) + 4
	}
	b := make([]byte, 0, n)
	b = append(b, Magic...)
	b = binary.AppendUvarint(b, uint64(f.Version))
	b = binary.AppendUvarint(b, uint64(len(f.Sections)))
	for _, s := range f.Sections {
		b = binary.AppendUvarint(b, uint64(len(s.Name)))
		b = append(b, s.Name...)
		b = binary.AppendUvarint(b, uint64(len(s.Data)))
		b = append(b, s.Data...)
		b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(s.Data))
	}
	return b
}

// Decode parses a snapshot container, validating magic, version, every
// length field, and every section CRC. The returned sections alias data;
// callers that mutate the input must copy first.
func Decode(data []byte) (*File, error) {
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, ErrMagic
	}
	d := NewDecoder(data[len(Magic):])
	version := d.Uint()
	if d.Err() != nil {
		return nil, fmt.Errorf("%w: unreadable version", ErrCorrupt)
	}
	if version > Version {
		return nil, fmt.Errorf("%w: file version %d, supported ≤ %d", ErrVersionSkew, version, Version)
	}
	count := d.Uint()
	if d.Err() != nil {
		return nil, fmt.Errorf("%w: unreadable section count", ErrCorrupt)
	}
	// Each section costs at least 1 (name len) + 1 (data len) + 4 (CRC)
	// bytes, so any count past remaining/6 is structurally impossible —
	// reject it before allocating anything proportional to it.
	if count > uint64(d.Remaining()/6) {
		return nil, fmt.Errorf("%w: section count %d exceeds file capacity", ErrCorrupt, count)
	}
	f := &File{Version: uint16(version)}
	f.Sections = make([]Section, 0, count)
	for i := uint64(0); i < count; i++ {
		nameLen := d.Uint()
		if d.Err() != nil || nameLen > maxSectionName || nameLen > uint64(d.Remaining()) {
			return nil, fmt.Errorf("%w: section %d name length", ErrCorrupt, i)
		}
		name := string(d.Raw(int(nameLen)))
		dataLen := d.Uint()
		if d.Err() != nil || dataLen > uint64(d.Remaining()) {
			return nil, fmt.Errorf("%w: section %q data length", ErrCorrupt, name)
		}
		payload := d.Raw(int(dataLen))
		sum := d.Fixed32()
		if d.Err() != nil {
			return nil, fmt.Errorf("%w: section %q truncated", ErrCorrupt, name)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("%w: section %q CRC mismatch", ErrCorrupt, name)
		}
		f.Add(name, payload)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.Remaining())
	}
	return f, nil
}

// WriteFile atomically writes the encoded container to path: the bytes land
// in a temp file in the same directory first and are renamed into place, so
// a crash mid-write never leaves a half-written checkpoint behind.
func WriteFile(path string, f *File) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	data := Encode(f)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadFile reads and decodes the container at path.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
