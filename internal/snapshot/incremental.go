package snapshot

import "hash/crc32"

// SectionCache retains the encoded bytes of checkpoint sub-sections —
// per-account blobs, spilled log segments, attempt chunks, whole small
// sections — keyed by name, each stamped with the version its producer
// reported. A checkpoint assembled through the cache re-encodes only the
// entries whose version moved since the last checkpoint and stitches every
// unchanged entry back by reference, so encode cost is O(dirty state), not
// O(all state). Reused bytes are CRC-verified on every hit: a corrupted
// cache entry re-encodes instead of poisoning the snapshot (the container
// adds its own per-section CRC on top).
//
// Versions only need to be sound, not minimal: producers must bump a
// version whenever content may have changed (over-invalidation merely costs
// CPU), and the resume attestation plus the incremental-equivalence test
// catch any producer that under-reports.
//
// A SectionCache is not goroutine-safe; checkpoints run on the driver
// goroutine between epochs, where no parallel work is in flight.
type SectionCache struct {
	entries map[string]*cacheEntry
	encoded int64 // bytes rebuilt since BeginBuild
	reused  int64 // bytes stitched from cache since BeginBuild
}

type cacheEntry struct {
	version uint64
	data    []byte
	aux     uint64
	crc     uint32
}

// NewSectionCache returns an empty cache.
func NewSectionCache() *SectionCache {
	return &SectionCache{entries: make(map[string]*cacheEntry)}
}

// BeginBuild resets the encoded/reused byte counters for one checkpoint
// assembly.
func (c *SectionCache) BeginBuild() { c.encoded, c.reused = 0, 0 }

// Stats reports how many bytes the assembly since BeginBuild re-encoded vs
// stitched from cache.
func (c *SectionCache) Stats() (encoded, reused int64) { return c.encoded, c.reused }

// Len returns how many entries the cache holds.
func (c *SectionCache) Len() int { return len(c.entries) }

// GetOrBuild returns the cached bytes for name when the stored version
// matches (and the CRC still checks out); otherwise it runs build and
// caches the result under the given version.
func (c *SectionCache) GetOrBuild(name string, version uint64, build func() []byte) []byte {
	data, _ := c.GetOrBuildAux(name, version, func() ([]byte, uint64) { return build(), 0 })
	return data
}

// GetOrBuildAux is GetOrBuild for producers that need a small piece of
// metadata alongside the blob — e.g. a log segment's surviving event count,
// which the assembled section's count header needs without re-reading the
// segment file.
func (c *SectionCache) GetOrBuildAux(name string, version uint64, build func() ([]byte, uint64)) ([]byte, uint64) {
	if ent, ok := c.entries[name]; ok && ent.version == version && crc32.ChecksumIEEE(ent.data) == ent.crc {
		c.reused += int64(len(ent.data))
		return ent.data, ent.aux
	}
	data, aux := build()
	c.entries[name] = &cacheEntry{version: version, data: data, aux: aux, crc: crc32.ChecksumIEEE(data)}
	c.encoded += int64(len(data))
	return data, aux
}

// Drop forgets one entry.
func (c *SectionCache) Drop(name string) { delete(c.entries, name) }
