package snapshot

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestContainerRoundTrip(t *testing.T) {
	f := New()
	f.Add("alpha", []byte("first section"))
	f.Add("beta", nil)
	f.Add("gamma", bytes.Repeat([]byte{0x5a}, 4096))

	data := Encode(f)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Version != Version {
		t.Fatalf("version = %d, want %d", got.Version, Version)
	}
	if len(got.Sections) != 3 {
		t.Fatalf("sections = %d, want 3", len(got.Sections))
	}
	for i, s := range f.Sections {
		g := got.Sections[i]
		if g.Name != s.Name || !bytes.Equal(g.Data, s.Data) {
			t.Errorf("section %d mismatch: %q/%d bytes", i, g.Name, len(g.Data))
		}
	}
	// Encode of the decoded container is byte-stable.
	if !bytes.Equal(Encode(got), data) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, err := Decode([]byte("NOPE....")); !errors.Is(err, ErrMagic) {
		t.Fatalf("err = %v, want ErrMagic", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrMagic) {
		t.Fatalf("empty input err = %v, want ErrMagic", err)
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	f := &File{Version: Version + 1}
	f.Add("s", []byte("x"))
	if _, err := Decode(Encode(f)); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("err = %v, want ErrVersionSkew", err)
	}
}

func TestDecodeDetectsEveryFlippedBit(t *testing.T) {
	f := New()
	f.Add("payload", []byte("bytes that the CRC must cover end to end"))
	data := Encode(f)
	clean, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data)*8; i++ {
		mut := bytes.Clone(data)
		mut[i/8] ^= 1 << (i % 8)
		got, err := Decode(mut)
		if err != nil {
			continue
		}
		// A flip that still decodes must not silently change the payload.
		if len(got.Sections) == len(clean.Sections) &&
			got.Sections[0].Name == "payload" &&
			!bytes.Equal(got.Sections[0].Data, clean.Sections[0].Data) {
			t.Fatalf("bit %d: corrupted payload decoded without error", i)
		}
	}
}

func TestDecodeRejectsTruncations(t *testing.T) {
	f := New()
	f.Add("one", []byte("0123456789"))
	f.Add("two", []byte("abcdefghij"))
	data := Encode(f)
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(data))
		}
	}
	if _, err := Decode(append(bytes.Clone(data), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("trailing byte decoded without error")
	}
}

func TestDecodeCapsInsaneCounts(t *testing.T) {
	// A hand-built header claiming 2^40 sections in a 32-byte file must be
	// rejected before any proportional allocation.
	e := NewEncoder()
	e.Uint(Version)
	e.Uint(1 << 40)
	data := append([]byte(Magic), e.Bytes()...)
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestWriteFileReadFile(t *testing.T) {
	f := New()
	f.Add("state", []byte{1, 2, 3})
	path := filepath.Join(t.TempDir(), "ck.twsnap")
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := got.Section("state"); !ok || !bytes.Equal(data, []byte{1, 2, 3}) {
		t.Fatalf("section = %v, %v", data, ok)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file read without error")
	}
}

// TestPrimitiveRoundTrip drives the codec primitives with generated values.
func TestPrimitiveRoundTrip(t *testing.T) {
	prop := func(u uint64, i int64, b bool, fl float64, s string, blob []byte, nanos int64, dur int64) bool {
		e := NewEncoder()
		e.Uint(u)
		e.Int(i)
		e.Bool(b)
		e.Float(fl)
		e.String(s)
		e.Blob(blob)
		tm := time.Unix(0, nanos).UTC()
		e.Time(tm)
		e.Time(time.Time{})
		e.Duration(time.Duration(dur))

		d := NewDecoder(e.Bytes())
		if d.Uint() != u || d.Int() != i || d.Bool() != b {
			return false
		}
		gotF := d.Float()
		if gotF != fl && !(math.IsNaN(gotF) && math.IsNaN(fl)) {
			return false
		}
		if d.String() != s {
			return false
		}
		gotBlob := d.Blob()
		if !bytes.Equal(gotBlob, blob) {
			return false
		}
		if !d.Time().Equal(tm) || !d.Time().IsZero() {
			return false
		}
		if d.Duration() != time.Duration(dur) {
			return false
		}
		return d.Err() == nil && d.Remaining() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonTime(t *testing.T) {
	if !CanonTime(time.Time{}).IsZero() {
		t.Fatal("CanonTime(zero) is not zero")
	}
	loc := time.FixedZone("X", 3600)
	in := time.Date(2016, 9, 7, 12, 30, 0, 42, loc)
	c := CanonTime(in)
	if !c.Equal(in) {
		t.Fatal("CanonTime changed the instant")
	}
	if !reflect.DeepEqual(c, CanonTime(c)) {
		t.Fatal("CanonTime is not idempotent under DeepEqual")
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{0xff}) // bad uvarint (no terminator)
	_ = d.Uint()
	if d.Err() == nil {
		t.Fatal("expected error")
	}
	// Every later read is a zero value, no panic.
	if d.Uint() != 0 || d.Int() != 0 || d.Bool() || d.String() != "" || d.Blob() != nil || !d.Time().IsZero() {
		t.Fatal("poisoned decoder returned non-zero values")
	}
	if d.Count(1) != 0 {
		t.Fatal("poisoned Count returned non-zero")
	}
}

func TestCountCapsAgainstRemaining(t *testing.T) {
	e := NewEncoder()
	e.Uint(1 << 30) // claims a billion elements
	d := NewDecoder(e.Bytes())
	if d.Count(8) != 0 || d.Err() == nil {
		t.Fatal("Count accepted a structurally impossible length")
	}
}
