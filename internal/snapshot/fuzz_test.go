package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode hammers the container decoder with truncated,
// bit-flipped, and version-skewed inputs. The invariants: Decode never
// panics, never allocates proportionally to a corrupt length field (the
// caps are exercised by seeds claiming absurd counts), and anything it
// accepts re-encodes to exactly the bytes it read — so a mutation either
// fails loudly or was semantically harmless.
//
// The f.Add seeds double as the committed regression corpus: `go test`
// runs them on every CI pass without -fuzz.
func FuzzSnapshotDecode(f *testing.F) {
	// A well-formed multi-section file.
	good := New()
	good.Add("config", []byte("cfg-bytes"))
	good.Add("provider", bytes.Repeat([]byte{0xab}, 300))
	good.Add("", nil) // empty name and payload are legal
	goodBytes := Encode(good)
	f.Add(goodBytes)

	// Truncations at structurally interesting boundaries.
	f.Add(goodBytes[:4])                  // magic only
	f.Add(goodBytes[:6])                  // magic + version
	f.Add(goodBytes[:len(goodBytes)/2])   // mid-section
	f.Add(goodBytes[:len(goodBytes)-2])   // inside the final CRC
	f.Add(append(bytes.Clone(goodBytes), 0xee)) // trailing garbage

	// Version skew.
	skew := &File{Version: Version + 7}
	skew.Add("s", []byte("x"))
	f.Add(Encode(skew))

	// Hostile counts and lengths: a header claiming 2^40 sections, and a
	// section claiming a 2^40-byte payload.
	e := NewEncoder()
	e.Uint(Version)
	e.Uint(1 << 40)
	f.Add(append([]byte(Magic), e.Bytes()...))
	e = NewEncoder()
	e.Uint(Version)
	e.Uint(1)
	e.Uint(4)
	e.b = append(e.b, "name"...)
	e.Uint(1 << 40)
	f.Add(append([]byte(Magic), e.Bytes()...))

	// Wrong magic.
	f.Add([]byte("NSWT\x01\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Decode(data)
		if err != nil {
			return
		}
		// Anything accepted must re-encode to a decodable, semantically
		// identical file (byte-identity with the input is not required:
		// varint decoding tolerates non-minimal encodings).
		again, err := Decode(Encode(file))
		if err != nil {
			t.Fatalf("re-encode of accepted input failed to decode: %v", err)
		}
		if len(again.Sections) != len(file.Sections) {
			t.Fatalf("re-decode lost sections: %d != %d", len(again.Sections), len(file.Sections))
		}
		for i := range file.Sections {
			if again.Sections[i].Name != file.Sections[i].Name ||
				!bytes.Equal(again.Sections[i].Data, file.Sections[i].Data) {
				t.Fatalf("section %d changed across re-encode", i)
			}
		}
		// And the decoded primitives layer must survive arbitrary section
		// payloads without panicking.
		for _, s := range file.Sections {
			d := NewDecoder(s.Data)
			for d.Err() == nil && d.Remaining() > 0 {
				_ = d.Uint()
				_ = d.String()
				_ = d.Time()
			}
		}
	})
}
