package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Encoder appends primitive values to a growing buffer. Integers are
// varint-encoded (the dominant fields — ranks, counts, sequence numbers —
// are small), strings and byte slices are length-prefixed, and times carry
// an explicit zero flag so time.Time{} survives a round trip exactly.
type Encoder struct {
	b []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.b }

// Uint appends an unsigned varint.
func (e *Encoder) Uint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Int appends a signed (zig-zag) varint.
func (e *Encoder) Int(v int64) { e.b = binary.AppendVarint(e.b, v) }

// Bool appends one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Float appends a float64 as 8 fixed little-endian bytes.
func (e *Encoder) Float(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(p []byte) {
	e.Uint(uint64(len(p)))
	e.b = append(e.b, p...)
}

// Time appends a zero flag plus UnixNano. Only times representable as
// nanoseconds since 1970 round-trip exactly; the simulation's virtual
// timeline (2014–2017) is comfortably inside that range.
func (e *Encoder) Time(t time.Time) {
	if t.IsZero() {
		e.Bool(true)
		return
	}
	e.Bool(false)
	e.Int(t.UnixNano())
}

// Duration appends a signed varint of nanoseconds.
func (e *Encoder) Duration(d time.Duration) { e.Int(int64(d)) }

// Raw appends pre-encoded bytes verbatim, with no length prefix. It is how
// incremental section assembly stitches cached sub-section blobs into a
// stream that stays byte-identical to a from-scratch encode.
func (e *Encoder) Raw(p []byte) { e.b = append(e.b, p...) }

// Decoder reads the Encoder's formats back with a sticky error: the first
// malformed field poisons the decoder, every later read returns a zero
// value, and the caller checks Err once at the end. All length fields are
// validated against the bytes actually remaining before any slice is made,
// so corrupt input cannot trigger huge allocations.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder reads from b.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns how many undecoded bytes are left.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, d.off)
	}
}

// Uint reads an unsigned varint.
func (d *Decoder) Uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// Int reads a signed varint.
func (d *Decoder) Int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

// Bool reads one byte.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Remaining() < 1 {
		d.fail("truncated bool")
		return false
	}
	v := d.b[d.off]
	d.off++
	if v > 1 {
		d.fail("bad bool")
		return false
	}
	return v == 1
}

// Float reads 8 fixed bytes.
func (d *Decoder) Float() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// Fixed32 reads a 4-byte little-endian uint32 (section CRCs).
func (d *Decoder) Fixed32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 4 {
		d.fail("truncated uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

// Raw returns the next n bytes without copying. n must already be
// validated; Raw re-checks and poisons the decoder rather than panicking.
func (d *Decoder) Raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.Remaining() {
		d.fail("length past end of input")
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

// String reads a length-prefixed string, capping the length against the
// remaining input before allocating.
func (d *Decoder) String() string {
	n := d.Uint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail("string length past end of input")
		return ""
	}
	return string(d.Raw(int(n)))
}

// Blob reads a length-prefixed byte slice (copied, so the result outlives
// the input buffer).
func (d *Decoder) Blob() []byte {
	n := d.Uint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail("blob length past end of input")
		return nil
	}
	p := d.Raw(int(n))
	if p == nil {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// Time reads the zero flag plus UnixNano.
func (d *Decoder) Time() time.Time {
	if d.Bool() {
		return time.Time{}
	}
	n := d.Int()
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}

// Duration reads a signed varint of nanoseconds.
func (d *Decoder) Duration() time.Duration { return time.Duration(d.Int()) }

// Count reads a collection length and sanity-caps it: each element costs at
// least elemMin encoded bytes, so any count beyond Remaining()/elemMin is
// structurally impossible and poisons the decoder before the caller
// allocates a slice proportional to it. elemMin values below 1 are treated
// as 1.
func (d *Decoder) Count(elemMin int) int {
	if elemMin < 1 {
		elemMin = 1
	}
	n := d.Uint()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Remaining()/elemMin) {
		d.fail("collection count exceeds input capacity")
		return 0
	}
	return int(n)
}

// CanonTime canonicalizes a time for state export: the zero value stays
// zero, every other value is reduced to UnixNano in UTC — exactly what a
// codec round trip produces — so exported state and decoded state compare
// deep-equal.
func CanonTime(t time.Time) time.Time {
	if t.IsZero() {
		return time.Time{}
	}
	return time.Unix(0, t.UnixNano()).UTC()
}
