package geo

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestSpaceHas92Countries(t *testing.T) {
	s := NewSpace()
	if got := s.NumCountries(); got != 92 {
		t.Fatalf("NumCountries() = %d, want 92 (paper §6.4.3)", got)
	}
}

func TestNoReservedSlash8Allocated(t *testing.T) {
	s := NewSpace()
	for _, bad := range []int{0, 10, 127, 224, 240, 255} {
		if s.slash8[bad] != nil {
			t.Errorf("reserved /8 %d allocated to %s", bad, s.slash8[bad].Code)
		}
	}
}

func TestLookupRoundTrip(t *testing.T) {
	s := NewSpace()
	rng := rand.New(rand.NewSource(1))
	for _, c := range s.Countries() {
		ip := s.SampleIPIn(rng, c.Code)
		got, ok := s.Lookup(ip)
		if !ok {
			t.Fatalf("Lookup(%v) not found for %s", ip, c.Code)
		}
		if got.Code != c.Code {
			t.Fatalf("Lookup(%v) = %s, want %s", ip, got.Code, c.Code)
		}
	}
}

func TestLookupOutsideSpace(t *testing.T) {
	s := NewSpace()
	for _, raw := range []string{"10.1.2.3", "127.0.0.1", "230.1.2.3", "::1"} {
		ip := netip.MustParseAddr(raw)
		if _, ok := s.Lookup(ip); ok {
			t.Errorf("Lookup(%s) unexpectedly found a country", raw)
		}
	}
}

func TestSampleProxyCountryDistribution(t *testing.T) {
	s := NewSpace()
	rng := rand.New(rand.NewSource(2))
	counts := make(map[string]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[s.SampleCountry(rng).Code]++
	}
	// The paper's ordering: RU > CN > US > VN > everything else.
	if !(counts["RU"] > counts["CN"] && counts["CN"] > counts["US"] && counts["US"] > counts["VN"]) {
		t.Fatalf("country ordering wrong: RU=%d CN=%d US=%d VN=%d",
			counts["RU"], counts["CN"], counts["US"], counts["VN"])
	}
	for code, c := range counts {
		if code == "RU" || code == "CN" || code == "US" || code == "VN" {
			continue
		}
		if c > counts["VN"]*2 {
			t.Fatalf("tail country %s (%d) implausibly above VN (%d)", code, c, counts["VN"])
		}
	}
}

func TestResidentialMajority(t *testing.T) {
	s := NewSpace()
	rng := rand.New(rand.NewSource(3))
	res := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if !s.IsDatacenter(s.SampleProxyIP(rng)) {
			res++
		}
	}
	if frac := float64(res) / n; frac < 0.75 {
		t.Fatalf("residential fraction %.2f, want majority-residential (paper §6.4.3)", frac)
	}
}

func TestWhoisConsistency(t *testing.T) {
	s := NewSpace()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		ip := s.SampleProxyIP(rng)
		w1, ok1 := s.Whois(ip)
		w2, ok2 := s.Whois(ip)
		if !ok1 || !ok2 || w1 != w2 {
			t.Fatalf("Whois(%v) not deterministic: %+v vs %+v", ip, w1, w2)
		}
		c, _ := s.Lookup(ip)
		if w1.CountryCode != c.Code {
			t.Fatalf("whois country %s != lookup country %s", w1.CountryCode, c.Code)
		}
		if w1.Residential == s.IsDatacenter(ip) {
			continue // consistent by definition, but keep the check explicit:
		}
		if w1.Residential != !s.IsDatacenter(ip) {
			t.Fatalf("whois residential flag disagrees with IsDatacenter for %v", ip)
		}
	}
}

func TestAnonymize24(t *testing.T) {
	got := Anonymize24(netip.MustParseAddr("203.45.67.89"))
	if got != "203.45.67.0/24" {
		t.Fatalf("Anonymize24 = %q, want 203.45.67.0/24", got)
	}
	v6 := netip.MustParseAddr("2001:db8::1")
	if Anonymize24(v6) != v6.String() {
		t.Fatalf("Anonymize24 should pass through non-IPv4 addresses")
	}
}

func TestSampleIPInUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown country code")
		}
	}()
	NewSpace().SampleIPIn(rand.New(rand.NewSource(1)), "XX")
}

func TestReverseDNSConsistentWithWhois(t *testing.T) {
	s := NewSpace()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		ip := s.SampleProxyIP(rng)
		host, ok := s.ReverseDNS(ip)
		if !ok || host == "" {
			t.Fatalf("no PTR for %v", ip)
		}
		w, _ := s.Whois(ip)
		if w.Residential && !strings.Contains(host, "broadband") {
			t.Fatalf("residential %v resolves to %q", ip, host)
		}
		if !w.Residential && !strings.Contains(host, "hosting") {
			t.Fatalf("datacenter %v resolves to %q", ip, host)
		}
		// Deterministic.
		again, _ := s.ReverseDNS(ip)
		if again != host {
			t.Fatalf("PTR not deterministic for %v", ip)
		}
	}
	if _, ok := s.ReverseDNS(netip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("PTR for address outside the space")
	}
}

// Property: every sampled proxy IP is inside the space, is IPv4, and its
// /24 anonymization parses back to a prefix containing the IP.
func TestQuickSampledIPsWellFormed(t *testing.T) {
	s := NewSpace()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ip := s.SampleProxyIP(rng)
		if !ip.Is4() {
			return false
		}
		if _, ok := s.Lookup(ip); !ok {
			return false
		}
		pfx, err := netip.ParsePrefix(Anonymize24(ip))
		return err == nil && pfx.Contains(ip)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
