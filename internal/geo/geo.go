// Package geo models a synthetic IPv4 address space with country
// allocations, residential/datacenter classification, and WHOIS-style
// records. The attacker simulation draws proxy IPs from this space to
// reproduce the paper's §6.4.3 observations: logins arriving from a global
// network of predominantly compromised residential machines spanning ~92
// countries, led by Russia, China, the USA and Vietnam, with a minority of
// datacenter hosts serving legitimate content.
package geo

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
)

// Country describes one country's slice of the synthetic address space.
type Country struct {
	Code string
	Name string
	// ProxyWeight is the relative likelihood that an attacker proxy is
	// located in this country. Weights are calibrated so the top countries
	// match the paper: RU 194, CN 144, US 135, VN 89 of 1,316 IPs.
	ProxyWeight float64
	// DatacenterFrac is the fraction of this country's space classified as
	// datacenter rather than residential/consumer.
	DatacenterFrac float64

	slash8s []int // first octets of the /8 blocks this country owns
}

// Space is a synthetic IPv4 allocation: each country owns one or more /8
// blocks. Space methods are safe for concurrent use after construction
// except Sample*, which take an explicit *rand.Rand owned by the caller.
type Space struct {
	countries []Country
	byCode    map[string]*Country
	slash8    [256]*Country // /8 first octet -> owning country
	cumWeight []float64     // prefix sums over countries for sampling
	total     float64
}

// NewSpace builds the standard synthetic space with the package's built-in
// country table.
func NewSpace() *Space {
	s := &Space{byCode: make(map[string]*Country)}
	// Usable unicast /8s, skipping 0/8, RFC1918 10/8, loopback 127/8, and
	// multicast/reserved space at 224 and above.
	var usable []int
	for a := 1; a < 224; a++ {
		if a == 10 || a == 127 {
			continue
		}
		usable = append(usable, a)
	}
	next := 0
	for _, c := range countryTable {
		if next+c.slash8s > len(usable) {
			panic("geo: country table exceeds available /8 space")
		}
		c2 := Country{
			Code:           c.code,
			Name:           c.name,
			ProxyWeight:    c.weight,
			DatacenterFrac: c.dcFrac,
			slash8s:        usable[next : next+c.slash8s],
		}
		next += c.slash8s
		s.countries = append(s.countries, c2)
	}
	for i := range s.countries {
		c := &s.countries[i]
		s.byCode[c.Code] = c
		for _, a := range c.slash8s {
			s.slash8[a] = c
		}
		s.total += c.ProxyWeight
		s.cumWeight = append(s.cumWeight, s.total)
	}
	return s
}

// Countries returns the country table in allocation order.
func (s *Space) Countries() []Country {
	out := make([]Country, len(s.countries))
	copy(out, s.countries)
	return out
}

// NumCountries returns the number of countries in the space.
func (s *Space) NumCountries() int { return len(s.countries) }

// Lookup returns the country owning ip and whether ip is inside the space.
func (s *Space) Lookup(ip netip.Addr) (Country, bool) {
	if !ip.Is4() {
		return Country{}, false
	}
	b := ip.As4()
	c := s.slash8[b[0]]
	if c == nil {
		return Country{}, false
	}
	return *c, true
}

// IsDatacenter reports whether ip falls in the datacenter-classified portion
// of its country's space. Classification is positional and deterministic:
// the low second-octet range of each country's space is datacenter, sized by
// the country's DatacenterFrac.
func (s *Space) IsDatacenter(ip netip.Addr) bool {
	c, ok := s.Lookup(ip)
	if !ok {
		return false
	}
	b := ip.As4()
	cut := int(c.DatacenterFrac * 256)
	return int(b[1]) < cut
}

// SampleCountry picks a country with probability proportional to its
// ProxyWeight.
func (s *Space) SampleCountry(rng *rand.Rand) Country {
	x := rng.Float64() * s.total
	i := sort.SearchFloat64s(s.cumWeight, x)
	if i >= len(s.countries) {
		i = len(s.countries) - 1
	}
	return s.countries[i]
}

// SampleProxyIP draws a proxy IP: country by ProxyWeight, then a uniform
// host address inside that country's allocation (which lands in datacenter
// space with probability ≈ DatacenterFrac).
func (s *Space) SampleProxyIP(rng *rand.Rand) netip.Addr {
	c := s.SampleCountry(rng)
	return s.SampleIPIn(rng, c.Code)
}

// SampleIPIn draws a uniform host address inside the named country's
// allocation. It panics on an unknown country code: the caller controls the
// code set.
func (s *Space) SampleIPIn(rng *rand.Rand, code string) netip.Addr {
	c, ok := s.byCode[code]
	if !ok {
		panic(fmt.Sprintf("geo: unknown country code %q", code))
	}
	a := byte(c.slash8s[rng.Intn(len(c.slash8s))])
	return netip.AddrFrom4([4]byte{a, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(254))})
}

// Anonymize24 returns the /24 containing ip in "a.b.c.0/24" form, the
// granularity at which the paper releases login data (§7.4).
func Anonymize24(ip netip.Addr) string {
	if !ip.Is4() {
		return ip.String()
	}
	b := ip.As4()
	return fmt.Sprintf("%d.%d.%d.0/24", b[0], b[1], b[2])
}

// Whois is a WHOIS-style record for an address.
type Whois struct {
	NetRange    string
	OrgName     string
	CountryCode string
	Residential bool
}

// Whois returns a synthetic WHOIS record for ip. Records are deterministic
// functions of the address so repeated lookups agree.
func (s *Space) Whois(ip netip.Addr) (Whois, bool) {
	c, ok := s.Lookup(ip)
	if !ok {
		return Whois{}, false
	}
	b := ip.As4()
	res := !s.IsDatacenter(ip)
	org := fmt.Sprintf("%s Consumer Broadband %d", c.Name, b[1])
	if !res {
		org = fmt.Sprintf("%s Hosting DC-%d", c.Name, b[1])
	}
	return Whois{
		NetRange:    fmt.Sprintf("%d.%d.0.0/16", b[0], b[1]),
		OrgName:     org,
		CountryCode: c.Code,
		Residential: res,
	}, true
}

// ReverseDNS returns the synthetic PTR record for ip: residential addresses
// resolve to consumer-ISP pool names, datacenter addresses to hosting
// hostnames. The paper spot-checked reverse DNS to confirm the
// residential/datacenter split (§6.4.3, footnote 6); records here are
// deterministic and consistent with Whois.
func (s *Space) ReverseDNS(ip netip.Addr) (string, bool) {
	c, ok := s.Lookup(ip)
	if !ok {
		return "", false
	}
	b := ip.As4()
	cc := strings.ToLower(c.Code)
	if s.IsDatacenter(ip) {
		return fmt.Sprintf("srv-%d-%d.dc%d.%s-hosting.test", b[2], b[3], b[1], cc), true
	}
	return fmt.Sprintf("pool-%d-%d-%d.dyn.%s-broadband.test", b[1], b[2], b[3], cc), true
}

// countryTable lists 92 countries (matching the paper's count) with proxy
// weights shaped so RU > CN > US > VN dominate, a long tail below, and
// roughly 10-15% datacenter space overall.
var countryTable = []struct {
	code    string
	name    string
	weight  float64
	dcFrac  float64
	slash8s int
}{
	{"RU", "Russia", 194, 0.08, 3},
	{"CN", "China", 144, 0.10, 3},
	{"US", "United States", 135, 0.25, 4},
	{"VN", "Vietnam", 89, 0.05, 2},
	{"IN", "India", 55, 0.08, 2},
	{"BR", "Brazil", 48, 0.07, 2},
	{"ID", "Indonesia", 44, 0.05, 2},
	{"UA", "Ukraine", 40, 0.09, 1},
	{"TR", "Turkey", 36, 0.06, 1},
	{"TH", "Thailand", 33, 0.05, 1},
	{"DE", "Germany", 30, 0.20, 2},
	{"MX", "Mexico", 28, 0.05, 1},
	{"PH", "Philippines", 26, 0.04, 1},
	{"IR", "Iran", 25, 0.05, 1},
	{"PK", "Pakistan", 23, 0.04, 1},
	{"EG", "Egypt", 21, 0.04, 1},
	{"FR", "France", 20, 0.18, 1},
	{"IT", "Italy", 19, 0.10, 1},
	{"PL", "Poland", 18, 0.10, 1},
	{"GB", "United Kingdom", 17, 0.20, 1},
	{"RO", "Romania", 16, 0.12, 1},
	{"AR", "Argentina", 15, 0.05, 1},
	{"CO", "Colombia", 14, 0.04, 1},
	{"MY", "Malaysia", 13, 0.06, 1},
	{"KR", "South Korea", 12, 0.12, 1},
	{"ES", "Spain", 12, 0.10, 1},
	{"NL", "Netherlands", 11, 0.30, 1},
	{"BD", "Bangladesh", 11, 0.03, 1},
	{"SA", "Saudi Arabia", 10, 0.06, 1},
	{"ZA", "South Africa", 10, 0.06, 1},
	{"JP", "Japan", 9, 0.15, 1},
	{"TW", "Taiwan", 9, 0.10, 1},
	{"CA", "Canada", 8, 0.18, 1},
	{"PE", "Peru", 8, 0.03, 1},
	{"CL", "Chile", 7, 0.05, 1},
	{"VE", "Venezuela", 7, 0.03, 1},
	{"MA", "Morocco", 6, 0.03, 1},
	{"DZ", "Algeria", 6, 0.02, 1},
	{"IQ", "Iraq", 6, 0.02, 1},
	{"KZ", "Kazakhstan", 5, 0.04, 1},
	{"RS", "Serbia", 5, 0.06, 1},
	{"BG", "Bulgaria", 5, 0.10, 1},
	{"HU", "Hungary", 5, 0.08, 1},
	{"CZ", "Czechia", 4, 0.10, 1},
	{"GR", "Greece", 4, 0.05, 1},
	{"PT", "Portugal", 4, 0.06, 1},
	{"SE", "Sweden", 4, 0.15, 1},
	{"AT", "Austria", 3, 0.10, 1},
	{"CH", "Switzerland", 3, 0.15, 1},
	{"BE", "Belgium", 3, 0.12, 1},
	{"AU", "Australia", 3, 0.12, 1},
	{"NG", "Nigeria", 3, 0.02, 1},
	{"KE", "Kenya", 3, 0.03, 1},
	{"TN", "Tunisia", 3, 0.02, 1},
	{"JO", "Jordan", 2, 0.03, 1},
	{"LB", "Lebanon", 2, 0.03, 1},
	{"AE", "UAE", 2, 0.10, 1},
	{"IL", "Israel", 2, 0.10, 1},
	{"SG", "Singapore", 2, 0.30, 1},
	{"HK", "Hong Kong", 2, 0.25, 1},
	{"NZ", "New Zealand", 2, 0.08, 1},
	{"IE", "Ireland", 2, 0.20, 1},
	{"DK", "Denmark", 2, 0.12, 1},
	{"NO", "Norway", 2, 0.10, 1},
	{"FI", "Finland", 2, 0.12, 1},
	{"SK", "Slovakia", 2, 0.08, 1},
	{"HR", "Croatia", 2, 0.06, 1},
	{"SI", "Slovenia", 1, 0.06, 1},
	{"LT", "Lithuania", 1, 0.10, 1},
	{"LV", "Latvia", 1, 0.10, 1},
	{"EE", "Estonia", 1, 0.10, 1},
	{"BY", "Belarus", 1, 0.05, 1},
	{"MD", "Moldova", 1, 0.06, 1},
	{"GE", "Georgia", 1, 0.04, 1},
	{"AM", "Armenia", 1, 0.04, 1},
	{"AZ", "Azerbaijan", 1, 0.04, 1},
	{"UZ", "Uzbekistan", 1, 0.03, 1},
	{"MN", "Mongolia", 1, 0.03, 1},
	{"NP", "Nepal", 1, 0.02, 1},
	{"LK", "Sri Lanka", 1, 0.03, 1},
	{"MM", "Myanmar", 1, 0.02, 1},
	{"KH", "Cambodia", 1, 0.02, 1},
	{"EC", "Ecuador", 1, 0.03, 1},
	{"BO", "Bolivia", 1, 0.02, 1},
	{"PY", "Paraguay", 1, 0.02, 1},
	{"UY", "Uruguay", 1, 0.04, 1},
	{"CR", "Costa Rica", 1, 0.04, 1},
	{"PA", "Panama", 1, 0.05, 1},
	{"DO", "Dominican Republic", 1, 0.03, 1},
	{"GT", "Guatemala", 1, 0.02, 1},
	{"GH", "Ghana", 1, 0.02, 1},
	{"ET", "Ethiopia", 1, 0.02, 1},
}
