package evbus

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestReplayAndLive: a subscriber attached mid-stream sees the exact
// suffix it asked for, a from-start subscriber sees everything.
func TestReplayAndLive(t *testing.T) {
	h := New[int]()
	for i := 1; i <= 5; i++ {
		if seq := h.Append(i); seq != uint64(i) {
			t.Fatalf("Append returned seq %d, want %d", seq, i)
		}
	}
	mid := h.Since(3) // has seen 1..3, wants 4 onward
	all := h.Since(0)
	for i := 6; i <= 8; i++ {
		h.Append(i)
	}
	h.Close()

	var gotAll, gotMid []int
	for v := range all {
		gotAll = append(gotAll, v)
	}
	for v := range mid {
		gotMid = append(gotMid, v)
	}
	if len(gotAll) != 8 || gotAll[0] != 1 || gotAll[7] != 8 {
		t.Fatalf("full subscriber saw %v", gotAll)
	}
	if len(gotMid) != 5 || gotMid[0] != 4 || gotMid[4] != 8 {
		t.Fatalf("mid subscriber saw %v, want 4..8", gotMid)
	}
}

// TestSinceClamped: a cursor beyond the high-water mark must not skip
// live events appended later.
func TestSinceClamped(t *testing.T) {
	h := New[int]()
	h.Append(1)
	ch := h.Since(99)
	h.Append(2)
	h.Close()
	var got []int
	for v := range ch {
		got = append(got, v)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("clamped subscriber saw %v, want [2]", got)
	}
}

// TestSinceCtxCancel: cancelling detaches the subscription and closes the
// channel even though the stream never ends.
func TestSinceCtxCancel(t *testing.T) {
	h := New[int]()
	ctx, cancel := context.WithCancel(context.Background())
	ch := h.SinceCtx(ctx, 0)
	h.Append(1)
	if v := <-ch; v != 1 {
		t.Fatalf("got %d, want 1", v)
	}
	cancel()
	select {
	case _, ok := <-ch:
		if ok {
			// The pump may deliver a value raced with cancel; drain.
			for range ch {
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel did not close after cancel")
	}
	// The subscriber must be detached so the hub does not leak it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h.mu.Lock()
		n := len(h.subs)
		h.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d subscribers still attached after cancel", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAbandonedSubscriberNeverBlocksProducer: Append must return even when
// a subscriber exists that nobody reads.
func TestAbandonedSubscriberNeverBlocksProducer(t *testing.T) {
	h := New[int]()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_ = h.SinceCtx(ctx, 0) // never read
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			h.Append(i)
		}
		h.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("producer blocked on an unread subscriber")
	}
}

// TestConcurrentSubscribeAppendClose is the race hammer: subscribers
// attach at random points of a concurrent append stream; every one must
// see a gapless ordered suffix.
func TestConcurrentSubscribeAppendClose(t *testing.T) {
	h := New[int]()
	const total = 2000
	const subscribers = 16

	var wg sync.WaitGroup
	errs := make(chan string, subscribers)
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := h.Len() // snapshot a cursor mid-stream
			ch := h.Since(start)
			want := int(start)
			n := 0
			for v := range ch {
				if v != want {
					errs <- "gap or reorder in delivery"
					return
				}
				want++
				n++
			}
			if uint64(n) != total-start {
				errs <- "subscriber did not drain to the end"
			}
		}()
	}
	for i := 0; i < total; i++ {
		h.Append(i)
	}
	h.Close()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestSnapshot returns the suffix without subscribing.
func TestSnapshot(t *testing.T) {
	h := New[string]()
	h.Append("a")
	h.Append("b")
	h.Append("c")
	if got := h.Snapshot(1); len(got) != 2 || got[0] != "b" {
		t.Fatalf("Snapshot(1) = %v", got)
	}
	if got := h.Snapshot(9); got != nil {
		t.Fatalf("Snapshot past end = %v, want nil", got)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
}

// TestAppendAfterClosePanics pins the producer-bug contract.
func TestAppendAfterClosePanics(t *testing.T) {
	h := New[int]()
	h.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Append after Close did not panic")
		}
	}()
	h.Append(1)
}
