// Package evbus is the sequence-numbered broadcast buffer behind every
// replayable event stream in the tree: Study.Events/EventsSince on the
// public API, the registry's per-study and global feeds, and — through
// those — SSE replay and the webhook dispatcher.
//
// A Hub retains every appended value and assigns it a 1-based sequence
// number. Any number of subscribers may attach at any time, each naming
// the sequence number it has already seen; delivery to each subscriber is
// in order, gapless, and independent of every other subscriber. Producers
// never block: Append only appends to the buffer and wakes pumps, so a
// slow (or absent) consumer can never backpressure the producer — the
// simulation driver in particular. The cost of that guarantee is
// retention: the buffer holds the full history until the Hub is garbage.
// Tripwire streams are small (one event per wave plus one per detection
// plus a handful of lifecycle markers), which is the regime this is for.
package evbus

import (
	"context"
	"sync"
)

// Hub is a replayable broadcast buffer. The zero value is not useful;
// construct with New.
type Hub[T any] struct {
	mu     sync.Mutex
	buf    []T
	closed bool
	subs   map[*sub[T]]struct{}
}

// New returns an empty open Hub.
func New[T any]() *Hub[T] {
	return &Hub[T]{subs: make(map[*sub[T]]struct{})}
}

// Append adds v to the stream and returns its sequence number (1-based).
// Append never blocks on subscribers. Appending to a closed Hub panics:
// close is the producer's own end-of-stream marker, so an append after it
// is a bug, not a race to tolerate.
func (h *Hub[T]) Append(v T) uint64 {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		panic("evbus: Append after Close")
	}
	h.buf = append(h.buf, v)
	seq := uint64(len(h.buf))
	for s := range h.subs {
		s.signal()
	}
	h.mu.Unlock()
	return seq
}

// Close marks the stream finished. Subscriber channels close once each has
// drained the remaining buffer. Close is idempotent.
func (h *Hub[T]) Close() {
	h.mu.Lock()
	h.closed = true
	for s := range h.subs {
		s.signal()
	}
	h.mu.Unlock()
}

// Closed reports whether Close has been called.
func (h *Hub[T]) Closed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

// Len returns the high-water sequence number: how many values have been
// appended so far.
func (h *Hub[T]) Len() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return uint64(len(h.buf))
}

// Snapshot copies the values with sequence numbers > since, without
// subscribing. It never blocks.
func (h *Hub[T]) Snapshot(since uint64) []T {
	h.mu.Lock()
	defer h.mu.Unlock()
	if since > uint64(len(h.buf)) {
		return nil
	}
	out := make([]T, len(h.buf)-int(since))
	copy(out, h.buf[since:])
	return out
}

// Since subscribes from sequence number since: the channel delivers every
// value with a sequence number > since, in order, and closes once the Hub
// is closed and the subscriber has drained it. Since(0) replays the full
// stream. A since beyond the current high-water mark is clamped to it (the
// subscriber sees only future values) — stale cursors from a previous
// incarnation must not make a consumer skip live events.
//
// The subscription lives until the stream ends; a consumer that may
// abandon the channel early must use SinceCtx instead, or the delivery
// goroutine blocks forever on the unread channel.
func (h *Hub[T]) Since(since uint64) <-chan T {
	return h.SinceCtx(context.Background(), since)
}

// SinceCtx is Since with cancellation: when ctx is done the subscription
// detaches and the channel closes, whether or not the stream has ended.
func (h *Hub[T]) SinceCtx(ctx context.Context, since uint64) <-chan T {
	s := &sub[T]{
		hub:  h,
		ch:   make(chan T),
		wake: make(chan struct{}, 1),
		done: ctx.Done(),
	}
	h.mu.Lock()
	if since > uint64(len(h.buf)) {
		since = uint64(len(h.buf))
	}
	s.next = since
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	go s.pump()
	return s.ch
}

// sub is one subscriber: a pump goroutine forwarding buf[next:] to ch.
type sub[T any] struct {
	hub  *Hub[T]
	next uint64
	ch   chan T
	wake chan struct{}   // 1-buffered: "buffer or closed state changed"
	done <-chan struct{} // subscription cancel; nil never fires
}

func (s *sub[T]) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pump forwards buffered values in order, waits for more, and exits —
// closing the subscriber channel — when the stream ends or the
// subscription is cancelled.
func (s *sub[T]) pump() {
	h := s.hub
	defer func() {
		h.mu.Lock()
		delete(h.subs, s)
		h.mu.Unlock()
		close(s.ch)
	}()
	for {
		h.mu.Lock()
		for s.next < uint64(len(h.buf)) {
			v := h.buf[s.next]
			s.next++
			h.mu.Unlock()
			select {
			case s.ch <- v:
			case <-s.done:
				return
			}
			h.mu.Lock()
		}
		closed := h.closed
		h.mu.Unlock()
		if closed {
			return
		}
		select {
		case <-s.wake:
		case <-s.done:
			return
		}
	}
}
