package identity

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator("mail.example", 42).New(Hard)
	b := NewGenerator("mail.example", 42).New(Hard)
	if a.Email != b.Email || a.Password != b.Password || a.FullName() != b.FullName() {
		t.Fatalf("same seed produced different identities: %+v vs %+v", a, b)
	}
	c := NewGenerator("mail.example", 43).New(Hard)
	if a.Email == c.Email {
		t.Fatal("different seeds produced identical emails")
	}
}

func TestLocalPartShape(t *testing.T) {
	g := NewGenerator("mail.example", 1)
	for i := 0; i < 200; i++ {
		id := g.New(Easy)
		lp := id.LocalPart
		// Adjective + Noun + 4 digits: ends with exactly 4 digits, starts
		// with an upper-case letter, contains a second upper-case letter.
		if len(lp) < 7 {
			t.Fatalf("local-part too short: %q", lp)
		}
		tail := lp[len(lp)-4:]
		for _, r := range tail {
			if r < '0' || r > '9' {
				t.Fatalf("local-part %q does not end in 4 digits", lp)
			}
		}
		if lp[0] < 'A' || lp[0] > 'Z' {
			t.Fatalf("local-part %q does not start capitalized", lp)
		}
		caps := 0
		for _, r := range lp {
			if r >= 'A' && r <= 'Z' {
				caps++
			}
		}
		if caps < 2 {
			t.Fatalf("local-part %q lacks adjective+noun capitalization", lp)
		}
		if !strings.HasSuffix(id.Email, "@mail.example") {
			t.Fatalf("email %q not under generator domain", id.Email)
		}
		if id.Email != strings.ToLower(id.Email) {
			t.Fatalf("email %q not lower-cased", id.Email)
		}
	}
}

func TestUsernameTruncatedTo14(t *testing.T) {
	g := NewGenerator("mail.example", 7)
	for i := 0; i < 500; i++ {
		id := g.New(Hard)
		if len(id.Username) > 14 {
			t.Fatalf("username %q longer than 14 chars", id.Username)
		}
		if !strings.HasPrefix(id.LocalPart, id.Username) {
			t.Fatalf("username %q is not a prefix of local-part %q", id.Username, id.LocalPart)
		}
	}
}

func TestHardPasswordShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		p := HardPassword(rng)
		if len(p) != HardLength {
			t.Fatalf("hard password %q length %d, want %d", p, len(p), HardLength)
		}
		for j := 0; j < len(p); j++ {
			c := p[j]
			ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
			if !ok {
				t.Fatalf("hard password %q contains non-alphanumeric %q", p, c)
			}
		}
		if IsEasyShaped(p) {
			t.Fatalf("hard password %q is easy-shaped", p)
		}
	}
}

func TestEasyPasswordShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		p := EasyPassword(rng)
		if len(p) != 8 {
			t.Fatalf("easy password %q length %d, want 8", p, len(p))
		}
		if !IsEasyShaped(p) {
			t.Fatalf("easy password %q fails IsEasyShaped", p)
		}
	}
}

func TestIsEasyShapedRejects(t *testing.T) {
	for _, p := range []string{"", "website1", "Websit1", "Website", "WEBSITE1", "Websitee", "1ebsite1", "Websit11"} {
		if IsEasyShaped(p) {
			t.Errorf("IsEasyShaped(%q) = true, want false", p)
		}
	}
	if !IsEasyShaped("Website1") {
		t.Error("IsEasyShaped(Website1) = false, want true")
	}
}

func TestUniquenessAcrossBatch(t *testing.T) {
	g := NewGenerator("mail.example", 9)
	hard := g.Batch(2000, Hard)
	easy := g.Batch(2000, Easy)
	emails := make(map[string]bool, 4000)
	phones := make(map[string]bool, 4000)
	pairs := make(map[string]bool, 4000)
	hardPass := make(map[string]bool, 2000)
	for _, id := range append(append([]*Identity(nil), hard...), easy...) {
		if emails[id.Email] {
			t.Fatalf("duplicate email %q", id.Email)
		}
		if phones[id.Phone] {
			t.Fatalf("duplicate phone %q (paper: no site saw the same phone twice)", id.Phone)
		}
		pair := id.Email + "\x00" + id.Password
		if pairs[pair] {
			t.Fatalf("duplicate (email, password) pair for %q", id.Email)
		}
		emails[id.Email] = true
		phones[id.Phone] = true
		pairs[pair] = true
	}
	// Hard passwords draw from a 62^10 space: globally unique.
	for _, id := range hard {
		if hardPass[id.Password] {
			t.Fatalf("duplicate hard password %q", id.Password)
		}
		hardPass[id.Password] = true
	}
}

func TestIdentityFieldsPopulated(t *testing.T) {
	id := NewGenerator("mail.example", 11).New(Easy)
	for name, v := range map[string]string{
		"FirstName": id.FirstName, "LastName": id.LastName,
		"Street": id.Street, "City": id.City, "State": id.State,
		"Zip": id.Zip, "Phone": id.Phone, "Employer": id.Employer,
	} {
		if v == "" {
			t.Errorf("identity field %s empty", name)
		}
	}
	if id.Birthday.Year() < 1955 || id.Birthday.Year() > 1995 {
		t.Errorf("birthday year %d outside plausible adult range", id.Birthday.Year())
	}
	if id.Class != Easy {
		t.Errorf("Class = %v, want Easy", id.Class)
	}
}

func TestPasswordClassString(t *testing.T) {
	if Hard.String() != "hard" || Easy.String() != "easy" {
		t.Fatalf("String() = %q/%q", Hard, Easy)
	}
	if s := PasswordClass(9).String(); !strings.Contains(s, "9") {
		t.Fatalf("unknown class String() = %q", s)
	}
}

func TestEasyWordListSanitized(t *testing.T) {
	if len(easyWords) == 0 {
		t.Fatal("easyWords empty after init filter")
	}
	for _, w := range easyWords {
		if len(w) != 7 {
			t.Fatalf("easy word %q survived filter with length %d", w, len(w))
		}
	}
}

// Property: generated passwords of each class always classify correctly,
// i.e. the attacker's dictionary predicate exactly separates the classes.
func TestQuickClassSeparation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		return IsEasyShaped(EasyPassword(rng)) && !IsEasyShaped(HardPassword(rng))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
