package identity

// Word lists backing identity generation. Names are drawn from common US
// census names; the adjective/noun lists drive the ArguableGem8317-style
// local-part scheme; easyWords are exactly seven letters so easy passwords
// are always eight characters.

var firstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
	"Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Christopher",
	"Lisa", "Daniel", "Nancy", "Matthew", "Betty", "Anthony", "Sandra",
	"Mark", "Margaret", "Donald", "Ashley", "Steven", "Kimberly", "Andrew",
	"Emily", "Paul", "Donna", "Joshua", "Michelle", "Kenneth", "Carol",
	"Kevin", "Amanda", "Brian", "Melissa", "George", "Deborah", "Timothy",
	"Stephanie", "Ronald", "Rebecca", "Jason", "Sharon", "Edward", "Laura",
	"Jeffrey", "Cynthia", "Ryan", "Dorothy", "Jacob", "Amy", "Gary", "Kathleen",
	"Nicholas", "Angela", "Eric", "Shirley", "Jonathan", "Brenda", "Stephen",
	"Emma", "Larry", "Anna", "Justin", "Pamela", "Scott", "Nicole", "Brandon",
	"Samantha", "Benjamin", "Katherine", "Samuel", "Christine", "Gregory",
	"Helen", "Alexander", "Debra", "Patrick", "Rachel", "Frank", "Carolyn",
	"Raymond", "Janet", "Jack", "Maria", "Dennis", "Catherine", "Jerry", "Heather",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
	"Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
	"Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
	"Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
	"Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
	"Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
	"Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
	"Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
	"Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
	"Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
	"Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
	"Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
	"Ross", "Foster", "Jimenez",
}

var adjectives = []string{
	"Arguable", "Brave", "Calm", "Daring", "Eager", "Fancy", "Gentle",
	"Happy", "Ideal", "Jolly", "Keen", "Lively", "Merry", "Noble",
	"Orange", "Polite", "Quiet", "Rapid", "Steady", "Tidy", "Upbeat",
	"Vivid", "Witty", "Young", "Zesty", "Amber", "Bold", "Crisp",
	"Dusty", "Early", "Frosty", "Golden", "Hazy", "Icy", "Jade",
	"Kind", "Lucky", "Misty", "Nimble", "Opal", "Proud", "Quick",
	"Rustic", "Silver", "Tender", "Urban", "Velvet", "Warm", "Xenial",
	"Yearly", "Zippy", "Ancient", "Breezy", "Cosmic", "Dapper", "Elegant",
	"Fearless", "Graceful", "Humble", "Instant", "Jovial", "Knowing",
	"Limber", "Modest", "Neat", "Ornate", "Placid", "Quaint", "Radiant",
	"Serene", "Tranquil", "Unique", "Vast", "Wandering", "Youthful", "Zealous",
}

var nouns = []string{
	"Gem", "Fox", "Oak", "Star", "Wave", "Leaf", "Moon", "Cloud",
	"Stone", "River", "Falcon", "Harbor", "Island", "Jungle", "Kettle",
	"Lantern", "Meadow", "Needle", "Orchard", "Prairie", "Quartz",
	"Ridge", "Summit", "Thistle", "Umbrella", "Valley", "Willow",
	"Yarrow", "Zenith", "Anchor", "Badger", "Canyon", "Dolphin",
	"Ember", "Forest", "Glacier", "Heron", "Iris", "Jasper", "Kite",
	"Lagoon", "Marble", "Nectar", "Otter", "Pebble", "Quill", "Raven",
	"Sparrow", "Tundra", "Urchin", "Violet", "Walnut", "Xylem", "Yacht",
	"Zephyr", "Aspen", "Birch", "Cedar", "Dune", "Egret", "Fjord",
	"Grove", "Hollow", "Inlet", "Juniper", "Knoll", "Lichen", "Mesa",
	"Nook", "Osprey", "Pine", "Quarry", "Reef", "Shoal", "Trail",
}

var easyWords = []string{
	// Exactly seven letters each: easy password = Word + digit = 8 chars.
	"website", "account", "freedom", "diamond", "monster", "rainbow",
	"thunder", "crystal", "phoenix", "warrior", "fantasy", "captain",
	"soccer7", // placeholder replaced below; kept length-stable via filter
	"victory", "journey", "passion", "destiny", "america", "charlie",
	"forever", "hunting", "iceberg", "jackpot", "kingdom", "liberty",
	"machine", "network", "october", "penguin", "quality", "rocking",
	"stellar", "trouble", "upgrade", "village", "weather", "another",
	"brother", "college", "dolphin", "element", "fortune", "gateway",
	"harmony", "imagine", "justice", "kitchen", "lantern", "miracle",
	"nothing", "octopus", "picture", "quantum", "reality", "science",
	"teacher", "uniform", "vampire", "whisper", "amazing", "balance",
	"cabbage", "dancing", "evening", "fishing", "galaxy7",
	"history", "insight", "jasmine", "killers", "leopard", "morning",
	"nirvana", "olympic", "panther", "quietly", "redwood", "shadows",
	"tornado", "unicorn", "volcano", "wizards", "airport", "bicycle",
	"cowboys", "dragons", "eclipse", "falcons", "granite", "horizon",
}

func init() {
	// Defensive: easy passwords must be Word(7)+digit. Strip any list entry
	// that is not exactly seven lowercase letters so EasyPassword and
	// IsEasyShaped agree by construction.
	kept := easyWords[:0]
	for _, w := range easyWords {
		if len(w) != 7 {
			continue
		}
		ok := true
		for i := 0; i < 7; i++ {
			if w[i] < 'a' || w[i] > 'z' {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, w)
		}
	}
	easyWords = kept
}

var cities = []string{
	"Springfield", "Riverton", "Fairview", "Georgetown", "Salem", "Madison",
	"Clinton", "Arlington", "Ashland", "Dover", "Oxford", "Jackson",
	"Burlington", "Manchester", "Milton", "Newport", "Auburn", "Centerville",
	"Clayton", "Dayton", "Franklin", "Greenville", "Hudson", "Kingston",
	"Lebanon", "Lexington", "Marion", "Milford", "Oakland", "Princeton",
}

var states = []string{
	"AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID",
	"IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS",
	"MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY", "NC", "ND", "OH", "OK",
	"OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV",
	"WI", "WY",
}

var streetNames = []string{
	"Main", "Oak", "Pine", "Maple", "Cedar", "Elm", "Washington", "Lake",
	"Hill", "Walnut", "Spring", "North", "Ridge", "Church", "Willow",
	"Mill", "Sunset", "Railroad", "Jackson", "Highland", "Forest", "Meadow",
	"Park", "Franklin", "River", "Cherry", "Dogwood", "Hickory", "Laurel",
	"Sycamore",
}

var streetSuffixes = []string{"St", "Ave", "Rd", "Blvd", "Ln", "Dr", "Ct", "Way", "Pl", "Ter"}

var employers = []string{
	"Acme Logistics", "Blue Harbor Media", "Cedarline Insurance",
	"Dynamo Retail Group", "Eastgate Consulting", "Fieldstone Analytics",
	"Granite Peak Outfitters", "Harborview Clinics", "Ironwood Software",
	"Junction Freight", "Kestrel Design Co", "Lakeshore Foods",
	"Meridian Travel", "Northwind Publishing", "Orchard Supply Partners",
	"Pinnacle Staffing", "Quarry Hill Builders", "Redline Auto Parts",
	"Silverbrook Dairy", "Trailhead Sports", "Union Square Press",
	"Vista Energy", "Westbrook Labs", "Yellowstone Tours", "Zenith Optics",
}
