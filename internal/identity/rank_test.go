package identity

import (
	"strings"
	"testing"
)

// RankOf is only a true inverse if no two (adjective, noun) pairs
// concatenate to the same lower-cased string; otherwise the local-part
// parse would be ambiguous. Pins the wordlists against regressions.
func TestPairConcatUnambiguous(t *testing.T) {
	seen := make(map[string]string, len(adjectives)*len(nouns))
	for _, adj := range adjectives {
		for _, noun := range nouns {
			key := strings.ToLower(adj + noun)
			if prev, dup := seen[key]; dup {
				t.Fatalf("ambiguous concatenation %q: %q and %s%s", key, prev, adj, noun)
			}
			seen[key] = adj + noun
		}
	}
}

func TestAtRankOfRoundTrip(t *testing.T) {
	g := NewGenerator("mail.example", 42)
	ranks := make([]int64, 0, 4200)
	for r := int64(0); r < 4000; r++ {
		ranks = append(ranks, r)
	}
	for r := int64(9_999_937); r < 10_000_137; r++ { // deep in the 10M range
		ranks = append(ranks, r)
	}
	for _, rank := range ranks {
		id := g.At(rank)
		got, ok := g.RankOf(id.Email)
		if !ok || got != rank {
			t.Fatalf("RankOf(%q) = (%d, %v), want (%d, true)", id.Email, got, ok, rank)
		}
		if int64(id.ID) != rank || id.Class != ClassOf(rank) {
			t.Fatalf("At(%d): ID=%d Class=%v, want rank-derived values", rank, id.ID, id.Class)
		}
	}
	if _, ok := g.RankOf("user0000123@mail.example"); ok {
		t.Fatal("RankOf accepted a non-honey local-part")
	}
	if _, ok := g.RankOf(g.At(7).LocalPart); ok {
		t.Fatal("RankOf accepted an address outside the domain")
	}
}

// At is a pure function of (seed, rank): New must be exactly At over the
// reserved cursor, and materializing in any order must agree.
func TestAtMatchesNew(t *testing.T) {
	a := NewGenerator("mail.example", 7)
	b := NewGenerator("mail.example", 7)
	var hardIdx, easyIdx int64
	for i := 0; i < 300; i++ {
		class := Hard
		idx := hardIdx
		if i%3 == 0 {
			class, idx = Easy, easyIdx
		}
		got := a.New(class)
		want := b.At(RankFor(class, idx))
		if *got != *want {
			t.Fatalf("New #%d (%v) = %+v, want At(%d) = %+v", i, class, got, RankFor(class, idx), want)
		}
		if class == Hard {
			hardIdx++
		} else {
			easyIdx++
		}
	}
}

func TestFeistelBijection(t *testing.T) {
	const size = 3001 // odd, forces cycle walking
	f := newFeistel(size, 99, 1)
	seen := make([]bool, size)
	for v := uint64(0); v < size; v++ {
		img := f.apply(v)
		if img >= size {
			t.Fatalf("apply(%d) = %d escaped the domain", v, img)
		}
		if seen[img] {
			t.Fatalf("apply is not injective at %d", v)
		}
		seen[img] = true
		if inv := f.invert(img); inv != v {
			t.Fatalf("invert(apply(%d)) = %d", v, inv)
		}
	}
}

func TestReserveBlocks(t *testing.T) {
	g := NewGenerator("mail.example", 5)
	if from := g.Reserve(Hard, 10); from != 0 {
		t.Fatalf("first Reserve from = %d, want 0", from)
	}
	if from := g.Reserve(Hard, 5); from != 10 {
		t.Fatalf("second Reserve from = %d, want 10", from)
	}
	if got := g.Allocated(Hard); got != 15 {
		t.Fatalf("Allocated = %d, want 15", got)
	}
	if got := g.Allocated(Easy); got != 0 {
		t.Fatalf("easy Allocated = %d, want 0", got)
	}
	id := g.New(Hard)
	if IndexOf(int64(id.ID)) != 15 {
		t.Fatalf("New after Reserve got index %d, want 15", IndexOf(int64(id.ID)))
	}
}
