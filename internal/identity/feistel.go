package identity

import "tripwire/internal/xrand"

// feistel is a seed-keyed format-preserving permutation over [0, size),
// built as a balanced Feistel network over the smallest even-bit power of
// two ≥ size with cycle walking to stay inside the domain. It gives every
// identity rank a unique local-part (and phone) index without keeping any
// per-identity state: the permutation *is* the uniqueness set, and its
// inverse is the email→rank index — O(1) compute, zero bytes resident.
type feistel struct {
	size     uint64
	halfBits uint
	halfMask uint64
	keys     [4]uint64
}

func newFeistel(size uint64, seed, stream int64) feistel {
	bits := uint(2)
	for uint64(1)<<bits < size {
		bits += 2 // balanced halves need an even width
	}
	f := feistel{size: size, halfBits: bits / 2, halfMask: 1<<(bits/2) - 1}
	for r := range f.keys {
		f.keys[r] = uint64(xrand.Mix(seed, int64(r), stream))
	}
	return f
}

// mix64 is the splitmix64 finalizer, the same avalanche xrand builds on.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (f feistel) encryptOnce(v uint64) uint64 {
	l, r := v>>f.halfBits, v&f.halfMask
	for _, k := range f.keys {
		l, r = r, l^(mix64(r+k)&f.halfMask)
	}
	return l<<f.halfBits | r
}

func (f feistel) decryptOnce(v uint64) uint64 {
	l, r := v>>f.halfBits, v&f.halfMask
	for i := len(f.keys) - 1; i >= 0; i-- {
		l, r = r^(mix64(l+f.keys[i])&f.halfMask), l
	}
	return l<<f.halfBits | r
}

// apply maps v ∈ [0, size) to its permuted index, walking the cycle until
// the image lands back inside the domain (expected < 1.2 steps for our
// sizes).
func (f feistel) apply(v uint64) uint64 {
	for v = f.encryptOnce(v); v >= f.size; v = f.encryptOnce(v) {
	}
	return v
}

// invert is the exact inverse walk of apply.
func (f feistel) invert(v uint64) uint64 {
	for v = f.decryptOnce(v); v >= f.size; v = f.decryptOnce(v) {
	}
	return v
}
