// Package identity generates the fictitious identities Tripwire registers
// at websites (paper §4.1). Each identity maps one-to-one to an email
// account and password at the partner email provider and is designed to be
// indistinguishable from an organically created account: full name, valid
// US-shaped street address, US phone number, date of birth, and employer.
//
// Usernames and email local-parts follow the paper's "adjective, noun, and a
// four-digit number" scheme (e.g. ArguableGem8317); the first 14 characters
// serve as the username at sites that require one distinct from the email
// address.
//
// Identities are pure functions of (generator seed, rank): At(rank) derives
// the complete persona on demand, a seed-keyed Feistel permutation makes
// local-parts and phone numbers collision-free by construction, and RankOf
// inverts an email back to its rank. Nothing is retained per identity, so a
// 10M-account population costs two cursors, not a resident map.
package identity

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"tripwire/internal/xrand"
)

// PasswordClass distinguishes the two password strengths used to classify
// how a breached site stored its passwords (paper §4.1.2).
type PasswordClass int

const (
	// Hard passwords are random alpha-numeric, mixed-case, ten-character
	// strings without special characters (e.g. i5Nss87yf0). They are
	// designed to resist offline dictionary and brute-force attacks.
	Hard PasswordClass = iota
	// Easy passwords are eight-character strings: a single seven-character
	// dictionary word, first letter capitalized, followed by one digit
	// (e.g. Website1). They are deliberately trivial to crack.
	Easy
)

// String returns "hard" or "easy".
func (c PasswordClass) String() string {
	switch c {
	case Hard:
		return "hard"
	case Easy:
		return "easy"
	default:
		return fmt.Sprintf("PasswordClass(%d)", int(c))
	}
}

// Identity is a complete fictitious persona.
type Identity struct {
	ID        int // the identity's rank: even = Hard, odd = Easy
	FirstName string
	LastName  string
	Username  string // first 14 chars of the email local-part
	LocalPart string // adjective+noun+4 digits, e.g. ArguableGem8317
	Email     string // LocalPart@provider-domain
	Password  string
	Class     PasswordClass

	Street   string
	City     string
	State    string
	Zip      string
	Phone    string // unique US number under our control
	Birthday time.Time
	Employer string
}

// FullName returns "First Last".
func (id *Identity) FullName() string { return id.FirstName + " " + id.LastName }

// Rank-space layout. A rank's low bit is its password class (even = Hard,
// odd = Easy), so both class cursors draw from one interleaved space and
// RankFor/ClassOf are trivial bit operations.
//
// localSpace is the full adjective×noun×4-digit local-part universe; with
// the stock wordlists that is 76·75·10000 = 57M distinct local-parts, so
// ranks are collision-free well past the 10M-account target. phoneSpace is
// the NANP-shaped +1-[2-9]xx-555-dddd universe (800 area codes × 10000
// line numbers): phone numbers are unique for the first 8M ranks and reuse
// the permuted sequence beyond that (the paper's "no site saw the same
// phone twice" property holds per registration batch either way).
const (
	digitsPerPair = 10000
	phoneSpace    = 800 * 10000
)

// Derivation streams under xrand.Mix(seed, rank, stream).
const (
	streamLocalPerm int64 = 0x1d1 // Feistel keys for the local-part permutation
	streamPhonePerm int64 = 0x1d2 // Feistel keys for the phone permutation
	streamPassword  int64 = 0x1d3 // per-rank password RNG
	streamFields    int64 = 0x1d4 // per-rank persona-field RNG
)

// Generator produces identities deterministically from a seed. Every
// identity is a pure function of (seed, rank): New/Batch just advance a
// per-class cursor and call At, so no two identities from one Generator
// share a local-part, phone number, or email — by permutation, not by a
// resident uniqueness set. All methods are safe for concurrent use.
type Generator struct {
	domain    string
	seed      int64
	localPerm feistel
	phonePerm feistel
	cursors   [2]atomic.Int64 // allocated per-class indices
}

// NewGenerator returns a Generator emitting addresses @domain, seeded for
// reproducibility.
func NewGenerator(domain string, seed int64) *Generator {
	return &Generator{
		domain:    domain,
		seed:      seed,
		localPerm: newFeistel(uint64(len(adjectives)*len(nouns)*digitsPerPair), seed, streamLocalPerm),
		phonePerm: newFeistel(phoneSpace, seed, streamPhonePerm),
	}
}

// Domain returns the email domain identities are generated under.
func (g *Generator) Domain() string { return g.domain }

// RankFor maps a per-class index to the identity's global rank.
func RankFor(class PasswordClass, idx int64) int64 { return idx<<1 | int64(class) }

// ClassOf returns the password class encoded in a rank.
func ClassOf(rank int64) PasswordClass { return PasswordClass(rank & 1) }

// IndexOf returns the per-class index encoded in a rank.
func IndexOf(rank int64) int64 { return rank >> 1 }

// Reserve allocates n consecutive per-class indices and returns the first,
// so callers can provision a block of ranks without materializing any of
// them: identity i of the block is At(RankFor(class, from+i)).
func (g *Generator) Reserve(class PasswordClass, n int) (from int64) {
	return g.cursors[class].Add(int64(n)) - int64(n)
}

// Allocated returns how many per-class indices have been handed out.
func (g *Generator) Allocated(class PasswordClass) int64 { return g.cursors[class].Load() }

// New generates the next identity with a password of the given class.
func (g *Generator) New(class PasswordClass) *Identity {
	return g.At(RankFor(class, g.Reserve(class, 1)))
}

// Batch generates n identities of the given class.
func (g *Generator) Batch(n int, class PasswordClass) []*Identity {
	out := make([]*Identity, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.New(class))
	}
	return out
}

// At derives the identity at rank — a pure function of (seed, rank),
// independent of allocation order, so lazy materialization and eager
// provisioning see byte-identical personas.
func (g *Generator) At(rank int64) *Identity {
	class := ClassOf(rank)
	local := g.localPartAt(rank)
	username := local
	if len(username) > 14 {
		username = username[:14]
	}
	pwRng := xrand.New(xrand.Mix(g.seed, rank, streamPassword))
	var password string
	if class == Hard {
		password = HardPassword(pwRng)
	} else {
		password = EasyPassword(pwRng)
	}
	rng := xrand.New(xrand.Mix(g.seed, rank, streamFields))
	return &Identity{
		ID:        int(rank),
		FirstName: pick(rng, firstNames),
		LastName:  pick(rng, lastNames),
		Username:  username,
		LocalPart: local,
		Email:     strings.ToLower(local) + "@" + g.domain,
		Password:  password,
		Class:     class,
		Street:    fmt.Sprintf("%d %s %s", 1+rng.Intn(9899), pick(rng, streetNames), pick(rng, streetSuffixes)),
		City:      pick(rng, cities),
		State:     pick(rng, states),
		Zip:       fmt.Sprintf("%05d", 10000+rng.Intn(89999)),
		Phone:     g.phoneAt(rank),
		Birthday:  birthday(rng),
		Employer:  pick(rng, employers),
	}
}

func (g *Generator) localPartAt(rank int64) string {
	idx := g.localPerm.apply(uint64(rank) % g.localPerm.size)
	pair := idx / digitsPerPair
	adj := adjectives[pair/uint64(len(nouns))]
	noun := nouns[pair%uint64(len(nouns))]
	return fmt.Sprintf("%s%s%04d", adj, noun, idx%digitsPerPair)
}

func (g *Generator) phoneAt(rank int64) string {
	idx := g.phonePerm.apply(uint64(rank) % phoneSpace)
	// NANP-shaped numbers in the fictional 555 exchange space.
	return fmt.Sprintf("+1-%03d-555-%04d", 200+idx/10000, idx%10000)
}

// RankOf inverts an email address under the generator's domain back to its
// identity rank: parse the local-part into its permuted index, then run the
// Feistel permutation backwards. It is the account store's email→rank
// index, costing O(1) time and no resident state. ok is false for
// addresses outside the domain or not of the adjective+noun+4-digit shape.
// Callers decide coverage (whether the rank has been allocated) themselves.
func (g *Generator) RankOf(email string) (rank int64, ok bool) {
	local, ok := strings.CutSuffix(email, "@"+g.domain)
	if !ok || len(local) < 5 {
		return 0, false
	}
	var digits uint64
	for i := len(local) - 4; i < len(local); i++ {
		c := local[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		digits = digits*10 + uint64(c-'0')
	}
	pair, ok := pairIndexOf(local[:len(local)-4])
	if !ok {
		return 0, false
	}
	return int64(g.localPerm.invert(pair*digitsPerPair + digits)), true
}

// pairIndex maps the lower-cased adjective+noun concatenation to its pair
// index. Built once; TestPairConcatUnambiguous pins that no two (adjective,
// noun) pairs concatenate to the same string, which is what makes RankOf a
// true inverse.
var pairIndex = func() map[string]uint64 {
	m := make(map[string]uint64, len(adjectives)*len(nouns))
	for ai, adj := range adjectives {
		for ni, noun := range nouns {
			m[strings.ToLower(adj+noun)] = uint64(ai*len(nouns) + ni)
		}
	}
	return m
}()

func pairIndexOf(lowerPair string) (uint64, bool) {
	idx, ok := pairIndex[lowerPair]
	return idx, ok
}

func birthday(rng *rand.Rand) time.Time {
	year := 1955 + rng.Intn(40)
	month := time.Month(1 + rng.Intn(12))
	day := 1 + rng.Intn(28)
	return time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
}

const (
	hardAlphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	// HardLength is the hard-password length: "a balance between a desire
	// for long, complicated passwords, and the need to support websites
	// with short maximum password lengths" (paper §4.1.2).
	HardLength = 10
)

// HardPassword returns a random alpha-numeric mixed-case ten-character
// password without special characters.
func HardPassword(rng *rand.Rand) string {
	var b strings.Builder
	b.Grow(HardLength)
	for i := 0; i < HardLength; i++ {
		b.WriteByte(hardAlphabet[rng.Intn(len(hardAlphabet))])
	}
	return b.String()
}

// EasyPassword returns a seven-character dictionary word with its first
// letter capitalized followed by a single digit: eight characters total,
// deliberately crackable by a dictionary attack.
func EasyPassword(rng *rand.Rand) string {
	w := pick(rng, easyWords)
	return strings.ToUpper(w[:1]) + w[1:] + string(rune('0'+rng.Intn(10)))
}

// IsEasyShaped reports whether p matches the easy-password shape:
// capitalized seven-letter word plus one trailing digit. Attacker-side
// dictionary crackers in the simulation use the same predicate, so a
// "cracked" password is exactly one an attacker's wordlist would find.
func IsEasyShaped(p string) bool {
	if len(p) != 8 {
		return false
	}
	if p[0] < 'A' || p[0] > 'Z' {
		return false
	}
	for i := 1; i < 7; i++ {
		if p[i] < 'a' || p[i] > 'z' {
			return false
		}
	}
	return p[7] >= '0' && p[7] <= '9'
}

// DictionaryWords returns a copy of the seven-letter word list underlying
// easy passwords. The attacker simulation uses the same list as its cracking
// dictionary, so "a dictionary attack recovers easy passwords but not hard
// ones" holds by actual computation (hashing every Word+digit candidate),
// not by fiat.
func DictionaryWords() []string {
	out := make([]string, len(easyWords))
	copy(out, easyWords)
	return out
}

func pick(rng *rand.Rand, list []string) string { return list[rng.Intn(len(list))] }
