// Package identity generates the fictitious identities Tripwire registers
// at websites (paper §4.1). Each identity maps one-to-one to an email
// account and password at the partner email provider and is designed to be
// indistinguishable from an organically created account: full name, valid
// US-shaped street address, US phone number, date of birth, and employer.
//
// Usernames and email local-parts follow the paper's "adjective, noun, and a
// four-digit number" scheme (e.g. ArguableGem8317); the first 14 characters
// serve as the username at sites that require one distinct from the email
// address.
package identity

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// PasswordClass distinguishes the two password strengths used to classify
// how a breached site stored its passwords (paper §4.1.2).
type PasswordClass int

const (
	// Hard passwords are random alpha-numeric, mixed-case, ten-character
	// strings without special characters (e.g. i5Nss87yf0). They are
	// designed to resist offline dictionary and brute-force attacks.
	Hard PasswordClass = iota
	// Easy passwords are eight-character strings: a single seven-character
	// dictionary word, first letter capitalized, followed by one digit
	// (e.g. Website1). They are deliberately trivial to crack.
	Easy
)

// String returns "hard" or "easy".
func (c PasswordClass) String() string {
	switch c {
	case Hard:
		return "hard"
	case Easy:
		return "easy"
	default:
		return fmt.Sprintf("PasswordClass(%d)", int(c))
	}
}

// Identity is a complete fictitious persona.
type Identity struct {
	ID        int
	FirstName string
	LastName  string
	Username  string // first 14 chars of the email local-part
	LocalPart string // adjective+noun+4 digits, e.g. ArguableGem8317
	Email     string // LocalPart@provider-domain
	Password  string
	Class     PasswordClass

	Street   string
	City     string
	State    string
	Zip      string
	Phone    string // unique US number under our control
	Birthday time.Time
	Employer string
}

// FullName returns "First Last".
func (id *Identity) FullName() string { return id.FirstName + " " + id.LastName }

// Generator produces identities deterministically from a seeded source.
// It guarantees that no two generated identities share a local-part, phone
// number, or password within one Generator's lifetime.
type Generator struct {
	rng        *rand.Rand
	domain     string
	nextID     int
	usedLocals map[string]bool
	usedPhones map[string]bool
	usedPass   map[string]bool
}

// NewGenerator returns a Generator emitting addresses @domain, seeded for
// reproducibility.
func NewGenerator(domain string, seed int64) *Generator {
	return &Generator{
		rng:        rand.New(rand.NewSource(seed)),
		domain:     domain,
		usedLocals: make(map[string]bool),
		usedPhones: make(map[string]bool),
		usedPass:   make(map[string]bool),
	}
}

// Domain returns the email domain identities are generated under.
func (g *Generator) Domain() string { return g.domain }

// New generates a fresh identity with a password of the given class.
func (g *Generator) New(class PasswordClass) *Identity {
	local := g.uniqueLocalPart()
	username := local
	if len(username) > 14 {
		username = username[:14]
	}
	id := &Identity{
		ID:        g.nextID,
		FirstName: pick(g.rng, firstNames),
		LastName:  pick(g.rng, lastNames),
		Username:  username,
		LocalPart: local,
		Email:     strings.ToLower(local) + "@" + g.domain,
		Password:  g.uniquePassword(class),
		Class:     class,
		Street:    g.street(),
		City:      pick(g.rng, cities),
		State:     pick(g.rng, states),
		Zip:       fmt.Sprintf("%05d", 10000+g.rng.Intn(89999)),
		Phone:     g.uniquePhone(),
		Birthday:  g.birthday(),
		Employer:  pick(g.rng, employers),
	}
	g.nextID++
	return id
}

// Batch generates n identities of the given class.
func (g *Generator) Batch(n int, class PasswordClass) []*Identity {
	out := make([]*Identity, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.New(class))
	}
	return out
}

func (g *Generator) uniqueLocalPart() string {
	for {
		local := pick(g.rng, adjectives) + pick(g.rng, nouns) + fmt.Sprintf("%04d", g.rng.Intn(10000))
		if !g.usedLocals[local] {
			g.usedLocals[local] = true
			return local
		}
	}
}

// uniquePassword prefers globally unique passwords. Hard passwords draw
// from a 62^10 space, so uniqueness always holds. The easy space is tiny by
// design (dictionary word × digit), so after a bounded number of attempts a
// duplicate easy password is accepted: what Tripwire requires is that each
// (email, password) *pair* is unique, which the unique email guarantees.
func (g *Generator) uniquePassword(class PasswordClass) string {
	var p string
	for attempt := 0; ; attempt++ {
		if class == Hard {
			p = HardPassword(g.rng)
		} else {
			p = EasyPassword(g.rng)
		}
		if !g.usedPass[p] {
			g.usedPass[p] = true
			return p
		}
		if class == Easy && attempt >= 100 {
			return p
		}
	}
}

func (g *Generator) uniquePhone() string {
	for {
		// NANP-shaped numbers in the fictional 555 exchange space.
		p := fmt.Sprintf("+1-%d%d%d-555-%04d", 2+g.rng.Intn(8), g.rng.Intn(10), g.rng.Intn(10), g.rng.Intn(10000))
		if !g.usedPhones[p] {
			g.usedPhones[p] = true
			return p
		}
	}
}

func (g *Generator) street() string {
	return fmt.Sprintf("%d %s %s", 1+g.rng.Intn(9899), pick(g.rng, streetNames), pick(g.rng, streetSuffixes))
}

func (g *Generator) birthday() time.Time {
	year := 1955 + g.rng.Intn(40)
	month := time.Month(1 + g.rng.Intn(12))
	day := 1 + g.rng.Intn(28)
	return time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
}

const (
	hardAlphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	// HardLength is the hard-password length: "a balance between a desire
	// for long, complicated passwords, and the need to support websites
	// with short maximum password lengths" (paper §4.1.2).
	HardLength = 10
)

// HardPassword returns a random alpha-numeric mixed-case ten-character
// password without special characters.
func HardPassword(rng *rand.Rand) string {
	var b strings.Builder
	b.Grow(HardLength)
	for i := 0; i < HardLength; i++ {
		b.WriteByte(hardAlphabet[rng.Intn(len(hardAlphabet))])
	}
	return b.String()
}

// EasyPassword returns a seven-character dictionary word with its first
// letter capitalized followed by a single digit: eight characters total,
// deliberately crackable by a dictionary attack.
func EasyPassword(rng *rand.Rand) string {
	w := pick(rng, easyWords)
	return strings.ToUpper(w[:1]) + w[1:] + string(rune('0'+rng.Intn(10)))
}

// IsEasyShaped reports whether p matches the easy-password shape:
// capitalized seven-letter word plus one trailing digit. Attacker-side
// dictionary crackers in the simulation use the same predicate, so a
// "cracked" password is exactly one an attacker's wordlist would find.
func IsEasyShaped(p string) bool {
	if len(p) != 8 {
		return false
	}
	if p[0] < 'A' || p[0] > 'Z' {
		return false
	}
	for i := 1; i < 7; i++ {
		if p[i] < 'a' || p[i] > 'z' {
			return false
		}
	}
	return p[7] >= '0' && p[7] <= '9'
}

// DictionaryWords returns a copy of the seven-letter word list underlying
// easy passwords. The attacker simulation uses the same list as its cracking
// dictionary, so "a dictionary attack recovers easy passwords but not hard
// ones" holds by actual computation (hashing every Word+digit candidate),
// not by fiat.
func DictionaryWords() []string {
	out := make([]string, len(easyWords))
	copy(out, easyWords)
	return out
}

func pick(rng *rand.Rand, list []string) string { return list[rng.Intn(len(list))] }
